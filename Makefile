GO ?= go

.PHONY: check build vet test bench bench-wal torture

# The full gate: everything must build, vet clean, and pass under the race
# detector. CI and pre-commit both run this.
check: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -race ./...

# The experiment suite (EXPERIMENTS.md); slow.
bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# Group-commit vs sync-on-commit fsync amortization; writes BENCH_wal.json.
bench-wal:
	$(GO) test -bench BenchmarkL1GroupCommit -benchmem -run '^$$' .

# Kill-the-process durability torture (SIGKILL + recover, 5 rounds).
torture:
	$(GO) run ./cmd/crashtorture -dir $(or $(TORTURE_DIR),/tmp/oodb-torture) -rounds 5
