GO ?= go

.PHONY: check build vet test bench

# The full gate: everything must build, vet clean, and pass under the race
# detector. CI and pre-commit both run this.
check: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -race ./...

# The experiment suite (EXPERIMENTS.md); slow.
bench:
	$(GO) test -bench=. -benchmem -run '^$$' .
