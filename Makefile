GO ?= go

.PHONY: check build vet test test-obs bench bench-wal bench-ckpt bench-obs bench-spans bench-net bench-partition bench-repl torture metrics-smoke trace-smoke chaos-smoke checkpoint-smoke server-smoke partition-smoke tracing-smoke repl-smoke

# The full gate: everything must build, vet clean, and pass under the race
# detector. CI and pre-commit both run this.
check: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -race ./...

# The observability layer and every package it instruments, race-checked —
# the fast loop when touching metrics/flight-recorder code.
test-obs:
	$(GO) vet ./internal/obs ./internal/cc ./internal/storage ./internal/core
	$(GO) test -race -count=1 ./internal/obs ./internal/cc ./internal/storage ./internal/core

# The experiment suite (EXPERIMENTS.md); slow.
bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# Group-commit vs sync-on-commit fsync amortization; writes BENCH_wal.json.
bench-wal:
	$(GO) test -bench BenchmarkL1GroupCommit -benchmem -run '^$$' .

# Restart cost with vs without checkpoints; writes BENCH_checkpoint.json.
bench-ckpt:
	$(GO) test -bench BenchmarkR2CheckpointRecovery -benchtime 3x -run '^$$' .

# Prices the always-on metrics registry + flight recorder (obs on vs off).
bench-obs:
	$(GO) test -bench BenchmarkO1ObsOverhead -benchtime 10x -run '^$$' .

# Prices the always-on span tracer (spans on vs off), same ≤5% budget.
bench-spans:
	$(GO) test -bench BenchmarkO2SpanOverhead -benchtime 10x -run '^$$' .

# Engine-behind-the-wire throughput: hundreds of loopback client
# connections, closed- and open-loop; writes BENCH_net.json.
bench-net:
	$(GO) test -bench BenchmarkN1LoopbackThroughput -benchtime 3x -run '^$$' .

# Write scale-out across the partitioned stack: the same hot-account load
# against 1/2/4/8 partitions; writes BENCH_partition.json. The bar is
# banking txn/s at 4 partitions >= 2x the 1-partition figure.
bench-partition:
	$(GO) test -bench BenchmarkP1PartitionScaling -benchtime 3x -run '^$$' .

# Prices replication: unhooked single node vs disarmed quorum sink
# (single-node cluster, the ≤5% budget) vs a real 3-node quorum over
# loopback; writes BENCH_repl.json.
bench-repl:
	$(GO) test -bench BenchmarkN2ReplicatedCommit -benchtime 15x -run '^$$' .

# Kill-the-process durability torture (SIGKILL + recover, 5 rounds).
torture:
	$(GO) run ./cmd/crashtorture -dir $(or $(TORTURE_DIR),/tmp/oodb-torture) -rounds 5

# End-to-end check of the -metrics-addr endpoint: boot a small run with a
# lingering endpoint, then assert /metrics serves the lock/pool/engine JSON
# and /events serves the flight recorder.
METRICS_SMOKE_PORT ?= 19321
metrics-smoke:
	$(GO) build -o /tmp/oodbsim-smoke ./cmd/oodbsim
	/tmp/oodbsim-smoke -workload banking -protocol open-nested -workers 2 -txns 10 \
		-metrics-addr 127.0.0.1:$(METRICS_SMOKE_PORT) -metrics-linger 5s >/dev/null & \
	sleep 2; \
	curl -sf http://127.0.0.1:$(METRICS_SMOKE_PORT)/metrics | grep -q '"lock"' && \
	curl -sf http://127.0.0.1:$(METRICS_SMOKE_PORT)/metrics | grep -q '"pool"' && \
	curl -sf http://127.0.0.1:$(METRICS_SMOKE_PORT)/metrics | grep -q '"engine"' && \
	curl -sf "http://127.0.0.1:$(METRICS_SMOKE_PORT)/events?n=5" >/dev/null && \
	echo "metrics-smoke: OK"; \
	status=$$?; wait; exit $$status

# Fault-injection smoke: every chaos round (lock delays, seeded random
# faults, admission overload, WAL poison + restart recovery) must uphold
# the no-loss / typed-error / no-livelock invariants.
chaos-smoke:
	$(GO) run ./cmd/chaos -seed 1 -workers 6 -txns 60
	$(GO) run ./cmd/chaos -seed 2 -workers 6 -txns 60

# Checkpoint torture: SIGKILL rounds with an aggressive fuzzy-checkpoint
# interval, cycling crashes into the checkpoint write and the segment
# truncation (the ckpt.write / ckpt.truncate failpoints). Every recovery
# must start from the newest complete checkpoint — or fall back to an older
# one / full replay when the kill tore the file — and replay only the
# surviving suffix.
checkpoint-smoke:
	$(GO) run ./cmd/crashtorture -dir $(or $(TORTURE_DIR),/tmp/oodb-ckpt-torture) -rounds 6 -checkpoint 40ms

# End-to-end check of the network server: boot oodbd with the banking
# schema, burst a concurrent client workload through the pooled client,
# assert zero leaked admission slots via /metrics, then SIGTERM and require
# the drain shutdown to exit cleanly (oodbd itself exits non-zero if any
# slot leaks through the drain).
SERVER_SMOKE_PORT ?= 19323
SERVER_SMOKE_METRICS_PORT ?= 19324
server-smoke:
	$(GO) build -o /tmp/oodbd-smoke ./cmd/oodbd
	$(GO) build -o /tmp/oodbload-smoke ./cmd/oodbload
	/tmp/oodbd-smoke -addr 127.0.0.1:$(SERVER_SMOKE_PORT) \
		-metrics-addr 127.0.0.1:$(SERVER_SMOKE_METRICS_PORT) \
		-install banking -max-inflight 64 >/dev/null 2>&1 & \
	pid=$$!; \
	sleep 1; \
	/tmp/oodbload-smoke -addr 127.0.0.1:$(SERVER_SMOKE_PORT) -workload banking -workers 32 -txns 25 && \
	curl -sf http://127.0.0.1:$(SERVER_SMOKE_METRICS_PORT)/metrics | grep -q '"engine.inflight": 0' && \
	curl -sf http://127.0.0.1:$(SERVER_SMOKE_METRICS_PORT)/metrics | grep -q '"server.requests"'; \
	status=$$?; \
	kill -TERM $$pid 2>/dev/null; \
	wait $$pid || status=1; \
	[ $$status -eq 0 ] && echo "server-smoke: OK"; exit $$status

# End-to-end check of the partitioned server: boot oodbd with 4 engine
# partitions, burst a partition-aware client workload through the pooled
# client, assert via /metrics that no partition leaked an admission slot
# (every p<i>.engine.inflight must read 0), then SIGTERM and require the
# drain shutdown to exit cleanly (oodbd itself exits non-zero if any slot
# leaks through the drain).
PARTITION_SMOKE_PORT ?= 19325
PARTITION_SMOKE_METRICS_PORT ?= 19326
partition-smoke:
	$(GO) build -o /tmp/oodbd-psmoke ./cmd/oodbd
	$(GO) build -o /tmp/oodbload-psmoke ./cmd/oodbload
	/tmp/oodbd-psmoke -addr 127.0.0.1:$(PARTITION_SMOKE_PORT) \
		-metrics-addr 127.0.0.1:$(PARTITION_SMOKE_METRICS_PORT) \
		-partitions 4 -install banking -accounts 32 -max-inflight 64 >/dev/null 2>&1 & \
	pid=$$!; \
	sleep 1; \
	/tmp/oodbload-psmoke -addr 127.0.0.1:$(PARTITION_SMOKE_PORT) -workload banking \
		-partitions 4 -accounts 32 -workers 32 -txns 25 && \
	metrics=$$(curl -sf http://127.0.0.1:$(PARTITION_SMOKE_METRICS_PORT)/metrics) && \
	for p in 0 1 2 3; do echo "$$metrics" | grep -q "\"p$$p.engine.inflight\": 0" || exit 1; done && \
	echo "$$metrics" | grep -q '"cluster.partitions": 4'; \
	status=$$?; \
	kill -TERM $$pid 2>/dev/null; \
	wait $$pid || status=1; \
	[ $$status -eq 0 ] && echo "partition-smoke: OK"; exit $$status

# End-to-end check of WAL replication: boot a 3-node oodbd cluster, find
# the leader via /healthz (followers answer 503 "replica"), burst a banking
# workload at it, assert follower healthz carries replication state, then
# SIGKILL the leader and require a new leader at a HIGHER term to take over
# writes (a second burst must commit against it). After the oodbd-level
# check, the chaos leader-kill round does the rigorous version — SIGKILL
# mid-burst over many iterations, machine-checking on every failover that
# each quorum-acked commit survives on the new leader — and the
# repl-partition round isolates a live leader instead of killing it.
REPL_SMOKE_DIR ?= /tmp/oodb-repl-smoke
repl-smoke:
	$(GO) build -o /tmp/oodbd-rsmoke ./cmd/oodbd
	$(GO) build -o /tmp/oodbload-rsmoke ./cmd/oodbload
	rm -rf $(REPL_SMOKE_DIR); \
	pids=""; \
	for i in 0 1 2; do \
		case $$i in \
			0) peers="n1=127.0.0.1:19342,n2=127.0.0.1:19343";; \
			1) peers="n0=127.0.0.1:19341,n2=127.0.0.1:19343";; \
			2) peers="n0=127.0.0.1:19341,n1=127.0.0.1:19342";; \
		esac; \
		/tmp/oodbd-rsmoke -addr 127.0.0.1:1933$$((i+1)) \
			-metrics-addr 127.0.0.1:1935$$((i+1)) \
			-repl-node n$$i -repl-addr 127.0.0.1:1934$$((i+1)) \
			-repl-peers "$$peers" \
			-durability group-commit -waldir $(REPL_SMOKE_DIR)/n$$i \
			-install banking >/dev/null 2>&1 & \
		pids="$$pids $$!"; \
	done; \
	status=1; leader=""; \
	for t in $$(seq 1 60); do \
		for i in 1 2 3; do \
			if curl -s http://127.0.0.1:1935$$i/healthz | grep -q '"role": "leader"'; then leader=$$i; break; fi; \
		done; \
		[ -n "$$leader" ] && break; sleep 0.25; \
	done; \
	if [ -n "$$leader" ]; then \
		term=$$(curl -s http://127.0.0.1:1935$$leader/healthz | sed -n 's/.*"term": \([0-9]*\).*/\1/p' | head -1); \
		follower=$$(( leader % 3 + 1 )); \
		/tmp/oodbload-rsmoke -addr 127.0.0.1:1933$$leader -workload banking -workers 8 -txns 20 && \
		curl -s http://127.0.0.1:1935$$follower/healthz | grep -q '"status": "replica"' && \
		curl -s http://127.0.0.1:1935$$follower/healthz | grep -q '"role": "follower"' && \
		status=0; \
		if [ $$status -eq 0 ]; then \
			lpid=$$(echo $$pids | awk -v n=$$leader '{print $$n}'); \
			kill -9 $$lpid; status=1; newleader=""; \
			for t in $$(seq 1 60); do \
				for i in 1 2 3; do \
					[ $$i -eq $$leader ] && continue; \
					if curl -s http://127.0.0.1:1935$$i/healthz | grep -q '"role": "leader"'; then newleader=$$i; break; fi; \
				done; \
				[ -n "$$newleader" ] && break; sleep 0.25; \
			done; \
			if [ -n "$$newleader" ]; then \
				newterm=$$(curl -s http://127.0.0.1:1935$$newleader/healthz | sed -n 's/.*"term": \([0-9]*\).*/\1/p' | head -1); \
				[ "$$newterm" -gt "$$term" ] && \
				/tmp/oodbload-rsmoke -addr 127.0.0.1:1933$$newleader -workload banking -workers 8 -txns 20 && \
				status=0 || status=1; \
			fi; \
		fi; \
	fi; \
	kill -9 $$pids 2>/dev/null; wait 2>/dev/null; \
	rm -rf $(REPL_SMOKE_DIR); \
	[ $$status -eq 0 ] && echo "repl-smoke: oodbd failover OK" || exit $$status
	$(GO) run ./cmd/chaos -seed 1 -workers 6 -txns 60 -round leader-kill -iters 20
	$(GO) run ./cmd/chaos -seed 1 -workers 6 -txns 60 -round repl-partition
	@echo "repl-smoke: OK"

# End-to-end check of the span-tracing endpoint: run a workload with a
# lingering endpoint, then assert /trace/slowest returns a non-empty,
# well-formed trace and an aborted transaction (if any) has provenance.
TRACE_SMOKE_PORT ?= 19322
trace-smoke:
	$(GO) build -o /tmp/oodbsim-smoke ./cmd/oodbsim
	/tmp/oodbsim-smoke -workload lockstress -workers 16 -txns 20 -conflict 100 \
		-hold 1ms -metrics-addr 127.0.0.1:$(TRACE_SMOKE_PORT) -metrics-linger 5s >/dev/null & \
	sleep 2; \
	curl -sf "http://127.0.0.1:$(TRACE_SMOKE_PORT)/trace/slowest?n=3" | grep -q '"txn"' && \
	curl -sf "http://127.0.0.1:$(TRACE_SMOKE_PORT)/trace" | grep -q '"txns"' && \
	echo "trace-smoke: OK"; \
	status=$$?; wait; exit $$status

# End-to-end check of distributed tracing over the wire: boot a 2-partition
# oodbd, run a traced client workload, pick one client-stamped trace id off
# oodbload's output, and assert the server's cluster /trace?trace=<id> view
# returns that id on a KSession span. Then check the Prometheus exposition
# carries per-partition labels, and that SIGTERM flips /healthz to
# "draining" while the metrics endpoint lingers.
TRACING_SMOKE_PORT ?= 19327
TRACING_SMOKE_METRICS_PORT ?= 19328
tracing-smoke:
	$(GO) build -o /tmp/oodbd-tsmoke ./cmd/oodbd
	$(GO) build -o /tmp/oodbload-tsmoke ./cmd/oodbload
	/tmp/oodbd-tsmoke -addr 127.0.0.1:$(TRACING_SMOKE_PORT) \
		-metrics-addr 127.0.0.1:$(TRACING_SMOKE_METRICS_PORT) \
		-partitions 2 -install banking -accounts 32 -max-inflight 64 \
		-slow-query 1ms -metrics-linger 5s >/dev/null 2>&1 & \
	pid=$$!; \
	sleep 1; \
	out=$$(/tmp/oodbload-tsmoke -addr 127.0.0.1:$(TRACING_SMOKE_PORT) -workload banking \
		-partitions 2 -accounts 32 -workers 4 -txns 5 -trace \
		-trace-url http://127.0.0.1:$(TRACING_SMOKE_METRICS_PORT)) && \
	id=$$(echo "$$out" | sed -n 's/^oodbload: trace=\([0-9a-f]*\) .*/\1/p' | head -1) && \
	[ -n "$$id" ] && \
	trace=$$(curl -sf "http://127.0.0.1:$(TRACING_SMOKE_METRICS_PORT)/trace?trace=$$id") && \
	echo "$$trace" | grep -q "\"remote\": \"$$id\"" && \
	echo "$$trace" | grep -q '"session"' && \
	curl -sf http://127.0.0.1:$(TRACING_SMOKE_METRICS_PORT)/metrics/prom | grep -q '# TYPE' && \
	curl -sf http://127.0.0.1:$(TRACING_SMOKE_METRICS_PORT)/metrics/prom | grep -q 'partition="p1"' && \
	curl -sf http://127.0.0.1:$(TRACING_SMOKE_METRICS_PORT)/healthz | grep -q '"status": "ready"'; \
	status=$$?; \
	kill -TERM $$pid 2>/dev/null; \
	sleep 1; \
	if [ $$status -eq 0 ]; then \
		curl -s http://127.0.0.1:$(TRACING_SMOKE_METRICS_PORT)/healthz | grep -q '"status": "draining"' || status=1; \
	fi; \
	wait $$pid || status=1; \
	[ $$status -eq 0 ] && echo "tracing-smoke: OK"; exit $$status
