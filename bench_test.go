// Package repro's root benchmark harness regenerates every table and
// figure of the reproduction (see DESIGN.md §3 for the experiment index
// and EXPERIMENTS.md for paper-vs-measured). Each benchmark reports the
// domain metrics the paper argues about as custom units:
//
//	txn/s        committed transactions per second
//	confl%       blocked acquires per 100 lock acquisitions
//	waitms       total lock wait time in milliseconds
//	deadlocks    deadlock victims
//
// Run everything with:
//
//	go test -bench=. -benchmem
package repro

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/commut"
	"repro/internal/core"
	"repro/internal/paperex"
	"repro/internal/recovery"
	"repro/internal/sched"
	"repro/internal/span"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/workload"
)

const benchIO = 20 * time.Microsecond

func report(b *testing.B, res workload.Result) {
	b.ReportMetric(res.Throughput, "txn/s")
	b.ReportMetric(100*res.ConflictRate, "confl%")
	b.ReportMetric(float64(res.WaitTime.Milliseconds()), "waitms")
	b.ReportMetric(float64(res.Deadlocks), "deadlocks")
}

// BenchmarkFig1ConventionalVsOO contrasts the two workload classes of the
// paper's Figure 1: short transactions on small objects (banking) versus
// long, complex-structured transactions on large objects (encyclopedia,
// multi-op). The interesting series is how much each class suffers under
// conventional locking relative to semantic locking.
func BenchmarkFig1ConventionalVsOO(b *testing.B) {
	rows := []struct {
		name string
		run  func(p core.ProtocolKind) (workload.Result, error)
	}{
		{"short-small-txns", func(p core.ProtocolKind) (workload.Result, error) {
			return workload.RunBanking(workload.BankingConfig{
				Protocol: p, Workers: 8, TxnsPerWorker: 50, Accounts: 8,
				HotPct: 40, Seed: 1, PageIODelay: benchIO, LockTimeout: 2 * time.Second,
			})
		}},
		{"long-complex-txns", func(p core.ProtocolKind) (workload.Result, error) {
			return workload.RunEncyclopedia(workload.Config{
				Protocol: p, Workers: 8, TxnsPerWorker: 20, OpsPerTxn: 6,
				Keys: 300, TreeFanout: 400, Preload: 100, Seed: 1,
				Mix:         workload.Mix{InsertPct: 60, SearchPct: 20, UpdatePct: 20},
				PageIODelay: benchIO, MaxRetries: 300, LockTimeout: 2 * time.Second,
			})
		}},
	}
	for _, row := range rows {
		for _, p := range []core.ProtocolKind{core.Protocol2PLPage, core.ProtocolOpenNested} {
			b.Run(fmt.Sprintf("%s/%s", row.name, p), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, err := row.run(p)
					if err != nil {
						b.Fatal(err)
					}
					report(b, res)
				}
			})
		}
	}
}

// BenchmarkE1Example1Analysis regenerates Example 1 / Figure 4: the formal
// analysis of the three-transaction schedule, asserting the inheritance
// structure each iteration.
func BenchmarkE1Example1Analysis(b *testing.B) {
	reg := paperex.Registry()
	for i := 0; i < b.N; i++ {
		sys, order := paperex.Example1()
		a, err := sched.Analyze(sys, reg, order)
		if err != nil {
			b.Fatal(err)
		}
		if a.TranDep[paperex.Leaf11].HasEdge("T1.1.1", "T2.1.1") {
			b.Fatal("commuting inserts must not inherit")
		}
		if !a.TranDep[paperex.Enc].HasEdge("T1", "T3") {
			b.Fatal("same-key conflict must inherit to the top")
		}
	}
}

// BenchmarkE4Example4Analysis regenerates Example 4 / Figures 7-8,
// including the Definition 15 added relation and the full system check.
func BenchmarkE4Example4Analysis(b *testing.B) {
	reg := paperex.Registry()
	for i := 0; i < b.N; i++ {
		sys, order := paperex.Example4()
		a, err := sched.Analyze(sys, reg, order)
		if err != nil {
			b.Fatal(err)
		}
		rep := a.Check()
		if !rep.SystemOOSerializable {
			b.Fatal("Example 4 must validate")
		}
	}
}

// BenchmarkH1ConflictRate is the headline claim: on a hot leaf (many keys
// per page), page-level 2PL accumulates commit-duration waits while open
// nesting only serializes the brief page subtransactions.
func BenchmarkH1ConflictRate(b *testing.B) {
	for _, p := range []core.ProtocolKind{core.Protocol2PLPage, core.ProtocolClosedNested, core.ProtocolOpenNested} {
		b.Run(p.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := workload.RunEncyclopedia(workload.Config{
					Protocol: p, Workers: 8, TxnsPerWorker: 30, OpsPerTxn: 5,
					Keys: 300, TreeFanout: 400, Preload: 100, Seed: 123,
					Mix:         workload.Mix{InsertPct: 80, UpdatePct: 20},
					PageIODelay: benchIO, MaxRetries: 300, LockTimeout: 2 * time.Second,
				})
				if err != nil {
					b.Fatal(err)
				}
				report(b, res)
			}
		})
	}
}

// BenchmarkH2FanoutSweep sweeps keys-per-page toward the paper's "rough up
// to 500": the more keys share a page, the more often operations conflict
// at the page level while commuting at the node level — so the 2PL/open
// gap should widen with fanout.
func BenchmarkH2FanoutSweep(b *testing.B) {
	for _, fanout := range []int{10, 50, 100, 500} {
		for _, p := range []core.ProtocolKind{core.Protocol2PLPage, core.ProtocolOpenNested} {
			b.Run(fmt.Sprintf("fanout=%d/%s", fanout, p), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, err := workload.RunEncyclopedia(workload.Config{
						Protocol: p, Workers: 8, TxnsPerWorker: 25, OpsPerTxn: 4,
						Keys: 400, TreeFanout: fanout, Preload: 400, Seed: 7,
						Mix:         workload.Mix{InsertPct: 50, SearchPct: 30, UpdatePct: 20},
						PageIODelay: benchIO, MaxRetries: 300, LockTimeout: 2 * time.Second,
					})
					if err != nil {
						b.Fatal(err)
					}
					report(b, res)
				}
			})
		}
	}
}

// BenchmarkH3CoEditing is the introduction's motivation: authors editing
// one document concurrently. Document-level 2PL serializes the session;
// section-keyed semantics scale with the author count.
func BenchmarkH3CoEditing(b *testing.B) {
	for _, authors := range []int{2, 4, 8} {
		for _, p := range []core.ProtocolKind{core.Protocol2PLObject, core.ProtocolOpenNested} {
			b.Run(fmt.Sprintf("authors=%d/%s", authors, p), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, err := workload.RunCoEdit(workload.CoEditConfig{
						Protocol: p, Authors: authors, EditsPerAuthor: 20,
						Sections: 16, EditWork: 500 * time.Microsecond,
						Seed: 3, PageIODelay: benchIO, LockTimeout: 2 * time.Second,
					})
					if err != nil {
						b.Fatal(err)
					}
					report(b, res)
				}
			})
		}
	}
}

// BenchmarkH4OpenVsClosedNesting isolates the open/closed nesting choice:
// closed nesting transfers page locks upward and holds them to top-level
// commit; open nesting releases them at subtransaction commit against a
// compensation.
func BenchmarkH4OpenVsClosedNesting(b *testing.B) {
	for _, p := range []core.ProtocolKind{core.ProtocolClosedNested, core.ProtocolOpenNested} {
		b.Run(p.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := workload.RunEncyclopedia(workload.Config{
					Protocol: p, Workers: 8, TxnsPerWorker: 25, OpsPerTxn: 6,
					Keys: 250, TreeFanout: 300, Preload: 120, Seed: 17,
					Mix:         workload.Mix{InsertPct: 70, SearchPct: 10, UpdatePct: 20},
					PageIODelay: benchIO, MaxRetries: 300, LockTimeout: 2 * time.Second,
				})
				if err != nil {
					b.Fatal(err)
				}
				report(b, res)
			}
		})
	}
}

// BenchmarkH5CheckerScaling measures the offline oo-serializability
// checker's cost against schedule size: n transactions, each inserting one
// distinct key through the Enc → BpTree → Leaf → Page hierarchy.
func BenchmarkH5CheckerScaling(b *testing.B) {
	reg := paperex.Registry()
	for _, n := range []int{10, 50, 200} {
		b.Run(fmt.Sprintf("txns=%d", n), func(b *testing.B) {
			sys, order := syntheticSchedule(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a, err := sched.Analyze(sys, reg, order)
				if err != nil {
					b.Fatal(err)
				}
				if rep := a.Check(); !rep.SystemOOSerializable {
					b.Fatal("synthetic schedule must validate")
				}
			}
		})
	}
}

// syntheticSchedule builds n single-insert transactions over a shared leaf
// and page, serially executed.
func syntheticSchedule(n int) (*txn.System, []string) {
	leaf := txn.OID{Type: paperex.TypeLeaf, Name: "Leaf"}
	page := txn.OID{Type: paperex.TypePage, Name: "Page"}
	tops := make([]*txn.Action, n)
	var order []string
	for i := 0; i < n; i++ {
		bld := txn.NewTransaction(fmt.Sprintf("T%d", i+1))
		e := bld.Call(nil, paperex.Enc, "insert", fmt.Sprintf("k%04d", i))
		l := bld.Call(e, leaf, "insert", fmt.Sprintf("k%04d", i))
		r := bld.Call(l, page, "read")
		w := bld.Call(l, page, "write")
		order = append(order, r.ID, w.ID)
		tops[i] = bld.Build()
	}
	return txn.NewSystem(tops...), order
}

// BenchmarkValidatePipeline measures the full live pipeline: run a small
// concurrent workload with tracing, reconstruct the formal system, and
// check it.
func BenchmarkValidatePipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := workload.RunEncyclopedia(workload.Config{
			Protocol: core.ProtocolOpenNested, Workers: 4, TxnsPerWorker: 20,
			Keys: 100, TreeFanout: 16, Preload: 50, Seed: 5, Validate: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.OOSerializable {
			b.Fatal("live trace must validate")
		}
	}
}

// BenchmarkRecovery measures restart recovery cost against log size: n
// committed single-put transactions plus one in-flight loser, then
// analysis + redo + undo.
func BenchmarkRecovery(b *testing.B) {
	for _, n := range []int{50, 200, 1000} {
		b.Run(fmt.Sprintf("txns=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				rp := newBenchKV()
				db := core.Open(core.Options{Protocol: core.ProtocolOpenNested})
				if err := rp.register(db); err != nil {
					b.Fatal(err)
				}
				for j := 0; j < n; j++ {
					tx := db.Begin()
					if _, err := tx.Exec(benchKVOID, "put", fmt.Sprintf("k%d", j%8), fmt.Sprintf("v%d", j)); err != nil {
						b.Fatal(err)
					}
					if err := tx.Commit(); err != nil {
						b.Fatal(err)
					}
				}
				loser := db.Begin()
				_, _ = loser.Exec(benchKVOID, "put", "k0", "loser")
				disk, wal := db.CrashImage()
				b.StartTimer()

				_, rep, err := recovery.Recover(disk, wal, core.Options{Protocol: core.ProtocolOpenNested}, rp.register)
				if err != nil {
					b.Fatal(err)
				}
				if len(rep.Losers) != 1 {
					b.Fatalf("losers = %v", rep.Losers)
				}
			}
		})
	}
}

// benchKV is a minimal keyed object type for the recovery benchmark.
type benchKV struct {
	pages map[string]txn.OID
}

var benchKVOID = txn.OID{Type: "benchkv", Name: "KV"}

func newBenchKV() *benchKV { return &benchKV{} }

func (r *benchKV) register(db *core.DB) error {
	if r.pages == nil {
		r.pages = map[string]txn.OID{}
		for i := 0; i < 8; i++ {
			r.pages[fmt.Sprintf("k%d", i)] = db.AllocPage()
		}
	}
	return db.RegisterType(&core.ObjectType{
		Name:     "benchkv",
		Spec:     commut.KeyedSpec([]string{"get"}, []string{"put"}),
		ReadOnly: map[string]bool{"get": true},
		Methods: map[string]core.MethodFunc{
			"put": func(c *core.Ctx, self txn.OID, params []string) (string, error) {
				pg := r.pages[params[0]]
				old, err := c.Call(pg, "readx")
				if err != nil {
					return "", err
				}
				if _, err := c.Call(pg, "write", params[1]); err != nil {
					return "", err
				}
				return old, nil
			},
			"get": func(c *core.Ctx, self txn.OID, params []string) (string, error) {
				return c.Call(r.pages[params[0]], "read")
			},
		},
		Compensate: map[string]core.CompensateFunc{
			"put": func(params []string, result string) (string, []string, bool) {
				return "put", []string{params[0], result}, true
			},
		},
	})
}

// ckptBenchRow is one BENCH_checkpoint.json series point.
type ckptBenchRow struct {
	Txns          int     `json:"txns"`
	Checkpointed  bool    `json:"checkpointed"`
	RecoveryMS    float64 `json:"recovery_ms"`
	Redone        int     `json:"redone"`
	CheckpointLSN uint64  `json:"checkpoint_lsn"`
	WALBytes      int64   `json:"wal_bytes"`
	Segments      int     `json:"segments"`
}

// copyDirFiles copies the regular files of src into a fresh dst.
func copyDirFiles(b *testing.B, src, dst string) {
	b.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		b.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		b.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkR2CheckpointRecovery prices what checkpoints buy: restart time
// against history length. Without checkpoints the log keeps every record
// ever written and recovery replays all of it, so the recms series grows
// linearly with the transaction count; with periodic checkpoints recovery
// loads the newest image and redoes only the suffix above its barrier, so
// the series stays flat (and the on-disk log stays bounded — see the
// wal_bytes column). The last iteration of each series is written to
// BENCH_checkpoint.json.
func BenchmarkR2CheckpointRecovery(b *testing.B) {
	var rows []ckptBenchRow
	for _, n := range []int{200, 1000, 4000} {
		for _, ckpt := range []bool{false, true} {
			b.Run(fmt.Sprintf("txns=%d/checkpointed=%v", n, ckpt), func(b *testing.B) {
				// Build the history once: n committed puts, checkpointing
				// every n/8 commits in the checkpointed series.
				src := filepath.Join(b.TempDir(), "src")
				if err := os.MkdirAll(src, 0o755); err != nil {
					b.Fatal(err)
				}
				opts := core.Options{
					Protocol: core.ProtocolOpenNested, Durability: storage.GroupCommit,
					WALDir: src, WALSegmentSize: 16 << 10,
					DisableObs: true, DisableTrace: true, DisableSpans: true,
				}
				rp := newBenchKV()
				db, err := core.OpenDurable(opts)
				if err != nil {
					b.Fatal(err)
				}
				if err := rp.register(db); err != nil {
					b.Fatal(err)
				}
				for j := 0; j < n; j++ {
					tx := db.Begin()
					if _, err := tx.Exec(benchKVOID, "put", fmt.Sprintf("k%d", j%8), fmt.Sprintf("v%d", j)); err != nil {
						b.Fatal(err)
					}
					if err := tx.Commit(); err != nil {
						b.Fatal(err)
					}
					// Checkpoint every n/8 commits, but not after the last
					// one: real restarts always find some suffix to redo.
					if ckpt && j+1 < n && (j+1)%(n/8) == 0 {
						if _, err := db.Checkpoint(); err != nil {
							b.Fatal(err)
						}
					}
				}
				if err := db.Close(); err != nil {
					b.Fatal(err)
				}

				var row ckptBenchRow
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					dst := filepath.Join(b.TempDir(), fmt.Sprintf("run%d", i))
					copyDirFiles(b, src, dst)
					ropts := opts
					ropts.WALDir = dst
					b.StartTimer()

					start := time.Now()
					db2, rep, err := recovery.RecoverDir(dst, ropts, rp.register)
					took := time.Since(start)
					if err != nil {
						b.Fatal(err)
					}
					b.StopTimer()
					if ckpt && rep.CheckpointLSN == 0 {
						b.Fatal("checkpointed series recovered without a checkpoint")
					}
					if !ckpt && rep.Redone != n {
						b.Fatalf("full replay redid %d updates, want %d", rep.Redone, n)
					}
					segs, err := storage.WALSegments(dst)
					if err != nil {
						b.Fatal(err)
					}
					var walBytes int64
					for _, s := range segs {
						if fi, err := os.Stat(filepath.Join(dst, s.Name)); err == nil {
							walBytes += fi.Size()
						}
					}
					if err := db2.Close(); err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(float64(took.Microseconds())/1000, "recms")
					b.ReportMetric(float64(rep.Redone), "redone")
					row = ckptBenchRow{
						Txns: n, Checkpointed: ckpt,
						RecoveryMS: float64(took.Microseconds()) / 1000,
						Redone:     rep.Redone, CheckpointLSN: rep.CheckpointLSN,
						WALBytes: walBytes, Segments: len(segs),
					}
					b.StartTimer()
				}
				b.StopTimer()
				rows = append(rows, row)
			})
		}
	}
	if len(rows) > 0 {
		data, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile("BENCH_checkpoint.json", append(data, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkL1ShardedLockScaling isolates the lock-table sharding choice on
// a contended multi-object workload: many clients lock random objects out
// of a large space in mostly-commuting semantic modes, so almost every
// acquire grants immediately and the table's own synchronization is the
// bottleneck. With shards=1 every acquire and release funnels through one
// mutex (the pre-sharding design); with the default shard count
// (GOMAXPROCS) the traffic spreads and throughput scales with cores —
// compare the txn/s series at goroutines ≥ 4.
func BenchmarkL1ShardedLockScaling(b *testing.B) {
	for _, gs := range []int{1, 4, 8} {
		for _, shards := range []int{1, 0} { // 0 = manager default (GOMAXPROCS)
			label := "default"
			if shards == 1 {
				label = "1"
			}
			b.Run(fmt.Sprintf("goroutines=%d/shards=%s", gs, label), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, err := workload.RunLockStress(workload.LockStressConfig{
						Goroutines: gs, TxnsPerGoroutine: 4000, LocksPerTxn: 4,
						Objects: 1024, Shards: shards, ConflictPct: 2, Seed: 42,
						Timeout: 2 * time.Second,
					})
					if err != nil {
						b.Fatal(err)
					}
					report(b, res)
				}
			})
		}
	}
}

// walBenchRow is one BENCH_wal.json series point.
type walBenchRow struct {
	Mode      string  `json:"mode"`
	Workers   int     `json:"workers"`
	Committed int64   `json:"committed"`
	Seconds   float64 `json:"seconds"`
	TxnPerSec float64 `json:"txn_per_sec"`
}

// BenchmarkL1GroupCommit isolates the group-commit design against the
// naive per-commit-fsync baseline on the banking workload (uncontended:
// 512 accounts, no hot spot, so the fsync is the bottleneck, not locks).
// Sync-on-commit pays one fsync per committed transfer; group commit
// funnels all concurrent committers through the single flusher, so the
// fsync count per committed transaction falls with the worker count —
// at 16 workers the txn/s series should show ≥2× the baseline. The last
// iteration of each series is appended to BENCH_wal.json.
func BenchmarkL1GroupCommit(b *testing.B) {
	var rows []walBenchRow
	for _, workers := range []int{1, 4, 16} {
		for _, mode := range []storage.Durability{storage.SyncOnCommit, storage.GroupCommit} {
			b.Run(fmt.Sprintf("workers=%d/%s", workers, mode), func(b *testing.B) {
				var last workload.Result
				for i := 0; i < b.N; i++ {
					res, err := workload.RunBanking(workload.BankingConfig{
						Protocol: core.ProtocolOpenNested, Workers: workers,
						TxnsPerWorker: 30, Accounts: 512, HotPct: 0, Seed: 9,
						LockTimeout: 2 * time.Second, MaxRetries: 300,
						Durability: mode,
						WALDir:     filepath.Join(b.TempDir(), fmt.Sprintf("wal%d", i)),
					})
					if err != nil {
						b.Fatal(err)
					}
					report(b, res)
					last = res
				}
				rows = append(rows, walBenchRow{
					Mode: mode.String(), Workers: workers,
					Committed: last.Committed, Seconds: last.Elapsed.Seconds(),
					TxnPerSec: last.Throughput,
				})
			})
		}
	}
	if len(rows) > 0 {
		data, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile("BENCH_wal.json", append(data, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkA1FairnessAblation isolates the lock-manager fairness choice:
// under a reader-heavy hot-key mix, FIFO ordering slightly raises the
// median latency but bounds the tail that barging readers inflict on
// conflicting writers.
func BenchmarkA1FairnessAblation(b *testing.B) {
	for _, fair := range []bool{false, true} {
		b.Run(fmt.Sprintf("fair=%v", fair), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := workload.RunEncyclopedia(workload.Config{
					Protocol: core.ProtocolOpenNested, Workers: 8, TxnsPerWorker: 60,
					Keys: 10, Mix: workload.Mix{SearchPct: 80, UpdatePct: 20},
					TreeFanout: 16, Preload: 30, Seed: 11,
					FairLocks: fair, PageIODelay: benchIO, LockTimeout: 2 * time.Second,
				})
				if err != nil {
					b.Fatal(err)
				}
				report(b, res)
				b.ReportMetric(float64(res.LatencyP50.Microseconds()), "p50µs")
				b.ReportMetric(float64(res.LatencyP99.Microseconds()), "p99µs")
				b.ReportMetric(float64(res.LatencyMax.Microseconds()), "maxµs")
			}
		})
	}
}

// BenchmarkO1ObsOverhead prices the always-on observability layer: the
// same H1-style hot-leaf run and L1-style group-commit run, with the
// metrics registry + flight recorder attached ("on") and with DisableObs
// ("off"). The budget is 5% on txn/s — every instrumented hot-path site is
// an atomic add or a lock-free ring store, so the gap should be noise.
func BenchmarkO1ObsOverhead(b *testing.B) {
	b.Run("encyclopedia", func(b *testing.B) {
		for _, disable := range []bool{false, true} {
			name := "on"
			if disable {
				name = "off"
			}
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, err := workload.RunEncyclopedia(workload.Config{
						Protocol: core.ProtocolOpenNested, Workers: 8, TxnsPerWorker: 30,
						OpsPerTxn: 5, Keys: 300, TreeFanout: 400, Preload: 100, Seed: 123,
						Mix:         workload.Mix{InsertPct: 80, UpdatePct: 20},
						PageIODelay: benchIO, MaxRetries: 300, LockTimeout: 2 * time.Second,
						DisableObs: disable,
					})
					if err != nil {
						b.Fatal(err)
					}
					report(b, res)
				}
			})
		}
	})
	b.Run("group-commit", func(b *testing.B) {
		for _, disable := range []bool{false, true} {
			name := "on"
			if disable {
				name = "off"
			}
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, err := workload.RunBanking(workload.BankingConfig{
						Protocol: core.ProtocolOpenNested, Workers: 16,
						TxnsPerWorker: 30, Accounts: 512, HotPct: 0, Seed: 9,
						LockTimeout: 2 * time.Second, MaxRetries: 300,
						Durability: storage.GroupCommit,
						WALDir:     filepath.Join(b.TempDir(), fmt.Sprintf("wal%d", i)),
						DisableObs: disable,
					})
					if err != nil {
						b.Fatal(err)
					}
					report(b, res)
				}
			})
		}
	})
}

// BenchmarkO2SpanOverhead prices the always-on span tracing layer the same
// way O1 prices the metrics layer: the H1-style hot-leaf run and the
// L1-style group-commit run with span tracing on (every transaction
// sampled) and with DisableSpans. The budget is 5% on txn/s — uncontended
// acquires record nothing, so the steady-state cost is one map insert and
// one method-span append per dispatch.
func BenchmarkO2SpanOverhead(b *testing.B) {
	b.Run("encyclopedia", func(b *testing.B) {
		for _, disable := range []bool{false, true} {
			name := "on"
			if disable {
				name = "off"
			}
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, err := workload.RunEncyclopedia(workload.Config{
						Protocol: core.ProtocolOpenNested, Workers: 8, TxnsPerWorker: 30,
						OpsPerTxn: 5, Keys: 300, TreeFanout: 400, Preload: 100, Seed: 123,
						Mix:         workload.Mix{InsertPct: 80, UpdatePct: 20},
						PageIODelay: benchIO, MaxRetries: 300, LockTimeout: 2 * time.Second,
						DisableSpans: disable,
					})
					if err != nil {
						b.Fatal(err)
					}
					report(b, res)
				}
			})
		}
	})
	// The banking transactions here are ~40µs end to end, an extreme case
	// for per-transaction tracing; "sampled16" shows -span-sample 16 — the
	// recommended setting for ultra-short-transaction workloads — next to
	// trace-everything ("on") and DisableSpans ("off").
	b.Run("group-commit", func(b *testing.B) {
		for _, cfg := range []struct {
			name    string
			disable bool
			sample  int
		}{{"on", false, 0}, {"sampled16", false, 16}, {"off", true, 0}} {
			b.Run(cfg.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					var tracer *span.Tracer
					if cfg.sample > 0 {
						tracer = span.NewTracer(span.Options{SampleEvery: cfg.sample})
					}
					res, err := workload.RunBanking(workload.BankingConfig{
						Protocol: core.ProtocolOpenNested, Workers: 16,
						TxnsPerWorker: 30, Accounts: 512, HotPct: 0, Seed: 9,
						LockTimeout: 2 * time.Second, MaxRetries: 300,
						Durability:   storage.GroupCommit,
						WALDir:       filepath.Join(b.TempDir(), fmt.Sprintf("wal%d", i)),
						DisableSpans: cfg.disable,
						Tracer:       tracer,
					})
					if err != nil {
						b.Fatal(err)
					}
					report(b, res)
				}
			})
		}
	})
}
