// Command chaos closes the fault-injection loop: it runs an
// increment-only workload while arming failpoints mid-flight, then checks
// the three robustness invariants the degradation policies promise:
//
//  1. No committed data lost — every acknowledged increment survives,
//     including across a poison-and-restart cycle (recovered ≥ acked,
//     per account).
//  2. The engine either serves or reports — every operation ends in a
//     commit ack or a typed error (ErrOverloaded, ErrWALPoisoned, a lock
//     fault); nothing hangs and nothing fails silently.
//  3. No permanent livelock — once the faults are disarmed (or the engine
//     restarted), new transactions commit again.
//
// Rounds:
//
//	lock-delay  — lock.acquire delays stretch every conflict window
//	random      — a seeded pick of I/O and lock failpoints, armed mid-run
//	overload    — MaxInflight admission control under a slow lock path
//	fsync-error — wal.fsync poisons the durable WAL mid-run; verify
//	              rejection, restart recovery, and the no-loss invariant
//
// Usage:
//
//	chaos [-seed N] [-workers N] [-txns N] [-accounts N] [-round name]
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/recovery"
	"repro/internal/storage"
	"repro/internal/txn"
)

func main() {
	var (
		seed     = flag.Int64("seed", time.Now().UnixNano()%1_000_000, "random seed (failpoint picks and workload)")
		workers  = flag.Int("workers", 8, "concurrent workers")
		txns     = flag.Int("txns", 150, "transactions per worker and round")
		accounts = flag.Int("accounts", 8, "independent counters (one page each)")
		round    = flag.String("round", "all", "round: lock-delay | random | overload | fsync-error | all")
	)
	flag.Parse()
	fmt.Printf("chaos: seed=%d workers=%d txns=%d accounts=%d\n", *seed, *workers, *txns, *accounts)

	rounds := []struct {
		name string
		run  func(cfg chaosConfig) error
	}{
		{"lock-delay", runLockDelay},
		{"random", runRandomFaults},
		{"overload", runOverload},
		{"fsync-error", runFsyncError},
	}
	cfg := chaosConfig{seed: *seed, workers: *workers, txns: *txns, accounts: *accounts}
	failed := false
	for _, r := range rounds {
		if *round != "all" && *round != r.name {
			continue
		}
		fault.Default.DisarmAll()
		start := time.Now()
		err := r.run(cfg)
		fault.Default.DisarmAll()
		if err != nil {
			failed = true
			fmt.Printf("chaos: round %-12s FAIL (%v): %v\n", r.name, time.Since(start).Round(time.Millisecond), err)
		} else {
			fmt.Printf("chaos: round %-12s ok   (%v)\n", r.name, time.Since(start).Round(time.Millisecond))
		}
	}
	if failed {
		os.Exit(1)
	}
}

type chaosConfig struct {
	seed     int64
	workers  int
	txns     int
	accounts int
}

// counters tracks, per account, how many increments were acknowledged by
// Commit. It is the ground truth every invariant is checked against.
type counters struct {
	acked []atomic.Int64
}

func newCounters(n int) *counters { return &counters{acked: make([]atomic.Int64, n)} }

func (c *counters) total() int64 {
	var t int64
	for i := range c.acked {
		t += c.acked[i].Load()
	}
	return t
}

// increment runs one acknowledged +1 on the given account page through
// RunWithRetry; a nil return means the commit was acked (and counted).
func increment(db *core.DB, page txn.OID, c *counters, idx int) error {
	err := db.RunWithRetry(core.RetryPolicy{MaxAttempts: 50}, func(tx *core.Txn) error {
		v, err := tx.Exec(page, "readx")
		if err != nil {
			return err
		}
		n := int64(0)
		if v != "" {
			if n, err = strconv.ParseInt(v, 10, 64); err != nil {
				return err
			}
		}
		_, err = tx.Exec(page, "write", strconv.FormatInt(n+1, 10))
		return err
	})
	if err == nil {
		c.acked[idx].Add(1)
	}
	return err
}

// readBalances sums the counter pages through read-only transactions
// (which must work even in degraded mode).
func readBalances(db *core.DB, pages []txn.OID) ([]int64, error) {
	out := make([]int64, len(pages))
	for i, p := range pages {
		tx := db.Begin()
		v, err := tx.Exec(p, "read")
		if err != nil {
			_ = tx.Abort()
			return nil, fmt.Errorf("reading account %d: %w", i, err)
		}
		if err := tx.Commit(); err != nil {
			return nil, fmt.Errorf("read-only commit on account %d: %w", i, err)
		}
		if v != "" {
			if out[i], err = strconv.ParseInt(v, 10, 64); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// drive runs the increment workload across workers; faultAt, when > 0,
// arms the given failpoints after that many total attempts. It returns
// the per-error-class counts (keyed by a short label).
func drive(db *core.DB, pages []txn.OID, c *counters, cfg chaosConfig, faultAt int64, arm []string) map[string]int64 {
	var attempts atomic.Int64
	var armOnce sync.Once
	classes := struct {
		sync.Mutex
		m map[string]int64
	}{m: make(map[string]int64)}
	count := func(k string) {
		classes.Lock()
		classes.m[k]++
		classes.Unlock()
	}

	var wg sync.WaitGroup
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rr := rand.New(rand.NewSource(cfg.seed + int64(w)*7919))
			for i := 0; i < cfg.txns; i++ {
				if faultAt > 0 && attempts.Add(1) == faultAt {
					armOnce.Do(func() {
						for _, kv := range arm {
							if err := fault.Default.ArmString(kv); err != nil {
								panic(err)
							}
						}
					})
				}
				idx := rr.Intn(len(pages))
				err := increment(db, pages[idx], c, idx)
				switch {
				case err == nil:
					count("acked")
				case errors.Is(err, core.ErrOverloaded):
					count("overloaded")
				case errors.Is(err, storage.ErrWALPoisoned):
					count("poisoned")
					return // degraded: this worker is done writing
				default:
					count("other:" + firstLine(err))
				}
			}
		}(w)
	}
	wg.Wait()
	classes.Lock()
	defer classes.Unlock()
	return classes.m
}

func firstLine(err error) string {
	s := err.Error()
	if len(s) > 60 {
		s = s[:60]
	}
	return s
}

// verifyConservation checks invariant 1 on a live engine: every page's
// balance equals the acked increments exactly (mem-only rounds: nothing is
// in doubt, a rolled-back transaction must not leave a partial increment).
func verifyConservation(db *core.DB, pages []txn.OID, c *counters) error {
	bals, err := readBalances(db, pages)
	if err != nil {
		return err
	}
	for i, b := range bals {
		if want := c.acked[i].Load(); b != want {
			return fmt.Errorf("account %d: balance %d != %d acked increments", i, b, want)
		}
	}
	return nil
}

// verifyLiveness checks invariant 3: with all faults disarmed, one more
// increment per account must succeed.
func verifyLiveness(db *core.DB, pages []txn.OID, c *counters) error {
	fault.Default.DisarmAll()
	for i, p := range pages {
		if err := increment(db, p, c, i); err != nil {
			return fmt.Errorf("post-disarm increment on account %d: %w", i, err)
		}
	}
	return nil
}

func openMem(cfg chaosConfig, maxInflight int, admitTimeout time.Duration) (*core.DB, []txn.OID) {
	db := core.Open(core.Options{
		DisableTrace:     true,
		DisableSpans:     true,
		LockTimeout:      5 * time.Second,
		MaxInflight:      maxInflight,
		AdmissionTimeout: admitTimeout,
	})
	pages := make([]txn.OID, cfg.accounts)
	for i := range pages {
		pages[i] = db.AllocPage()
	}
	return db, pages
}

// runLockDelay stretches every lock acquire by a random delay on a
// fifth of the acquires — conflict windows widen, deadlock/timeout retries
// fire, and yet no increment may be lost or doubled.
func runLockDelay(cfg chaosConfig) error {
	db, pages := openMem(cfg, 0, 0)
	c := newCounters(cfg.accounts)
	classes := drive(db, pages, c, cfg, 1, []string{
		fmt.Sprintf("lock.acquire=delay(200us);p=0.2;seed=%d", cfg.seed),
	})
	if classes["acked"] == 0 {
		return fmt.Errorf("nothing committed under lock delays: %v", classes)
	}
	if err := verifyConservation(db, pages, c); err != nil {
		return err
	}
	return verifyLiveness(db, pages, c)
}

// runRandomFaults arms a seeded pick of failpoints mid-run (invariant 2:
// every attempt must end acked or typed, never hung) and re-checks
// conservation and liveness.
func runRandomFaults(cfg chaosConfig) error {
	menu := []string{
		fmt.Sprintf("store.read=error(chaos read);p=0.02;seed=%d", cfg.seed),
		fmt.Sprintf("lock.acquire=delay(500us);p=0.1;seed=%d", cfg.seed),
		fmt.Sprintf("lock.acquire=error(chaos acquire);p=0.02;seed=%d", cfg.seed),
		fmt.Sprintf("store.read=delay(1ms);p=0.05;seed=%d", cfg.seed),
	}
	rr := rand.New(rand.NewSource(cfg.seed))
	picks := []string{menu[rr.Intn(2)], menu[2+rr.Intn(2)]}
	fmt.Printf("chaos:   random picks: %v\n", picks)

	db, pages := openMem(cfg, 0, 0)
	c := newCounters(cfg.accounts)
	mid := int64(cfg.workers*cfg.txns) / 3
	if mid < 1 {
		mid = 1
	}
	classes := drive(db, pages, c, cfg, mid, picks)
	if classes["acked"] == 0 {
		return fmt.Errorf("nothing committed under random faults: %v", classes)
	}
	fault.Default.DisarmAll()
	if err := verifyConservation(db, pages, c); err != nil {
		return err
	}
	return verifyLiveness(db, pages, c)
}

// runOverload pairs a small MaxInflight with a slowed lock path: admission
// waits time out with ErrOverloaded (typed, invariant 2), everything acked
// is conserved, and the engine drains normally once the drag is gone.
func runOverload(cfg chaosConfig) error {
	db, pages := openMem(cfg, 2, 3*time.Millisecond)
	c := newCounters(cfg.accounts)
	classes := drive(db, pages, c, cfg, 1, []string{
		fmt.Sprintf("lock.acquire=delay(2ms);p=0.5;seed=%d", cfg.seed),
	})
	fmt.Printf("chaos:   overload classes: acked=%d overloaded=%d\n", classes["acked"], classes["overloaded"])
	if classes["acked"] == 0 {
		return fmt.Errorf("nothing committed under overload: %v", classes)
	}
	if db.Degraded() != nil {
		return fmt.Errorf("overload must not degrade the engine")
	}
	if err := verifyConservation(db, pages, c); err != nil {
		return err
	}
	if err := verifyLiveness(db, pages, c); err != nil {
		return err
	}
	if classes["overloaded"] > 0 && db.Health().Overloads == 0 {
		return fmt.Errorf("ErrOverloaded returned but engine.overloads metric is zero")
	}
	return nil
}

// runFsyncError is the acceptance round: a durable engine runs the
// increment workload, wal.fsync starts failing mid-run, the WAL poisons,
// writers are rejected with ErrWALPoisoned, reads still serve — then the
// process "restarts" via RecoverDir and every acked increment must be
// recovered (per account, recovered ≥ acked; nothing silently lost).
func runFsyncError(cfg chaosConfig) error {
	dir, err := os.MkdirTemp("", "chaos-wal-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	opts := core.Options{
		DisableTrace: true,
		DisableSpans: true,
		LockTimeout:  5 * time.Second,
		Durability:   storage.GroupCommit,
		WALDir:       dir,
	}
	db, err := core.OpenDurable(opts)
	if err != nil {
		return err
	}
	pages := make([]txn.OID, cfg.accounts)
	for i := range pages {
		pages[i] = db.AllocPage()
	}
	c := newCounters(cfg.accounts)
	mid := int64(cfg.workers*cfg.txns) / 2
	classes := drive(db, pages, c, cfg, mid, []string{"wal.fsync=error(chaos fsync)"})
	fmt.Printf("chaos:   fsync classes: acked=%d poisoned=%d\n", classes["acked"], classes["poisoned"])
	if classes["poisoned"] == 0 {
		return fmt.Errorf("no writer observed ErrWALPoisoned: %v", classes)
	}
	if db.Degraded() == nil {
		return fmt.Errorf("engine not degraded after WAL poison")
	}
	// Invariant 2, degraded half: reads still serve while writes are refused.
	if _, err := readBalances(db, pages); err != nil {
		return fmt.Errorf("degraded engine refused reads: %w", err)
	}
	wtx := db.Begin()
	if _, err := wtx.Exec(pages[0], "write", "evil"); err != nil {
		return err
	}
	if err := wtx.Commit(); !errors.Is(err, storage.ErrWALPoisoned) {
		return fmt.Errorf("degraded engine accepted a write-commit: %v", err)
	}
	_ = db.Close()
	fault.Default.DisarmAll()

	// Restart. Recovery replays the durable log; invariant 1: nothing acked
	// may be missing.
	db2, rep, err := recovery.RecoverDir(dir, opts, func(*core.DB) error { return nil })
	if err != nil {
		return fmt.Errorf("recovery after poison: %w", err)
	}
	defer db2.Close()
	bals, err := readBalances(db2, pages)
	if err != nil {
		return err
	}
	for i, b := range bals {
		if acked := c.acked[i].Load(); b < acked {
			return fmt.Errorf("SILENT LOSS on account %d: recovered %d < acked %d (winners=%d losers=%d)",
				i, b, acked, len(rep.Winners), len(rep.Losers))
		}
	}
	// Invariant 3: the recovered engine acknowledges commits again.
	for i := range bals {
		c.acked[i].Store(bals[i])
	}
	for i, p := range pages {
		if err := increment(db2, p, c, i); err != nil {
			return fmt.Errorf("post-recovery increment on account %d: %w", i, err)
		}
	}
	return nil
}
