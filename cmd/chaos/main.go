// Command chaos closes the fault-injection loop: it runs an
// increment-only workload while arming failpoints mid-flight, then checks
// the three robustness invariants the degradation policies promise:
//
//  1. No committed data lost — every acknowledged increment survives,
//     including across a poison-and-restart cycle (recovered ≥ acked,
//     per account).
//  2. The engine either serves or reports — every operation ends in a
//     commit ack or a typed error (ErrOverloaded, ErrWALPoisoned, a lock
//     fault); nothing hangs and nothing fails silently.
//  3. No permanent livelock — once the faults are disarmed (or the engine
//     restarted), new transactions commit again.
//
// Rounds:
//
//	lock-delay     — lock.acquire delays stretch every conflict window
//	random         — a seeded pick of I/O and lock failpoints, armed mid-run
//	overload       — MaxInflight admission control under a slow lock path
//	fsync-error    — wal.fsync poisons the durable WAL mid-run; verify
//	                 rejection, restart recovery, and the no-loss invariant
//	leader-kill    — a real 3-process replicated cluster (chaos re-execs
//	                 itself as the replicas) takes client traffic while the
//	                 leader is SIGKILLed mid-burst, -iters times in a row;
//	                 after every failover the new leader must hold every
//	                 quorum-acked commit (recovered ≥ acked, per account)
//	                 and at most acked + commits-in-doubt (no doubling)
//	repl-partition — in-process 3-node cluster; the leader is isolated from
//	                 its peers mid-run, must abdicate, and the healed
//	                 cluster must conserve every acked increment
//
// leader-kill and repl-partition need ports 21330..21345 on loopback and
// are not part of -round all; run them explicitly (make repl-smoke does).
//
// Usage:
//
//	chaos [-seed N] [-workers N] [-txns N] [-accounts N] [-round name] [-iters N]
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/recovery"
	"repro/internal/repl"
	"repro/internal/server"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/workload"
)

func main() {
	var (
		seed     = flag.Int64("seed", time.Now().UnixNano()%1_000_000, "random seed (failpoint picks and workload)")
		workers  = flag.Int("workers", 8, "concurrent workers")
		txns     = flag.Int("txns", 150, "transactions per worker and round")
		accounts = flag.Int("accounts", 8, "independent counters (one page each)")
		round    = flag.String("round", "all", "round: lock-delay | random | overload | fsync-error | leader-kill | repl-partition | all")
		iters    = flag.Int("iters", 20, "leader-kill: consecutive kill/failover/verify iterations")

		replChild     = flag.Bool("repl-child", false, "internal: run as a leader-kill replica child process")
		childNode     = flag.String("child-node", "", "internal: child node id")
		childDir      = flag.String("child-dir", "", "internal: child WAL directory")
		childAddr     = flag.String("child-addr", "", "internal: child client address")
		childReplAddr = flag.String("child-repl-addr", "", "internal: child replication address")
		childPeers    = flag.String("child-peers", "", "internal: child peers (id=addr,...)")
	)
	flag.Parse()
	if *replChild {
		runReplChild(*childNode, *childDir, *childAddr, *childReplAddr, *childPeers, *accounts)
		return
	}
	fmt.Printf("chaos: seed=%d workers=%d txns=%d accounts=%d\n", *seed, *workers, *txns, *accounts)

	rounds := []struct {
		name string
		run  func(cfg chaosConfig) error
	}{
		{"lock-delay", runLockDelay},
		{"random", runRandomFaults},
		{"overload", runOverload},
		{"fsync-error", runFsyncError},
		{"leader-kill", runLeaderKill},
		{"repl-partition", runReplPartition},
	}
	cfg := chaosConfig{seed: *seed, workers: *workers, txns: *txns, accounts: *accounts, iters: *iters}
	failed := false
	for _, r := range rounds {
		if *round == "all" && (r.name == "leader-kill" || r.name == "repl-partition") {
			// The replication rounds bind fixed loopback ports and spawn
			// child processes; they run only when asked for by name.
			continue
		}
		if *round != "all" && *round != r.name {
			continue
		}
		fault.Default.DisarmAll()
		start := time.Now()
		err := r.run(cfg)
		fault.Default.DisarmAll()
		if err != nil {
			failed = true
			fmt.Printf("chaos: round %-12s FAIL (%v): %v\n", r.name, time.Since(start).Round(time.Millisecond), err)
		} else {
			fmt.Printf("chaos: round %-12s ok   (%v)\n", r.name, time.Since(start).Round(time.Millisecond))
		}
	}
	if failed {
		os.Exit(1)
	}
}

type chaosConfig struct {
	seed     int64
	workers  int
	txns     int
	accounts int
	iters    int
}

// counters tracks, per account, how many increments were acknowledged by
// Commit. It is the ground truth every invariant is checked against.
type counters struct {
	acked []atomic.Int64
}

func newCounters(n int) *counters { return &counters{acked: make([]atomic.Int64, n)} }

func (c *counters) total() int64 {
	var t int64
	for i := range c.acked {
		t += c.acked[i].Load()
	}
	return t
}

// increment runs one acknowledged +1 on the given account page through
// RunWithRetry; a nil return means the commit was acked (and counted).
func increment(db *core.DB, page txn.OID, c *counters, idx int) error {
	err := db.RunWithRetry(core.RetryPolicy{MaxAttempts: 50}, func(tx *core.Txn) error {
		v, err := tx.Exec(page, "readx")
		if err != nil {
			return err
		}
		n := int64(0)
		if v != "" {
			if n, err = strconv.ParseInt(v, 10, 64); err != nil {
				return err
			}
		}
		_, err = tx.Exec(page, "write", strconv.FormatInt(n+1, 10))
		return err
	})
	if err == nil {
		c.acked[idx].Add(1)
	}
	return err
}

// readBalances sums the counter pages through read-only transactions
// (which must work even in degraded mode).
func readBalances(db *core.DB, pages []txn.OID) ([]int64, error) {
	out := make([]int64, len(pages))
	for i, p := range pages {
		tx := db.Begin()
		v, err := tx.Exec(p, "read")
		if err != nil {
			_ = tx.Abort()
			return nil, fmt.Errorf("reading account %d: %w", i, err)
		}
		if err := tx.Commit(); err != nil {
			return nil, fmt.Errorf("read-only commit on account %d: %w", i, err)
		}
		if v != "" {
			if out[i], err = strconv.ParseInt(v, 10, 64); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// drive runs the increment workload across workers; faultAt, when > 0,
// arms the given failpoints after that many total attempts. It returns
// the per-error-class counts (keyed by a short label).
func drive(db *core.DB, pages []txn.OID, c *counters, cfg chaosConfig, faultAt int64, arm []string) map[string]int64 {
	var attempts atomic.Int64
	var armOnce sync.Once
	classes := struct {
		sync.Mutex
		m map[string]int64
	}{m: make(map[string]int64)}
	count := func(k string) {
		classes.Lock()
		classes.m[k]++
		classes.Unlock()
	}

	var wg sync.WaitGroup
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rr := rand.New(rand.NewSource(cfg.seed + int64(w)*7919))
			for i := 0; i < cfg.txns; i++ {
				if faultAt > 0 && attempts.Add(1) == faultAt {
					armOnce.Do(func() {
						for _, kv := range arm {
							if err := fault.Default.ArmString(kv); err != nil {
								panic(err)
							}
						}
					})
				}
				idx := rr.Intn(len(pages))
				err := increment(db, pages[idx], c, idx)
				switch {
				case err == nil:
					count("acked")
				case errors.Is(err, core.ErrOverloaded):
					count("overloaded")
				case errors.Is(err, storage.ErrWALPoisoned):
					count("poisoned")
					return // degraded: this worker is done writing
				default:
					count("other:" + firstLine(err))
				}
			}
		}(w)
	}
	wg.Wait()
	classes.Lock()
	defer classes.Unlock()
	return classes.m
}

func firstLine(err error) string {
	s := err.Error()
	if len(s) > 60 {
		s = s[:60]
	}
	return s
}

// verifyConservation checks invariant 1 on a live engine: every page's
// balance equals the acked increments exactly (mem-only rounds: nothing is
// in doubt, a rolled-back transaction must not leave a partial increment).
func verifyConservation(db *core.DB, pages []txn.OID, c *counters) error {
	bals, err := readBalances(db, pages)
	if err != nil {
		return err
	}
	for i, b := range bals {
		if want := c.acked[i].Load(); b != want {
			return fmt.Errorf("account %d: balance %d != %d acked increments", i, b, want)
		}
	}
	return nil
}

// verifyLiveness checks invariant 3: with all faults disarmed, one more
// increment per account must succeed.
func verifyLiveness(db *core.DB, pages []txn.OID, c *counters) error {
	fault.Default.DisarmAll()
	for i, p := range pages {
		if err := increment(db, p, c, i); err != nil {
			return fmt.Errorf("post-disarm increment on account %d: %w", i, err)
		}
	}
	return nil
}

func openMem(cfg chaosConfig, maxInflight int, admitTimeout time.Duration) (*core.DB, []txn.OID) {
	db := core.Open(core.Options{
		DisableTrace:     true,
		DisableSpans:     true,
		LockTimeout:      5 * time.Second,
		MaxInflight:      maxInflight,
		AdmissionTimeout: admitTimeout,
	})
	pages := make([]txn.OID, cfg.accounts)
	for i := range pages {
		pages[i] = db.AllocPage()
	}
	return db, pages
}

// runLockDelay stretches every lock acquire by a random delay on a
// fifth of the acquires — conflict windows widen, deadlock/timeout retries
// fire, and yet no increment may be lost or doubled.
func runLockDelay(cfg chaosConfig) error {
	db, pages := openMem(cfg, 0, 0)
	c := newCounters(cfg.accounts)
	classes := drive(db, pages, c, cfg, 1, []string{
		fmt.Sprintf("lock.acquire=delay(200us);p=0.2;seed=%d", cfg.seed),
	})
	if classes["acked"] == 0 {
		return fmt.Errorf("nothing committed under lock delays: %v", classes)
	}
	if err := verifyConservation(db, pages, c); err != nil {
		return err
	}
	return verifyLiveness(db, pages, c)
}

// runRandomFaults arms a seeded pick of failpoints mid-run (invariant 2:
// every attempt must end acked or typed, never hung) and re-checks
// conservation and liveness.
func runRandomFaults(cfg chaosConfig) error {
	menu := []string{
		fmt.Sprintf("store.read=error(chaos read);p=0.02;seed=%d", cfg.seed),
		fmt.Sprintf("lock.acquire=delay(500us);p=0.1;seed=%d", cfg.seed),
		fmt.Sprintf("lock.acquire=error(chaos acquire);p=0.02;seed=%d", cfg.seed),
		fmt.Sprintf("store.read=delay(1ms);p=0.05;seed=%d", cfg.seed),
	}
	rr := rand.New(rand.NewSource(cfg.seed))
	picks := []string{menu[rr.Intn(2)], menu[2+rr.Intn(2)]}
	fmt.Printf("chaos:   random picks: %v\n", picks)

	db, pages := openMem(cfg, 0, 0)
	c := newCounters(cfg.accounts)
	mid := int64(cfg.workers*cfg.txns) / 3
	if mid < 1 {
		mid = 1
	}
	classes := drive(db, pages, c, cfg, mid, picks)
	if classes["acked"] == 0 {
		return fmt.Errorf("nothing committed under random faults: %v", classes)
	}
	fault.Default.DisarmAll()
	if err := verifyConservation(db, pages, c); err != nil {
		return err
	}
	return verifyLiveness(db, pages, c)
}

// runOverload pairs a small MaxInflight with a slowed lock path: admission
// waits time out with ErrOverloaded (typed, invariant 2), everything acked
// is conserved, and the engine drains normally once the drag is gone.
func runOverload(cfg chaosConfig) error {
	db, pages := openMem(cfg, 2, 3*time.Millisecond)
	c := newCounters(cfg.accounts)
	classes := drive(db, pages, c, cfg, 1, []string{
		fmt.Sprintf("lock.acquire=delay(2ms);p=0.5;seed=%d", cfg.seed),
	})
	fmt.Printf("chaos:   overload classes: acked=%d overloaded=%d\n", classes["acked"], classes["overloaded"])
	if classes["acked"] == 0 {
		return fmt.Errorf("nothing committed under overload: %v", classes)
	}
	if db.Degraded() != nil {
		return fmt.Errorf("overload must not degrade the engine")
	}
	if err := verifyConservation(db, pages, c); err != nil {
		return err
	}
	if err := verifyLiveness(db, pages, c); err != nil {
		return err
	}
	if classes["overloaded"] > 0 && db.Health().Overloads == 0 {
		return fmt.Errorf("ErrOverloaded returned but engine.overloads metric is zero")
	}
	return nil
}

// runFsyncError is the acceptance round: a durable engine runs the
// increment workload, wal.fsync starts failing mid-run, the WAL poisons,
// writers are rejected with ErrWALPoisoned, reads still serve — then the
// process "restarts" via RecoverDir and every acked increment must be
// recovered (per account, recovered ≥ acked; nothing silently lost).
func runFsyncError(cfg chaosConfig) error {
	dir, err := os.MkdirTemp("", "chaos-wal-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	opts := core.Options{
		DisableTrace: true,
		DisableSpans: true,
		LockTimeout:  5 * time.Second,
		Durability:   storage.GroupCommit,
		WALDir:       dir,
	}
	db, err := core.OpenDurable(opts)
	if err != nil {
		return err
	}
	pages := make([]txn.OID, cfg.accounts)
	for i := range pages {
		pages[i] = db.AllocPage()
	}
	c := newCounters(cfg.accounts)
	mid := int64(cfg.workers*cfg.txns) / 2
	classes := drive(db, pages, c, cfg, mid, []string{"wal.fsync=error(chaos fsync)"})
	fmt.Printf("chaos:   fsync classes: acked=%d poisoned=%d\n", classes["acked"], classes["poisoned"])
	if classes["poisoned"] == 0 {
		return fmt.Errorf("no writer observed ErrWALPoisoned: %v", classes)
	}
	if db.Degraded() == nil {
		return fmt.Errorf("engine not degraded after WAL poison")
	}
	// Invariant 2, degraded half: reads still serve while writes are refused.
	if _, err := readBalances(db, pages); err != nil {
		return fmt.Errorf("degraded engine refused reads: %w", err)
	}
	wtx := db.Begin()
	if _, err := wtx.Exec(pages[0], "write", "evil"); err != nil {
		return err
	}
	if err := wtx.Commit(); !errors.Is(err, storage.ErrWALPoisoned) {
		return fmt.Errorf("degraded engine accepted a write-commit: %v", err)
	}
	_ = db.Close()
	fault.Default.DisarmAll()

	// Restart. Recovery replays the durable log; invariant 1: nothing acked
	// may be missing.
	db2, rep, err := recovery.RecoverDir(dir, opts, func(*core.DB) error { return nil })
	if err != nil {
		return fmt.Errorf("recovery after poison: %w", err)
	}
	defer db2.Close()
	bals, err := readBalances(db2, pages)
	if err != nil {
		return err
	}
	for i, b := range bals {
		if acked := c.acked[i].Load(); b < acked {
			return fmt.Errorf("SILENT LOSS on account %d: recovered %d < acked %d (winners=%d losers=%d)",
				i, b, acked, len(rep.Winners), len(rep.Losers))
		}
	}
	// Invariant 3: the recovered engine acknowledges commits again.
	for i := range bals {
		c.acked[i].Store(bals[i])
	}
	for i, p := range pages {
		if err := increment(db2, p, c, i); err != nil {
			return fmt.Errorf("post-recovery increment on account %d: %w", i, err)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// leader-kill: a real replicated cluster under repeated leader SIGKILL.

// replBankOpen is the promotion hook both replication rounds share: fresh
// directories get an unfunded banking schema, restarts recover it.
func replBankOpen(accounts int) func(dir string, fresh bool) (*core.DB, error) {
	return func(dir string, fresh bool) (*core.DB, error) {
		opts := core.Options{
			DisableTrace: true,
			DisableSpans: true,
			LockTimeout:  5 * time.Second,
			Durability:   storage.GroupCommit,
			WALDir:       dir,
		}
		if fresh {
			db, err := core.OpenDurable(opts)
			if err != nil {
				return nil, err
			}
			if _, err := workload.InstallBanking(db, accounts, 0); err != nil {
				db.Close()
				return nil, err
			}
			return db, nil
		}
		db, _, err := recovery.RecoverDir(dir, opts, func(db *core.DB) error {
			_, rerr := workload.RegisterBanking(db, accounts)
			return rerr
		})
		return db, err
	}
}

// runReplChild is the -repl-child entry point: one replica process — a
// repl.Node fronted by a replicated session layer — that reports role
// transitions on stdout ("role=<r> term=<t>") for the parent to parse and
// then waits to be SIGKILLed.
func runReplChild(id, dir, addr, replAddr, peerList string, accounts int) {
	var peers []repl.Peer
	for _, part := range strings.Split(peerList, ",") {
		pid, paddr, ok := strings.Cut(part, "=")
		if !ok {
			fmt.Fprintf(os.Stderr, "chaos child: bad peer %q\n", part)
			os.Exit(2)
		}
		peers = append(peers, repl.Peer{ID: pid, Addr: paddr})
	}
	node, err := repl.Open(repl.Config{
		ID:         id,
		Addr:       replAddr,
		Advertise:  addr,
		Peers:      peers,
		Dir:        dir,
		OpenEngine: replBankOpen(accounts),
		Durability: storage.GroupCommit,
		OnRole: func(role repl.Role, term uint64) {
			fmt.Printf("role=%s term=%d\n", role, term)
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos child %s: %v\n", id, err)
		os.Exit(1)
	}
	srv := server.NewReplicated(node, nil, server.Options{})
	if _, err := srv.Start(addr); err != nil {
		fmt.Fprintf(os.Stderr, "chaos child %s: %v\n", id, err)
		os.Exit(1)
	}
	fmt.Println("serving")
	select {} // the parent SIGKILLs us; there is no graceful exit to test
}

// childProc is the parent's handle on one replica child: the process plus
// the role/term state parsed from its stdout.
type childProc struct {
	id, dir, addr, replAddr, peers string
	accounts                       int

	mu    sync.Mutex
	cmd   *exec.Cmd
	alive bool
	ready bool
	role  string
	term  uint64
}

func (cp *childProc) spawn() error {
	self, err := os.Executable()
	if err != nil {
		return err
	}
	cmd := exec.Command(self, "-repl-child",
		"-child-node", cp.id, "-child-dir", cp.dir,
		"-child-addr", cp.addr, "-child-repl-addr", cp.replAddr,
		"-child-peers", cp.peers, "-accounts", strconv.Itoa(cp.accounts))
	out, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return err
	}
	cp.mu.Lock()
	cp.cmd, cp.alive, cp.ready, cp.role, cp.term = cmd, true, false, "", 0
	cp.mu.Unlock()
	go cp.scan(out)
	go func() {
		_ = cmd.Wait()
		cp.mu.Lock()
		cp.alive = false
		cp.mu.Unlock()
	}()
	return nil
}

func (cp *childProc) scan(out io.Reader) {
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		line := sc.Text()
		cp.mu.Lock()
		if line == "serving" {
			cp.ready = true
		} else if rest, ok := strings.CutPrefix(line, "role="); ok {
			if role, termStr, ok := strings.Cut(rest, " term="); ok {
				if term, err := strconv.ParseUint(termStr, 10, 64); err == nil {
					cp.role, cp.term = role, term
				}
			}
		}
		cp.mu.Unlock()
	}
}

func (cp *childProc) state() (alive, ready bool, role string, term uint64) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return cp.alive, cp.ready, cp.role, cp.term
}

func (cp *childProc) kill() {
	cp.mu.Lock()
	cmd := cp.cmd
	cp.mu.Unlock()
	if cmd != nil && cmd.Process != nil {
		_ = cmd.Process.Kill() // SIGKILL: no drain, no fsync, no goodbyes
	}
}

// leaderChild returns the alive child currently claiming leadership at the
// highest term, or nil.
func leaderChild(children []*childProc) *childProc {
	var best *childProc
	var bestTerm uint64
	for _, cp := range children {
		alive, _, role, term := cp.state()
		if alive && role == "leader" && term >= bestTerm {
			best, bestTerm = cp, term
		}
	}
	return best
}

func waitLeaderChild(children []*childProc, timeout time.Duration) (*childProc, error) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cp := leaderChild(children); cp != nil {
			return cp, nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return nil, fmt.Errorf("no leader within %v", timeout)
}

// runLeaderKill is the replication acceptance round. One 3-process cluster
// lives through every iteration: clients credit accounts through the
// redirect-following pool, the leader is SIGKILLed mid-burst, and after
// failover the new leader must hold, per account, at least every acked
// credit and at most acked + in-doubt (nothing lost, nothing doubled).
// The killed process then restarts — recovering its WAL and rejoining as
// a follower — before the next iteration kills the next leader.
func runLeaderKill(cfg chaosConfig) error {
	const k = 3
	tmp, err := os.MkdirTemp("", "chaos-repl-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	children := make([]*childProc, k)
	addrs := make([]string, k)
	for i := range children {
		addrs[i] = fmt.Sprintf("127.0.0.1:%d", 21330+i)
	}
	for i := range children {
		var peers []string
		for j := range children {
			if j != i {
				peers = append(peers, fmt.Sprintf("n%d=127.0.0.1:%d", j, 21340+j))
			}
		}
		dir := fmt.Sprintf("%s/n%d", tmp, i)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		children[i] = &childProc{
			id: fmt.Sprintf("n%d", i), dir: dir, addr: addrs[i],
			replAddr: fmt.Sprintf("127.0.0.1:%d", 21340+i),
			peers:    strings.Join(peers, ","), accounts: cfg.accounts,
		}
		if err := children[i].spawn(); err != nil {
			return err
		}
	}
	defer func() {
		for _, cp := range children {
			cp.kill()
		}
	}()
	if _, err := waitLeaderChild(children, 15*time.Second); err != nil {
		return err
	}

	cl, err := client.Dial(addrs[0], client.Options{
		PoolSize: cfg.workers, Fallbacks: addrs[1:], Seed: cfg.seed,
	})
	if err != nil {
		return err
	}
	defer cl.Close()
	policy := client.RetryPolicy{MaxAttempts: 400, MaxBackoff: 25 * time.Millisecond}

	acked := make([]atomic.Int64, cfg.accounts)
	doubt := make([]atomic.Int64, cfg.accounts)
	readBal := func(i int) (int64, error) {
		var bal int64
		err := cl.RunWithRetry(policy, func(tx *client.Tx) error {
			s, err := tx.Invoke(workload.AccountType, fmt.Sprintf("Acct%d", i), "balance")
			if err != nil {
				return err
			}
			bal, err = strconv.ParseInt(s, 10, 64)
			return err
		})
		return bal, err
	}

	iters := cfg.iters
	if iters < 1 {
		iters = 1
	}
	burst := cfg.workers * cfg.txns / 10
	if burst < 40 {
		burst = 40
	}
	for it := 0; it < iters; it++ {
		leader, err := waitLeaderChild(children, 15*time.Second)
		if err != nil {
			return fmt.Errorf("iteration %d: %w", it, err)
		}
		// Make sure promotion finished (a read round-trips through the
		// session layer) before the burst starts.
		if _, err := readBal(0); err != nil {
			return fmt.Errorf("iteration %d: pre-burst read: %w", it, err)
		}

		var sent atomic.Int64
		var killOnce sync.Once
		var wg sync.WaitGroup
		perWorker := burst / cfg.workers
		if perWorker < 1 {
			perWorker = 1
		}
		errCh := make(chan error, cfg.workers)
		for w := 0; w < cfg.workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rr := rand.New(rand.NewSource(cfg.seed + int64(it*1009+w*7919)))
				for i := 0; i < perWorker; i++ {
					if sent.Add(1) == int64(burst/2) {
						killOnce.Do(leader.kill)
					}
					idx := rr.Intn(cfg.accounts)
					err := cl.RunWithRetry(policy, func(tx *client.Tx) error {
						_, err := tx.Invoke(workload.AccountType, fmt.Sprintf("Acct%d", idx), "credit", "1")
						return err
					})
					switch {
					case err == nil:
						acked[idx].Add(1)
					case errors.Is(err, client.ErrCommitInDoubt):
						// The kill raced the COMMIT response; the credit may
						// or may not be durable. Reconciled below.
						doubt[idx].Add(1)
					default:
						errCh <- fmt.Errorf("iteration %d worker %d: %w", it, w, err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		killOnce.Do(leader.kill) // tiny bursts: kill even if the trigger never hit
		close(errCh)
		if err := <-errCh; err != nil {
			return err
		}

		// Failover: a surviving node must take over, and it must hold the
		// acked history. Reads redirect to the NEW leader, so this check is
		// exactly "recovered ≥ acked on the machine that took over".
		newLeader, err := waitLeaderChild(children, 15*time.Second)
		if err != nil {
			return fmt.Errorf("iteration %d: no failover after killing %s: %w", it, leader.id, err)
		}
		for i := 0; i < cfg.accounts; i++ {
			bal, err := readBal(i)
			if err != nil {
				return fmt.Errorf("iteration %d: verify read: %w", it, err)
			}
			a, d := acked[i].Load(), doubt[i].Load()
			if bal < a {
				return fmt.Errorf("iteration %d: SILENT LOSS on account %d: new leader %s has %d < %d acked",
					it, i, newLeader.id, bal, a)
			}
			if bal > a+d {
				return fmt.Errorf("iteration %d: DOUBLE COMMIT on account %d: new leader %s has %d > %d acked + %d in doubt",
					it, i, newLeader.id, bal, a, d)
			}
			// In-doubt credits are now resolved either way; fold them into
			// the ground truth (the documented reconcile-by-reading contract).
			acked[i].Store(bal)
			doubt[i].Store(0)
		}

		// Restart the killed process: it recovers its WAL and rejoins, so
		// the next iteration again kills a leader out of a full cluster.
		if err := leader.spawn(); err != nil {
			return fmt.Errorf("iteration %d: restart %s: %w", it, leader.id, err)
		}
		deadline := time.Now().Add(15 * time.Second)
		for {
			if _, ready, _, _ := leader.state(); ready {
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("iteration %d: restarted %s never came back", it, leader.id)
			}
			time.Sleep(10 * time.Millisecond)
		}
		fmt.Printf("chaos:   iter %2d: killed %s, %s took over (acked total %d)\n", it, leader.id, newLeader.id, totalOf(acked))
	}
	return nil
}

func totalOf(c []atomic.Int64) int64 {
	var t int64
	for i := range c {
		t += c[i].Load()
	}
	return t
}

// ---------------------------------------------------------------------------
// repl-partition: in-process cluster, leader isolated from its peers.

// runReplPartition isolates the leader instead of killing it: its quorum
// waits time out, it abdicates (commits fail typed, never silently), the
// majority elects a successor, and once healed the old leader rejoins as
// a follower. Every acked increment must survive on the new leader.
func runReplPartition(cfg chaosConfig) error {
	const k = 3
	tmp, err := os.MkdirTemp("", "chaos-part-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	// Reserve repl transport ports so each node can name its peers.
	addrs := make([]string, k)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("127.0.0.1:%d", 21343+i)
	}
	nodes := make([]*repl.Node, k)
	for i := 0; i < k; i++ {
		var peers []repl.Peer
		for j := 0; j < k; j++ {
			if j != i {
				peers = append(peers, repl.Peer{ID: fmt.Sprintf("n%d", j), Addr: addrs[j]})
			}
		}
		dir := fmt.Sprintf("%s/n%d", tmp, i)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		n, err := repl.Open(repl.Config{
			ID: fmt.Sprintf("n%d", i), Addr: addrs[i], Advertise: fmt.Sprintf("node-n%d", i),
			Peers: peers, Dir: dir, OpenEngine: replBankOpen(cfg.accounts),
			ElectionTimeout: 80 * time.Millisecond, Heartbeat: 20 * time.Millisecond,
			AckTimeout: 500 * time.Millisecond,
			Durability: storage.GroupCommit, Seed: cfg.seed + int64(i),
		})
		if err != nil {
			return err
		}
		nodes[i] = n
		defer n.Close()
	}
	waitLeaderNode := func() (*repl.Node, *core.DB, error) {
		deadline := time.Now().Add(15 * time.Second)
		for time.Now().Before(deadline) {
			for _, n := range nodes {
				if _, ok := n.LeaderCluster(); ok {
					return n, n.DB(), nil
				}
			}
			time.Sleep(5 * time.Millisecond)
		}
		return nil, nil, fmt.Errorf("no leader within 15s")
	}

	acked := make([]int64, cfg.accounts)
	doubt := make([]int64, cfg.accounts)
	credit := func(idx int) {
		// Any failure — deposed leader, closed engine mid-demotion — is
		// retried against the freshly polled leader; a commit that errored
		// after quorum may still land, so failures count as in-doubt.
		for attempt := 0; attempt < 40; attempt++ {
			_, db, err := waitLeaderNode()
			if err != nil {
				return
			}
			err = db.RunWithRetry(core.RetryPolicy{MaxAttempts: 10}, func(tx *core.Txn) error {
				_, err := tx.Exec(txn.OID{Type: workload.AccountType, Name: fmt.Sprintf("Acct%d", idx)}, "credit", "1")
				return err
			})
			if err == nil {
				acked[idx]++
				return
			}
			doubt[idx]++
			time.Sleep(20 * time.Millisecond)
		}
	}

	first, _, err := waitLeaderNode()
	if err != nil {
		return err
	}
	total := cfg.txns
	if total < 40 {
		total = 40
	}
	rr := rand.New(rand.NewSource(cfg.seed))
	for i := 0; i < total; i++ {
		if i == total/2 {
			fmt.Printf("chaos:   isolating leader %s\n", first.Status().Node)
			first.SetIsolated(true)
		}
		credit(rr.Intn(cfg.accounts))
	}
	first.SetIsolated(false)

	// The healed cluster converges: some leader serves, and per account the
	// surviving balance is within [acked, acked+doubt].
	newLeader, db, err := waitLeaderNode()
	if err != nil {
		return fmt.Errorf("no leader after healing the partition: %w", err)
	}
	if newLeader == first {
		// Possible only if the isolation window held no commits; the checks
		// below still apply.
		fmt.Println("chaos:   note: original leader still leads (no election was forced)")
	}
	for i := 0; i < cfg.accounts; i++ {
		var bal int64
		err := db.RunWithRetry(core.RetryPolicy{MaxAttempts: 10}, func(tx *core.Txn) error {
			s, err := tx.Exec(txn.OID{Type: workload.AccountType, Name: fmt.Sprintf("Acct%d", i)}, "balance")
			if err != nil {
				return err
			}
			bal, err = strconv.ParseInt(s, 10, 64)
			return err
		})
		if err != nil {
			return fmt.Errorf("verify read on account %d: %w", i, err)
		}
		if bal < acked[i] {
			return fmt.Errorf("SILENT LOSS on account %d: %d < %d acked (leader %s)", i, bal, acked[i], newLeader.Status().Node)
		}
		if bal > acked[i]+doubt[i] {
			return fmt.Errorf("DOUBLE COMMIT on account %d: %d > %d acked + %d in doubt", i, bal, acked[i], doubt[i])
		}
	}
	// Liveness: the isolated ex-leader rejoined; its term must converge to
	// the cluster's and one more credit must commit.
	st := newLeader.Status()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if fs := first.Status(); fs.Term >= st.Term && fs.Role != "candidate" {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	credit(0)
	fmt.Printf("chaos:   partition healed; %s leads term %d, %d acked\n", st.Node, st.Term, sumOf(acked))
	return nil
}

func sumOf(v []int64) int64 {
	var t int64
	for _, x := range v {
		t += x
	}
	return t
}
