// Command crashtorture kills a live database mid-workload — for real,
// with SIGKILL — and verifies that restart recovery from the WAL segment
// files restores a consistent state, round after round on the same
// directory.
//
// The parent re-execs itself as a child (-child) that opens or recovers
// the WAL directory, funds a fixed set of accounts in one atomic
// transaction, and hammers random transfers until it is killed at a random
// moment. Between rounds the parent checks, on a scratch copy of the
// segment files, that (a) recovery conserves money — the recovered total
// is exactly the funded total (or zero, if the kill landed before the
// funding commit was durable) — and (b) recovery is idempotent: a second
// recovery pass over the already-recovered files finds no losers and
// changes nothing. The next child round then performs the real recovery on
// the original directory and keeps going.
//
// Usage:
//
//	crashtorture -dir /tmp/torture -rounds 5 -accounts 8 -workers 4
//	crashtorture -dir /tmp/torture -rounds 5 -partitions 4
//
// With -partitions N > 1 the child runs a partition.Cluster (each
// partition's WAL under <dir>/p<i>) and the parent verifies every
// partition's directory independently each round, including the
// per-partition "recovered ≥ acked" check: once a partition's funding has
// been seen durable, no later round may recover it empty.
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/commut"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/recovery"
	"repro/internal/storage"
	"repro/internal/txn"
)

const funding = 1000

var acctOID = txn.OID{Type: "acct", Name: "ACCT"}

var (
	child     = flag.Bool("child", false, "run as the workload child (internal)")
	dir       = flag.String("dir", "", "WAL segment directory (required)")
	rounds    = flag.Int("rounds", 5, "kill/recover rounds")
	accounts  = flag.Int("accounts", 8, "bank accounts")
	workers   = flag.Int("workers", 4, "concurrent transfer workers in the child")
	minRun    = flag.Duration("min-run", 80*time.Millisecond, "minimum child lifetime before the kill")
	maxRun    = flag.Duration("max-run", 400*time.Millisecond, "maximum child lifetime before the kill")
	segSize   = flag.Int64("segsize", 64<<10, "WAL segment size in bytes (small forces rotation)")
	durMode   = flag.String("durability", "group-commit", "sync-on-commit | group-commit")
	seed      = flag.Int64("seed", 1, "random seed")
	ckptEvery = flag.Duration("checkpoint", 0, "fuzzy-checkpoint interval in the child (0 = off); the parent then also cycles SIGKILLs through ckpt.write / ckpt.truncate delay faults")
	faultSpec = flag.String("fault", "", "arm a failpoint in the child, e.g. 'ckpt.write=delay(150ms);every=1'")
	parts     = flag.Int("partitions", 1, "engine partitions: the child runs a partition.Cluster (WAL under <dir>/p<i>), the parent verifies every partition independently each round")
)

// partDirs lists the WAL directory of every partition — the root itself
// for an unpartitioned run, matching the partition package's layout.
func partDirs() []string {
	n := *parts
	if n <= 1 {
		return []string{*dir}
	}
	dirs := make([]string, n)
	for i := range dirs {
		dirs[i] = partition.Dir(*dir, i)
	}
	return dirs
}

func main() {
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "crashtorture: -dir is required")
		os.Exit(2)
	}
	mode, err := storage.ParseDurability(*durMode)
	if err != nil || mode == storage.MemOnly {
		fmt.Fprintf(os.Stderr, "crashtorture: need a durable -durability mode\n")
		os.Exit(2)
	}
	if *faultSpec != "" {
		if err := fault.Default.ArmString(*faultSpec); err != nil {
			fmt.Fprintf(os.Stderr, "crashtorture: -fault %q: %v\n", *faultSpec, err)
			os.Exit(2)
		}
	}
	if *child {
		runChild(mode)
		return
	}
	runParent(mode)
}

// registerAcct installs the account type with the fixed catalog binding
// account i ↔ page i+1 — the same binding on every restart, which is what
// lets recovery's logical undo find the object again.
func registerAcct(db *core.DB, n int) error {
	for db.NumPages() < n {
		db.AllocPage()
	}
	page := func(params []string) (txn.OID, error) {
		i, err := strconv.Atoi(params[0])
		if err != nil || i < 0 || i >= n {
			return txn.OID{}, fmt.Errorf("crashtorture: bad account %q", params[0])
		}
		return core.PageOID(storage.PageID(i + 1)), nil
	}
	return db.RegisterType(&core.ObjectType{
		Name:     "acct",
		Spec:     commut.KeyedSpec([]string{"bal"}, []string{"add"}),
		ReadOnly: map[string]bool{"bal": true},
		Methods: map[string]core.MethodFunc{
			"add": func(c *core.Ctx, self txn.OID, params []string) (string, error) {
				pg, err := page(params)
				if err != nil {
					return "", err
				}
				delta, err := strconv.Atoi(params[1])
				if err != nil {
					return "", err
				}
				old, err := c.Call(pg, "readx")
				if err != nil {
					return "", err
				}
				bal := 0
				if old != "" {
					if bal, err = strconv.Atoi(old); err != nil {
						return "", err
					}
				}
				_, err = c.Call(pg, "write", strconv.Itoa(bal+delta))
				return old, err
			},
			"bal": func(c *core.Ctx, self txn.OID, params []string) (string, error) {
				pg, err := page(params)
				if err != nil {
					return "", err
				}
				v, err := c.Call(pg, "read")
				if err != nil {
					return "", err
				}
				if v == "" {
					v = "0"
				}
				return v, nil
			},
		},
		Compensate: map[string]core.CompensateFunc{
			"add": func(params []string, result string) (string, []string, bool) {
				delta, err := strconv.Atoi(params[1])
				if err != nil {
					return "", nil, false
				}
				return "add", []string{params[0], strconv.Itoa(-delta)}, true
			},
		},
	})
}

func sumBalances(db *core.DB, n int) (int, error) {
	tx := db.Begin()
	total := 0
	for i := 0; i < n; i++ {
		v, err := tx.Exec(acctOID, "bal", strconv.Itoa(i))
		if err != nil {
			_ = tx.Abort()
			return 0, err
		}
		b, err := strconv.Atoi(v)
		if err != nil {
			_ = tx.Abort()
			return 0, err
		}
		total += b
	}
	return total, tx.Commit()
}

// openOrRecover opens a fresh durable engine on an empty directory, or
// recovers from the existing segment files.
func openOrRecover(mode storage.Durability, n int) (*core.DB, recovery.Report, error) {
	opts := core.Options{
		Durability:         mode,
		WALDir:             *dir,
		WALSegmentSize:     *segSize,
		LockTimeout:        5 * time.Second,
		DisableTrace:       true,
		CheckpointInterval: *ckptEvery,
	}
	segs, err := filepath.Glob(filepath.Join(*dir, "wal-*.seg"))
	if err != nil {
		return nil, recovery.Report{}, err
	}
	if len(segs) == 0 {
		db, err := core.OpenDurable(opts)
		if err != nil {
			return nil, recovery.Report{}, err
		}
		return db, recovery.Report{}, registerAcct(db, n)
	}
	return recovery.RecoverDir(*dir, opts, func(d *core.DB) error {
		return registerAcct(d, n)
	})
}

// checkAndFund verifies a freshly opened or recovered engine holds a
// consistent total ({0, accounts*funding}) and funds it atomically when
// empty — one transaction, so either the whole funding recovers or none.
func checkAndFund(db *core.DB, rep recovery.Report, label string) int {
	total, err := sumBalances(db, *accounts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "crashtorture child: %s: %v\n", label, err)
		os.Exit(1)
	}
	want := *accounts * funding
	if total != 0 && total != want {
		fmt.Fprintf(os.Stderr, "crashtorture child: %s: recovered total %d, want %d or 0 (winners=%d losers=%d)\n",
			label, total, want, len(rep.Winners), len(rep.Losers))
		os.Exit(1)
	}
	if total == 0 {
		tx := db.Begin()
		for i := 0; i < *accounts; i++ {
			if _, err := tx.Exec(acctOID, "add", strconv.Itoa(i), strconv.Itoa(funding)); err != nil {
				fmt.Fprintf(os.Stderr, "crashtorture child: %s funding: %v\n", label, err)
				os.Exit(1)
			}
		}
		if err := tx.Commit(); err != nil {
			fmt.Fprintf(os.Stderr, "crashtorture child: %s funding commit: %v\n", label, err)
			os.Exit(1)
		}
	}
	return total
}

// runChild is the victim: open/recover every partition, fund what needs
// funding, transfer forever (each worker on one partition).
func runChild(mode storage.Durability) {
	n := *parts
	if n <= 1 {
		n = 1
	}
	engines := make([]*core.DB, n)
	if n == 1 {
		db, rep, err := openOrRecover(mode, *accounts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crashtorture child: %v\n", err)
			os.Exit(1)
		}
		total := checkAndFund(db, rep, "p0")
		engines[0] = db
		fmt.Printf("child: up (recovered total=%d winners=%d losers=%d), transferring\n",
			total, len(rep.Winners), len(rep.Losers))
	} else {
		// Partitioned child: partition.Recover opens every p<i> dir
		// independently (fresh when empty); the register hook is the same
		// write-free registerAcct the single-engine path recovers with.
		c, reports, err := partition.Recover(partition.Options{
			N: n,
			Engine: core.Options{
				Durability:         mode,
				WALSegmentSize:     *segSize,
				LockTimeout:        5 * time.Second,
				DisableTrace:       true,
				CheckpointInterval: *ckptEvery,
			},
			WALRoot:  *dir,
			Register: func(i int, d *core.DB) error { return registerAcct(d, *accounts) },
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "crashtorture child: %v\n", err)
			os.Exit(1)
		}
		for i := 0; i < n; i++ {
			rep := reports[i]
			total := checkAndFund(c.Part(i), rep, fmt.Sprintf("p%d", i))
			engines[i] = c.Part(i)
			fmt.Printf("child: p%d up (recovered total=%d winners=%d losers=%d)\n",
				i, total, len(rep.Winners), len(rep.Losers))
		}
		fmt.Printf("child: %d partitions up, transferring\n", n)
	}

	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		for g := 0; g < *workers; g++ {
			wg.Add(1)
			go func(p, g int) {
				defer wg.Done()
				rr := rand.New(rand.NewSource(*seed + int64(p*1009+g)*7919 + time.Now().UnixNano()))
				for {
					transfer(engines[p], rr, *accounts)
				}
			}(p, g)
		}
	}
	wg.Wait() // never returns; the parent SIGKILLs us
}

// transfer moves a random amount between two accounts, touching them in
// index order ("add" is keyed-commutative, so the order is free and
// ordered acquisition avoids deadlock livelock). Aborts are retried by the
// caller's loop.
func transfer(db *core.DB, rr *rand.Rand, n int) {
	from, to := rr.Intn(n), rr.Intn(n)
	if from == to {
		to = (to + 1) % n
	}
	amt := rr.Intn(50) + 1
	d1, d2 := -amt, amt
	if to < from {
		from, to, d1, d2 = to, from, d2, d1
	}
	tx := db.Begin()
	if _, err := tx.Exec(acctOID, "add", strconv.Itoa(from), strconv.Itoa(d1)); err != nil {
		_ = tx.Abort()
		return
	}
	if _, err := tx.Exec(acctOID, "add", strconv.Itoa(to), strconv.Itoa(d2)); err != nil {
		_ = tx.Abort()
		return
	}
	_ = tx.Commit()
}

// verifyCopy recovers a scratch copy of the segment files twice: the first
// pass must conserve money, the second must be a no-op (idempotence). With
// checkpoint files present it additionally machine-checks the suffix-only
// replay claim — redo reapplies exactly the update records above the
// newest complete checkpoint — and returns that checkpoint's LSN (0 when
// recovery fell back to full replay) plus the recovered total, which the
// parent uses for the per-partition "recovered ≥ acked" monotonicity
// check. label names the partition in messages ("" when unpartitioned).
func verifyCopy(mode storage.Durability, src, label string, round int) (uint64, int, error) {
	tag := ""
	if label != "" {
		tag = " " + label
	}
	scratch, err := os.MkdirTemp("", "crashtorture-verify")
	if err != nil {
		return 0, 0, err
	}
	// One registry across both recovery passes: on a failed round its
	// flight recorder holds the recovery phases and every transaction the
	// verification ran — the last events before things went wrong.
	oreg := obs.New()
	failed := true
	defer func() {
		if failed {
			fmt.Fprintf(os.Stderr, "crashtorture: keeping failing image at %s (pristine: %s.orig)\n", scratch, scratch)
			oreg.Recorder().Record(obs.Event{Kind: obs.EvFailure,
				Object: fmt.Sprintf("round %d%s", round, tag), Note: "verification failed"})
			oreg.Recorder().Dump(os.Stderr, 64)
			return
		}
		os.RemoveAll(scratch)
		os.RemoveAll(scratch + ".orig")
	}()
	entries, err := os.ReadDir(src)
	if err != nil {
		return 0, 0, err
	}
	if err := os.MkdirAll(scratch+".orig", 0o755); err != nil {
		return 0, 0, err
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			return 0, 0, err
		}
		if err := os.WriteFile(filepath.Join(scratch, e.Name()), data, 0o644); err != nil {
			return 0, 0, err
		}
		if err := os.WriteFile(filepath.Join(scratch+".orig", e.Name()), data, 0o644); err != nil {
			return 0, 0, err
		}
	}
	// Predict what recovery must do: the newest complete checkpoint (a torn
	// one from a SIGKILL mid-write must be skipped, falling back to an older
	// one or to full replay) and the exact number of update records above it.
	var ckptLSN uint64
	if snap, _, cerr := checkpoint.Latest(scratch); cerr == nil {
		ckptLSN = snap.LSN
	} else if !errors.Is(cerr, checkpoint.ErrNoCheckpoint) {
		return 0, 0, cerr
	}
	expectRedo := 0
	if records, rerr := storage.ReadWALDir(scratch); rerr == nil {
		for _, r := range records {
			if r.Kind == storage.RecUpdate && r.LSN > ckptLSN {
				expectRedo++
			}
		}
	} else {
		return 0, 0, rerr
	}

	opts := core.Options{Durability: mode, WALDir: scratch, WALSegmentSize: *segSize, DisableTrace: true, Obs: oreg}
	reg := func(d *core.DB) error { return registerAcct(d, *accounts) }
	want := *accounts * funding

	db1, rep1, err := recovery.RecoverDir(scratch, opts, reg)
	if err != nil {
		return 0, 0, fmt.Errorf("first recovery: %w", err)
	}
	total1, err := sumBalances(db1, *accounts)
	if err != nil {
		return 0, 0, err
	}
	if cerr := db1.Close(); cerr != nil {
		return 0, 0, cerr
	}
	if total1 != 0 && total1 != want {
		return 0, 0, fmt.Errorf("round %d%s: recovered total %d, want %d or 0", round, tag, total1, want)
	}
	if rep1.CheckpointLSN != ckptLSN {
		return 0, 0, fmt.Errorf("round %d%s: recovery started from checkpoint LSN %d, newest complete is %d", round, tag, rep1.CheckpointLSN, ckptLSN)
	}
	if rep1.Redone != expectRedo {
		return 0, 0, fmt.Errorf("round %d%s: redo replayed %d updates, the post-checkpoint suffix holds %d", round, tag, rep1.Redone, expectRedo)
	}

	db2, rep2, err := recovery.RecoverDir(scratch, opts, reg)
	if err != nil {
		return 0, 0, fmt.Errorf("second recovery: %w", err)
	}
	total2, err := sumBalances(db2, *accounts)
	if err != nil {
		return 0, 0, err
	}
	if cerr := db2.Close(); cerr != nil {
		return 0, 0, cerr
	}
	if total2 != total1 {
		return 0, 0, fmt.Errorf("round %d%s: recovery not idempotent: total %d then %d", round, tag, total1, total2)
	}
	if len(rep2.Losers) != 0 {
		return 0, 0, fmt.Errorf("round %d%s: second recovery found losers %v", round, tag, rep2.Losers)
	}
	fmt.Printf("round %d%s: verified (total=%d winners=%d losers=%d ckpt=%d redone=%d, idempotent)\n",
		round, tag, total1, len(rep1.Winners), len(rep1.Losers), ckptLSN, rep1.Redone)
	failed = false
	return ckptLSN, total1, nil
}

// runParent spawns, kills, and verifies, round after round.
func runParent(mode storage.Durability) {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "crashtorture: %v\n", err)
		os.Exit(1)
	}
	rr := rand.New(rand.NewSource(*seed))
	// With checkpointing on, rounds cycle through fault regimes so SIGKILLs
	// land in every phase: clean checkpoints, a delay inside the checkpoint
	// file write (kill ⇒ torn file ⇒ fall back to an older checkpoint or
	// full replay), and a delay inside segment truncation (kill ⇒ extra
	// dead segments, still a contiguous log).
	ckptFaults := []string{"", "ckpt.write=delay(150ms);every=1", "ckpt.truncate=delay(120ms);every=1"}
	checkpointed := 0
	dirs := partDirs()
	// funded[i] latches once partition i's verification sees the funded
	// total: from then on, "recovered ≥ acked" — a later round recovering 0
	// from the same directory would mean a durably committed funding was
	// lost.
	funded := make([]bool, len(dirs))
	for round := 1; round <= *rounds; round++ {
		args := []string{
			"-child", "-dir", *dir,
			"-accounts", strconv.Itoa(*accounts),
			"-workers", strconv.Itoa(*workers),
			"-segsize", strconv.FormatInt(*segSize, 10),
			"-durability", *durMode,
			"-partitions", strconv.Itoa(*parts),
			"-seed", strconv.FormatInt(*seed+int64(round), 10),
		}
		if *ckptEvery > 0 {
			args = append(args, "-checkpoint", ckptEvery.String())
			if spec := ckptFaults[(round-1)%len(ckptFaults)]; spec != "" {
				args = append(args, "-fault", spec)
			}
		}
		cmd := exec.Command(self, args...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			fmt.Fprintf(os.Stderr, "crashtorture: start child: %v\n", err)
			os.Exit(1)
		}
		lifetime := *minRun
		if spread := *maxRun - *minRun; spread > 0 {
			lifetime += time.Duration(rr.Int63n(int64(spread)))
		}
		time.Sleep(lifetime)
		if err := cmd.Process.Kill(); err != nil { // SIGKILL: no cleanup, no flush
			fmt.Fprintf(os.Stderr, "crashtorture: kill child: %v\n", err)
			os.Exit(1)
		}
		_ = cmd.Wait()
		// Verify every partition's directory independently: partition i's
		// recovery reads only p<i>'s files, so each copy stands alone.
		ckptRound := false
		for i, d := range dirs {
			label := ""
			if len(dirs) > 1 {
				label = partition.DirName(i)
			}
			ckptLSN, total, err := verifyCopy(mode, d, label, round)
			if err != nil {
				fmt.Fprintf(os.Stderr, "crashtorture: FAIL: %v\n", err)
				os.Exit(1)
			}
			if funded[i] && total == 0 {
				fmt.Fprintf(os.Stderr, "crashtorture: FAIL: round %d %s: durably funded partition recovered empty (recovered < acked)\n", round, partition.DirName(i))
				os.Exit(1)
			}
			if total > 0 {
				funded[i] = true
			}
			if ckptLSN > 0 {
				ckptRound = true
			}
		}
		if ckptRound {
			checkpointed++
		}
	}
	if *ckptEvery > 0 && checkpointed == 0 {
		fmt.Fprintln(os.Stderr, "crashtorture: FAIL: checkpointing was enabled but no round recovered from a checkpoint")
		os.Exit(1)
	}
	fmt.Printf("crashtorture: %d rounds survived (%d recovered from a checkpoint)\n", *rounds, checkpointed)
}
