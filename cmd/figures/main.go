// Command figures regenerates the paper's figures and examples as text:
//
//	figures -fig 2   the encyclopedia structure (Figure 2)
//	figures -fig 4   Example 1's dependency inheritance (Figure 4)
//	figures -fig 5   the oo-transaction tree of Example 2 (Figure 5)
//	figures -fig 6   the virtual-object extension of Example 3 (Figure 6)
//	figures -fig 7   Example 4's transactions and dependencies (Figure 7)
//	figures -fig 8   the per-object dependency table (Figure 8)
//	figures -fig 0   everything
//
// Notation (the paper's Figure 3 legend, adapted to text): actions are
// written id=Object.method(params); solid tree edges are the call
// relationship; "a -> b" in dependency listings means b depends on a.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/paperex"
	"repro/internal/sched"
	"repro/internal/txn"
)

func main() {
	fig := flag.Int("fig", 0, "figure to print (1,2,4,5,6,7,8); 0 = all")
	flag.Parse()

	printers := map[int]func(){
		1: fig1, 2: fig2, 4: fig4, 5: fig5, 6: fig6, 7: fig7, 8: fig8,
	}
	if *fig == 0 {
		for _, n := range []int{1, 2, 4, 5, 6, 7, 8} {
			printers[n]()
			fmt.Println()
		}
		return
	}
	p, ok := printers[*fig]
	if !ok {
		fmt.Fprintf(os.Stderr, "figures: no printer for figure %d\n", *fig)
		os.Exit(2)
	}
	p()
}

func header(title string) {
	fmt.Println(strings.Repeat("=", 72))
	fmt.Println(title)
	fmt.Println(strings.Repeat("=", 72))
}

// fig1 prints the workload-contrast table of Figure 1.
func fig1() {
	header("Figure 1: conventional transactions vs object-oriented operations")
	fmt.Print(`
  conventional transactions        | object-oriented operations
  ---------------------------------+------------------------------------------
  access to small objects          | access to large, complex structured
  (an account)                     | objects (a document)
  short duration (ms ... s)        | long duration (seconds ... months)
  simple actions                   | complex structured actions (layout →
  (writing an account)             | contents → chapters → ... → pages)

  Quantified by BenchmarkFig1ConventionalVsOO: semantic concurrency
  control helps the short/small class ~2x and the long/complex class
  >15x — exactly where the paper says conventional locking breaks down.
`)
}

// fig2 prints the encyclopedia structure of Figure 2.
func fig2() {
	header("Figure 2: the encyclopedia Enc (items indexed by a B+ tree)")
	fmt.Print(`
  Enc ──────────────┬──────────────────────────────┐
                    │                              │
              LinkedList                        BpTree
                    │                              │
          Page0610 (spine)                 Node ... Node
            │        │                         │
         Item7     Item8                    Leaf11 ... Leaf
            │        │                         │
        Page0816  Page0815                 Page4712

  Items are reachable on TWO paths: sequentially through the linked
  list and associatively through the B+ tree — the situation that
  makes the added action dependency relation (Definition 15) necessary.
`)
}

// printTree renders a transaction tree with call edges.
func printTree(a *txn.Action, indent string) {
	fmt.Printf("%s%s", indent, a.String())
	if a.IsVirtual {
		fmt.Print("   [virtual]")
	}
	fmt.Println()
	for _, c := range a.Children {
		printTree(c, indent+"    ")
	}
}

func analyze(sys *txn.System, order []string) *sched.Analysis {
	a, err := sched.Analyze(sys, paperex.Registry(), order)
	if err != nil {
		fmt.Fprintf(os.Stderr, "figures: %v\n", err)
		os.Exit(1)
	}
	return a
}

// fig4 prints Example 1 / Figure 4: dependency inheritance.
func fig4() {
	header("Figure 4 / Example 1: dependency inheritance")
	sys, order := paperex.Example1()
	for _, t := range sys.Top {
		printTree(t, "")
	}
	fmt.Println("\nprimitive execution order:", strings.Join(order, ", "))
	a := analyze(sys, order)

	fmt.Println("\naction dependencies on Page4712 (Axiom 1):")
	for _, e := range a.ActDep[paperex.Page4712].Edges() {
		fmt.Printf("  %s -> %s\n", e[0], e[1])
	}
	fmt.Println("\ntransaction dependencies at Page4712 (Definition 10):")
	for _, e := range a.TranDep[paperex.Page4712].Edges() {
		fmt.Printf("  %s -> %s\n", describe(a, e[0]), describe(a, e[1]))
	}
	fmt.Println("\ninherited action dependencies at Leaf11 (Definition 11):")
	for _, e := range a.ActDep[paperex.Leaf11].Edges() {
		conflict := "commute -> inheritance STOPS here"
		if a.Conflict(paperex.Leaf11, e[0], e[1]) {
			conflict = "conflict -> inherited further"
		}
		fmt.Printf("  %s -> %s   (%s)\n", describe(a, e[0]), describe(a, e[1]), conflict)
	}
	fmt.Println("\ntop-level transaction dependencies (system object):")
	for _, e := range a.TranDep[txn.SystemObject].Edges() {
		fmt.Printf("  %s -> %s\n", e[0], e[1])
	}
	fmt.Println("\n  T1/T2 conflict on the page but their leaf inserts commute:")
	fmt.Println("  the dependency is absorbed at Leaf11 and T2 stays unordered.")
	rep := a.Check()
	fmt.Printf("\noo-serializable: %v\n", rep.SystemOOSerializable)
}

// fig5 prints the Example 2 transaction tree.
func fig5() {
	header("Figure 5 / Example 2: an oo-transaction tree")
	b := txn.NewTransaction("t1")
	o := func(n string) txn.OID { return txn.OID{Type: "obj", Name: n} }
	a11 := b.Call(nil, o("O1"), "a11")
	a12 := b.Call(nil, o("O2"), "a12")
	b.Call(a11, o("P1"), "a111")
	b.Call(a11, o("P2"), "a112")
	b.Call(a11, o("P3"), "a113")
	b.Call(a12, o("P4"), "a121")
	b.Call(a12, o("P5"), "a122")
	printTree(b.Build(), "")
	fmt.Println("\nleaves are primitive actions; left-to-right order is the")
	fmt.Println("precedence relation of each action set (Definition 2).")
}

// fig6 prints the Example 3 virtual-object extension.
func fig6() {
	header("Figure 6 / Example 3: breaking call cycles with virtual objects")
	b1 := txn.NewTransaction("t1")
	o := func(n string) txn.OID { return txn.OID{Type: "obj", Name: n} }
	a11 := b1.Call(nil, o("O1"), "a11")
	b1.Call(a11, o("P1"), "a111")
	b1.Call(a11, o("O1"), "a112")
	b2 := txn.NewTransaction("t2")
	b2.Call(nil, o("O1"), "b22")
	sys := txn.NewSystem(b1.Build(), b2.Build())

	fmt.Println("before the extension (a11 ->+ a112, both on O1):")
	for _, t := range sys.Top {
		printTree(t, "  ")
	}
	created := sys.Extend()
	fmt.Printf("\nExtend() created virtual objects: %v\n\n", created)
	fmt.Println("after the extension (Definition 5):")
	for _, t := range sys.Top {
		printTree(t, "  ")
	}
	fmt.Println("\na112 moved to O1'; every other action on O1 gained a virtual")
	fmt.Println("duplicate on O1' so no dependency is lost; dependencies on O1'")
	fmt.Println("are inherited to O1 along the duplicate's call edge.")
}

// fig7 prints Example 4's transactions with dependencies.
func fig7() {
	header("Figure 7 / Example 4: four transactions on the encyclopedia")
	sys, order := paperex.Example4()
	for _, t := range sys.Top {
		printTree(t, "")
	}
	fmt.Println("\nprimitive execution order:", strings.Join(order, ", "))
	a := analyze(sys, order)
	fmt.Println("\ndependencies on Page4712 (the paper's long dashed arcs):")
	for _, e := range a.ActDep[paperex.Page4712].Edges() {
		fmt.Printf("  %s -> %s\n", e[0], e[1])
	}
	fmt.Println("\ndependencies on Item8 (the paper's short dashed arcs):")
	for _, e := range a.TranDep[paperex.Item8].Edges() {
		fmt.Printf("  %s -> %s\n", describe(a, e[0]), describe(a, e[1]))
	}
	rep := a.Check()
	fmt.Printf("\noo-serializable: %v (witness serial order exists per object)\n",
		rep.SystemOOSerializable)
}

// fig8 prints the Figure 8 dependency table.
func fig8() {
	header("Figure 8: schedule dependencies per object (Example 4)")
	sys, order := paperex.Example4()
	a := analyze(sys, order)
	fmt.Print(a.DependencyTable())
	fmt.Println("\nadded action dependencies (Definition 15, recorded redundantly):")
	for _, o := range a.Objects() {
		for _, e := range a.Added[o].Edges() {
			fmt.Printf("  at %-12s %s -> %s\n", o.Name+":", describe(a, e[0]), describe(a, e[1]))
		}
	}
}

func describe(a *sched.Analysis, id string) string {
	act := a.Action(id)
	if act == nil {
		return id
	}
	if act.Parent == nil {
		return act.ID
	}
	return act.Msg.String()
}
