// Command oodbd serves the engine over TCP: the internal/wire frame
// protocol on -addr (sessions, transactions, admission control — see
// internal/server), with the observability endpoints (/metrics,
// /debug/vars, /events, /fault) folded into the same process on
// -metrics-addr.
//
// Usage examples:
//
//	oodbd -addr :7437 -install banking -max-inflight 256 -metrics-addr :7438
//	oodbd -addr :7437 -install encyclopedia -durability group-commit -waldir /var/lib/oodb/wal
//	oodbd -addr :7437 -partitions 4 -install banking
//
// With -partitions N > 1 the engine is a partition.Cluster: N independent
// engines (own buffer pool, lock shards, WAL dir <waldir>/p<i>, admission
// controller) behind the session layer's object-name router. A durable
// partitioned server restarts by recovering every partition from its own
// p<i> directory.
//
// With -repl-node the process is one member of a replicated cluster
// (internal/repl): the WAL is replicated to the peers listed in
// -repl-peers, commits wait for quorum, and the session layer serves
// writes only while this node leads — a replica answers BEGIN read-only
// and refuses writes with a typed not-leader redirect naming the leader's
// client address. Replication runs its own transport on -repl-addr,
// separate from the client port:
//
//	oodbd -addr :7437 -metrics-addr :7438 -durability group-commit -waldir /var/lib/oodb/n0 \
//	  -repl-node n0 -repl-addr :7447 -repl-peers n1=host2:7447,n2=host3:7447
//
// SIGINT/SIGTERM triggers the drain shutdown: stop accepting, abort
// in-flight sessions (their admission slots release), then close the
// engine so the WAL ends at a clean commit boundary.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/recovery"
	"repro/internal/repl"
	"repro/internal/server"
	"repro/internal/storage"
	"repro/internal/workload"
)

// parseReplPeers parses "-repl-peers n1=host:port,n2=host:port".
func parseReplPeers(s string) ([]repl.Peer, error) {
	if s == "" {
		return nil, nil
	}
	var peers []repl.Peer
	for _, part := range strings.Split(s, ",") {
		id, addr, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("bad -repl-peers entry %q (want id=host:port)", part)
		}
		peers = append(peers, repl.Peer{ID: id, Addr: addr})
	}
	return peers, nil
}

var protocols = map[string]core.ProtocolKind{
	"open-nested":   core.ProtocolOpenNested,
	"2pl-page":      core.Protocol2PLPage,
	"2pl-object":    core.Protocol2PLObject,
	"closed-nested": core.ProtocolClosedNested,
	"none":          core.ProtocolNone,
}

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:7437", "serve the wire protocol on this host:port (port 0 picks a free port)")
		metrics      = flag.String("metrics-addr", "", "serve /metrics, /debug/vars, /events and /fault on this host:port")
		protocol     = flag.String("protocol", "open-nested", "protocol: open-nested | 2pl-page | 2pl-object | closed-nested | none")
		install      = flag.String("install", "banking", "preinstalled schema: banking | encyclopedia | none")
		accounts     = flag.Int("accounts", 16, "accounts to fund (banking schema)")
		balance      = flag.Int64("balance", 1_000_000, "initial balance per account (banking schema)")
		fanout       = flag.Int("fanout", 100, "B+ tree node capacity (encyclopedia schema)")
		spine        = flag.Int("spine", 50, "sequential-read spine capacity (encyclopedia schema)")
		lockTimeout  = flag.Duration("lock-timeout", 10*time.Second, "lock wait bound before a typed lock-timeout refusal")
		maxInflight  = flag.Int("max-inflight", 256, "admission-control slots: concurrently admitted transactions (0 = unbounded)")
		admitTimeout = flag.Duration("admission-timeout", time.Second, "how long a BEGIN may queue for a slot before the typed overload refusal")
		idleTimeout  = flag.Duration("idle-timeout", 5*time.Minute, "reap sessions silent this long (open transactions abort)")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "bound on waiting out sessions during shutdown")
		ioDelay      = flag.Duration("io", 0, "simulated page I/O latency")
		durMode      = flag.String("durability", "mem-only", "WAL durability: mem-only | sync-on-commit | group-commit")
		walDir       = flag.String("waldir", "", "WAL segment directory (required for durable modes; must be empty/new)")
		ckptEvery    = flag.Duration("checkpoint", 0, "fuzzy-checkpoint interval (durable modes only; 0 = off)")
		partitions   = flag.Int("partitions", 1, "independent engine partitions behind the object-name router (durable: WAL under <waldir>/p<i>)")
		doRecover    = flag.Bool("recover", false, "restart a durable partitioned server over existing p<i> WAL dirs instead of refusing them")
		slowQuery    = flag.Duration("slow-query", 0, "slow-query threshold: transactions alive this long tick engine.slow_txns, land on the flight recorder, and pin their span trace for /trace/slow (0 = off)")
		spanSample   = flag.Int("span-sample", 0, "trace one in every N transactions (0 or 1 = every transaction)")
		lingerDur    = flag.Duration("metrics-linger", 0, "keep the metrics endpoint (and its draining /healthz) up this long after the drain completes")

		replNode      = flag.String("repl-node", "", "node id in a replicated cluster (e.g. n0); empty = replication off")
		replAddr      = flag.String("repl-addr", "", "replication transport listen address (repl mode; empty = ephemeral loopback port)")
		replPeers     = flag.String("repl-peers", "", "other cluster members as id=host:port, comma-separated (repl mode)")
		replAdvertise = flag.String("repl-advertise", "", "client address carried in leader redirect hints (default: -addr)")
	)
	flag.Parse()

	durability, err := storage.ParseDurability(*durMode)
	if err != nil {
		fmt.Fprintf(os.Stderr, "oodbd: %v\n", err)
		os.Exit(2)
	}
	if durability != storage.MemOnly && *walDir == "" {
		fmt.Fprintln(os.Stderr, "oodbd: -durability", *durMode, "needs -waldir")
		os.Exit(2)
	}
	if durability == storage.MemOnly && *walDir != "" {
		fmt.Fprintln(os.Stderr, "oodbd: -waldir has no effect with -durability mem-only")
		os.Exit(2)
	}
	kind, ok := protocols[*protocol]
	if !ok {
		fmt.Fprintf(os.Stderr, "oodbd: unknown protocol %q\n", *protocol)
		os.Exit(2)
	}

	// One registry for the whole process: the engine's counters, the
	// server's session metrics and the failpoint control surface share one
	// endpoint. It is served only after the cluster and session layer are
	// built, so every mount they install (/trace, /metrics/prom, /healthz)
	// is wired into the handler.
	reg := obs.New()

	n := *partitions
	if n < 1 {
		n = 1
	}
	if *doRecover && durability == storage.MemOnly {
		fmt.Fprintln(os.Stderr, "oodbd: -recover needs a durable -durability mode")
		os.Exit(2)
	}
	if *doRecover && *install == "encyclopedia" {
		// The encyclopedia installer creates the object (a write); a
		// write-free register for its module stack does not exist yet.
		fmt.Fprintln(os.Stderr, "oodbd: -recover supports -install banking | none only")
		os.Exit(2)
	}
	if *replNode != "" {
		// Replication constraints: the replicated log IS the WAL, so the
		// engine must be durable; promotion recovers the directory itself, so
		// -recover is redundant; and the log is one stream, so one partition.
		switch {
		case durability == storage.MemOnly:
			fmt.Fprintln(os.Stderr, "oodbd: -repl-node needs a durable -durability mode and -waldir")
			os.Exit(2)
		case n != 1:
			fmt.Fprintln(os.Stderr, "oodbd: -repl-node requires -partitions 1 (the replicated log is a single WAL stream)")
			os.Exit(2)
		case *doRecover:
			fmt.Fprintln(os.Stderr, "oodbd: -recover has no effect with -repl-node (promotion recovers the WAL itself)")
			os.Exit(2)
		case *install == "encyclopedia":
			fmt.Fprintln(os.Stderr, "oodbd: -repl-node supports -install banking | none only (needs a write-free register hook)")
			os.Exit(2)
		}
	}

	opts := core.Options{
		Protocol:           kind,
		LockTimeout:        *lockTimeout,
		MaxInflight:        *maxInflight,
		AdmissionTimeout:   *admitTimeout,
		PageIODelay:        *ioDelay,
		Durability:         durability,
		CheckpointInterval: *ckptEvery,
		// A server process never runs the offline validator; recording every
		// action for it would grow memory without bound.
		DisableTrace:     true,
		SpanSampleEvery:  *spanSample,
		SlowTxnThreshold: *slowQuery,
	}

	var (
		cluster *partition.Cluster
		node    *repl.Node
		srv     *server.Server
	)
	if *replNode != "" {
		peers, perr := parseReplPeers(*replPeers)
		if perr != nil {
			fmt.Fprintf(os.Stderr, "oodbd: %v\n", perr)
			os.Exit(2)
		}
		advertise := *replAdvertise
		if advertise == "" {
			advertise = *addr
		}
		// OpenEngine runs at promotion: a fresh directory gets the funded
		// schema, a restart (or a deposed leader rejoining) recovers what the
		// replicated WAL holds, registering the types write-free.
		openEngine := func(dir string, fresh bool) (*core.DB, error) {
			eopts := opts
			eopts.WALDir = dir
			eopts.Obs = reg
			if fresh {
				db, oerr := core.OpenDurable(eopts)
				if oerr != nil {
					return nil, oerr
				}
				if *install == "banking" {
					if _, ierr := workload.InstallBanking(db, *accounts, *balance); ierr != nil {
						db.Close()
						return nil, ierr
					}
				}
				return db, nil
			}
			db, rep, rerr := recovery.RecoverDir(dir, eopts, func(db *core.DB) error {
				if *install == "banking" {
					_, herr := workload.RegisterBanking(db, *accounts)
					return herr
				}
				return nil
			})
			if rerr == nil {
				fmt.Fprintf(os.Stderr, "oodbd: promotion recovered %s: %d winners, %d losers, %d redone\n",
					dir, len(rep.Winners), len(rep.Losers), rep.Redone)
			}
			return db, rerr
		}
		node, err = repl.Open(repl.Config{
			ID:         *replNode,
			Addr:       *replAddr,
			Advertise:  advertise,
			Peers:      peers,
			Dir:        *walDir,
			OpenEngine: openEngine,
			Durability: durability,
			Obs:        reg,
			// Role transitions go to stdout as single greppable lines —
			// cmd/chaos parents parse these to find the leader to kill.
			OnRole: func(role repl.Role, term uint64) {
				fmt.Printf("oodbd: repl role=%s term=%d node=%s\n", role, term, *replNode)
			},
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "oodbd: repl: "+format+"\n", args...)
			},
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "oodbd: open replica: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "oodbd: replica %s: transport %s, %d peer(s), advertising %s\n",
			*replNode, node.Addr(), len(peers), advertise)
		srv = server.NewReplicated(node, reg, server.Options{IdleTimeout: *idleTimeout})
	} else {
		// Every schema installer below also serves as the Recover register
		// hook for -recover, so it must be write-free there: RegisterBanking
		// only registers the type; the funding happens on the fresh path.
		register := func(i int, db *core.DB) error {
			switch *install {
			case "banking":
				if *doRecover {
					_, err := workload.RegisterBanking(db, *accounts)
					return err
				}
				_, err := workload.InstallBanking(db, *accounts, *balance)
				return err
			case "encyclopedia":
				name := partition.NameFor("Enc", i, n)
				_, err := workload.InstallEncyclopediaNamed(db, name, *fanout, *spine)
				return err
			case "none":
				return nil
			}
			return fmt.Errorf("unknown schema %q", *install)
		}
		popts := partition.Options{
			N:        n,
			Engine:   opts,
			WALRoot:  *walDir,
			Obs:      reg,
			Register: register,
		}
		if *doRecover {
			var reports []recovery.Report
			cluster, reports, err = partition.Recover(popts)
			if err == nil {
				for i, rep := range reports {
					fmt.Fprintf(os.Stderr, "oodbd: recovered p%d: %d winners, %d losers, %d redone\n",
						i, len(rep.Winners), len(rep.Losers), rep.Redone)
				}
			}
		} else {
			cluster, err = partition.Open(popts)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "oodbd: open engine: %v\n", err)
			os.Exit(1)
		}
		switch *install {
		case "banking":
			fmt.Fprintf(os.Stderr, "oodbd: banking schema on %d partition(s): %d accounts x %d\n", n, *accounts, *balance)
		case "encyclopedia":
			fmt.Fprintf(os.Stderr, "oodbd: encyclopedia schema on %d partition(s)\n", n)
		}
		srv = server.NewCluster(cluster, server.Options{IdleTimeout: *idleTimeout})
	}
	bound, err := srv.Start(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "oodbd: listen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("oodbd: serving %s protocol on %s\n", *protocol, bound)

	var stopMetrics func() error
	if *metrics != "" {
		reg.Handle("/fault", fault.Default.Handler())
		reg.Handle("/healthz", srv.HealthzHandler())
		if node != nil {
			// Stamp every sample with this node's identity so a scraper
			// aggregating the cluster can tell the replicas apart.
			reg.Handle("/metrics/prom", obs.PromHandler([]obs.PromSource{
				{Label: fmt.Sprintf("node=%q", *replNode), Reg: reg},
			}))
		}
		pp := http.NewServeMux()
		pp.HandleFunc("/debug/pprof/", pprof.Index)
		pp.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pp.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pp.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pp.HandleFunc("/debug/pprof/trace", pprof.Trace)
		reg.Handle("/debug/pprof", pp)
		mbound, shutdown, err := reg.Serve(*metrics)
		if err != nil {
			fmt.Fprintf(os.Stderr, "oodbd: metrics endpoint: %v\n", err)
			os.Exit(1)
		}
		stopMetrics = shutdown
		fmt.Fprintf(os.Stderr, "oodbd: serving metrics at http://%s/metrics (also /metrics/prom, /healthz, /trace, /debug/pprof)\n", mbound)
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	sig := <-sigs
	fmt.Fprintf(os.Stderr, "oodbd: %s — draining (up to %s)\n", sig, *drainTimeout)

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "oodbd: shutdown: %v\n", err)
		if stopMetrics != nil {
			_ = stopMetrics()
		}
		os.Exit(1)
	}
	if node != nil {
		// The replica owns its engine (the session layer only borrowed it);
		// closing the node flushes and closes whatever state it holds.
		if err := node.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "oodbd: close replica: %v\n", err)
			os.Exit(1)
		}
	} else if h := cluster.Health(); h.Inflight != 0 {
		fmt.Fprintf(os.Stderr, "oodbd: BUG: %d admission slots leaked through drain\n", h.Inflight)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "oodbd: drained; engine closed cleanly")
	if stopMetrics != nil {
		if *lingerDur > 0 {
			// The observability endpoint outlives the drain so scrapers (and
			// the tracing smoke test) can read the final state: /healthz
			// reports draining, /trace and /metrics/prom still answer.
			fmt.Fprintf(os.Stderr, "oodbd: metrics endpoint lingering %s\n", *lingerDur)
			time.Sleep(*lingerDur)
		}
		_ = stopMetrics()
	}
}
