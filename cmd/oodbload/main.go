// Command oodbload drives an oodbd server over the wire protocol from
// many concurrent client connections: the network-facing counterpart of
// oodbsim's in-process workloads, used by the server smoke test and for
// hand-driven load experiments.
//
// Usage examples:
//
//	oodbload -addr 127.0.0.1:7437 -workload banking -workers 64 -txns 100
//	oodbload -addr 127.0.0.1:7437 -workload encyclopedia -keys 500 -ops 4
//	oodbload -addr 127.0.0.1:7437 -workload ping -workers 8
//
// The server must have the matching schema installed (oodbd -install).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/partition"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7437", "oodbd server address")
		wl       = flag.String("workload", "banking", "workload: banking | encyclopedia | ping")
		workers  = flag.Int("workers", 16, "concurrent client workers (each runs on its own pooled connection)")
		txns     = flag.Int("txns", 100, "transactions per worker")
		accounts = flag.Int("accounts", 16, "account space (banking; must match the server's -accounts)")
		keys     = flag.Int("keys", 500, "key space (encyclopedia)")
		ops      = flag.Int("ops", 4, "operations per transaction (encyclopedia)")
		seed     = flag.Int64("seed", 1, "random seed")
		retryOv  = flag.Bool("retry-overload", false, "retry typed overload refusals instead of failing")
		stats    = flag.Bool("stats", false, "print the server's STATS snapshot after the run")
		parts    = flag.Int("partitions", 1, "server partition count: keep each transaction on one partition (must match oodbd -partitions)")
	)
	flag.Parse()

	// With a partitioned server every transaction must stay on the
	// partition of its first-touched object; the driver mirrors the
	// server's router (same pure hash) to build co-located access sets.
	n := *parts
	if n < 1 {
		n = 1
	}
	acctsByPart := make([][]int, n)
	for i := 0; i < *accounts; i++ {
		p := partition.RouteName("Acct"+strconv.Itoa(i), n)
		acctsByPart[p] = append(acctsByPart[p], i)
	}
	// Transfer pools: partitions holding at least two accounts.
	var pools [][]int
	for _, pool := range acctsByPart {
		if len(pool) >= 2 {
			pools = append(pools, pool)
		}
	}
	if *wl == "banking" && len(pools) == 0 {
		fmt.Fprintf(os.Stderr, "oodbload: no partition holds 2 of the %d accounts; raise -accounts\n", *accounts)
		os.Exit(2)
	}
	encNames := make([]string, n)
	for p := range encNames {
		encNames[p] = partition.NameFor("Enc", p, n)
	}

	cl, err := client.Dial(*addr, client.Options{PoolSize: *workers})
	if err != nil {
		fmt.Fprintf(os.Stderr, "oodbload: %v\n", err)
		os.Exit(1)
	}
	defer cl.Close()

	var retries, failures atomic.Int64
	policy := client.RetryPolicy{
		MaxAttempts:   100,
		RetryOverload: *retryOv,
		OnRetry:       func(int, error) { retries.Add(1) },
	}
	latMu := sync.Mutex{}
	lats := make([]time.Duration, 0, *workers**txns)

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rr := rand.New(rand.NewSource(*seed + int64(w)*6151))
			local := make([]time.Duration, 0, *txns)
			for i := 0; i < *txns; i++ {
				t0 := time.Now()
				var err error
				switch *wl {
				case "banking":
					// Pick both accounts from one partition's pool so the
					// transfer never strays off its pinned partition.
					pool := pools[rr.Intn(len(pools))]
					from := pool[rr.Intn(len(pool))]
					to := pool[rr.Intn(len(pool))]
					for to == from {
						to = pool[rr.Intn(len(pool))]
					}
					amt := strconv.Itoa(1 + rr.Intn(100))
					err = cl.RunWithRetry(policy, func(tx *client.Tx) error {
						if _, err := tx.Invoke("account", "Acct"+strconv.Itoa(from), "debit", amt); err != nil {
							return err
						}
						_, err := tx.Invoke("account", "Acct"+strconv.Itoa(to), "credit", amt)
						return err
					})
				case "encyclopedia":
					// One encyclopedia object per partition ("Enc" when
					// unpartitioned); the whole transaction stays on one.
					enc := encNames[rr.Intn(n)]
					err = cl.RunWithRetry(policy, func(tx *client.Tx) error {
						for j := 0; j < *ops; j++ {
							k := fmt.Sprintf("k%06d", rr.Intn(*keys))
							var ierr error
							if rr.Intn(100) < 30 {
								_, ierr = tx.Invoke("encyclopedia", enc, "insert", k, fmt.Sprintf("text%d-%d", i, j))
							} else {
								_, ierr = tx.Invoke("encyclopedia", enc, "search", k)
							}
							if ierr != nil {
								return ierr
							}
						}
						return nil
					})
				case "ping":
					err = cl.Ping()
				default:
					fmt.Fprintf(os.Stderr, "oodbload: unknown workload %q\n", *wl)
					os.Exit(2)
				}
				if err != nil {
					failures.Add(1)
					fmt.Fprintf(os.Stderr, "oodbload: worker %d txn %d: %v\n", w, i, err)
					return
				}
				local = append(local, time.Since(t0))
			}
			latMu.Lock()
			lats = append(lats, local...)
			latMu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	done := len(lats)
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) time.Duration {
		if done == 0 {
			return 0
		}
		i := int(p * float64(done-1))
		return lats[i]
	}
	fmt.Printf("oodbload: %s: %d/%d txns in %v  (%.0f txn/s, p50 %v, p99 %v, retries %d)\n",
		*wl, done, *workers**txns, elapsed.Round(time.Millisecond),
		float64(done)/elapsed.Seconds(), pct(0.50), pct(0.99), retries.Load())

	if *stats {
		s, err := cl.Stats()
		if err != nil {
			fmt.Fprintf(os.Stderr, "oodbload: stats: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(s)
	}
	if failures.Load() > 0 {
		os.Exit(1)
	}
}
