// Command oodbload drives an oodbd server over the wire protocol from
// many concurrent client connections: the network-facing counterpart of
// oodbsim's in-process workloads, used by the server smoke test and for
// hand-driven load experiments.
//
// Usage examples:
//
//	oodbload -addr 127.0.0.1:7437 -workload banking -workers 64 -txns 100
//	oodbload -addr 127.0.0.1:7437 -workload encyclopedia -keys 500 -ops 4
//	oodbload -addr 127.0.0.1:7437 -workload ping -workers 8
//
// The server must have the matching schema installed (oodbd -install).
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/obs"
	"repro/internal/partition"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7437", "oodbd server address")
		wl       = flag.String("workload", "banking", "workload: banking | encyclopedia | ping")
		workers  = flag.Int("workers", 16, "concurrent client workers (each runs on its own pooled connection)")
		txns     = flag.Int("txns", 100, "transactions per worker")
		accounts = flag.Int("accounts", 16, "account space (banking; must match the server's -accounts)")
		keys     = flag.Int("keys", 500, "key space (encyclopedia)")
		ops      = flag.Int("ops", 4, "operations per transaction (encyclopedia)")
		seed     = flag.Int64("seed", 1, "random seed")
		retryOv  = flag.Bool("retry-overload", false, "retry typed overload refusals instead of failing")
		stats    = flag.Bool("stats", false, "print the server's STATS snapshot and the client-side pool/retry counters after the run")
		parts    = flag.Int("partitions", 1, "server partition count: keep each transaction on one partition (must match oodbd -partitions)")
		trace    = flag.Bool("trace", false, "stamp every transaction with a distributed trace id and print one trace line per logical transaction")
		traceURL = flag.String("trace-url", "", "oodbd metrics base URL (http://host:port): fetch server-side blame chains for retried/failed traces after the run (implies -trace)")
	)
	flag.Parse()

	// With a partitioned server every transaction must stay on the
	// partition of its first-touched object; the driver mirrors the
	// server's router (same pure hash) to build co-located access sets.
	n := *parts
	if n < 1 {
		n = 1
	}
	acctsByPart := make([][]int, n)
	for i := 0; i < *accounts; i++ {
		p := partition.RouteName("Acct"+strconv.Itoa(i), n)
		acctsByPart[p] = append(acctsByPart[p], i)
	}
	// Transfer pools: partitions holding at least two accounts.
	var pools [][]int
	for _, pool := range acctsByPart {
		if len(pool) >= 2 {
			pools = append(pools, pool)
		}
	}
	if *wl == "banking" && len(pools) == 0 {
		fmt.Fprintf(os.Stderr, "oodbload: no partition holds 2 of the %d accounts; raise -accounts\n", *accounts)
		os.Exit(2)
	}
	encNames := make([]string, n)
	for p := range encNames {
		encNames[p] = partition.NameFor("Enc", p, n)
	}

	tracing := *trace || *traceURL != ""
	clientReg := obs.New()
	cl, err := client.Dial(*addr, client.Options{
		PoolSize: *workers,
		Trace:    tracing,
		Obs:      clientReg,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "oodbload: %v\n", err)
		os.Exit(1)
	}
	defer cl.Close()

	var retries, failures atomic.Int64
	policy := client.RetryPolicy{
		MaxAttempts:   100,
		RetryOverload: *retryOv,
		OnRetry:       func(int, error) { retries.Add(1) },
	}
	latMu := sync.Mutex{}
	lats := make([]time.Duration, 0, *workers**txns)
	// Retried or failed trace ids, kept for the -trace-url blame fetch.
	var interestingMu sync.Mutex
	var interesting []string

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rr := rand.New(rand.NewSource(*seed + int64(w)*6151))
			local := make([]time.Duration, 0, *txns)
			for i := 0; i < *txns; i++ {
				t0 := time.Now()
				var err error
				// Per-iteration retry policy: with tracing on, the attempt
				// count and the logical transaction's trace id are captured
				// for the trace line (and the -trace-url blame fetch).
				p := policy
				var traceID string
				var extraAttempts int
				if tracing {
					p.OnRetry = func(a int, e error) {
						retries.Add(1)
						extraAttempts = a
					}
				}
				run := func(body func(tx *client.Tx) error) error {
					return cl.RunWithRetry(p, func(tx *client.Tx) error {
						traceID = tx.TraceID()
						return body(tx)
					})
				}
				switch *wl {
				case "banking":
					// Pick both accounts from one partition's pool so the
					// transfer never strays off its pinned partition.
					pool := pools[rr.Intn(len(pools))]
					from := pool[rr.Intn(len(pool))]
					to := pool[rr.Intn(len(pool))]
					for to == from {
						to = pool[rr.Intn(len(pool))]
					}
					amt := strconv.Itoa(1 + rr.Intn(100))
					err = run(func(tx *client.Tx) error {
						if _, err := tx.Invoke("account", "Acct"+strconv.Itoa(from), "debit", amt); err != nil {
							return err
						}
						_, err := tx.Invoke("account", "Acct"+strconv.Itoa(to), "credit", amt)
						return err
					})
				case "encyclopedia":
					// One encyclopedia object per partition ("Enc" when
					// unpartitioned); the whole transaction stays on one.
					enc := encNames[rr.Intn(n)]
					err = run(func(tx *client.Tx) error {
						for j := 0; j < *ops; j++ {
							k := fmt.Sprintf("k%06d", rr.Intn(*keys))
							var ierr error
							if rr.Intn(100) < 30 {
								_, ierr = tx.Invoke("encyclopedia", enc, "insert", k, fmt.Sprintf("text%d-%d", i, j))
							} else {
								_, ierr = tx.Invoke("encyclopedia", enc, "search", k)
							}
							if ierr != nil {
								return ierr
							}
						}
						return nil
					})
				case "ping":
					err = cl.Ping()
				default:
					fmt.Fprintf(os.Stderr, "oodbload: unknown workload %q\n", *wl)
					os.Exit(2)
				}
				if tracing && traceID != "" {
					status := "ok"
					if err != nil {
						status = "err"
					}
					fmt.Printf("oodbload: trace=%s worker=%d txn=%d attempts=%d status=%s\n",
						traceID, w, i, extraAttempts+1, status)
					if err != nil || extraAttempts > 0 {
						interestingMu.Lock()
						if len(interesting) < 8 {
							interesting = append(interesting, traceID)
						}
						interestingMu.Unlock()
					}
				}
				if err != nil {
					failures.Add(1)
					fmt.Fprintf(os.Stderr, "oodbload: worker %d txn %d: %v\n", w, i, err)
					return
				}
				local = append(local, time.Since(t0))
			}
			latMu.Lock()
			lats = append(lats, local...)
			latMu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	done := len(lats)
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) time.Duration {
		if done == 0 {
			return 0
		}
		i := int(p * float64(done-1))
		return lats[i]
	}
	fmt.Printf("oodbload: %s: %d/%d txns in %v  (%.0f txn/s, p50 %v, p99 %v, retries %d)\n",
		*wl, done, *workers**txns, elapsed.Round(time.Millisecond),
		float64(done)/elapsed.Seconds(), pct(0.50), pct(0.99), retries.Load())

	if *stats {
		s, err := cl.Stats()
		if err != nil {
			fmt.Fprintf(os.Stderr, "oodbload: stats: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(s)
		fmt.Println("oodbload: client-side counters:")
		if err := clientReg.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "oodbload: client stats: %v\n", err)
		}
		fmt.Println()
	}
	if *traceURL != "" {
		fetchBlame(*traceURL, interesting)
	}
	if failures.Load() > 0 {
		os.Exit(1)
	}
}

// fetchBlame pulls the server-side blame chains for the retried/failed
// trace ids from oodbd's metrics endpoint: the cross-process half of the
// trace — client attempt, session span, lock waits, causal abort edges —
// rendered by /trace?trace=<id>&format=text.
func fetchBlame(base string, ids []string) {
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "oodbload: no retried or failed traces to fetch")
		return
	}
	base = strings.TrimRight(base, "/")
	hc := &http.Client{Timeout: 5 * time.Second}
	for _, id := range ids {
		u := base + "/trace?trace=" + url.QueryEscape(id) + "&format=text"
		res, err := hc.Get(u)
		if err != nil {
			fmt.Fprintf(os.Stderr, "oodbload: blame fetch %s: %v\n", id, err)
			continue
		}
		body, _ := io.ReadAll(res.Body)
		res.Body.Close()
		if res.StatusCode != http.StatusOK {
			fmt.Fprintf(os.Stderr, "oodbload: blame fetch %s: %s: %s\n", id, res.Status, strings.TrimSpace(string(body)))
			continue
		}
		fmt.Printf("oodbload: server-side blame for trace %s:\n%s", id, body)
	}
}
