// Command oodbsim runs the reproduction's workloads under a chosen
// concurrency-control protocol and prints the metrics the paper argues
// about: blocked acquires (the rate of conflicting accesses), wait time,
// deadlocks, and throughput — optionally validating the produced schedule
// against Definitions 13/16.
//
// Usage examples:
//
//	oodbsim -workload encyclopedia -protocol all -workers 8 -txns 100
//	oodbsim -workload coedit -protocol 2pl-object -authors 6
//	oodbsim -workload banking -protocol open-nested -validate
//
// -protocol all sweeps every protocol and prints a comparison table.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/span"
	"repro/internal/storage"
	"repro/internal/workload"
)

// faultFlags collects repeatable -fault name=spec arguments.
type faultFlags []string

func (f *faultFlags) String() string { return fmt.Sprint(*f) }
func (f *faultFlags) Set(v string) error {
	*f = append(*f, v)
	return nil
}

var protocols = map[string]core.ProtocolKind{
	"open-nested":   core.ProtocolOpenNested,
	"2pl-page":      core.Protocol2PLPage,
	"2pl-object":    core.Protocol2PLObject,
	"closed-nested": core.ProtocolClosedNested,
	"none":          core.ProtocolNone,
}

func main() {
	var (
		wl         = flag.String("workload", "encyclopedia", "workload: encyclopedia | coedit | banking | lockstress")
		protocol   = flag.String("protocol", "all", "protocol: open-nested | 2pl-page | 2pl-object | closed-nested | none | all")
		workers    = flag.Int("workers", 8, "concurrent workers / authors")
		txns       = flag.Int("txns", 100, "transactions (edits) per worker")
		ops        = flag.Int("ops", 4, "operations per transaction (encyclopedia)")
		keys       = flag.Int("keys", 500, "key space size (encyclopedia)")
		zipf       = flag.Float64("zipf", 0, "zipf skew s (>1 enables skew)")
		fanout     = flag.Int("fanout", 100, "B+ tree node capacity (keys per page)")
		sections   = flag.Int("sections", 16, "document sections (coedit)")
		accounts   = flag.Int("accounts", 16, "accounts (banking)")
		hot        = flag.Int("hot", 20, "percent of banking transfers hitting account 0")
		seed       = flag.Int64("seed", 1, "random seed")
		ioDelay    = flag.Duration("io", 20*time.Microsecond, "simulated page I/O latency")
		validate   = flag.Bool("validate", false, "validate the trace against Definitions 13/16")
		traceOut   = flag.String("trace", "", "write the encyclopedia workload's trace JSON to this file (single protocol only)")
		durMode    = flag.String("durability", "mem-only", "WAL durability: mem-only | sync-on-commit | group-commit")
		walDir     = flag.String("waldir", "", "WAL segment directory (required for durable modes; must be empty/new)")
		ckptEvery  = flag.Duration("checkpoint", 0, "fuzzy-checkpoint interval: snapshot the store and truncate dead WAL segments this often (durable modes only; 0 = off)")
		metrics    = flag.String("metrics-addr", "", "serve /metrics, /debug/vars, /events, /trace and /fault on this host:port for the run")
		linger     = flag.Duration("metrics-linger", 0, "keep the metrics endpoint up this long after the run (needs -metrics-addr)")
		conflict   = flag.Int("conflict", 20, "percent of exclusive (non-commuting) acquires (lockstress)")
		shards     = flag.Int("shards", 0, "lock-table shard count (lockstress; 0 = default)")
		hold       = flag.Duration("hold", 0, "dwell time between acquires while holding locks (lockstress; widens conflict windows)")
		chromeOut  = flag.String("trace-out", "", "write the run's span traces as Chrome trace_event JSON (chrome://tracing, Perfetto)")
		blame      = flag.Int("blame", 0, "after the run, print blame chains for up to N aborted transactions")
		spanSample = flag.Int("span-sample", 0, "span-trace every Nth transaction (0 or 1 = all)")
		faults     faultFlags
	)
	flag.Var(&faults, "fault", "arm a failpoint, e.g. -fault 'wal.fsync=error(efsync);p=0.01' (repeatable; 'name=off' disarms)")
	flag.Parse()

	for _, kv := range faults {
		if err := fault.Default.ArmString(kv); err != nil {
			fmt.Fprintf(os.Stderr, "oodbsim: -fault %q: %v\n", kv, err)
			os.Exit(2)
		}
	}

	durability, err := storage.ParseDurability(*durMode)
	if err != nil {
		fmt.Fprintf(os.Stderr, "oodbsim: %v\n", err)
		os.Exit(2)
	}
	if durability != storage.MemOnly && *walDir == "" {
		fmt.Fprintln(os.Stderr, "oodbsim: -durability", *durMode, "needs -waldir")
		os.Exit(2)
	}
	if durability == storage.MemOnly && *walDir != "" {
		fmt.Fprintln(os.Stderr, "oodbsim: -waldir has no effect with -durability mem-only; pick sync-on-commit or group-commit")
		os.Exit(2)
	}
	if durability != storage.MemOnly && *protocol == "all" {
		fmt.Fprintln(os.Stderr, "oodbsim: durable modes need a single -protocol (one WAL dir per run)")
		os.Exit(2)
	}
	if durability != storage.MemOnly && (*wl == "coedit" || *wl == "lockstress") {
		fmt.Fprintf(os.Stderr, "oodbsim: the %s workload is in-memory only and cannot run durably\n", *wl)
		os.Exit(2)
	}
	if *ckptEvery > 0 && durability == storage.MemOnly {
		fmt.Fprintln(os.Stderr, "oodbsim: -checkpoint needs a durable mode (-durability sync-on-commit or group-commit)")
		os.Exit(2)
	}
	if *traceOut != "" && *protocol == "all" {
		fmt.Fprintln(os.Stderr, "oodbsim: -trace needs a single -protocol (each sweep run would overwrite the file)")
		os.Exit(2)
	}
	if *linger > 0 && *metrics == "" {
		fmt.Fprintln(os.Stderr, "oodbsim: -metrics-linger needs -metrics-addr")
		os.Exit(2)
	}

	// One span tracer for the whole run (a sweep's traces share one /trace
	// endpoint and one Chrome export) and one registry: a protocol sweep
	// re-publishes the engine snapshots under the same names, so the
	// endpoint follows whichever engine is live. A nil registry makes each
	// engine create a private one (no endpoint).
	tracer := span.NewTracer(span.Options{SampleEvery: *spanSample})
	var reg *obs.Registry
	var stopMetrics func() error
	if *metrics != "" {
		reg = obs.New()
		// Mount /trace here, not just via the engine: lockstress has no
		// engine but still records traces. /fault controls the process-wide
		// failpoint registry at runtime (GET lists, ?arm= / ?disarm= change).
		reg.Handle("/trace", tracer.Handler())
		reg.Handle("/fault", fault.Default.Handler())
		bound, shutdown, err := reg.Serve(*metrics)
		if err != nil {
			fmt.Fprintf(os.Stderr, "oodbsim: metrics endpoint: %v\n", err)
			os.Exit(1)
		}
		stopMetrics = shutdown
		fmt.Fprintf(os.Stderr, "oodbsim: serving metrics at http://%s/metrics\n", bound)
	}

	var kinds []core.ProtocolKind
	var names []string
	if *protocol == "all" {
		names = []string{"open-nested", "closed-nested", "2pl-page", "2pl-object"}
		for _, n := range names {
			kinds = append(kinds, protocols[n])
		}
	} else {
		k, ok := protocols[*protocol]
		if !ok {
			fmt.Fprintf(os.Stderr, "oodbsim: unknown protocol %q\n", *protocol)
			os.Exit(2)
		}
		kinds = append(kinds, k)
		names = append(names, *protocol)
	}
	if *wl == "lockstress" {
		// Lockstress hammers the lock table directly; there is no engine
		// and no protocol to sweep.
		kinds, names = kinds[:1], []string{"lock-table"}
	}

	var results []workload.Result
	for i, kind := range kinds {
		var res workload.Result
		var err error
		switch *wl {
		case "encyclopedia":
			res, err = workload.RunEncyclopedia(workload.Config{
				Protocol:           kind,
				Workers:            *workers,
				TxnsPerWorker:      *txns,
				OpsPerTxn:          *ops,
				Keys:               *keys,
				ZipfS:              *zipf,
				TreeFanout:         *fanout,
				Preload:            *keys / 2,
				Seed:               *seed,
				Validate:           *validate,
				PageIODelay:        *ioDelay,
				TraceFile:          *traceOut,
				Durability:         durability,
				WALDir:             *walDir,
				CheckpointInterval: *ckptEvery,
				Obs:                reg,
				Tracer:             tracer,
			})
		case "coedit":
			res, err = workload.RunCoEdit(workload.CoEditConfig{
				Protocol:       kind,
				Authors:        *workers,
				EditsPerAuthor: *txns,
				Sections:       *sections,
				EditWork:       200 * time.Microsecond,
				Seed:           *seed,
				Validate:       *validate,
				PageIODelay:    *ioDelay,
				Obs:            reg,
				Tracer:         tracer,
			})
		case "banking":
			res, err = workload.RunBanking(workload.BankingConfig{
				Protocol:           kind,
				Workers:            *workers,
				TxnsPerWorker:      *txns,
				Accounts:           *accounts,
				HotPct:             *hot,
				Seed:               *seed,
				Validate:           *validate,
				PageIODelay:        *ioDelay,
				Durability:         durability,
				WALDir:             *walDir,
				CheckpointInterval: *ckptEvery,
				Obs:                reg,
				Tracer:             tracer,
			})
		case "lockstress":
			res, err = workload.RunLockStress(workload.LockStressConfig{
				Goroutines:       *workers,
				TxnsPerGoroutine: *txns,
				ConflictPct:      *conflict,
				Shards:           *shards,
				HoldDelay:        *hold,
				Seed:             *seed,
				Obs:              reg,
				Tracer:           tracer,
			})
		default:
			fmt.Fprintf(os.Stderr, "oodbsim: unknown workload %q\n", *wl)
			os.Exit(2)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "oodbsim: %s under %s: %v\n", *wl, names[i], err)
			os.Exit(1)
		}
		results = append(results, res)
	}

	fmt.Print(workload.Table(results))
	if *validate {
		fmt.Println()
		for i, r := range results {
			fmt.Printf("%-13s oo-serializable=%v conventional=%v semanticConflicts=%d conventionalConflicts=%d\n",
				names[i], r.OOSerializable, r.ConvSerializable, r.SemanticConflicts, r.ConventionalConflicts)
		}
	}
	if *blame > 0 {
		aborted := tracer.Aborted(*blame)
		fmt.Println()
		if len(aborted) == 0 {
			fmt.Println("no aborted transactions retained — nothing to blame")
		}
		for _, t := range aborted {
			span.WriteBlame(os.Stdout, t)
		}
	}
	if *chromeOut != "" {
		f, err := os.Create(*chromeOut)
		if err == nil {
			err = span.WriteChrome(f, tracer.Completed(0), tracer.EngineSpans())
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "oodbsim: writing %s: %v\n", *chromeOut, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "oodbsim: wrote Chrome trace to %s\n", *chromeOut)
	}
	if *linger > 0 {
		fmt.Fprintf(os.Stderr, "oodbsim: metrics endpoint up for another %s\n", *linger)
		time.Sleep(*linger)
	}
	if stopMetrics != nil {
		_ = stopMetrics()
	}
}
