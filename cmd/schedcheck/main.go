// Command schedcheck validates a recorded execution trace against the
// paper's definitions: it reconstructs the transaction system, applies the
// Definition 5 extension, computes the dependency relations (Definitions
// 10, 11, 15) and reports the oo-serializability verdicts (Definitions 13
// and 16) plus the conventional baseline.
//
// Usage:
//
//	schedcheck [-deps] [-demo] [trace.json]
//
// The trace is read from the named file or stdin; -deps additionally
// prints the Figure 8 style dependency table; -demo ignores the input and
// checks the built-in Example 4 trace instead.
//
// Object types in the trace are matched against the runtime commutativity
// specifications of every built-in type (page, btreenode, btree,
// linkedlist, item, encyclopedia, document, account); unknown types
// conservatively conflict on everything.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/btree"
	"repro/internal/commut"
	"repro/internal/core"
	"repro/internal/enc"
	"repro/internal/list"
	"repro/internal/paperex"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/workload"
)

// runtimeRegistry assembles the commutativity specifications of all
// built-in object types — the same ones a live engine registers.
func runtimeRegistry() *commut.Registry {
	reg := commut.NewRegistry()
	reg.Register(core.PageType, core.PageSpec())
	reg.Register(btree.TreeType, btree.TreeSpec())
	reg.Register(btree.NodeType, btree.NodeSpec())
	reg.Register(list.Type, list.Spec())
	reg.Register(enc.Type, enc.Spec())
	reg.Register(enc.ItemType, enc.ItemSpec())
	reg.Register(workload.DocumentType, workload.DocSpec())
	reg.Register(workload.AccountType, workload.AccountSpec())
	return reg
}

func main() {
	deps := flag.Bool("deps", false, "print the per-object dependency table")
	demo := flag.Bool("demo", false, "check the built-in Example 4 instead of reading a trace")
	online := flag.Bool("online", false, "additionally run the incremental certifier and report when the first violation closed")
	flag.Parse()

	var a *sched.Analysis
	var err error
	if *demo {
		sys, order := paperex.Example4()
		a, err = sched.Analyze(sys, paperex.Registry(), order)
	} else {
		var data []byte
		if flag.NArg() > 0 {
			data, err = os.ReadFile(flag.Arg(0))
		} else {
			data, err = io.ReadAll(os.Stdin)
		}
		if err != nil {
			fatal(err)
		}
		tr, err2 := trace.Unmarshal(data)
		if err2 != nil {
			fatal(err2)
		}
		onlineTrace = &tr
		sys, order, err2 := tr.ToSystem()
		if err2 != nil {
			fatal(err2)
		}
		sys.Extend()
		a, err = sched.Analyze(sys, runtimeRegistry(), order)
	}
	if err != nil {
		fatal(err)
	}

	if *online && !*demo {
		runOnline()
	}
	rep := a.Check()
	conv := a.Conventional()

	fmt.Printf("%-28s %v\n", "oo-serializable (Def. 16):", rep.SystemOOSerializable)
	fmt.Printf("%-28s %v\n", "globally acyclic:", rep.GlobalAcyclic)
	fmt.Printf("%-28s %v\n", "conventionally serializable:", conv.Serializable)
	fmt.Printf("%-28s %d\n", "conventional conflicts:", conv.Conflicts)
	fmt.Printf("%-28s %d\n", "semantic conflicts:", a.SemanticConflicts())
	fmt.Println()

	fmt.Printf("%-14s %-8s %-8s %-8s %s\n", "object", "tranDep", "actDep", "added", "verdict")
	for _, o := range a.Objects() {
		v := a.ObjectVerdict(o)
		verdict := "oo-serializable"
		if !v.OOSerializable {
			verdict = fmt.Sprintf("VIOLATION (cycle: %v)", v.Cycle)
		} else if !v.AddedAcyclic {
			verdict = fmt.Sprintf("ADDED-VIOLATION (cycle: %v)", v.Cycle)
		}
		fmt.Printf("%-14s %-8d %-8d %-8d %s\n",
			o.Name, a.TranDep[o].NumEdges(), a.ActDep[o].NumEdges(), a.Added[o].NumEdges(), verdict)
	}

	if !rep.GlobalAcyclic {
		fmt.Printf("\nglobal cycle witness: %v\n", rep.GlobalCycle)
	}
	if !conv.Serializable {
		fmt.Printf("conventional cycle witness: %v\n", conv.Cycle)
	}
	if *deps {
		fmt.Println()
		fmt.Print(a.DependencyTable())
	}
	if !rep.SystemOOSerializable {
		os.Exit(1)
	}
}

// runOnline replays the already-loaded trace through the incremental
// certifier, reporting the event index at which the stream stopped being
// oo-serializable (engine-style traces only: call cycles are rejected).
func runOnline() {
	if onlineTrace == nil {
		return
	}
	on := sched.NewOnline(runtimeRegistry())
	for i, ev := range onlineTrace.Events {
		if err := on.Add(sched.StreamEvent{
			ID: ev.ID, Parent: ev.Parent, ObjType: ev.ObjType, ObjName: ev.ObjName,
			Method: ev.Method, Params: ev.Params, Parallel: ev.Parallel, Aborted: ev.Aborted,
		}); err != nil {
			fmt.Printf("online certifier: stream unsupported at event %d: %v\n\n", i, err)
			return
		}
		if !on.OK() {
			fmt.Printf("online certifier: violation closed at event %d/%d: %v\n\n",
				i, len(onlineTrace.Events), on.Violation())
			return
		}
	}
	fmt.Printf("online certifier: %d events, no violation\n\n", len(onlineTrace.Events))
}

var onlineTrace *trace.Trace

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "schedcheck: %v\n", err)
	os.Exit(2)
}
