package main

import (
	"testing"

	"repro/internal/storage"
)

// writeLog materializes records (Owner/After vary per call) into a fresh
// WAL directory through the real FileWAL, so compare sees exactly what a
// replica's disk would hold.
func writeLog(t *testing.T, dir string, owners []string) {
	t.Helper()
	fw, _, err := storage.OpenFileWAL(dir, storage.FileWALOptions{Durability: storage.GroupCommit})
	if err != nil {
		t.Fatal(err)
	}
	var last uint64
	for i, owner := range owners {
		last = uint64(i + 1)
		fw.Append(storage.Record{
			LSN: last, Kind: storage.RecUpdate, Owner: owner,
			Page: storage.PageID(1), Before: "", After: owner,
		})
	}
	if last != 0 {
		if err := fw.WaitDurable(last); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCompareIdentical(t *testing.T) {
	a, b := t.TempDir(), t.TempDir()
	writeLog(t, a, []string{"T1", "T2", "T3"})
	writeLog(t, b, []string{"T1", "T2", "T3"})
	if code := compareDirs(a, b); code != 0 {
		t.Fatalf("identical logs: exit %d, want 0", code)
	}
}

func TestCompareLaggingSuffixIsBenign(t *testing.T) {
	a, b := t.TempDir(), t.TempDir()
	writeLog(t, a, []string{"T1", "T2", "T3", "T4"})
	writeLog(t, b, []string{"T1", "T2"})
	if code := compareDirs(a, b); code != 0 {
		t.Fatalf("lagging replica: exit %d, want 0 (a shorter prefix is not divergence)", code)
	}
}

func TestCompareDivergenceDetected(t *testing.T) {
	a, b := t.TempDir(), t.TempDir()
	writeLog(t, a, []string{"T1", "T2", "T3"})
	writeLog(t, b, []string{"T1", "TX", "T3"})
	if code := compareDirs(a, b); code != 1 {
		t.Fatalf("divergent LSN 2: exit %d, want 1", code)
	}
}
