// Command waldump prints the records of a WAL segment directory in a
// human-readable, grep-friendly form — one line per record. It uses the
// read-only scan (the torn tail of the last segment is skipped, mid-log
// damage is an error), so dumping never mutates the log. Checkpoint files
// in the directory are summarized first — including torn ones a crash
// landed mid-checkpoint — together with the truncation boundary each one
// justifies.
//
// Usage:
//
//	waldump -dir /path/to/wal [-owner T17] [-page 3]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/cc"
	"repro/internal/checkpoint"
	"repro/internal/storage"
)

func main() {
	dir := flag.String("dir", "", "WAL segment directory (required)")
	owner := flag.String("owner", "", "only records whose owner's root matches")
	page := flag.Uint64("page", 0, "only update records touching this page")
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "waldump: -dir is required")
		os.Exit(2)
	}
	ckpts := dumpCheckpoints(*dir)
	records, err := storage.ReadWALDir(*dir)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			fmt.Fprintf(os.Stderr, "waldump: %s: no such directory\n", *dir)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "waldump: %v\n", err)
		os.Exit(1)
	}
	if len(records) == 0 {
		segs, _ := filepath.Glob(filepath.Join(*dir, "wal-*.seg"))
		switch {
		case len(segs) == 0 && ckpts == 0:
			fmt.Fprintf(os.Stderr, "waldump: %s: empty segment directory (no wal-*.seg files) — nothing was ever logged here\n", *dir)
		case len(segs) == 0:
			fmt.Fprintf(os.Stderr, "waldump: %s: checkpoint file(s) but no wal-*.seg — the image above is the whole story\n", *dir)
		default:
			fmt.Fprintf(os.Stderr, "waldump: %s: %d segment file(s) but no decodable records (torn before the first record?)\n", *dir, len(segs))
		}
		return
	}
	if first := records[0].LSN; first > 1 {
		fmt.Printf("log truncated: first surviving record is LSN %d (records 1..%d reclaimed by checkpointing)\n", first, first-1)
	}
	for _, r := range records {
		if *owner != "" && cc.RootOf(strings.SplitN(r.Owner, ":", 2)[0]) != *owner {
			continue
		}
		if *page != 0 && uint64(r.Page) != *page {
			continue
		}
		line := fmt.Sprintf("%8d %-10s %-14s", r.LSN, r.Kind, r.Owner)
		if r.Kind == storage.RecUpdate {
			clr := ""
			if r.CLR {
				clr = " CLR"
			}
			line += fmt.Sprintf(" page=%d %q -> %q%s", r.Page, r.Before, r.After, clr)
		}
		if r.Note != "" {
			line += fmt.Sprintf(" note=%q", strings.ReplaceAll(r.Note, "\x1f", "|"))
		}
		if len(r.Refs) > 0 {
			line += fmt.Sprintf(" refs=%v", r.Refs)
		}
		fmt.Println(line)
	}
}

// dumpCheckpoints summarizes the directory's checkpoint files (valid and
// torn) and returns how many there are.
func dumpCheckpoints(dir string) int {
	infos, err := checkpoint.Scan(dir)
	if err != nil || len(infos) == 0 {
		return 0
	}
	for _, info := range infos {
		s, lerr := checkpoint.Load(filepath.Join(dir, info.Name))
		if lerr != nil {
			fmt.Printf("checkpoint %s: INVALID — ignored by recovery (%v)\n", info.Name, lerr)
			continue
		}
		line := fmt.Sprintf("checkpoint %s: lsn=%d pages=%d max-txn=%d truncate-below=%d",
			info.Name, s.LSN, len(s.Pages), s.MaxTxn, s.TruncateBelow())
		if len(s.Active) > 0 {
			line += fmt.Sprintf(" active=%v", s.Active)
		}
		if s.UnixNano != 0 {
			line += " written=" + time.Unix(0, s.UnixNano).Format("2006-01-02T15:04:05.000")
		}
		fmt.Println(line)
	}
	return len(infos)
}
