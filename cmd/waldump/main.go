// Command waldump prints the records of a WAL segment directory in a
// human-readable, grep-friendly form — one line per record. It uses the
// read-only scan (the torn tail of the last segment is skipped, mid-log
// damage is an error), so dumping never mutates the log. Checkpoint files
// in the directory are summarized first — including torn ones a crash
// landed mid-checkpoint — together with the truncation boundary each one
// justifies.
//
// Usage:
//
//	waldump -dir /path/to/wal [-owner T17] [-page 3]
//	waldump -compare /path/to/walA /path/to/walB
//
// -compare diffs two WAL directories record-by-record — the replication
// debugging tool: two replicas of the same log must agree byte-for-byte
// on every LSN they share. It reports the first divergent LSN (exit 1),
// or notes the benign ways the logs may differ — a checkpoint-truncated
// prefix on one side, a longer suffix on the other (a lagging replica or
// an unreplicated torn tail) — and exits 0.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/cc"
	"repro/internal/checkpoint"
	"repro/internal/storage"
)

func main() {
	dir := flag.String("dir", "", "WAL segment directory (required)")
	owner := flag.String("owner", "", "only records whose owner's root matches")
	page := flag.Uint64("page", 0, "only update records touching this page")
	compare := flag.Bool("compare", false, "diff two WAL directories (the two positional args) record-by-record")
	flag.Parse()
	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "waldump: -compare needs exactly two directories: waldump -compare <dirA> <dirB>")
			os.Exit(2)
		}
		os.Exit(compareDirs(flag.Arg(0), flag.Arg(1)))
	}
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "waldump: -dir is required")
		os.Exit(2)
	}
	ckpts := dumpCheckpoints(*dir)
	records, err := storage.ReadWALDir(*dir)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			fmt.Fprintf(os.Stderr, "waldump: %s: no such directory\n", *dir)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "waldump: %v\n", err)
		os.Exit(1)
	}
	if len(records) == 0 {
		segs, _ := filepath.Glob(filepath.Join(*dir, "wal-*.seg"))
		switch {
		case len(segs) == 0 && ckpts == 0:
			fmt.Fprintf(os.Stderr, "waldump: %s: empty segment directory (no wal-*.seg files) — nothing was ever logged here\n", *dir)
		case len(segs) == 0:
			fmt.Fprintf(os.Stderr, "waldump: %s: checkpoint file(s) but no wal-*.seg — the image above is the whole story\n", *dir)
		default:
			fmt.Fprintf(os.Stderr, "waldump: %s: %d segment file(s) but no decodable records (torn before the first record?)\n", *dir, len(segs))
		}
		return
	}
	if first := records[0].LSN; first > 1 {
		fmt.Printf("log truncated: first surviving record is LSN %d (records 1..%d reclaimed by checkpointing)\n", first, first-1)
	}
	for _, r := range records {
		if *owner != "" && cc.RootOf(strings.SplitN(r.Owner, ":", 2)[0]) != *owner {
			continue
		}
		if *page != 0 && uint64(r.Page) != *page {
			continue
		}
		line := fmt.Sprintf("%8d %-10s %-14s", r.LSN, r.Kind, r.Owner)
		if r.Kind == storage.RecUpdate {
			clr := ""
			if r.CLR {
				clr = " CLR"
			}
			line += fmt.Sprintf(" page=%d %q -> %q%s", r.Page, r.Before, r.After, clr)
		}
		if r.Note != "" {
			line += fmt.Sprintf(" note=%q", strings.ReplaceAll(r.Note, "\x1f", "|"))
		}
		if len(r.Refs) > 0 {
			line += fmt.Sprintf(" refs=%v", r.Refs)
		}
		fmt.Println(line)
	}
}

// compareDirs diffs two WAL directories on their shared LSN range and
// returns the process exit code: 0 when every shared LSN carries an
// identical record (length differences are reported but benign — a
// replica may lag, a checkpoint may have truncated one prefix), 1 on the
// first divergent LSN, 2 when a directory cannot be read at all.
func compareDirs(dirA, dirB string) int {
	readAll := func(dir string) (map[uint64]storage.Record, uint64, uint64, bool) {
		records, err := storage.ReadWALDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "waldump: %s: %v\n", dir, err)
			return nil, 0, 0, false
		}
		byLSN := make(map[uint64]storage.Record, len(records))
		var first, last uint64
		for _, r := range records {
			byLSN[r.LSN] = r
			if first == 0 || r.LSN < first {
				first = r.LSN
			}
			if r.LSN > last {
				last = r.LSN
			}
		}
		return byLSN, first, last, true
	}
	a, firstA, lastA, okA := readAll(dirA)
	b, firstB, lastB, okB := readAll(dirB)
	if !okA || !okB {
		return 2
	}
	fmt.Printf("A %s: %d records, LSN %d..%d\n", dirA, len(a), firstA, lastA)
	fmt.Printf("B %s: %d records, LSN %d..%d\n", dirB, len(b), firstB, lastB)
	if len(a) == 0 || len(b) == 0 {
		fmt.Println("one side is empty; nothing to compare")
		return 0
	}

	// Shared range: below it one side's prefix was checkpoint-truncated,
	// above it one side has a suffix the other never saw (a lagging replica,
	// or a torn tail the scan already skipped).
	lo, hi := max64(firstA, firstB), min64(lastA, lastB)
	if firstA != firstB {
		fmt.Printf("prefix differs: A starts at %d, B at %d — %d record(s) reclaimed on one side, unverifiable\n",
			firstA, firstB, lo-min64(firstA, firstB))
	}
	show := func(tag string, r storage.Record, ok bool) {
		if !ok {
			fmt.Printf("  %s: <missing>\n", tag)
			return
		}
		fmt.Printf("  %s: %s %s page=%d %q -> %q note=%q\n", tag, r.Kind, r.Owner, r.Page, r.Before, r.After, r.Note)
	}
	for lsn := lo; lsn <= hi; lsn++ {
		ra, okA := a[lsn]
		rb, okB := b[lsn]
		if okA && okB && string(storage.EncodeRecordFrame(nil, ra)) == string(storage.EncodeRecordFrame(nil, rb)) {
			continue
		}
		fmt.Printf("FIRST DIVERGENT LSN: %d\n", lsn)
		show("A", ra, okA)
		show("B", rb, okB)
		return 1
	}
	fmt.Printf("shared range %d..%d identical (%d records)\n", lo, hi, hi-lo+1)
	switch {
	case lastA > lastB:
		fmt.Printf("A has a suffix B lacks: LSN %d..%d (%d records) — B lags or A's tail never replicated\n",
			lastB+1, lastA, lastA-lastB)
	case lastB > lastA:
		fmt.Printf("B has a suffix A lacks: LSN %d..%d (%d records) — A lags or B's tail never replicated\n",
			lastA+1, lastB, lastB-lastA)
	default:
		fmt.Println("logs are identical")
	}
	return 0
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// dumpCheckpoints summarizes the directory's checkpoint files (valid and
// torn) and returns how many there are.
func dumpCheckpoints(dir string) int {
	infos, err := checkpoint.Scan(dir)
	if err != nil || len(infos) == 0 {
		return 0
	}
	for _, info := range infos {
		s, lerr := checkpoint.Load(filepath.Join(dir, info.Name))
		if lerr != nil {
			fmt.Printf("checkpoint %s: INVALID — ignored by recovery (%v)\n", info.Name, lerr)
			continue
		}
		line := fmt.Sprintf("checkpoint %s: lsn=%d pages=%d max-txn=%d truncate-below=%d",
			info.Name, s.LSN, len(s.Pages), s.MaxTxn, s.TruncateBelow())
		if len(s.Active) > 0 {
			line += fmt.Sprintf(" active=%v", s.Active)
		}
		if s.UnixNano != 0 {
			line += " written=" + time.Unix(0, s.UnixNano).Format("2006-01-02T15:04:05.000")
		}
		fmt.Println(line)
	}
	return len(infos)
}
