// Command waldump prints the records of a WAL segment directory in a
// human-readable, grep-friendly form — one line per record. It uses the
// read-only scan (the torn tail of the last segment is skipped, mid-log
// damage is an error), so dumping never mutates the log.
//
// Usage:
//
//	waldump -dir /path/to/wal [-owner T17] [-page 3]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/cc"
	"repro/internal/storage"
)

func main() {
	dir := flag.String("dir", "", "WAL segment directory (required)")
	owner := flag.String("owner", "", "only records whose owner's root matches")
	page := flag.Uint64("page", 0, "only update records touching this page")
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "waldump: -dir is required")
		os.Exit(2)
	}
	records, err := storage.ReadWALDir(*dir)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			fmt.Fprintf(os.Stderr, "waldump: %s: no such directory\n", *dir)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "waldump: %v\n", err)
		os.Exit(1)
	}
	if len(records) == 0 {
		segs, _ := filepath.Glob(filepath.Join(*dir, "wal-*.seg"))
		if len(segs) == 0 {
			fmt.Fprintf(os.Stderr, "waldump: %s: empty segment directory (no wal-*.seg files) — nothing was ever logged here\n", *dir)
		} else {
			fmt.Fprintf(os.Stderr, "waldump: %s: %d segment file(s) but no decodable records (torn before the first record?)\n", *dir, len(segs))
		}
		return
	}
	for _, r := range records {
		if *owner != "" && cc.RootOf(strings.SplitN(r.Owner, ":", 2)[0]) != *owner {
			continue
		}
		if *page != 0 && uint64(r.Page) != *page {
			continue
		}
		line := fmt.Sprintf("%8d %-10s %-14s", r.LSN, r.Kind, r.Owner)
		if r.Kind == storage.RecUpdate {
			clr := ""
			if r.CLR {
				clr = " CLR"
			}
			line += fmt.Sprintf(" page=%d %q -> %q%s", r.Page, r.Before, r.After, clr)
		}
		if r.Note != "" {
			line += fmt.Sprintf(" note=%q", strings.ReplaceAll(r.Note, "\x1f", "|"))
		}
		if len(r.Refs) > 0 {
			line += fmt.Sprintf(" refs=%v", r.Refs)
		}
		fmt.Println(line)
	}
}
