// Banking: the "conventional transactions" column of the paper's Figure 1,
// plus escrow commutativity (the paper's references [9,14,17]). Transfers
// between accounts run concurrently; under open nesting, credits and
// debits on the same account commute (the escrow argument), while
// page-level 2PL serializes them and deadlocks on opposite transfer
// directions. A compensated abort demonstrates logical undo, and the
// commut.Escrow specification is shown standalone.
//
//	go run ./examples/banking
package main

import (
	"fmt"
	"log"
	"strconv"
	"time"

	"repro/internal/commut"
	"repro/internal/core"
	"repro/internal/txn"
	"repro/internal/workload"
)

func main() {
	// Part 1: the concurrent transfer workload under both protocols.
	run := func(p core.ProtocolKind) workload.Result {
		res, err := workload.RunBanking(workload.BankingConfig{
			Protocol:      p,
			Workers:       6,
			TxnsPerWorker: 50,
			Accounts:      8,
			HotPct:        40, // a hot branch account
			Seed:          7,
			Validate:      true,
			PageIODelay:   10 * time.Microsecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	fmt.Println("300 transfers across 8 accounts, 40% touching the hot account:")
	fmt.Println()
	twopl := run(core.Protocol2PLPage)
	open := run(core.ProtocolOpenNested)
	fmt.Println(workload.Table([]workload.Result{twopl, open}))
	fmt.Println("money conserved under both protocols (checked by the harness);")
	fmt.Printf("escrow semantics eliminated %d deadlocks and cut waits from %s to %s.\n\n",
		twopl.Deadlocks-open.Deadlocks,
		twopl.WaitTime.Round(time.Millisecond), open.WaitTime.Round(time.Millisecond))

	// Part 2: the stateful escrow specification by itself — the paper's
	// refs [9,14,17]: near a bound, updates STOP commuting.
	acct := commut.NewEscrow(100, 0, 1000)
	small := commut.Invocation{Method: "decr", Params: []string{"30"}}
	large := commut.Invocation{Method: "decr", Params: []string{"60"}}
	fmt.Println("escrow account: balance=100, bounds [0,1000]")
	fmt.Printf("  decr(30) vs decr(30) commute: %v (60 <= 100, safe in any order)\n",
		acct.Commutes(small, small))
	fmt.Printf("  decr(60) vs decr(60) commute: %v (120 > 100, order matters!)\n",
		acct.Commutes(large, large))

	// Part 3: compensation — an aborted deposit is undone by a debit.
	db := core.Open(core.Options{})
	oid, err := installOneAccount(db, 500)
	if err != nil {
		log.Fatal(err)
	}
	tx := db.Begin()
	if _, err := tx.Exec(oid, "credit", "250"); err != nil {
		log.Fatal(err)
	}
	_ = tx.Abort() // compensation: debit(250)

	tx2 := db.Begin()
	bal, err := tx2.Exec(oid, "balance")
	if err != nil {
		log.Fatal(err)
	}
	_ = tx2.Commit()
	fmt.Printf("\nafter an aborted credit of 250 (compensated by a debit): balance=%s\n", bal)
	fmt.Printf("compensations executed: %d\n", db.Stats().Compensations)
}

// installOneAccount registers a minimal account type for the compensation
// demonstration and funds it with the initial balance.
func installOneAccount(db *core.DB, initial int64) (txn.OID, error) {
	page := db.AllocPage()
	delta := func(c *core.Ctx, amtStr string, sign int64) error {
		old, err := c.Call(page, "readx")
		if err != nil {
			return err
		}
		var n int64
		if old != "" {
			n, _ = strconv.ParseInt(old, 10, 64)
		}
		amt, err := strconv.ParseInt(amtStr, 10, 64)
		if err != nil {
			return err
		}
		_, err = c.Call(page, "write", strconv.FormatInt(n+sign*amt, 10))
		return err
	}
	typ := &core.ObjectType{
		Name:     "acct",
		Spec:     workload.AccountSpec(),
		ReadOnly: map[string]bool{"balance": true},
		Methods: map[string]core.MethodFunc{
			"credit": func(c *core.Ctx, self txn.OID, params []string) (string, error) {
				return "", delta(c, params[0], +1)
			},
			"debit": func(c *core.Ctx, self txn.OID, params []string) (string, error) {
				return "", delta(c, params[0], -1)
			},
			"balance": func(c *core.Ctx, self txn.OID, params []string) (string, error) {
				return c.Call(page, "read")
			},
		},
		Compensate: map[string]core.CompensateFunc{
			"credit": func(params []string, result string) (string, []string, bool) {
				return "debit", []string{params[0]}, true
			},
			"debit": func(params []string, result string) (string, []string, bool) {
				return "credit", []string{params[0]}, true
			},
		},
	}
	if err := db.RegisterType(typ); err != nil {
		return txn.OID{}, err
	}
	oid := txn.OID{Type: "acct", Name: "Demo"}
	tx := db.Begin()
	if _, err := tx.Exec(oid, "credit", strconv.FormatInt(initial, 10)); err != nil {
		_ = tx.Abort()
		return txn.OID{}, err
	}
	return oid, tx.Commit()
}
