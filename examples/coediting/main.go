// Cooperative editing: the motivating scenario from the paper's
// introduction — several authors editing one document concurrently ("if
// another author edits the document simultaneously he must wait until the
// document is released, and perhaps the idea has flown away").
//
// The program runs the same six-author editing session twice: once under
// whole-document two-phase locking (authors serialize) and once under the
// paper's semantic locking (edits of distinct sections commute), then
// prints the comparison.
//
//	go run ./examples/coediting
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	run := func(p core.ProtocolKind) workload.Result {
		res, err := workload.RunCoEdit(workload.CoEditConfig{
			Protocol:       p,
			Authors:        6,
			EditsPerAuthor: 20,
			Sections:       12,
			EditWork:       500 * time.Microsecond, // thinking/typing time
			Seed:           42,
			Validate:       true,
			PageIODelay:    10 * time.Microsecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	fmt.Println("six authors, 20 edits each, 12 sections, one shared document")
	fmt.Println()
	docLock := run(core.Protocol2PLObject)
	semantic := run(core.ProtocolOpenNested)

	fmt.Println(workload.Table([]workload.Result{docLock, semantic}))
	fmt.Printf("document-level 2PL: every edit locks the whole document; authors wait %s in total.\n",
		docLock.WaitTime.Round(time.Millisecond))
	fmt.Printf("section semantics:  edits of distinct sections commute; total wait %s.\n",
		semantic.WaitTime.Round(time.Millisecond))
	if semantic.Throughput > docLock.Throughput {
		fmt.Printf("\nsemantic concurrency control is %.1fx faster on this session —\n",
			semantic.Throughput/docLock.Throughput)
		fmt.Println("and both schedules validate as oo-serializable:",
			docLock.OOSerializable && semantic.OOSerializable)
	}
}
