// Crash recovery: the "reliably — as if there were no failures" half of
// the paper's §1 transaction contract. The program builds a catalogued
// encyclopedia, commits some content, leaves one transaction in flight,
// pulls the plug (dirty buffer pool and all), and recovers: committed
// content is redone from the log, the in-flight transaction's completed
// subtransactions are rolled back by replaying their logged compensation
// intents — the open-nesting twist ARIES-style physical undo cannot cover,
// because those subtransactions' page locks were released long before the
// crash.
//
//	go run ./examples/crashrecovery
package main

import (
	"fmt"
	"log"

	"repro/internal/btree"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/enc"
	"repro/internal/list"
	"repro/internal/recovery"
)

func main() {
	// --- before the crash ---------------------------------------------------
	db := core.Open(core.Options{Protocol: core.ProtocolOpenNested})
	cat, err := catalog.Install(db)
	if err != nil {
		log.Fatal(err)
	}
	trees, _ := btree.Install(db)
	lists, _ := list.Install(db)
	encs, _ := enc.Install(db, trees, lists)
	encs.SetCatalog(cat)
	e, err := encs.New("Enc", 4, 4)
	if err != nil {
		log.Fatal(err)
	}

	commit := func(method string, params ...string) {
		tx := db.Begin()
		if _, err := tx.Exec(e.OID(), method, params...); err != nil {
			log.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			log.Fatal(err)
		}
	}
	commit("insert", "DBS", "database system")
	commit("insert", "DBMS", "database management system")

	// An in-flight transaction: its insert COMPLETED as a subtransaction
	// (index updated, list appended, item created — page locks long
	// released), but the top level never commits.
	inflight := db.Begin()
	if _, err := inflight.Exec(e.OID(), "insert", "GHOST", "should vanish"); err != nil {
		log.Fatal(err)
	}

	fmt.Println("before crash: committed DBS, DBMS; in-flight GHOST")
	fmt.Printf("WAL: %d records; buffer pool deliberately NOT flushed\n", db.WAL().Len())

	// --- the crash ------------------------------------------------------------
	disk, wal := db.CrashImage()
	catPage := cat.PageID() // the single well-known location
	db = nil                // the old engine is gone

	// --- restart ---------------------------------------------------------------
	var e2 *enc.Encyclopedia
	db2, report, err := recovery.Recover(disk, wal, core.Options{Protocol: core.ProtocolOpenNested},
		func(d *core.DB) error {
			trees, err := btree.Install(d)
			if err != nil {
				return err
			}
			lists, err := list.Install(d)
			if err != nil {
				return err
			}
			encs, err := enc.Install(d, trees, lists)
			if err != nil {
				return err
			}
			cat2 := catalog.Attach(d, catPage)
			encs.SetCatalog(cat2)
			e2, err = encs.AttachFromCatalog(cat2, "Enc")
			return err
		})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nrecovery: %d updates redone, winners=%v, losers=%v,\n",
		report.Redone, report.Winners, report.Losers)
	fmt.Printf("          %d physical undos, %d logical compensations replayed\n",
		report.PhysicalUndos, report.LogicalUndos)

	tx := db2.Begin()
	dbs, _ := tx.Exec(e2.OID(), "search", "DBS")
	ghost, _ := tx.Exec(e2.OID(), "search", "GHOST")
	seq, _ := tx.Exec(e2.OID(), "readSeq")
	_ = tx.Commit()

	fmt.Printf("\nafter recovery:\n  search(DBS)   = %q   (committed: redone)\n", dbs)
	fmt.Printf("  search(GHOST) = %q                  (in-flight: compensated away)\n", ghost)
	fmt.Printf("  readSeq       = %q\n", seq)
}
