// Encyclopedia: the paper's running example (Figure 2, Examples 1 and 4)
// executed live on the engine. Four concurrent transactions — two inserts
// of different keys, a search, and a sequential read — run under open
// nesting; the program then prints the dependency structure the schedule
// produced and shows it matches the paper's Figure 8, and contrasts the
// conflict behaviour with page-level 2PL.
//
//	go run ./examples/encyclopedia
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/enc"
	"repro/internal/list"
	"repro/internal/txn"
)

func build(p core.ProtocolKind) (*core.DB, *enc.Encyclopedia) {
	db := core.Open(core.Options{Protocol: p, LockTimeout: 5 * time.Second})
	trees, err := btree.Install(db)
	if err != nil {
		log.Fatal(err)
	}
	lists, err := list.Install(db)
	if err != nil {
		log.Fatal(err)
	}
	encs, err := enc.Install(db, trees, lists)
	if err != nil {
		log.Fatal(err)
	}
	e, err := encs.New("Enc", 4, 4)
	if err != nil {
		log.Fatal(err)
	}
	return db, e
}

func main() {
	db, e := build(core.ProtocolOpenNested)

	// Seed the "world knowledge" base.
	seed := db.Begin()
	for _, it := range [][2]string{
		{"IR", "information retrieval"},
		{"KR", "knowledge representation"},
	} {
		if _, err := seed.Exec(e.OID(), "insert", it[0], it[1]); err != nil {
			log.Fatal(err)
		}
	}
	if err := seed.Commit(); err != nil {
		log.Fatal(err)
	}

	// Example 4's four transactions, concurrently:
	//   T1 inserts DBS, T2 inserts DBMS, T3 searches DBS, T4 reads
	//   sequentially.
	ops := [][]string{
		{"insert", "DBS", "database system"},
		{"insert", "DBMS", "database management system"},
		{"search", "DBS"},
		{"readSeq"},
	}
	var wg sync.WaitGroup
	results := make([]string, len(ops))
	txIDs := make([]string, len(ops))
	for i, op := range ops {
		wg.Add(1)
		go func(i int, op []string) {
			defer wg.Done()
			for attempt := 0; attempt < 10; attempt++ {
				tx := db.Begin()
				res, err := tx.Exec(e.OID(), op[0], op[1:]...)
				if err == nil {
					if err := tx.Commit(); err == nil {
						results[i] = res
						txIDs[i] = tx.ID()
						return
					}
				}
				_ = tx.Abort()
			}
			log.Fatalf("transaction %d never committed", i+1)
		}(i, op)
	}
	wg.Wait()

	fmt.Println("T1 insert(DBS):  ", results[0])
	fmt.Println("T2 insert(DBMS): ", results[1])
	fmt.Println("T3 search(DBS):  ", orEmpty(results[2]))
	fmt.Println("T4 readSeq:      ", results[3])

	// T2's second half: change the previously inserted item (Example 4).
	tx := db.Begin()
	if _, err := tx.Exec(e.OID(), "update", "DBMS", "changed by T2"); err != nil {
		log.Fatal(err)
	}
	_ = tx.Commit()

	// Validate and print the dependency structure — the live Figure 8.
	a, rep, err := db.Validate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noo-serializable: %v\n\n", rep.SystemOOSerializable)
	fmt.Println("dependency table (live Figure 8):")
	fmt.Print(a.DependencyTable())

	// The paper's point, quantified on this tiny run: count how many
	// conflicting pairs the conventional definition sees vs. the semantic
	// one that actually had to be ordered above the page level.
	conv := a.Conventional()
	fmt.Printf("\nconventional page-level conflicting pairs: %d\n", conv.Conflicts)
	fmt.Printf("semantic conflicting pairs (all levels):    %d\n", a.SemanticConflicts())

	// Commuting inserts leave the two insert transactions unordered at the
	// top level.
	sysObj := txn.SystemObject
	ins1, ins2 := txIDs[0], txIDs[1]
	if a.TranDep[sysObj].HasEdge(ins1, ins2) || a.TranDep[sysObj].HasEdge(ins2, ins1) {
		fmt.Println("\nunexpected: the commuting inserts got ordered")
	} else {
		fmt.Printf("\nthe two inserts %s/%s (different keys, same leaf) stayed unordered:\n", ins1, ins2)
		fmt.Println("their page conflict was absorbed by commuting leaf inserts (Example 1).")
	}
}

func orEmpty(s string) string {
	if s == "" {
		return "(not found)"
	}
	return s
}
