// Quickstart: open a database, register an object type with a
// commutativity specification, run two concurrent transactions whose
// operations commute, and validate the produced schedule against the
// paper's definitions.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sync"

	"repro/internal/commut"
	"repro/internal/core"
	"repro/internal/txn"
)

func main() {
	// An open-nested database (the paper's model is the default).
	db := core.Open(core.Options{})

	// A "counterSet" object type: named counters stored on one page each.
	// Increments of DIFFERENT counters commute; increments of the same
	// counter conflict (they could be made escrow-commuting too — see the
	// banking example).
	pages := map[string]txn.OID{}
	for _, name := range []string{"clicks", "views"} {
		pages[name] = db.AllocPage()
	}
	spec := commut.NewParamSpec(nil).
		Rule("incr", "incr", commut.DistinctFirstParam).
		Rule("get", "incr", commut.DistinctFirstParam).
		Rule("get", "get", func(a, b commut.Invocation) bool { return true })

	err := db.RegisterType(&core.ObjectType{
		Name:     "counterSet",
		Spec:     spec,
		ReadOnly: map[string]bool{"get": true},
		Methods: map[string]core.MethodFunc{
			"incr": func(c *core.Ctx, self txn.OID, params []string) (string, error) {
				pg := pages[params[0]]
				old, err := c.Call(pg, "readx")
				if err != nil {
					return "", err
				}
				n := 0
				fmt.Sscanf(old, "%d", &n)
				return "", second(c.Call(pg, "write", fmt.Sprintf("%d", n+1)))
			},
			"get": func(c *core.Ctx, self txn.OID, params []string) (string, error) {
				return c.Call(pages[params[0]], "read")
			},
		},
		Compensate: map[string]core.CompensateFunc{
			// incr(name) is undone by... nothing here: quickstart keeps it
			// simple and never aborts; see examples/banking for real
			// compensations.
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	counters := txn.OID{Type: "counterSet", Name: "stats"}

	// Two concurrent transactions incrementing DIFFERENT counters: their
	// semantic locks commute, so neither blocks the other.
	var wg sync.WaitGroup
	for _, name := range []string{"clicks", "views"} {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			tx := db.Begin()
			for i := 0; i < 5; i++ {
				if _, err := tx.Exec(counters, "incr", name); err != nil {
					log.Fatal(err)
				}
			}
			if err := tx.Commit(); err != nil {
				log.Fatal(err)
			}
		}(name)
	}
	wg.Wait()

	// Read the results.
	tx := db.Begin()
	clicks, _ := tx.Exec(counters, "get", "clicks")
	views, _ := tx.Exec(counters, "get", "views")
	_ = tx.Commit()
	fmt.Printf("clicks=%s views=%s\n", clicks, views)

	// The engine recorded every dispatch; validate the schedule against
	// Definitions 13/16 (object-oriented serializability).
	_, rep, err := db.Validate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("oo-serializable: %v\n", rep.SystemOOSerializable)
	st := db.LockStats()
	fmt.Printf("lock acquires: %d, blocked: %d (commuting increments never wait)\n",
		st.Acquires, st.Blocked)
}

func second(_ string, err error) error { return err }
