package btree

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/commut"
	"repro/internal/core"
)

// TestBLinkRedirectAfterSplit drives the B-link path directly: split a
// leaf via the node methods, then route/search for a moved key against the
// STALE (left) page and verify the moved|<pid> redirect chain works.
func TestBLinkRedirectAfterSplit(t *testing.T) {
	db, m := newDB(t, core.ProtocolOpenNested)
	tr, _ := m.NewTree("t", 2)

	// Three inserts overflow the single root leaf (maxKeys=2 splits on the
	// third) — capture the original root page id first.
	origRoot := tr.root
	for _, k := range []string{"a1", "b1", "c1"} {
		runOne(t, db, tr.OID(), "insert", k, "v-"+k)
	}
	if tr.Height() < 2 {
		t.Fatalf("expected a root split, height = %d", tr.Height())
	}

	// The original root page is now the LEFT leaf. Searching a key that
	// moved right through the stale page must return moved|<pid>.
	tx := db.Begin()
	res, err := tx.Exec(nodeOID(origRoot), "search", "c1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(res, "moved|") {
		t.Fatalf("stale-leaf search = %q, want moved|...", res)
	}
	nextPID, err := parsePID(strings.TrimPrefix(res, "moved|"))
	if err != nil {
		t.Fatal(err)
	}
	res2, err := tx.Exec(nodeOID(nextPID), "search", "c1")
	if err != nil {
		t.Fatal(err)
	}
	if res2 != "val|v-c1" {
		t.Fatalf("redirected search = %q", res2)
	}
	// Inserting through the stale leaf also redirects.
	res3, err := tx.Exec(nodeOID(origRoot), "insert", "c2", "v", "2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(res3, "moved|") {
		t.Fatalf("stale-leaf insert = %q, want moved|...", res3)
	}
	// And deleting.
	res4, err := tx.Exec(nodeOID(origRoot), "delete", "c1", "2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(res4, "moved|") {
		t.Fatalf("stale-leaf delete = %q, want moved|...", res4)
	}
	_ = tx.Commit()
}

// TestMultipleTreesIndependent: two trees in one DB share the node/page
// types but none of the state.
func TestMultipleTreesIndependent(t *testing.T) {
	db, m := newDB(t, core.ProtocolOpenNested)
	t1, err := m.NewTree("one", 4)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := m.NewTree("two", 4)
	if err != nil {
		t.Fatal(err)
	}
	runOne(t, db, t1.OID(), "insert", "k", "in-one")
	runOne(t, db, t2.OID(), "insert", "k", "in-two")
	if got := runOne(t, db, t1.OID(), "search", "k"); got != "in-one" {
		t.Fatalf("tree one: %q", got)
	}
	if got := runOne(t, db, t2.OID(), "search", "k"); got != "in-two" {
		t.Fatalf("tree two: %q", got)
	}
	if got := runOne(t, db, t1.OID(), "delete", "k"); got != "in-one" {
		t.Fatalf("delete from one: %q", got)
	}
	if got := runOne(t, db, t2.OID(), "search", "k"); got != "in-two" {
		t.Fatalf("tree two affected by tree one delete: %q", got)
	}
}

// TestDeepTreeRangeIntegrity: a three-plus-level tree routes every key
// correctly (separator handling through inner splits, promoted keys).
func TestDeepTreeRangeIntegrity(t *testing.T) {
	db, m := newDB(t, core.ProtocolOpenNested)
	tr, _ := m.NewTree("deep", 2) // tiny fanout: maximum structural churn
	const n = 200
	for i := 0; i < n; i++ {
		// Insert in an order that alternates ends to exercise both split
		// directions.
		var k string
		if i%2 == 0 {
			k = fmt.Sprintf("k%04d", i/2)
		} else {
			k = fmt.Sprintf("k%04d", n-1-i/2)
		}
		runOne(t, db, tr.OID(), "insert", k, "v")
	}
	if tr.Height() < 4 {
		t.Fatalf("height = %d, want >= 4 with fanout 2 and %d keys", tr.Height(), n)
	}
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("k%04d", i)
		if got := runOne(t, db, tr.OID(), "search", k); got != "v" {
			t.Fatalf("lost key %s after deep splits", k)
		}
	}
	keys := scanKeys(runOne(t, db, tr.OID(), "scan"))
	if len(keys) != n {
		t.Fatalf("scan found %d keys, want %d", len(keys), n)
	}
}

// TestScanBlocksBehindInsertAtTreeLevel: the tree-level semantic spec
// makes scan conflict with insert, so a scan waits for an insert's commit.
func TestScanBlocksBehindInsertAtTreeLevel(t *testing.T) {
	db, m := newDB(t, core.ProtocolOpenNested)
	tr, _ := m.NewTree("t", 8)
	runOne(t, db, tr.OID(), "insert", "a", "v")

	t1 := db.Begin()
	if _, err := t1.Exec(tr.OID(), "insert", "b", "v"); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		t2 := db.Begin()
		_, err := t2.Exec(tr.OID(), "scan")
		if err == nil {
			err = t2.Commit()
		} else {
			_ = t2.Abort()
		}
		done <- err
	}()
	select {
	case <-done:
		t.Fatal("scan must block behind an uncommitted insert")
	case <-time.After(80 * time.Millisecond):
	}
	_ = t1.Commit()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestNodeSpecStructuralOps: routing commutes with splits (B-link safety),
// structural posts of the same separator conflict, leaf scans conflict
// with mutators.
func TestNodeSpecStructuralOps(t *testing.T) {
	spec := NodeSpec()
	iv := func(m string, ps ...string) commut.Invocation {
		return commut.Invocation{Method: m, Params: ps}
	}
	if !spec.Commutes(iv("route", "k"), iv("insert", "k", "v", "4")) {
		t.Fatal("route must commute with insert (B-link safety)")
	}
	if !spec.Commutes(iv("route", "k"), iv("insertChild", "s", "9", "4")) {
		t.Fatal("route must commute with insertChild (B-link safety)")
	}
	if spec.Commutes(iv("insertChild", "s1", "9", "4"), iv("insertChild", "s1", "8", "4")) {
		t.Fatal("same-separator insertChild must conflict")
	}
	if !spec.Commutes(iv("insertChild", "s1", "9", "4"), iv("insertChild", "s2", "8", "4")) {
		t.Fatal("distinct-separator insertChild must commute")
	}
	if spec.Commutes(iv("scanLeaf"), iv("insert", "k", "v", "4")) {
		t.Fatal("scanLeaf must conflict with insert")
	}
}
