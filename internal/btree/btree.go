// Package btree implements the paper's index substrate (Figure 2): a B+
// tree whose nodes are encapsulated objects layered over pages, in exactly
// the call structure of Example 1:
//
//	BpTree.insert(k) → Node.insert(k) → Page.readx / Page.write
//
// Key-level semantics give the concurrency the paper is after: inserts of
// distinct keys commute at the node and tree levels even when they rewrite
// the same page, and searches commute with structure modifications thanks
// to B-link next pointers ("lock coupling and B-linking" per the paper's
// reference [15]). Structure modifications (splits) are additionally
// serialized by a per-tree latch, the standard engineering compromise; the
// offline checker still validates every produced schedule.
//
// Simplifications, documented in DESIGN.md: deletion removes keys without
// rebalancing (leaves may go underfull), and keys/values are restricted to
// a separator-free character set.
package btree

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/catalog"
	"repro/internal/commut"
	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/txn"
)

// Object type names.
const (
	TreeType = "btree"
	NodeType = "btreenode"
)

// Errors.
var (
	ErrBadKey       = errors.New("btree: key or value contains a reserved character")
	ErrUnknownTree  = errors.New("btree: unknown tree")
	ErrCorruptEntry = errors.New("btree: corrupt node encoding")
)

// reserved characters used by the node encoding.
const reserved = "|=;:,"

func validKV(s string) bool { return !strings.ContainsAny(s, reserved) }

// Module owns the btree object types of one DB and the trees created in
// it. Install it once per database.
type Module struct {
	db  *core.DB
	cat *catalog.Catalog

	mu    sync.Mutex
	trees map[string]*Tree
}

// SetCatalog makes the module record tree metadata (and keep root pointers
// current across splits) in the system catalog, enabling
// AttachFromCatalog after a restart.
func (m *Module) SetCatalog(cat *catalog.Catalog) { m.cat = cat }

// AttachFromCatalog re-binds to a tree whose metadata lives in the catalog.
func (m *Module) AttachFromCatalog(cat *catalog.Catalog, name string) (*Tree, error) {
	e, err := cat.Get(catalog.KindTree, name)
	if err != nil {
		return nil, err
	}
	maxKeys, root, err := catalog.TreeFields(e)
	if err != nil {
		return nil, err
	}
	return m.Attach(name, maxKeys, root)
}

// Tree is one B+ tree instance.
type Tree struct {
	name    string
	oid     txn.OID
	maxKeys int
	mod     *Module

	// mu protects root/leftmost and serializes structure modifications
	// (the SMO latch).
	mu       sync.Mutex
	root     storage.PageID
	leftmost storage.PageID
	height   int
}

// OID returns the tree's object id; send insert/search/delete/scan to it.
func (t *Tree) OID() txn.OID { return t.oid }

// MaxKeys returns the per-node key capacity.
func (t *Tree) MaxKeys() int { return t.maxKeys }

// Height returns the tree height (1 = root is a leaf).
func (t *Tree) Height() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.height
}

// TreeSpec is the commutativity specification of the tree type: operations
// on distinct keys commute; search/search commutes; scan (the sequential
// reader) conflicts with every mutator and commutes with reads.
func TreeSpec() commut.Spec {
	base := commut.NewMatrix().
		SetCommutes("scan", "scan").
		SetCommutes("scan", "search").
		SetConflicts("scan", "insert").
		SetConflicts("scan", "delete")
	spec := commut.NewParamSpec(base)
	sameKey := func(a, b commut.Invocation) bool { return a.Param(0) != b.Param(0) }
	for _, m1 := range []string{"insert", "delete"} {
		for _, m2 := range []string{"insert", "delete", "search"} {
			spec.Rule(m1, m2, sameKey)
		}
	}
	spec.Rule("search", "search", func(a, b commut.Invocation) bool { return true })
	return spec
}

// NodeSpec is the commutativity specification of node objects. Routing
// reads (route) commute with everything — B-links keep concurrent descent
// correct during splits; key operations are keyed like the tree's.
func NodeSpec() commut.Spec {
	base := commut.NewMatrix().
		SetCommutes("route", "route").
		SetCommutes("route", "insert").
		SetCommutes("route", "insertChild").
		SetCommutes("route", "search").
		SetCommutes("route", "delete").
		SetCommutes("route", "scanLeaf").
		SetCommutes("scanLeaf", "scanLeaf").
		SetCommutes("scanLeaf", "search").
		SetConflicts("scanLeaf", "insert").
		SetConflicts("scanLeaf", "delete").
		SetCommutes("makeRoot", "route")
	spec := commut.NewParamSpec(base)
	sameKey := func(a, b commut.Invocation) bool { return a.Param(0) != b.Param(0) }
	mutators := []string{"insert", "delete", "insertChild", "compDelete", "compInsert"}
	for _, m1 := range mutators {
		for _, m2 := range append(mutators, "search") {
			spec.Rule(m1, m2, sameKey)
		}
	}
	spec.Rule("search", "search", func(a, b commut.Invocation) bool { return true })
	for _, m := range []string{"compDelete", "compInsert"} {
		base.SetCommutes("route", m)
		base.SetConflicts("scanLeaf", m)
	}
	return spec
}

// Install registers the btree object types on db and returns the module.
func Install(db *core.DB) (*Module, error) {
	m := &Module{db: db, trees: make(map[string]*Tree)}

	treeType := &core.ObjectType{
		Name: TreeType,
		Spec: TreeSpec(),
		ReadOnly: map[string]bool{
			"search": true,
			"scan":   true,
		},
		Methods: map[string]core.MethodFunc{
			"insert": m.treeInsert,
			"search": m.treeSearch,
			"delete": m.treeDelete,
			"scan":   m.treeScan,
		},
		Compensate: map[string]core.CompensateFunc{
			// insert(k,v) returning the previous value: absent → delete(k);
			// present → re-insert the old value.
			"insert": func(params []string, result string) (string, []string, bool) {
				if result == "" {
					return "delete", []string{params[0]}, true
				}
				return "insert", []string{params[0], result}, true
			},
			// delete(k) returning the removed value: absent → nothing to
			// undo; present → re-insert it.
			"delete": func(params []string, result string) (string, []string, bool) {
				if result == "" {
					return "", nil, false
				}
				return "insert", []string{params[0], result}, true
			},
		},
	}
	if err := db.RegisterType(treeType); err != nil {
		return nil, err
	}

	nodeType := &core.ObjectType{
		Name: NodeType,
		Spec: NodeSpec(),
		ReadOnly: map[string]bool{
			"route":    true,
			"search":   true,
			"scanLeaf": true,
		},
		Methods: map[string]core.MethodFunc{
			"route":       m.nodeRoute,
			"insert":      m.nodeInsert,
			"search":      m.nodeSearch,
			"delete":      m.nodeDelete,
			"insertChild": m.nodeInsertChild,
			"makeRoot":    m.nodeMakeRoot,
			"scanLeaf":    m.nodeScanLeaf,
			"compDelete":  m.nodeCompDelete,
			"compInsert":  m.nodeCompInsert,
		},
		// Node operations compensate at the node level so their page locks
		// can be released when the node subtransaction commits — otherwise a
		// transaction waiting for the tree's SMO latch while holding leaf
		// page locks could deadlock invisibly with the latch holder.
		// Structural operations (insertChild, makeRoot) are nested top
		// actions in the ARIES sense: they redistribute content without
		// changing it, so they are permanent and need no undo.
		// Compensations use the moved-chasing comp* methods: by the time an
		// undo runs (rollback, or crash recovery replaying a logged intent),
		// splits may have moved the key to a B-link sibling, and a plain
		// node delete/insert would silently no-op with "moved|...".
		Compensate: map[string]core.CompensateFunc{
			"insert": func(params []string, result string) (string, []string, bool) {
				// params: key, value, maxKeys. Results: "ok|<old>",
				// "split|sep|new|<old>", "moved|<pid>".
				old, performed := insertOldValue(result)
				if !performed {
					return "", nil, false
				}
				if old == "" {
					return "compDelete", []string{params[0], params[2]}, true
				}
				return "compInsert", []string{params[0], old, params[2]}, true
			},
			"delete": func(params []string, result string) (string, []string, bool) {
				// params: key, maxKeys. Results: "val|<old>", "miss", "moved|...".
				if !strings.HasPrefix(result, "val|") {
					return "", nil, false
				}
				return "compInsert", []string{params[0], strings.TrimPrefix(result, "val|"), params[1]}, true
			},
			"compDelete": func(params []string, result string) (string, []string, bool) {
				// params: key, maxKeys. Result "val|<old>" when it removed
				// something (undo: put it back), "miss" otherwise.
				if !strings.HasPrefix(result, "val|") {
					return "", nil, false
				}
				return "compInsert", []string{params[0], strings.TrimPrefix(result, "val|"), params[1]}, true
			},
			"compInsert": func(params []string, result string) (string, []string, bool) {
				// params: key, value, maxKeys. Result "ok|<old>".
				old := strings.TrimPrefix(result, "ok|")
				if old == "" {
					return "compDelete", []string{params[0], params[2]}, true
				}
				return "compInsert", []string{params[0], old, params[2]}, true
			},
			"insertChild": func(params []string, result string) (string, []string, bool) {
				return "", nil, false // nested top action
			},
			"makeRoot": func(params []string, result string) (string, []string, bool) {
				return "", nil, false // nested top action
			},
		},
	}
	if err := db.RegisterType(nodeType); err != nil {
		return nil, err
	}
	return m, nil
}

// NewTree creates a tree with the given node capacity (maxKeys >= 2; the
// paper's "rough up to 500 keys" per page is the upper end of the sweep).
// The creation runs in its own small transaction.
func (m *Module) NewTree(name string, maxKeys int) (*Tree, error) {
	if maxKeys < 2 {
		return nil, fmt.Errorf("btree: maxKeys must be >= 2, got %d", maxKeys)
	}
	if !validKV(name) {
		return nil, ErrBadKey
	}
	m.mu.Lock()
	if _, dup := m.trees[name]; dup {
		m.mu.Unlock()
		return nil, fmt.Errorf("btree: tree %q already exists", name)
	}
	m.mu.Unlock()

	rootOID := m.db.AllocPage()
	rootPID, err := core.PageID(rootOID)
	if err != nil {
		return nil, err
	}
	tx := m.db.Begin()
	if _, err := tx.Exec(rootOID, "write", encodeLeaf(leaf{})); err != nil {
		_ = tx.Abort()
		return nil, err
	}
	if err := tx.Commit(); err != nil {
		return nil, err
	}

	t := &Tree{
		name:     name,
		oid:      txn.OID{Type: TreeType, Name: name},
		maxKeys:  maxKeys,
		mod:      m,
		root:     rootPID,
		leftmost: rootPID,
		height:   1,
	}
	if m.cat != nil {
		if err := m.cat.Put(catalog.TreeEntry(name, maxKeys, rootPID)); err != nil {
			return nil, err
		}
	}
	m.mu.Lock()
	m.trees[name] = t
	m.mu.Unlock()
	return t, nil
}

// Attach re-binds to an existing tree after a restart: root is the tree's
// current root page (applications persist it in a catalog; for trees that
// never split the root it is the page NewTree allocated). The height and
// leftmost leaf are re-derived by probing the structure.
func (m *Module) Attach(name string, maxKeys int, root storage.PageID) (*Tree, error) {
	if maxKeys < 2 {
		return nil, fmt.Errorf("btree: maxKeys must be >= 2, got %d", maxKeys)
	}
	m.mu.Lock()
	if _, dup := m.trees[name]; dup {
		m.mu.Unlock()
		return nil, fmt.Errorf("btree: tree %q already exists", name)
	}
	m.mu.Unlock()

	t := &Tree{
		name:    name,
		oid:     txn.OID{Type: TreeType, Name: name},
		maxKeys: maxKeys,
		mod:     m,
		root:    root,
	}
	// Probe height and the leftmost leaf by descending the first-child
	// spine ("" routes left of every key).
	tx := m.db.Begin()
	pid := root
	height := 1
	for hop := 0; hop < maxDescend; hop++ {
		res, err := tx.Exec(nodeOID(pid), "route", "")
		if err != nil {
			_ = tx.Abort()
			return nil, fmt.Errorf("btree: attach probe: %w", err)
		}
		if res == "leaf" {
			break
		}
		child, ok := strings.CutPrefix(res, "child|")
		if !ok {
			_ = tx.Abort()
			return nil, fmt.Errorf("%w: attach probe result %q", ErrCorruptEntry, res)
		}
		next, err := parsePID(child)
		if err != nil {
			_ = tx.Abort()
			return nil, err
		}
		pid = next
		height++
	}
	if err := tx.Commit(); err != nil {
		return nil, err
	}
	t.height = height
	t.leftmost = pid

	m.mu.Lock()
	m.trees[name] = t
	m.mu.Unlock()
	return t, nil
}

// Tree returns a created tree by name.
func (m *Module) Tree(name string) (*Tree, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.trees[name]
	return t, ok
}

func (m *Module) tree(self txn.OID) (*Tree, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.trees[self.Name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTree, self.Name)
	}
	return t, nil
}

// insertOldValue extracts the previous value from a node insert result and
// reports whether the insert actually changed the node.
func insertOldValue(result string) (old string, performed bool) {
	switch {
	case strings.HasPrefix(result, "ok|"):
		return strings.TrimPrefix(result, "ok|"), true
	case strings.HasPrefix(result, "split|"):
		parts := strings.SplitN(result, "|", 4)
		if len(parts) == 4 {
			return parts[3], true
		}
		return "", true
	default: // "moved|..." or malformed: nothing happened on this node
		return "", false
	}
}

// nodeOID names the node object that encapsulates a page.
func nodeOID(pid storage.PageID) txn.OID {
	return txn.OID{Type: NodeType, Name: "Node" + strconv.FormatUint(uint64(pid), 10)}
}

// nodePID parses a node object name back to its page id.
func nodePID(o txn.OID) (storage.PageID, error) {
	n, err := strconv.ParseUint(strings.TrimPrefix(o.Name, "Node"), 10, 64)
	if err != nil {
		return storage.InvalidPage, fmt.Errorf("btree: bad node object %v: %w", o, err)
	}
	return storage.PageID(n), nil
}
