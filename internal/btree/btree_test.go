package btree

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/txn"
)

func newDB(t testing.TB, p core.ProtocolKind) (*core.DB, *Module) {
	t.Helper()
	db := core.Open(core.Options{Protocol: p, LockTimeout: 5 * time.Second})
	m, err := Install(db)
	if err != nil {
		t.Fatal(err)
	}
	return db, m
}

// runOne executes a single-op transaction with retry on deadlock.
func runOne(t testing.TB, db *core.DB, obj txn.OID, method string, params ...string) string {
	t.Helper()
	for attempt := 0; attempt < 20; attempt++ {
		tx := db.Begin()
		res, err := tx.Exec(obj, method, params...)
		if err == nil {
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			return res
		}
		_ = tx.Abort()
		if attempt == 19 {
			t.Fatalf("%s.%s%v failed: %v", obj.Name, method, params, err)
		}
	}
	return ""
}

func TestInstallTwiceFails(t *testing.T) {
	db, _ := newDB(t, core.ProtocolOpenNested)
	if _, err := Install(db); err == nil {
		t.Fatal("double install must fail")
	}
}

func TestNewTreeValidation(t *testing.T) {
	_, m := newDB(t, core.ProtocolOpenNested)
	if _, err := m.NewTree("ok", 1); err == nil {
		t.Fatal("maxKeys < 2 must fail")
	}
	if _, err := m.NewTree("bad|name", 4); !errors.Is(err, ErrBadKey) {
		t.Fatal("reserved chars in name must fail")
	}
	if _, err := m.NewTree("t", 4); err != nil {
		t.Fatal(err)
	}
	if _, err := m.NewTree("t", 4); err == nil {
		t.Fatal("duplicate tree must fail")
	}
	if _, ok := m.Tree("t"); !ok {
		t.Fatal("Tree lookup failed")
	}
	if _, ok := m.Tree("ghost"); ok {
		t.Fatal("ghost tree found")
	}
}

func TestInsertSearchBasic(t *testing.T) {
	db, m := newDB(t, core.ProtocolOpenNested)
	tr, err := m.NewTree("enc", 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := runOne(t, db, tr.OID(), "search", "DBS"); got != "" {
		t.Fatalf("empty tree search = %q", got)
	}
	if old := runOne(t, db, tr.OID(), "insert", "DBS", "database-system"); old != "" {
		t.Fatalf("insert old = %q", old)
	}
	if got := runOne(t, db, tr.OID(), "search", "DBS"); got != "database-system" {
		t.Fatalf("search = %q", got)
	}
	// Upsert returns previous value.
	if old := runOne(t, db, tr.OID(), "insert", "DBS", "updated"); old != "database-system" {
		t.Fatalf("upsert old = %q", old)
	}
	if got := runOne(t, db, tr.OID(), "search", "DBS"); got != "updated" {
		t.Fatalf("search after upsert = %q", got)
	}
}

func TestBadKeysRejected(t *testing.T) {
	db, m := newDB(t, core.ProtocolOpenNested)
	tr, _ := m.NewTree("t", 4)
	tx := db.Begin()
	defer tx.Abort()
	if _, err := tx.Exec(tr.OID(), "insert", "a|b", "v"); !errors.Is(err, ErrBadKey) {
		t.Fatalf("err = %v", err)
	}
	if _, err := tx.Exec(tr.OID(), "insert", "k", "v:x"); !errors.Is(err, ErrBadKey) {
		t.Fatalf("err = %v", err)
	}
}

func TestSplitsAndHeightGrowth(t *testing.T) {
	db, m := newDB(t, core.ProtocolOpenNested)
	tr, _ := m.NewTree("t", 3)
	n := 50
	for i := 0; i < n; i++ {
		runOne(t, db, tr.OID(), "insert", key(i), fmt.Sprintf("v%03d", i))
	}
	if tr.Height() < 3 {
		t.Fatalf("height = %d after %d inserts with maxKeys=3", tr.Height(), n)
	}
	for i := 0; i < n; i++ {
		if got := runOne(t, db, tr.OID(), "search", key(i)); got != fmt.Sprintf("v%03d", i) {
			t.Fatalf("search(%s) = %q", key(i), got)
		}
	}
	// Scan returns all keys in order.
	scan := runOne(t, db, tr.OID(), "scan")
	keys := scanKeys(scan)
	if len(keys) != n {
		t.Fatalf("scan returned %d keys, want %d", len(keys), n)
	}
	if !sort.StringsAreSorted(keys) {
		t.Fatalf("scan keys unsorted: %v", keys)
	}
}

func key(i int) string { return fmt.Sprintf("k%04d", i) }

func scanKeys(scan string) []string {
	if scan == "" {
		return nil
	}
	var keys []string
	for _, pair := range strings.Split(scan, ";") {
		k, _, _ := strings.Cut(pair, ":")
		keys = append(keys, k)
	}
	return keys
}

func TestDelete(t *testing.T) {
	db, m := newDB(t, core.ProtocolOpenNested)
	tr, _ := m.NewTree("t", 4)
	for i := 0; i < 20; i++ {
		runOne(t, db, tr.OID(), "insert", key(i), "v")
	}
	if got := runOne(t, db, tr.OID(), "delete", key(7)); got != "v" {
		t.Fatalf("delete = %q", got)
	}
	if got := runOne(t, db, tr.OID(), "delete", key(7)); got != "" {
		t.Fatalf("double delete = %q", got)
	}
	if got := runOne(t, db, tr.OID(), "search", key(7)); got != "" {
		t.Fatalf("search deleted = %q", got)
	}
	if got := runOne(t, db, tr.OID(), "search", key(8)); got != "v" {
		t.Fatalf("neighbour lost: %q", got)
	}
}

func TestInsertCompensationOnAbort(t *testing.T) {
	db, m := newDB(t, core.ProtocolOpenNested)
	tr, _ := m.NewTree("t", 4)
	runOne(t, db, tr.OID(), "insert", "keep", "v0")

	tx := db.Begin()
	if _, err := tx.Exec(tr.OID(), "insert", "doomed", "v1"); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(tr.OID(), "insert", "keep", "overwritten"); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(tr.OID(), "delete", "keep"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}

	// Compensations must restore: doomed gone, keep back to v0.
	if got := runOne(t, db, tr.OID(), "search", "doomed"); got != "" {
		t.Fatalf("aborted insert visible: %q", got)
	}
	if got := runOne(t, db, tr.OID(), "search", "keep"); got != "v0" {
		t.Fatalf("keep = %q, want v0", got)
	}
	if db.Stats().Compensations != 3 {
		t.Fatalf("compensations = %d, want 3", db.Stats().Compensations)
	}
	_, rep, err := db.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.SystemOOSerializable {
		t.Fatalf("expanded history must validate: %+v", rep)
	}
}

func TestConcurrentDistinctKeyInserts(t *testing.T) {
	db, m := newDB(t, core.ProtocolOpenNested)
	tr, _ := m.NewTree("t", 8)
	const goroutines = 8
	const perG = 25
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				runOne(t, db, tr.OID(), "insert", fmt.Sprintf("g%d-%04d", g, i), "v")
			}
		}(g)
	}
	wg.Wait()

	scan := runOne(t, db, tr.OID(), "scan")
	keys := scanKeys(scan)
	if len(keys) != goroutines*perG {
		t.Fatalf("scan has %d keys, want %d", len(keys), goroutines*perG)
	}
	for g := 0; g < goroutines; g++ {
		for i := 0; i < perG; i++ {
			if got := runOne(t, db, tr.OID(), "search", fmt.Sprintf("g%d-%04d", g, i)); got != "v" {
				t.Fatalf("lost key g%d-%04d", g, i)
			}
		}
	}
	_, rep, err := db.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.SystemOOSerializable {
		t.Fatalf("concurrent insert trace must validate: %+v", rep)
	}
}

func TestConcurrentMixedWorkload2PL(t *testing.T) {
	db, m := newDB(t, core.Protocol2PLPage)
	tr, _ := m.NewTree("t", 6)
	for i := 0; i < 40; i++ {
		runOne(t, db, tr.OID(), "insert", key(i), "v")
	}
	var wg sync.WaitGroup
	r := rand.New(rand.NewSource(7))
	seeds := make([]int64, 6)
	for i := range seeds {
		seeds[i] = r.Int63()
	}
	for g := 0; g < len(seeds); g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rr := rand.New(rand.NewSource(seed))
			for i := 0; i < 30; i++ {
				k := key(rr.Intn(60))
				switch rr.Intn(3) {
				case 0:
					runOne(t, db, tr.OID(), "insert", k, "w")
				case 1:
					runOne(t, db, tr.OID(), "search", k)
				case 2:
					runOne(t, db, tr.OID(), "delete", k)
				}
			}
		}(seeds[g])
	}
	wg.Wait()
	_, rep, err := db.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.SystemOOSerializable {
		t.Fatalf("2PL mixed trace must validate: %+v", rep)
	}
}

// TestSameLeafCommutingInsertsNoTopLevelDeps is Example 1 live: two
// transactions insert different keys that land on the same leaf; the trace
// must show page-level dependencies but no top-level transaction
// dependency between them.
func TestSameLeafCommutingInsertsNoTopLevelDeps(t *testing.T) {
	db, m := newDB(t, core.ProtocolOpenNested)
	tr, _ := m.NewTree("t", 10)

	tx1 := db.Begin()
	if _, err := tx1.Exec(tr.OID(), "insert", "DBS", "x"); err != nil {
		t.Fatal(err)
	}
	tx2 := db.Begin()
	if _, err := tx2.Exec(tr.OID(), "insert", "DBMS", "y"); err != nil {
		t.Fatal(err)
	}
	_ = tx1.Commit()
	_ = tx2.Commit()

	a, rep, err := db.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.SystemOOSerializable {
		t.Fatalf("trace must validate: %+v", rep)
	}
	sysObj := txn.SystemObject
	if a.TranDep[sysObj].HasEdge(tx1.ID(), tx2.ID()) || a.TranDep[sysObj].HasEdge(tx2.ID(), tx1.ID()) {
		t.Fatalf("commuting inserts created a top-level dependency:\n%s", a.TranDep[sysObj].String())
	}
	// But the page level did record conflicting accesses (they share the
	// single leaf page).
	pageDeps := 0
	for _, o := range a.Objects() {
		if o.Type == core.PageType {
			pageDeps += a.ActDep[o].NumEdges()
		}
	}
	if pageDeps == 0 {
		t.Fatal("expected page-level dependencies between the two inserts")
	}
}

// Property: the tree agrees with a map reference model under random
// single-threaded operations, across fanouts.
func TestPropertyMatchesMapModel(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := core.Open(core.Options{Protocol: core.ProtocolOpenNested, DisableTrace: true})
		m, err := Install(db)
		if err != nil {
			return false
		}
		tr, err := m.NewTree("t", 2+r.Intn(8))
		if err != nil {
			return false
		}
		model := map[string]string{}
		for i := 0; i < 300; i++ {
			k := key(r.Intn(40))
			tx := db.Begin()
			switch r.Intn(4) {
			case 0, 1:
				v := fmt.Sprintf("v%d", i)
				old, err := tx.Exec(tr.OID(), "insert", k, v)
				if err != nil || old != model[k] {
					return false
				}
				model[k] = v
			case 2:
				got, err := tx.Exec(tr.OID(), "search", k)
				if err != nil || got != model[k] {
					return false
				}
			case 3:
				old, err := tx.Exec(tr.OID(), "delete", k)
				if err != nil || old != model[k] {
					return false
				}
				delete(model, k)
			}
			if err := tx.Commit(); err != nil {
				return false
			}
		}
		// Scan equals sorted model.
		tx := db.Begin()
		scan, err := tx.Exec(tr.OID(), "scan")
		if err != nil {
			return false
		}
		_ = tx.Commit()
		keys := scanKeys(scan)
		var want []string
		for k := range model {
			want = append(want, k)
		}
		sort.Strings(want)
		if len(keys) != len(want) {
			return false
		}
		for i := range keys {
			if keys[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: concurrent distinct-key inserts never lose a key and always
// produce an oo-serializable trace, across protocols.
func TestPropertyConcurrentInsertsAllProtocols(t *testing.T) {
	for _, p := range []core.ProtocolKind{core.ProtocolOpenNested, core.Protocol2PLPage, core.ProtocolClosedNested} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			db, m := newDB(t, p)
			tr, _ := m.NewTree("t", 4)
			var wg sync.WaitGroup
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < 20; i++ {
						runOne(t, db, tr.OID(), "insert", fmt.Sprintf("p%d-%03d", g, i), "v")
					}
				}(g)
			}
			wg.Wait()
			keys := scanKeys(runOne(t, db, tr.OID(), "scan"))
			if len(keys) != 80 {
				t.Fatalf("%s: %d keys, want 80", p, len(keys))
			}
			_, rep, err := db.Validate()
			if err != nil {
				t.Fatal(err)
			}
			if !rep.SystemOOSerializable {
				t.Fatalf("%s: trace must validate: %+v", p, rep)
			}
		})
	}
}

func TestNodeEncodingRoundTrip(t *testing.T) {
	l := leaf{next: 42, high: "zz", keys: []string{"a", "b"}, vals: []string{"1", "2"}}
	gotL, _, err := decodePage(encodeLeaf(l))
	if err != nil {
		t.Fatal(err)
	}
	if gotL.next != 42 || gotL.high != "zz" || len(gotL.keys) != 2 || gotL.vals[1] != "2" {
		t.Fatalf("leaf round trip: %+v", gotL)
	}

	n := inner{next: 7, high: "m", keys: []string{"g"}, children: innerPIDs(3, 9)}
	_, gotN, err := decodePage(encodeInner(n))
	if err != nil {
		t.Fatal(err)
	}
	if gotN.next != 7 || len(gotN.children) != 2 || gotN.children[1] != 9 {
		t.Fatalf("inner round trip: %+v", gotN)
	}

	for _, bad := range []string{"", "X|next=0|high=|kv=", "L|high=|kv=", "L|next=x|high=|kv=", "I|next=0|high=|ch=", "I|next=0|high=|ch=1,k", "L|next=0|high=|kv=broken"} {
		if _, _, err := decodePage(bad); err == nil {
			t.Errorf("decodePage(%q) should fail", bad)
		}
	}
}

func innerPIDs(ids ...uint64) []storage.PageID {
	out := make([]storage.PageID, len(ids))
	for i, id := range ids {
		out[i] = storage.PageID(id)
	}
	return out
}

func TestChildForRouting(t *testing.T) {
	n := inner{keys: []string{"g", "p"}, children: []storage.PageID{1, 2, 3}}
	cases := []struct {
		k    string
		want storage.PageID
	}{
		{"a", 1}, {"f", 1}, {"g", 2}, {"h", 2}, {"o", 2}, {"p", 3}, {"z", 3},
	}
	for _, c := range cases {
		if got := n.childFor(c.k); got != c.want {
			t.Errorf("childFor(%q) = %d, want %d", c.k, got, c.want)
		}
	}
}

func BenchmarkInsertSequential(b *testing.B) {
	db := core.Open(core.Options{Protocol: core.ProtocolOpenNested, DisableTrace: true})
	m, _ := Install(db)
	tr, _ := m.NewTree("t", 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := db.Begin()
		if _, err := tx.Exec(tr.OID(), "insert", fmt.Sprintf("k%08d", i), "v"); err != nil {
			b.Fatal(err)
		}
		_ = tx.Commit()
	}
}

func BenchmarkSearch(b *testing.B) {
	db := core.Open(core.Options{Protocol: core.ProtocolOpenNested, DisableTrace: true})
	m, _ := Install(db)
	tr, _ := m.NewTree("t", 64)
	for i := 0; i < 10000; i++ {
		tx := db.Begin()
		_, _ = tx.Exec(tr.OID(), "insert", fmt.Sprintf("k%08d", i), "v")
		_ = tx.Commit()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := db.Begin()
		if _, err := tx.Exec(tr.OID(), "search", fmt.Sprintf("k%08d", i%10000)); err != nil {
			b.Fatal(err)
		}
		_ = tx.Commit()
	}
}
