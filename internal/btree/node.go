package btree

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/txn"
)

// Node encodings. A leaf page is
//
//	L|next=<pid>|high=<key>|kv=k1:v1;k2:v2
//
// and an inner page is
//
//	I|next=<pid>|high=<key>|ch=p0,k1,p1,k2,p2
//
// next/high implement B-links: when a node splits, the left half keeps a
// pointer to the right half and remembers the separator as its high key, so
// a concurrent descent that lands left of moved keys follows the link
// instead of failing ("B-linking", Section 2 of the paper).

type leaf struct {
	next storage.PageID
	high string
	keys []string
	vals []string
}

type inner struct {
	next     storage.PageID
	high     string
	keys     []string
	children []storage.PageID // len(keys)+1
}

func encodeLeaf(l leaf) string {
	var kv strings.Builder
	for i, k := range l.keys {
		if i > 0 {
			kv.WriteByte(';')
		}
		kv.WriteString(k)
		kv.WriteByte(':')
		kv.WriteString(l.vals[i])
	}
	return fmt.Sprintf("L|next=%d|high=%s|kv=%s", l.next, l.high, kv.String())
}

func encodeInner(n inner) string {
	var ch strings.Builder
	for i, c := range n.children {
		if i > 0 {
			ch.WriteByte(',')
			ch.WriteString(n.keys[i-1])
			ch.WriteByte(',')
		}
		ch.WriteString(strconv.FormatUint(uint64(c), 10))
	}
	return fmt.Sprintf("I|next=%d|high=%s|ch=%s", n.next, n.high, ch.String())
}

// decodePage parses a node page. Exactly one of the results is non-nil.
func decodePage(data string) (*leaf, *inner, error) {
	parts := strings.SplitN(data, "|", 4)
	if len(parts) != 4 ||
		!strings.HasPrefix(parts[1], "next=") ||
		!strings.HasPrefix(parts[2], "high=") {
		return nil, nil, fmt.Errorf("%w: %q", ErrCorruptEntry, truncate(data))
	}
	next, err := strconv.ParseUint(strings.TrimPrefix(parts[1], "next="), 10, 64)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: bad next in %q", ErrCorruptEntry, truncate(data))
	}
	high := strings.TrimPrefix(parts[2], "high=")

	switch parts[0] {
	case "L":
		body, ok := strings.CutPrefix(parts[3], "kv=")
		if !ok {
			return nil, nil, fmt.Errorf("%w: leaf body in %q", ErrCorruptEntry, truncate(data))
		}
		l := &leaf{next: storage.PageID(next), high: high}
		if body != "" {
			for _, pair := range strings.Split(body, ";") {
				k, v, found := strings.Cut(pair, ":")
				if !found {
					return nil, nil, fmt.Errorf("%w: pair %q", ErrCorruptEntry, pair)
				}
				l.keys = append(l.keys, k)
				l.vals = append(l.vals, v)
			}
		}
		return l, nil, nil
	case "I":
		body, ok := strings.CutPrefix(parts[3], "ch=")
		if !ok || body == "" {
			return nil, nil, fmt.Errorf("%w: inner body in %q", ErrCorruptEntry, truncate(data))
		}
		fields := strings.Split(body, ",")
		if len(fields)%2 != 1 {
			return nil, nil, fmt.Errorf("%w: inner arity in %q", ErrCorruptEntry, truncate(data))
		}
		n := &inner{next: storage.PageID(next), high: high}
		for i, f := range fields {
			if i%2 == 0 {
				pid, err := strconv.ParseUint(f, 10, 64)
				if err != nil {
					return nil, nil, fmt.Errorf("%w: child pid %q", ErrCorruptEntry, f)
				}
				n.children = append(n.children, storage.PageID(pid))
			} else {
				n.keys = append(n.keys, f)
			}
		}
		return nil, n, nil
	}
	return nil, nil, fmt.Errorf("%w: kind %q", ErrCorruptEntry, parts[0])
}

func truncate(s string) string {
	if len(s) > 40 {
		return s[:40] + "..."
	}
	return s
}

// childFor returns the child pid routing key k.
func (n *inner) childFor(k string) storage.PageID {
	i := sort.SearchStrings(n.keys, k)
	// keys[i-1] <= k < keys[i] routes to children[i]; equal keys route
	// right (separator is the first key of the right sibling).
	if i < len(n.keys) && n.keys[i] == k {
		i++
	}
	return n.children[i]
}

// movedPast reports whether key k now lives right of this node.
func movedPast(high string, next storage.PageID, k string) bool {
	return high != "" && k >= high && next != storage.InvalidPage
}

// --- node object methods ---------------------------------------------------

// nodeRoute routes a key one level down: "leaf" when the node is a leaf,
// "child|<pid>" for the subtree to descend into, "moved|<pid>" when the key
// range moved right via a B-link.
func (m *Module) nodeRoute(c *core.Ctx, self txn.OID, params []string) (string, error) {
	if len(params) != 1 {
		return "", fmt.Errorf("btree: route needs a key")
	}
	k := params[0]
	data, err := m.readNode(c, self, "read")
	if err != nil {
		return "", err
	}
	l, n, err := decodePage(data)
	if err != nil {
		return "", err
	}
	if l != nil {
		return "leaf", nil
	}
	if movedPast(n.high, n.next, k) {
		return "moved|" + pidStr(n.next), nil
	}
	return "child|" + pidStr(n.childFor(k)), nil
}

// nodeInsert inserts k=v into a leaf node:
//
//	"ok|<old>"                 — inserted (old = previous value, may be empty)
//	"moved|<pid>"              — key range moved right, retry there
//	"split|<sep>|<new>|<old>"  — leaf split; sep/new must be posted to the parent
//
// params: key, value, maxKeys.
func (m *Module) nodeInsert(c *core.Ctx, self txn.OID, params []string) (string, error) {
	if len(params) != 3 {
		return "", fmt.Errorf("btree: node insert needs key, value, maxKeys")
	}
	k, v := params[0], params[1]
	maxKeys, err := strconv.Atoi(params[2])
	if err != nil {
		return "", fmt.Errorf("btree: bad maxKeys %q", params[2])
	}
	data, err := m.readNode(c, self, "readx")
	if err != nil {
		return "", err
	}
	l, _, err := decodePage(data)
	if err != nil {
		return "", err
	}
	if l == nil {
		return "", fmt.Errorf("%w: insert into inner node %s", ErrCorruptEntry, self.Name)
	}
	if movedPast(l.high, l.next, k) {
		return "moved|" + pidStr(l.next), nil
	}

	old := ""
	i := sort.SearchStrings(l.keys, k)
	if i < len(l.keys) && l.keys[i] == k {
		old = l.vals[i]
		l.vals[i] = v
	} else {
		l.keys = append(l.keys, "")
		copy(l.keys[i+1:], l.keys[i:])
		l.keys[i] = k
		l.vals = append(l.vals, "")
		copy(l.vals[i+1:], l.vals[i:])
		l.vals[i] = v
	}

	if len(l.keys) <= maxKeys {
		if _, err := c.Call(self2page(self), "write", encodeLeaf(*l)); err != nil {
			return "", err
		}
		return "ok|" + old, nil
	}

	// Split: right half moves to a fresh page; B-link left → right.
	mid := len(l.keys) / 2
	right := leaf{
		next: l.next,
		high: l.high,
		keys: append([]string{}, l.keys[mid:]...),
		vals: append([]string{}, l.vals[mid:]...),
	}
	sep := right.keys[0]
	newOID := c.DB().AllocPage()
	newPID, err := core.PageID(newOID)
	if err != nil {
		return "", err
	}
	left := leaf{next: newPID, high: sep, keys: l.keys[:mid], vals: l.vals[:mid]}
	// Write the right half first: a concurrent descent that still reaches
	// the left page sees a consistent B-link chain either way.
	if _, err := c.Call(newOID, "write", encodeLeaf(right)); err != nil {
		return "", err
	}
	if _, err := c.Call(self2page(self), "write", encodeLeaf(left)); err != nil {
		return "", err
	}
	return fmt.Sprintf("split|%s|%s|%s", sep, pidStr(newPID), old), nil
}

// nodeSearch looks k up in a leaf: "val|<v>", "miss", or "moved|<pid>".
func (m *Module) nodeSearch(c *core.Ctx, self txn.OID, params []string) (string, error) {
	if len(params) != 1 {
		return "", fmt.Errorf("btree: node search needs a key")
	}
	k := params[0]
	data, err := m.readNode(c, self, "read")
	if err != nil {
		return "", err
	}
	l, _, err := decodePage(data)
	if err != nil {
		return "", err
	}
	if l == nil {
		return "", fmt.Errorf("%w: search in inner node %s", ErrCorruptEntry, self.Name)
	}
	if movedPast(l.high, l.next, k) {
		return "moved|" + pidStr(l.next), nil
	}
	i := sort.SearchStrings(l.keys, k)
	if i < len(l.keys) && l.keys[i] == k {
		return "val|" + l.vals[i], nil
	}
	return "miss", nil
}

// nodeDelete removes k from a leaf: "val|<old>", "miss", or "moved|<pid>".
// No rebalancing (documented simplification). params: key, maxKeys (the
// capacity is only needed by the compensating re-insert).
func (m *Module) nodeDelete(c *core.Ctx, self txn.OID, params []string) (string, error) {
	if len(params) != 2 {
		return "", fmt.Errorf("btree: node delete needs key and maxKeys")
	}
	k := params[0]
	data, err := m.readNode(c, self, "readx")
	if err != nil {
		return "", err
	}
	l, _, err := decodePage(data)
	if err != nil {
		return "", err
	}
	if l == nil {
		return "", fmt.Errorf("%w: delete in inner node %s", ErrCorruptEntry, self.Name)
	}
	if movedPast(l.high, l.next, k) {
		return "moved|" + pidStr(l.next), nil
	}
	i := sort.SearchStrings(l.keys, k)
	if i >= len(l.keys) || l.keys[i] != k {
		return "miss", nil
	}
	old := l.vals[i]
	l.keys = append(l.keys[:i], l.keys[i+1:]...)
	l.vals = append(l.vals[:i], l.vals[i+1:]...)
	if _, err := c.Call(self2page(self), "write", encodeLeaf(*l)); err != nil {
		return "", err
	}
	return "val|" + old, nil
}

// nodeInsertChild posts a separator and new-child pid into an inner node:
// "ok", "moved|<pid>", or "split|<sep>|<new>". params: sep, newpid, maxKeys.
func (m *Module) nodeInsertChild(c *core.Ctx, self txn.OID, params []string) (string, error) {
	if len(params) != 3 {
		return "", fmt.Errorf("btree: insertChild needs sep, pid, maxKeys")
	}
	sep := params[0]
	newPID, err := strconv.ParseUint(params[1], 10, 64)
	if err != nil {
		return "", fmt.Errorf("btree: bad child pid %q", params[1])
	}
	maxKeys, err := strconv.Atoi(params[2])
	if err != nil {
		return "", fmt.Errorf("btree: bad maxKeys %q", params[2])
	}
	data, err := m.readNode(c, self, "readx")
	if err != nil {
		return "", err
	}
	_, n, err := decodePage(data)
	if err != nil {
		return "", err
	}
	if n == nil {
		return "", fmt.Errorf("%w: insertChild into leaf %s", ErrCorruptEntry, self.Name)
	}
	if movedPast(n.high, n.next, sep) {
		return "moved|" + pidStr(n.next), nil
	}

	i := sort.SearchStrings(n.keys, sep)
	n.keys = append(n.keys, "")
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = sep
	n.children = append(n.children, 0)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = storage.PageID(newPID)

	if len(n.keys) <= maxKeys {
		if _, err := c.Call(self2page(self), "write", encodeInner(*n)); err != nil {
			return "", err
		}
		return "ok", nil
	}

	// Inner split: the middle key is promoted, not copied.
	mid := len(n.keys) / 2
	promoted := n.keys[mid]
	right := inner{
		next:     n.next,
		high:     n.high,
		keys:     append([]string{}, n.keys[mid+1:]...),
		children: append([]storage.PageID{}, n.children[mid+1:]...),
	}
	newOID := c.DB().AllocPage()
	rightPID, err := core.PageID(newOID)
	if err != nil {
		return "", err
	}
	left := inner{
		next:     rightPID,
		high:     promoted,
		keys:     n.keys[:mid],
		children: n.children[:mid+1],
	}
	if _, err := c.Call(newOID, "write", encodeInner(right)); err != nil {
		return "", err
	}
	if _, err := c.Call(self2page(self), "write", encodeInner(left)); err != nil {
		return "", err
	}
	return fmt.Sprintf("split|%s|%s", promoted, pidStr(rightPID)), nil
}

// nodeMakeRoot initializes self as a fresh root with two children.
// params: leftpid, sep, rightpid.
func (m *Module) nodeMakeRoot(c *core.Ctx, self txn.OID, params []string) (string, error) {
	if len(params) != 3 {
		return "", fmt.Errorf("btree: makeRoot needs left, sep, right")
	}
	left, err1 := strconv.ParseUint(params[0], 10, 64)
	right, err2 := strconv.ParseUint(params[2], 10, 64)
	if err1 != nil || err2 != nil {
		return "", fmt.Errorf("btree: bad root child pids %v", params)
	}
	n := inner{
		keys:     []string{params[1]},
		children: []storage.PageID{storage.PageID(left), storage.PageID(right)},
	}
	return c.Call(self2page(self), "write", encodeInner(n))
}

// nodeCompDelete is the compensation counterpart of a leaf insert: it
// deletes k, FOLLOWING B-link moved-chains itself — a plain node delete
// returns moved|<pid> and relies on the tree method to chase it, but a
// compensation must be self-contained (it may run during rollback or crash
// recovery long after the insert, when splits have moved the key).
// params: key, maxKeys.
func (m *Module) nodeCompDelete(c *core.Ctx, self txn.OID, params []string) (string, error) {
	if len(params) != 2 {
		return "", fmt.Errorf("btree: compDelete needs key and maxKeys")
	}
	res, err := m.nodeDelete(c, self, params)
	if err != nil {
		return "", err
	}
	if next, ok := strings.CutPrefix(res, "moved|"); ok {
		pid, err := parsePID(next)
		if err != nil {
			return "", err
		}
		return c.Call(nodeOID(pid), "compDelete", params...)
	}
	return res, nil
}

// nodeCompInsert is the compensation counterpart of a leaf delete: it
// re-inserts k=v, following moved-chains, and NEVER splits — the node may
// go temporarily overfull (it heals on the next regular insert), because a
// compensation must not start structure modifications of its own.
// params: key, value, maxKeys.
func (m *Module) nodeCompInsert(c *core.Ctx, self txn.OID, params []string) (string, error) {
	if len(params) != 3 {
		return "", fmt.Errorf("btree: compInsert needs key, value, maxKeys")
	}
	k, v := params[0], params[1]
	data, err := m.readNode(c, self, "readx")
	if err != nil {
		return "", err
	}
	l, _, err := decodePage(data)
	if err != nil {
		return "", err
	}
	if l == nil {
		return "", fmt.Errorf("%w: compInsert into inner node %s", ErrCorruptEntry, self.Name)
	}
	if movedPast(l.high, l.next, k) {
		return c.Call(nodeOID(l.next), "compInsert", params...)
	}
	i := sort.SearchStrings(l.keys, k)
	old := ""
	if i < len(l.keys) && l.keys[i] == k {
		old = l.vals[i]
		l.vals[i] = v
	} else {
		l.keys = append(l.keys, "")
		copy(l.keys[i+1:], l.keys[i:])
		l.keys[i] = k
		l.vals = append(l.vals, "")
		copy(l.vals[i+1:], l.vals[i:])
		l.vals[i] = v
	}
	if _, err := c.Call(self2page(self), "write", encodeLeaf(*l)); err != nil {
		return "", err
	}
	return "ok|" + old, nil
}

// nodeScanLeaf returns a leaf's pairs and successor: "<next>|k1:v1;k2:v2".
func (m *Module) nodeScanLeaf(c *core.Ctx, self txn.OID, params []string) (string, error) {
	data, err := m.readNode(c, self, "read")
	if err != nil {
		return "", err
	}
	l, _, err := decodePage(data)
	if err != nil {
		return "", err
	}
	if l == nil {
		return "", fmt.Errorf("%w: scanLeaf on inner node %s", ErrCorruptEntry, self.Name)
	}
	var kv strings.Builder
	for i, k := range l.keys {
		if i > 0 {
			kv.WriteByte(';')
		}
		kv.WriteString(k)
		kv.WriteByte(':')
		kv.WriteString(l.vals[i])
	}
	return pidStr(l.next) + "|" + kv.String(), nil
}

// readNode reads the page behind a node object with the given page method
// ("read" or "readx").
func (m *Module) readNode(c *core.Ctx, self txn.OID, how string) (string, error) {
	return c.Call(self2page(self), how)
}

func self2page(self txn.OID) txn.OID {
	return txn.OID{Type: core.PageType, Name: "Page" + strings.TrimPrefix(self.Name, "Node")}
}

func pidStr(p storage.PageID) string {
	return strconv.FormatUint(uint64(p), 10)
}
