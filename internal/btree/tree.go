package btree

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/txn"
)

// maxDescend bounds descent/retry loops; exceeding it means a corrupt
// structure (a B-link cycle), not a deep tree.
const maxDescend = 128

// --- tree object methods ----------------------------------------------------

// treeInsert implements BpTree.insert(k, v): descend to the leaf, insert,
// propagate splits. Result: the previous value of k ("" when absent), which
// is exactly what the compensation needs.
func (m *Module) treeInsert(c *core.Ctx, self txn.OID, params []string) (string, error) {
	if len(params) != 2 {
		return "", fmt.Errorf("btree: insert needs key and value")
	}
	k, v := params[0], params[1]
	if !validKV(k) || !validKV(v) {
		return "", ErrBadKey
	}
	t, err := m.tree(self)
	if err != nil {
		return "", err
	}
	maxStr := strconv.Itoa(t.maxKeys)

	pid, err := t.descendToLeaf(c, k)
	if err != nil {
		return "", err
	}
	for hop := 0; hop < maxDescend; hop++ {
		res, err := c.Call(nodeOID(pid), "insert", k, v, maxStr)
		if err != nil {
			return "", err
		}
		switch {
		case strings.HasPrefix(res, "moved|"):
			pid, err = parsePID(res[len("moved|"):])
			if err != nil {
				return "", err
			}
		case strings.HasPrefix(res, "ok|"):
			return res[len("ok|"):], nil
		case strings.HasPrefix(res, "split|"):
			parts := strings.SplitN(res, "|", 4)
			if len(parts) != 4 {
				return "", fmt.Errorf("%w: split result %q", ErrCorruptEntry, res)
			}
			sep := parts[1]
			newPID, err := parsePID(parts[2])
			if err != nil {
				return "", err
			}
			if err := t.propagateSplit(c, pid, sep, newPID); err != nil {
				return "", err
			}
			return parts[3], nil
		default:
			return "", fmt.Errorf("%w: insert result %q", ErrCorruptEntry, res)
		}
	}
	return "", fmt.Errorf("%w: unbounded moved chain", ErrCorruptEntry)
}

// treeSearch implements BpTree.search(k): the value, or "" when absent.
func (m *Module) treeSearch(c *core.Ctx, self txn.OID, params []string) (string, error) {
	if len(params) != 1 {
		return "", fmt.Errorf("btree: search needs a key")
	}
	k := params[0]
	t, err := m.tree(self)
	if err != nil {
		return "", err
	}
	pid, err := t.descendToLeaf(c, k)
	if err != nil {
		return "", err
	}
	for hop := 0; hop < maxDescend; hop++ {
		res, err := c.Call(nodeOID(pid), "search", k)
		if err != nil {
			return "", err
		}
		switch {
		case strings.HasPrefix(res, "moved|"):
			pid, err = parsePID(res[len("moved|"):])
			if err != nil {
				return "", err
			}
		case strings.HasPrefix(res, "val|"):
			return res[len("val|"):], nil
		case res == "miss":
			return "", nil
		default:
			return "", fmt.Errorf("%w: search result %q", ErrCorruptEntry, res)
		}
	}
	return "", fmt.Errorf("%w: unbounded moved chain", ErrCorruptEntry)
}

// treeDelete implements BpTree.delete(k): the removed value, or "" when the
// key was absent.
func (m *Module) treeDelete(c *core.Ctx, self txn.OID, params []string) (string, error) {
	if len(params) != 1 {
		return "", fmt.Errorf("btree: delete needs a key")
	}
	k := params[0]
	t, err := m.tree(self)
	if err != nil {
		return "", err
	}
	pid, err := t.descendToLeaf(c, k)
	if err != nil {
		return "", err
	}
	maxStr := strconv.Itoa(t.maxKeys)
	for hop := 0; hop < maxDescend; hop++ {
		res, err := c.Call(nodeOID(pid), "delete", k, maxStr)
		if err != nil {
			return "", err
		}
		switch {
		case strings.HasPrefix(res, "moved|"):
			pid, err = parsePID(res[len("moved|"):])
			if err != nil {
				return "", err
			}
		case strings.HasPrefix(res, "val|"):
			return res[len("val|"):], nil
		case res == "miss":
			return "", nil
		default:
			return "", fmt.Errorf("%w: delete result %q", ErrCorruptEntry, res)
		}
	}
	return "", fmt.Errorf("%w: unbounded moved chain", ErrCorruptEntry)
}

// treeScan implements BpTree.scan(): all pairs in key order as
// "k1:v1;k2:v2;...". It walks the leaf chain from the leftmost leaf.
func (m *Module) treeScan(c *core.Ctx, self txn.OID, params []string) (string, error) {
	t, err := m.tree(self)
	if err != nil {
		return "", err
	}
	t.mu.Lock()
	pid := t.leftmost
	t.mu.Unlock()

	var out []string
	for hop := 0; hop < 1<<20 && pid != storage.InvalidPage; hop++ {
		res, err := c.Call(nodeOID(pid), "scanLeaf")
		if err != nil {
			return "", err
		}
		nextStr, kv, found := strings.Cut(res, "|")
		if !found {
			return "", fmt.Errorf("%w: scanLeaf result %q", ErrCorruptEntry, res)
		}
		if kv != "" {
			out = append(out, kv)
		}
		pid, err = parsePID(nextStr)
		if err != nil {
			return "", err
		}
	}
	return strings.Join(out, ";"), nil
}

// descendToLeaf routes from the root to the leaf owning k, following
// B-links, holding no node locks across levels (route is read-only).
func (t *Tree) descendToLeaf(c *core.Ctx, k string) (storage.PageID, error) {
	t.mu.Lock()
	pid := t.root
	t.mu.Unlock()
	for hop := 0; hop < maxDescend; hop++ {
		res, err := c.Call(nodeOID(pid), "route", k)
		if err != nil {
			return 0, err
		}
		switch {
		case res == "leaf":
			return pid, nil
		case strings.HasPrefix(res, "child|"):
			pid, err = parsePID(res[len("child|"):])
		case strings.HasPrefix(res, "moved|"):
			pid, err = parsePID(res[len("moved|"):])
		default:
			err = fmt.Errorf("%w: route result %q", ErrCorruptEntry, res)
		}
		if err != nil {
			return 0, err
		}
	}
	return 0, fmt.Errorf("%w: descent did not terminate", ErrCorruptEntry)
}

// propagateSplit posts a split upward. splitPID is the node that split,
// sep/newPID describe its new right sibling, level counts from the leaves
// (0 = a leaf split).
//
// The propagation is latch-free in the blocking sense: t.mu is only ever
// held for the root swap (a few field writes plus one uncontended write to
// a freshly allocated page), never across a lock acquisition that could
// wait. Holding a Go mutex while waiting for a database lock can deadlock
// invisibly with a transaction that holds the lock until commit and needs
// the mutex — the hardest bug class in this codebase; see DESIGN.md §4b.
//
// Concurrency argument: node LEVELS are immutable (a B-link tree only
// grows at the top), so the parent of a level-L node is always the node at
// index len(path)-1-L of a fresh root-to-leaf routing path, even if other
// transactions split nodes or the root concurrently; lateral movement is
// handled by insertChild's moved|<pid> B-link redirects, and page-level
// locks make each insertChild atomic.
func (t *Tree) propagateSplit(c *core.Ctx, splitPID storage.PageID, sep string, newPID storage.PageID) error {
	level := 0 // 0 = the split node is a leaf
	for round := 0; round < maxDescend; round++ {
		// Root split: swap the root under the mutex, re-checking that the
		// split node still IS the root (another transaction may have grown
		// the tree since our descent).
		t.mu.Lock()
		if splitPID == t.root {
			err := t.makeNewRootLocked(c, splitPID, sep, newPID)
			newRoot := t.root
			t.mu.Unlock()
			if err == nil && t.mod.cat != nil {
				// Outside the mutex: a catalog-page lock wait while holding
				// t.mu could deadlock invisibly with a transaction holding
				// the catalog page to commit and descending this tree.
				// Out-of-order updates from racing splits leave at worst a
				// STALE root pointer, which B-links render harmless.
				err = t.mod.cat.PutCtx(c, catalog.TreeEntry(t.name, t.maxKeys, newRoot))
			}
			return err
		}
		t.mu.Unlock()

		path, err := t.innerPath(c, sep)
		if err != nil {
			return err
		}
		parentIdx := len(path) - 1 - level
		if parentIdx < 0 {
			// The structure changed under our feet (a root split is in
			// flight); retry — the loop is bounded.
			continue
		}
		parent := path[parentIdx]

		posted := false
		for hop := 0; hop < maxDescend && !posted; hop++ {
			res, err := c.Call(nodeOID(parent), "insertChild", sep, pidStr(newPID), strconv.Itoa(t.maxKeys))
			if err != nil {
				return err
			}
			switch {
			case res == "ok":
				return nil
			case strings.HasPrefix(res, "moved|"):
				parent, err = parsePID(res[len("moved|"):])
				if err != nil {
					return err
				}
			case strings.HasPrefix(res, "split|"):
				parts := strings.SplitN(res, "|", 3)
				if len(parts) != 3 {
					return fmt.Errorf("%w: insertChild result %q", ErrCorruptEntry, res)
				}
				nsep := parts[1]
				npid, err := parsePID(parts[2])
				if err != nil {
					return err
				}
				// The parent itself split; continue one level up.
				splitPID, sep, newPID = parent, nsep, npid
				level++
				posted = true
			default:
				return fmt.Errorf("%w: insertChild result %q", ErrCorruptEntry, res)
			}
		}
		if !posted {
			return fmt.Errorf("%w: unbounded moved chain in split propagation", ErrCorruptEntry)
		}
	}
	return fmt.Errorf("%w: split propagation did not terminate", ErrCorruptEntry)
}

// makeNewRootLocked installs a new root over (left=splitPID, sep, right).
// Caller holds t.mu; the only engine call is a write to a freshly
// allocated page, which cannot block on another transaction.
func (t *Tree) makeNewRootLocked(c *core.Ctx, left storage.PageID, sep string, right storage.PageID) error {
	newRoot := c.DB().AllocPage()
	rootPID, err := core.PageID(newRoot)
	if err != nil {
		return err
	}
	if _, err := c.Call(nodeOID(rootPID), "makeRoot", pidStr(left), sep, pidStr(right)); err != nil {
		return err
	}
	t.root = rootPID
	t.height++
	return nil
}

// innerPath routes by key from the current root, returning the inner node
// pids down to the leaf's parent. Read-only; concurrent splits are healed
// by B-link redirects.
func (t *Tree) innerPath(c *core.Ctx, k string) ([]storage.PageID, error) {
	t.mu.Lock()
	pid := t.root
	t.mu.Unlock()
	var path []storage.PageID
	for hop := 0; hop < maxDescend; hop++ {
		res, err := c.Call(nodeOID(pid), "route", k)
		if err != nil {
			return nil, err
		}
		switch {
		case res == "leaf":
			return path, nil
		case strings.HasPrefix(res, "child|"):
			path = append(path, pid)
			pid, err = parsePID(res[len("child|"):])
		case strings.HasPrefix(res, "moved|"):
			pid, err = parsePID(res[len("moved|"):])
		default:
			err = fmt.Errorf("%w: route result %q", ErrCorruptEntry, res)
		}
		if err != nil {
			return nil, err
		}
	}
	return nil, fmt.Errorf("%w: inner path did not terminate", ErrCorruptEntry)
}

func parsePID(s string) (storage.PageID, error) {
	n, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%w: pid %q", ErrCorruptEntry, s)
	}
	return storage.PageID(n), nil
}
