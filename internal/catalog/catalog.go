// Package catalog provides the system catalog: a page-resident directory
// of the database's structural metadata (B+ tree roots, list heads,
// composite-object wiring), so that a restart — in particular crash
// recovery (internal/recovery) — can re-attach every structure without
// out-of-band knowledge. Real systems bootstrap the same way: a well-known
// catalog location, everything else reachable from it.
//
// The catalog is deliberately updated with REDO-ONLY semantics for root
// pointers: a B+ tree root split is a nested top action (it survives the
// enclosing transaction's abort), so the catalog's new root pointer must
// survive too. Under protocols that physically undo the catalog page, a
// reverted pointer still names a valid node whose B-links reach the whole
// tree, so stale pointers degrade performance, never correctness.
package catalog

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/txn"
)

// Errors.
var (
	ErrNotFound = errors.New("catalog: entry not found")
	ErrBadName  = errors.New("catalog: name contains a reserved character")
	ErrCorrupt  = errors.New("catalog: corrupt catalog page")
)

const reserved = "|;"

// Kind tags catalog entries.
type Kind string

// The entry kinds.
const (
	KindTree Kind = "tree"
	KindList Kind = "list"
	KindEnc  Kind = "enc"
)

// Entry is one catalog row.
type Entry struct {
	Kind   Kind
	Name   string
	Fields []string // kind-specific: tree → [maxKeys, rootPID]; list → [capacity, headPID]; enc → [fanout, spineCap]
}

// Catalog is the handle to a database's catalog page.
type Catalog struct {
	db   *core.DB
	page txn.OID

	mu sync.Mutex // serializes read-modify-write cycles on the page
}

// Install allocates the catalog page on a fresh database. Call it before
// installing any module so the page id is the well-known first page.
func Install(db *core.DB) (*Catalog, error) {
	pageOID := db.AllocPage()
	c := &Catalog{db: db, page: pageOID}
	tx := db.Begin()
	if _, err := tx.Exec(pageOID, "write", ""); err != nil {
		_ = tx.Abort()
		return nil, err
	}
	return c, tx.Commit()
}

// Attach opens the catalog of an existing (e.g. freshly recovered)
// database at the given page.
func Attach(db *core.DB, pid storage.PageID) *Catalog {
	return &Catalog{db: db, page: core.PageOID(pid)}
}

// PageID returns the catalog's page id (persist THIS one out of band; by
// convention it is the first allocated page).
func (c *Catalog) PageID() storage.PageID {
	pid, err := core.PageID(c.page)
	if err != nil {
		panic("catalog: invalid own page oid: " + err.Error())
	}
	return pid
}

func encodeEntries(entries []Entry) string {
	rows := make([]string, len(entries))
	for i, e := range entries {
		rows[i] = strings.Join(append([]string{string(e.Kind), e.Name}, e.Fields...), "|")
	}
	return strings.Join(rows, ";")
}

func decodeEntries(data string) ([]Entry, error) {
	if data == "" {
		return nil, nil
	}
	var out []Entry
	for _, row := range strings.Split(data, ";") {
		parts := strings.Split(row, "|")
		if len(parts) < 2 {
			return nil, fmt.Errorf("%w: row %q", ErrCorrupt, row)
		}
		out = append(out, Entry{Kind: Kind(parts[0]), Name: parts[1], Fields: parts[2:]})
	}
	return out, nil
}

// load reads the entries inside an existing transaction context.
func (c *Catalog) load(read func() (string, error)) ([]Entry, error) {
	data, err := read()
	if err != nil {
		return nil, err
	}
	return decodeEntries(data)
}

// Put inserts or replaces an entry, running in its own transaction.
func (c *Catalog) Put(e Entry) error {
	if strings.ContainsAny(e.Name, reserved) {
		return ErrBadName
	}
	for _, f := range e.Fields {
		if strings.ContainsAny(f, reserved) {
			return ErrBadName
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	tx := c.db.Begin()
	if err := c.putIn(func(m string, p ...string) (string, error) { return tx.Exec(c.page, m, p...) }, e); err != nil {
		_ = tx.Abort()
		return err
	}
	return tx.Commit()
}

// PutCtx inserts or replaces an entry inside an existing method execution
// (used by structural updates such as root splits).
func (c *Catalog) PutCtx(cctx *core.Ctx, e Entry) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.putIn(func(m string, p ...string) (string, error) { return cctx.Call(c.page, m, p...) }, e)
}

func (c *Catalog) putIn(call func(string, ...string) (string, error), e Entry) error {
	data, err := call("readx")
	if err != nil {
		return err
	}
	entries, err := decodeEntries(data)
	if err != nil {
		return err
	}
	replaced := false
	for i := range entries {
		if entries[i].Kind == e.Kind && entries[i].Name == e.Name {
			entries[i] = e
			replaced = true
			break
		}
	}
	if !replaced {
		entries = append(entries, e)
	}
	_, err = call("write", encodeEntries(entries))
	return err
}

// Entries returns all catalog rows, sorted by kind then name.
func (c *Catalog) Entries() ([]Entry, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	tx := c.db.Begin()
	entries, err := c.load(func() (string, error) { return tx.Exec(c.page, "read") })
	if err != nil {
		_ = tx.Abort()
		return nil, err
	}
	if err := tx.Commit(); err != nil {
		return nil, err
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Kind != entries[j].Kind {
			return entries[i].Kind < entries[j].Kind
		}
		return entries[i].Name < entries[j].Name
	})
	return entries, nil
}

// Get returns one entry.
func (c *Catalog) Get(kind Kind, name string) (Entry, error) {
	entries, err := c.Entries()
	if err != nil {
		return Entry{}, err
	}
	for _, e := range entries {
		if e.Kind == kind && e.Name == name {
			return e, nil
		}
	}
	return Entry{}, fmt.Errorf("%w: %s %q", ErrNotFound, kind, name)
}

// --- typed helpers -----------------------------------------------------------

// TreeEntry builds a KindTree entry.
func TreeEntry(name string, maxKeys int, root storage.PageID) Entry {
	return Entry{Kind: KindTree, Name: name, Fields: []string{
		strconv.Itoa(maxKeys), strconv.FormatUint(uint64(root), 10),
	}}
}

// TreeFields parses a KindTree entry.
func TreeFields(e Entry) (maxKeys int, root storage.PageID, err error) {
	if e.Kind != KindTree || len(e.Fields) != 2 {
		return 0, 0, fmt.Errorf("%w: tree entry %v", ErrCorrupt, e)
	}
	maxKeys, err = strconv.Atoi(e.Fields[0])
	if err != nil {
		return 0, 0, err
	}
	r, err := strconv.ParseUint(e.Fields[1], 10, 64)
	return maxKeys, storage.PageID(r), err
}

// ListEntry builds a KindList entry.
func ListEntry(name string, capacity int, head storage.PageID) Entry {
	return Entry{Kind: KindList, Name: name, Fields: []string{
		strconv.Itoa(capacity), strconv.FormatUint(uint64(head), 10),
	}}
}

// ListFields parses a KindList entry.
func ListFields(e Entry) (capacity int, head storage.PageID, err error) {
	if e.Kind != KindList || len(e.Fields) != 2 {
		return 0, 0, fmt.Errorf("%w: list entry %v", ErrCorrupt, e)
	}
	capacity, err = strconv.Atoi(e.Fields[0])
	if err != nil {
		return 0, 0, err
	}
	h, err := strconv.ParseUint(e.Fields[1], 10, 64)
	return capacity, storage.PageID(h), err
}

// EncEntry builds a KindEnc entry.
func EncEntry(name string, fanout, spineCap int) Entry {
	return Entry{Kind: KindEnc, Name: name, Fields: []string{
		strconv.Itoa(fanout), strconv.Itoa(spineCap),
	}}
}

// EncFields parses a KindEnc entry.
func EncFields(e Entry) (fanout, spineCap int, err error) {
	if e.Kind != KindEnc || len(e.Fields) != 2 {
		return 0, 0, fmt.Errorf("%w: enc entry %v", ErrCorrupt, e)
	}
	fanout, err = strconv.Atoi(e.Fields[0])
	if err != nil {
		return 0, 0, err
	}
	spineCap, err = strconv.Atoi(e.Fields[1])
	return fanout, spineCap, err
}
