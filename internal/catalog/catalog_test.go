package catalog

import (
	"errors"
	"testing"

	"repro/internal/core"
)

func TestInstallAndRoundTrip(t *testing.T) {
	db := core.Open(core.Options{})
	cat, err := Install(db)
	if err != nil {
		t.Fatal(err)
	}
	if cat.PageID() != 1 {
		t.Fatalf("catalog page = %d, want the first page", cat.PageID())
	}

	if err := cat.Put(TreeEntry("idx", 64, 7)); err != nil {
		t.Fatal(err)
	}
	if err := cat.Put(ListEntry("lst", 50, 8)); err != nil {
		t.Fatal(err)
	}
	if err := cat.Put(EncEntry("Enc", 64, 50)); err != nil {
		t.Fatal(err)
	}

	e, err := cat.Get(KindTree, "idx")
	if err != nil {
		t.Fatal(err)
	}
	maxKeys, root, err := TreeFields(e)
	if err != nil || maxKeys != 64 || root != 7 {
		t.Fatalf("tree fields = %d %d %v", maxKeys, root, err)
	}
	le, err := cat.Get(KindList, "lst")
	if err != nil {
		t.Fatal(err)
	}
	capacity, head, err := ListFields(le)
	if err != nil || capacity != 50 || head != 8 {
		t.Fatalf("list fields = %d %d %v", capacity, head, err)
	}
	ee, err := cat.Get(KindEnc, "Enc")
	if err != nil {
		t.Fatal(err)
	}
	fanout, spine, err := EncFields(ee)
	if err != nil || fanout != 64 || spine != 50 {
		t.Fatalf("enc fields = %d %d %v", fanout, spine, err)
	}

	entries, err := cat.Entries()
	if err != nil || len(entries) != 3 {
		t.Fatalf("entries = %v, %v", entries, err)
	}
	if _, err := cat.Get(KindTree, "ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing entry: %v", err)
	}
}

func TestPutReplaces(t *testing.T) {
	db := core.Open(core.Options{})
	cat, _ := Install(db)
	_ = cat.Put(TreeEntry("idx", 64, 7))
	if err := cat.Put(TreeEntry("idx", 64, 99)); err != nil {
		t.Fatal(err)
	}
	e, _ := cat.Get(KindTree, "idx")
	_, root, _ := TreeFields(e)
	if root != 99 {
		t.Fatalf("root = %d after replace", root)
	}
	entries, _ := cat.Entries()
	if len(entries) != 1 {
		t.Fatalf("entries = %d, want 1", len(entries))
	}
}

func TestBadNames(t *testing.T) {
	db := core.Open(core.Options{})
	cat, _ := Install(db)
	if err := cat.Put(Entry{Kind: KindTree, Name: "a|b"}); !errors.Is(err, ErrBadName) {
		t.Fatalf("err = %v", err)
	}
	if err := cat.Put(Entry{Kind: KindTree, Name: "x", Fields: []string{"a;b"}}); !errors.Is(err, ErrBadName) {
		t.Fatalf("err = %v", err)
	}
}

func TestAttachSeesExisting(t *testing.T) {
	db := core.Open(core.Options{})
	cat, _ := Install(db)
	_ = cat.Put(TreeEntry("idx", 8, 3))

	cat2 := Attach(db, cat.PageID())
	e, err := cat2.Get(KindTree, "idx")
	if err != nil {
		t.Fatal(err)
	}
	if _, root, _ := TreeFields(e); root != 3 {
		t.Fatal("attach lost data")
	}
}

func TestFieldParsersRejectWrongKinds(t *testing.T) {
	if _, _, err := TreeFields(Entry{Kind: KindList}); err == nil {
		t.Fatal("TreeFields must reject list entries")
	}
	if _, _, err := ListFields(Entry{Kind: KindTree}); err == nil {
		t.Fatal("ListFields must reject tree entries")
	}
	if _, _, err := EncFields(Entry{Kind: KindTree}); err == nil {
		t.Fatal("EncFields must reject tree entries")
	}
	if _, _, err := TreeFields(Entry{Kind: KindTree, Fields: []string{"x", "1"}}); err == nil {
		t.Fatal("TreeFields must reject non-numeric fields")
	}
}

func TestDecodeCorrupt(t *testing.T) {
	if _, err := decodeEntries("nonsense-without-separator"); err == nil {
		t.Fatal("corrupt row must fail")
	}
	if es, err := decodeEntries(""); err != nil || es != nil {
		t.Fatal("empty catalog decodes to nothing")
	}
}
