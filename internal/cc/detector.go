package cc

import "sync"

// detector is the cross-shard deadlock detector. The lock table is sharded
// (see table.go), so no single shard sees the whole waits-for relation; the
// detector centralizes it behind its own mutex, decoupled from every shard
// lock. Blocked acquires charge edges (root → blocking root, counted per
// blocked call) before they sleep and discharge them when they stop
// waiting; the cycle search runs under the detector's lock only, never
// under a shard lock.
//
// Lock ordering: a goroutine may take the detector lock while holding a
// shard lock (Acquire's fast doomed check), but the detector NEVER takes a
// shard lock itself — waking a doomed victim happens through registered
// wake callbacks invoked after the detector lock is released.
type detector struct {
	mu sync.Mutex
	// waitsFor counts, per waiting root, how many of its blocked acquires
	// wait for each blocking root.
	waitsFor map[string]map[string]int
	// doomed roots must abort; their acquires fail fast.
	doomed map[string]bool
	// victims dedupes victim counting per victimization episode: a root with
	// several parallel blocked acquires is one victim, not one per acquire.
	// Cleared with the doomed mark (clearDoomed/forget), so a restarted
	// transaction caught in a NEW deadlock counts again.
	victims map[string]bool
	// ages overrides the age derived from the transaction id. A restarted
	// transaction keeps its original age (SetAge), so the youngest-victim
	// policy cannot starve it forever.
	ages map[string]int64
	// wakers holds, per root, the wake callbacks of its blocked acquires so
	// dooming a victim can wake exactly its own waits.
	wakers map[string]map[*wakeHandle]struct{}
	// cause records, per victim, the waits-for cycle that doomed it — the
	// provenance an aborting victim's trace reports. Cleared with the victim
	// mark (clearDoomed/forget).
	cause map[string][]string
}

// wakeHandle identifies one blocked acquire's wake callback. The callback
// re-broadcasts the condition variable the acquire sleeps on (taking the
// owning shard's lock to do so safely).
type wakeHandle struct {
	fn func()
}

func newDetector() *detector {
	return &detector{
		waitsFor: make(map[string]map[string]int),
		doomed:   make(map[string]bool),
		victims:  make(map[string]bool),
		ages:     make(map[string]int64),
		wakers:   make(map[string]map[*wakeHandle]struct{}),
		cause:    make(map[string][]string),
	}
}

// isDoomed reports whether root was chosen as a deadlock victim.
func (d *detector) isDoomed(root string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.doomed[root]
}

// register adds a wake callback for a blocked acquire of root.
func (d *detector) register(root string, fn func()) *wakeHandle {
	h := &wakeHandle{fn: fn}
	d.mu.Lock()
	defer d.mu.Unlock()
	set := d.wakers[root]
	if set == nil {
		set = make(map[*wakeHandle]struct{})
		d.wakers[root] = set
	}
	set[h] = struct{}{}
	return h
}

// unregister removes a wake callback installed by register.
func (d *detector) unregister(root string, h *wakeHandle) {
	d.mu.Lock()
	defer d.mu.Unlock()
	set := d.wakers[root]
	delete(set, h)
	if len(set) == 0 {
		delete(d.wakers, root)
	}
}

// recharge replaces the edges one blocked acquire charges: it discharges
// old and charges next (both multisets root → count).
func (d *detector) recharge(root string, old, next map[string]int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.dischargeLocked(root, old)
	if len(next) == 0 {
		return
	}
	wf := d.waitsFor[root]
	if wf == nil {
		wf = make(map[string]int)
		d.waitsFor[root] = wf
	}
	for to, n := range next {
		wf[to] += n
	}
}

// discharge removes the edges a no-longer-blocked acquire had charged.
func (d *detector) discharge(root string, old map[string]int) {
	if len(old) == 0 {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.dischargeLocked(root, old)
}

func (d *detector) dischargeLocked(root string, old map[string]int) {
	wf := d.waitsFor[root]
	if wf == nil {
		return
	}
	for to, n := range old {
		wf[to] -= n
		if wf[to] <= 0 {
			delete(wf, to)
		}
	}
	if len(wf) == 0 {
		delete(d.waitsFor, root)
	}
}

// detect searches for a waits-for cycle through start. If one exists it
// picks the youngest transaction on the cycle as the victim and returns it;
// a victim other than start is marked doomed and its blocked acquires are
// woken (after the detector lock is dropped). Returns "" when start is on
// no cycle.
//
// fresh reports whether THIS call victimized the root: true exactly once
// per victimization episode, so the caller can count victims (one per
// doomed transaction) rather than victim acquires (one per blocked call
// that observes the doom — several, when a victim has sibling
// subtransactions blocked in parallel).
func (d *detector) detect(start string) (victim string, fresh bool) {
	d.mu.Lock()
	cycle := d.findCycleLocked(start)
	if cycle == nil {
		d.mu.Unlock()
		return "", false
	}
	victim = d.youngestLocked(cycle)
	fresh = !d.victims[victim]
	d.victims[victim] = true
	if fresh {
		// Remember the cycle that doomed the victim: its aborting acquires
		// read it back (causeOf) to attach a victim-of provenance edge.
		d.cause[victim] = cycle
	}
	var wakes []func()
	if victim != start && !d.doomed[victim] {
		d.doomed[victim] = true
		for h := range d.wakers[victim] {
			wakes = append(wakes, h.fn)
		}
	}
	d.mu.Unlock()
	for _, fn := range wakes {
		fn()
	}
	return victim, fresh
}

// findCycleLocked returns the roots of a waits-for cycle through start, or
// nil. Doomed roots are not traversed: a doomed victim is already aborting
// (it will wake, discharge its edges and release its locks), so any cycle
// through its residual edges is already broken — counting them would doom
// a second, unnecessary victim. Caller holds d.mu.
func (d *detector) findCycleLocked(start string) []string {
	var path []string
	onPath := map[string]bool{}
	visited := map[string]bool{}
	var dfs func(n string) []string
	dfs = func(n string) []string {
		path = append(path, n)
		onPath[n] = true
		visited[n] = true
		for m := range d.waitsFor[n] {
			if d.doomed[m] {
				continue
			}
			if m == start && len(path) > 0 {
				return append([]string{}, path...)
			}
			if onPath[m] || visited[m] {
				continue
			}
			if c := dfs(m); c != nil {
				return c
			}
		}
		path = path[:len(path)-1]
		onPath[n] = false
		return nil
	}
	return dfs(start)
}

// setAge overrides the age of a transaction (see LockManager.SetAge).
func (d *detector) setAge(root string, age int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.ages[root] = age
}

// ageLocked returns the effective age of a root. Caller holds d.mu.
func (d *detector) ageLocked(root string) int64 {
	if a, ok := d.ages[root]; ok {
		return a
	}
	return int64(txnSeq(root))
}

// youngestLocked picks the deadlock victim: the transaction with the
// highest effective age (most recently started), falling back to
// lexicographic order. Caller holds d.mu.
func (d *detector) youngestLocked(roots []string) string {
	best := roots[0]
	bestSeq := d.ageLocked(best)
	for _, r := range roots[1:] {
		if s := d.ageLocked(r); s > bestSeq || (s == bestSeq && r > best) {
			best, bestSeq = r, s
		}
	}
	return best
}

// youngest is youngestLocked behind the lock (victim-policy tests).
func (d *detector) youngest(roots []string) string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.youngestLocked(roots)
}

// clearDoomed removes a root's victim mark and gives it top priority. The
// victimization episode ends with the mark: if the restarted transaction is
// caught in another deadlock later, that is a new victim event.
func (d *detector) clearDoomed(root string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.doomed, root)
	delete(d.victims, root)
	delete(d.cause, root)
	d.ages[root] = 0
}

// forget drops all detector state of a finished root (top-level commit or
// completed abort cleanup).
func (d *detector) forget(root string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.doomed, root)
	delete(d.victims, root)
	delete(d.cause, root)
	delete(d.ages, root)
}

// causeOf returns a copy of the waits-for cycle that doomed root, or nil
// when root is not a (current-episode) victim.
func (d *detector) causeOf(root string) []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]string(nil), d.cause[root]...)
}

// forceDoom marks a root as victim directly (tests and debugging).
func (d *detector) forceDoom(root string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.doomed[root] = true
}

// edges renders the waits-for relation for diagnostics.
func (d *detector) edges() map[string]map[string]int {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[string]map[string]int, len(d.waitsFor))
	for from, tos := range d.waitsFor {
		m := make(map[string]int, len(tos))
		for to, n := range tos {
			m[to] = n
		}
		out[from] = m
	}
	return out
}
