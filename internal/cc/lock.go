// Package cc provides the lock-based concurrency-control runtime the
// transaction engine (internal/core) builds its protocols on:
//
//   - lock modes: classical shared/exclusive and semantic modes whose
//     compatibility is an object type's commutativity specification
//     (Definition 9) — two invocations may hold locks on the same object
//     simultaneously iff they commute;
//   - a blocking lock manager with owner hierarchies (owners are
//     hierarchical action ids, so ancestor bypass for closed nested
//     transactions is a prefix test), lock transfer to parents, waits-for
//     deadlock detection with youngest-victim abort, and an optional wait
//     timeout as a backstop;
//   - counters for the paper's evaluation: acquisitions, blocked acquires
//     (the "rate of conflicting accesses"), deadlocks and wait time.
package cc

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/commut"
	"repro/internal/txn"
)

// Sentinel errors returned by Acquire.
var (
	// ErrDeadlock is returned to the victim of a waits-for cycle.
	ErrDeadlock = errors.New("cc: deadlock victim")
	// ErrTimeout is returned when a lock wait exceeds the configured bound.
	ErrTimeout = errors.New("cc: lock wait timeout")
	// ErrDoomed is returned when the owner's transaction was already chosen
	// as a deadlock victim and must abort before acquiring anything else.
	ErrDoomed = errors.New("cc: transaction doomed by deadlock detection")
)

// Mode is a lock mode. Compatibility must be symmetric.
type Mode interface {
	CompatibleWith(other Mode) bool
	String() string
}

// RW is the classical two-mode lattice.
type RW int

// The two classical modes.
const (
	S RW = iota // shared
	X           // exclusive
)

// CompatibleWith implements Mode: only S/S is compatible.
func (m RW) CompatibleWith(other Mode) bool {
	o, ok := other.(RW)
	if !ok {
		return false // mixing mode families is always a conflict
	}
	return m == S && o == S
}

func (m RW) String() string {
	if m == S {
		return "S"
	}
	return "X"
}

// Semantic is a commutativity-based lock mode: holding Semantic{inv} on an
// object means the owner has an uncommitted invocation inv outstanding;
// another invocation may run concurrently iff the object type's
// specification says the two commute.
type Semantic struct {
	Inv  commut.Invocation
	Spec commut.Spec
}

// CompatibleWith implements Mode.
func (m Semantic) CompatibleWith(other Mode) bool {
	o, ok := other.(Semantic)
	if !ok {
		return false
	}
	return m.Spec.Commutes(m.Inv, o.Inv)
}

func (m Semantic) String() string { return "sem:" + m.Inv.String() }

// Resource identifies a lockable resource: a database object.
type Resource = txn.OID

// Stats are the lock manager's counters; read a consistent snapshot with
// Snapshot.
type Stats struct {
	// Acquires counts Acquire calls that eventually succeeded.
	Acquires int64
	// Blocked counts Acquire calls that had to wait at least once — the
	// runtime measure of "conflicting accesses".
	Blocked int64
	// Deadlocks counts aborted victims.
	Deadlocks int64
	// Timeouts counts waits that exceeded the bound.
	Timeouts int64
	// WaitTime is the total time spent blocked.
	WaitTime time.Duration
}

type grant struct {
	owner string
	mode  Mode
	count int // re-entrant acquisitions by the same owner+mode
}

// waiter is one blocked Acquire in FIFO position (fairness mode).
type waiter struct {
	owner string
	mode  Mode
	seq   uint64
}

type lockState struct {
	granted []grant
	// waiting holds blocked requests in arrival order; only consulted when
	// fairness is enabled.
	waiting []*waiter
}

// LockManager is a blocking lock manager. Owners are hierarchical action
// ids (e.g. "T3", "T3.1.2"); the root prefix up to the first dot names the
// top-level transaction, which is the deadlock-detection granule.
type LockManager struct {
	mu   sync.Mutex
	cond *sync.Cond

	locks map[Resource]*lockState
	// waitsFor counts, per waiting root, how many of its blocked acquires
	// wait for each blocking root.
	waitsFor map[string]map[string]int
	// doomed roots must abort; their acquires fail fast.
	doomed map[string]bool
	// ages overrides the age derived from the transaction id. A restarted
	// transaction keeps its original age (SetAge), so the youngest-victim
	// policy cannot starve it forever.
	ages map[string]int64

	// ancestorBypass, when true, lets a requester ignore conflicting locks
	// held by its proper ancestors (Moss's closed nested locking rule).
	ancestorBypass bool
	// fair, when true, prevents barging: a request also waits behind
	// EARLIER incompatible waiters, so a stream of compatible requests
	// (e.g. readers) cannot starve a conflicting one (a writer).
	fair    bool
	waitSeq uint64
	// waitTimeout bounds each blocked acquire; 0 means no bound.
	waitTimeout time.Duration
	// debugDump, when set, receives a full lock-table dump on each timeout.
	debugDump func(string)

	stats Stats
}

// Option configures a LockManager.
type Option func(*LockManager)

// WithAncestorBypass enables the closed-nested rule: locks held by proper
// ancestors of the requester do not block it.
func WithAncestorBypass() Option {
	return func(lm *LockManager) { lm.ancestorBypass = true }
}

// WithWaitTimeout bounds every lock wait.
func WithWaitTimeout(d time.Duration) Option {
	return func(lm *LockManager) { lm.waitTimeout = d }
}

// WithFairness enables FIFO ordering of conflicting waiters: later
// requests do not barge past earlier incompatible ones, so continuous
// compatible traffic (readers, commuting operations) cannot starve a
// conflicting request.
func WithFairness() Option {
	return func(lm *LockManager) { lm.fair = true }
}

// NewLockManager returns a lock manager with the given options.
func NewLockManager(opts ...Option) *LockManager {
	lm := &LockManager{
		locks:    make(map[Resource]*lockState),
		waitsFor: make(map[string]map[string]int),
		doomed:   make(map[string]bool),
		ages:     make(map[string]int64),
	}
	lm.cond = sync.NewCond(&lm.mu)
	for _, o := range opts {
		o(lm)
	}
	return lm
}

// RootOf returns the top-level transaction id of an owner id.
func RootOf(owner string) string {
	if i := strings.IndexByte(owner, '.'); i >= 0 {
		return owner[:i]
	}
	return owner
}

// isAncestor reports whether holder is a proper ancestor of requester in
// the hierarchical id scheme.
func isAncestor(holder, requester string) bool {
	return len(requester) > len(holder)+1 && strings.HasPrefix(requester, holder+".")
}

// blockRef names one conflicting holder or (in fairness mode) earlier
// waiter.
type blockRef struct {
	owner string
	mode  Mode
}

// skippable reports whether a conflicting entry never blocks this owner:
// itself, its own transaction's other subtransactions, or (closed nesting)
// a proper ancestor. Caller holds lm.mu.
func (lm *LockManager) skippable(owner, other string) bool {
	if other == owner {
		return true // re-entrant: an owner never conflicts with itself
	}
	if RootOf(other) == RootOf(owner) {
		// Same top-level transaction: sibling subtransactions are the
		// application's own (intra-transaction) parallelism; the paper
		// handles their ordering via precedence (Definition 9: actions
		// of the same process are never in conflict), not isolation.
		return true
	}
	return lm.ancestorBypass && isAncestor(other, owner)
}

// blockers returns the entries incompatible with the request: conflicting
// granted locks, plus — in fairness mode — conflicting waiters queued
// before mySeq (use ^uint64(0) for a request not yet queued: everyone
// already waiting counts as earlier). Caller holds lm.mu.
func (lm *LockManager) blockers(owner string, st *lockState, mode Mode, mySeq uint64) []blockRef {
	var out []blockRef
	for _, g := range st.granted {
		if lm.skippable(owner, g.owner) {
			continue
		}
		if !mode.CompatibleWith(g.mode) {
			out = append(out, blockRef{owner: g.owner, mode: g.mode})
		}
	}
	if lm.fair {
		for _, w := range st.waiting {
			if w.seq >= mySeq || lm.skippable(owner, w.owner) {
				continue
			}
			if !mode.CompatibleWith(w.mode) {
				out = append(out, blockRef{owner: w.owner, mode: w.mode})
			}
		}
	}
	return out
}

// Acquire blocks until the owner holds res in the given mode, or returns
// ErrDeadlock / ErrDoomed / ErrTimeout. Re-acquisition by the same owner
// and mode is re-entrant.
func (lm *LockManager) Acquire(owner string, res Resource, mode Mode) error {
	root := RootOf(owner)
	lm.mu.Lock()
	defer lm.mu.Unlock()

	if lm.doomed[root] {
		return ErrDoomed
	}
	st := lm.locks[res]
	if st == nil {
		st = &lockState{}
		lm.locks[res] = st
	}

	blocked := false
	var start time.Time
	var timedOut bool
	var timer *time.Timer
	var token *waiter             // our FIFO position once blocked (fairness mode)
	waitingOn := map[string]int{} // roots this call currently charges in waitsFor

	removeToken := func() {
		if token == nil {
			return
		}
		kept := st.waiting[:0]
		for _, w := range st.waiting {
			if w != token {
				kept = append(kept, w)
			}
		}
		st.waiting = kept
		token = nil
		lm.cond.Broadcast() // later waiters may now be first in line
	}

	clearWaits := func() {
		for r, n := range waitingOn {
			m := lm.waitsFor[root]
			if m != nil {
				m[r] -= n
				if m[r] <= 0 {
					delete(m, r)
				}
				if len(m) == 0 {
					delete(lm.waitsFor, root)
				}
			}
		}
		waitingOn = map[string]int{}
	}
	defer func() {
		removeToken()
		clearWaits()
		if timer != nil {
			timer.Stop()
		}
		if blocked {
			lm.stats.WaitTime += time.Since(start)
		}
	}()

	for {
		if lm.doomed[root] {
			lm.stats.Deadlocks++
			return ErrDeadlock
		}
		mySeq := ^uint64(0)
		if token != nil {
			mySeq = token.seq
		}
		bl := lm.blockers(owner, st, mode, mySeq)
		if len(bl) == 0 {
			lm.grantLocked(st, owner, mode)
			lm.stats.Acquires++
			return nil
		}
		if !blocked {
			blocked = true
			start = time.Now()
			lm.stats.Blocked++
			if lm.fair {
				lm.waitSeq++
				token = &waiter{owner: owner, mode: mode, seq: lm.waitSeq}
				st.waiting = append(st.waiting, token)
			}
			if lm.waitTimeout > 0 {
				timer = time.AfterFunc(lm.waitTimeout, func() {
					lm.mu.Lock()
					timedOut = true
					lm.cond.Broadcast()
					lm.mu.Unlock()
				})
			}
		}
		if timedOut {
			lm.stats.Timeouts++
			holders := make([]string, 0, len(st.granted))
			for _, g := range st.granted {
				holders = append(holders, g.owner+"/"+g.mode.String())
			}
			if lm.debugDump != nil {
				lm.debugDump(lm.dumpLocked(owner, mode, res))
			}
			return fmt.Errorf("%w: %s wants %s on %s held by %s",
				ErrTimeout, owner, mode, res.Name, strings.Join(holders, ", "))
		}

		// Charge fresh waits-for edges.
		clearWaits()
		wf := lm.waitsFor[root]
		if wf == nil {
			wf = map[string]int{}
			lm.waitsFor[root] = wf
		}
		for _, g := range bl {
			br := RootOf(g.owner)
			if br == root {
				continue
			}
			wf[br]++
			waitingOn[br]++
		}

		// Deadlock detection: is root on a waits-for cycle?
		if cycle := lm.findCycleFrom(root); cycle != nil {
			victim := lm.youngestLocked(cycle)
			if victim == root {
				lm.stats.Deadlocks++
				return ErrDeadlock
			}
			lm.doomed[victim] = true
			lm.cond.Broadcast()
		}
		lm.cond.Wait()
	}
}

// grantLocked records the grant. Caller holds lm.mu.
func (lm *LockManager) grantLocked(st *lockState, owner string, mode Mode) {
	for i := range st.granted {
		if st.granted[i].owner == owner && st.granted[i].mode.String() == mode.String() {
			st.granted[i].count++
			return
		}
	}
	st.granted = append(st.granted, grant{owner: owner, mode: mode, count: 1})
}

// findCycleFrom returns the roots of a waits-for cycle through start, or
// nil. Caller holds lm.mu.
func (lm *LockManager) findCycleFrom(start string) []string {
	var path []string
	onPath := map[string]bool{}
	visited := map[string]bool{}
	var dfs func(n string) []string
	dfs = func(n string) []string {
		path = append(path, n)
		onPath[n] = true
		visited[n] = true
		for m := range lm.waitsFor[n] {
			if m == start && len(path) > 0 {
				return append([]string{}, path...)
			}
			if onPath[m] || visited[m] {
				continue
			}
			if c := dfs(m); c != nil {
				return c
			}
		}
		path = path[:len(path)-1]
		onPath[n] = false
		return nil
	}
	return dfs(start)
}

// SetAge overrides the age of a transaction: a restarted transaction that
// keeps its original (older) age stops being the default deadlock victim,
// preventing restart starvation. Cleared by ReleaseTree.
func (lm *LockManager) SetAge(root string, age int64) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	lm.ages[root] = age
}

// ageLocked returns the effective age of a root. Caller holds lm.mu.
func (lm *LockManager) ageLocked(root string) int64 {
	if a, ok := lm.ages[root]; ok {
		return a
	}
	return int64(txnSeq(root))
}

// youngestLocked picks the deadlock victim: the transaction with the
// highest effective age (most recently started), falling back to
// lexicographic order. Caller holds lm.mu.
func (lm *LockManager) youngestLocked(roots []string) string {
	best := roots[0]
	bestSeq := lm.ageLocked(best)
	for _, r := range roots[1:] {
		if s := lm.ageLocked(r); s > bestSeq || (s == bestSeq && r > best) {
			best, bestSeq = r, s
		}
	}
	return best
}

// txnSeq extracts the trailing integer of a transaction id, or -1.
func txnSeq(root string) int {
	i := len(root)
	for i > 0 && root[i-1] >= '0' && root[i-1] <= '9' {
		i--
	}
	if i == len(root) {
		return -1
	}
	n := 0
	for _, c := range root[i:] {
		n = n*10 + int(c-'0')
	}
	return n
}

// Release drops every mode the owner holds on res.
func (lm *LockManager) Release(owner string, res Resource) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	st := lm.locks[res]
	if st == nil {
		return
	}
	lm.removeOwnerLocked(st, func(o string) bool { return o == owner })
	lm.cond.Broadcast()
}

// ReleaseOwner drops every lock the exact owner holds.
func (lm *LockManager) ReleaseOwner(owner string) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	for _, st := range lm.locks {
		lm.removeOwnerLocked(st, func(o string) bool { return o == owner })
	}
	lm.cond.Broadcast()
}

// ReleaseTree drops every lock held by root or any of its descendants and
// clears the root's doomed flag. The engine calls this at top-level commit
// and after abort cleanup.
func (lm *LockManager) ReleaseTree(root string) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	for _, st := range lm.locks {
		lm.removeOwnerLocked(st, func(o string) bool {
			return o == root || strings.HasPrefix(o, root+".")
		})
	}
	delete(lm.doomed, root)
	delete(lm.ages, root)
	lm.cond.Broadcast()
}

func (lm *LockManager) removeOwnerLocked(st *lockState, match func(string) bool) {
	kept := st.granted[:0]
	for _, g := range st.granted {
		if !match(g.owner) {
			kept = append(kept, g)
		}
	}
	st.granted = kept
}

// TransferToParent reassigns every lock of child to parent (closed nested
// commit: the parent inherits the child's locks).
func (lm *LockManager) TransferToParent(child, parent string) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	for _, st := range lm.locks {
		for i := range st.granted {
			if st.granted[i].owner == child {
				st.granted[i].owner = parent
			}
		}
	}
	lm.cond.Broadcast()
}

// HoldsAny reports whether owner holds any lock.
func (lm *LockManager) HoldsAny(owner string) bool {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	for _, st := range lm.locks {
		for _, g := range st.granted {
			if g.owner == owner {
				return true
			}
		}
	}
	return false
}

// Holders returns the owners currently granted on res, sorted.
func (lm *LockManager) Holders(res Resource) []string {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	st := lm.locks[res]
	if st == nil {
		return nil
	}
	set := map[string]bool{}
	for _, g := range st.granted {
		set[g.owner] = true
	}
	out := make([]string, 0, len(set))
	for o := range set {
		out = append(out, o)
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// SetDebugDump installs a hook receiving a lock-table dump on timeouts.
func (lm *LockManager) SetDebugDump(fn func(string)) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	lm.debugDump = fn
}

// dumpLocked renders requester, waits-for graph and non-empty lock states.
// Caller holds lm.mu.
func (lm *LockManager) dumpLocked(owner string, mode Mode, res Resource) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TIMEOUT %s wants %s on %s\nwaitsFor:\n", owner, mode, res.Name)
	for from, tos := range lm.waitsFor {
		for to, n := range tos {
			fmt.Fprintf(&b, "  %s -> %s (%d)\n", from, to, n)
		}
	}
	b.WriteString("locks:\n")
	for r, st := range lm.locks {
		if len(st.granted) == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %s:", r.Name)
		for _, g := range st.granted {
			fmt.Fprintf(&b, " %s/%s", g.owner, g.mode)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ClearDoomed removes a root's deadlock-victim mark and gives it the
// highest priority (age 0). A victim that has started rolling back calls
// this so its compensating operations can acquire locks — an aborting
// transaction must be able to undo itself, and must not be chosen as a
// victim again while doing so.
func (lm *LockManager) ClearDoomed(root string) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	delete(lm.doomed, root)
	lm.ages[root] = 0
	lm.cond.Broadcast()
}

// Doomed reports whether the root was chosen as a deadlock victim.
func (lm *LockManager) Doomed(root string) bool {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	return lm.doomed[root]
}

// Snapshot returns a copy of the counters.
func (lm *LockManager) Snapshot() Stats {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	return lm.stats
}

// String renders the lock table for debugging.
func (lm *LockManager) String() string {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	var b strings.Builder
	for res, st := range lm.locks {
		if len(st.granted) == 0 {
			continue
		}
		fmt.Fprintf(&b, "%s:", res.Name)
		for _, g := range st.granted {
			fmt.Fprintf(&b, " %s/%s", g.owner, g.mode)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
