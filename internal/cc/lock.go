// Package cc provides the lock-based concurrency-control runtime the
// transaction engine (internal/core) builds its protocols on:
//
//   - lock modes: classical shared/exclusive and semantic modes whose
//     compatibility is an object type's commutativity specification
//     (Definition 9) — two invocations may hold locks on the same object
//     simultaneously iff they commute;
//   - a blocking lock manager with owner hierarchies (owners are
//     hierarchical action ids, so ancestor bypass for closed nested
//     transactions is a prefix test), lock transfer to parents, waits-for
//     deadlock detection with youngest-victim abort, and an optional wait
//     timeout as a backstop;
//   - counters for the paper's evaluation: acquisitions, blocked acquires
//     (the "rate of conflicting accesses"), deadlocks and wait time.
//
// The lock table is sharded (resources hash to independently-locked
// shards, each lockState has its own condition variable) so the manager's
// own synchronization does not throttle the concurrency that
// commutativity-based modes admit: a release wakes only the released
// resource's waiters, and disjoint resources never contend on one mutex.
// Deadlock detection spans shards through a dedicated detector component
// (detector.go) whose cycle search runs outside every shard lock.
package cc

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/commut"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/txn"
)

// fpLockAcquire is the contention-path failpoint (internal/fault): armed
// with a delay it widens every conflict window (chaos runs use it to force
// deadlocks and overload); armed with an error it makes acquisitions fail,
// which the engine turns into subtree aborts.
var fpLockAcquire = fault.Point("lock.acquire")

// Sentinel errors returned by Acquire.
var (
	// ErrDeadlock is returned to the victim of a waits-for cycle.
	ErrDeadlock = errors.New("cc: deadlock victim")
	// ErrTimeout is returned when a lock wait exceeds the configured bound.
	ErrTimeout = errors.New("cc: lock wait timeout")
	// ErrDoomed is returned when the owner's transaction was already chosen
	// as a deadlock victim and must abort before acquiring anything else.
	ErrDoomed = errors.New("cc: transaction doomed by deadlock detection")
)

// Mode is a lock mode. Compatibility must be symmetric.
type Mode interface {
	CompatibleWith(other Mode) bool
	String() string
}

// RW is the classical two-mode lattice.
type RW int

// The two classical modes.
const (
	S RW = iota // shared
	X           // exclusive
)

// CompatibleWith implements Mode: only S/S is compatible.
func (m RW) CompatibleWith(other Mode) bool {
	o, ok := other.(RW)
	if !ok {
		return false // mixing mode families is always a conflict
	}
	return m == S && o == S
}

func (m RW) String() string {
	if m == S {
		return "S"
	}
	return "X"
}

// Semantic is a commutativity-based lock mode: holding Semantic{inv} on an
// object means the owner has an uncommitted invocation inv outstanding;
// another invocation may run concurrently iff the object type's
// specification says the two commute.
type Semantic struct {
	Inv  commut.Invocation
	Spec commut.Spec
}

// CompatibleWith implements Mode.
func (m Semantic) CompatibleWith(other Mode) bool {
	o, ok := other.(Semantic)
	if !ok {
		return false
	}
	return m.Spec.Commutes(m.Inv, o.Inv)
}

func (m Semantic) String() string { return "sem:" + m.Inv.String() }

// Resource identifies a lockable resource: a database object.
type Resource = txn.OID

// Stats are the lock manager's counters; Snapshot reads them without
// touching any lock-table mutex (the counters are atomics).
type Stats struct {
	// Acquires counts Acquire calls that eventually succeeded.
	Acquires int64
	// Blocked counts Acquire calls that had to wait at least once — the
	// runtime measure of "conflicting accesses".
	Blocked int64
	// Deadlocks counts aborted victims.
	Deadlocks int64
	// Timeouts counts waits that exceeded the bound.
	Timeouts int64
	// WaitTime is the total time spent blocked.
	WaitTime time.Duration
}

// statCounters are the live atomic counters behind Stats.
type statCounters struct {
	acquires  atomic.Int64
	blocked   atomic.Int64
	deadlocks atomic.Int64
	timeouts  atomic.Int64
	waitNanos atomic.Int64
}

type grant struct {
	owner string
	mode  Mode
	count int // re-entrant acquisitions by the same owner+mode
}

// waiter is one blocked Acquire in FIFO position (fairness mode).
type waiter struct {
	owner string
	mode  Mode
	seq   uint64
}

// LockManager is a blocking lock manager. Owners are hierarchical action
// ids (e.g. "T3", "T3.1.2"); the root prefix up to the first dot names the
// top-level transaction, which is the deadlock-detection granule.
type LockManager struct {
	shards    []*lockShard
	shardMask uint64

	det *detector

	// ancestorBypass, when true, lets a requester ignore conflicting locks
	// held by its proper ancestors (Moss's closed nested locking rule).
	ancestorBypass bool
	// fair, when true, prevents barging: a request also waits behind
	// EARLIER incompatible waiters, so a stream of compatible requests
	// (e.g. readers) cannot starve a conflicting one (a writer).
	fair    bool
	waitSeq atomic.Uint64
	// waitTimeout bounds each blocked acquire; 0 means no bound.
	waitTimeout time.Duration
	nshards     int

	// debugDump, when set, receives a full lock-table dump on each timeout.
	debugMu   sync.Mutex
	debugDump func(string)

	// testUnlockedWindow, when set (tests only, before any Acquire runs),
	// fires inside acquire's unlocked detector window — after edges are
	// charged and the cycle search ran, before the shard mutex is
	// re-acquired. It lets tests deterministically mutate the blocker set in
	// the window a production race would need to hit.
	testUnlockedWindow func()

	stats statCounters

	// Observability handles (WithObs). All nil when no registry is attached;
	// every method on them is nil-receiver safe, so the hot path carries no
	// "metrics enabled?" branches.
	obsWait    *obs.Histogram      // wait duration of each blocked acquire
	obsWaiting *obs.Gauge          // acquires currently blocked
	rec        *obs.FlightRecorder // block/grant/timeout/deadlock events
}

// Option configures a LockManager.
type Option func(*LockManager)

// WithAncestorBypass enables the closed-nested rule: locks held by proper
// ancestors of the requester do not block it.
func WithAncestorBypass() Option {
	return func(lm *LockManager) { lm.ancestorBypass = true }
}

// WithWaitTimeout bounds every lock wait.
func WithWaitTimeout(d time.Duration) Option {
	return func(lm *LockManager) { lm.waitTimeout = d }
}

// WithFairness enables FIFO ordering of conflicting waiters: later
// requests do not barge past earlier incompatible ones, so continuous
// compatible traffic (readers, commuting operations) cannot starve a
// conflicting request.
func WithFairness() Option {
	return func(lm *LockManager) { lm.fair = true }
}

// WithShards fixes the lock-table shard count (rounded up to a power of
// two, clamped to [1, 256]). The default is the next power of two at or
// above GOMAXPROCS; 1 reproduces the single-mutex table.
func WithShards(n int) Option {
	return func(lm *LockManager) { lm.nshards = normalizeShardCount(n) }
}

// WithObs attaches an observability registry: the manager publishes its
// Stats under "lock", observes each blocked acquire's wait time in the
// "lock.wait_ns" histogram, tracks currently blocked acquires in the
// "lock.waiting" gauge, and records block/grant/timeout/deadlock events in
// the registry's flight recorder.
func WithObs(reg *obs.Registry) Option {
	return func(lm *LockManager) {
		lm.obsWait = reg.Histogram("lock.wait_ns", obs.LatencyBounds())
		lm.obsWaiting = reg.Gauge("lock.waiting")
		lm.rec = reg.Recorder()
		reg.PublishFunc("lock", func() any { return lm.Snapshot() })
	}
}

// NewLockManager returns a lock manager with the given options.
func NewLockManager(opts ...Option) *LockManager {
	lm := &LockManager{
		det:     newDetector(),
		nshards: defaultShardCount(),
	}
	for _, o := range opts {
		o(lm)
	}
	lm.shards = make([]*lockShard, lm.nshards)
	for i := range lm.shards {
		lm.shards[i] = &lockShard{locks: make(map[Resource]*lockState)}
	}
	lm.shardMask = uint64(lm.nshards - 1)
	return lm
}

// ShardCount returns the number of lock-table shards.
func (lm *LockManager) ShardCount() int { return len(lm.shards) }

// RootOf returns the top-level transaction id of an owner id.
func RootOf(owner string) string {
	if i := strings.IndexByte(owner, '.'); i >= 0 {
		return owner[:i]
	}
	return owner
}

// isAncestor reports whether holder is a proper ancestor of requester in
// the hierarchical id scheme.
func isAncestor(holder, requester string) bool {
	return len(requester) > len(holder)+1 && strings.HasPrefix(requester, holder+".")
}

// blockRef names one conflicting holder or (in fairness mode) earlier
// waiter.
type blockRef struct {
	owner string
	mode  Mode
}

// skippable reports whether a conflicting entry never blocks this owner:
// itself, its own transaction's other subtransactions, or (closed nesting)
// a proper ancestor.
func (lm *LockManager) skippable(owner, other string) bool {
	if other == owner {
		return true // re-entrant: an owner never conflicts with itself
	}
	if RootOf(other) == RootOf(owner) {
		// Same top-level transaction: sibling subtransactions are the
		// application's own (intra-transaction) parallelism; the paper
		// handles their ordering via precedence (Definition 9: actions
		// of the same process are never in conflict), not isolation.
		return true
	}
	return lm.ancestorBypass && isAncestor(other, owner)
}

// blockers returns the entries incompatible with the request: conflicting
// granted locks, plus — in fairness mode — conflicting waiters queued
// before mySeq (use ^uint64(0) for a request not yet queued: everyone
// already waiting counts as earlier). Caller holds the shard mutex.
func (lm *LockManager) blockers(owner string, st *lockState, mode Mode, mySeq uint64) []blockRef {
	var out []blockRef
	for _, g := range st.granted {
		if lm.skippable(owner, g.owner) {
			continue
		}
		if !mode.CompatibleWith(g.mode) {
			out = append(out, blockRef{owner: g.owner, mode: g.mode})
		}
	}
	if lm.fair {
		for _, w := range st.waiting {
			if w.seq >= mySeq || lm.skippable(owner, w.owner) {
				continue
			}
			if !mode.CompatibleWith(w.mode) {
				out = append(out, blockRef{owner: w.owner, mode: w.mode})
			}
		}
	}
	return out
}

// waitEdges derives the waits-for edge multiset (blocking root → count) a
// blocked acquire of root charges in the detector for a blocker set.
func waitEdges(root string, bl []blockRef) map[string]int {
	edges := make(map[string]int)
	for _, b := range bl {
		if br := RootOf(b.owner); br != root {
			edges[br]++
		}
	}
	return edges
}

// sameEdges reports whether two edge multisets are equal.
func sameEdges(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for to, n := range a {
		if b[to] != n {
			return false
		}
	}
	return true
}

// Acquire blocks until the owner holds res in the given mode, or returns
// ErrDeadlock / ErrDoomed / ErrTimeout. Re-acquisition by the same owner
// and mode is re-entrant.
func (lm *LockManager) Acquire(owner string, res Resource, mode Mode) error {
	_, err := lm.AcquireEx(owner, res, mode)
	return err
}

// AcquireEx is Acquire plus provenance: the returned AcquireInfo reports
// whether the call blocked, for how long, which holders it last observed
// blocking it, and — on a deadlock abort — the waits-for cycle that doomed
// it. This is what the span layer turns into blocked-on / victim-of /
// timeout edges.
func (lm *LockManager) AcquireEx(owner string, res Resource, mode Mode) (AcquireInfo, error) {
	info, err := lm.acquire(owner, res, mode)
	if err != nil && errors.Is(err, ErrTimeout) {
		if fn := lm.debugHook(); fn != nil {
			fn(lm.dump(owner, mode, res))
		}
	}
	return info, err
}

func (lm *LockManager) acquire(owner string, res Resource, mode Mode) (info AcquireInfo, err error) {
	if err := fpLockAcquire.Inject(); err != nil {
		return AcquireInfo{}, err
	}
	root := RootOf(owner)
	if lm.det.isDoomed(root) {
		return AcquireInfo{Cycle: lm.det.causeOf(root)}, ErrDoomed
	}
	sh := lm.shardFor(res)

	var (
		blocked      bool
		start        time.Time
		timedOut     bool // guarded by sh.mu
		timer        *time.Timer
		token        *waiter // our FIFO position once blocked (fairness mode)
		wake         *wakeHandle
		waitingOn    map[string]int // roots this call currently charges in the detector
		lastBlockers []blockRef     // the blockers observed on the most recent loop pass
	)

	sh.mu.Lock()
	st := sh.state(res)
	defer func() {
		// Every return path below holds sh.mu.
		if token != nil {
			st.removeWaiter(token)
			st.cond.Broadcast() // later waiters may now be first in line
		}
		sh.gcLocked(res)
		sh.mu.Unlock()
		if timer != nil {
			timer.Stop()
		}
		if wake != nil {
			lm.det.unregister(root, wake)
		}
		lm.det.discharge(root, waitingOn)
		if blocked {
			wait := time.Since(start)
			lm.stats.waitNanos.Add(int64(wait))
			lm.obsWait.ObserveDuration(wait)
			lm.obsWaiting.Add(-1)
			info.Blocked = true
			info.Wait = wait
		}
		info.Blockers = blockerRefs(lastBlockers)
		info.TimedOut = errors.Is(err, ErrTimeout)
		if errors.Is(err, ErrDeadlock) || errors.Is(err, ErrDoomed) {
			info.Cycle = lm.det.causeOf(root)
		}
	}()

	for {
		if lm.det.isDoomed(root) {
			// No deadlock count here: the victim was counted once when it was
			// doomed (detect reports fresh). A victim with several blocked
			// sibling acquires observes its doom once per acquire, but it is
			// still ONE aborted victim.
			return info, ErrDeadlock
		}
		if timedOut {
			lm.stats.timeouts.Add(1)
			lm.rec.Record(obs.Event{Kind: obs.EvLockTimeout, Actor: owner,
				Object: res.Name, Dur: time.Since(start)})
			// Name the blockers from the last observed set, not the
			// re-fetched state: the idle state may have been collected and
			// recreated while the shard lock was dropped, and a fresh grant
			// set would misreport who caused the wait.
			held := make([]string, 0, len(lastBlockers))
			for _, b := range lastBlockers {
				held = append(held, b.owner+"/"+b.mode.String())
			}
			return info, fmt.Errorf("%w: %s wants %s on %s blocked by %s",
				ErrTimeout, owner, mode, res.Name, strings.Join(held, ", "))
		}
		mySeq := ^uint64(0)
		if token != nil {
			mySeq = token.seq
		}
		bl := lm.blockers(owner, st, mode, mySeq)
		if len(bl) == 0 {
			grantLocked(st, owner, mode)
			lm.stats.acquires.Add(1)
			if blocked {
				lm.rec.Record(obs.Event{Kind: obs.EvLockGrant, Actor: owner,
					Object: res.Name, Dur: time.Since(start)})
			}
			return info, nil
		}
		lastBlockers = bl
		if !blocked {
			blocked = true
			start = time.Now()
			lm.stats.blocked.Add(1)
			lm.obsWaiting.Add(1)
			lm.rec.Record(obs.Event{Kind: obs.EvLockBlock, Actor: owner,
				Object: res.Name, N: int64(len(bl)), Note: blockNote(mode, bl)})
			if lm.fair {
				token = &waiter{owner: owner, mode: mode, seq: lm.waitSeq.Add(1)}
				st.waiting = append(st.waiting, token)
			}
			// The detector wakes us (to fail with ErrDeadlock) if we are
			// chosen as victim; broadcast through the current map entry in
			// case the state was collected and recreated meanwhile.
			wake = lm.det.register(root, func() {
				sh.mu.Lock()
				if cur, ok := sh.locks[res]; ok {
					cur.cond.Broadcast()
				}
				sh.mu.Unlock()
			})
			if lm.waitTimeout > 0 {
				timer = time.AfterFunc(lm.waitTimeout, func() {
					sh.mu.Lock()
					timedOut = true
					if cur, ok := sh.locks[res]; ok {
						cur.cond.Broadcast()
					}
					sh.mu.Unlock()
				})
			}
		}

		// Charge this round's waits-for edges and run the cycle search with
		// the shard lock dropped — the detector has its own lock, and a
		// doomed victim on another shard is woken via its registered wake
		// callback, which needs that shard's mutex.
		sh.mu.Unlock()
		edges := waitEdges(root, bl)
		lm.det.recharge(root, waitingOn, edges)
		waitingOn = edges
		victim, freshVictim := lm.det.detect(root)
		if freshVictim {
			// Count the VICTIM, exactly once per victimization: detect reports
			// fresh only for the call that doomed it. Counting at the acquires
			// that observe the doom instead would tally one deadlock per
			// blocked call of the victim.
			lm.stats.deadlocks.Add(1)
			lm.rec.Record(obs.Event{Kind: obs.EvLockDeadlock, Actor: victim,
				Object: res.Name, Note: "youngest on waits-for cycle through " + root})
		}
		if fn := lm.testUnlockedWindow; fn != nil {
			fn()
		}
		sh.mu.Lock()
		st = sh.state(res) // the idle state may have been collected while unlocked
		if victim == root {
			return info, ErrDeadlock
		}
		if lm.det.isDoomed(root) || timedOut {
			continue
		}
		mySeq = ^uint64(0)
		if token != nil {
			mySeq = token.seq
		}
		bl = lm.blockers(owner, st, mode, mySeq)
		if len(bl) == 0 {
			continue // unblocked while the detector ran; grant at loop top
		}
		lastBlockers = bl
		if !sameEdges(waitEdges(root, bl), waitingOn) {
			// The blocker set changed during the unlocked window: a charged
			// holder released (its broadcast was lost — we were not yet
			// sleeping) and another transaction barged in. Sleeping now would
			// leave the detector charged with stale waits-for edges, hiding
			// any cycle that forms through the new blockers; go back to the
			// loop top to recharge and re-run detection instead.
			continue
		}
		st.sleepers++
		st.cond.Wait()
		st.sleepers--
	}
}

// blockNote renders a flight-recorder note for a freshly blocked acquire:
// the requested mode plus up to three blocking holders.
func blockNote(mode Mode, bl []blockRef) string {
	var b strings.Builder
	b.WriteString(mode.String())
	b.WriteString(" <-")
	for i, r := range bl {
		if i == 3 {
			b.WriteString(" ...")
			break
		}
		b.WriteByte(' ')
		b.WriteString(r.owner)
		b.WriteByte('/')
		b.WriteString(r.mode.String())
	}
	return b.String()
}

// grantLocked records the grant. Caller holds the shard mutex.
func grantLocked(st *lockState, owner string, mode Mode) {
	for i := range st.granted {
		if st.granted[i].owner == owner && st.granted[i].mode.String() == mode.String() {
			st.granted[i].count++
			return
		}
	}
	st.granted = append(st.granted, grant{owner: owner, mode: mode, count: 1})
}

// SetAge overrides the age of a transaction: a restarted transaction that
// keeps its original (older) age stops being the default deadlock victim,
// preventing restart starvation. Cleared by ReleaseTree.
func (lm *LockManager) SetAge(root string, age int64) { lm.det.setAge(root, age) }

// txnSeq extracts the trailing integer of a transaction id, or -1.
func txnSeq(root string) int {
	i := len(root)
	for i > 0 && root[i-1] >= '0' && root[i-1] <= '9' {
		i--
	}
	if i == len(root) {
		return -1
	}
	n := 0
	for _, c := range root[i:] {
		n = n*10 + int(c-'0')
	}
	return n
}

// Release drops every mode the owner holds on res and wakes that
// resource's waiters.
func (lm *LockManager) Release(owner string, res Resource) {
	sh := lm.shardFor(res)
	sh.mu.Lock()
	if st, ok := sh.locks[res]; ok {
		removeOwnerLocked(st, func(o string) bool { return o == owner })
		st.cond.Broadcast()
		sh.gcLocked(res)
	}
	sh.mu.Unlock()
}

// ReleaseOwner drops every lock the exact owner holds.
func (lm *LockManager) ReleaseOwner(owner string) {
	lm.releaseMatching(func(o string) bool { return o == owner })
}

// ReleaseTree drops every lock held by root or any of its descendants and
// clears the root's detector state (doomed flag, age override). The engine
// calls this at top-level commit and after abort cleanup.
func (lm *LockManager) ReleaseTree(root string) {
	prefix := root + "."
	lm.releaseMatching(func(o string) bool {
		return o == root || strings.HasPrefix(o, prefix)
	})
	lm.det.forget(root)
}

// releaseMatching removes matching grants across all shards, waking only
// the resources whose grant set actually changed.
func (lm *LockManager) releaseMatching(match func(string) bool) {
	for _, sh := range lm.shards {
		sh.mu.Lock()
		for res, st := range sh.locks {
			if removeOwnerLocked(st, match) {
				st.cond.Broadcast()
				sh.gcLocked(res)
			}
		}
		sh.mu.Unlock()
	}
}

// removeOwnerLocked drops matching grants and reports whether any were
// removed. Caller holds the shard mutex.
func removeOwnerLocked(st *lockState, match func(string) bool) bool {
	kept := st.granted[:0]
	for _, g := range st.granted {
		if !match(g.owner) {
			kept = append(kept, g)
		}
	}
	changed := len(kept) != len(st.granted)
	st.granted = kept
	return changed
}

// TransferToParent reassigns every lock of child to parent (closed nested
// commit: the parent inherits the child's locks).
func (lm *LockManager) TransferToParent(child, parent string) {
	for _, sh := range lm.shards {
		sh.mu.Lock()
		for _, st := range sh.locks {
			changed := false
			for i := range st.granted {
				if st.granted[i].owner == child {
					st.granted[i].owner = parent
					changed = true
				}
			}
			if changed {
				// An ancestor-bypass waiter may be unblocked by the move.
				st.cond.Broadcast()
			}
		}
		sh.mu.Unlock()
	}
}

// HoldsAny reports whether owner holds any lock.
func (lm *LockManager) HoldsAny(owner string) bool {
	for _, sh := range lm.shards {
		sh.mu.Lock()
		for _, st := range sh.locks {
			for _, g := range st.granted {
				if g.owner == owner {
					sh.mu.Unlock()
					return true
				}
			}
		}
		sh.mu.Unlock()
	}
	return false
}

// Holders returns the owners currently granted on res, sorted.
func (lm *LockManager) Holders(res Resource) []string {
	sh := lm.shardFor(res)
	sh.mu.Lock()
	st := sh.locks[res]
	if st == nil {
		sh.mu.Unlock()
		return nil
	}
	set := map[string]bool{}
	for _, g := range st.granted {
		set[g.owner] = true
	}
	sh.mu.Unlock()
	out := make([]string, 0, len(set))
	for o := range set {
		out = append(out, o)
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// SetDebugDump installs a hook receiving a lock-table dump on timeouts.
func (lm *LockManager) SetDebugDump(fn func(string)) {
	lm.debugMu.Lock()
	lm.debugDump = fn
	lm.debugMu.Unlock()
}

func (lm *LockManager) debugHook() func(string) {
	lm.debugMu.Lock()
	defer lm.debugMu.Unlock()
	return lm.debugDump
}

// dump renders requester, waits-for graph and non-empty lock states. It
// locks one shard at a time, so the rendering is only per-shard consistent
// (diagnostic use only).
func (lm *LockManager) dump(owner string, mode Mode, res Resource) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TIMEOUT %s wants %s on %s\nwaitsFor:\n", owner, mode, res.Name)
	for from, tos := range lm.det.edges() {
		for to, n := range tos {
			fmt.Fprintf(&b, "  %s -> %s (%d)\n", from, to, n)
		}
	}
	b.WriteString("locks:\n")
	for _, sh := range lm.shards {
		sh.mu.Lock()
		for r, st := range sh.locks {
			if len(st.granted) == 0 {
				continue
			}
			fmt.Fprintf(&b, "  %s:", r.Name)
			for _, g := range st.granted {
				fmt.Fprintf(&b, " %s/%s", g.owner, g.mode)
			}
			b.WriteByte('\n')
		}
		sh.mu.Unlock()
	}
	return b.String()
}

// ClearDoomed removes a root's deadlock-victim mark and gives it the
// highest priority (age 0). A victim that has started rolling back calls
// this so its compensating operations can acquire locks — an aborting
// transaction must be able to undo itself, and must not be chosen as a
// victim again while doing so.
func (lm *LockManager) ClearDoomed(root string) { lm.det.clearDoomed(root) }

// Doomed reports whether the root was chosen as a deadlock victim.
func (lm *LockManager) Doomed(root string) bool { return lm.det.isDoomed(root) }

// Snapshot returns a copy of the counters. It reads atomics only — no
// lock-table mutex is taken, so monitoring never contends with acquires.
func (lm *LockManager) Snapshot() Stats {
	return Stats{
		Acquires:  lm.stats.acquires.Load(),
		Blocked:   lm.stats.blocked.Load(),
		Deadlocks: lm.stats.deadlocks.Load(),
		Timeouts:  lm.stats.timeouts.Load(),
		WaitTime:  time.Duration(lm.stats.waitNanos.Load()),
	}
}

// String renders the lock table for debugging.
func (lm *LockManager) String() string {
	var b strings.Builder
	for _, sh := range lm.shards {
		sh.mu.Lock()
		for res, st := range sh.locks {
			if len(st.granted) == 0 {
				continue
			}
			fmt.Fprintf(&b, "%s:", res.Name)
			for _, g := range st.granted {
				fmt.Fprintf(&b, " %s/%s", g.owner, g.mode)
			}
			b.WriteByte('\n')
		}
		sh.mu.Unlock()
	}
	return b.String()
}
