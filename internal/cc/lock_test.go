package cc

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/commut"
	"repro/internal/txn"
)

func res(name string) Resource { return txn.OID{Type: "page", Name: name} }

func TestRWCompatibility(t *testing.T) {
	cases := []struct {
		a, b Mode
		want bool
	}{
		{S, S, true},
		{S, X, false},
		{X, S, false},
		{X, X, false},
	}
	for _, c := range cases {
		if got := c.a.CompatibleWith(c.b); got != c.want {
			t.Errorf("%v/%v = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	if S.String() != "S" || X.String() != "X" {
		t.Fatal("mode strings wrong")
	}
}

func TestSemanticCompatibility(t *testing.T) {
	spec := commut.KeyedSpec([]string{"search"}, []string{"insert"})
	ins1 := Semantic{Inv: commut.Invocation{Method: "insert", Params: []string{"k1"}}, Spec: spec}
	ins2 := Semantic{Inv: commut.Invocation{Method: "insert", Params: []string{"k2"}}, Spec: spec}
	ins1b := Semantic{Inv: commut.Invocation{Method: "insert", Params: []string{"k1"}}, Spec: spec}

	if !ins1.CompatibleWith(ins2) {
		t.Fatal("distinct-key inserts must be compatible")
	}
	if ins1.CompatibleWith(ins1b) {
		t.Fatal("same-key inserts must conflict")
	}
	if ins1.CompatibleWith(X) || X.CompatibleWith(ins1) {
		t.Fatal("mode families must not mix")
	}
	if ins1.String() == "" {
		t.Fatal("empty string")
	}
}

func TestAcquireReleaseBasic(t *testing.T) {
	lm := NewLockManager()
	if err := lm.Acquire("T1", res("P"), X); err != nil {
		t.Fatal(err)
	}
	if !lm.HoldsAny("T1") {
		t.Fatal("T1 must hold a lock")
	}
	// Re-entrant.
	if err := lm.Acquire("T1", res("P"), X); err != nil {
		t.Fatal(err)
	}
	// Shared readers coexist.
	if err := lm.Acquire("T2", res("Q"), S); err != nil {
		t.Fatal(err)
	}
	if err := lm.Acquire("T3", res("Q"), S); err != nil {
		t.Fatal(err)
	}
	holders := lm.Holders(res("Q"))
	if len(holders) != 2 {
		t.Fatalf("holders = %v", holders)
	}
	lm.Release("T1", res("P"))
	if lm.HoldsAny("T1") {
		t.Fatal("release failed")
	}
	st := lm.Snapshot()
	if st.Acquires != 4 || st.Blocked != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBlockingAndWakeup(t *testing.T) {
	lm := NewLockManager()
	if err := lm.Acquire("T1", res("P"), X); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- lm.Acquire("T2", res("P"), X)
	}()
	select {
	case err := <-done:
		t.Fatalf("T2 acquired too early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	lm.Release("T1", res("P"))
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("T2 never woke up")
	}
	st := lm.Snapshot()
	if st.Blocked != 1 {
		t.Fatalf("Blocked = %d", st.Blocked)
	}
	if st.WaitTime <= 0 {
		t.Fatal("wait time not recorded")
	}
}

func TestSameRootNoSelfBlocking(t *testing.T) {
	lm := NewLockManager()
	if err := lm.Acquire("T1.1", res("P"), X); err != nil {
		t.Fatal(err)
	}
	// A different subtransaction of the same top-level transaction passes.
	if err := lm.Acquire("T1.2", res("P"), X); err != nil {
		t.Fatal(err)
	}
	// A different transaction blocks.
	errCh := make(chan error, 1)
	go func() { errCh <- lm.Acquire("T2.1", res("P"), X) }()
	select {
	case <-errCh:
		t.Fatal("T2.1 must block")
	case <-time.After(50 * time.Millisecond):
	}
	lm.ReleaseTree("T1")
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
}

func TestAncestorBypass(t *testing.T) {
	lm := NewLockManager(WithAncestorBypass())
	if err := lm.Acquire("T1", res("P"), X); err != nil {
		t.Fatal(err)
	}
	// Child of T1 passes under Moss's rule; stranger blocks. (Note: the
	// same-root rule already covers descendants; this exercises the
	// explicit bypass with differently-rooted hierarchies.)
	if err := lm.Acquire("T1.3.1", res("P"), X); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetection(t *testing.T) {
	lm := NewLockManager()
	if err := lm.Acquire("T1", res("A"), X); err != nil {
		t.Fatal(err)
	}
	if err := lm.Acquire("T2", res("B"), X); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		errs[0] = lm.Acquire("T1", res("B"), X)
		if errs[0] != nil {
			lm.ReleaseTree("T1") // abort: free the waits the other side has on us
		}
	}()
	time.Sleep(30 * time.Millisecond) // let T1 block first
	go func() {
		defer wg.Done()
		errs[1] = lm.Acquire("T2", res("A"), X)
		if errs[1] != nil {
			lm.ReleaseTree("T2")
		}
	}()
	wg.Wait()

	// Exactly one is the victim (the youngest: T2), and the survivor's
	// blocked acquire succeeds once the victim's locks are gone.
	if !errors.Is(errs[1], ErrDeadlock) {
		t.Fatalf("youngest (T2) should be the victim: %v", errs)
	}
	if errs[0] != nil {
		t.Fatalf("survivor T1 should acquire after victim abort: %v", errs[0])
	}
	lm.ReleaseTree("T1")
	st := lm.Snapshot()
	if st.Deadlocks != 1 {
		t.Fatalf("Deadlocks = %d", st.Deadlocks)
	}
}

func TestDoomedFailsFast(t *testing.T) {
	lm := NewLockManager()
	lm.det.forceDoom("T9")
	if err := lm.Acquire("T9.1", res("A"), X); !errors.Is(err, ErrDoomed) {
		t.Fatalf("err = %v, want ErrDoomed", err)
	}
	lm.ReleaseTree("T9")
	if lm.Doomed("T9") {
		t.Fatal("ReleaseTree must clear doomed")
	}
	if err := lm.Acquire("T9.1", res("A"), X); err != nil {
		t.Fatalf("after cleanup: %v", err)
	}
}

func TestWaitTimeout(t *testing.T) {
	lm := NewLockManager(WithWaitTimeout(60 * time.Millisecond))
	if err := lm.Acquire("T1", res("P"), X); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := lm.Acquire("T2", res("P"), X)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if time.Since(start) < 50*time.Millisecond {
		t.Fatal("returned before the timeout")
	}
	if lm.Snapshot().Timeouts != 1 {
		t.Fatal("timeout not counted")
	}
}

func TestTransferToParent(t *testing.T) {
	lm := NewLockManager()
	if err := lm.Acquire("T1.1", res("P"), X); err != nil {
		t.Fatal(err)
	}
	lm.TransferToParent("T1.1", "T1")
	holders := lm.Holders(res("P"))
	if len(holders) != 1 || holders[0] != "T1" {
		t.Fatalf("holders = %v", holders)
	}
	if lm.HoldsAny("T1.1") {
		t.Fatal("child still holds")
	}
}

func TestSemanticLocksConcurrentInserts(t *testing.T) {
	// The paper's leaf: distinct-key inserts hold semantic locks together;
	// a same-key search must wait.
	spec := commut.KeyedSpec([]string{"search"}, []string{"insert"})
	leaf := txn.OID{Type: "btreenode", Name: "Leaf11"}
	lm := NewLockManager()

	mode := func(m, k string) Semantic {
		return Semantic{Inv: commut.Invocation{Method: m, Params: []string{k}}, Spec: spec}
	}
	if err := lm.Acquire("T1.1", leaf, mode("insert", "DBS")); err != nil {
		t.Fatal(err)
	}
	if err := lm.Acquire("T2.1", leaf, mode("insert", "DBMS")); err != nil {
		t.Fatal(err) // commuting: granted concurrently
	}
	errCh := make(chan error, 1)
	go func() { errCh <- lm.Acquire("T3.1", leaf, mode("search", "DBS")) }()
	select {
	case <-errCh:
		t.Fatal("same-key search must block behind insert(DBS)")
	case <-time.After(50 * time.Millisecond):
	}
	lm.ReleaseTree("T1")
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
}

func TestReleaseUnknown(t *testing.T) {
	lm := NewLockManager()
	// Must not panic.
	lm.Release("T1", res("never"))
	lm.ReleaseOwner("T1")
	lm.ReleaseTree("T1")
}

func TestRootOfAndSeq(t *testing.T) {
	if RootOf("T12.3.4") != "T12" || RootOf("T7") != "T7" {
		t.Fatal("RootOf wrong")
	}
	if txnSeq("T12") != 12 || txnSeq("Txn") != -1 || txnSeq("T0") != 0 {
		t.Fatal("txnSeq wrong")
	}
	lm := NewLockManager()
	if lm.det.youngest([]string{"T3", "T12", "T7"}) != "T12" {
		t.Fatal("youngest wrong")
	}
	lm.SetAge("T3", 99)
	if lm.det.youngest([]string{"T3", "T12", "T7"}) != "T3" {
		t.Fatal("SetAge must override the id-derived age")
	}
	lm.ReleaseTree("T3")
	if lm.det.youngest([]string{"T3", "T12", "T7"}) != "T12" {
		t.Fatal("ReleaseTree must clear the age override")
	}
}

func TestStringRendering(t *testing.T) {
	lm := NewLockManager()
	_ = lm.Acquire("T1", res("P"), X)
	if lm.String() == "" {
		t.Fatal("empty lock table rendering")
	}
}

// Property: mutual exclusion — with random X-lock traffic, no two distinct
// roots ever hold the same resource simultaneously.
func TestPropertyMutualExclusion(t *testing.T) {
	f := func(seed int64) bool {
		lm := NewLockManager(WithWaitTimeout(2 * time.Second))
		r := rand.New(rand.NewSource(seed))
		resources := []Resource{res("A"), res("B"), res("C")}
		var mu sync.Mutex
		holding := map[Resource]string{}
		violation := false

		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(id int, seed int64) {
				defer wg.Done()
				rr := rand.New(rand.NewSource(seed))
				owner := fmt.Sprintf("T%d", id)
				for i := 0; i < 30; i++ {
					re := resources[rr.Intn(len(resources))]
					if err := lm.Acquire(owner, re, X); err != nil {
						lm.ReleaseTree(owner)
						continue
					}
					mu.Lock()
					if h, ok := holding[re]; ok && h != owner {
						violation = true
					}
					holding[re] = owner
					mu.Unlock()

					mu.Lock()
					delete(holding, re)
					mu.Unlock()
					lm.Release(owner, re)
				}
				lm.ReleaseTree(owner)
			}(g, r.Int63())
		}
		wg.Wait()
		return !violation
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Property: no lost grants — after all goroutines release everything, the
// lock table is empty.
func TestPropertyCleanRelease(t *testing.T) {
	lm := NewLockManager(WithWaitTimeout(time.Second))
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			owner := fmt.Sprintf("T%d.1", id)
			for i := 0; i < 50; i++ {
				re := res(fmt.Sprintf("R%d", i%5))
				if err := lm.Acquire(owner, re, S); err == nil {
					lm.Release(owner, re)
				}
			}
			lm.ReleaseTree(fmt.Sprintf("T%d", id))
		}(g)
	}
	wg.Wait()
	for i := 0; i < 5; i++ {
		if h := lm.Holders(res(fmt.Sprintf("R%d", i))); len(h) != 0 {
			t.Fatalf("R%d still held by %v", i, h)
		}
	}
}

// TestThreeWayDeadlock: a cycle across three transactions is broken.
func TestThreeWayDeadlock(t *testing.T) {
	lm := NewLockManager()
	for i, r := range []Resource{res("A"), res("B"), res("C")} {
		if err := lm.Acquire(fmt.Sprintf("T%d", i+1), r, X); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, 3)
	next := []Resource{res("B"), res("C"), res("A")}
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = lm.Acquire(fmt.Sprintf("T%d", i+1), next[i], X)
			// Commit or abort: either way the transaction ends and frees
			// its locks, letting the remaining waiters drain.
			lm.ReleaseTree(fmt.Sprintf("T%d", i+1))
		}(i)
		time.Sleep(20 * time.Millisecond)
	}
	wg.Wait()
	victims := 0
	for _, err := range errs {
		if errors.Is(err, ErrDeadlock) || errors.Is(err, ErrDoomed) {
			victims++
		}
	}
	if victims == 0 {
		t.Fatalf("no victim chosen: %v", errs)
	}
	for i := 1; i <= 3; i++ {
		lm.ReleaseTree(fmt.Sprintf("T%d", i))
	}
}

func BenchmarkAcquireReleaseUncontended(b *testing.B) {
	lm := NewLockManager()
	r := res("P")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := lm.Acquire("T1", r, X); err != nil {
			b.Fatal(err)
		}
		lm.Release("T1", r)
	}
}

func BenchmarkSemanticAcquire(b *testing.B) {
	spec := commut.KeyedSpec([]string{"search"}, []string{"insert"})
	lm := NewLockManager()
	leaf := txn.OID{Type: "btreenode", Name: "L"}
	m := Semantic{Inv: commut.Invocation{Method: "insert", Params: []string{"k"}}, Spec: spec}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := lm.Acquire("T1", leaf, m); err != nil {
			b.Fatal(err)
		}
		lm.Release("T1", leaf)
	}
}

// TestRestartAgeBeatsStarvation: with SetAge, a restarted transaction
// keeps seniority over younger newcomers in victim selection.
func TestRestartAgeBeatsStarvation(t *testing.T) {
	lm := NewLockManager()
	// Simulate: T5 (restart of T2, keeps age 2) deadlocks with fresh T9.
	lm.SetAge("T5", 2)
	if err := lm.Acquire("T5", res("A"), X); err != nil {
		t.Fatal(err)
	}
	if err := lm.Acquire("T9", res("B"), X); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		errs[0] = lm.Acquire("T5", res("B"), X)
		lm.ReleaseTree("T5")
	}()
	time.Sleep(30 * time.Millisecond)
	go func() {
		defer wg.Done()
		errs[1] = lm.Acquire("T9", res("A"), X)
		lm.ReleaseTree("T9")
	}()
	wg.Wait()
	// T9 (fresh, age 9 > 2) must be the victim despite T5's higher id.
	if errs[0] != nil {
		t.Fatalf("restarted senior T5 must survive: %v", errs[0])
	}
	if !errors.Is(errs[1], ErrDeadlock) {
		t.Fatalf("fresh T9 must be the victim: %v", errs[1])
	}
}

// TestClearDoomedAllowsRollbackAcquires: a doomed transaction that calls
// ClearDoomed can acquire locks again (its rollback needs them) and is not
// re-chosen as victim against a younger transaction.
func TestClearDoomedAllowsRollbackAcquires(t *testing.T) {
	lm := NewLockManager()
	lm.det.forceDoom("T3")
	if err := lm.Acquire("T3.1", res("A"), X); !errors.Is(err, ErrDoomed) {
		t.Fatalf("doomed acquire: %v", err)
	}
	lm.ClearDoomed("T3")
	if err := lm.Acquire("T3.1", res("A"), X); err != nil {
		t.Fatalf("post-clear acquire: %v", err)
	}
	// Age 0 means T3 now always wins victim selection.
	if lm.det.youngest([]string{"T3", "T1"}) != "T1" {
		t.Fatal("cleared transaction must have top priority")
	}
	lm.ReleaseTree("T3")
}

// TestFairnessPreventsReaderBarging: under WithFairness, a continuous
// stream of readers cannot starve a waiting writer — once the writer
// queues, later readers wait behind it.
func TestFairnessPreventsReaderBarging(t *testing.T) {
	lm := NewLockManager(WithFairness())
	if err := lm.Acquire("T1", res("P"), S); err != nil {
		t.Fatal(err)
	}
	writer := make(chan error, 1)
	go func() { writer <- lm.Acquire("T2", res("P"), X) }()
	// Wait until the writer is queued.
	for i := 0; ; i++ {
		if lm.waiterCount(res("P")) == 1 {
			break
		}
		if i > 200 {
			t.Fatal("writer never queued")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// A later reader must NOT barge past the queued writer.
	reader := make(chan error, 1)
	go func() { reader <- lm.Acquire("T3", res("P"), S) }()
	select {
	case err := <-reader:
		t.Fatalf("reader barged past the waiting writer: %v", err)
	case <-time.After(80 * time.Millisecond):
	}
	// Release the original reader: the writer gets the lock first.
	lm.Release("T1", res("P"))
	if err := <-writer; err != nil {
		t.Fatal(err)
	}
	// The late reader still waits (writer holds X)...
	select {
	case err := <-reader:
		t.Fatalf("reader acquired against a held X lock: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	lm.Release("T2", res("P"))
	if err := <-reader; err != nil {
		t.Fatal(err)
	}
	lm.ReleaseTree("T1")
	lm.ReleaseTree("T2")
	lm.ReleaseTree("T3")
}

// TestUnfairAllowsBarging documents the default: without fairness, a
// compatible reader IS granted past a waiting writer.
func TestUnfairAllowsBarging(t *testing.T) {
	lm := NewLockManager()
	if err := lm.Acquire("T1", res("P"), S); err != nil {
		t.Fatal(err)
	}
	writer := make(chan error, 1)
	go func() { writer <- lm.Acquire("T2", res("P"), X) }()
	time.Sleep(30 * time.Millisecond)
	// The reader barges (S compatible with S; waiters invisible).
	if err := lm.Acquire("T3", res("P"), S); err != nil {
		t.Fatalf("default mode must allow the compatible grant: %v", err)
	}
	lm.Release("T1", res("P"))
	lm.Release("T3", res("P"))
	if err := <-writer; err != nil {
		t.Fatal(err)
	}
	lm.ReleaseTree("T2")
}

// TestFairnessDeadlockStillDetected: queue-induced waits participate in
// normal deadlock detection via the lock-holder edges.
func TestFairnessDeadlockStillDetected(t *testing.T) {
	lm := NewLockManager(WithFairness(), WithWaitTimeout(2*time.Second))
	if err := lm.Acquire("T1", res("A"), X); err != nil {
		t.Fatal(err)
	}
	if err := lm.Acquire("T2", res("B"), X); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		errs[0] = lm.Acquire("T1", res("B"), X)
		lm.ReleaseTree("T1")
	}()
	time.Sleep(30 * time.Millisecond)
	go func() {
		defer wg.Done()
		errs[1] = lm.Acquire("T2", res("A"), X)
		lm.ReleaseTree("T2")
	}()
	wg.Wait()
	victims := 0
	for _, err := range errs {
		if errors.Is(err, ErrDeadlock) || errors.Is(err, ErrTimeout) {
			victims++
		}
	}
	if victims != 1 {
		t.Fatalf("exactly one victim expected: %v", errs)
	}
}
