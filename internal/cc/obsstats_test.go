package cc

import (
	"errors"
	"testing"
	"time"

	"repro/internal/obs"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDeadlockVictimCountedOncePerVictim: a victim whose SIBLING
// subtransactions are blocked in parallel is still one deadlock. The old
// accounting charged the counter at every acquire that observed the doom
// mark, reporting 2 victims here.
func TestDeadlockVictimCountedOncePerVictim(t *testing.T) {
	lm := NewLockManager()
	for _, r := range []string{"A", "B"} {
		if err := lm.Acquire("T1", res(r), X); err != nil {
			t.Fatal(err)
		}
	}
	if err := lm.Acquire("T2", res("C"), X); err != nil {
		t.Fatal(err)
	}

	// Two sibling subtransactions of T2 block on T1's locks in parallel:
	// both charge waits-for edges under root T2.
	sib := make(chan error, 2)
	go func() { sib <- lm.Acquire("T2.1", res("A"), X) }()
	go func() { sib <- lm.Acquire("T2.2", res("B"), X) }()
	waitFor(t, "both siblings blocked", func() bool { return lm.Snapshot().Blocked == 2 })

	// T1 -> C closes the cycle T1 -> T2 -> T1; the youngest (T2) is doomed
	// and BOTH its blocked siblings wake with ErrDeadlock.
	survivor := make(chan error, 1)
	go func() { survivor <- lm.Acquire("T1", res("C"), X) }()
	for i := 0; i < 2; i++ {
		if err := <-sib; !errors.Is(err, ErrDeadlock) {
			t.Fatalf("sibling %d: err = %v, want ErrDeadlock", i, err)
		}
	}
	lm.ReleaseTree("T2") // victim aborts
	if err := <-survivor; err != nil {
		t.Fatalf("survivor: %v", err)
	}
	lm.ReleaseTree("T1")

	st := lm.Snapshot()
	if st.Deadlocks != 1 {
		t.Fatalf("Deadlocks = %d, want 1 (one victim, not one per blocked acquire)", st.Deadlocks)
	}
	if st.WaitTime <= 0 {
		t.Fatalf("WaitTime = %v, want > 0 (victims' waits must accrue)", st.WaitTime)
	}
}

// TestSelfVictimCountedOnce: the acquire that detects the cycle and IS the
// victim counts itself exactly once, and — with obs attached — leaves one
// lock.deadlock event on the flight recorder.
func TestSelfVictimCountedOnce(t *testing.T) {
	reg := obs.New()
	lm := NewLockManager(WithObs(reg))
	if err := lm.Acquire("T1", res("A"), X); err != nil {
		t.Fatal(err)
	}
	if err := lm.Acquire("T2", res("B"), X); err != nil {
		t.Fatal(err)
	}
	older := make(chan error, 1)
	go func() { older <- lm.Acquire("T1", res("B"), X) }()
	waitFor(t, "T1 blocked", func() bool { return lm.Snapshot().Blocked == 1 })

	// T2 -> A closes the cycle; T2 is the youngest, so it victimizes itself
	// synchronously inside this call.
	if err := lm.Acquire("T2", res("A"), X); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	lm.ReleaseTree("T2")
	if err := <-older; err != nil {
		t.Fatalf("survivor: %v", err)
	}
	lm.ReleaseTree("T1")

	if st := lm.Snapshot(); st.Deadlocks != 1 {
		t.Fatalf("Deadlocks = %d, want 1", st.Deadlocks)
	}
	victims := 0
	for _, e := range reg.Recorder().Tail(0) {
		if e.Kind == obs.EvLockDeadlock {
			victims++
			if e.Actor != "T2" {
				t.Fatalf("deadlock event actor = %q, want T2", e.Actor)
			}
		}
	}
	if victims != 1 {
		t.Fatalf("lock.deadlock events = %d, want 1", victims)
	}
}

// TestWaitTimeAccruedOnTimeout: an acquire that exits through the timeout
// path must still accrue its wait in Stats.WaitTime and observe it in the
// wait histogram.
func TestWaitTimeAccruedOnTimeout(t *testing.T) {
	reg := obs.New()
	lm := NewLockManager(WithWaitTimeout(50*time.Millisecond), WithObs(reg))
	if err := lm.Acquire("T1", res("P"), X); err != nil {
		t.Fatal(err)
	}
	if err := lm.Acquire("T2", res("P"), X); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	st := lm.Snapshot()
	if st.Timeouts != 1 {
		t.Fatalf("Timeouts = %d, want 1", st.Timeouts)
	}
	if st.WaitTime < 40*time.Millisecond {
		t.Fatalf("WaitTime = %v, want >= ~50ms (timeout exits must accrue wait)", st.WaitTime)
	}
	if n := reg.Histogram("lock.wait_ns", obs.LatencyBounds()).Count(); n != 1 {
		t.Fatalf("wait histogram count = %d, want 1", n)
	}
	found := false
	for _, e := range reg.Recorder().Tail(0) {
		if e.Kind == obs.EvLockTimeout && e.Actor == "T2" && e.Dur >= 40*time.Millisecond {
			found = true
		}
	}
	if !found {
		t.Fatal("no lock.timeout event with the wait duration on the recorder")
	}
	lm.ReleaseTree("T1")
}

// TestObsBlockGrantLifecycle: a blocked-then-granted acquire leaves a
// block/grant event pair, moves the waiting gauge up and back down, and the
// registry snapshot publishes the manager's Stats under "lock".
func TestObsBlockGrantLifecycle(t *testing.T) {
	reg := obs.New()
	lm := NewLockManager(WithObs(reg))
	if err := lm.Acquire("T1", res("P"), X); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- lm.Acquire("T2", res("P"), X) }()
	waitFor(t, "T2 blocked", func() bool { return lm.Snapshot().Blocked == 1 })
	if g := reg.Gauge("lock.waiting").Load(); g != 1 {
		t.Fatalf("lock.waiting = %d, want 1 while blocked", g)
	}
	lm.ReleaseTree("T1")
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if g := reg.Gauge("lock.waiting").Load(); g != 0 {
		t.Fatalf("lock.waiting = %d, want 0 after grant", g)
	}
	var block, grant bool
	for _, e := range reg.Recorder().Tail(0) {
		switch e.Kind {
		case obs.EvLockBlock:
			block = e.Actor == "T2" && e.Object == "P"
		case obs.EvLockGrant:
			grant = e.Actor == "T2" && e.Dur > 0
		}
	}
	if !block || !grant {
		t.Fatalf("block=%v grant=%v, want both events recorded", block, grant)
	}
	snap := reg.Snapshot()
	lockStats, ok := snap["lock"].(Stats)
	if !ok {
		t.Fatalf("snapshot[lock] = %T, want cc.Stats", snap["lock"])
	}
	if lockStats.Acquires < 2 || lockStats.Blocked != 1 {
		t.Fatalf("published stats = %+v", lockStats)
	}
	lm.ReleaseTree("T2")
}
