package cc

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/commut"
	"repro/internal/txn"
)

func TestNormalizeShardCount(t *testing.T) {
	cases := map[int]int{-3: 1, 0: 1, 1: 1, 2: 2, 3: 4, 5: 8, 8: 8, 9: 16, 300: 256}
	for in, want := range cases {
		if got := normalizeShardCount(in); got != want {
			t.Errorf("normalizeShardCount(%d) = %d, want %d", in, got, want)
		}
	}
	if n := NewLockManager(WithShards(5)).ShardCount(); n != 8 {
		t.Fatalf("WithShards(5) → %d shards, want 8", n)
	}
	if n := NewLockManager(WithShards(1)).ShardCount(); n != 1 {
		t.Fatalf("WithShards(1) → %d shards, want 1", n)
	}
}

func TestShardDistribution(t *testing.T) {
	lm := NewLockManager(WithShards(16))
	seen := map[*lockShard]bool{}
	for i := 0; i < 256; i++ {
		seen[lm.shardFor(res(fmt.Sprintf("P%d", i)))] = true
	}
	// The hash must actually spread resources; an all-in-one-shard hash
	// would silently reintroduce the global mutex.
	if len(seen) < 8 {
		t.Fatalf("256 resources landed on only %d of 16 shards", len(seen))
	}
}

// TestReleaseWakesOnlyThatResource: waking is per lockState — releasing A
// grants A's waiter while B's keeps waiting.
func TestReleaseWakesOnlyThatResource(t *testing.T) {
	lm := NewLockManager()
	if err := lm.Acquire("T1", res("A"), X); err != nil {
		t.Fatal(err)
	}
	if err := lm.Acquire("T1", res("B"), X); err != nil {
		t.Fatal(err)
	}
	onA := make(chan error, 1)
	onB := make(chan error, 1)
	go func() { onA <- lm.Acquire("T2", res("A"), X) }()
	go func() { onB <- lm.Acquire("T3", res("B"), X) }()
	for i := 0; lm.Snapshot().Blocked != 2; i++ {
		if i > 1000 {
			t.Fatal("waiters never blocked")
		}
		time.Sleep(time.Millisecond)
	}
	lm.Release("T1", res("A"))
	select {
	case err := <-onA:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("A's waiter not woken by A's release")
	}
	select {
	case err := <-onB:
		t.Fatalf("B's waiter woke without a release: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	lm.Release("T1", res("B"))
	if err := <-onB; err != nil {
		t.Fatal(err)
	}
	lm.ReleaseTree("T2")
	lm.ReleaseTree("T3")
}

// TestFairnessTimeoutRewakesLaterWaiters is the fairness × timeout
// interaction: a FIFO waiter that times out must remove its queue token
// and re-wake later waiters that were queued behind it — otherwise they
// sleep on a phantom conflict until their own timeout.
func TestFairnessTimeoutRewakesLaterWaiters(t *testing.T) {
	// The timeout clock starts when an acquire blocks, and it is
	// per-manager, so the margin T3 has to be granted after T2's timeout is
	// however much LATER T3 blocked. Park T3 a good chunk of the timeout
	// after T2 so slow schedulers (-race on a loaded box) cannot eat it.
	const timeout = time.Second
	lm := NewLockManager(WithFairness(), WithWaitTimeout(timeout))
	if err := lm.Acquire("T1", res("P"), S); err != nil {
		t.Fatal(err)
	}
	// T2 wants X: conflicts with T1's held S, so it queues and will time
	// out (T1 never releases during the test).
	writer := make(chan error, 1)
	go func() { writer <- lm.Acquire("T2", res("P"), X) }()
	for i := 0; lm.waiterCount(res("P")) != 1; i++ {
		if i > 1000 {
			t.Fatal("writer never queued")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(timeout / 3) // T3's margin after T2's timeout
	// T3 wants S: compatible with T1's grant but queued behind T2's
	// earlier incompatible token, so it must wait (no barging)...
	reader := make(chan error, 1)
	go func() { reader <- lm.Acquire("T3", res("P"), S) }()
	for i := 0; lm.Snapshot().Blocked != 2; i++ {
		if i > 1000 {
			t.Fatal("reader never blocked")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case err := <-reader:
		t.Fatalf("reader barged past the queued writer: %v", err)
	case <-time.After(100 * time.Millisecond):
	}
	// ...until T2 times out. Its token removal must wake T3, which is now
	// first in line and compatible — T3 must be GRANTED, not time out.
	if err := <-writer; !errors.Is(err, ErrTimeout) {
		t.Fatalf("writer: err = %v, want ErrTimeout", err)
	}
	select {
	case err := <-reader:
		if err != nil {
			t.Fatalf("reader after writer's timeout: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("reader not re-woken by the timed-out writer's token removal")
	}
	if n := lm.waiterCount(res("P")); n != 0 {
		t.Fatalf("stale queue tokens: %d", n)
	}
	if got := lm.Snapshot().Timeouts; got != 1 {
		t.Fatalf("Timeouts = %d, want 1 (only the writer)", got)
	}
	lm.ReleaseTree("T1")
	lm.ReleaseTree("T3")
}

// TestCrossShardDeadlockDetected: the waits-for cycle spans resources on
// different shards; the detector must still find it and abort the
// youngest.
func TestCrossShardDeadlockDetected(t *testing.T) {
	lm := NewLockManager(WithShards(16))
	// Find two resources living on different shards.
	a := res("A")
	b := res("B")
	for i := 0; lm.shardFor(a) == lm.shardFor(b); i++ {
		if i > 1000 {
			t.Fatal("no cross-shard resource pair found")
		}
		b = res(fmt.Sprintf("B%d", i))
	}
	if err := lm.Acquire("T1", a, X); err != nil {
		t.Fatal(err)
	}
	if err := lm.Acquire("T2", b, X); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		errs[0] = lm.Acquire("T1", b, X)
		if errs[0] != nil {
			lm.ReleaseTree("T1")
		}
	}()
	time.Sleep(30 * time.Millisecond)
	go func() {
		defer wg.Done()
		errs[1] = lm.Acquire("T2", a, X)
		if errs[1] != nil {
			lm.ReleaseTree("T2")
		}
	}()
	wg.Wait()
	if !errors.Is(errs[1], ErrDeadlock) {
		t.Fatalf("youngest (T2) should be the cross-shard victim: %v", errs)
	}
	if errs[0] != nil {
		t.Fatalf("survivor T1 should acquire after victim abort: %v", errs[0])
	}
	lm.ReleaseTree("T1")
	if lm.Snapshot().Deadlocks != 1 {
		t.Fatalf("Deadlocks = %d", lm.Snapshot().Deadlocks)
	}
}

// diffOp is one step of the differential schedule.
type diffOp struct {
	kind  int // 0 acquire, 1 release, 2 releaseTree, 3 transferToParent
	owner string
	res   Resource
	mode  Mode
}

// randomSchedule draws a deterministic op sequence. S-heavy so serial
// conflicts (which cost one timeout each) stay rare but present.
func randomSchedule(seed int64, n int) []diffOp {
	rr := rand.New(rand.NewSource(seed))
	spec := commut.KeyedSpec([]string{"search"}, []string{"insert"})
	owners := []string{"T1", "T1.1", "T2", "T2.3", "T3", "T4.1.2"}
	resources := make([]Resource, 8)
	for i := range resources {
		resources[i] = res(fmt.Sprintf("R%d", i))
	}
	ops := make([]diffOp, n)
	for i := range ops {
		op := diffOp{
			owner: owners[rr.Intn(len(owners))],
			res:   resources[rr.Intn(len(resources))],
		}
		switch k := rr.Intn(10); {
		case k < 6:
			op.kind = 0
			switch rr.Intn(4) {
			case 0:
				op.mode = X
			case 1, 2:
				op.mode = S
			case 3:
				op.mode = Semantic{
					Inv:  commut.Invocation{Method: "insert", Params: []string{fmt.Sprintf("k%d", rr.Intn(4))}},
					Spec: spec,
				}
			}
		case k < 8:
			op.kind = 1
		case k < 9:
			op.kind = 2
		default:
			op.kind = 3
		}
		ops[i] = op
	}
	return ops
}

// applyOp runs one op and classifies the outcome (nil error vs timeout).
func applyOp(lm *LockManager, op diffOp) string {
	switch op.kind {
	case 0:
		err := lm.Acquire(op.owner, op.res, op.mode)
		switch {
		case err == nil:
			return "ok"
		case errors.Is(err, ErrTimeout):
			return "timeout"
		default:
			return "err:" + err.Error()
		}
	case 1:
		lm.Release(op.owner, op.res)
	case 2:
		lm.ReleaseTree(RootOf(op.owner))
	case 3:
		lm.TransferToParent(op.owner, RootOf(op.owner))
	}
	return "ok"
}

// TestDifferentialShardedVsSingleMutex replays identical randomized serial
// schedules against a 1-shard manager (the seed's single-mutex behaviour)
// and a 16-shard manager, comparing every outcome and the visible lock
// table after each step. Serial execution makes blocking deterministic: a
// conflicting acquire times out in both or neither.
func TestDifferentialShardedVsSingleMutex(t *testing.T) {
	for _, fair := range []bool{false, true} {
		for seed := int64(1); seed <= 4; seed++ {
			name := fmt.Sprintf("fair=%v/seed=%d", fair, seed)
			ops := randomSchedule(seed, 150)
			mk := func(shards int) *LockManager {
				o := []Option{WithShards(shards), WithWaitTimeout(10 * time.Millisecond)}
				if fair {
					o = append(o, WithFairness())
				}
				return NewLockManager(o...)
			}
			single, sharded := mk(1), mk(16)
			for i, op := range ops {
				got1 := applyOp(single, op)
				gotN := applyOp(sharded, op)
				if got1 != gotN {
					t.Fatalf("%s op %d (%+v): single=%s sharded=%s", name, i, op, got1, gotN)
				}
				for j := 0; j < 8; j++ {
					r := res(fmt.Sprintf("R%d", j))
					h1 := fmt.Sprint(single.Holders(r))
					hN := fmt.Sprint(sharded.Holders(r))
					if h1 != hN {
						t.Fatalf("%s op %d: holders of R%d diverge: single=%s sharded=%s", name, i, j, h1, hN)
					}
				}
			}
			s1, sN := single.Snapshot(), sharded.Snapshot()
			if s1.Acquires != sN.Acquires || s1.Timeouts != sN.Timeouts {
				t.Fatalf("%s: stats diverge: single=%+v sharded=%+v", name, s1, sN)
			}
		}
	}
}

// TestShardedMutualExclusionManyObjects: concurrent X traffic over many
// more resources than shards never double-grants, and the table drains
// clean. (Run under -race via the check target.)
func TestShardedMutualExclusionManyObjects(t *testing.T) {
	lm := NewLockManager(WithShards(8), WithWaitTimeout(2*time.Second))
	const goroutines, objects, rounds = 8, 64, 60
	var mu sync.Mutex
	holding := map[Resource]string{}
	violations := 0

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rr := rand.New(rand.NewSource(int64(id) * 977))
			owner := fmt.Sprintf("T%d", id+1)
			for i := 0; i < rounds; i++ {
				re := res(fmt.Sprintf("O%d", rr.Intn(objects)))
				if err := lm.Acquire(owner, re, X); err != nil {
					lm.ReleaseTree(owner)
					continue
				}
				mu.Lock()
				if h, ok := holding[re]; ok && h != owner {
					violations++
				}
				holding[re] = owner
				mu.Unlock()

				mu.Lock()
				delete(holding, re)
				mu.Unlock()
				lm.Release(owner, re)
			}
			lm.ReleaseTree(owner)
		}(g)
	}
	wg.Wait()
	if violations != 0 {
		t.Fatalf("%d mutual-exclusion violations", violations)
	}
	for i := 0; i < objects; i++ {
		if h := lm.Holders(res(fmt.Sprintf("O%d", i))); len(h) != 0 {
			t.Fatalf("O%d still held by %v", i, h)
		}
	}
}

// TestSemanticCommutingScalesWithoutBlocking: commuting semantic locks on
// shared objects never block regardless of shard placement — the workload
// the sharded table is built for.
func TestSemanticCommutingScalesWithoutBlocking(t *testing.T) {
	spec := commut.KeyedSpec([]string{"search"}, []string{"insert"})
	lm := NewLockManager()
	leaf := txn.OID{Type: "btreenode", Name: "Leaf"}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			owner := fmt.Sprintf("T%d", id+1)
			for i := 0; i < 50; i++ {
				m := Semantic{
					Inv:  commut.Invocation{Method: "insert", Params: []string{fmt.Sprintf("g%d-k%d", id, i)}},
					Spec: spec,
				}
				if err := lm.Acquire(owner, leaf, m); err != nil {
					errs[id] = err
					return
				}
			}
			lm.ReleaseTree(owner)
		}(g)
	}
	wg.Wait()
	for id, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", id, err)
		}
	}
	if lm.Snapshot().Blocked != 0 {
		t.Fatalf("commuting inserts blocked %d times", lm.Snapshot().Blocked)
	}
}

// TestDeadlockAcrossUnlockedWindow: while a blocked acquire runs the
// detector with its shard lock dropped, the holder it charged an edge
// against can release (the broadcast is lost — the waiter is not yet
// sleeping) and a new holder can barge in. The waiter must notice the
// swapped blocker and recharge before sleeping; otherwise the cycle that
// then forms through the new holder is invisible to the detector — the
// waiter is charged against the departed holder — and with no wait timeout
// both transactions hang forever.
func TestDeadlockAcrossUnlockedWindow(t *testing.T) {
	lm := NewLockManager()
	a, b := res("A"), res("B")
	if err := lm.Acquire("T1", a, X); err != nil {
		t.Fatal(err)
	}
	if err := lm.Acquire("T2", b, X); err != nil {
		t.Fatal(err)
	}
	swapped := make(chan struct{})
	var once sync.Once
	lm.testUnlockedWindow = func() {
		once.Do(func() {
			// T2 has charged T2→T1 and found no cycle; before it re-checks
			// its blockers, swap A's holder from T1 to T3.
			lm.Release("T1", a)
			if err := lm.Acquire("T3", a, X); err != nil {
				t.Error(err)
			}
			close(swapped)
		})
	}
	t2 := make(chan error, 1)
	go func() { t2 <- lm.Acquire("T2", a, X) }()
	<-swapped
	t3 := make(chan error, 1)
	go func() { t3 <- lm.Acquire("T3", b, X) }() // closes the cycle T3→T2→T3
	select {
	case err := <-t3:
		if !errors.Is(err, ErrDeadlock) {
			t.Fatalf("T3: err = %v, want ErrDeadlock", err)
		}
	case err := <-t2:
		t.Fatalf("T2 returned %v before the cycle resolved", err)
	case <-time.After(5 * time.Second):
		t.Fatal("missed deadlock: the stale waits-for edge hid the cycle")
	}
	lm.ReleaseTree("T3")
	select {
	case err := <-t2:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("T2 never woke after the victim released")
	}
	lm.ReleaseTree("T2")
}

// TestDetectSkipsDoomedNodes: a doomed victim's waits-for edges stay
// charged until it wakes and discharges them; a cycle that exists only
// through those residual edges is already broken by the victim's abort and
// must not doom a second victim.
func TestDetectSkipsDoomedNodes(t *testing.T) {
	d := newDetector()
	d.recharge("T1", nil, map[string]int{"T2": 1})
	d.recharge("T2", nil, map[string]int{"T1": 1})
	d.forceDoom("T2")
	if v, _ := d.detect("T1"); v != "" {
		t.Fatalf("detect through a doomed node chose victim %q, want none", v)
	}
	// Once the doomed victim has discharged and recovered, the same shape
	// is a real cycle again.
	d.forget("T2")
	if v, fresh := d.detect("T1"); v != "T2" || !fresh {
		t.Fatalf("victim, fresh = %q, %v, want T2, true", v, fresh)
	}
}

// TestSameEdges pins the multiset comparison the sleep re-check relies on.
func TestSameEdges(t *testing.T) {
	cases := []struct {
		a, b map[string]int
		want bool
	}{
		{nil, nil, true},
		{map[string]int{}, nil, true},
		{map[string]int{"T1": 1}, map[string]int{"T1": 1}, true},
		{map[string]int{"T1": 1}, map[string]int{"T1": 2}, false},
		{map[string]int{"T1": 1}, map[string]int{"T2": 1}, false},
		{map[string]int{"T1": 1, "T2": 1}, map[string]int{"T1": 1}, false},
	}
	for i, c := range cases {
		if got := sameEdges(c.a, c.b); got != c.want {
			t.Errorf("case %d: sameEdges(%v, %v) = %v, want %v", i, c.a, c.b, got, c.want)
		}
		if got := sameEdges(c.b, c.a); got != c.want {
			t.Errorf("case %d (flipped): got %v, want %v", i, got, c.want)
		}
	}
}
