package cc

import (
	"errors"
	"strings"
	"time"

	"repro/internal/span"
)

// BlockerRef names one conflicting holder (or earlier incompatible waiter,
// in fairness mode) a blocked acquire last observed.
type BlockerRef struct {
	Owner string
	Mode  string
}

// AcquireInfo is the provenance an AcquireEx call reports back: enough to
// explain, per transaction, WHY the acquire waited or failed.
type AcquireInfo struct {
	// Blocked reports whether the call waited at least once; Wait is the
	// total blocked time.
	Blocked bool
	Wait    time.Duration
	// TimedOut reports the wait exceeded the configured bound.
	TimedOut bool
	// Blockers are the conflicting entries observed on the last loop pass —
	// on success, who made us wait; on timeout, who was still holding.
	Blockers []BlockerRef
	// Cycle is the waits-for cycle that doomed this transaction (deadlock
	// victims only), starting at its own root.
	Cycle []string
}

func blockerRefs(bl []blockRef) []BlockerRef {
	if len(bl) == 0 {
		return nil
	}
	out := make([]BlockerRef, len(bl))
	for i, b := range bl {
		out[i] = BlockerRef{Owner: b.owner, Mode: b.mode.String()}
	}
	return out
}

// maxBlockerEdges bounds the blocked-on edges recorded per lock span; a
// reader convoy of dozens of commuting holders does not need dozens of
// identical edges to explain one wait.
const maxBlockerEdges = 4

// AcquireTraced is AcquireEx plus span recording: a CONTENDED or failed
// acquire becomes a KLock span (backdated to when the wait began) on tt,
// carrying provenance edges; an uncontended grant records nothing — that
// absence is exactly where commutativity (Def. 11) cut the dependency.
//
//   - actionID is the acquiring action (the span's parent is its method
//     span); owner is the lock's legal holder, which differs from actionID
//     under open nesting (the semantic lock is held by the CALLING action —
//     recorded as an inherited-from edge, the paper's Def. 10 inheritance
//     made explicit).
func (lm *LockManager) AcquireTraced(tt *span.TxnTrace, actionID, owner string, res Resource, mode Mode) error {
	if tt == nil {
		// Unsampled/disabled: skip even the info bookkeeping.
		return lm.Acquire(owner, res, mode)
	}
	info, err := lm.AcquireEx(owner, res, mode)
	RecordLockSpan(tt, actionID, owner, res.Name, mode.String(), info, err)
	return err
}

// RecordLockSpan records one contended/failed acquire as a KLock span with
// provenance edges. No-op when tt is nil or the acquire was an uncontended
// success.
func RecordLockSpan(tt *span.TxnTrace, actionID, owner, resName, mode string, info AcquireInfo, err error) {
	if tt == nil || (!info.Blocked && err == nil) {
		return
	}
	now := time.Now()
	as := tt.BeginSpanAt(actionID+"/lock("+resName+")", actionID, span.KLock,
		"lock "+resName, now.Add(-info.Wait))
	as.SetClass(mode)
	if owner != actionID {
		as.AddEdge(span.Edge{
			Kind: span.EdgeInheritedFrom, Peer: owner, PeerRoot: RootOf(owner),
			Object: resName,
			Note:   "semantic lock held by calling action (Def. 10)",
		})
	}
	for i, b := range info.Blockers {
		if i == maxBlockerEdges {
			break
		}
		as.AddEdge(span.Edge{
			Kind: span.EdgeBlockedOn, Peer: b.Owner, PeerRoot: RootOf(b.Owner),
			Object: resName, Mode: b.Mode, Wait: info.Wait,
		})
	}
	// The terminal (abort-explaining) edge goes last: an aborted trace's
	// root span is stamped with the LAST edge of the failing span.
	switch {
	case err == nil:
	case errors.Is(err, ErrTimeout):
		e := span.Edge{Kind: span.EdgeTimeout, Object: resName, Wait: info.Wait,
			Note: "wait exceeded bound"}
		if len(info.Blockers) > 0 {
			e.Peer = info.Blockers[0].Owner
			e.PeerRoot = RootOf(info.Blockers[0].Owner)
			e.Mode = info.Blockers[0].Mode
		}
		as.AddEdge(e)
	case errors.Is(err, ErrDeadlock), errors.Is(err, ErrDoomed):
		e := span.Edge{Kind: span.EdgeVictimOf, Object: resName, Wait: info.Wait}
		root := RootOf(actionID)
		for _, r := range info.Cycle {
			if r != root {
				e.Peer = r
				e.PeerRoot = r
				break
			}
		}
		if len(info.Cycle) > 0 {
			e.Note = "cycle " + strings.Join(append(append([]string{}, info.Cycle...), info.Cycle[0]), "→")
		} else {
			e.Note = "doomed by deadlock detection"
			if len(info.Blockers) > 0 {
				e.Peer = info.Blockers[0].Owner
				e.PeerRoot = RootOf(info.Blockers[0].Owner)
				e.Mode = info.Blockers[0].Mode
			}
		}
		as.AddEdge(e)
	}
	as.End(err)
}
