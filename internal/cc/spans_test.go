package cc

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/span"
)

func TestAcquireExUncontended(t *testing.T) {
	lm := NewLockManager()
	info, err := lm.AcquireEx("T1", res("A"), X)
	if err != nil {
		t.Fatal(err)
	}
	if info.Blocked || info.Wait != 0 || len(info.Blockers) != 0 {
		t.Fatalf("uncontended grant reported contention: %+v", info)
	}
	lm.ReleaseTree("T1")
}

func TestAcquireExBlockedThenGranted(t *testing.T) {
	lm := NewLockManager()
	if err := lm.Acquire("T1", res("A"), X); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var info AcquireInfo
	var err error
	go func() {
		defer close(done)
		info, err = lm.AcquireEx("T2", res("A"), X)
	}()
	time.Sleep(30 * time.Millisecond)
	lm.ReleaseTree("T1")
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if !info.Blocked || info.Wait <= 0 {
		t.Fatalf("blocked grant must report its wait: %+v", info)
	}
	if len(info.Blockers) == 0 || info.Blockers[0].Owner != "T1" {
		t.Fatalf("blockers must name the holder that made us wait: %+v", info.Blockers)
	}
	lm.ReleaseTree("T2")
}

func TestAcquireExTimeoutProvenance(t *testing.T) {
	lm := NewLockManager(WithWaitTimeout(50 * time.Millisecond))
	if err := lm.Acquire("T1", res("A"), X); err != nil {
		t.Fatal(err)
	}
	info, err := lm.AcquireEx("T2", res("A"), X)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if !info.TimedOut || !info.Blocked {
		t.Fatalf("timeout must be flagged: %+v", info)
	}
	if len(info.Blockers) == 0 || info.Blockers[0].Owner != "T1" || info.Blockers[0].Mode != "X" {
		t.Fatalf("timeout must name who was still holding: %+v", info.Blockers)
	}
	lm.ReleaseTree("T2")
	lm.ReleaseTree("T1")
}

func TestAcquireExDeadlockCycle(t *testing.T) {
	lm := NewLockManager()
	if err := lm.Acquire("T1", res("A"), X); err != nil {
		t.Fatal(err)
	}
	if err := lm.Acquire("T2", res("B"), X); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	var victimInfo AcquireInfo
	wg.Add(2)
	go func() {
		defer wg.Done()
		errs[0] = lm.Acquire("T1", res("B"), X)
		if errs[0] != nil {
			lm.ReleaseTree("T1")
		}
	}()
	time.Sleep(30 * time.Millisecond)
	go func() {
		defer wg.Done()
		victimInfo, errs[1] = lm.AcquireEx("T2", res("A"), X)
		if errs[1] != nil {
			lm.ReleaseTree("T2")
		}
	}()
	wg.Wait()
	if !errors.Is(errs[1], ErrDeadlock) {
		t.Fatalf("youngest (T2) should be the victim: %v", errs)
	}
	if len(victimInfo.Cycle) < 2 {
		t.Fatalf("victim must receive its waits-for cycle: %+v", victimInfo)
	}
	found := map[string]bool{}
	for _, r := range victimInfo.Cycle {
		found[r] = true
	}
	if !found["T1"] || !found["T2"] {
		t.Fatalf("cycle must contain both roots: %v", victimInfo.Cycle)
	}
	lm.ReleaseTree("T1")
}

// TestAcquireTracedVictimProvenance drives the full tt-recording path for a
// deadlock victim and asserts the trace's shape: a KLock span whose LAST
// edge is the victim-of explanation, stamped onto the aborted root.
func TestAcquireTracedVictimProvenance(t *testing.T) {
	lm := NewLockManager()
	tr := span.New()
	if err := lm.Acquire("T1", res("A"), X); err != nil {
		t.Fatal(err)
	}
	if err := lm.Acquire("T2", res("B"), X); err != nil {
		t.Fatal(err)
	}
	tt := tr.BeginTxn("T2", time.Now())
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		errs[0] = lm.Acquire("T1", res("B"), X)
		if errs[0] != nil {
			lm.ReleaseTree("T1")
		}
	}()
	time.Sleep(30 * time.Millisecond)
	go func() {
		defer wg.Done()
		errs[1] = lm.AcquireTraced(tt, "T2.1", "T2", res("A"), X)
		if errs[1] != nil {
			lm.ReleaseTree("T2")
		}
	}()
	wg.Wait()
	if !errors.Is(errs[1], ErrDeadlock) {
		t.Fatalf("T2 should be the victim: %v", errs)
	}
	tr.FinishTxn(tt, span.StatusAborted)
	lm.ReleaseTree("T1")

	snap := tr.Lookup("T2").Snapshot()
	var lock *span.Span
	for i := range snap.Spans {
		if snap.Spans[i].Kind == span.KLock {
			lock = &snap.Spans[i]
		}
	}
	if lock == nil {
		t.Fatalf("no lock span recorded: %+v", snap.Spans)
	}
	if lock.Parent != "T2.1" || lock.Class != "X" || lock.Err == "" {
		t.Fatalf("lock span malformed: %+v", lock)
	}
	last := lock.Edges[len(lock.Edges)-1]
	if last.Kind != span.EdgeVictimOf || last.Peer != "T1" {
		t.Fatalf("terminal edge must be victim-of the peer: %+v", lock.Edges)
	}
	// Inherited-from edge: the semantic lock's holder differs from the
	// acquiring action.
	foundInherit := false
	for _, e := range lock.Edges {
		if e.Kind == span.EdgeInheritedFrom && e.Peer == "T2" {
			foundInherit = true
		}
	}
	if !foundInherit {
		t.Fatalf("owner != actionID must record an inherited-from edge: %+v", lock.Edges)
	}
	root := snap.Spans[0]
	if root.Kind != span.KTxn || len(root.Edges) != 1 || root.Edges[0].Kind != span.EdgeVictimOf {
		t.Fatalf("aborted root must carry the victim-of explanation: %+v", root)
	}
}

// TestAcquireTracedUncontendedRecordsNothing: an uncontended grant must
// leave no lock span — that absence is where Def. 11 cut the dependency.
func TestAcquireTracedUncontendedRecordsNothing(t *testing.T) {
	lm := NewLockManager()
	tr := span.New()
	tt := tr.BeginTxn("T1", time.Now())
	if err := lm.AcquireTraced(tt, "T1.1", "T1", res("A"), X); err != nil {
		t.Fatal(err)
	}
	tr.FinishTxn(tt, span.StatusCommitted)
	lm.ReleaseTree("T1")
	snap := tr.Lookup("T1").Snapshot()
	if len(snap.Spans) != 1 {
		t.Fatalf("uncontended acquire must record no span: %+v", snap.Spans)
	}
}
