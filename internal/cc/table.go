package cc

import (
	"runtime"
	"sync"
)

// The lock table is partitioned into power-of-two shards so unrelated
// resources never contend on one mutex. Each resource hashes to one shard;
// every lockState carries its own condition variable (on the shard mutex),
// so releasing a resource wakes only that resource's waiters instead of
// every blocked transaction in the system.
type lockShard struct {
	mu    sync.Mutex
	locks map[Resource]*lockState
}

type lockState struct {
	granted []grant
	// waiting holds blocked requests in arrival order; only consulted when
	// fairness is enabled.
	waiting []*waiter
	// cond wakes this resource's blocked acquires; its Locker is the
	// owning shard's mutex.
	cond *sync.Cond
	// sleepers counts goroutines parked on cond. A state with grants,
	// queued waiters or sleepers must not be garbage-collected.
	sleepers int
}

// state returns the lockState for res, creating it if needed. Caller holds
// sh.mu.
func (sh *lockShard) state(res Resource) *lockState {
	st, ok := sh.locks[res]
	if !ok {
		st = &lockState{cond: sync.NewCond(&sh.mu)}
		sh.locks[res] = st
	}
	return st
}

// gcLocked drops res's state when it is completely idle, bounding the
// table's memory under churning resource populations. Caller holds sh.mu.
func (sh *lockShard) gcLocked(res Resource) {
	if st, ok := sh.locks[res]; ok &&
		len(st.granted) == 0 && len(st.waiting) == 0 && st.sleepers == 0 {
		delete(sh.locks, res)
	}
}

// defaultShardCount sizes the table to the machine: the next power of two
// at or above GOMAXPROCS, clamped to [1, 256].
func defaultShardCount() int {
	return normalizeShardCount(runtime.GOMAXPROCS(0))
}

// normalizeShardCount rounds n up to a power of two within [1, 256].
func normalizeShardCount(n int) int {
	if n < 1 {
		n = 1
	}
	if n > 256 {
		n = 256
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// shardFor hashes a resource to its shard (FNV-1a over type and name, with
// a separator so ("ab","c") and ("a","bc") differ).
func (lm *LockManager) shardFor(res Resource) *lockShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(res.Type); i++ {
		h = (h ^ uint64(res.Type[i])) * prime64
	}
	h = (h ^ 0xff) * prime64
	for i := 0; i < len(res.Name); i++ {
		h = (h ^ uint64(res.Name[i])) * prime64
	}
	return lm.shards[h&lm.shardMask]
}

// waiterCount returns the number of queued FIFO tokens on res (fairness
// mode only; diagnostics and tests).
func (lm *LockManager) waiterCount(res Resource) int {
	sh := lm.shardFor(res)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if st, ok := sh.locks[res]; ok {
		return len(st.waiting)
	}
	return 0
}

// removeWaiter unlinks a queued FIFO token. Caller holds the shard mutex.
func (st *lockState) removeWaiter(w *waiter) {
	kept := st.waiting[:0]
	for _, q := range st.waiting {
		if q != w {
			kept = append(kept, q)
		}
	}
	st.waiting = kept
}
