// Package checkpoint bounds recovery work and WAL growth. A fuzzy
// checkpoint is a checksummed file pairing a page-store image with the WAL
// position it reflects (plus the transactions in flight at that barrier);
// once one is durable, every log segment that lies entirely below it is
// dead weight and can be deleted. Recovery then replays only the suffix
// above the newest complete checkpoint, falling back to full replay when
// none is valid — a crash during checkpointing degrades, never corrupts.
//
// The file is written in place (no rename dance) because the checksum is
// the validity criterion: a torn or half-written checkpoint simply fails
// verification and is skipped, exactly like a torn WAL frame.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/storage"
)

// Checkpoint file layout:
//
//	| magic "OODBCKPT" (8) | version u32 | payload len u32 | crc32c u32 |
//	| payload (len bytes) |
//
// crc32c (Castagnoli) covers the payload only. The payload is:
//
//	LSN u64 | OldestActive u64 | MaxTxn u64 | NextPage u64 | PageSize u64 |
//	UnixNano i64 |
//	uvarint active count | active owners as uvarint-length-prefixed strings |
//	uvarint page count | pages as (id uvarint, uvarint-length-prefixed data),
//	sorted by id
const (
	ckptMagic   = "OODBCKPT"
	ckptVersion = 1
	ckptPrefix  = "ckpt-"
	ckptSuffix  = ".ck"
	// ckptFixedHeader is magic + version + length + checksum.
	ckptFixedHeader = 8 + 4 + 4 + 4
	// payloadFixed is the fixed-width prefix of the payload.
	payloadFixed = 8 * 6
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checkpoint errors.
var (
	// ErrNoCheckpoint means the directory holds no complete, verifiable
	// checkpoint — recovery must replay the full log.
	ErrNoCheckpoint = errors.New("checkpoint: no valid checkpoint")
	// ErrCheckpointCorrupt marks a file that exists but fails the magic,
	// length, or checksum test — a torn write from a crash mid-checkpoint.
	// Such files are skipped, never trusted.
	ErrCheckpointCorrupt = errors.New("checkpoint: file torn or corrupt")
)

// Snapshot is the logical content of one checkpoint: the store image as of
// LSN plus what recovery needs to resume analysis from there.
type Snapshot struct {
	// LSN is the barrier position: Pages reflects exactly the updates of
	// records with LSN ≤ this, and all such records are durable on disk
	// before the checkpoint file is written (WAL-force rule).
	LSN uint64
	// OldestActive is the smallest first-record LSN among Active (0 when
	// none) — the truncation floor that keeps every loser's undo records.
	OldestActive uint64
	// MaxTxn is the highest transaction id allocated at the barrier, so a
	// restart never re-issues ids whose records were truncated away.
	MaxTxn uint64
	// NextPage and PageSize rebuild the store's allocation state.
	NextPage storage.PageID
	PageSize int
	// UnixNano is the wall-clock write time (informational; waldump).
	UnixNano int64
	// Active lists the root transactions in flight at the barrier.
	Active []string
	// Pages is the full page image.
	Pages map[storage.PageID]string
}

// TruncateBelow returns the first LSN that must survive log truncation
// under this checkpoint: everything the image already covers is deletable
// except records of transactions still in flight at the barrier.
func (s *Snapshot) TruncateBelow() uint64 {
	keep := s.LSN + 1
	if s.OldestActive != 0 && s.OldestActive < keep {
		keep = s.OldestActive
	}
	return keep
}

// FileName returns the checkpoint file name for a barrier LSN. Zero-padded
// so lexical order is LSN order, mirroring WAL segment naming.
func FileName(lsn uint64) string {
	return fmt.Sprintf("%s%020d%s", ckptPrefix, lsn, ckptSuffix)
}

func encodePayload(s *Snapshot) []byte {
	payload := make([]byte, 0, payloadFixed+64*len(s.Active)+64*len(s.Pages))
	payload = binary.LittleEndian.AppendUint64(payload, s.LSN)
	payload = binary.LittleEndian.AppendUint64(payload, s.OldestActive)
	payload = binary.LittleEndian.AppendUint64(payload, s.MaxTxn)
	payload = binary.LittleEndian.AppendUint64(payload, uint64(s.NextPage))
	payload = binary.LittleEndian.AppendUint64(payload, uint64(s.PageSize))
	payload = binary.LittleEndian.AppendUint64(payload, uint64(s.UnixNano))
	payload = binary.AppendUvarint(payload, uint64(len(s.Active)))
	for _, owner := range s.Active {
		payload = binary.AppendUvarint(payload, uint64(len(owner)))
		payload = append(payload, owner...)
	}
	ids := make([]storage.PageID, 0, len(s.Pages))
	for id := range s.Pages {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	payload = binary.AppendUvarint(payload, uint64(len(ids)))
	for _, id := range ids {
		payload = binary.AppendUvarint(payload, uint64(id))
		data := s.Pages[id]
		payload = binary.AppendUvarint(payload, uint64(len(data)))
		payload = append(payload, data...)
	}
	return payload
}

func decodePayload(payload []byte) (*Snapshot, error) {
	if len(payload) < payloadFixed {
		return nil, fmt.Errorf("%w: payload %d bytes", ErrCheckpointCorrupt, len(payload))
	}
	s := &Snapshot{
		LSN:          binary.LittleEndian.Uint64(payload),
		OldestActive: binary.LittleEndian.Uint64(payload[8:]),
		MaxTxn:       binary.LittleEndian.Uint64(payload[16:]),
		NextPage:     storage.PageID(binary.LittleEndian.Uint64(payload[24:])),
		PageSize:     int(binary.LittleEndian.Uint64(payload[32:])),
		UnixNano:     int64(binary.LittleEndian.Uint64(payload[40:])),
	}
	off := payloadFixed
	readString := func() (string, bool) {
		n, w := binary.Uvarint(payload[off:])
		if w <= 0 || n > uint64(len(payload)-off-w) {
			return "", false
		}
		off += w
		v := string(payload[off : off+int(n)])
		off += int(n)
		return v, true
	}
	nActive, w := binary.Uvarint(payload[off:])
	if w <= 0 || nActive > uint64(len(payload)-off) {
		return nil, fmt.Errorf("%w: bad active count", ErrCheckpointCorrupt)
	}
	off += w
	for i := uint64(0); i < nActive; i++ {
		owner, ok := readString()
		if !ok {
			return nil, fmt.Errorf("%w: bad active owner", ErrCheckpointCorrupt)
		}
		s.Active = append(s.Active, owner)
	}
	nPages, w := binary.Uvarint(payload[off:])
	if w <= 0 || nPages > uint64(len(payload)-off) {
		return nil, fmt.Errorf("%w: bad page count", ErrCheckpointCorrupt)
	}
	off += w
	s.Pages = make(map[storage.PageID]string, nPages)
	for i := uint64(0); i < nPages; i++ {
		id, w := binary.Uvarint(payload[off:])
		if w <= 0 {
			return nil, fmt.Errorf("%w: bad page id", ErrCheckpointCorrupt)
		}
		off += w
		data, ok := readString()
		if !ok {
			return nil, fmt.Errorf("%w: bad page data", ErrCheckpointCorrupt)
		}
		s.Pages[storage.PageID(id)] = data
	}
	if off != len(payload) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCheckpointCorrupt, len(payload)-off)
	}
	return s, nil
}

// Write persists a checkpoint file for s in dir, fsyncs it and the
// directory, and returns the file path. The caller must have forced the
// WAL durable through s.LSN first. The ckpt.write failpoint fires between
// the two halves of the body so an injected delay plus a SIGKILL lands a
// torn file — which the checksum then rejects at read time.
func Write(dir string, s *Snapshot) (string, error) {
	payload := encodePayload(s)
	header := make([]byte, 0, ckptFixedHeader)
	header = append(header, ckptMagic...)
	header = binary.LittleEndian.AppendUint32(header, ckptVersion)
	header = binary.LittleEndian.AppendUint32(header, uint32(len(payload)))
	header = binary.LittleEndian.AppendUint32(header, crc32.Checksum(payload, castagnoli))

	path := filepath.Join(dir, FileName(s.LSN))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return "", err
	}
	half := len(payload) / 2
	werr := func() error {
		if _, err := f.Write(header); err != nil {
			return err
		}
		if _, err := f.Write(payload[:half]); err != nil {
			return err
		}
		// Mid-body failpoint: an error here abandons the half-written file,
		// a delay here holds the file torn while a crash can land on it.
		if err := fpCkptWrite.Inject(); err != nil {
			return err
		}
		if _, err := f.Write(payload[half:]); err != nil {
			return err
		}
		return f.Sync()
	}()
	cerr := f.Close()
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		// Best-effort cleanup; a leftover partial file is harmless either
		// way (the checksum rejects it).
		os.Remove(path)
		return "", werr
	}
	if err := syncDir(dir); err != nil {
		return "", err
	}
	return path, nil
}

// Load reads and verifies one checkpoint file. Torn, truncated, or
// bit-rotted files return ErrCheckpointCorrupt.
func Load(path string) (*Snapshot, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < ckptFixedHeader || string(raw[:8]) != ckptMagic {
		return nil, fmt.Errorf("%w: %s: bad magic or short header", ErrCheckpointCorrupt, filepath.Base(path))
	}
	if v := binary.LittleEndian.Uint32(raw[8:]); v != ckptVersion {
		return nil, fmt.Errorf("%w: %s: version %d", ErrCheckpointCorrupt, filepath.Base(path), v)
	}
	length := binary.LittleEndian.Uint32(raw[12:])
	sum := binary.LittleEndian.Uint32(raw[16:])
	body := raw[ckptFixedHeader:]
	if uint64(length) != uint64(len(body)) {
		return nil, fmt.Errorf("%w: %s: payload %d bytes, header says %d", ErrCheckpointCorrupt, filepath.Base(path), len(body), length)
	}
	if crc32.Checksum(body, castagnoli) != sum {
		return nil, fmt.Errorf("%w: %s: checksum mismatch", ErrCheckpointCorrupt, filepath.Base(path))
	}
	s, err := decodePayload(body)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", filepath.Base(path), err)
	}
	return s, nil
}

// FileInfo names one checkpoint file found in a directory.
type FileInfo struct {
	Name string
	// LSN is parsed from the file name (the claimed barrier position; only
	// Load proves the file complete).
	LSN uint64
}

// Scan lists checkpoint files in dir, ascending by LSN. Files whose names
// do not parse are ignored.
func Scan(dir string) ([]FileInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var infos []FileInfo
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasPrefix(n, ckptPrefix) || !strings.HasSuffix(n, ckptSuffix) {
			continue
		}
		lsn, perr := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(n, ckptPrefix), ckptSuffix), 10, 64)
		if perr != nil {
			continue
		}
		infos = append(infos, FileInfo{Name: n, LSN: lsn})
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].LSN < infos[j].LSN })
	return infos, nil
}

// Latest returns the newest complete checkpoint in dir, skipping torn or
// corrupt files (newest-first). ErrNoCheckpoint when none verifies.
func Latest(dir string) (*Snapshot, string, error) {
	infos, err := Scan(dir)
	if err != nil {
		return nil, "", err
	}
	for i := len(infos) - 1; i >= 0; i-- {
		path := filepath.Join(dir, infos[i].Name)
		s, lerr := Load(path)
		if lerr == nil {
			return s, path, nil
		}
		if !errors.Is(lerr, ErrCheckpointCorrupt) {
			return nil, "", lerr
		}
	}
	return nil, "", ErrNoCheckpoint
}

// Prune deletes checkpoint files older than keepLSN (the newest complete
// checkpoint's barrier). Runs after truncation so that a crash at any
// earlier point still leaves a checkpoint the surviving log covers.
func Prune(dir string, keepLSN uint64) (int, error) {
	infos, err := Scan(dir)
	if err != nil {
		return 0, err
	}
	removed := 0
	for _, info := range infos {
		if info.LSN >= keepLSN {
			continue
		}
		if err := os.Remove(filepath.Join(dir, info.Name)); err != nil {
			return removed, err
		}
		removed++
	}
	if removed > 0 {
		if err := syncDir(dir); err != nil {
			return removed, err
		}
	}
	return removed, nil
}

// TruncateSegments deletes every WAL segment whose records all fall below
// keepLSN (see Snapshot.TruncateBelow). A segment spans [its first LSN,
// next segment's first LSN), so segment i is dead iff segment i+1 starts
// at or below the boundary; the newest segment is never deleted. Deletion
// runs in ascending LSN order, so a crash partway leaves a contiguous log
// suffix — just with a few extra dead segments that the next checkpoint
// reclaims. The ckpt.truncate failpoint fires before each unlink. Returns
// the number of segments removed.
func TruncateSegments(dir string, keepLSN uint64) (int, error) {
	segs, err := storage.WALSegments(dir)
	if err != nil {
		return 0, err
	}
	removed := 0
	finish := func(err error) (int, error) {
		if removed > 0 {
			if derr := syncDir(dir); err == nil && derr != nil {
				err = derr
			}
		}
		return removed, err
	}
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1].FirstLSN > keepLSN {
			break
		}
		if err := fpCkptTruncate.Inject(); err != nil {
			return finish(err)
		}
		if err := os.Remove(filepath.Join(dir, segs[i].Name)); err != nil {
			return finish(err)
		}
		removed++
	}
	return finish(nil)
}

// syncDir fsyncs a directory so unlinks and creates are themselves
// durable — the same discipline segment rotation uses.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
