package checkpoint

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/storage"
)

func armFault(t *testing.T, kv string) {
	t.Helper()
	name, spec, err := fault.ParseArm(kv)
	if err != nil {
		t.Fatal(err)
	}
	fault.Default.Arm(name, *spec)
	t.Cleanup(func() { fault.Default.Disarm(name) })
}

func sampleSnapshot() *Snapshot {
	return &Snapshot{
		LSN:          42,
		OldestActive: 37,
		MaxTxn:       9,
		NextPage:     5,
		PageSize:     128,
		UnixNano:     1700000000000000000,
		Active:       []string{"T7", "T9"},
		Pages:        map[storage.PageID]string{1: "alpha", 2: "", 4: "delta"},
	}
}

// TestWriteLoadRoundtrip: a checkpoint survives the disk intact —
// field-for-field, including empty pages and the in-flight set.
func TestWriteLoadRoundtrip(t *testing.T) {
	dir := t.TempDir()
	want := sampleSnapshot()
	path, err := Write(dir, want)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != FileName(42) {
		t.Fatalf("path %q, want file %q", path, FileName(42))
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

// TestTruncateBelow: the truncation floor is the barrier unless an
// in-flight transaction's first record is older — losers keep their undo.
func TestTruncateBelow(t *testing.T) {
	s := &Snapshot{LSN: 42}
	if got := s.TruncateBelow(); got != 43 {
		t.Fatalf("no active: TruncateBelow = %d, want 43", got)
	}
	s.OldestActive = 37
	if got := s.TruncateBelow(); got != 37 {
		t.Fatalf("older active: TruncateBelow = %d, want 37", got)
	}
	s.OldestActive = 42
	if got := s.TruncateBelow(); got != 42 {
		t.Fatalf("active at barrier: TruncateBelow = %d, want 42", got)
	}
}

// TestLoadRejectsTornFile: truncation and bit flips both fail the checksum
// and come back as ErrCheckpointCorrupt — the property that makes
// write-in-place safe.
func TestLoadRejectsTornFile(t *testing.T) {
	dir := t.TempDir()
	path, err := Write(dir, sampleSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Torn: the tail never made it to disk.
	if err := os.WriteFile(path, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("torn file: err = %v, want ErrCheckpointCorrupt", err)
	}
	// Bit rot: full length, flipped byte in the payload.
	rot := append([]byte(nil), raw...)
	rot[len(rot)-1] ^= 0xff
	if err := os.WriteFile(path, rot, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("bit rot: err = %v, want ErrCheckpointCorrupt", err)
	}
	// Wrong magic.
	bad := append([]byte(nil), raw...)
	bad[0] = 'X'
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("bad magic: err = %v, want ErrCheckpointCorrupt", err)
	}
}

// TestLatestSkipsTornNewest: when a crash tears the newest checkpoint,
// Latest falls back to the older complete one; with no valid file at all it
// reports ErrNoCheckpoint (full replay).
func TestLatestSkipsTornNewest(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := Latest(dir); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("empty dir: err = %v, want ErrNoCheckpoint", err)
	}

	old := sampleSnapshot()
	old.LSN = 10
	if _, err := Write(dir, old); err != nil {
		t.Fatal(err)
	}
	newer := sampleSnapshot()
	newer.LSN = 42
	newerPath, err := Write(dir, newer)
	if err != nil {
		t.Fatal(err)
	}

	s, path, err := Latest(dir)
	if err != nil || s.LSN != 42 {
		t.Fatalf("Latest = %v (lsn %d), want the LSN-42 checkpoint", err, s.LSN)
	}
	if path != newerPath {
		t.Fatalf("Latest path %q, want %q", path, newerPath)
	}

	// Tear the newest: Latest degrades to the older complete checkpoint.
	raw, _ := os.ReadFile(newerPath)
	if err := os.WriteFile(newerPath, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	s, _, err = Latest(dir)
	if err != nil || s.LSN != 10 {
		t.Fatalf("after tearing newest: Latest = %v (lsn %d), want lsn 10", err, s.LSN)
	}

	// Tear the older one too: nothing verifies, full replay.
	raw, _ = os.ReadFile(filepath.Join(dir, FileName(10)))
	if err := os.WriteFile(filepath.Join(dir, FileName(10)), raw[:8], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Latest(dir); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("all torn: err = %v, want ErrNoCheckpoint", err)
	}
}

// TestWriteFailpointLeavesNoFile: an injected error mid-body abandons the
// write and removes the partial file — the error path a full disk takes.
func TestWriteFailpointLeavesNoFile(t *testing.T) {
	dir := t.TempDir()
	armFault(t, "ckpt.write=error(disk full)")
	if _, err := Write(dir, sampleSnapshot()); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Write = %v, want injected error", err)
	}
	if _, err := os.Stat(filepath.Join(dir, FileName(42))); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("partial checkpoint file left behind: stat err = %v", err)
	}
	if _, _, err := Latest(dir); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("Latest after failed write = %v, want ErrNoCheckpoint", err)
	}
}

// writeSeg drops an empty WAL segment file named for its first LSN.
func writeSeg(t *testing.T, dir string, firstLSN uint64) {
	t.Helper()
	name := filepath.Join(dir, fmt.Sprintf("wal-%020d.seg", firstLSN))
	if err := os.WriteFile(name, nil, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestTruncateSegments: a segment dies only when its successor starts at or
// below the boundary, and the newest segment is never deleted no matter how
// high the boundary climbs.
func TestTruncateSegments(t *testing.T) {
	dir := t.TempDir()
	writeSeg(t, dir, 1)
	writeSeg(t, dir, 100)
	writeSeg(t, dir, 200)

	// Boundary inside segment 100: only segment 1 is entirely dead.
	n, err := TruncateSegments(dir, 150)
	if err != nil || n != 1 {
		t.Fatalf("keep=150: removed %d, %v; want 1", n, err)
	}
	segs, err := storage.WALSegments(dir)
	if err != nil || len(segs) != 2 || segs[0].FirstLSN != 100 {
		t.Fatalf("keep=150 left %+v, %v", segs, err)
	}

	// Boundary above everything: the newest segment still survives.
	n, err = TruncateSegments(dir, 1<<40)
	if err != nil || n != 1 {
		t.Fatalf("keep=max: removed %d, %v; want 1", n, err)
	}
	segs, _ = storage.WALSegments(dir)
	if len(segs) != 1 || segs[0].FirstLSN != 200 {
		t.Fatalf("newest segment must survive, got %+v", segs)
	}

	// Idempotent: nothing left to reclaim.
	n, err = TruncateSegments(dir, 1<<40)
	if err != nil || n != 0 {
		t.Fatalf("second pass removed %d, %v; want 0", n, err)
	}
}

// TestTruncateSegmentsFailpointKeepsContiguous: an injected failure before
// an unlink stops truncation early but the surviving log is still a
// contiguous suffix (deletion is oldest-first).
func TestTruncateSegmentsFailpointKeepsContiguous(t *testing.T) {
	dir := t.TempDir()
	writeSeg(t, dir, 1)
	writeSeg(t, dir, 100)
	writeSeg(t, dir, 200)
	armFault(t, "ckpt.truncate=error(io);after=1")

	n, err := TruncateSegments(dir, 1<<40)
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("err = %v, want injected", err)
	}
	if n != 1 {
		t.Fatalf("removed %d before the failure, want 1", n)
	}
	segs, _ := storage.WALSegments(dir)
	if len(segs) != 2 || segs[0].FirstLSN != 100 || segs[1].FirstLSN != 200 {
		t.Fatalf("surviving log not a contiguous suffix: %+v", segs)
	}
}

// TestPrune: checkpoint files below the newest complete barrier are
// reclaimed; the barrier's own file and anything newer stay.
func TestPrune(t *testing.T) {
	dir := t.TempDir()
	for _, lsn := range []uint64{10, 20, 42} {
		s := sampleSnapshot()
		s.LSN = lsn
		if _, err := Write(dir, s); err != nil {
			t.Fatal(err)
		}
	}
	n, err := Prune(dir, 42)
	if err != nil || n != 2 {
		t.Fatalf("Prune removed %d, %v; want 2", n, err)
	}
	infos, err := Scan(dir)
	if err != nil || len(infos) != 1 || infos[0].LSN != 42 {
		t.Fatalf("after prune: %+v, %v", infos, err)
	}
}
