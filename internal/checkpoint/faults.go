package checkpoint

import "repro/internal/fault"

// The checkpoint subsystem's failpoints. Both are disarmed by default;
// crashtorture arms them to land SIGKILLs mid-checkpoint and
// mid-truncation, proving recovery degrades to an older checkpoint or a
// full replay instead of corrupting.
var (
	// fpCkptWrite fires between the two halves of the checkpoint body —
	// a delay holds the file torn (checksum-invalid) across a crash
	// window; an error abandons the attempt.
	fpCkptWrite = fault.Point("ckpt.write")
	// fpCkptTruncate fires before each dead segment's unlink — a crash
	// here leaves extra history behind, never a log gap.
	fpCkptTruncate = fault.Point("ckpt.truncate")
)
