package checkpoint

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/span"
)

// Source is the engine surface the checkpointer drives. core.DB
// implements it; the interface keeps this package below core in the
// import graph.
type Source interface {
	// CheckpointSnapshot captures a Snapshot under the engine's snapshot
	// barrier: the page image, barrier LSN, and in-flight transactions,
	// mutually consistent.
	CheckpointSnapshot() (*Snapshot, error)
	// ForceWAL blocks until every record with LSN ≤ lsn is durable — the
	// WAL-force rule: a checkpoint image must never reflect records a
	// crash could still lose.
	ForceWAL(lsn uint64) error
	// WALDir is the segment directory checkpoint files live beside.
	WALDir() string
	// WALBytes reports cumulative bytes appended to the log — the
	// bytes-threshold trigger reads it.
	WALBytes() int64
}

// Result summarizes one checkpoint attempt.
type Result struct {
	// Skipped is true when the log held nothing new since the previous
	// checkpoint, so no file was written.
	Skipped bool
	// Path and LSN identify the checkpoint written.
	Path string
	LSN  uint64
	// TruncatedSegments and PrunedFiles count the space reclaimed.
	TruncatedSegments int
	PrunedFiles       int
	// Pages and Active size the snapshot; Took is wall time end to end.
	Pages  int
	Active int
	Took   time.Duration
}

// Checkpointer takes fuzzy checkpoints — on demand via Run, or
// periodically via Start using a time interval and/or a bytes-of-WAL
// threshold.
type Checkpointer struct {
	src      Source
	interval time.Duration
	bytes    int64
	reg      *obs.Registry
	tracer   *span.Tracer

	// runMu serializes checkpoint attempts (the background loop and any
	// manual Run calls).
	runMu     sync.Mutex
	lastLSN   uint64
	lastBytes int64
	runs      int

	started bool
	stop    chan struct{}
	done    chan struct{}
}

// New builds a Checkpointer over src. interval and bytes are the periodic
// triggers (zero disables each; both zero means manual-only). reg and
// tracer may be nil.
func New(src Source, interval time.Duration, bytes int64, reg *obs.Registry, tracer *span.Tracer) *Checkpointer {
	return &Checkpointer{src: src, interval: interval, bytes: bytes, reg: reg, tracer: tracer}
}

// Run takes one checkpoint now: snapshot under the barrier, force the WAL
// through the barrier LSN, write + fsync the checkpoint file, truncate
// dead segments, prune superseded checkpoint files. Any error leaves the
// log untouched or merely under-truncated — never inconsistent.
func (c *Checkpointer) Run() (Result, error) {
	c.runMu.Lock()
	defer c.runMu.Unlock()
	start := time.Now()

	snap, err := c.src.CheckpointSnapshot()
	if err != nil {
		return c.fail(err)
	}
	if snap.LSN == c.lastLSN {
		return Result{Skipped: true, LSN: snap.LSN}, nil
	}
	if err := c.src.ForceWAL(snap.LSN); err != nil {
		return c.fail(err)
	}
	snap.UnixNano = start.UnixNano()
	dir := c.src.WALDir()
	path, err := Write(dir, snap)
	if err != nil {
		return c.fail(err)
	}
	// The checkpoint file is durable; from here every step only reclaims
	// space, and a failure or crash leaves extra history, not less.
	res := Result{
		Path:   path,
		LSN:    snap.LSN,
		Pages:  len(snap.Pages),
		Active: len(snap.Active),
	}
	if res.TruncatedSegments, err = TruncateSegments(dir, snap.TruncateBelow()); err != nil {
		c.observe(res, start, err)
		return res, err
	}
	if res.PrunedFiles, err = Prune(dir, snap.LSN); err != nil {
		c.observe(res, start, err)
		return res, err
	}
	c.lastLSN = snap.LSN
	c.lastBytes = c.src.WALBytes()
	res.Took = time.Since(start)
	c.observe(res, start, nil)
	return res, nil
}

// fail records a checkpoint attempt that produced no file.
func (c *Checkpointer) fail(err error) (Result, error) {
	c.reg.Counter("engine.checkpoint_errors").Add(1)
	c.reg.Recorder().Record(obs.Event{Kind: obs.EvFailure, Actor: "checkpointer", Note: err.Error()})
	return Result{}, err
}

// observe publishes metrics, a flight-recorder event, and an engine-track
// span for a checkpoint that wrote a file (err covers a later reclaim
// step that failed after the file was already durable).
func (c *Checkpointer) observe(res Result, start time.Time, err error) {
	c.reg.Counter("engine.checkpoints").Add(1)
	if res.TruncatedSegments > 0 {
		c.reg.Counter("wal.truncated_segments").Add(int64(res.TruncatedSegments))
	}
	note := fmt.Sprintf("%d pages, %d active, %d segs truncated", res.Pages, res.Active, res.TruncatedSegments)
	if err != nil {
		c.reg.Counter("engine.checkpoint_errors").Add(1)
		note += "; reclaim error: " + err.Error()
	}
	c.reg.Recorder().Record(obs.Event{
		Kind:   obs.EvCheckpoint,
		Actor:  "checkpointer",
		Object: res.Path,
		Dur:    time.Since(start),
		N:      int64(res.TruncatedSegments),
		Note:   note,
	})
	c.runs++
	sp := span.Span{
		ID:    fmt.Sprintf("checkpoint/%d", c.runs),
		Kind:  span.KRecovery,
		Name:  fmt.Sprintf("checkpoint @ LSN %d", res.LSN),
		Start: start,
		End:   time.Now(),
		N:     int64(res.Pages),
		Note:  note,
	}
	if err != nil {
		sp.Err = err.Error()
	}
	c.tracer.RecordEngine(sp)
}

// SeedLSN tells the checkpointer the newest checkpoint already on disk
// (recovery passes it in), so the first periodic run does not rewrite an
// identical checkpoint.
func (c *Checkpointer) SeedLSN(lsn uint64) {
	c.runMu.Lock()
	c.lastLSN = lsn
	c.runMu.Unlock()
}

// Start launches the background loop when a trigger is configured; it is
// a no-op otherwise. Stop must be called to retire a started loop.
func (c *Checkpointer) Start() {
	if c.started || (c.interval <= 0 && c.bytes <= 0) {
		return
	}
	c.started = true
	c.stop = make(chan struct{})
	c.done = make(chan struct{})
	// Poll fast enough to catch a bytes threshold between interval beats.
	period := c.interval
	if c.bytes > 0 {
		period = 100 * time.Millisecond
		if c.interval > 0 && c.interval < period {
			period = c.interval
		}
	}
	go c.loop(period)
}

func (c *Checkpointer) loop(period time.Duration) {
	defer close(c.done)
	tick := time.NewTicker(period)
	defer tick.Stop()
	lastRun := time.Now()
	for {
		select {
		case <-c.stop:
			return
		case <-tick.C:
		}
		due := c.interval > 0 && time.Since(lastRun) >= c.interval
		if !due && c.bytes > 0 {
			c.runMu.Lock()
			seen := c.lastBytes
			c.runMu.Unlock()
			due = c.src.WALBytes()-seen >= c.bytes
		}
		if !due {
			continue
		}
		lastRun = time.Now()
		// Errors are already counted and on the flight recorder; the loop
		// keeps trying (a poisoned WAL just fails every attempt harmlessly).
		_, _ = c.Run()
	}
}

// Stop retires the background loop, if one is running. Idempotent.
func (c *Checkpointer) Stop() {
	if !c.started {
		return
	}
	c.started = false
	close(c.stop)
	<-c.done
}
