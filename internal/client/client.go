// Package client is the Go client for oodbd (internal/server): a
// connection pool speaking the internal/wire frame protocol, with a
// RunWithRetry helper mirroring core.RunWithRetry's shape on the client
// side of the wire.
//
// The protocol binds transaction state to a connection — one connection is
// one server session, at most one open transaction — so the pool hands a
// whole connection to each transaction for its lifetime (the database/sql
// model) and multiplexes only session-independent requests (PING, STATS)
// across whatever connection is free. Within a connection, requests carry
// client-chosen sequence numbers and responses echo them, so concurrent
// callers can share a connection without a lock across the round trip: a
// writer registers its sequence, writes the frame, and parks on its own
// channel while a single reader goroutine dispatches responses by sequence.
//
// Failure semantics on the wire: a typed MsgError response becomes a
// *wire.RemoteError matching the wire sentinels (errors.Is(err,
// wire.ErrDeadlock) etc.). A transport error mid-transaction is NOT
// retried by RunWithRetry when the commit was already in flight — the
// client cannot know whether it committed (commit-in-doubt); it surfaces
// ErrCommitInDoubt instead and the caller reconciles by reading.
package client

import (
	cryptorand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/wire"
)

// Client-side transport errors.
var (
	// ErrClientClosed is returned once Close has been called.
	ErrClientClosed = errors.New("client: closed")
	// ErrConnDead is the transport failure for requests that never got a
	// response because the connection died; the request definitely did not
	// execute or its effects were aborted with the session — EXCEPT for
	// COMMIT, which gets ErrCommitInDoubt instead.
	ErrConnDead = errors.New("client: connection lost")
	// ErrCommitInDoubt means the connection died after a COMMIT was sent and
	// before its response arrived. The server may or may not have committed
	// (if it did, the commit is durable; if it did not, the session abort
	// rolled everything back). The caller must reconcile by reading.
	ErrCommitInDoubt = errors.New("client: commit in doubt (connection lost awaiting COMMIT response)")
	// errNotSent marks transport failures where the request frame provably
	// never left this process (the connection was already dead, or the dial
	// failed). It keeps Commit precise: a COMMIT that was never sent cannot
	// be in doubt, no matter how the connection died.
	errNotSent = errors.New("request not sent")
)

// Options configure Dial.
type Options struct {
	// PoolSize caps pooled idle connections (default 8). More than PoolSize
	// concurrent transactions still work: extra connections are dialed on
	// demand and closed on release instead of pooled.
	PoolSize int
	// DialTimeout bounds each TCP dial (default 5s).
	DialTimeout time.Duration
	// Trace stamps every transaction frame with a distributed trace id (the
	// wire extTrace extension): one id per logical transaction, stable
	// across RunWithRetry attempts, so the server's /trace?trace= surface
	// can join client attempts to engine spans. Opt-in because stamped
	// frames are not decodable by pre-extension servers.
	Trace bool
	// Obs hooks the client pool's own metrics (client.conns_open,
	// client.conns_inuse, client.roundtrips, client.retries.<cause>,
	// client.commit_in_doubt) into a local registry — nil disables at zero
	// cost (every handle is nil-receiver safe).
	Obs *obs.Registry
	// Fallbacks lists additional cluster addresses. When a request is
	// refused with CodeNotLeader, RunWithRetry re-targets the pool at the
	// leader address carried in the refusal — or, lacking a hint, rotates
	// through primary+Fallbacks until one answers as leader.
	Fallbacks []string
	// Seed seeds this pool's backoff-jitter source; 0 derives one from
	// crypto/rand. Each pool owns its source (no cross-pool lock), so two
	// pools with distinct seeds cannot produce lockstep retry storms.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.PoolSize <= 0 {
		o.PoolSize = 8
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	return o
}

// Client is a pooled connection to one oodbd server (re-targetable to its
// peers on leader change). Safe for concurrent use.
type Client struct {
	opts Options

	mu     sync.Mutex
	addr   string   // current target; moves on redirect
	addrs  []string // primary + Fallbacks, rotation order
	free   []*conn
	closed bool

	jmu  sync.Mutex
	jrnd *rand.Rand // pool-local jitter source (see Options.Seed)

	connsOpen     *obs.Gauge   // client.conns_open: live TCP connections
	connsInUse    *obs.Gauge   // client.conns_inuse: checked out of the pool
	roundTrips    *obs.Counter // client.roundtrips: frames sent and answered
	commitInDoubt *obs.Counter // client.commit_in_doubt
	redirects     *obs.Counter // client.redirects: leader-change re-targets
}

// Dial connects to an oodbd server and verifies liveness with a PING.
// With Options.Fallbacks, addresses are tried in order until one answers.
func Dial(addr string, opts Options) (*Client, error) {
	opts = opts.withDefaults()
	reg := opts.Obs
	seed := opts.Seed
	if seed == 0 {
		var b [8]byte
		if _, err := cryptorand.Read(b[:]); err == nil {
			seed = int64(binary.LittleEndian.Uint64(b[:]) >> 1)
		}
		if seed == 0 {
			seed = time.Now().UnixNano()
		}
	}
	c := &Client{
		addr:          addr,
		addrs:         append([]string{addr}, opts.Fallbacks...),
		opts:          opts,
		jrnd:          rand.New(rand.NewSource(seed)),
		connsOpen:     reg.Gauge("client.conns_open"),
		connsInUse:    reg.Gauge("client.conns_inuse"),
		roundTrips:    reg.Counter("client.roundtrips"),
		commitInDoubt: reg.Counter("client.commit_in_doubt"),
		redirects:     reg.Counter("client.redirects"),
	}
	var err error
	for range c.addrs {
		if err = c.Ping(); err == nil {
			return c, nil
		}
		c.rotate()
	}
	return nil, fmt.Errorf("client: dial %s: %w", addr, err)
}

// target returns the pool's current server address.
func (c *Client) target() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.addr
}

// redirect re-targets the pool at addr (a leader hint) and discards idle
// connections to the old target; checked-out connections finish their
// transaction and are culled on release by their stale addr.
func (c *Client) redirect(addr string) {
	c.mu.Lock()
	if c.closed || addr == "" || addr == c.addr {
		c.mu.Unlock()
		return
	}
	c.addr = addr
	free := c.free
	c.free = nil
	c.mu.Unlock()
	c.redirects.Inc()
	for _, nc := range free {
		nc.close(ErrConnDead)
	}
}

// rotate advances to the next known address — the blind fallback when a
// refusal carries no leader hint (an election still in progress).
func (c *Client) rotate() {
	c.mu.Lock()
	next := ""
	for i, a := range c.addrs {
		if a == c.addr {
			next = c.addrs[(i+1)%len(c.addrs)]
			break
		}
	}
	if next == "" && len(c.addrs) > 0 {
		// Current target was a leader hint outside the configured set;
		// restart the rotation from the top.
		next = c.addrs[0]
	}
	c.mu.Unlock()
	c.redirect(next)
}

// retryCounter classifies a retried attempt's failure into its
// client.retries.<cause> counter (no-op without Options.Obs).
func (c *Client) retryCounter(err error) *obs.Counter {
	cause := "other"
	switch {
	case errors.Is(err, wire.ErrDeadlock):
		cause = "deadlock"
	case errors.Is(err, wire.ErrLockTimeout):
		cause = "lock-timeout"
	case errors.Is(err, wire.ErrOverloaded):
		cause = "overloaded"
	case errors.Is(err, wire.ErrNotLeader):
		cause = "not-leader"
	case errors.Is(err, ErrConnDead):
		cause = "conn-dead"
	}
	return c.opts.Obs.Counter("client.retries." + cause)
}

// Close releases every pooled connection. Transactions still holding
// connections keep them until they finish; those connections are closed on
// release.
func (c *Client) Close() error {
	c.mu.Lock()
	free := c.free
	c.free = nil
	c.closed = true
	c.mu.Unlock()
	for _, nc := range free {
		nc.close(ErrClientClosed)
	}
	return nil
}

// get hands out a live pooled connection or dials a fresh one.
func (c *Client) get() (*conn, error) {
	c.mu.Lock()
	addr := c.addr
	for len(c.free) > 0 {
		nc := c.free[len(c.free)-1]
		c.free = c.free[:len(c.free)-1]
		if nc.alive() {
			c.mu.Unlock()
			c.connsInUse.Add(1)
			return nc, nil
		}
		nc.close(ErrConnDead)
	}
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	c.mu.Unlock()
	nc, err := dialConn(addr, c.opts.DialTimeout, c.connsOpen, c.roundTrips)
	if err != nil {
		return nil, err
	}
	c.connsInUse.Add(1)
	return nc, nil
}

// put returns a connection to the pool (or closes it if dead/full/closed,
// or if the pool has been redirected away from the conn's server since).
func (c *Client) put(nc *conn) {
	c.connsInUse.Add(-1)
	if !nc.alive() {
		nc.close(ErrConnDead)
		return
	}
	c.mu.Lock()
	if c.closed || len(c.free) >= c.opts.PoolSize || nc.addr != c.addr {
		c.mu.Unlock()
		nc.close(ErrClientClosed)
		return
	}
	c.free = append(c.free, nc)
	c.mu.Unlock()
}

// roundTrip runs one session-independent request on any free connection.
func (c *Client) roundTrip(m wire.Msg) (string, error) {
	nc, err := c.get()
	if err != nil {
		return "", err
	}
	res, err := nc.call(m)
	c.put(nc)
	return res, err
}

// Ping round-trips a PING frame.
func (c *Client) Ping() error {
	const nonce = "ping"
	res, err := c.roundTrip(wire.Msg{Type: wire.MsgPing, Result: nonce})
	if err != nil {
		return err
	}
	if res != nonce {
		return fmt.Errorf("client: ping echoed %q", res)
	}
	return nil
}

// Stats returns the server's STATS snapshot (JSON; see server.StatsReply
// for the shape — the client deliberately does not import the engine).
func (c *Client) Stats() (string, error) {
	return c.roundTrip(wire.Msg{Type: wire.MsgStats})
}

// Tx is one open server-side transaction, pinned to one connection. Not
// safe for concurrent use (sessions execute serially anyway).
type Tx struct {
	c       *Client
	nc      *conn
	id      string
	done    bool
	trace   string // distributed trace id stamped on every frame ("" = off)
	attempt uint32
}

// newTraceID mints a 16-hex-char distributed trace id.
func (c *Client) newTraceID() string {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; degrade to a
		// jitter-source id rather than a panic in a tracing helper.
		return fmt.Sprintf("%016x", uint64(c.jitter(1<<62)))
	}
	return hex.EncodeToString(b[:])
}

// Begin opens a transaction. The returned Tx owns a pooled connection
// until Commit or Abort; abandoning a Tx leaks its connection until the
// server's idle reaper cuts the session (which aborts the transaction).
// With Options.Trace the transaction gets a fresh trace id (attempt 1);
// retry loops that want a stable id across attempts use BeginTraced.
func (c *Client) Begin() (*Tx, error) {
	if c.opts.Trace {
		return c.BeginTraced(c.newTraceID(), 1)
	}
	return c.beginTx("", 0)
}

// BeginTraced opens a transaction stamped with an explicit trace id and
// attempt counter — RunWithRetry's per-attempt entry point, also usable
// directly to propagate an id minted elsewhere. Requires a server that
// understands the trace extension (see Options.Trace).
func (c *Client) BeginTraced(traceID string, attempt uint32) (*Tx, error) {
	return c.beginTx(traceID, attempt)
}

func (c *Client) beginTx(traceID string, attempt uint32) (*Tx, error) {
	nc, err := c.get()
	if err != nil {
		return nil, err
	}
	id, err := nc.call(wire.Msg{Type: wire.MsgBegin, TraceID: traceID, TraceAttempt: attempt})
	if err != nil {
		c.put(nc)
		return nil, err
	}
	return &Tx{c: c, nc: nc, id: id, trace: traceID, attempt: attempt}, nil
}

// ID returns the server-assigned transaction id.
func (t *Tx) ID() string { return t.id }

// TraceID returns the distributed trace id stamped on this transaction's
// frames ("" when tracing is off).
func (t *Tx) TraceID() string { return t.trace }

// stamp adds the transaction's trace context to an outbound frame.
func (t *Tx) stamp(m wire.Msg) wire.Msg {
	m.TraceID, m.TraceAttempt = t.trace, t.attempt
	return m
}

// Invoke calls method on the object (objType, objName) inside the
// transaction and returns the method result.
func (t *Tx) Invoke(objType, objName, method string, params ...string) (string, error) {
	if t.done {
		return "", wire.ErrTxnFinished
	}
	return t.nc.call(t.stamp(wire.Msg{Type: wire.MsgInvoke, ObjType: objType, ObjName: objName,
		Method: method, Params: params}))
}

// PageRead reads a raw page inside the transaction.
func (t *Tx) PageRead(page uint64) (string, error) {
	if t.done {
		return "", wire.ErrTxnFinished
	}
	return t.nc.call(t.stamp(wire.Msg{Type: wire.MsgPageRead, Page: page}))
}

// PageWrite writes a raw page inside the transaction.
func (t *Tx) PageWrite(page uint64, data string) error {
	if t.done {
		return wire.ErrTxnFinished
	}
	_, err := t.nc.call(t.stamp(wire.Msg{Type: wire.MsgPageWrite, Page: page, Params: []string{data}}))
	return err
}

// finish releases the Tx's connection back to the pool.
func (t *Tx) finish() {
	t.done = true
	t.c.put(t.nc)
}

// Commit commits the transaction. A transport failure here is
// ErrCommitInDoubt: the COMMIT may have executed durably even though its
// response never arrived — unless the frame provably never left the
// process (the connection was already dead before the write), in which
// case the plain transport error comes back and the caller may retry.
func (t *Tx) Commit() error {
	if t.done {
		return wire.ErrTxnFinished
	}
	_, err := t.nc.call(t.stamp(wire.Msg{Type: wire.MsgCommit}))
	t.finish()
	if err != nil && errors.Is(err, ErrConnDead) && !errors.Is(err, errNotSent) {
		t.c.commitInDoubt.Inc()
		return fmt.Errorf("%w (txn %s)", ErrCommitInDoubt, t.id)
	}
	return err
}

// Abort rolls the transaction back. A transport failure is fine: the
// session abort on the server reaches the same state.
func (t *Tx) Abort() error {
	if t.done {
		return wire.ErrTxnFinished
	}
	_, err := t.nc.call(t.stamp(wire.Msg{Type: wire.MsgAbort}))
	t.finish()
	if err != nil && errors.Is(err, ErrConnDead) {
		return nil // disconnect == abort server-side
	}
	return err
}

// RetryPolicy configures RunWithRetry; the zero value gets the same
// defaults as core.RetryPolicy.
type RetryPolicy struct {
	// MaxAttempts bounds body executions (default 50).
	MaxAttempts int
	// BaseBackoff doubles per attempt up to MaxBackoff, jittered over the
	// upper half (defaults 200µs / 10ms, mirroring the in-process loop).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// RetryOverload opts overload refusals into the retry loop. The server's
	// admission controller already queued the request for the full admission
	// timeout before refusing, so overload retries are deliberately opt-in
	// and use MaxBackoff flat instead of the exponential ramp.
	RetryOverload bool
	// OnRetry fires after every failed attempt, before the backoff sleep.
	OnRetry func(attempt int, err error)
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 50
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 200 * time.Microsecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 10 * time.Millisecond
	}
	return p
}

// backoffFor mirrors core.RetryPolicy.backoffFor: exponential, capped,
// jittered to [d/2, d) from the pool's own source.
func (p RetryPolicy) backoffFor(attempt int, jitter func(int64) int64) time.Duration {
	d := p.BaseBackoff
	for i := 1; i < attempt && d < p.MaxBackoff; i++ {
		d *= 2
	}
	if d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(jitter(int64(half)))
}

// jitter draws from the pool-local source seeded in Dial — formerly a
// package-global locked source, which made every pool in the process share
// one stream (lock contention, and identical backoff sequences under a
// fixed seed).
func (c *Client) jitter(n int64) int64 {
	c.jmu.Lock()
	defer c.jmu.Unlock()
	return c.jrnd.Int63n(n)
}

// RunWithRetry executes body inside a fresh remote transaction, committing
// on success and retrying the typed transient failures (deadlock victims,
// lock timeouts — wire.Retryable; overload refusals only with
// RetryOverload) with jittered exponential backoff. Terminal errors —
// degraded engine, closed engine, commit-in-doubt — stop the loop
// immediately, exactly like core.RunWithRetry's terminal set.
//
// A CodeNotLeader refusal (this server is a replica) is also retried:
// the pool re-targets at the leader address carried in the refusal, or
// rotates through Options.Fallbacks when the refusal has no hint (an
// election in progress). Transport loss retries too — outside COMMIT the
// server-side session abort rolled the attempt back, and a COMMIT whose
// frame was never sent provably did not execute — which is exactly the
// leader-crash case: the connection dies, the next attempt lands on a
// replica, the replica's refusal names the new leader. Only a COMMIT that
// was in flight when the connection died is terminal (ErrCommitInDoubt).
//
// With Options.Trace one trace id is minted per call and stamped on every
// attempt with its attempt counter, so the whole retry history of the
// logical transaction shares one id server-side (body can read it via
// Tx.TraceID).
func (c *Client) RunWithRetry(p RetryPolicy, body func(t *Tx) error) error {
	p = p.withDefaults()
	traceID := ""
	if c.opts.Trace {
		traceID = c.newTraceID()
	}
	var lastErr error
	for attempt := 1; attempt <= p.MaxAttempts; attempt++ {
		if attempt > 1 {
			time.Sleep(p.backoffFor(attempt-1, c.jitter))
		}
		tx, err := c.beginTx(traceID, uint32(attempt))
		if err == nil {
			err = body(tx)
			if err == nil {
				cerr := tx.Commit()
				if cerr == nil {
					return nil
				}
				// A typed not-leader refusal of the COMMIT means the server
				// rejected it without reaching quorum and aborted, and a
				// transport loss before the frame was even sent means the
				// server never saw it: either way the transaction is rolled
				// back everywhere and the retry below is exactly-once safe.
				// Everything else — in-doubt, durability, degraded refusals —
				// is terminal; no blind re-run can fix those.
				if !errors.Is(cerr, wire.ErrNotLeader) && !errors.Is(cerr, errNotSent) {
					return cerr
				}
				err = cerr
			} else {
				_ = tx.Abort()
			}
		}
		if p.OnRetry != nil {
			p.OnRetry(attempt, err)
		}
		notLeader := errors.Is(err, wire.ErrNotLeader)
		// Transport loss outside COMMIT is safe to retry: the protocol binds
		// the transaction to the session, so the server-side abort on
		// disconnect already rolled it back.
		retryable := notLeader || wire.Retryable(err) ||
			errors.Is(err, ErrConnDead) ||
			(p.RetryOverload && errors.Is(err, wire.ErrOverloaded))
		if !retryable {
			return err
		}
		c.retryCounter(err).Inc()
		if notLeader {
			if hint := wire.LeaderHint(err); hint != "" {
				c.redirect(hint)
			} else {
				c.rotate()
			}
		} else if errors.Is(err, ErrConnDead) {
			// The target died under us; move the pool along before redialing.
			c.rotate()
		}
		if errors.Is(err, wire.ErrOverloaded) {
			// Flat, maximal backoff for overload: the admission queue already
			// absorbed the exponential ramp server-side.
			time.Sleep(p.MaxBackoff)
		}
		lastErr = err
	}
	return fmt.Errorf("client: transaction gave up after %d attempts: %w", p.MaxAttempts, lastErr)
}

// conn is one TCP connection: a write path guarded by seq registration and
// a single reader goroutine dispatching responses by echoed seq.
type conn struct {
	c    net.Conn
	addr string // server this conn was dialed to (stale-target culling)

	writeMu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	seq     uint64
	pending map[uint64]chan wire.Msg
	dead    error // non-nil once the reader exits; guarded by mu

	open  *obs.Gauge   // client.conns_open; decremented once on death
	trips *obs.Counter // client.roundtrips
}

func dialConn(addr string, timeout time.Duration, open *obs.Gauge, trips *obs.Counter) (*conn, error) {
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("%w (%w): %v", ErrConnDead, errNotSent, err)
	}
	nc := &conn{c: c, addr: addr, pending: make(map[uint64]chan wire.Msg), open: open, trips: trips}
	open.Add(1)
	go nc.readLoop()
	return nc, nil
}

func (nc *conn) alive() bool {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	return nc.dead == nil
}

// close tears the connection down and fails every pending call with cause.
func (nc *conn) close(cause error) {
	nc.c.Close()
	nc.fail(cause)
}

// fail marks the connection dead (first cause wins) and wakes every
// pending caller by closing its channel.
func (nc *conn) fail(cause error) {
	nc.mu.Lock()
	first := nc.dead == nil
	if first {
		nc.dead = cause
	}
	pending := nc.pending
	nc.pending = make(map[uint64]chan wire.Msg)
	nc.mu.Unlock()
	if first {
		nc.open.Add(-1)
	}
	for _, ch := range pending {
		close(ch)
	}
}

func (nc *conn) readLoop() {
	for {
		m, err := wire.ReadMsg(nc.c)
		if err != nil {
			nc.close(fmt.Errorf("%w: %v", ErrConnDead, err))
			return
		}
		nc.mu.Lock()
		ch := nc.pending[m.Seq]
		delete(nc.pending, m.Seq)
		nc.mu.Unlock()
		if ch != nil {
			ch <- m
		}
	}
}

// call performs one request/response round trip. Typed server errors come
// back as *wire.RemoteError; transport loss as ErrConnDead.
func (nc *conn) call(m wire.Msg) (string, error) {
	ch := make(chan wire.Msg, 1)
	nc.mu.Lock()
	if nc.dead != nil {
		err := nc.dead
		nc.mu.Unlock()
		return "", fmt.Errorf("%w (%w)", err, errNotSent)
	}
	nc.seq++
	m.Seq = nc.seq
	nc.pending[m.Seq] = ch
	nc.mu.Unlock()

	nc.writeMu.Lock()
	err := wire.WriteMsg(nc.c, m)
	nc.writeMu.Unlock()
	if err != nil {
		nc.close(fmt.Errorf("%w: %v", ErrConnDead, err))
		return "", ErrConnDead
	}
	resp, ok := <-ch
	if !ok {
		nc.mu.Lock()
		err := nc.dead
		nc.mu.Unlock()
		return "", err
	}
	nc.trips.Inc()
	if resp.Type == wire.MsgError {
		return "", wire.RemoteErr(resp.Code, resp.Result)
	}
	return resp.Result, nil
}
