package client

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/server"
	"repro/internal/storage"
	"repro/internal/wire"
	"repro/internal/workload"
)

// startServer brings up a full oodbd stack (engine + session layer) with
// the banking workload installed.
func startServer(t *testing.T, copts core.Options) (*server.Server, string) {
	t.Helper()
	if copts.Durability == 0 {
		copts.Durability = storage.GroupCommit
	}
	if copts.WALDir == "" {
		copts.WALDir = t.TempDir()
	}
	db, err := core.OpenDurable(copts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := workload.InstallBanking(db, 8, 1000); err != nil {
		t.Fatal(err)
	}
	srv := server.New(db, server.Options{})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return srv, addr
}

// TestClientBankingE2E: concurrent transfers through the pooled client
// conserve money — the paper's serializability invariant, end to end over
// TCP.
func TestClientBankingE2E(t *testing.T) {
	srv, addr := startServer(t, core.Options{MaxInflight: 16})
	cl, err := Dial(addr, Options{PoolSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const workers, txns = 8, 25
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < txns; i++ {
				from := strconv.Itoa(w % 8)
				to := strconv.Itoa((w + i + 1) % 8)
				if from == to {
					continue
				}
				err := cl.RunWithRetry(RetryPolicy{}, func(tx *Tx) error {
					if _, err := tx.Invoke(workload.AccountType, "Acct"+from, "debit", "5"); err != nil {
						return err
					}
					_, err := tx.Invoke(workload.AccountType, "Acct"+to, "credit", "5")
					return err
				})
				if err != nil {
					errCh <- fmt.Errorf("worker %d txn %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}

	var total int64
	tx, err := cl.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		s, err := tx.Invoke(workload.AccountType, "Acct"+strconv.Itoa(i), "balance")
		if err != nil {
			t.Fatal(err)
		}
		bal, _ := strconv.ParseInt(s, 10, 64)
		total += bal
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if total != 8*1000 {
		t.Fatalf("money not conserved over the wire: %d != %d", total, 8*1000)
	}
	if got := srv.DB().Health().Inflight; got != 0 {
		t.Fatalf("leaked admission slots: %d", got)
	}
}

// TestPoolReuse: sequential transactions ride the same pooled connection
// instead of dialing per transaction.
func TestPoolReuse(t *testing.T) {
	srv, addr := startServer(t, core.Options{Obs: obs.New()})
	cl, err := Dial(addr, Options{PoolSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 20; i++ {
		if err := cl.RunWithRetry(RetryPolicy{}, func(tx *Tx) error {
			_, err := tx.Invoke(workload.AccountType, "Acct0", "balance")
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Dial's ping opens one connection; the 20 transactions must have
	// reused it rather than opening 20 more.
	if n := srv.DB().Obs().Counter("server.sessions_total").Load(); n > 3 {
		t.Fatalf("20 sequential txns opened %d sessions, want pooled reuse", n)
	}
}

// TestTypedErrorsOverWire: engine failures arrive as wire sentinels the
// caller can errors.Is against, without importing engine packages.
func TestTypedErrorsOverWire(t *testing.T) {
	_, addr := startServer(t, core.Options{})
	cl, err := Dial(addr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	tx, err := cl.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Invoke(workload.AccountType, "Acct0", "nosuch"); !errors.Is(err, wire.ErrUnknownMethod) {
		t.Fatalf("unknown method: %v, want wire.ErrUnknownMethod", err)
	}
	if _, err := tx.Invoke("nosuchtype", "X", "m"); !errors.Is(err, wire.ErrUnknownType) {
		t.Fatalf("unknown type: %v, want wire.ErrUnknownType", err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, wire.ErrTxnFinished) {
		t.Fatalf("commit after abort: %v, want wire.ErrTxnFinished", err)
	}
}

// TestRetryOnLockTimeout: a lock-timeout refusal is typed retryable, so
// RunWithRetry transparently waits out a conflicting transaction.
func TestRetryOnLockTimeout(t *testing.T) {
	_, addr := startServer(t, core.Options{LockTimeout: 25 * time.Millisecond})
	cl, err := Dial(addr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Hold an update lock on Acct0 (credit conflicts with balance).
	holder, err := cl.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := holder.Invoke(workload.AccountType, "Acct0", "credit", "10"); err != nil {
		t.Fatal(err)
	}

	var retries atomic.Int64
	done := make(chan error, 1)
	go func() {
		done <- cl.RunWithRetry(RetryPolicy{
			MaxAttempts: 100,
			OnRetry: func(_ int, err error) {
				if errors.Is(err, wire.ErrLockTimeout) {
					retries.Add(1)
				}
			},
		}, func(tx *Tx) error {
			_, err := tx.Invoke(workload.AccountType, "Acct0", "balance")
			return err
		})
	}()

	time.Sleep(100 * time.Millisecond) // let the reader hit the lock timeout at least once
	if err := holder.Commit(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("RunWithRetry across a lock conflict: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("RunWithRetry never finished")
	}
	if retries.Load() == 0 {
		t.Fatal("conflicting reader never observed a typed lock-timeout retry")
	}
}

// TestOverloadOptIn: overload refusals are terminal by default and
// retryable only with RetryOverload.
func TestOverloadOptIn(t *testing.T) {
	_, addr := startServer(t, core.Options{
		MaxInflight:      1,
		AdmissionTimeout: 20 * time.Millisecond,
	})
	cl, err := Dial(addr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	holder, err := cl.Begin()
	if err != nil {
		t.Fatal(err)
	}

	// Default policy: fail fast with the typed overload error.
	err = cl.RunWithRetry(RetryPolicy{}, func(tx *Tx) error { return nil })
	if !errors.Is(err, wire.ErrOverloaded) {
		t.Fatalf("overloaded RunWithRetry: %v, want wire.ErrOverloaded", err)
	}

	// Opt-in policy: keep retrying until the slot frees.
	done := make(chan error, 1)
	go func() {
		done <- cl.RunWithRetry(RetryPolicy{
			RetryOverload: true,
			MaxBackoff:    10 * time.Millisecond,
		}, func(tx *Tx) error { return nil })
	}()
	time.Sleep(60 * time.Millisecond)
	if err := holder.Abort(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("RetryOverload RunWithRetry: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("RetryOverload RunWithRetry never finished")
	}
}

// TestCommitInDoubt: a connection cut between sending COMMIT and receiving
// its response must surface the distinct in-doubt error, not a silent
// failure and not a retry. Uses a scripted fake server so the cut lands
// exactly on the commit.
func TestCommitInDoubt(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				for {
					m, err := wire.ReadMsg(c)
					if err != nil {
						return
					}
					switch m.Type {
					case wire.MsgCommit:
						return // die without answering: commit in doubt
					case wire.MsgBegin:
						_ = wire.WriteMsg(c, wire.Msg{Seq: m.Seq, Type: wire.MsgResult, Result: "T-1"})
					default:
						_ = wire.WriteMsg(c, wire.Msg{Seq: m.Seq, Type: wire.MsgResult, Result: m.Result})
					}
				}
			}(c)
		}
	}()

	cl, err := Dial(ln.Addr().String(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	tx, err := cl.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrCommitInDoubt) {
		t.Fatalf("cut commit: %v, want ErrCommitInDoubt", err)
	}
	// And RunWithRetry treats it as terminal — no blind re-run.
	attempts := 0
	err = cl.RunWithRetry(RetryPolicy{MaxAttempts: 5}, func(tx *Tx) error {
		attempts++
		return nil
	})
	if !errors.Is(err, ErrCommitInDoubt) {
		t.Fatalf("RunWithRetry across in-doubt commit: %v", err)
	}
	if attempts != 1 {
		t.Fatalf("in-doubt commit was blindly retried %d times", attempts)
	}
}

// TestClientClosed: Close fails future work with the typed client error.
func TestClientClosed(t *testing.T) {
	_, addr := startServer(t, core.Options{})
	cl, err := Dial(addr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Begin(); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("Begin after Close: %v, want ErrClientClosed", err)
	}
}

// TestClientWrongPartitionTerminal: on a partitioned server, a transaction
// that strays off its pinned partition gets the typed sentinel through the
// pooled client, and RunWithRetry treats it as terminal — the routing is
// deterministic, so a blind replay would stray identically.
func TestClientWrongPartitionTerminal(t *testing.T) {
	const n = 4
	c, err := partition.Open(partition.Options{
		N: n,
		Register: func(i int, db *core.DB) error {
			_, err := workload.InstallBanking(db, 8, 1000)
			return err
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.NewCluster(c, server.Options{})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})

	// Find two accounts on different partitions.
	pin := "Acct0"
	other := ""
	for i := 1; i < 8; i++ {
		name := "Acct" + strconv.Itoa(i)
		if partition.RouteName(name, n) != partition.RouteName(pin, n) {
			other = name
			break
		}
	}
	if other == "" {
		t.Skip("Acct0..7 all hash to one partition")
	}

	cl, err := Dial(addr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	attempts := 0
	err = cl.RunWithRetry(RetryPolicy{MaxAttempts: 5}, func(tx *Tx) error {
		attempts++
		if _, err := tx.Invoke(workload.AccountType, pin, "debit", "5"); err != nil {
			return err
		}
		_, err := tx.Invoke(workload.AccountType, other, "credit", "5")
		return err
	})
	if !errors.Is(err, wire.ErrWrongPartition) {
		t.Fatalf("cross-partition transfer: %v, want wire.ErrWrongPartition", err)
	}
	if attempts != 1 {
		t.Fatalf("wrong-partition error was retried %d times — must be terminal", attempts)
	}

	// Same-partition work on the same client is unaffected.
	if err := cl.RunWithRetry(RetryPolicy{}, func(tx *Tx) error {
		_, err := tx.Invoke(workload.AccountType, pin, "balance")
		return err
	}); err != nil {
		t.Fatalf("same-partition txn after refusal: %v", err)
	}
}
