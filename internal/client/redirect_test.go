package client

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/recovery"
	"repro/internal/repl"
	"repro/internal/server"
	"repro/internal/storage"
	"repro/internal/wire"
	"repro/internal/workload"
)

// replHarness is a two-node replicated deployment: each repl.Node fronted
// by a server.NewReplicated session layer, advertising its client address
// in redirect hints.
type replHarness struct {
	nodes   []*repl.Node
	servers []*server.Server
	client  []string // client (session-layer) addresses, indexed like nodes
}

func replBankEngine(n int) func(dir string, fresh bool) (*core.DB, error) {
	return func(dir string, fresh bool) (*core.DB, error) {
		opts := core.Options{Durability: storage.GroupCommit, WALDir: dir}
		if fresh {
			db, err := core.OpenDurable(opts)
			if err != nil {
				return nil, err
			}
			if _, err := workload.InstallBanking(db, n, 0); err != nil {
				db.Close()
				return nil, err
			}
			return db, nil
		}
		db, _, err := recovery.RecoverDir(dir, opts, func(db *core.DB) error {
			_, rerr := workload.RegisterBanking(db, n)
			return rerr
		})
		return db, err
	}
}

// reserveAddrs grabs k distinct loopback addresses (listeners closed
// before returning — the usual test-only port-reservation race).
func reserveAddrs(t *testing.T, k int) []string {
	t.Helper()
	addrs := make([]string, k)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs
}

func startReplicated(t *testing.T, k int) *replHarness {
	t.Helper()
	replAddrs := reserveAddrs(t, k)
	clientAddrs := reserveAddrs(t, k)
	h := &replHarness{client: clientAddrs}
	for i := 0; i < k; i++ {
		cfg := repl.Config{
			ID:              fmt.Sprintf("n%d", i),
			Addr:            replAddrs[i],
			Advertise:       clientAddrs[i],
			Dir:             t.TempDir(),
			OpenEngine:      replBankEngine(4),
			ElectionTimeout: 60 * time.Millisecond,
			Heartbeat:       15 * time.Millisecond,
			AckTimeout:      500 * time.Millisecond,
			Durability:      storage.GroupCommit,
			Logf:            t.Logf,
		}
		for j := 0; j < k; j++ {
			if j != i {
				cfg.Peers = append(cfg.Peers, repl.Peer{ID: fmt.Sprintf("n%d", j), Addr: replAddrs[j]})
			}
		}
		n, err := repl.Open(cfg)
		if err != nil {
			t.Fatalf("open node %d: %v", i, err)
		}
		h.nodes = append(h.nodes, n)
		srv := server.NewReplicated(n, nil, server.Options{})
		if _, err := srv.Start(clientAddrs[i]); err != nil {
			t.Fatalf("start server %d: %v", i, err)
		}
		h.servers = append(h.servers, srv)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		for _, srv := range h.servers {
			_ = srv.Shutdown(ctx)
		}
		for _, n := range h.nodes {
			_ = n.Close()
		}
	})
	return h
}

// waitReplLeader blocks until one node is a fully promoted leader and
// returns its index.
func (h *replHarness) waitReplLeader(t *testing.T) int {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		for i, n := range h.nodes {
			if _, ok := n.LeaderCluster(); ok {
				return i
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("no leader elected")
	return -1
}

// TestClientRedirectsOnNotLeader: a pool pointed at a replica follows the
// CodeNotLeader hint to the leader mid-transaction — the in-flight
// transaction is retried against the leader, commits exactly once, and
// never surfaces ErrCommitInDoubt. Run with -race: the redirect swaps the
// pool target while other goroutines hold connections.
func TestClientRedirectsOnNotLeader(t *testing.T) {
	h := startReplicated(t, 2)
	lead := h.waitReplLeader(t)
	follower := h.client[1-lead]

	// Prove the refusal shape first: a raw transaction against the replica
	// opens read-only and gets a typed not-leader with the leader's address
	// on its first write.
	probe, err := Dial(follower, Options{PoolSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer probe.Close()
	tx, err := probe.Begin()
	if err != nil {
		t.Fatal(err)
	}
	_, err = tx.Invoke(workload.AccountType, "Acct0", "credit", "1")
	if !errors.Is(err, wire.ErrNotLeader) {
		t.Fatalf("replica write: got %v, want ErrNotLeader", err)
	}
	if hint := wire.LeaderHint(err); hint != h.client[lead] {
		t.Fatalf("leader hint %q, want %q", hint, h.client[lead])
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}

	// Now the real thing: a pool whose PRIMARY is the replica, with the
	// leader only reachable via the redirect hint. Concurrent transfers
	// must all land, none in doubt.
	cl, err := Dial(follower, Options{PoolSize: 4, Fallbacks: []string{h.client[lead]}, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const workers, txns, amount = 4, 10, 3
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < txns; i++ {
				err := cl.RunWithRetry(RetryPolicy{}, func(tx *Tx) error {
					_, err := tx.Invoke(workload.AccountType, "Acct"+strconv.Itoa(w%4), "credit", strconv.Itoa(amount))
					return err
				})
				if err != nil {
					errCh <- fmt.Errorf("worker %d txn %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if errors.Is(err, ErrCommitInDoubt) {
			t.Fatalf("redirect surfaced commit-in-doubt: %v", err)
		}
		t.Fatal(err)
	}

	if got := cl.target(); got != h.client[lead] {
		t.Fatalf("pool target %q after redirect, want leader %q", got, h.client[lead])
	}

	// Every credit landed exactly once, checked on the leader.
	var total int64
	err = cl.RunWithRetry(RetryPolicy{}, func(tx *Tx) error {
		total = 0
		for i := 0; i < 4; i++ {
			s, err := tx.Invoke(workload.AccountType, "Acct"+strconv.Itoa(i), "balance")
			if err != nil {
				return err
			}
			bal, _ := strconv.ParseInt(s, 10, 64)
			total += bal
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(workers * txns * amount); total != want {
		t.Fatalf("credits lost or doubled across redirect: total %d, want %d", total, want)
	}
}
