package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/span"
	"repro/internal/wire"
	"repro/internal/workload"
)

// TestTracePropagationE2E: a client-stamped trace id crosses the wire and
// lands on the engine's span tree — the KSession span carries the remote
// id, so /trace?trace=<id> can join the client's attempt to the server-side
// lock/WAL spans.
func TestTracePropagationE2E(t *testing.T) {
	srv, addr := startServer(t, core.Options{Obs: obs.New()})
	reg := obs.New()
	cl, err := Dial(addr, Options{Trace: true, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	var traceID string
	err = cl.RunWithRetry(RetryPolicy{}, func(tx *Tx) error {
		traceID = tx.TraceID()
		if _, err := tx.Invoke(workload.AccountType, "Acct0", "debit", "5"); err != nil {
			return err
		}
		_, err := tx.Invoke(workload.AccountType, "Acct1", "credit", "5")
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if traceID == "" {
		t.Fatal("Options.Trace did not stamp a trace id")
	}

	matches := srv.DB().Spans().LookupRemote(traceID)
	if len(matches) != 1 {
		t.Fatalf("server found %d transactions for trace %s, want 1", len(matches), traceID)
	}
	snap := matches[0].Snapshot()
	if snap.Remote != traceID || snap.RemoteAttempt != 1 {
		t.Fatalf("remote stamp = %q attempt %d, want %q attempt 1", snap.Remote, snap.RemoteAttempt, traceID)
	}
	var sess *span.Span
	for i := range snap.Spans {
		if snap.Spans[i].Kind == span.KSession {
			sess = &snap.Spans[i]
		}
	}
	if sess == nil {
		t.Fatalf("no KSession span on the engine trace: %+v", snap.Spans)
	}
	if sess.Class != "p0" {
		t.Fatalf("session span partition class = %q, want p0", sess.Class)
	}

	// Client-side pool instrumentation observed the same run.
	if n := reg.Counter("client.roundtrips").Load(); n == 0 {
		t.Fatal("client.roundtrips never incremented")
	}
	if n := reg.Gauge("client.conns_open").Load(); n < 1 {
		t.Fatalf("client.conns_open = %d with a live pooled connection", n)
	}
}

// TestTraceIDStableAcrossRetries: every attempt of one logical RunWithRetry
// transaction carries the SAME trace id with an increasing attempt counter,
// so the server-side fan-out shows the whole retry history.
func TestTraceIDStableAcrossRetries(t *testing.T) {
	srv, addr := startServer(t, core.Options{
		Obs:         obs.New(),
		LockTimeout: 25 * time.Millisecond,
	})
	reg := obs.New()
	cl, err := Dial(addr, Options{Trace: true, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	holder, err := cl.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := holder.Invoke(workload.AccountType, "Acct0", "credit", "10"); err != nil {
		t.Fatal(err)
	}

	ids := make(map[string]bool)
	var idMu atomic.Value
	var retried atomic.Int64
	done := make(chan error, 1)
	go func() {
		done <- cl.RunWithRetry(RetryPolicy{
			MaxAttempts: 100,
			OnRetry: func(_ int, err error) {
				if errors.Is(err, wire.ErrLockTimeout) {
					retried.Add(1)
				}
			},
		}, func(tx *Tx) error {
			idMu.Store(tx.TraceID())
			ids[tx.TraceID()] = true
			_, err := tx.Invoke(workload.AccountType, "Acct0", "balance")
			return err
		})
	}()

	time.Sleep(100 * time.Millisecond)
	if err := holder.Commit(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("RunWithRetry never finished")
	}
	if retried.Load() == 0 {
		t.Fatal("holder never forced a lock-timeout retry")
	}
	if len(ids) != 1 {
		t.Fatalf("retry attempts used %d distinct trace ids, want 1: %v", len(ids), ids)
	}
	traceID := idMu.Load().(string)

	// Every attempt is its own engine transaction; the remote fan-out must
	// surface at least the aborted attempt and the committed one, with
	// distinct attempt counters.
	matches := srv.DB().Spans().LookupRemote(traceID)
	if len(matches) < 2 {
		t.Fatalf("server found %d attempts for trace %s, want >= 2", len(matches), traceID)
	}
	attempts := make(map[uint32]bool)
	for _, tt := range matches {
		snap := tt.Snapshot()
		if snap.Remote != traceID {
			t.Fatalf("fan-out pulled a foreign trace: %q", snap.Remote)
		}
		attempts[snap.RemoteAttempt] = true
	}
	if !attempts[1] || len(attempts) < 2 {
		t.Fatalf("attempt counters not increasing from 1: %v", attempts)
	}

	// The retry cause landed on the client-side counter.
	if n := reg.Counter("client.retries.lock-timeout").Load(); n == 0 {
		t.Fatal("client.retries.lock-timeout never incremented")
	}
}

// TestConnGaugeLifecycle: conns_open tracks dial and close, conns_in_use
// returns to zero when no transaction holds a connection.
func TestConnGaugeLifecycle(t *testing.T) {
	_, addr := startServer(t, core.Options{})
	reg := obs.New()
	cl, err := Dial(addr, Options{PoolSize: 2, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	tx, err := cl.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if n := reg.Gauge("client.conns_inuse").Load(); n != 1 {
		t.Fatalf("conns_in_use = %d with one open transaction", n)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if n := reg.Gauge("client.conns_inuse").Load(); n != 0 {
		t.Fatalf("conns_in_use = %d after commit", n)
	}
	if n := reg.Gauge("client.conns_open").Load(); n < 1 {
		t.Fatalf("conns_open = %d with a pooled connection", n)
	}
	cl.Close()
	deadline := time.Now().Add(2 * time.Second)
	for reg.Gauge("client.conns_open").Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("conns_open = %d after Close", reg.Gauge("client.conns_open").Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestHealthzDraining: the health endpoint flips ready(200) → draining(503)
// when shutdown begins, and stays answerable through the drain.
func TestHealthzDraining(t *testing.T) {
	srv, addr := startServer(t, core.Options{MaxInflight: 4})
	cl, err := Dial(addr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}

	h := srv.HealthzHandler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Fatalf("ready server /healthz = %d: %s", rec.Code, rec.Body.String())
	}
	var reply struct {
		Status     string `json:"status"`
		Partitions []struct {
			Partition string `json:"partition"`
		} `json:"partitions"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &reply); err != nil {
		t.Fatal(err)
	}
	if reply.Status != "ready" || len(reply.Partitions) != 1 || reply.Partitions[0].Partition != "p0" {
		t.Fatalf("ready reply = %+v", reply)
	}

	// The test-cleanup Shutdown hasn't run yet; trigger one and observe the
	// draining status.
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		rec = httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
		if rec.Code == 503 {
			body := rec.Body.String()
			if err := json.Unmarshal(rec.Body.Bytes(), &reply); err != nil {
				t.Fatal(err)
			}
			if reply.Status != "draining" {
				t.Fatalf("503 with status %q: %s", reply.Status, body)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healthz never reported draining")
		}
		time.Sleep(2 * time.Millisecond)
	}
	<-shutdownDone
}
