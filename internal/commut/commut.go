// Package commut implements commutativity specifications for object types
// (Definition 9 of the paper). A specification decides, for two method
// invocations on the same object, whether they commute (Θ̄, "theta-bar" in
// the paper) or are in conflict (Θ). Commuting actions may be reordered in
// an equivalent schedule; conflicting actions must keep their order and the
// dependency is inherited by the calling transactions (Definition 10).
//
// Three kinds of specification are provided, mirroring the lineage the
// paper cites:
//
//   - Matrix: a symmetric method-name table (the classical read/write
//     conflict matrix is the degenerate case).
//   - ParamSpec: parameter-dependent commutativity in the style of Weihl
//     and of Spector & Schwartz, e.g. insert(k1) and insert(k2) on a B+ tree
//     node commute iff k1 ≠ k2.
//   - Escrow: value-based commutativity for numeric objects (O'Neil's
//     escrow method, the paper's refs [9,14,17]) — increments and
//     decrements commute as long as declared bounds cannot be violated.
//
// Specifications are registered per object type in a Registry; the
// transaction engine consults the registry both online (semantic lock
// compatibility) and offline (building the dependency relations checked by
// internal/sched).
package commut

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Invocation describes one method invocation on an object, as far as
// commutativity reasoning is concerned: the method name and its parameter
// list rendered as strings. The object identity is implicit — two
// invocations are only ever compared when they access the same object.
type Invocation struct {
	Method string
	Params []string
}

// String renders the invocation as method(p1,p2).
func (iv Invocation) String() string {
	return fmt.Sprintf("%s(%s)", iv.Method, strings.Join(iv.Params, ","))
}

// Param returns the i-th parameter or "" if absent.
func (iv Invocation) Param(i int) string {
	if i < 0 || i >= len(iv.Params) {
		return ""
	}
	return iv.Params[i]
}

// Spec decides commutativity of two invocations on the same object.
// Implementations must be symmetric: Commutes(a,b) == Commutes(b,a).
// Implementations must be safe for concurrent use.
type Spec interface {
	// Commutes reports whether the two invocations commute (Θ̄). If false
	// they are in conflict (Θ) and their execution order matters.
	Commutes(a, b Invocation) bool
	// Methods returns the method names the spec knows about, sorted.
	// A spec may accept unknown methods (treated conservatively as
	// conflicting with everything) — those do not appear here.
	Methods() []string
}

// Conservative is the spec of last resort: every pair of invocations
// conflicts. Using it degrades oo-serializability to conventional
// serializability on that object, which is always safe (Section 6 of the
// paper: conventional serializability is the special case where nothing
// commutes).
type Conservative struct{}

// Commutes always reports false.
func (Conservative) Commutes(a, b Invocation) bool { return false }

// Methods returns nil: the conservative spec knows no methods specifically.
func (Conservative) Methods() []string { return nil }

// Matrix is a symmetric method-name commutativity table. The zero value is
// unusable; construct with NewMatrix. Lookups for method pairs that were
// never declared return the matrix default (conflicting unless
// DefaultCommute was set).
type Matrix struct {
	commute        map[[2]string]bool
	methods        map[string]bool
	defaultCommute bool
}

// NewMatrix returns an empty matrix whose undeclared pairs conflict.
func NewMatrix() *Matrix {
	return &Matrix{
		commute: make(map[[2]string]bool),
		methods: make(map[string]bool),
	}
}

// DefaultCommute makes undeclared pairs commute instead of conflict.
// Use with care: it is only sound if the object's undeclared methods are
// genuinely independent (e.g. pure reads of disjoint state).
func (m *Matrix) DefaultCommute() *Matrix {
	m.defaultCommute = true
	return m
}

func pairKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// Set declares whether methods a and b commute (symmetrically).
func (m *Matrix) Set(a, b string, commutes bool) *Matrix {
	m.methods[a] = true
	m.methods[b] = true
	m.commute[pairKey(a, b)] = commutes
	return m
}

// SetCommutes declares that a and b commute.
func (m *Matrix) SetCommutes(a, b string) *Matrix { return m.Set(a, b, true) }

// SetConflicts declares that a and b conflict.
func (m *Matrix) SetConflicts(a, b string) *Matrix { return m.Set(a, b, false) }

// Commutes implements Spec by method-name lookup; parameters are ignored.
func (m *Matrix) Commutes(a, b Invocation) bool {
	if v, ok := m.commute[pairKey(a.Method, b.Method)]; ok {
		return v
	}
	return m.defaultCommute
}

// Methods implements Spec.
func (m *Matrix) Methods() []string {
	out := make([]string, 0, len(m.methods))
	for name := range m.methods {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ReadWriteMatrix returns the classical conflict table over methods "read"
// and "write": read/read commutes, everything else conflicts. This is the
// spec of the page object type — the zero layer of the paper, where
// Axiom 1 orders conflicting primitive actions.
func ReadWriteMatrix() *Matrix {
	return NewMatrix().
		SetCommutes("read", "read").
		SetConflicts("read", "write").
		SetConflicts("write", "write")
}

// PairFunc decides commutativity of one method pair from the two full
// invocations. It is called with a fixed orientation (the registered
// methodA invocation first); ParamSpec handles symmetry.
type PairFunc func(a, b Invocation) bool

// ParamSpec is a parameter-dependent commutativity specification. Pairs are
// declared with a decision function; undeclared pairs fall back to an
// underlying Matrix (method-name granularity).
type ParamSpec struct {
	base  *Matrix
	funcs map[[2]string]pairRule
}

type pairRule struct {
	// methodA is the method name the rule's function expects as first
	// argument; invocations are swapped to match before calling fn.
	methodA string
	fn      PairFunc
}

// NewParamSpec returns a ParamSpec whose undeclared pairs defer to base.
// If base is nil an empty (all-conflicting) matrix is used.
func NewParamSpec(base *Matrix) *ParamSpec {
	if base == nil {
		base = NewMatrix()
	}
	return &ParamSpec{base: base, funcs: make(map[[2]string]pairRule)}
}

// Rule installs fn to decide commutativity of invocations of methodA vs
// methodB. fn is always called with the methodA invocation first; when
// methodA == methodB the call order of arguments is unspecified, so fn must
// be symmetric in that case.
func (p *ParamSpec) Rule(methodA, methodB string, fn PairFunc) *ParamSpec {
	p.base.methods[methodA] = true
	p.base.methods[methodB] = true
	p.funcs[pairKey(methodA, methodB)] = pairRule{methodA: methodA, fn: fn}
	return p
}

// Commutes implements Spec.
func (p *ParamSpec) Commutes(a, b Invocation) bool {
	if r, ok := p.funcs[pairKey(a.Method, b.Method)]; ok {
		if a.Method != r.methodA {
			a, b = b, a
		}
		return r.fn(a, b)
	}
	return p.base.Commutes(a, b)
}

// Methods implements Spec.
func (p *ParamSpec) Methods() []string { return p.base.Methods() }

// DistinctFirstParam is a PairFunc: the invocations commute iff their first
// parameters differ. This is the paper's B+ tree node rule — insert(DBS)
// and insert(DBMS) on the same leaf commute because they concern different
// keys, even though both rewrite the same page.
func DistinctFirstParam(a, b Invocation) bool {
	return a.Param(0) != b.Param(0)
}

// KeyedSpec builds the standard dictionary-object specification used by the
// B+ tree and the encyclopedia: operations on distinct keys always commute;
// on equal keys, reader/reader pairs commute and anything involving a
// mutator conflicts. readers and mutators are method-name sets.
func KeyedSpec(readers, mutators []string) *ParamSpec {
	isReader := make(map[string]bool, len(readers))
	for _, m := range readers {
		isReader[m] = true
	}
	sameKey := func(a, b Invocation) bool {
		if a.Param(0) != b.Param(0) {
			return true // distinct keys commute
		}
		return isReader[a.Method] && isReader[b.Method]
	}
	spec := NewParamSpec(NewMatrix())
	all := append(append([]string{}, readers...), mutators...)
	for i, m1 := range all {
		for _, m2 := range all[i:] {
			spec.Rule(m1, m2, sameKey)
		}
	}
	return spec
}

// Escrow implements escrow commutativity for a numeric object with declared
// bounds [Low, High]. Invocations are "incr(n)", "decr(n)", and "read()".
// Two updates commute when, regardless of order, neither can be pushed out
// of bounds given the escrow quantities currently outstanding; reads
// conflict with updates (a read observes the value) but commute with reads.
//
// Unlike Matrix/ParamSpec, Escrow is stateful: commutativity depends on the
// current value and outstanding reservations, which is exactly the escrow
// method's point — e.g. two debits commute on a rich account but conflict
// on a nearly empty one.
type Escrow struct {
	mu          sync.Mutex
	low, high   int64
	value       int64
	outstanding int64 // net sum of reserved (uncommitted) deltas, pessimistic per direction below
	resIncr     int64 // total reserved increments
	resDecr     int64 // total reserved decrements (positive magnitude)
}

// NewEscrow returns an escrow object with current value v and bounds
// [low, high]. It panics if v is out of bounds or low > high, because that
// is a programming error in the caller, not a runtime condition.
func NewEscrow(v, low, high int64) *Escrow {
	if low > high || v < low || v > high {
		panic(fmt.Sprintf("commut: invalid escrow init value=%d bounds=[%d,%d]", v, low, high))
	}
	return &Escrow{low: low, high: high, value: v}
}

// Value returns the committed value.
func (e *Escrow) Value() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.value
}

// Reserve attempts to reserve delta (positive = increment, negative =
// decrement) under escrow rules: the reservation succeeds iff even in the
// worst case (all outstanding reservations in the unfavourable direction
// committing first) the bounds hold. On success the caller must later call
// either Commit or Cancel with the same delta.
func (e *Escrow) Reserve(delta int64) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if delta >= 0 {
		// Worst case for the upper bound: every reserved increment commits.
		if e.value+e.resIncr+delta > e.high {
			return false
		}
		e.resIncr += delta
	} else {
		// Worst case for the lower bound: every reserved decrement commits.
		if e.value-e.resDecr+delta < e.low {
			return false
		}
		e.resDecr += -delta
	}
	e.outstanding += delta
	return true
}

// Commit applies a previously reserved delta to the committed value.
func (e *Escrow) Commit(delta int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.release(delta)
	e.value += delta
}

// Cancel releases a previously reserved delta without applying it.
func (e *Escrow) Cancel(delta int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.release(delta)
}

func (e *Escrow) release(delta int64) {
	if delta >= 0 {
		e.resIncr -= delta
	} else {
		e.resDecr -= -delta
	}
	e.outstanding -= delta
}

// Commutes implements Spec for invocations "incr(n)" / "decr(n)" / "read()".
// Updates commute with each other when both can be escrowed simultaneously
// given current state; read commutes only with read. Malformed invocations
// conflict conservatively.
func (e *Escrow) Commutes(a, b Invocation) bool {
	if a.Method == "read" && b.Method == "read" {
		return true
	}
	if a.Method == "read" || b.Method == "read" {
		return false
	}
	da, okA := updateDelta(a)
	db, okB := updateDelta(b)
	if !okA || !okB {
		return false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	// Both orders must be bound-safe given outstanding reservations.
	return e.pairSafe(da, db)
}

// pairSafe checks that applying both deltas (in either order) keeps the
// value in bounds even with current reservations. Caller holds e.mu.
func (e *Escrow) pairSafe(da, db int64) bool {
	incr, decr := e.resIncr, e.resDecr
	for _, d := range []int64{da, db} {
		if d >= 0 {
			incr += d
		} else {
			decr += -d
		}
	}
	return e.value+incr <= e.high && e.value-decr >= e.low
}

// Methods implements Spec.
func (*Escrow) Methods() []string { return []string{"decr", "incr", "read"} }

func updateDelta(iv Invocation) (int64, bool) {
	var n int64
	if _, err := fmt.Sscanf(iv.Param(0), "%d", &n); err != nil {
		return 0, false
	}
	switch iv.Method {
	case "incr":
		return n, true
	case "decr":
		return -n, true
	}
	return 0, false
}

// Registry maps object type names to their commutativity specifications.
// Object types without a registered spec fall back to Conservative.
// Registry is safe for concurrent use.
type Registry struct {
	mu    sync.RWMutex
	specs map[string]Spec
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{specs: make(map[string]Spec)}
}

// Register installs spec for the object type. Re-registering replaces the
// previous spec.
func (r *Registry) Register(objType string, spec Spec) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.specs[objType] = spec
}

// Lookup returns the spec for objType, falling back to Conservative.
func (r *Registry) Lookup(objType string) Spec {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if s, ok := r.specs[objType]; ok {
		return s
	}
	return Conservative{}
}

// Types returns the registered object type names, sorted.
func (r *Registry) Types() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.specs))
	for t := range r.specs {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}
