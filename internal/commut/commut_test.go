package commut

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func inv(method string, params ...string) Invocation {
	return Invocation{Method: method, Params: params}
}

func TestInvocationString(t *testing.T) {
	if got := inv("insert", "DBS").String(); got != "insert(DBS)" {
		t.Fatalf("String = %q", got)
	}
	if got := inv("readSeq").String(); got != "readSeq()" {
		t.Fatalf("String = %q", got)
	}
	if got := inv("transfer", "a", "b", "10").String(); got != "transfer(a,b,10)" {
		t.Fatalf("String = %q", got)
	}
}

func TestInvocationParam(t *testing.T) {
	iv := inv("m", "x", "y")
	if iv.Param(0) != "x" || iv.Param(1) != "y" {
		t.Fatal("param lookup wrong")
	}
	if iv.Param(2) != "" || iv.Param(-1) != "" {
		t.Fatal("out-of-range params must be empty")
	}
}

func TestConservative(t *testing.T) {
	var c Conservative
	if c.Commutes(inv("read"), inv("read")) {
		t.Fatal("conservative spec must conflict everything")
	}
	if c.Methods() != nil {
		t.Fatal("conservative spec has no methods")
	}
}

func TestMatrixBasic(t *testing.T) {
	m := ReadWriteMatrix()
	cases := []struct {
		a, b string
		want bool
	}{
		{"read", "read", true},
		{"read", "write", false},
		{"write", "read", false},
		{"write", "write", false},
	}
	for _, c := range cases {
		if got := m.Commutes(inv(c.a), inv(c.b)); got != c.want {
			t.Errorf("Commutes(%s,%s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	if got := m.Methods(); !reflect.DeepEqual(got, []string{"read", "write"}) {
		t.Fatalf("Methods = %v", got)
	}
}

func TestMatrixUndeclaredDefaults(t *testing.T) {
	m := NewMatrix().SetCommutes("a", "a")
	if m.Commutes(inv("a"), inv("zzz")) {
		t.Fatal("undeclared pair must conflict by default")
	}
	m.DefaultCommute()
	if !m.Commutes(inv("a"), inv("zzz")) {
		t.Fatal("DefaultCommute not honoured")
	}
}

func TestMatrixSymmetry(t *testing.T) {
	m := NewMatrix().SetConflicts("insert", "search").SetCommutes("search", "count")
	if m.Commutes(inv("insert"), inv("search")) || m.Commutes(inv("search"), inv("insert")) {
		t.Fatal("conflict must be symmetric")
	}
	if !m.Commutes(inv("count"), inv("search")) {
		t.Fatal("commute must be symmetric")
	}
}

func TestParamSpecDistinctKeys(t *testing.T) {
	// The paper's leaf rule: inserts of different keys commute.
	spec := NewParamSpec(nil).Rule("insert", "insert", DistinctFirstParam)
	if !spec.Commutes(inv("insert", "DBS"), inv("insert", "DBMS")) {
		t.Fatal("insert(DBS)/insert(DBMS) must commute (Example 1)")
	}
	if spec.Commutes(inv("insert", "DBS"), inv("insert", "DBS")) {
		t.Fatal("insert(DBS)/insert(DBS) must conflict")
	}
	// Undeclared pairs fall back to the conflicting base matrix.
	if spec.Commutes(inv("insert", "DBS"), inv("drop")) {
		t.Fatal("undeclared pair must conflict")
	}
}

func TestParamSpecOrientation(t *testing.T) {
	// A deliberately asymmetric-looking rule that depends on which
	// invocation is the search: search(k) vs insert(k') commute iff k != k'.
	spec := NewParamSpec(nil).Rule("search", "insert", func(search, insert Invocation) bool {
		if search.Method != "search" {
			panic("rule called with wrong orientation")
		}
		return search.Param(0) != insert.Param(0)
	})
	if !spec.Commutes(inv("insert", "A"), inv("search", "B")) {
		t.Fatal("distinct keys must commute regardless of argument order")
	}
	if spec.Commutes(inv("search", "DBS"), inv("insert", "DBS")) {
		t.Fatal("same key search/insert must conflict (Example 1, T3/T4)")
	}
}

func TestKeyedSpec(t *testing.T) {
	spec := KeyedSpec([]string{"search"}, []string{"insert", "delete"})
	cases := []struct {
		a, b Invocation
		want bool
	}{
		{inv("insert", "k1"), inv("insert", "k2"), true},
		{inv("insert", "k1"), inv("insert", "k1"), false},
		{inv("search", "k1"), inv("search", "k1"), true},
		{inv("search", "k1"), inv("insert", "k1"), false},
		{inv("search", "k1"), inv("insert", "k2"), true},
		{inv("delete", "k1"), inv("search", "k1"), false},
		{inv("delete", "k1"), inv("delete", "k2"), true},
	}
	for _, c := range cases {
		if got := spec.Commutes(c.a, c.b); got != c.want {
			t.Errorf("Commutes(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := spec.Commutes(c.b, c.a); got != c.want {
			t.Errorf("Commutes(%v,%v) = %v, want %v (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestEscrowReserveCommit(t *testing.T) {
	e := NewEscrow(100, 0, 1000)
	if !e.Reserve(-60) {
		t.Fatal("first debit must succeed")
	}
	if e.Reserve(-60) {
		t.Fatal("second debit would breach lower bound in worst case")
	}
	e.Commit(-60)
	if got := e.Value(); got != 40 {
		t.Fatalf("value = %d, want 40", got)
	}
	if !e.Reserve(-40) {
		t.Fatal("debit of remaining balance must succeed")
	}
	e.Cancel(-40)
	if got := e.Value(); got != 40 {
		t.Fatalf("value after cancel = %d, want 40", got)
	}
}

func TestEscrowUpperBound(t *testing.T) {
	e := NewEscrow(990, 0, 1000)
	if !e.Reserve(10) {
		t.Fatal("increment to exactly the bound must succeed")
	}
	if e.Reserve(1) {
		t.Fatal("increment past the bound must fail")
	}
	e.Commit(10)
	if got := e.Value(); got != 1000 {
		t.Fatalf("value = %d, want 1000", got)
	}
}

func TestEscrowCommutes(t *testing.T) {
	e := NewEscrow(500, 0, 1000)
	// Two small debits commute on a rich account...
	if !e.Commutes(inv("decr", "100"), inv("decr", "100")) {
		t.Fatal("small debits on rich account must commute")
	}
	// ...but conflict when they could together breach the bound.
	if e.Commutes(inv("decr", "300"), inv("decr", "300")) {
		t.Fatal("large debits must conflict near the bound")
	}
	if !e.Commutes(inv("incr", "100"), inv("decr", "100")) {
		t.Fatal("mixed small updates must commute")
	}
	if !e.Commutes(inv("read"), inv("read")) {
		t.Fatal("read/read must commute")
	}
	if e.Commutes(inv("read"), inv("incr", "1")) {
		t.Fatal("read/update must conflict")
	}
	if e.Commutes(inv("incr", "junk"), inv("incr", "1")) {
		t.Fatal("malformed invocation must conflict conservatively")
	}
}

func TestEscrowCommutesRespectsOutstanding(t *testing.T) {
	e := NewEscrow(500, 0, 1000)
	if !e.Reserve(-400) {
		t.Fatal("reserve failed")
	}
	// With 400 reserved, two further 60-debits could breach 0: 500-400-120 < 0.
	if e.Commutes(inv("decr", "60"), inv("decr", "60")) {
		t.Fatal("outstanding reservations must be accounted for")
	}
	e.Cancel(-400)
	if !e.Commutes(inv("decr", "60"), inv("decr", "60")) {
		t.Fatal("after cancel the debits must commute again")
	}
}

func TestEscrowInitPanics(t *testing.T) {
	for _, c := range []struct{ v, lo, hi int64 }{{5, 10, 20}, {25, 10, 20}, {0, 1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewEscrow(%d,%d,%d) did not panic", c.v, c.lo, c.hi)
				}
			}()
			NewEscrow(c.v, c.lo, c.hi)
		}()
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	if _, ok := r.Lookup("page").(Conservative); !ok {
		t.Fatal("unregistered type must fall back to Conservative")
	}
	r.Register("page", ReadWriteMatrix())
	if !r.Lookup("page").Commutes(inv("read"), inv("read")) {
		t.Fatal("registered spec not used")
	}
	r.Register("node", KeyedSpec([]string{"search"}, []string{"insert"}))
	if got := r.Types(); !reflect.DeepEqual(got, []string{"node", "page"}) {
		t.Fatalf("Types = %v", got)
	}
	// Re-registration replaces.
	r.Register("page", Conservative{})
	if r.Lookup("page").Commutes(inv("read"), inv("read")) {
		t.Fatal("re-registration did not replace spec")
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			r.Register(fmt.Sprintf("t%d", i%7), ReadWriteMatrix())
		}
	}()
	for i := 0; i < 1000; i++ {
		r.Lookup(fmt.Sprintf("t%d", i%7))
		r.Types()
	}
	<-done
}

// Property: every provided Spec is symmetric.
func TestPropertySpecSymmetry(t *testing.T) {
	specs := map[string]Spec{
		"conservative": Conservative{},
		"rwmatrix":     ReadWriteMatrix(),
		"keyed":        KeyedSpec([]string{"search", "count"}, []string{"insert", "delete", "update"}),
		"escrow":       NewEscrow(50, 0, 100),
	}
	methods := []string{"read", "write", "search", "count", "insert", "delete", "update", "incr", "decr"}
	params := []string{"", "1", "2", "60", "DBS", "DBMS"}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := Invocation{Method: methods[r.Intn(len(methods))], Params: []string{params[r.Intn(len(params))]}}
		b := Invocation{Method: methods[r.Intn(len(methods))], Params: []string{params[r.Intn(len(params))]}}
		for name, s := range specs {
			if s.Commutes(a, b) != s.Commutes(b, a) {
				t.Logf("spec %s asymmetric on %v / %v", name, a, b)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: escrow value never escapes its bounds under random
// reserve/commit/cancel sequences.
func TestPropertyEscrowBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		lo, hi := int64(0), int64(100)
		e := NewEscrow(50, lo, hi)
		type res struct{ delta int64 }
		var pending []res
		for i := 0; i < 200; i++ {
			switch r.Intn(3) {
			case 0:
				d := int64(r.Intn(41) - 20)
				if e.Reserve(d) {
					pending = append(pending, res{d})
				}
			case 1:
				if len(pending) > 0 {
					k := r.Intn(len(pending))
					e.Commit(pending[k].delta)
					pending = append(pending[:k], pending[k+1:]...)
				}
			case 2:
				if len(pending) > 0 {
					k := r.Intn(len(pending))
					e.Cancel(pending[k].delta)
					pending = append(pending[:k], pending[k+1:]...)
				}
			}
			if v := e.Value(); v < lo || v > hi {
				return false
			}
		}
		// Draining all pending commits must also stay in bounds.
		for _, p := range pending {
			e.Commit(p.delta)
			if v := e.Value(); v < lo || v > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMatrixLookup(b *testing.B) {
	m := ReadWriteMatrix()
	a1, a2 := inv("read"), inv("write")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Commutes(a1, a2)
	}
}

func BenchmarkKeyedSpecLookup(b *testing.B) {
	s := KeyedSpec([]string{"search"}, []string{"insert", "delete"})
	a1, a2 := inv("insert", "k1"), inv("search", "k2")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Commutes(a1, a2)
	}
}
