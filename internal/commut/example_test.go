package commut_test

import (
	"fmt"

	"repro/internal/commut"
)

// The paper's Example 1 leaf semantics: inserts of distinct keys commute
// even though they rewrite the same page; same-key operations conflict.
func ExampleKeyedSpec() {
	leaf := commut.KeyedSpec([]string{"search"}, []string{"insert", "delete"})

	insDBS := commut.Invocation{Method: "insert", Params: []string{"DBS"}}
	insDBMS := commut.Invocation{Method: "insert", Params: []string{"DBMS"}}
	searchDBS := commut.Invocation{Method: "search", Params: []string{"DBS"}}

	fmt.Println("insert(DBS) vs insert(DBMS):", leaf.Commutes(insDBS, insDBMS))
	fmt.Println("insert(DBS) vs search(DBS): ", leaf.Commutes(insDBS, searchDBS))
	// Output:
	// insert(DBS) vs insert(DBMS): true
	// insert(DBS) vs search(DBS):  false
}

// Escrow commutativity (the paper's refs [9,14,17]): whether two debits
// commute depends on the current balance and outstanding reservations.
func ExampleEscrow() {
	acct := commut.NewEscrow(100, 0, 1000)
	small := commut.Invocation{Method: "decr", Params: []string{"30"}}
	large := commut.Invocation{Method: "decr", Params: []string{"60"}}

	fmt.Println("decr(30) vs decr(30):", acct.Commutes(small, small))
	fmt.Println("decr(60) vs decr(60):", acct.Commutes(large, large))
	// Output:
	// decr(30) vs decr(30): true
	// decr(60) vs decr(60): false
}
