package core

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/commut"
	"repro/internal/txn"
)

// registerDict installs a keyed dictionary: each key lives on its own
// page; put/get/del with put/del compensations. Used to drive multi-key
// deadlocks whose victims must roll back compensations successfully.
func registerDict(t testing.TB, db *DB, keys ...string) txn.OID {
	t.Helper()
	pages := map[string]txn.OID{}
	for _, k := range keys {
		pages[k] = db.AllocPage()
	}
	typ := &ObjectType{
		Name:     "dict",
		Spec:     commut.KeyedSpec([]string{"get"}, []string{"put", "del"}),
		ReadOnly: map[string]bool{"get": true},
		Methods: map[string]MethodFunc{
			"put": func(c *Ctx, self txn.OID, params []string) (string, error) {
				pg, ok := pages[params[0]]
				if !ok {
					return "", errors.New("unknown key")
				}
				old, err := c.Call(pg, "readx")
				if err != nil {
					return "", err
				}
				if _, err := c.Call(pg, "write", params[1]); err != nil {
					return "", err
				}
				return old, nil
			},
			"get": func(c *Ctx, self txn.OID, params []string) (string, error) {
				pg, ok := pages[params[0]]
				if !ok {
					return "", errors.New("unknown key")
				}
				return c.Call(pg, "read")
			},
			"del": func(c *Ctx, self txn.OID, params []string) (string, error) {
				pg, ok := pages[params[0]]
				if !ok {
					return "", errors.New("unknown key")
				}
				old, err := c.Call(pg, "readx")
				if err != nil {
					return "", err
				}
				if _, err := c.Call(pg, "write", ""); err != nil {
					return "", err
				}
				return old, nil
			},
		},
		Compensate: map[string]CompensateFunc{
			"put": func(params []string, result string) (string, []string, bool) {
				return "put", []string{params[0], result}, true
			},
			"del": func(params []string, result string) (string, []string, bool) {
				if result == "" {
					return "", nil, false
				}
				return "put", []string{params[0], result}, true
			},
		},
	}
	if err := db.RegisterType(typ); err != nil {
		t.Fatal(err)
	}
	return txn.OID{Type: "dict", Name: "D"}
}

// TestDeadlockVictimCompensatesSuccessfully is the regression test for the
// corruption found during development: a deadlock victim's rollback must
// be able to acquire locks for its compensations — the doomed flag must
// not starve the undo, or committed-subtransaction effects survive the
// abort.
func TestDeadlockVictimCompensatesSuccessfully(t *testing.T) {
	db := Open(Options{Protocol: ProtocolOpenNested, LockTimeout: 5 * time.Second})
	dict := registerDict(t, db, "a", "b")

	// Initial values.
	init := db.Begin()
	if _, err := init.Exec(dict, "put", "a", "a0"); err != nil {
		t.Fatal(err)
	}
	if _, err := init.Exec(dict, "put", "b", "b0"); err != nil {
		t.Fatal(err)
	}
	if err := init.Commit(); err != nil {
		t.Fatal(err)
	}

	// T1: put a, then b. T2: put b, then a. One becomes the victim; its
	// already-committed first put must be compensated back.
	var wg sync.WaitGroup
	errs := make([]error, 2)
	runTxn := func(i int, k1, k2 string) {
		defer wg.Done()
		tx := db.Begin()
		_, err := tx.Exec(dict, "put", k1, "dirty-"+k1)
		if err == nil {
			time.Sleep(50 * time.Millisecond) // let the other side grab its first lock
			_, err = tx.Exec(dict, "put", k2, "dirty-"+k2)
		}
		if err == nil {
			errs[i] = tx.Commit()
			return
		}
		errs[i] = err
		_ = tx.Abort()
	}
	wg.Add(2)
	go runTxn(0, "a", "b")
	go runTxn(1, "b", "a")
	wg.Wait()

	if (errs[0] == nil) == (errs[1] == nil) {
		t.Fatalf("exactly one transaction must fail: %v", errs)
	}
	winner := 0
	if errs[0] != nil {
		winner = 1
	}
	_ = winner

	// The surviving transaction's values are in place; the victim's FIRST
	// put (which committed as a subtransaction before the deadlock) must
	// have been compensated: no "dirty-" value without its partner.
	check := db.Begin()
	va, _ := check.Exec(dict, "get", "a")
	vb, _ := check.Exec(dict, "get", "b")
	_ = check.Commit()

	bothDirty := strings.HasPrefix(va, "dirty-") && strings.HasPrefix(vb, "dirty-")
	noneDirtyFromLoser := true
	if winner == 0 {
		// T2 lost: neither value may be T2's without T1's; since both
		// transactions write both keys, the end state must be T1's pair.
		noneDirtyFromLoser = va == "dirty-a" && vb == "dirty-b"
	} else {
		noneDirtyFromLoser = va == "dirty-a" && vb == "dirty-b"
	}
	if !bothDirty || !noneDirtyFromLoser {
		t.Fatalf("inconsistent state after victim abort: a=%q b=%q", va, vb)
	}
	if db.Stats().Compensations == 0 {
		t.Fatal("the victim must have compensated its committed put")
	}
	_, rep, err := db.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.SystemOOSerializable {
		t.Fatalf("expanded history must validate: %+v", rep)
	}
}

// TestAbortAfterTimeoutCompensates: a lock-timeout abort behaves like a
// deadlock abort — compensations run and restore state.
func TestAbortAfterTimeoutCompensates(t *testing.T) {
	db := Open(Options{Protocol: ProtocolOpenNested, LockTimeout: 80 * time.Millisecond})
	dict := registerDict(t, db, "x", "y")
	init := db.Begin()
	_, _ = init.Exec(dict, "put", "x", "x0")
	_, _ = init.Exec(dict, "put", "y", "y0")
	_ = init.Commit()

	// T1 holds y (semantic put lock until commit).
	t1 := db.Begin()
	if _, err := t1.Exec(dict, "put", "y", "y1"); err != nil {
		t.Fatal(err)
	}

	// T2 puts x (committed subtxn), then times out on y, then aborts:
	// x must return to x0.
	t2 := db.Begin()
	if _, err := t2.Exec(dict, "put", "x", "x2"); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Exec(dict, "put", "y", "y2"); err == nil {
		t.Fatal("expected a timeout")
	}
	if err := t2.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}

	check := db.Begin()
	vx, _ := check.Exec(dict, "get", "x")
	vy, _ := check.Exec(dict, "get", "y")
	_ = check.Commit()
	if vx != "x0" || vy != "y1" {
		t.Fatalf("state after timeout abort: x=%q (want x0) y=%q (want y1)", vx, vy)
	}
}

// TestPageIODelaySlowsAccess verifies the simulated I/O knob is wired up.
func TestPageIODelaySlowsAccess(t *testing.T) {
	fast := Open(Options{Protocol: ProtocolOpenNested, DisableTrace: true})
	slow := Open(Options{Protocol: ProtocolOpenNested, DisableTrace: true, PageIODelay: 2 * time.Millisecond})
	pgF, pgS := fast.AllocPage(), slow.AllocPage()

	run := func(db *DB, pg txn.OID) time.Duration {
		start := time.Now()
		tx := db.Begin()
		for i := 0; i < 10; i++ {
			if _, err := tx.Exec(pg, "read"); err != nil {
				t.Fatal(err)
			}
		}
		_ = tx.Commit()
		return time.Since(start)
	}
	df, ds := run(fast, pgF), run(slow, pgS)
	if ds < 20*time.Millisecond {
		t.Fatalf("10 reads at 2ms I/O took only %s", ds)
	}
	if ds < df {
		t.Fatal("delayed engine faster than undelayed")
	}
}

// TestClosedNestedTransfersLocks: under closed nesting a completed
// subtransaction's page locks move to the parent (held to top commit), so
// a second transaction blocks until commit even though the subtransaction
// finished long ago.
func TestClosedNestedTransfersLocks(t *testing.T) {
	db := Open(Options{Protocol: ProtocolClosedNested, LockTimeout: 5 * time.Second})
	dict := registerDict(t, db, "k")

	t1 := db.Begin()
	if _, err := t1.Exec(dict, "put", "k", "v1"); err != nil {
		t.Fatal(err)
	}
	// The put subtransaction is complete, but its page lock lives on.
	done := make(chan error, 1)
	go func() {
		t2 := db.Begin()
		_, err := t2.Exec(dict, "get", "k")
		if err == nil {
			err = t2.Commit()
		} else {
			_ = t2.Abort()
		}
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("closed nesting must hold page locks to top commit (err=%v)", err)
	case <-time.After(80 * time.Millisecond):
	}
	_ = t1.Commit()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestOpenNestedReleasesEarly is the H4 contrast to the previous test: the
// same sequence under open nesting does NOT block the reader after the put
// subtransaction completed — only the dictionary-level semantic lock
// remains, and get(k) vs put(k) on the same key DOES conflict, so we read
// a different key to observe the early page release.
func TestOpenNestedReleasesEarly(t *testing.T) {
	db := Open(Options{Protocol: ProtocolOpenNested, LockTimeout: 5 * time.Second})
	dict := registerDict(t, db, "k", "other")
	seed := db.Begin()
	_, _ = seed.Exec(dict, "put", "other", "o0")
	_ = seed.Commit()

	t1 := db.Begin()
	if _, err := t1.Exec(dict, "put", "k", "v1"); err != nil {
		t.Fatal(err)
	}
	// Distinct keys commute at the dictionary level, and the page locks of
	// the completed put were released: the read goes through immediately.
	done := make(chan error, 1)
	go func() {
		t2 := db.Begin()
		_, err := t2.Exec(dict, "get", "other")
		if err == nil {
			err = t2.Commit()
		} else {
			_ = t2.Abort()
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("open nesting must not block commuting operations")
	}
	_ = t1.Commit()
}

// TestFairLocksOption: with FairLocks a conflicting writer queued behind a
// reader is not starved by further commuting readers (see internal/cc for
// the mechanism; this verifies the engine-level plumbing).
func TestFairLocksOption(t *testing.T) {
	db := Open(Options{Protocol: ProtocolOpenNested, FairLocks: true, LockTimeout: 5 * time.Second})
	dict := registerDict(t, db, "k")
	seed := db.Begin()
	if _, err := seed.Exec(dict, "put", "k", "v0"); err != nil {
		t.Fatal(err)
	}
	_ = seed.Commit()

	reader := db.Begin()
	if _, err := reader.Exec(dict, "get", "k"); err != nil {
		t.Fatal(err)
	}
	writerDone := make(chan error, 1)
	go func() {
		w := db.Begin()
		_, err := w.Exec(dict, "put", "k", "v1")
		if err == nil {
			err = w.Commit()
		} else {
			_ = w.Abort()
		}
		writerDone <- err
	}()
	time.Sleep(50 * time.Millisecond) // writer queues behind the reader's get lock

	// A second reader must wait behind the queued writer under fairness.
	r2done := make(chan error, 1)
	go func() {
		r2 := db.Begin()
		_, err := r2.Exec(dict, "get", "k")
		if err == nil {
			err = r2.Commit()
		} else {
			_ = r2.Abort()
		}
		r2done <- err
	}()
	select {
	case err := <-r2done:
		t.Fatalf("second reader barged past the queued writer: %v", err)
	case <-time.After(80 * time.Millisecond):
	}
	_ = reader.Commit()
	if err := <-writerDone; err != nil {
		t.Fatal(err)
	}
	if err := <-r2done; err != nil {
		t.Fatal(err)
	}
}
