package core

import (
	"errors"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/storage"
)

// ErrNoCheckpointing is returned by Checkpoint on an engine without a
// durable WAL — there is no segment directory to checkpoint into.
var ErrNoCheckpointing = errors.New("core: checkpointing requires a durable WAL (OpenDurable or recovery.RecoverDir)")

// CheckpointSnapshot implements checkpoint.Source: it captures the page
// image, barrier LSN, and in-flight transaction set as one consistent cut.
//
// The exclusive snapshot barrier (snapMu) quiesces every [page mutation +
// WAL record] critical section, so flushing the pool here yields a store
// image reflecting exactly the RecUpdates with LSN ≤ the barrier LSN.
// Commit records append without the barrier, which is why LastLSN is read
// BEFORE ActiveInfo: a transaction whose commit raced in with LSN ≤ the
// barrier has already left the active set by the time the barrier LSN is
// read, so the snapshot can never list a committed-below-the-barrier
// transaction as in flight (which would make it a false loser after its
// records were truncated). The race in the other direction — a commit
// landing after LastLSN — is harmless: its record survives in the suffix
// and analysis sees it.
func (db *DB) CheckpointSnapshot() (*checkpoint.Snapshot, error) {
	db.snapMu.Lock()
	defer db.snapMu.Unlock()
	if err := db.pool.FlushAll(); err != nil {
		return nil, err
	}
	lsn := db.wal.LastLSN()
	active, oldest := db.wal.ActiveInfo()
	pages, next, pageSize := db.store.Snapshot()
	return &checkpoint.Snapshot{
		LSN:          lsn,
		OldestActive: oldest,
		MaxTxn:       uint64(db.txnSeq.Load()),
		NextPage:     next,
		PageSize:     pageSize,
		Active:       active,
		Pages:        pages,
	}, nil
}

// ForceWAL implements checkpoint.Source: block until every record with
// LSN ≤ lsn is physically durable. A poisoned WAL fails here, which
// correctly vetoes the checkpoint (never trust an image whose log may
// have silently lost records).
func (db *DB) ForceWAL(lsn uint64) error { return db.wal.WaitDurable(lsn) }

// WALDir implements checkpoint.Source.
func (db *DB) WALDir() string { return db.walFile.Dir() }

// WALBytes implements checkpoint.Source.
func (db *DB) WALBytes() int64 { return db.walFile.BytesAppended() }

// EnableCheckpoints attaches a checkpointer to an engine whose WAL sink is
// the given file WAL, and starts its background loop when interval or
// bytes is set (manual Checkpoint calls work either way). OpenDurable and
// recovery.RecoverDir call this; Close stops the loop.
func (db *DB) EnableCheckpoints(fw *storage.FileWAL, interval time.Duration, bytes int64) *checkpoint.Checkpointer {
	db.walFile = fw
	db.ckpt = checkpoint.New(db, interval, bytes, db.obs, db.spans)
	db.ckpt.Start()
	return db.ckpt
}

// Checkpointer returns the attached checkpointer (nil on engines without
// a durable WAL).
func (db *DB) Checkpointer() *checkpoint.Checkpointer { return db.ckpt }

// Checkpoint takes one fuzzy checkpoint right now: snapshot under the
// barrier, force the WAL, write the checkpoint file, truncate dead
// segments. Commit traffic keeps flowing except for the brief barrier
// hold while the image is copied.
func (db *DB) Checkpoint() (checkpoint.Result, error) {
	if db.ckpt == nil {
		return checkpoint.Result{}, ErrNoCheckpointing
	}
	return db.ckpt.Run()
}
