package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/storage"
)

// TestCloseIdempotentConcurrent: every Close — including concurrent ones —
// returns the single real close's result, and none double-closes the WAL.
func TestCloseIdempotentConcurrent(t *testing.T) {
	db, err := OpenDurable(Options{
		Durability: storage.GroupCommit,
		WALDir:     t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	pg := db.AllocPage()
	tx := db.Begin()
	if _, err := tx.Exec(pg, "write", "v1"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	const closers = 8
	errs := make([]error, closers)
	var wg sync.WaitGroup
	for i := 0; i < closers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = db.Close()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("closer %d: %v", i, err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatalf("sequential re-Close: %v", err)
	}
	if !db.Closed() {
		t.Fatal("Closed() = false after Close")
	}
}

// TestClosedEngineRefusesWork: after Close, Admit fails with ErrClosed and
// Begin hands out a refused transaction whose every operation fails with
// ErrClosed without touching the WAL.
func TestClosedEngineRefusesWork(t *testing.T) {
	db, err := OpenDurable(Options{
		Durability:  storage.SyncOnCommit,
		WALDir:      t.TempDir(),
		MaxInflight: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	pg := db.AllocPage()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := db.Admit(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Admit after Close: %v, want ErrClosed", err)
	}
	if _, err := db.AdmitCtx(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("AdmitCtx after Close: %v, want ErrClosed", err)
	}

	tx := db.Begin()
	if _, err := tx.Exec(pg, "write", "x"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Exec after Close: %v, want ErrClosed", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Commit after Close: %v, want ErrClosed", err)
	}
	if err := tx.Abort(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Abort after Close: %v, want ErrClosed", err)
	}
	if err := db.RunWithRetry(RetryPolicy{}, func(t *Txn) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("RunWithRetry after Close: %v, want ErrClosed", err)
	}
	if n := db.WAL().Len(); n != 0 {
		t.Fatalf("refused transactions appended %d WAL records", n)
	}
}

// TestCloseDrainsInflightAdmissions races concurrent RunWithRetry writers
// against Close (the -race regression from the network server): Close must
// wait for every admitted transaction, so no commit ever observes a closed
// WAL — each worker result is either success or a typed refusal.
func TestCloseDrainsInflightAdmissions(t *testing.T) {
	db, err := OpenDurable(Options{
		Durability:  storage.GroupCommit,
		WALDir:      t.TempDir(),
		MaxInflight: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 16
	pagesOID := db.AllocPage()
	var committed, refused atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; ; i++ {
				err := db.RunWithRetry(RetryPolicy{MaxAttempts: 3}, func(tx *Txn) error {
					_, err := tx.Exec(pagesOID, "write", fmt.Sprintf("w%d-%d", w, i))
					return err
				})
				switch {
				case err == nil:
					committed.Add(1)
				case errors.Is(err, ErrClosed):
					refused.Add(1)
					return
				case errors.Is(err, ErrOverloaded):
					// Admission pressure near close is fine; keep going until
					// the typed refusal arrives.
				default:
					t.Errorf("worker %d: unexpected error %v", w, err)
					return
				}
			}
		}(w)
	}
	close(start)
	time.Sleep(20 * time.Millisecond) // let commits overlap the close
	if err := db.Close(); err != nil {
		t.Fatalf("Close during traffic: %v", err)
	}
	wg.Wait()
	if refused.Load() != workers {
		t.Fatalf("want every worker to end on ErrClosed, got %d/%d", refused.Load(), workers)
	}
	if committed.Load() == 0 {
		t.Fatal("no transaction committed before Close — the race window was never exercised")
	}
	if got := db.Health().Inflight; got != 0 {
		t.Fatalf("leaked admission slots after drain: inflight = %d", got)
	}
}

// TestAdmitCtxCancelMidQueue parks an admission in the queue behind a held
// slot and cancels it: the waiter must return promptly with the context's
// error, not sit out the full admission timeout, and must stay distinct
// from ErrOverloaded.
func TestAdmitCtxCancelMidQueue(t *testing.T) {
	db := Open(Options{
		MaxInflight:      1,
		AdmissionTimeout: 30 * time.Second, // far beyond the test budget
	})
	defer db.Close()
	release, err := db.Admit()
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := db.AdmitCtx(ctx)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the waiter park in the queue
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled AdmitCtx: %v, want context.Canceled", err)
		}
		if errors.Is(err, ErrOverloaded) {
			t.Fatalf("cancellation must stay distinct from ErrOverloaded: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled AdmitCtx still parked after 5s")
	}
	release()

	// With the slot free again, a fresh timeout-bounded wait still reports
	// overload (not cancellation) when the queue fills up.
	release2, err := db.Admit()
	if err != nil {
		t.Fatal(err)
	}
	defer release2()
	dbShort := Open(Options{MaxInflight: 1, AdmissionTimeout: 20 * time.Millisecond})
	defer dbShort.Close()
	rel3, err := dbShort.Admit()
	if err != nil {
		t.Fatal(err)
	}
	defer rel3()
	if _, err := dbShort.AdmitCtx(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("timed-out AdmitCtx: %v, want ErrOverloaded", err)
	}
}

// TestAdmitBackedOutByClose covers the grant/close race: a waiter that wins
// a queue slot after Close flipped the flag must back out with ErrClosed
// instead of running a transaction over a closing WAL.
func TestAdmitBackedOutByClose(t *testing.T) {
	db := Open(Options{MaxInflight: 1, AdmissionTimeout: 30 * time.Second})
	release, err := db.Admit()
	if err != nil {
		t.Fatal(err)
	}

	waiter := make(chan error, 1)
	go func() {
		_, err := db.AdmitCtx(context.Background())
		waiter <- err
	}()
	time.Sleep(10 * time.Millisecond) // park the waiter

	closeDone := make(chan error, 1)
	go func() { closeDone <- db.Close() }()
	for !db.Closed() {
		time.Sleep(time.Millisecond)
	}
	release() // hand the slot to the parked waiter — after the flag flip

	if err := <-waiter; !errors.Is(err, ErrClosed) {
		t.Fatalf("waiter granted during close: %v, want ErrClosed", err)
	}
	if err := <-closeDone; err != nil {
		t.Fatalf("Close: %v", err)
	}
}
