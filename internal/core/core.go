// Package core is the transaction engine of the reproduction: a VODAK-style
// object-oriented database kernel in which every database access is a
// method invocation on an encapsulated object, every invocation runs as a
// subtransaction of its caller (open nesting), and isolation is enforced by
// a pluggable protocol:
//
//   - ProtocolNone        — no isolation; used to demonstrate that the
//     offline checker (internal/sched) catches the resulting anomalies.
//   - Protocol2PLPage     — conventional strict two-phase locking at page
//     granularity, owned by the top-level transaction (the baseline the
//     paper compares against).
//   - Protocol2PLObject   — strict 2PL on every touched object, the
//     "lock the whole document" strawman of the paper's introduction.
//   - ProtocolClosedNested — Moss-style closed nesting: page locks owned by
//     subtransactions with ancestor bypass, inherited upward on subcommit,
//     all held to top-level commit.
//   - ProtocolOpenNested  — the paper's model: semantic locks per object
//     (compatibility = commutativity, Definition 9) owned by the calling
//     action and released when the caller completes; sub-locks released at
//     subtransaction commit where a compensation is available, transferred
//     upward (closed behaviour) where not; aborts run compensations in
//     reverse.
//
// Every dispatch is recorded by internal/trace, so any run can be validated
// offline against the paper's Definitions 6-16 via (*DB).Validate.
package core

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cc"
	"repro/internal/checkpoint"
	"repro/internal/commut"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/span"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/txn"
)

// PageType is the object type name of the built-in page objects — the
// paper's zero layer.
const PageType = "page"

// Engine errors.
var (
	ErrUnknownType    = errors.New("core: unknown object type")
	ErrUnknownMethod  = errors.New("core: unknown method")
	ErrTxnFinished    = errors.New("core: transaction already finished")
	ErrAborted        = errors.New("core: transaction aborted")
	ErrNoCompensation = errors.New("core: abort impossible, effects lack compensation")
	// ErrOverloaded is returned when admission control (Options.MaxInflight)
	// could not grant an in-flight transaction slot within the admission
	// timeout. It is terminal for RunWithRetry: retrying immediately would
	// only deepen the overload.
	ErrOverloaded = errors.New("core: too many in-flight transactions")
	// ErrClosed is returned by Begin, Admit and transaction operations once
	// DB.Close has started: a closing engine refuses new work so the WAL can
	// be flushed and closed under no concurrent appender.
	ErrClosed = errors.New("core: database closed")
)

// ProtocolKind selects the concurrency-control protocol.
type ProtocolKind int

// The protocols. ProtocolOpenNested is the zero value: an Options struct
// that does not name a protocol gets the paper's model.
const (
	ProtocolOpenNested ProtocolKind = iota
	Protocol2PLPage
	Protocol2PLObject
	ProtocolClosedNested
	ProtocolNone
)

func (p ProtocolKind) String() string {
	switch p {
	case ProtocolNone:
		return "none"
	case Protocol2PLPage:
		return "2pl-page"
	case Protocol2PLObject:
		return "2pl-object"
	case ProtocolClosedNested:
		return "closed-nested"
	case ProtocolOpenNested:
		return "open-nested"
	}
	return fmt.Sprintf("protocol(%d)", int(p))
}

// MethodFunc implements one method of an object type. It may call further
// methods through the context; the engine wraps every such call in a
// subtransaction.
type MethodFunc func(c *Ctx, self txn.OID, params []string) (string, error)

// CompensateFunc produces the inverse operation for a committed invocation
// (open nesting): given the forward parameters and result, it returns the
// compensating method and parameters, or ok=false when no compensation is
// required (the invocation had no effects).
type CompensateFunc func(params []string, result string) (method string, cparams []string, ok bool)

// ObjectType describes a registered object type: its commutativity
// specification (Definition 9), method implementations, which methods are
// read-only (lock mode S under 2PL-object), and per-method compensations.
type ObjectType struct {
	Name       string
	Spec       commut.Spec
	Methods    map[string]MethodFunc
	ReadOnly   map[string]bool
	Compensate map[string]CompensateFunc
}

// Stats are engine-level counters.
type Stats struct {
	TxnsStarted   int64
	TxnsCommitted int64
	TxnsAborted   int64
	Actions       int64
	PageReads     int64
	PageWrites    int64
	Compensations int64
}

// Plus returns the field-wise sum of two Stats snapshots — the
// aggregation a partitioned deployment (internal/partition) reports
// cluster-wide: every field is a monotonic counter, so sums across
// independent engines stay meaningful.
func (s Stats) Plus(o Stats) Stats {
	return Stats{
		TxnsStarted:   s.TxnsStarted + o.TxnsStarted,
		TxnsCommitted: s.TxnsCommitted + o.TxnsCommitted,
		TxnsAborted:   s.TxnsAborted + o.TxnsAborted,
		Actions:       s.Actions + o.Actions,
		PageReads:     s.PageReads + o.PageReads,
		PageWrites:    s.PageWrites + o.PageWrites,
		Compensations: s.Compensations + o.Compensations,
	}
}

// DB is the database engine.
type DB struct {
	protocol ProtocolKind

	types    map[string]*ObjectType
	registry *commut.Registry

	lm    *cc.LockManager
	store *storage.MemStore
	pool  *storage.BufferPool
	wal   *storage.WAL
	rec   *trace.Recorder

	// snapMu is the crash-snapshot barrier: every multi-step mutation that
	// must appear atomic in a (disk, log) pair — a page write plus its WAL
	// record, a rollback restore plus its CLR and discard — holds it shared;
	// CrashImage holds it exclusively while cloning BOTH the store and the
	// WAL. Without the barrier a commit interleaving between the two clones
	// could yield a pair no real crash can produce.
	snapMu sync.RWMutex

	tracing bool
	ioDelay time.Duration
	txnSeq  atomic.Int64

	// Observability. obs is the registry every subsystem publishes into
	// (nil when Options.DisableObs); the handles below are nil-safe, so the
	// transaction hot path carries no enabled/disabled branches.
	obs         *obs.Registry
	obsRec      *obs.FlightRecorder
	obsCommitNs *obs.Histogram // begin → durable-commit latency
	obsSlowTxns *obs.Counter   // lifetimes past Options.SlowTxnThreshold
	slowThresh  time.Duration  // 0 disables slow-transaction marking

	// spans is the per-transaction span tracer (nil when Options.DisableSpans
	// or an unsampled transaction; every handle is nil-receiver safe).
	spans *span.Tracer

	// Degraded read-only mode (the fsyncgate policy): once the durable WAL
	// is poisoned the engine stops accepting commits that wrote anything.
	// The flag is the hot-path check (one atomic load per commit); the cause
	// behind it is guarded by degradedMu.
	degradedFlag atomic.Bool
	degradedMu   sync.Mutex
	degradedErr  error

	// Admission control: admit is a counting semaphore of in-flight
	// top-level transactions (nil = unbounded), admitTimeout how long an
	// arriving transaction queues before giving up with ErrOverloaded.
	admit        chan struct{}
	admitTimeout time.Duration

	// Close lifecycle. closedFlag is the lock-free "refuse new work" gate;
	// closeGate orders admission grants against Close: a grant registers in
	// admitted under the read lock with the flag still false, so it strictly
	// happens-before Close's write-locked flag flip — and therefore before
	// Close's admitted.Wait. Grants that lose the race observe the flag and
	// back out with ErrClosed. closeOnce/closeDone/closeErr make Close
	// idempotent: every caller (including concurrent ones) waits for the one
	// real close and gets its result.
	closeGate  sync.RWMutex
	closedFlag atomic.Bool
	admitted   sync.WaitGroup
	closeOnce  sync.Once
	closeDone  chan struct{}
	closeErr   error

	// Checkpointing (durable engines only): walFile is the segment-backed
	// sink the checkpointer truncates; ckpt is the attached checkpointer
	// (see internal/core/checkpoint.go).
	walFile *storage.FileWAL
	ckpt    *checkpoint.Checkpointer

	obsDegraded  *obs.Gauge   // engine.degraded: 0 healthy, 1 read-only
	obsInflight  *obs.Gauge   // engine.inflight: admitted transactions
	obsOverloads *obs.Counter // engine.overloads: admission timeouts

	stats struct {
		txnsStarted, txnsCommitted, txnsAborted atomic.Int64
		actions, pageReads, pageWrites          atomic.Int64
		compensations                           atomic.Int64
	}
}

// Options configure Open.
type Options struct {
	// Protocol selects the concurrency control protocol (default
	// ProtocolOpenNested).
	Protocol ProtocolKind
	// PageSize bounds page payloads (default storage.DefaultPageSize).
	PageSize int
	// PoolCapacity is the buffer pool size in frames (default 1024).
	PoolCapacity int
	// LockTimeout bounds lock waits as a backstop; 0 means the cc default
	// of no bound. Deadlocks are detected regardless.
	LockTimeout time.Duration
	// DisableTrace turns off trace recording (benchmarks that do not
	// validate can avoid the overhead).
	DisableTrace bool
	// PageIODelay simulates page I/O latency: every page access sleeps this
	// long before touching the frame. Besides making throughput numbers
	// reflect lock-hold times rather than in-memory speed, the sleep forces
	// goroutine interleaving on machines with few CPUs, so concurrent
	// workloads actually overlap.
	PageIODelay time.Duration
	// FairLocks enables FIFO lock fairness: conflicting requests are
	// served in arrival order, so streams of commuting operations cannot
	// starve a conflicting one.
	FairLocks bool
	// LockShards overrides the lock table's shard count (rounded up to a
	// power of two, default GOMAXPROCS). 1 reproduces a single-mutex
	// table — useful for contention ablations.
	LockShards int
	// Store and WAL, when non-nil, attach the engine to an existing disk
	// image and log instead of fresh ones — the restart path of crash
	// recovery (internal/recovery).
	Store *storage.MemStore
	WAL   *storage.WAL
	// Durability selects how the WAL reaches stable storage (default
	// storage.MemOnly: the log lives in memory, crash recovery works from
	// CrashImage snapshots). SyncOnCommit and GroupCommit require a file
	// backing: use OpenDurable (fresh WALDir) or recovery.RecoverDir
	// (restart), which attach the segment files.
	Durability storage.Durability
	// WALDir is the segment-file directory for OpenDurable/RecoverDir.
	WALDir string
	// WALSegmentSize overrides the segment rotation threshold in bytes
	// (default storage.DefaultSegmentSize).
	WALSegmentSize int64
	// CheckpointInterval, when > 0, takes a fuzzy checkpoint (page image +
	// barrier LSN + in-flight set) every interval and truncates WAL
	// segments the image supersedes. Durable modes only (OpenDurable /
	// recovery.RecoverDir); manual DB.Checkpoint works regardless of the
	// triggers.
	CheckpointInterval time.Duration
	// CheckpointBytes, when > 0, additionally triggers a checkpoint every
	// time that many bytes of WAL records have been appended since the
	// last one. Combines with CheckpointInterval (whichever fires first).
	CheckpointBytes int64
	// Obs, when non-nil, is the observability registry the engine and every
	// subsystem (lock manager, buffer pool, WAL) publish metrics and flight
	// recorder events into. When nil, Open creates a fresh one unless
	// DisableObs is set. Sharing one registry across sequential engines (a
	// protocol sweep) is supported: snapshot functions re-publish under the
	// same names and follow the live engine.
	Obs *obs.Registry
	// DisableObs turns the observability layer off entirely: no registry is
	// created, DB.Obs returns nil, and instrumented code paths degrade to
	// nil-receiver no-ops.
	DisableObs bool
	// Tracer, when non-nil, is the span tracer recording one span tree per
	// top-level transaction (method dispatches, contended lock waits with
	// provenance edges, group-commit participation). When nil, Open creates
	// a fresh one unless DisableSpans is set. Like Obs, one tracer may be
	// shared across sequential engines.
	Tracer *span.Tracer
	// DisableSpans turns span tracing off entirely: DB.Spans returns nil and
	// every recording site degrades to a nil-receiver no-op.
	DisableSpans bool
	// SpanSampleEvery samples one in every N top-level transactions when
	// Open creates the tracer itself (0 or 1 traces everything). Ignored
	// when Tracer is supplied.
	SpanSampleEvery int
	// SlowTxnThreshold, when > 0, marks any top-level transaction whose
	// begin→finish lifetime crosses it as slow: an engine.slow_txns counter
	// tick, an EvTxnSlow flight-recorder event, and — for sampled
	// transactions — the span trace is pinned in the tracer's slow-query
	// ring so /trace/slow can replay it after the abort/done rings churn.
	SlowTxnThreshold time.Duration
	// MaxInflight bounds the number of concurrently admitted top-level
	// transactions (0 = unbounded). Arrivals beyond the bound queue for up
	// to AdmissionTimeout and then fail with ErrOverloaded. Admission is
	// enforced by Admit/RunWithRetry, not by Begin itself: internal
	// transactions (recovery, compensations) must never be refused.
	MaxInflight int
	// AdmissionTimeout is how long an arriving transaction may queue for an
	// in-flight slot (default 1s; only meaningful with MaxInflight > 0).
	AdmissionTimeout time.Duration
}

// Open creates an empty database.
func Open(opts Options) *DB {
	if opts.PoolCapacity == 0 {
		opts.PoolCapacity = 1024
	}
	reg := opts.Obs
	if reg == nil && !opts.DisableObs {
		reg = obs.New()
	}
	spans := opts.Tracer
	if spans == nil && !opts.DisableSpans {
		spans = span.NewTracer(span.Options{
			SampleEvery:   opts.SpanSampleEvery,
			SlowThreshold: opts.SlowTxnThreshold,
		})
	} else if opts.SlowTxnThreshold > 0 {
		spans.SetSlowThreshold(opts.SlowTxnThreshold)
	}
	var lmOpts []cc.Option
	if reg != nil {
		lmOpts = append(lmOpts, cc.WithObs(reg))
	}
	if opts.LockTimeout > 0 {
		lmOpts = append(lmOpts, cc.WithWaitTimeout(opts.LockTimeout))
	}
	if opts.Protocol == ProtocolClosedNested {
		lmOpts = append(lmOpts, cc.WithAncestorBypass())
	}
	if opts.FairLocks {
		lmOpts = append(lmOpts, cc.WithFairness())
	}
	if opts.LockShards > 0 {
		lmOpts = append(lmOpts, cc.WithShards(opts.LockShards))
	}
	store := opts.Store
	if store == nil {
		store = storage.NewMemStore(opts.PageSize)
	}
	wal := opts.WAL
	if wal == nil {
		wal = storage.NewWAL()
	}
	db := &DB{
		protocol:  opts.Protocol,
		types:     make(map[string]*ObjectType),
		registry:  commut.NewRegistry(),
		lm:        cc.NewLockManager(lmOpts...),
		store:     store,
		pool:      storage.NewBufferPool(store, opts.PoolCapacity),
		wal:       wal,
		rec:       trace.NewRecorder(),
		tracing:   !opts.DisableTrace,
		ioDelay:   opts.PageIODelay,
		closeDone: make(chan struct{}),
	}
	db.obs = reg
	db.obsRec = reg.Recorder()
	db.obsCommitNs = reg.Histogram("txn.commit_ns", obs.LatencyBounds())
	db.obsSlowTxns = reg.Counter("engine.slow_txns")
	db.slowThresh = opts.SlowTxnThreshold
	db.obsDegraded = reg.Gauge("engine.degraded")
	db.obsInflight = reg.Gauge("engine.inflight")
	db.obsOverloads = reg.Counter("engine.overloads")
	db.pool.SetObs(reg)
	reg.PublishFunc("engine", func() any { return db.Stats() })
	reg.PublishFunc("health", func() any { return db.Health() })
	if opts.MaxInflight > 0 {
		db.admit = make(chan struct{}, opts.MaxInflight)
		db.admitTimeout = opts.AdmissionTimeout
		if db.admitTimeout <= 0 {
			db.admitTimeout = time.Second
		}
	}
	db.spans = spans
	db.pool.SetSpans(spans)
	if spans != nil {
		// Export the trace endpoints through the engine's obs HTTP server.
		reg.Handle("/trace", spans.Handler())
	}
	// The built-in page type. Besides the classical read/write pair it
	// offers readx, a read with write intent (SELECT FOR UPDATE): it locks
	// exclusively so a read-modify-write subtransaction never needs the
	// deadlock-prone S→X upgrade.
	db.types[PageType] = &ObjectType{
		Name:     PageType,
		Spec:     PageSpec(),
		ReadOnly: map[string]bool{"read": true},
	}
	db.registry.Register(PageType, PageSpec())
	return db
}

// OpenDurable opens a database whose WAL is backed by segment files in
// opts.WALDir (created if missing), with opts.Durability selecting
// per-commit fsync or group commit. It refuses a directory that already
// holds log records — restarting over an existing log needs redo and undo,
// which is recovery.RecoverDir's job.
func OpenDurable(opts Options) (*DB, error) {
	if opts.Durability == storage.MemOnly {
		return nil, fmt.Errorf("core: OpenDurable needs Durability sync-on-commit or group-commit")
	}
	if opts.WALDir == "" {
		return nil, fmt.Errorf("core: OpenDurable needs a WALDir")
	}
	if opts.WAL != nil {
		return nil, fmt.Errorf("core: OpenDurable builds the WAL itself; Options.WAL must be nil")
	}
	fw, records, err := storage.OpenFileWAL(opts.WALDir, storage.FileWALOptions{
		SegmentSize: opts.WALSegmentSize,
		Durability:  opts.Durability,
	})
	if err != nil {
		return nil, err
	}
	if len(records) > 0 {
		_ = fw.Close()
		return nil, fmt.Errorf("core: WAL dir %s holds %d records; use recovery.RecoverDir to restart over an existing log", opts.WALDir, len(records))
	}
	// A directory with no log records but leftover checkpoint files is
	// still a restart (the log may have been truncated down to an empty
	// tail); only RecoverDir knows how to seed from the checkpoint image.
	if infos, err := checkpoint.Scan(opts.WALDir); err != nil {
		_ = fw.Close()
		return nil, err
	} else if len(infos) > 0 {
		_ = fw.Close()
		return nil, fmt.Errorf("core: WAL dir %s holds %d checkpoint file(s); use recovery.RecoverDir to restart over them", opts.WALDir, len(infos))
	}
	// Create the registry up front (unless disabled) so the file WAL can
	// publish into the same one the engine will use.
	if opts.Obs == nil && !opts.DisableObs {
		opts.Obs = obs.New()
	}
	fw.SetObs(opts.Obs)
	wal := storage.NewWAL()
	wal.SetSink(fw)
	opts.WAL = wal
	db := Open(opts)
	db.EnableCheckpoints(fw, opts.CheckpointInterval, opts.CheckpointBytes)
	return db, nil
}

// Close shuts the engine down: it refuses new admissions and transactions
// (typed ErrClosed), drains the in-flight admissions already granted,
// retires the checkpointer's background loop (if any), then flushes and
// closes the WAL's durable backing. Close is idempotent and safe against
// concurrent use — every caller blocks until the one real close finishes
// and receives its result. Transactions begun without an admission slot
// are not waited for; long-lived callers (the network server, workload
// drivers) hold a slot per logical transaction via Admit/RunWithRetry,
// which is exactly what the drain covers.
func (db *DB) Close() error {
	db.closeOnce.Do(func() {
		db.closeGate.Lock()
		db.closedFlag.Store(true)
		db.closeGate.Unlock()
		db.admitted.Wait()
		if db.ckpt != nil {
			db.ckpt.Stop()
		}
		db.closeErr = db.wal.Close()
		close(db.closeDone)
	})
	<-db.closeDone
	return db.closeErr
}

// Closed reports whether Close has started. New work is refused from that
// point on; in-flight admitted transactions drain normally.
func (db *DB) Closed() bool { return db.closedFlag.Load() }

// BumpTxnSeq raises the transaction-id sequence so new transactions get
// ids strictly greater than n. Restart recovery calls it with the highest
// id found in the log: ids must stay unique across the log's whole
// multi-epoch history, or analysis would mistake a previous incarnation's
// committed T<n> for the crashed epoch's in-flight T<n> and redo its
// effects without undo.
func (db *DB) BumpTxnSeq(n int64) {
	for {
		cur := db.txnSeq.Load()
		if cur >= n || db.txnSeq.CompareAndSwap(cur, n) {
			return
		}
	}
}

// PageSpec is the commutativity specification of the built-in page type:
// read/read commutes, everything involving write or readx conflicts.
func PageSpec() *commut.Matrix {
	return commut.NewMatrix().
		SetCommutes("read", "read").
		SetConflicts("read", "write").
		SetConflicts("write", "write").
		SetConflicts("readx", "read").
		SetConflicts("readx", "readx").
		SetConflicts("readx", "write")
}

// Protocol returns the configured protocol.
func (db *DB) Protocol() ProtocolKind { return db.protocol }

// RegisterType installs an object type. Registering PageType or an already
// registered name fails.
func (db *DB) RegisterType(t *ObjectType) error {
	if t.Name == "" {
		return fmt.Errorf("core: object type needs a name")
	}
	if _, dup := db.types[t.Name]; dup {
		return fmt.Errorf("core: object type %q already registered", t.Name)
	}
	if t.Spec == nil {
		t.Spec = commut.Conservative{}
	}
	db.types[t.Name] = t
	db.registry.Register(t.Name, t.Spec)
	return nil
}

// Registry returns the commutativity registry assembled from the
// registered types — the one the offline checker needs.
func (db *DB) Registry() *commut.Registry { return db.registry }

// LockStats returns the lock manager counters.
func (db *DB) LockStats() cc.Stats { return db.lm.Snapshot() }

// Obs returns the engine's observability registry (nil when Options
// disabled it). Tools serve it over HTTP (obs.Registry.Serve) or dump its
// flight recorder on failures.
func (db *DB) Obs() *obs.Registry { return db.obs }

// Spans returns the engine's span tracer (nil when Options disabled it).
func (db *DB) Spans() *span.Tracer { return db.spans }

// LockShardCount returns the lock table's shard count.
func (db *DB) LockShardCount() int { return db.lm.ShardCount() }

// Stats returns the engine counters.
func (db *DB) Stats() Stats {
	return Stats{
		TxnsStarted:   db.stats.txnsStarted.Load(),
		TxnsCommitted: db.stats.txnsCommitted.Load(),
		TxnsAborted:   db.stats.txnsAborted.Load(),
		Actions:       db.stats.actions.Load(),
		PageReads:     db.stats.pageReads.Load(),
		PageWrites:    db.stats.pageWrites.Load(),
		Compensations: db.stats.compensations.Load(),
	}
}

// Health is the engine's liveness snapshot, published as the "health"
// metric: whether the engine is degraded (read-only) and why, plus the
// admission-control picture.
type Health struct {
	Degraded      bool   `json:"degraded"`
	DegradedCause string `json:"degraded_cause,omitempty"`
	Inflight      int64  `json:"inflight"`
	MaxInflight   int    `json:"max_inflight"`
	Overloads     int64  `json:"overloads"`
}

// Merge folds another engine's health into this snapshot — the
// cluster-level view of a partitioned deployment. Admission figures sum
// (each partition runs its own controller); degradation is sticky across
// the cluster, first cause wins, so a single poisoned partition surfaces
// at the top level.
func (h Health) Merge(o Health) Health {
	h.Inflight += o.Inflight
	h.MaxInflight += o.MaxInflight
	h.Overloads += o.Overloads
	if o.Degraded && !h.Degraded {
		h.Degraded = true
		h.DegradedCause = o.DegradedCause
	}
	return h
}

// Health returns the current health snapshot.
func (db *DB) Health() Health {
	h := Health{
		Inflight:    db.obsInflight.Load(),
		MaxInflight: cap(db.admit),
		Overloads:   db.obsOverloads.Load(),
	}
	if cause := db.Degraded(); cause != nil {
		h.Degraded = true
		h.DegradedCause = cause.Error()
	}
	return h
}

// Degraded returns the sticky cause that flipped the engine read-only
// (wrapping storage.ErrWALPoisoned), or nil while the engine is healthy.
// Once non-nil it stays non-nil: the only way out is a restart through
// recovery, exactly like a poisoned WAL.
func (db *DB) Degraded() error {
	if !db.degradedFlag.Load() {
		return nil
	}
	db.degradedMu.Lock()
	defer db.degradedMu.Unlock()
	return db.degradedErr
}

// enterDegraded flips the engine into read-only degraded mode (first cause
// wins) and surfaces the transition through the gauge and the flight
// recorder.
func (db *DB) enterDegraded(cause error) {
	db.degradedMu.Lock()
	if db.degradedErr != nil {
		db.degradedMu.Unlock()
		return
	}
	db.degradedErr = cause
	db.degradedMu.Unlock()
	db.degradedFlag.Store(true)
	db.obsDegraded.Set(1)
	db.obsRec.Record(obs.Event{Kind: obs.EvDegraded, Note: cause.Error()})
}

// Admit reserves an in-flight transaction slot, blocking up to the
// admission timeout when MaxInflight transactions are already running. It
// returns a release function the caller must invoke exactly once when the
// transaction (including all its retries) is done. Without MaxInflight the
// slot is free and the call only fails on a closed engine.
func (db *DB) Admit() (release func(), err error) {
	return db.AdmitCtx(context.Background())
}

// AdmitCtx is Admit with caller-side cancellation: a waiter parked in the
// admission queue unblocks as soon as ctx is done — the network server
// cancels a session's context on disconnect, so a dead client cannot hold
// its goroutine (and, transitively, a queue position) for the full
// admission timeout. The three failure modes stay distinct: a cancelled
// wait wraps ctx.Err(), a timed-out wait wraps ErrOverloaded, and a
// closing engine returns ErrClosed.
func (db *DB) AdmitCtx(ctx context.Context) (release func(), err error) {
	if db.closedFlag.Load() {
		return nil, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: admission cancelled: %w", err)
	}
	if db.admit != nil {
		select {
		case db.admit <- struct{}{}:
		default:
			timer := time.NewTimer(db.admitTimeout)
			defer timer.Stop()
			select {
			case db.admit <- struct{}{}:
			case <-ctx.Done():
				return nil, fmt.Errorf("core: admission cancelled: %w", ctx.Err())
			case <-timer.C:
				db.obsOverloads.Inc()
				db.obsRec.Record(obs.Event{Kind: obs.EvOverload,
					Note: fmt.Sprintf("admission queue full after %v", db.admitTimeout)})
				return nil, fmt.Errorf("%w: %d in flight, queued %v", ErrOverloaded, cap(db.admit), db.admitTimeout)
			}
		}
	}
	// Register the grant against Close's drain barrier: under the read lock
	// with the flag still false the registration happens-before Close's
	// flag flip and therefore before its admitted.Wait; a grant that lost
	// the race backs out and is refused.
	db.closeGate.RLock()
	if db.closedFlag.Load() {
		db.closeGate.RUnlock()
		if db.admit != nil {
			<-db.admit
		}
		return nil, ErrClosed
	}
	db.admitted.Add(1)
	db.obsInflight.Add(1)
	db.closeGate.RUnlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			db.obsInflight.Add(-1)
			if db.admit != nil {
				<-db.admit
			}
			db.admitted.Done()
		})
	}, nil
}

// WAL returns the write-ahead log (for inspection and tests).
func (db *DB) WAL() *storage.WAL { return db.wal }

// AllocPage allocates a fresh page and returns its object id.
func (db *DB) AllocPage() txn.OID {
	id := db.store.Allocate()
	return PageOID(id)
}

// PageOID renders a page id as an object id.
func PageOID(id storage.PageID) txn.OID {
	return txn.OID{Type: PageType, Name: "Page" + strconv.FormatUint(uint64(id), 10)}
}

// PageID parses a page object id.
func PageID(o txn.OID) (storage.PageID, error) {
	if o.Type != PageType || !strings.HasPrefix(o.Name, "Page") {
		return storage.InvalidPage, fmt.Errorf("core: %v is not a page object", o)
	}
	n, err := strconv.ParseUint(strings.TrimPrefix(o.Name, "Page"), 10, 64)
	if err != nil {
		return storage.InvalidPage, fmt.Errorf("core: bad page object %v: %w", o, err)
	}
	return storage.PageID(n), nil
}

// Trace returns a snapshot of the recorded trace.
func (db *DB) Trace() trace.Trace { return db.rec.Snapshot() }

// Validate reconstructs the formal system from the committed trace and
// runs the full Definition 16 check plus the conventional baseline. It is
// the engine's self-check: every protocol except ProtocolNone must always
// produce an oo-serializable trace.
func (db *DB) Validate() (*sched.Analysis, sched.Report, error) {
	sys, prim, err := db.Trace().ToSystem()
	if err != nil {
		return nil, sched.Report{}, err
	}
	sys.Extend()
	a, err := sched.Analyze(sys, db.registry, prim)
	if err != nil {
		return nil, sched.Report{}, err
	}
	return a, a.Check(), nil
}

// DebugLockDump installs a hook that receives a full lock-table dump
// whenever a lock wait times out. Diagnostic use only.
func (db *DB) DebugLockDump(fn func(string)) { db.lm.SetDebugDump(fn) }

// CrashImage simulates pulling the plug: it returns a copy of the disk
// (the backing store WITHOUT the buffer pool's unflushed dirty frames) and
// of the write-ahead log. Hand both to internal/recovery together with the
// application's object types to bring the database back.
//
// Both clones are taken under the exclusive snapshot barrier, so the pair
// is atomic with respect to every [page mutation + WAL record] critical
// section: the store can never contain a flushed change whose log record
// is missing from the WAL clone — the one disk/log combination a real
// crash cannot produce. (The file-backed WAL is the real kill-the-process
// twin of this simulation; see cmd/crashtorture.)
func (db *DB) CrashImage() (*storage.MemStore, *storage.WAL) {
	db.snapMu.Lock()
	defer db.snapMu.Unlock()
	return db.store.Clone(), db.wal.Clone()
}

// FlushAll forces every dirty buffered page to the backing store (a clean
// shutdown / checkpoint).
func (db *DB) FlushAll() error { return db.pool.FlushAll() }

// RestorePage overwrites a page with a before-image during recovery undo.
// The write bypasses transactional locking (recovery is single-threaded by
// contract) and is logged as a redo-only CLR; entryLSN, when non-zero, is
// the undo entry this restore consumes — discarding it makes a recovery
// that crashes and reruns skip the already-undone entry.
func (db *DB) RestorePage(pid storage.PageID, img, loser string, entryLSN uint64) error {
	frame, err := db.pool.FetchPage(pid)
	if err != nil {
		return err
	}
	db.snapMu.RLock()
	frame.Latch()
	after := frame.Data()
	frame.SetData(img)
	db.wal.LogCLRUpdate(loser+":recovery", pid, after, img)
	if entryLSN != 0 {
		db.wal.LogDiscard(loser, []uint64{entryLSN})
	}
	frame.Unlatch()
	db.snapMu.RUnlock()
	db.pool.Unpin(frame)
	return nil
}

// NumPages returns the number of allocated pages in the backing store.
func (db *DB) NumPages() int { return db.store.NumPages() }
