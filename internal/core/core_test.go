package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/commut"
	"repro/internal/txn"
)

// registerRegType installs a "reg" object type: a single string register
// stored on one page, with get/set/clear methods and a set-compensation
// that restores the previous value (returned by set as its result).
func registerRegType(t testing.TB, db *DB) txn.OID {
	t.Helper()
	page := db.AllocPage()
	typ := &ObjectType{
		Name: "reg",
		Spec: commut.NewMatrix().
			SetCommutes("get", "get").
			SetConflicts("get", "set").
			SetConflicts("set", "set"),
		ReadOnly: map[string]bool{"get": true},
		Methods: map[string]MethodFunc{
			"get": func(c *Ctx, self txn.OID, params []string) (string, error) {
				return c.Call(page, "read")
			},
			"set": func(c *Ctx, self txn.OID, params []string) (string, error) {
				old, err := c.Call(page, "read")
				if err != nil {
					return "", err
				}
				if _, err := c.Call(page, "write", params[0]); err != nil {
					return "", err
				}
				return old, nil
			},
			"fail": func(c *Ctx, self txn.OID, params []string) (string, error) {
				if _, err := c.Call(page, "write", "garbage"); err != nil {
					return "", err
				}
				return "", errors.New("intentional failure")
			},
		},
		Compensate: map[string]CompensateFunc{
			// set(v) with result old → set(old)
			"set": func(params []string, result string) (string, []string, bool) {
				return "set", []string{result}, true
			},
		},
	}
	if err := db.RegisterType(typ); err != nil {
		t.Fatal(err)
	}
	return txn.OID{Type: "reg", Name: "R"}
}

func TestBasicCommit(t *testing.T) {
	db := Open(Options{Protocol: ProtocolOpenNested})
	reg := registerRegType(t, db)

	tx := db.Begin()
	if tx.ID() != "T1" {
		t.Fatalf("id = %s", tx.ID())
	}
	if _, err := tx.Exec(reg, "set", "hello"); err != nil {
		t.Fatal(err)
	}
	got, err := tx.Exec(reg, "get")
	if err != nil {
		t.Fatal(err)
	}
	if got != "hello" {
		t.Fatalf("get = %q", got)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxnFinished) {
		t.Fatalf("double commit: %v", err)
	}
	if _, err := tx.Exec(reg, "get"); !errors.Is(err, ErrTxnFinished) {
		t.Fatalf("exec after commit: %v", err)
	}
	st := db.Stats()
	if st.TxnsCommitted != 1 || st.PageWrites != 1 || st.PageReads != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestUnknownTypeAndMethod(t *testing.T) {
	db := Open(Options{})
	reg := registerRegType(t, db)
	tx := db.Begin()
	if _, err := tx.Exec(txn.OID{Type: "ghost", Name: "G"}, "m"); !errors.Is(err, ErrUnknownType) {
		t.Fatalf("err = %v", err)
	}
	if _, err := tx.Exec(reg, "nosuch"); !errors.Is(err, ErrUnknownMethod) {
		t.Fatalf("err = %v", err)
	}
	_ = tx.Abort()
}

func TestRegisterTypeValidation(t *testing.T) {
	db := Open(Options{})
	if err := db.RegisterType(&ObjectType{}); err == nil {
		t.Fatal("empty name must fail")
	}
	if err := db.RegisterType(&ObjectType{Name: PageType}); err == nil {
		t.Fatal("page type re-registration must fail")
	}
	typ := &ObjectType{Name: "x"}
	if err := db.RegisterType(typ); err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterType(typ); err == nil {
		t.Fatal("duplicate must fail")
	}
	// Nil spec falls back to Conservative.
	if db.Registry().Lookup("x").Commutes(commut.Invocation{Method: "a"}, commut.Invocation{Method: "a"}) {
		t.Fatal("default spec must be conservative")
	}
}

func TestPageOIDRoundTrip(t *testing.T) {
	o := PageOID(4712)
	if o.Name != "Page4712" || o.Type != PageType {
		t.Fatalf("oid = %v", o)
	}
	id, err := PageID(o)
	if err != nil || id != 4712 {
		t.Fatalf("id = %d, %v", id, err)
	}
	if _, err := PageID(txn.OID{Type: "reg", Name: "R"}); err == nil {
		t.Fatal("non-page must fail")
	}
	if _, err := PageID(txn.OID{Type: PageType, Name: "Pagexyz"}); err == nil {
		t.Fatal("bad suffix must fail")
	}
}

func TestAbortPhysicalUndo2PL(t *testing.T) {
	db := Open(Options{Protocol: Protocol2PLPage})
	reg := registerRegType(t, db)

	tx := db.Begin()
	if _, err := tx.Exec(reg, "set", "initial"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	tx2 := db.Begin()
	if _, err := tx2.Exec(reg, "set", "doomed"); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Abort(); err != nil {
		t.Fatal(err)
	}

	tx3 := db.Begin()
	got, err := tx3.Exec(reg, "get")
	if err != nil {
		t.Fatal(err)
	}
	if got != "initial" {
		t.Fatalf("after abort get = %q, want pre-abort value", got)
	}
	_ = tx3.Commit()

	// The aborted transaction is erased from the trace (physical undo).
	for _, ev := range db.Trace().Events {
		if strings.HasPrefix(ev.ID, tx2.ID()) && !ev.Aborted {
			t.Fatalf("aborted event %s not marked", ev.ID)
		}
	}
}

func TestAbortCompensationOpenNested(t *testing.T) {
	db := Open(Options{Protocol: ProtocolOpenNested})
	reg := registerRegType(t, db)

	tx := db.Begin()
	if _, err := tx.Exec(reg, "set", "v1"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	tx2 := db.Begin()
	if _, err := tx2.Exec(reg, "set", "v2"); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Abort(); err != nil {
		t.Fatal(err)
	}
	if db.Stats().Compensations != 1 {
		t.Fatalf("compensations = %d", db.Stats().Compensations)
	}

	tx3 := db.Begin()
	got, err := tx3.Exec(reg, "get")
	if err != nil {
		t.Fatal(err)
	}
	if got != "v1" {
		t.Fatalf("after compensated abort get = %q", got)
	}
	_ = tx3.Commit()

	// The compensated transaction STAYS in the trace (expanded history) and
	// the whole trace still validates.
	found := false
	for _, ev := range db.Trace().Events {
		if ev.ID == tx2.ID() && !ev.Aborted {
			found = true
		}
	}
	if !found {
		t.Fatal("compensated transaction must remain in the trace")
	}
	_, rep, err := db.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.SystemOOSerializable {
		t.Fatalf("expanded history must validate: %+v", rep)
	}
}

func TestSubtreeFailureRollsBack(t *testing.T) {
	db := Open(Options{Protocol: ProtocolOpenNested})
	reg := registerRegType(t, db)

	tx := db.Begin()
	if _, err := tx.Exec(reg, "set", "keep"); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(reg, "fail"); err == nil {
		t.Fatal("fail method must error")
	}
	// The failed action's page write is rolled back; the earlier set stays.
	got, err := tx.Exec(reg, "get")
	if err != nil {
		t.Fatal(err)
	}
	if got != "keep" {
		t.Fatalf("get = %q, want %q", got, "keep")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenNestedConcurrentCommutingOps(t *testing.T) {
	// Two transactions set DIFFERENT registers concurrently; with a keyed
	// dict they'd commute — here use two reg objects on separate pages to
	// verify plain concurrency, then validate.
	db := Open(Options{Protocol: ProtocolOpenNested, LockTimeout: 2 * time.Second})
	pageA, pageB := db.AllocPage(), db.AllocPage()
	typ := &ObjectType{
		Name: "dict",
		Spec: commut.KeyedSpec([]string{"get"}, []string{"put"}),
		Methods: map[string]MethodFunc{
			"put": func(c *Ctx, self txn.OID, params []string) (string, error) {
				pg := pageA
				if params[0] > "m" {
					pg = pageB
				}
				old, err := c.Call(pg, "read")
				if err != nil {
					return "", err
				}
				return "", second(c.Call(pg, "write", old+"|"+params[0]))
			},
		},
		Compensate: map[string]CompensateFunc{
			"put": func(params []string, result string) (string, []string, bool) {
				return "del", []string{params[0]}, false // dict del omitted; no compensation needed in this test
			},
		},
	}
	if err := db.RegisterType(typ); err != nil {
		t.Fatal(err)
	}
	dict := txn.OID{Type: "dict", Name: "D"}

	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tx := db.Begin()
			_, err := tx.Exec(dict, "put", fmt.Sprintf("k%d", i))
			if err != nil {
				errs[i] = err
				_ = tx.Abort()
				return
			}
			errs[i] = tx.Commit()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("txn %d: %v", i, err)
		}
	}
	_, rep, err := db.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.SystemOOSerializable {
		t.Fatalf("concurrent commuting puts must validate: %+v", rep)
	}
}

func second(_ string, err error) error { return err }

func TestProtocolNoneCanViolate(t *testing.T) {
	// Without isolation, interleave two read-modify-write pairs by hand to
	// produce a lost update, and show the checker catches it.
	db := Open(Options{Protocol: ProtocolNone})
	page := db.AllocPage()
	typ := &ObjectType{
		Name: "raw",
		Spec: commut.Conservative{},
		Methods: map[string]MethodFunc{
			"r": func(c *Ctx, self txn.OID, params []string) (string, error) {
				return c.Call(page, "read")
			},
			"w": func(c *Ctx, self txn.OID, params []string) (string, error) {
				return c.Call(page, "write", params[0])
			},
		},
	}
	if err := db.RegisterType(typ); err != nil {
		t.Fatal(err)
	}
	obj := txn.OID{Type: "raw", Name: "X"}

	t1, t2 := db.Begin(), db.Begin()
	if _, err := t1.Exec(obj, "r"); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Exec(obj, "r"); err != nil {
		t.Fatal(err)
	}
	if _, err := t1.Exec(obj, "w", "from-t1"); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Exec(obj, "w", "from-t2"); err != nil {
		t.Fatal(err)
	}
	_ = t1.Commit()
	_ = t2.Commit()

	_, rep, err := db.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if rep.SystemOOSerializable {
		t.Fatal("lost update must be detected")
	}
}

func Test2PLPageBlocksConflicts(t *testing.T) {
	db := Open(Options{Protocol: Protocol2PLPage})
	reg := registerRegType(t, db)

	t1 := db.Begin()
	if _, err := t1.Exec(reg, "set", "a"); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		t2 := db.Begin()
		_, err := t2.Exec(reg, "set", "b")
		if err == nil {
			err = t2.Commit()
		} else {
			_ = t2.Abort()
		}
		done <- err
	}()
	select {
	case <-done:
		t.Fatal("conflicting set must block until t1 finishes")
	case <-time.After(60 * time.Millisecond):
	}
	_ = t1.Commit()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if db.LockStats().Blocked == 0 {
		t.Fatal("block not counted")
	}
	_, rep, err := db.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.SystemOOSerializable {
		t.Fatalf("2PL trace must validate: %+v", rep)
	}
}

func TestDeadlockVictimAborts(t *testing.T) {
	db := Open(Options{Protocol: Protocol2PLPage})
	regA := registerRegType(t, db)
	// Second register on its own page.
	pageB := db.AllocPage()
	typB := &ObjectType{
		Name:     "regB",
		Spec:     commut.NewMatrix().SetConflicts("set", "set"),
		ReadOnly: map[string]bool{},
		Methods: map[string]MethodFunc{
			"set": func(c *Ctx, self txn.OID, params []string) (string, error) {
				return c.Call(pageB, "write", params[0])
			},
		},
	}
	if err := db.RegisterType(typB); err != nil {
		t.Fatal(err)
	}
	regB := txn.OID{Type: "regB", Name: "RB"}

	t1, t2 := db.Begin(), db.Begin()
	if _, err := t1.Exec(regA, "set", "1"); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Exec(regB, "set", "2"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, errs[0] = t1.Exec(regB, "set", "1b")
		if errs[0] != nil {
			_ = t1.Abort()
		} else {
			_ = t1.Commit()
		}
	}()
	time.Sleep(30 * time.Millisecond)
	go func() {
		defer wg.Done()
		_, errs[1] = t2.Exec(regA, "set", "2a")
		if errs[1] != nil {
			_ = t2.Abort()
		} else {
			_ = t2.Commit()
		}
	}()
	wg.Wait()
	if (errs[0] == nil) == (errs[1] == nil) {
		t.Fatalf("exactly one transaction must be the victim: %v", errs)
	}
	if db.LockStats().Deadlocks == 0 {
		t.Fatal("deadlock not counted")
	}
	_, rep, err := db.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.SystemOOSerializable {
		t.Fatalf("post-deadlock trace must validate: %+v", rep)
	}
}

func TestIntraTxnParallel(t *testing.T) {
	db := Open(Options{Protocol: ProtocolOpenNested})
	pageA, pageB := db.AllocPage(), db.AllocPage()
	typ := &ObjectType{
		Name: "sec",
		Spec: commut.NewParamSpec(nil).Rule("edit", "edit", commut.DistinctFirstParam),
		Methods: map[string]MethodFunc{
			"edit": func(c *Ctx, self txn.OID, params []string) (string, error) {
				pg := pageA
				if params[0] == "b" {
					pg = pageB
				}
				return c.Call(pg, "write", "edited-"+params[0])
			},
		},
	}
	if err := db.RegisterType(typ); err != nil {
		t.Fatal(err)
	}
	sec := txn.OID{Type: "sec", Name: "Doc"}

	tx := db.Begin()
	if _, err := tx.ExecParallel([]ParCall{
		{Obj: sec, Method: "edit", Params: []string{"a"}},
		{Obj: sec, Method: "edit", Params: []string{"b"}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// The two branches must be recorded as parallel processes.
	par := 0
	for _, ev := range db.Trace().Events {
		if ev.Parallel {
			par++
		}
	}
	if par != 2 {
		t.Fatalf("parallel events = %d, want 2", par)
	}
	_, rep, err := db.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.SystemOOSerializable {
		t.Fatalf("parallel trace must validate: %+v", rep)
	}
}

func TestProtocolStrings(t *testing.T) {
	for _, p := range []ProtocolKind{ProtocolNone, Protocol2PLPage, Protocol2PLObject, ProtocolClosedNested, ProtocolOpenNested, ProtocolKind(99)} {
		if p.String() == "" {
			t.Fatal("empty protocol string")
		}
	}
}

func TestDisableTrace(t *testing.T) {
	db := Open(Options{Protocol: ProtocolOpenNested, DisableTrace: true})
	reg := registerRegType(t, db)
	tx := db.Begin()
	if _, err := tx.Exec(reg, "set", "x"); err != nil {
		t.Fatal(err)
	}
	_ = tx.Commit()
	if len(db.Trace().Events) != 0 {
		t.Fatal("trace must be empty when disabled")
	}
}

func TestWALRecordsLifecycle(t *testing.T) {
	db := Open(Options{Protocol: ProtocolOpenNested})
	reg := registerRegType(t, db)
	tx := db.Begin()
	_, _ = tx.Exec(reg, "set", "v")
	_ = tx.Commit()
	recs := db.WAL().Records()
	if len(recs) < 2 {
		t.Fatalf("wal records = %d", len(recs))
	}
	last := recs[len(recs)-1]
	if last.Kind.String() != "commit" {
		t.Fatalf("last record = %v", last.Kind)
	}
}

func BenchmarkExecOpenNested(b *testing.B) {
	db := Open(Options{Protocol: ProtocolOpenNested, DisableTrace: true})
	reg := registerRegType(b, db)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := db.Begin()
		if _, err := tx.Exec(reg, "set", "v"); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExec2PL(b *testing.B) {
	db := Open(Options{Protocol: Protocol2PLPage, DisableTrace: true})
	reg := registerRegType(b, db)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := db.Begin()
		if _, err := tx.Exec(reg, "set", "v"); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}
