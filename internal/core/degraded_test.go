package core

import (
	"errors"
	"testing"

	"repro/internal/fault"
	"repro/internal/storage"
)

func armFault(t *testing.T, kv string) {
	t.Helper()
	name, spec, err := fault.ParseArm(kv)
	if err != nil {
		t.Fatal(err)
	}
	fault.Default.Arm(name, *spec)
	t.Cleanup(func() { fault.Default.Disarm(name) })
}

// TestDegradedReadOnlyMode drives the fsyncgate policy end to end: an
// injected fsync failure poisons the WAL, the failing commit is rolled
// back and rejected with ErrWALPoisoned, the engine flips to read-only
// degraded mode (later write-commits are rejected at the gate, reads keep
// committing), and the state is visible through Health, the metrics
// registry, and the flight recorder.
func TestDegradedReadOnlyMode(t *testing.T) {
	db, err := OpenDurable(Options{
		Durability:   storage.GroupCommit,
		WALDir:       t.TempDir(),
		DisableTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	page := db.AllocPage()

	// A healthy durable commit first.
	tx := db.Begin()
	if _, err := tx.Exec(page, "write", "v1"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// Poison: the next commit's fsync fails.
	armFault(t, "wal.fsync=error(injected fsync failure)")
	tx = db.Begin()
	if _, err := tx.Exec(page, "write", "v2"); err != nil {
		t.Fatal(err)
	}
	err = tx.Commit()
	if !errors.Is(err, storage.ErrWALPoisoned) {
		t.Fatalf("commit during fsync failure: err = %v, want ErrWALPoisoned", err)
	}
	if db.Degraded() == nil {
		t.Fatal("engine not degraded after poisoned commit")
	}

	// The failed commit was rolled back: readers see the last durable state.
	fault.Default.Disarm("wal.fsync")
	rd := db.Begin()
	got, err := rd.Exec(page, "read")
	if err != nil {
		t.Fatal(err)
	}
	if got != "v1" {
		t.Fatalf("page after rejected commit = %q, want rolled-back %q", got, "v1")
	}
	// Read-only transactions still commit in degraded mode.
	if err := rd.Commit(); err != nil {
		t.Fatalf("read-only commit in degraded mode: %v", err)
	}

	// Write-commits are rejected at the degraded gate (the failpoint is
	// already disarmed — this is the engine's sticky state, not the fault).
	tx = db.Begin()
	if _, err := tx.Exec(page, "write", "v3"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, storage.ErrWALPoisoned) {
		t.Fatalf("write-commit in degraded mode: err = %v, want ErrWALPoisoned", err)
	}
	// Rejected again, rolled back again.
	rd = db.Begin()
	if got, _ := rd.Exec(page, "read"); got != "v1" {
		t.Fatalf("page after second rejected commit = %q, want %q", got, "v1")
	}
	_ = rd.Commit()

	// Surfacing: Health, the metrics snapshot, and the flight recorder all
	// report the degraded state.
	h := db.Health()
	if !h.Degraded || h.DegradedCause == "" {
		t.Fatalf("Health = %+v, want degraded with a cause", h)
	}
	snap := db.Obs().Snapshot()
	if v, _ := snap["engine.degraded"].(int64); v != 1 {
		t.Fatalf("engine.degraded metric = %v, want 1", snap["engine.degraded"])
	}
	sawEvent := false
	for _, e := range db.Obs().Recorder().Tail(0) {
		if e.Kind == "engine.degraded" {
			sawEvent = true
		}
	}
	if !sawEvent {
		t.Fatal("no engine.degraded flight-recorder event")
	}

	// Stats: both rejected commits count as aborts, not commits.
	s := db.Stats()
	if s.TxnsCommitted != 3 { // v1 + two read-only
		t.Fatalf("TxnsCommitted = %d, want 3", s.TxnsCommitted)
	}
	if s.TxnsAborted != 2 {
		t.Fatalf("TxnsAborted = %d, want 2", s.TxnsAborted)
	}
}

// TestDegradedModeMemOnlyUnaffected: an engine without a durable sink can
// never enter degraded mode through commits.
func TestDegradedModeMemOnlyUnaffected(t *testing.T) {
	db := Open(Options{DisableTrace: true})
	page := db.AllocPage()
	tx := db.Begin()
	if _, err := tx.Exec(page, "write", "x"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if db.Degraded() != nil {
		t.Fatal("mem-only engine degraded")
	}
}
