package core

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cc"
	"repro/internal/commut"
	"repro/internal/obs"
	"repro/internal/span"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/txn"
)

// undoEntry is one step of rollback, either physical (restore a page
// before-image; only sound while the page lock is still held) or logical
// (execute a compensating invocation as a fresh subtransaction).
type undoEntry struct {
	physical bool
	page     storage.PageID
	before   string

	obj    txn.OID
	method string
	params []string

	// lsn is the WAL record that registered this entry (the RecUpdate for
	// physical entries, the RecIntent for logical ones); recovery replays
	// entries that were registered but never discarded.
	lsn uint64
}

func entryLSNs(entries []undoEntry) []uint64 {
	out := make([]uint64, 0, len(entries))
	for _, e := range entries {
		if e.lsn != 0 {
			out = append(out, e.lsn)
		}
	}
	return out
}

// runtimeAction is one executing action (subtransaction).
type runtimeAction struct {
	id     string
	parent *runtimeAction
	obj    txn.OID
	inv    commut.Invocation
	// depth is the nesting depth below the transaction root (root = 0).
	depth int

	mu        sync.Mutex
	nchildren int
	undo      []undoEntry
	hasWrites bool
}

func (a *runtimeAction) appendUndo(entries ...undoEntry) {
	a.mu.Lock()
	a.undo = append(a.undo, entries...)
	a.hasWrites = true
	a.mu.Unlock()
}

func (a *runtimeAction) takeUndo() []undoEntry {
	a.mu.Lock()
	u := a.undo
	a.undo = nil
	a.mu.Unlock()
	return u
}

func (a *runtimeAction) nextChildID() string {
	a.mu.Lock()
	a.nchildren++
	n := a.nchildren
	a.mu.Unlock()
	return fmt.Sprintf("%s.%d", a.id, n)
}

// Txn is a top-level transaction.
type Txn struct {
	db    *DB
	id    string
	seq   int64
	root  *runtimeAction
	began time.Time
	// tt is this transaction's span trace (nil when tracing is disabled or
	// the transaction was not sampled; every method is nil-receiver safe).
	tt *span.TxnTrace
	// maxDepth tracks the deepest nesting reached — reported on the
	// txn.commit / txn.abort flight-recorder events.
	maxDepth atomic.Int64

	// refused marks a transaction handed out by Begin after Close started:
	// every operation fails with ErrClosed and no state was allocated.
	refused bool

	mu       sync.Mutex
	finished bool
	// compensated records that logical compensations executed during this
	// transaction's rollback; such a transaction stays in the trace (its
	// history is expanded with the inverse operations).
	compensated bool
	// aborting marks the rollback phase: compensation registrations are
	// suppressed (a compensation's own inverse must not be queued — it
	// would undo the undo) and entry discards are logged instead.
	aborting bool
	// pendingEntryLSN is the undo entry currently being compensated; the
	// compensating action's completion folds it into its discard record so
	// "compensation durable" and "entry consumed" are one WAL append.
	pendingEntryLSN uint64
}

func (t *Txn) isAborting() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.aborting
}

func (t *Txn) setAborting(v bool) {
	t.mu.Lock()
	t.aborting = v
	t.mu.Unlock()
}

func (t *Txn) setPendingEntry(lsn uint64) {
	t.mu.Lock()
	t.pendingEntryLSN = lsn
	t.mu.Unlock()
}

// takePendingEntry consumes the pending-entry LSN (at most once).
func (t *Txn) takePendingEntry() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	l := t.pendingEntryLSN
	t.pendingEntryLSN = 0
	return l
}

// Begin starts a transaction. On a closed (or closing) engine it returns a
// refused transaction: every operation on it — Exec, Commit, Abort — fails
// with ErrClosed, and nothing is recorded in the WAL, stats or trace. The
// signature stays error-free for the embedded callers; network-facing
// paths gate on Admit/AdmitCtx, which reports ErrClosed directly.
func (db *DB) Begin() *Txn {
	if db.closedFlag.Load() {
		return &Txn{db: db, id: "T-refused", refused: true,
			root: &runtimeAction{id: "T-refused", obj: txn.SystemObject}}
	}
	n := db.txnSeq.Add(1)
	id := fmt.Sprintf("T%d", n)
	t := &Txn{
		db:    db,
		id:    id,
		seq:   n,
		began: time.Now(),
		root: &runtimeAction{
			id:  id,
			obj: txn.SystemObject,
			inv: commut.Invocation{Method: id},
		},
	}
	t.tt = db.spans.BeginTxn(id, t.began)
	db.stats.txnsStarted.Add(1)
	db.obsRec.Record(obs.Event{Kind: obs.EvTxnBegin, Actor: id})
	if db.tracing {
		db.rec.Record(trace.Event{
			ID:      id,
			ObjType: txn.SystemObjectType,
			ObjName: txn.SystemObject.Name,
			Method:  id,
		})
	}
	return t
}

// ID returns the transaction id ("T<n>").
func (t *Txn) ID() string { return t.id }

// Trace returns the transaction's span trace — nil when tracing is
// disabled or the transaction was not sampled; every TxnTrace method is
// nil-receiver safe. The session layer uses it to graft its KSession span
// (and the client's remote trace id) onto the engine's span tree.
func (t *Txn) Trace() *span.TxnTrace { return t.tt }

// Seq returns the transaction's start sequence number — its age for
// deadlock-victim selection.
func (t *Txn) Seq() int64 { return t.seq }

// SetPriority overrides the transaction's age: a retry loop that restarts
// an aborted transaction should pass the original attempt's Seq so the
// youngest-victim deadlock policy cannot starve it.
func (t *Txn) SetPriority(age int64) { t.db.lm.SetAge(t.id, age) }

// Ctx is the execution context passed to method implementations.
type Ctx struct {
	db     *DB
	txn    *Txn
	action *runtimeAction
}

// DB returns the engine (for page allocation inside methods).
func (c *Ctx) DB() *DB { return c.db }

// TxnID returns the enclosing top-level transaction id.
func (c *Ctx) TxnID() string { return c.txn.id }

// ActionID returns the current action's hierarchical id.
func (c *Ctx) ActionID() string { return c.action.id }

// Call invokes a method on an object as a sequential subtransaction of the
// current action.
func (c *Ctx) Call(obj txn.OID, method string, params ...string) (string, error) {
	return c.db.invoke(c.txn, c.action, obj, method, params, false)
}

// ParCall describes one branch of a Parallel invocation.
type ParCall struct {
	Obj    txn.OID
	Method string
	Params []string
}

// Parallel runs the calls concurrently, each as a parallel subtransaction
// (its own process in the sense of Definition 9). It returns the results in
// order; the first error (if any) is returned after all branches finish.
func (c *Ctx) Parallel(calls []ParCall) ([]string, error) {
	results := make([]string, len(calls))
	errs := make([]error, len(calls))
	var wg sync.WaitGroup
	for i, call := range calls {
		wg.Add(1)
		go func(i int, call ParCall) {
			defer wg.Done()
			results[i], errs[i] = c.db.invoke(c.txn, c.action, call.Obj, call.Method, call.Params, true)
		}(i, call)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// Exec invokes a method as a direct (sequential) action of the top-level
// transaction.
func (t *Txn) Exec(obj txn.OID, method string, params ...string) (string, error) {
	return t.db.invoke(t, t.root, obj, method, params, false)
}

// ExecParallel runs top-level calls concurrently (intra-transaction
// parallelism: each call is its own process).
func (t *Txn) ExecParallel(calls []ParCall) ([]string, error) {
	c := &Ctx{db: t.db, txn: t, action: t.root}
	return c.Parallel(calls)
}

// invoke runs one method invocation as a subtransaction of parent.
func (db *DB) invoke(t *Txn, parent *runtimeAction, obj txn.OID, method string, params []string, parallel bool) (string, error) {
	if t.refused {
		return "", ErrClosed
	}
	t.mu.Lock()
	if t.finished {
		t.mu.Unlock()
		return "", ErrTxnFinished
	}
	t.mu.Unlock()

	ot, ok := db.types[obj.Type]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrUnknownType, obj.Type)
	}
	inv := commut.Invocation{Method: method, Params: params}
	a := &runtimeAction{
		id:     parent.nextChildID(),
		parent: parent,
		obj:    obj,
		inv:    inv,
		depth:  parent.depth + 1,
	}
	db.stats.actions.Add(1)
	for {
		cur := t.maxDepth.Load()
		if int64(a.depth) <= cur || t.maxDepth.CompareAndSwap(cur, int64(a.depth)) {
			break
		}
	}

	// One span per method dispatch — the node of the paper's nested action
	// tree (Def. 2–4). Opened before lock acquisition so a contended lock's
	// span nests inside it; guarded (rather than relying on nil-safety
	// alone) so the unsampled path skips even the name concatenation.
	var ms *span.ActiveSpan
	if t.tt != nil {
		// Name is left empty — Snapshot derives "Object.Method" on the cold
		// path, keeping string concatenation off the dispatch fast path.
		ms = t.tt.BeginSpan(a.id, parent.id, span.KMethod, "")
		ms.SetDispatch(obj.Name, method)
	}

	if err := db.acquireFor(t, a, ot, ms); err != nil {
		ms.End(err)
		return "", err
	}

	if db.tracing && obj.Type != PageType {
		db.rec.Record(trace.Event{
			ID:       a.id,
			Parent:   parent.id,
			ObjType:  obj.Type,
			ObjName:  obj.Name,
			Method:   method,
			Params:   params,
			Parallel: parallel,
		})
	}

	var result string
	var err error
	if obj.Type == PageType {
		result, err = db.pageOp(t, a, parallel)
	} else {
		fn := ot.Methods[method]
		if fn == nil {
			err = fmt.Errorf("%w: %s.%s", ErrUnknownMethod, obj.Type, method)
		} else {
			result, err = fn(&Ctx{db: db, txn: t, action: a}, obj, params)
		}
	}
	if err != nil {
		db.abortSubtree(t, a)
		ms.End(err)
		return "", err
	}
	db.completeAction(t, a, ot, result)
	ms.End(nil)
	return result, nil
}

// acquireFor takes the lock(s) the protocol prescribes before executing a.
// The method span ms (nil-safe) gets the commutativity class — the lock
// mode — the dispatch runs under; a contended acquire additionally records
// a KLock child span with provenance edges (AcquireTraced).
func (db *DB) acquireFor(t *Txn, a *runtimeAction, ot *ObjectType, ms *span.ActiveSpan) error {
	switch db.protocol {
	case ProtocolNone:
		return nil
	case Protocol2PLPage:
		if a.obj.Type != PageType {
			return nil
		}
		mode := rwModeFor(ot, a.inv.Method)
		if ms != nil {
			ms.SetClass(mode.String())
		}
		return db.lm.AcquireTraced(t.tt, a.id, t.id, a.obj, mode)
	case Protocol2PLObject:
		mode := rwModeFor(ot, a.inv.Method)
		if ms != nil {
			ms.SetClass(mode.String())
		}
		return db.lm.AcquireTraced(t.tt, a.id, t.id, a.obj, mode)
	case ProtocolClosedNested:
		if a.obj.Type != PageType {
			return nil
		}
		// Moss: the accessing subtransaction owns the lock; ancestors'
		// locks do not block (ancestor bypass is enabled on the manager).
		mode := rwModeFor(ot, a.inv.Method)
		if ms != nil {
			ms.SetClass(mode.String())
		}
		return db.lm.AcquireTraced(t.tt, a.id, a.id, a.obj, mode)
	case ProtocolOpenNested:
		// The semantic lock on the object is owned by the CALLER — the
		// transaction on this object in the paper's sense — and lives until
		// the caller completes.
		mode := cc.Semantic{Inv: a.inv, Spec: ot.Spec}
		if ms != nil {
			ms.SetClass(mode.String())
		}
		return db.lm.AcquireTraced(t.tt, a.id, a.parent.id, a.obj, mode)
	}
	return nil
}

func rwModeFor(ot *ObjectType, method string) cc.Mode {
	if ot.ReadOnly[method] {
		return cc.S
	}
	return cc.X
}

// pageOp executes a built-in page method ("read" or "write") under the
// frame latch, recording the trace event inside the latch so the recorded
// order is the real access order (the knowledge Axiom 1 postulates).
func (db *DB) pageOp(t *Txn, a *runtimeAction, parallel bool) (string, error) {
	pid, err := PageID(a.obj)
	if err != nil {
		return "", err
	}
	if db.ioDelay > 0 {
		time.Sleep(db.ioDelay)
	}
	frame, err := db.pool.FetchPage(pid)
	if err != nil {
		return "", err
	}
	defer db.pool.Unpin(frame)

	record := func() {
		if db.tracing {
			db.rec.Record(trace.Event{
				ID:       a.id,
				Parent:   a.parent.id,
				ObjType:  PageType,
				ObjName:  a.obj.Name,
				Method:   a.inv.Method,
				Params:   a.inv.Params,
				Parallel: parallel,
			})
		}
	}

	switch a.inv.Method {
	case "read", "readx":
		frame.RLatch()
		data := frame.Data()
		record()
		frame.RUnlatch()
		db.stats.pageReads.Add(1)
		return data, nil
	case "write":
		if len(a.inv.Params) != 1 {
			return "", fmt.Errorf("core: page write needs exactly one parameter")
		}
		data := a.inv.Params[0]
		if len(data) > db.store.PageSize() {
			return "", storage.ErrPageTooLarge
		}
		// The WAL record is appended INSIDE the frame latch: eviction writes
		// a frame back under the same latch, so a flushed page change always
		// has its log record first (the WAL rule). The shared snapshot
		// barrier additionally keeps [frame change + log record] atomic with
		// respect to CrashImage.
		db.snapMu.RLock()
		frame.Latch()
		before := frame.Data()
		frame.SetData(data)
		record()
		lsn := db.wal.LogUpdate(a.id, pid, before, data)
		frame.Unlatch()
		db.snapMu.RUnlock()
		a.parent.appendUndo(undoEntry{physical: true, page: pid, before: before, lsn: lsn})
		db.stats.pageWrites.Add(1)
		return "", nil
	default:
		return "", fmt.Errorf("%w: page.%s", ErrUnknownMethod, a.inv.Method)
	}
}

// completeAction performs the protocol's subtransaction-commit bookkeeping.
func (db *DB) completeAction(t *Txn, a *runtimeAction, ot *ObjectType, result string) {
	if a.obj.Type == PageType {
		// Page accesses are primitive; their undo entries were already
		// pushed to the parent and their locks (2PL/closed: held by t.id or
		// a.id; open: held by a.parent.id) follow the general rules below.
		return
	}
	parent := a.parent
	switch db.protocol {
	case ProtocolClosedNested:
		// The parent inherits the child's locks (and, transitively, those
		// of the child's completed descendants).
		db.lm.TransferToParent(a.id, parent.id)
		parent.appendUndoIfAny(a)
	case ProtocolOpenNested:
		comp := ot.Compensate[a.inv.Method]
		if comp != nil {
			covered := entryLSNs(a.takeUndo())
			if m, cp, need := comp(a.inv.Params, result); need {
				// The committed subtransaction is now undone logically; the
				// locks it acquired underneath can be released early — the
				// invocation lock on a.obj (owner parent.id) continues to
				// protect it.
				root := cc.RootOf(a.id)
				if t.isAborting() {
					// No inverse-of-inverse: just consume the children and
					// (if this action IS the running compensation) the undo
					// entry it executes, in one atomic WAL append.
					if pl := t.takePendingEntry(); pl != 0 {
						covered = append(covered, pl)
					}
					db.wal.LogDiscard(root, covered)
				} else {
					lsn := db.wal.LogIntent(root, compensationNote(a.obj, m, cp), covered)
					parent.appendUndo(undoEntry{obj: a.obj, method: m, params: cp, lsn: lsn})
				}
				db.lm.ReleaseOwner(a.id)
				return
			}
			// Compensation declared "nothing to undo": a read-only call.
			db.wal.LogDiscard(cc.RootOf(a.id), covered)
			db.lm.ReleaseOwner(a.id)
			return
		}
		a.mu.Lock()
		writes := a.hasWrites
		a.mu.Unlock()
		if !writes {
			// Read-only subtree: nothing to undo, release early.
			db.lm.ReleaseOwner(a.id)
			return
		}
		// No compensation available: behave closed — keep the locks (move
		// them to the parent) and bubble the physical undo entries so a
		// later ancestor with a compensation (or the top-level abort while
		// locks are still held) can roll back soundly.
		db.lm.TransferToParent(a.id, parent.id)
		parent.appendUndoIfAny(a)
	default:
		// Flat 2PL variants: locks are owned by the root and released at
		// commit; undo entries bubble.
		parent.appendUndoIfAny(a)
	}
}

// appendUndoIfAny moves the child's undo entries to the parent.
func (p *runtimeAction) appendUndoIfAny(child *runtimeAction) {
	entries := child.takeUndo()
	if len(entries) > 0 {
		p.appendUndo(entries...)
	}
}

// abortSubtree rolls back a failed action: logical compensations and
// physical before-images run in reverse order, then the subtree's locks
// are released. A purely physical rollback is erased from the trace; a
// rollback that executed compensations stays (the history is expanded with
// the inverse operations, as open-nesting theory prescribes).
func (db *DB) abortSubtree(t *Txn, a *runtimeAction) {
	compensated := db.rollback(t, a, a.takeUndo())
	db.lm.ReleaseTree(a.id)
	if db.tracing && !compensated {
		db.rec.MarkAborted(a.id)
	}
}

// rollback executes undo entries in reverse and reports whether any
// logical compensation ran. Logical entries run as fresh subtransactions
// of `under`; physical entries restore before-images directly (their page
// locks are still held by construction).
//
// Before compensating, the transaction's deadlock-victim mark is cleared
// and its priority raised: an aborting transaction must be able to acquire
// the locks its inverse operations need, and must not be re-victimized
// while undoing itself. Compensations that still fail transiently
// (deadlock with another compensator, timeout) are retried; open-nesting
// theory assumes compensations are total, so a persistent failure is
// logged as unrecoverable.
func (db *DB) rollback(t *Txn, under *runtimeAction, entries []undoEntry) bool {
	wasAborting := t.isAborting()
	t.setAborting(true)
	defer t.setAborting(wasAborting)

	compensated := false
	cleared := false
	for i := len(entries) - 1; i >= 0; i-- {
		e := entries[i]
		if e.physical {
			db.undoPage(t, under, e)
			continue
		}
		if !cleared {
			db.lm.ClearDoomed(cc.RootOf(under.id))
			cleared = true
		}
		compensated = true
		db.stats.compensations.Add(1)
		t.mu.Lock()
		t.compensated = true
		t.mu.Unlock()
		db.wal.LogCompensation(under.id, fmt.Sprintf("%s.%s(%s)", e.obj.Name, e.method, joinParams(e.params)))
		var err error
		for attempt := 0; attempt < 20; attempt++ {
			// The compensating action's completion consumes this entry's
			// intent record in its own discard (one atomic WAL append).
			t.setPendingEntry(e.lsn)
			if _, err = db.invoke(t, under, e.obj, e.method, e.params, false); err == nil {
				break
			}
			db.lm.ClearDoomed(cc.RootOf(under.id))
			time.Sleep(time.Duration(attempt+1) * 200 * time.Microsecond)
		}
		if pl := t.takePendingEntry(); pl != 0 && err == nil {
			// The compensation's top action had no Compensate entry of its
			// own, so nothing consumed the intent — discard it now.
			db.wal.LogDiscard(cc.RootOf(under.id), []uint64{pl})
		}
		if err != nil {
			db.wal.LogAbort(under.id + ":compensation-failed:" + err.Error())
		}
	}
	return compensated
}

func joinParams(ps []string) string {
	out := ""
	for i, p := range ps {
		if i > 0 {
			out += ","
		}
		out += p
	}
	return out
}

// compensationNote encodes a pending inverse operation for the WAL so
// recovery can replay it: "type\x1fname\x1fmethod\x1fp1\x1fp2...".
func compensationNote(obj txn.OID, method string, params []string) string {
	parts := append([]string{obj.Type, obj.Name, method}, params...)
	return joinUnitSep(parts)
}

// DecodeCompensationNote parses a RecIntent note back into an invocation.
func DecodeCompensationNote(note string) (obj txn.OID, method string, params []string, err error) {
	parts := splitUnitSep(note)
	if len(parts) < 3 {
		return txn.OID{}, "", nil, fmt.Errorf("core: bad intent note %q", note)
	}
	return txn.OID{Type: parts[0], Name: parts[1]}, parts[2], parts[3:], nil
}

const unitSep = "\x1f"

func joinUnitSep(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += unitSep
		}
		out += p
	}
	return out
}

func splitUnitSep(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == 0x1f {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return append(out, s[start:])
}

// undoPage restores a page before-image; the restoring write is a CLR
// (redo-only) and it consumes the original update's undo entry. The CLR
// and the discard are appended inside the frame latch and the snapshot
// barrier so no crash image can hold the restored page without the CLR.
func (db *DB) undoPage(t *Txn, under *runtimeAction, e undoEntry) {
	frame, err := db.pool.FetchPage(e.page)
	if err != nil {
		db.wal.LogAbort(under.id + ":undo-fetch-failed")
		return
	}
	db.snapMu.RLock()
	frame.Latch()
	after := frame.Data()
	frame.SetData(e.before)
	db.wal.LogCLRUpdate(under.id+":undo", e.page, after, e.before)
	if e.lsn != 0 {
		db.wal.LogDiscard(cc.RootOf(under.id), []uint64{e.lsn})
	}
	frame.Unlatch()
	db.snapMu.RUnlock()
	db.pool.Unpin(frame)
}

// Savepoint marks a point in the transaction that RollbackTo can return
// to. Savepoints cover work performed through Exec on the transaction's
// main line; they do not span still-running parallel branches.
type Savepoint struct {
	txn  *Txn
	mark int
}

// Savepoint records the current rollback position.
func (t *Txn) Savepoint() Savepoint {
	t.root.mu.Lock()
	defer t.root.mu.Unlock()
	return Savepoint{txn: t, mark: len(t.root.undo)}
}

// RollbackTo undoes everything after the savepoint — physical restores and
// logical compensations in reverse order — and truncates the undo log to
// the mark. Locks acquired since the savepoint are retained (the standard
// savepoint semantics: isolation never shrinks mid-transaction). Later
// savepoints become invalid.
func (t *Txn) RollbackTo(sp Savepoint) error {
	if t.refused {
		return ErrClosed
	}
	if sp.txn != t {
		return fmt.Errorf("core: savepoint belongs to another transaction")
	}
	t.mu.Lock()
	if t.finished {
		t.mu.Unlock()
		return ErrTxnFinished
	}
	t.mu.Unlock()

	t.root.mu.Lock()
	if sp.mark > len(t.root.undo) {
		t.root.mu.Unlock()
		return fmt.Errorf("core: savepoint invalidated by an earlier rollback")
	}
	tail := append([]undoEntry{}, t.root.undo[sp.mark:]...)
	t.root.undo = t.root.undo[:sp.mark]
	t.root.mu.Unlock()

	t.db.rollback(t, t.root, tail)
	return nil
}

// Commit finishes the transaction, releasing every lock of its tree. With
// a durable WAL the call blocks until the commit record — and therefore,
// by prefix ordering, every record of the transaction — is on stable
// storage; locks are held across the wait (strictness), so no transaction
// reads effects whose commit could still be lost to a crash.
//
// In degraded read-only mode (poisoned WAL, see DB.Degraded) a commit that
// wrote anything is rejected with the sticky cause — its effects are
// rolled back exactly like an abort, so no unflushable change lingers in
// the buffer pool. Read-only transactions keep committing: they have
// nothing that needs to reach stable storage.
func (t *Txn) Commit() error {
	if t.refused {
		return ErrClosed
	}
	t.mu.Lock()
	if t.finished {
		t.mu.Unlock()
		return ErrTxnFinished
	}
	t.finished = true
	t.mu.Unlock()

	t.root.mu.Lock()
	hasWrites := t.root.hasWrites
	t.root.mu.Unlock()
	if cause := t.db.Degraded(); cause != nil {
		if hasWrites {
			return t.failCommit(fmt.Errorf("core: commit %s rejected, engine degraded: %w", t.id, cause))
		}
		// Read-only: commit without touching the poisoned durability path.
		t.db.wal.LogCommit(t.id)
		t.db.lm.ReleaseTree(t.id)
		t.finishCommitted()
		return nil
	}

	lsn := t.db.wal.LogCommit(t.id)
	// The group-commit span covers only the durability wait — with a
	// mem-only WAL WaitDurable is instant and there is no batch to report.
	var ws *span.ActiveSpan
	if t.tt != nil && t.db.wal.Durable() {
		ws = t.tt.BeginSpan(t.id+"/commit", t.id, span.KWAL, "group-commit wait")
	}
	err := t.db.wal.WaitDurable(lsn)
	if ws != nil {
		if bi, ok := t.db.wal.BatchInfo(lsn); ok {
			ws.SetN(int64(bi.Records))
			ws.SetNote("batch " + strconv.FormatInt(bi.ID, 10) + ", fsync " + bi.Fsync.String())
		}
		ws.End(err)
	}
	if err != nil {
		if errors.Is(err, storage.ErrWALPoisoned) {
			// fsyncgate: the WAL refused the flush and will refuse every
			// later one. Flip the engine read-only before anyone else logs a
			// commit they will wait on forever-in-vain.
			t.db.enterDegraded(err)
		}
		return t.failCommit(fmt.Errorf("core: commit %s not durable: %w", t.id, err))
	}
	t.db.lm.ReleaseTree(t.id)
	t.finishCommitted()
	return nil
}

// finishCommitted is the successful-commit epilogue: span status, stats,
// commit-latency histogram, flight-recorder event.
func (t *Txn) finishCommitted() {
	t.db.spans.FinishTxn(t.tt, span.StatusCommitted)
	t.db.stats.txnsCommitted.Add(1)
	elapsed := time.Since(t.began)
	t.db.obsCommitNs.ObserveDuration(elapsed)
	t.db.obsRec.Record(obs.Event{Kind: obs.EvTxnCommit, Actor: t.id,
		Dur: elapsed, N: t.maxDepth.Load()})
	t.noteSlow(elapsed, "committed")
}

// noteSlow is the slow-query hook shared by every finish path: lifetimes
// past Options.SlowTxnThreshold tick engine.slow_txns and land an
// EvTxnSlow event. The span trace itself (when sampled) is pinned by
// FinishTxn, which applies the same threshold tracer-side.
func (t *Txn) noteSlow(elapsed time.Duration, outcome string) {
	if t.db.slowThresh <= 0 || elapsed < t.db.slowThresh {
		return
	}
	t.db.obsSlowTxns.Inc()
	t.db.obsRec.Record(obs.Event{Kind: obs.EvTxnSlow, Actor: t.id,
		Dur: elapsed, N: t.maxDepth.Load(), Note: outcome})
}

// failCommit turns a rejected commit into a proper abort: the
// transaction's effects are rolled back (compensations and before-image
// restores, which need the still-held page locks), an abort record is
// logged, locks are released, and the abort is surfaced through spans,
// stats, and the flight recorder. Returns cause.
//
// The transaction is already marked finished; rollback compensations
// re-enter invoke, which refuses finished transactions, so the mark is
// lifted for the duration of the rollback.
func (t *Txn) failCommit(cause error) error {
	entries := t.root.takeUndo()
	if len(entries) > 0 {
		t.mu.Lock()
		t.finished = false
		t.mu.Unlock()
		t.db.rollback(t, t.root, entries)
		t.mu.Lock()
		t.finished = true
		t.mu.Unlock()
	}
	t.db.wal.LogAbort(t.id)
	t.db.lm.ReleaseTree(t.id)
	if t.tt != nil {
		// Span provenance: the trace shows WHY this transaction aborted — a
		// commit-stage rejection, not a conflict.
		cs := t.tt.BeginSpan(t.id+"/commit", t.id, span.KWAL, "commit rejected")
		cs.End(cause)
	}
	t.db.spans.FinishTxn(t.tt, span.StatusAborted)
	t.db.stats.txnsAborted.Add(1)
	elapsed := time.Since(t.began)
	t.db.obsRec.Record(obs.Event{Kind: obs.EvTxnAbort, Actor: t.id,
		Dur: elapsed, N: t.maxDepth.Load(), Note: cause.Error()})
	t.noteSlow(elapsed, "commit-rejected")
	return cause
}

// CompensateEntry executes one logical undo entry during restart recovery
// (internal/recovery). The compensating invocation runs in rollback mode:
// no inverse-of-the-inverse is queued, and the given WAL entry — the
// loser's surviving RecIntent — is folded into the compensation's own
// completion discard, so "compensation durable" and "intent consumed" are
// ONE log append. A recovery that crashes after the compensating
// subtransaction completed and reruns therefore skips the intent instead
// of compensating twice.
func (t *Txn) CompensateEntry(obj txn.OID, method string, params []string, entryLSN uint64) error {
	if t.refused {
		return ErrClosed
	}
	t.mu.Lock()
	if t.finished {
		t.mu.Unlock()
		return ErrTxnFinished
	}
	t.mu.Unlock()
	wasAborting := t.isAborting()
	t.setAborting(true)
	defer t.setAborting(wasAborting)
	t.db.wal.LogCompensation(t.root.id, fmt.Sprintf("%s.%s(%s)", obj.Name, method, joinParams(params)))
	t.setPendingEntry(entryLSN)
	_, err := t.db.invoke(t, t.root, obj, method, params, false)
	if pl := t.takePendingEntry(); pl != 0 && err == nil {
		// The compensating method's top action had no Compensate entry of
		// its own, so nothing consumed the intent — discard it now.
		t.db.wal.LogDiscard(cc.RootOf(t.root.id), []uint64{pl})
	}
	return err
}

// Abort rolls the transaction back: compensations and before-images run in
// reverse, then all locks are released. A transaction whose rollback needed
// logical compensation stays in the trace (expanded history); a purely
// physical rollback is erased from it.
func (t *Txn) Abort() error {
	if t.refused {
		return ErrClosed
	}
	t.mu.Lock()
	if t.finished {
		t.mu.Unlock()
		return ErrTxnFinished
	}
	t.mu.Unlock()

	entries := t.root.takeUndo()
	t.db.rollback(t, t.root, entries)

	t.mu.Lock()
	t.finished = true
	compensated := t.compensated
	t.mu.Unlock()

	t.db.wal.LogAbort(t.id)
	t.db.lm.ReleaseTree(t.id)
	t.db.spans.FinishTxn(t.tt, span.StatusAborted)
	t.db.stats.txnsAborted.Add(1)
	elapsed := time.Since(t.began)
	t.db.obsRec.Record(obs.Event{Kind: obs.EvTxnAbort, Actor: t.id,
		Dur: elapsed, N: t.maxDepth.Load()})
	t.noteSlow(elapsed, "aborted")
	if t.db.tracing && !compensated {
		t.db.rec.MarkAborted(t.id)
	}
	return nil
}
