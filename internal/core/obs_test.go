package core

import (
	"testing"

	"repro/internal/obs"
)

// TestEngineObsLifecycle: an engine opened with default options carries a
// registry; commit and abort leave txn events with nesting depth and the
// commit-latency histogram fills; engine counters are published under
// "engine" and the lock manager's under "lock".
func TestEngineObsLifecycle(t *testing.T) {
	db := Open(Options{})
	reg := db.Obs()
	if reg == nil {
		t.Fatal("default Open must create an observability registry")
	}
	regObj := registerRegType(t, db)

	tx := db.Begin()
	if _, err := tx.Exec(regObj, "set", "v1"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2 := db.Begin()
	if _, err := tx2.Exec(regObj, "set", "v2"); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Abort(); err != nil {
		t.Fatal(err)
	}

	var commit, abort obs.Event
	for _, e := range reg.Recorder().Tail(0) {
		switch {
		case e.Kind == obs.EvTxnCommit && e.Actor == tx.ID():
			commit = e
		case e.Kind == obs.EvTxnAbort && e.Actor == tx2.ID():
			abort = e
		}
	}
	// reg.set runs as a subtransaction (depth 1) and touches its page
	// underneath (depth 2).
	if commit.Kind == "" || commit.N < 2 || commit.Dur <= 0 {
		t.Fatalf("commit event = %+v, want depth >= 2 and a latency", commit)
	}
	if abort.Kind == "" || abort.N < 2 {
		t.Fatalf("abort event = %+v, want depth >= 2", abort)
	}
	if n := reg.Histogram("txn.commit_ns", obs.LatencyBounds()).Count(); n != 1 {
		t.Fatalf("commit histogram count = %d, want 1", n)
	}

	snap := reg.Snapshot()
	engine, ok := snap["engine"].(Stats)
	if !ok {
		t.Fatalf("snapshot[engine] = %T, want core.Stats", snap["engine"])
	}
	if engine.TxnsCommitted != 1 || engine.TxnsAborted != 1 {
		t.Fatalf("published engine stats = %+v", engine)
	}
	for _, name := range []string{"lock", "pool"} {
		if _, ok := snap[name]; !ok {
			t.Fatalf("snapshot missing %q: have %v", name, reg.Names())
		}
	}
}

// TestDisableObs: DisableObs must yield a nil registry and a fully working
// engine (every instrumented path is nil-receiver safe).
func TestDisableObs(t *testing.T) {
	db := Open(Options{DisableObs: true})
	if db.Obs() != nil {
		t.Fatal("DisableObs must leave the registry nil")
	}
	regObj := registerRegType(t, db)
	tx := db.Begin()
	if _, err := tx.Exec(regObj, "set", "x"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestSharedObsAcrossEngines: a caller-provided registry is reused and its
// snapshot functions follow the most recently opened engine (the protocol-
// sweep contract).
func TestSharedObsAcrossEngines(t *testing.T) {
	reg := obs.New()
	db1 := Open(Options{Obs: reg})
	if db1.Obs() != reg {
		t.Fatal("caller-provided registry must be used")
	}
	regObj := registerRegType(t, db1)
	tx := db1.Begin()
	if _, err := tx.Exec(regObj, "set", "a"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	db2 := Open(Options{Obs: reg})
	engine, ok := reg.Snapshot()["engine"].(Stats)
	if !ok || engine.TxnsCommitted != 0 {
		t.Fatalf("engine snapshot should follow the NEW engine (0 commits), got %+v ok=%v", engine, ok)
	}
	_ = db2
}
