package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/storage"
)

// RetryPolicy configures RunWithRetry.
type RetryPolicy struct {
	// MaxAttempts bounds how many times the transaction body runs (default
	// 50). The first execution counts as attempt 1.
	MaxAttempts int
	// BaseBackoff is the delay before the second attempt (default 200µs);
	// it doubles per attempt up to MaxBackoff (default 10ms). The actual
	// sleep is jittered over the upper half of the computed delay so
	// restarted conflictors do not re-collide in lockstep.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Rand, when non-nil, supplies the jitter (deterministic tests);
	// otherwise the global source is used. Callers sharing one Rand across
	// goroutines must not: rand.Rand is not concurrency-safe — leave it nil
	// in concurrent workloads.
	Rand *rand.Rand
	// OnRetry is invoked after every failed attempt (including the last),
	// before the backoff sleep — the hook workload counters use.
	OnRetry func(attempt int, err error)
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 50
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 200 * time.Microsecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 10 * time.Millisecond
	}
	return p
}

// terminalRetryErr reports errors no retry can fix: a poisoned WAL keeps
// rejecting every commit until restart recovery, an overloaded engine only
// gets more overloaded when refused work immediately re-queues, and a
// closed engine refuses everything until the process restarts it.
func terminalRetryErr(err error) bool {
	return errors.Is(err, storage.ErrWALPoisoned) || errors.Is(err, ErrOverloaded) ||
		errors.Is(err, ErrClosed)
}

// backoffFor computes the jittered exponential delay before attempt n+1
// (n >= 1): base<<(n-1) capped at max, then jittered to [d/2, d).
func (p RetryPolicy) backoffFor(attempt int) time.Duration {
	d := p.BaseBackoff
	for i := 1; i < attempt && d < p.MaxBackoff; i++ {
		d *= 2
	}
	if d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	var j int64
	if p.Rand != nil {
		j = p.Rand.Int63n(int64(half))
	} else {
		j = globalJitter(int64(half))
	}
	return half + time.Duration(j)
}

// globalJitter draws from a process-wide locked source; math/rand's global
// functions would do, but a private source keeps workload determinism knobs
// (which seed the global source) unaffected by retry noise.
var (
	jitterMu  sync.Mutex
	jitterSrc = rand.New(rand.NewSource(1))
)

func globalJitter(n int64) int64 {
	jitterMu.Lock()
	defer jitterMu.Unlock()
	return jitterSrc.Int63n(n)
}

// RunWithRetry executes body inside a fresh transaction, committing on
// success and retrying transient failures (deadlock victims, lock
// timeouts, injected faults) with jittered exponential backoff. It is the
// engine's one retry loop — workloads used to hand-roll linear backoff.
//
// Semantics:
//
//   - One admission slot (Options.MaxInflight) covers the whole logical
//     transaction: acquired before the first attempt, held across retries,
//     released when RunWithRetry returns. Admission failure returns
//     ErrOverloaded without running body.
//   - Priority ages: every restarted attempt re-applies the FIRST
//     attempt's sequence number via Txn.SetPriority, so the youngest-victim
//     deadlock policy cannot starve a retrier behind fresher transactions.
//   - body runs with the transaction; returning nil commits. A body error
//     aborts the attempt (rollback, locks released) and retries. Commit
//     errors are terminal — a commit that failed its durability wait has
//     already surfaced a WAL-level fault that a retry cannot mend.
//   - Terminal errors (ErrWALPoisoned behind a commit, ErrOverloaded) stop
//     the loop immediately; everything else retries up to MaxAttempts.
//   - OnRetry fires once per failed attempt, before the backoff sleep.
func (db *DB) RunWithRetry(p RetryPolicy, body func(t *Txn) error) error {
	p = p.withDefaults()
	release, err := db.Admit()
	if err != nil {
		return err
	}
	defer release()

	age := int64(-1)
	var lastErr error
	for attempt := 1; attempt <= p.MaxAttempts; attempt++ {
		if attempt > 1 {
			time.Sleep(p.backoffFor(attempt - 1))
		}
		t := db.Begin()
		if age < 0 {
			age = t.Seq()
		} else {
			t.SetPriority(age)
		}
		err := body(t)
		if err == nil {
			if cerr := t.Commit(); cerr != nil {
				// Commit failures (not-durable, degraded rejection) have
				// already rolled the transaction back and are terminal; they
				// do not count as retries.
				return cerr
			}
			return nil
		}
		_ = t.Abort() // ErrTxnFinished when body already finished it
		if p.OnRetry != nil {
			p.OnRetry(attempt, err)
		}
		if terminalRetryErr(err) {
			return err
		}
		lastErr = err
	}
	return fmt.Errorf("core: transaction gave up after %d attempts: %w", p.MaxAttempts, lastErr)
}
