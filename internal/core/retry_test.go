package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestRunWithRetrySucceedsAfterTransientFailures: the body fails twice
// with a transient error, then succeeds; OnRetry sees each failed attempt.
func TestRunWithRetrySucceedsAfterTransientFailures(t *testing.T) {
	db := Open(Options{DisableTrace: true})
	page := db.AllocPage()

	transient := errors.New("transient conflict")
	attempts, retries := 0, 0
	err := db.RunWithRetry(RetryPolicy{
		MaxAttempts: 10,
		OnRetry:     func(int, error) { retries++ },
	}, func(tx *Txn) error {
		attempts++
		if attempts <= 2 {
			return transient
		}
		_, err := tx.Exec(page, "write", "done")
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 3 || retries != 2 {
		t.Fatalf("attempts = %d, retries = %d; want 3, 2", attempts, retries)
	}
	rd := db.Begin()
	if got, _ := rd.Exec(page, "read"); got != "done" {
		t.Fatalf("page = %q, want %q", got, "done")
	}
	_ = rd.Commit()
	// Failed attempts were aborted, the last one committed.
	if s := db.Stats(); s.TxnsAborted != 2 {
		t.Fatalf("TxnsAborted = %d, want 2", s.TxnsAborted)
	}
}

// TestRunWithRetryGivesUp: a body that always fails exhausts MaxAttempts
// and the last error is preserved in the wrap.
func TestRunWithRetryGivesUp(t *testing.T) {
	db := Open(Options{DisableTrace: true})
	boom := errors.New("boom")
	attempts := 0
	err := db.RunWithRetry(RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Microsecond},
		func(*Txn) error { attempts++; return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped %v", err, boom)
	}
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3", attempts)
	}
}

// TestRunWithRetryPriorityAging: every restarted attempt runs under the
// first attempt's age, so a retrier is never the youngest forever.
func TestRunWithRetryPriorityAging(t *testing.T) {
	db := Open(Options{DisableTrace: true})
	var seqs []int64
	transient := errors.New("again")
	_ = db.RunWithRetry(RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Microsecond},
		func(tx *Txn) error {
			seqs = append(seqs, tx.Seq())
			return transient
		})
	if len(seqs) != 3 {
		t.Fatalf("got %d attempts", len(seqs))
	}
	// Each attempt is a fresh (younger) transaction; SetPriority re-applies
	// the first age — observable indirectly: the calls must not panic and
	// ids must strictly increase.
	if !(seqs[0] < seqs[1] && seqs[1] < seqs[2]) {
		t.Fatalf("seqs = %v, want strictly increasing", seqs)
	}
}

// TestAdmissionControlOverload: with MaxInflight=1 and a short timeout, a
// second concurrent transaction is refused with ErrOverloaded; once the
// slot frees, admission succeeds again.
func TestAdmissionControlOverload(t *testing.T) {
	db := Open(Options{
		DisableTrace:     true,
		MaxInflight:      1,
		AdmissionTimeout: 20 * time.Millisecond,
	})

	release, err := db.Admit()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Admit(); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second admit: err = %v, want ErrOverloaded", err)
	}
	if got := db.Health().Overloads; got != 1 {
		t.Fatalf("Overloads = %d, want 1", got)
	}
	// RunWithRetry is also refused while the slot is held...
	if err := db.RunWithRetry(RetryPolicy{}, func(*Txn) error { return nil }); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("RunWithRetry under overload: %v", err)
	}
	release()
	release() // idempotent
	// ...and admitted afterwards.
	if err := db.RunWithRetry(RetryPolicy{}, func(*Txn) error { return nil }); err != nil {
		t.Fatalf("RunWithRetry after release: %v", err)
	}
	if got := db.Health().Inflight; got != 0 {
		t.Fatalf("Inflight = %d, want 0", got)
	}
}

// TestAdmissionSlotHeldAcrossRetries: one logical transaction's retries
// consume ONE slot — a retry storm cannot amplify admission load.
func TestAdmissionSlotHeldAcrossRetries(t *testing.T) {
	db := Open(Options{
		DisableTrace:     true,
		MaxInflight:      1,
		AdmissionTimeout: 10 * time.Millisecond,
	})
	transient := errors.New("again")
	inBody := make(chan struct{})
	goOn := make(chan struct{})
	var once sync.Once
	done := make(chan error, 1)
	go func() {
		attempts := 0
		done <- db.RunWithRetry(RetryPolicy{MaxAttempts: 5, BaseBackoff: time.Microsecond},
			func(*Txn) error {
				once.Do(func() { close(inBody) })
				attempts++
				if attempts < 5 {
					return transient
				}
				<-goOn
				return nil
			})
	}()
	<-inBody
	// While the retrier holds the slot (across all its attempts), nobody
	// else gets in.
	if _, err := db.Admit(); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("admit during retries: err = %v, want ErrOverloaded", err)
	}
	close(goOn)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if _, err := db.Admit(); err != nil {
		t.Fatalf("admit after retrier finished: %v", err)
	}
}

// TestAdmissionQueueing: a waiter inside the timeout window is admitted
// when the slot frees instead of being refused.
func TestAdmissionQueueing(t *testing.T) {
	db := Open(Options{
		DisableTrace:     true,
		MaxInflight:      1,
		AdmissionTimeout: 5 * time.Second,
	})
	release, err := db.Admit()
	if err != nil {
		t.Fatal(err)
	}
	admitted := make(chan error, 1)
	go func() {
		r2, err := db.Admit()
		if err == nil {
			r2()
		}
		admitted <- err
	}()
	time.Sleep(10 * time.Millisecond)
	release()
	select {
	case err := <-admitted:
		if err != nil {
			t.Fatalf("queued admit: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued waiter never admitted")
	}
}

// TestRetryBackoffJittered: the computed backoff doubles and stays within
// [d/2, d) of the capped exponential value.
func TestRetryBackoffJittered(t *testing.T) {
	p := RetryPolicy{}.withDefaults()
	for attempt := 1; attempt <= 12; attempt++ {
		want := p.BaseBackoff
		for i := 1; i < attempt && want < p.MaxBackoff; i++ {
			want *= 2
		}
		if want > p.MaxBackoff {
			want = p.MaxBackoff
		}
		for trial := 0; trial < 20; trial++ {
			d := p.backoffFor(attempt)
			if d < want/2 || d >= want {
				t.Fatalf("attempt %d: backoff %v outside [%v, %v)", attempt, d, want/2, want)
			}
		}
	}
}

// TestRunWithRetryUnbounded: without MaxInflight, admission is free for
// any number of concurrent logical transactions.
func TestRunWithRetryUnbounded(t *testing.T) {
	db := Open(Options{DisableTrace: true})
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		page := db.AllocPage()
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs <- db.RunWithRetry(RetryPolicy{}, func(tx *Txn) error {
				_, err := tx.Exec(page, "write", fmt.Sprint(i))
				return err
			})
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
