package core

import (
	"testing"
	"time"
)

func TestSavepointRollbackTo(t *testing.T) {
	db := Open(Options{Protocol: ProtocolOpenNested})
	dict := registerDict(t, db, "a", "b", "c")

	tx := db.Begin()
	if _, err := tx.Exec(dict, "put", "a", "a1"); err != nil {
		t.Fatal(err)
	}
	sp := tx.Savepoint()
	if _, err := tx.Exec(dict, "put", "b", "b1"); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(dict, "put", "c", "c1"); err != nil {
		t.Fatal(err)
	}
	if err := tx.RollbackTo(sp); err != nil {
		t.Fatal(err)
	}
	// Work after the savepoint is compensated; before it survives.
	if got, _ := tx.Exec(dict, "get", "a"); got != "a1" {
		t.Fatalf("a = %q", got)
	}
	if got, _ := tx.Exec(dict, "get", "b"); got != "" {
		t.Fatalf("b = %q, want rolled back", got)
	}
	if got, _ := tx.Exec(dict, "get", "c"); got != "" {
		t.Fatalf("c = %q, want rolled back", got)
	}
	// The transaction continues and commits normally.
	if _, err := tx.Exec(dict, "put", "b", "b2"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	check := db.Begin()
	a, _ := check.Exec(dict, "get", "a")
	b, _ := check.Exec(dict, "get", "b")
	_ = check.Commit()
	if a != "a1" || b != "b2" {
		t.Fatalf("a=%q b=%q", a, b)
	}
	// The whole trace (including the savepoint compensations) validates.
	_, rep, err := db.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.SystemOOSerializable {
		t.Fatalf("trace must validate: %+v", rep)
	}
}

func TestSavepointNesting(t *testing.T) {
	db := Open(Options{Protocol: ProtocolOpenNested})
	dict := registerDict(t, db, "a", "b")

	tx := db.Begin()
	sp1 := tx.Savepoint()
	_, _ = tx.Exec(dict, "put", "a", "a1")
	sp2 := tx.Savepoint()
	_, _ = tx.Exec(dict, "put", "b", "b1")

	if err := tx.RollbackTo(sp2); err != nil {
		t.Fatal(err)
	}
	if got, _ := tx.Exec(dict, "get", "a"); got != "a1" {
		t.Fatalf("a = %q after inner rollback", got)
	}
	if err := tx.RollbackTo(sp1); err != nil {
		t.Fatal(err)
	}
	if got, _ := tx.Exec(dict, "get", "a"); got != "" {
		t.Fatalf("a = %q after outer rollback", got)
	}
	// Rolling back to the INNER savepoint after the outer rollback fails.
	if err := tx.RollbackTo(sp2); err == nil {
		t.Fatal("invalidated savepoint must be rejected")
	}
	_ = tx.Commit()
}

func TestSavepointWrongTxn(t *testing.T) {
	db := Open(Options{Protocol: ProtocolOpenNested})
	_ = registerDict(t, db, "a")
	t1 := db.Begin()
	t2 := db.Begin()
	sp := t1.Savepoint()
	if err := t2.RollbackTo(sp); err == nil {
		t.Fatal("cross-transaction savepoint must be rejected")
	}
	_ = t1.Abort()
	_ = t2.Abort()
}

func TestSavepointAfterFinishFails(t *testing.T) {
	db := Open(Options{Protocol: ProtocolOpenNested})
	dict := registerDict(t, db, "a")
	tx := db.Begin()
	sp := tx.Savepoint()
	_, _ = tx.Exec(dict, "put", "a", "x")
	_ = tx.Commit()
	if err := tx.RollbackTo(sp); err == nil {
		t.Fatal("rollback after commit must fail")
	}
}

func TestSavepointRetainsLocks(t *testing.T) {
	db := Open(Options{Protocol: ProtocolOpenNested, LockTimeout: 5 * time.Second})
	dict := registerDict(t, db, "a")

	t1 := db.Begin()
	sp := t1.Savepoint()
	if _, err := t1.Exec(dict, "put", "a", "v"); err != nil {
		t.Fatal(err)
	}
	if err := t1.RollbackTo(sp); err != nil {
		t.Fatal(err)
	}
	// The dictionary-level semantic lock survives the partial rollback: a
	// conflicting same-key put still blocks until t1 finishes.
	done := make(chan error, 1)
	go func() {
		t2 := db.Begin()
		_, err := t2.Exec(dict, "put", "a", "w")
		if err == nil {
			err = t2.Commit()
		} else {
			_ = t2.Abort()
		}
		done <- err
	}()
	select {
	case <-done:
		t.Fatal("savepoint rollback must retain isolation")
	case <-time.After(80 * time.Millisecond):
	}
	_ = t1.Commit()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
