package core

import (
	"sync"
	"testing"
	"time"

	"repro/internal/commut"
	"repro/internal/span"
	"repro/internal/storage"
	"repro/internal/txn"
)

// TestMethodSpansRecorded: every dispatch of a sampled transaction becomes
// a KMethod span carrying object, method, and commutativity class.
func TestMethodSpansRecorded(t *testing.T) {
	db := Open(Options{Protocol: ProtocolOpenNested})
	reg := registerRegType(t, db)
	tx := db.Begin()
	if _, err := tx.Exec(reg, "set", "v1"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tr := db.Spans()
	if tr == nil {
		t.Fatal("engine must create a tracer by default")
	}
	snap := tr.Lookup(tx.ID()).Snapshot()
	if snap.Status != span.StatusCommitted {
		t.Fatalf("status = %s", snap.Status)
	}
	var m *span.Span
	for i := range snap.Spans {
		if snap.Spans[i].Kind == span.KMethod && snap.Spans[i].Method == "set" {
			m = &snap.Spans[i]
		}
	}
	if m == nil {
		t.Fatalf("no method span for set: %+v", snap.Spans)
	}
	if m.Object != reg.Name || m.Class == "" {
		t.Fatalf("method span must carry dispatch and class: %+v", m)
	}
}

func TestDisableSpans(t *testing.T) {
	db := Open(Options{Protocol: ProtocolOpenNested, DisableSpans: true})
	reg := registerRegType(t, db)
	tx := db.Begin()
	if _, err := tx.Exec(reg, "set", "v1"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if db.Spans() != nil {
		t.Fatal("DisableSpans must leave the tracer nil")
	}
}

// TestDeadlockVictimProvenance reruns the deadlock scenario of
// TestDeadlockVictimAborts and asserts the victim's trace explains the
// abort: a lock span whose terminal edge names the surviving peer.
func TestDeadlockVictimProvenance(t *testing.T) {
	db := Open(Options{Protocol: Protocol2PLPage})
	regA := registerRegType(t, db)
	pageB := db.AllocPage()
	typB := &ObjectType{
		Name:     "regB",
		Spec:     commut.NewMatrix().SetConflicts("set", "set"),
		ReadOnly: map[string]bool{},
		Methods: map[string]MethodFunc{
			"set": func(c *Ctx, self txn.OID, params []string) (string, error) {
				return c.Call(pageB, "write", params[0])
			},
		},
	}
	if err := db.RegisterType(typB); err != nil {
		t.Fatal(err)
	}
	regB := txn.OID{Type: "regB", Name: "RB"}

	t1, t2 := db.Begin(), db.Begin()
	if _, err := t1.Exec(regA, "set", "1"); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Exec(regB, "set", "2"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, errs[0] = t1.Exec(regB, "set", "1b")
		if errs[0] != nil {
			_ = t1.Abort()
		} else {
			_ = t1.Commit()
		}
	}()
	time.Sleep(30 * time.Millisecond)
	go func() {
		defer wg.Done()
		_, errs[1] = t2.Exec(regA, "set", "2a")
		if errs[1] != nil {
			_ = t2.Abort()
		} else {
			_ = t2.Commit()
		}
	}()
	wg.Wait()
	if (errs[0] == nil) == (errs[1] == nil) {
		t.Fatalf("exactly one transaction must be the victim: %v", errs)
	}
	victim, survivor := t1, t2
	if errs[1] != nil {
		victim, survivor = t2, t1
	}

	snap := db.Spans().Lookup(victim.ID()).Snapshot()
	if snap.Status != span.StatusAborted {
		t.Fatalf("victim trace status = %s", snap.Status)
	}
	root := snap.Spans[0]
	if len(root.Edges) == 0 {
		t.Fatalf("aborted root must carry a provenance edge: %+v", root)
	}
	e := root.Edges[0]
	if e.Kind != span.EdgeVictimOf && e.Kind != span.EdgeTimeout {
		t.Fatalf("abort explanation must be victim-of or timeout: %+v", e)
	}
	if e.PeerRoot != survivor.ID() {
		t.Fatalf("edge must name the surviving peer %s: %+v", survivor.ID(), e)
	}
	var lock *span.Span
	for i := range snap.Spans {
		if snap.Spans[i].Kind == span.KLock {
			lock = &snap.Spans[i]
		}
	}
	if lock == nil || lock.Err == "" {
		t.Fatalf("victim must carry a failed lock span: %+v", snap.Spans)
	}
}

// TestGroupCommitSpan: a durable commit records a KWAL span carrying the
// fsync batch it rode.
func TestGroupCommitSpan(t *testing.T) {
	db, err := OpenDurable(Options{
		Protocol:   ProtocolOpenNested,
		Durability: storage.GroupCommit,
		WALDir:     t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	reg := registerRegType(t, db)
	tx := db.Begin()
	if _, err := tx.Exec(reg, "set", "v1"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	snap := db.Spans().Lookup(tx.ID()).Snapshot()
	var ws *span.Span
	for i := range snap.Spans {
		if snap.Spans[i].Kind == span.KWAL {
			ws = &snap.Spans[i]
		}
	}
	if ws == nil {
		t.Fatalf("durable commit must record a group-commit span: %+v", snap.Spans)
	}
	if ws.N < 1 || ws.Note == "" {
		t.Fatalf("group-commit span must carry batch info: %+v", ws)
	}
}
