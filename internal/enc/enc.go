// Package enc implements the paper's running application (Figure 2): an
// encyclopedia whose items live on pages, indexed by a B+ tree and chained
// in a linked list:
//
//	Enc.insert(k, text) → BpTree.insert(k, ref) → ... → Page.*
//	                    → LinkedList.append(k, ref) → Page.*
//	                    → Item.create(k, text) → Page.write
//	Enc.search(k)       → BpTree.search(k) → ... ; Item.read → Page.read
//	Enc.readSeq()       → LinkedList.readSeq → ... ; Item.read → Page.read
//
// Items are reachable on two paths (via the index and via the list), which
// is exactly the situation that makes the paper's added action dependency
// relation (Definition 15) necessary.
package enc

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/btree"
	"repro/internal/catalog"
	"repro/internal/commut"
	"repro/internal/core"
	"repro/internal/list"
	"repro/internal/storage"
	"repro/internal/txn"
)

// Object type names.
const (
	Type     = "encyclopedia"
	ItemType = "item"
)

// Errors.
var (
	ErrBadKey     = errors.New("enc: key or text contains a reserved character")
	ErrUnknownEnc = errors.New("enc: unknown encyclopedia")
)

const reserved = "|=;:,"

func valid(s string) bool { return s != "" && !strings.ContainsAny(s, reserved) }

func validText(s string) bool { return !strings.ContainsAny(s, reserved) }

// Spec is the commutativity specification of the encyclopedia type:
// operations on distinct keys commute, searches commute with each other,
// and the sequential reader conflicts with every mutator (it observes
// membership and contents).
func Spec() commut.Spec {
	base := commut.NewMatrix().
		SetCommutes("readSeq", "readSeq").
		SetCommutes("readSeq", "search").
		SetConflicts("readSeq", "insert").
		SetConflicts("readSeq", "update").
		SetConflicts("readSeq", "delete")
	spec := commut.NewParamSpec(base)
	sameKey := func(a, b commut.Invocation) bool { return a.Param(0) != b.Param(0) }
	mutators := []string{"insert", "update", "delete"}
	for _, m1 := range mutators {
		for _, m2 := range append(mutators, "search") {
			spec.Rule(m1, m2, sameKey)
		}
	}
	spec.Rule("search", "search", func(a, b commut.Invocation) bool { return true })
	return spec
}

// ItemSpec is the commutativity specification of item objects.
func ItemSpec() commut.Spec {
	return commut.NewMatrix().
		SetCommutes("read", "read").
		SetConflicts("read", "update").
		SetConflicts("update", "update").
		SetConflicts("create", "read").
		SetConflicts("create", "update").
		SetConflicts("create", "create")
}

// Module owns the encyclopedia and item object types of one DB.
type Module struct {
	db    *core.DB
	trees *btree.Module
	lists *list.Module
	cat   *catalog.Catalog

	mu   sync.Mutex
	encs map[string]*Encyclopedia
}

// SetCatalog makes the module (and its substructures) record metadata in
// the system catalog so AttachFromCatalog can rebuild after a restart.
func (m *Module) SetCatalog(cat *catalog.Catalog) {
	m.cat = cat
	m.trees.SetCatalog(cat)
	m.lists.SetCatalog(cat)
}

// AttachFromCatalog re-binds to an encyclopedia recorded in the catalog.
func (m *Module) AttachFromCatalog(cat *catalog.Catalog, name string) (*Encyclopedia, error) {
	if !valid(name) {
		return nil, ErrBadKey
	}
	e, err := cat.Get(catalog.KindEnc, name)
	if err != nil {
		return nil, err
	}
	if _, _, err := catalog.EncFields(e); err != nil {
		return nil, err
	}
	m.mu.Lock()
	if _, dup := m.encs[name]; dup {
		m.mu.Unlock()
		return nil, fmt.Errorf("enc: encyclopedia %q already exists", name)
	}
	m.mu.Unlock()

	tree, err := m.trees.AttachFromCatalog(cat, name+"Index")
	if err != nil {
		return nil, err
	}
	lst, err := m.lists.AttachFromCatalog(cat, name+"List")
	if err != nil {
		return nil, err
	}
	enc := &Encyclopedia{name: name, oid: txn.OID{Type: Type, Name: name}, tree: tree, list: lst}
	m.mu.Lock()
	m.encs[name] = enc
	m.mu.Unlock()
	return enc, nil
}

// Encyclopedia is one encyclopedia instance.
type Encyclopedia struct {
	name string
	oid  txn.OID
	tree *btree.Tree
	list *list.List
}

// OID returns the encyclopedia's object id.
func (e *Encyclopedia) OID() txn.OID { return e.oid }

// Tree returns the underlying index (for structural assertions in tests).
func (e *Encyclopedia) Tree() *btree.Tree { return e.tree }

// List returns the underlying linked list.
func (e *Encyclopedia) List() *list.List { return e.list }

// Install registers the encyclopedia and item types. The btree and list
// modules must already be installed on the same DB.
func Install(db *core.DB, trees *btree.Module, lists *list.Module) (*Module, error) {
	m := &Module{db: db, trees: trees, lists: lists, encs: make(map[string]*Encyclopedia)}

	itemType := &core.ObjectType{
		Name: ItemType,
		Spec: ItemSpec(),
		ReadOnly: map[string]bool{
			"read": true,
		},
		Methods: map[string]core.MethodFunc{
			"create": m.itemCreate,
			"read":   m.itemRead,
			"update": m.itemUpdate,
		},
		Compensate: map[string]core.CompensateFunc{
			// update(text) returns the old text.
			"update": func(params []string, result string) (string, []string, bool) {
				return "update", []string{result}, true
			},
		},
	}
	if err := db.RegisterType(itemType); err != nil {
		return nil, err
	}

	encType := &core.ObjectType{
		Name: Type,
		Spec: Spec(),
		ReadOnly: map[string]bool{
			"search":  true,
			"readSeq": true,
		},
		Methods: map[string]core.MethodFunc{
			"insert":  m.encInsert,
			"search":  m.encSearch,
			"update":  m.encUpdate,
			"delete":  m.encDelete,
			"readSeq": m.encReadSeq,
		},
		Compensate: map[string]core.CompensateFunc{
			"insert": func(params []string, result string) (string, []string, bool) {
				if result == "new" {
					return "delete", []string{params[0]}, true
				}
				return "update", []string{params[0], strings.TrimPrefix(result, "old|")}, true
			},
			"update": func(params []string, result string) (string, []string, bool) {
				if result == "miss" {
					return "", nil, false
				}
				return "update", []string{params[0], strings.TrimPrefix(result, "old|")}, true
			},
			"delete": func(params []string, result string) (string, []string, bool) {
				if result == "miss" {
					return "", nil, false
				}
				return "insert", []string{params[0], strings.TrimPrefix(result, "old|")}, true
			},
		},
	}
	if err := db.RegisterType(encType); err != nil {
		return nil, err
	}
	return m, nil
}

// New creates an encyclopedia backed by a B+ tree with the given node
// capacity and a linked list with the given spine-page capacity.
func (m *Module) New(name string, treeFanout, spineCapacity int) (*Encyclopedia, error) {
	if !valid(name) {
		return nil, ErrBadKey
	}
	m.mu.Lock()
	if _, dup := m.encs[name]; dup {
		m.mu.Unlock()
		return nil, fmt.Errorf("enc: encyclopedia %q already exists", name)
	}
	m.mu.Unlock()

	tree, err := m.trees.NewTree(name+"Index", treeFanout)
	if err != nil {
		return nil, err
	}
	lst, err := m.lists.NewList(name+"List", spineCapacity)
	if err != nil {
		return nil, err
	}
	e := &Encyclopedia{
		name: name,
		oid:  txn.OID{Type: Type, Name: name},
		tree: tree,
		list: lst,
	}
	if m.cat != nil {
		if err := m.cat.Put(catalog.EncEntry(name, treeFanout, spineCapacity)); err != nil {
			return nil, err
		}
	}
	m.mu.Lock()
	m.encs[name] = e
	m.mu.Unlock()
	return e, nil
}

// Attach re-binds to an existing encyclopedia after a restart: indexRoot
// and listHead are the catalog-persisted page ids of the B+ tree root and
// the list's head spine page.
func (m *Module) Attach(name string, treeFanout, spineCapacity int, indexRoot, listHead storage.PageID) (*Encyclopedia, error) {
	if !valid(name) {
		return nil, ErrBadKey
	}
	m.mu.Lock()
	if _, dup := m.encs[name]; dup {
		m.mu.Unlock()
		return nil, fmt.Errorf("enc: encyclopedia %q already exists", name)
	}
	m.mu.Unlock()

	tree, err := m.trees.Attach(name+"Index", treeFanout, indexRoot)
	if err != nil {
		return nil, err
	}
	lst, err := m.lists.Attach(name+"List", spineCapacity, listHead)
	if err != nil {
		return nil, err
	}
	e := &Encyclopedia{
		name: name,
		oid:  txn.OID{Type: Type, Name: name},
		tree: tree,
		list: lst,
	}
	if m.cat != nil {
		if err := m.cat.Put(catalog.EncEntry(name, treeFanout, spineCapacity)); err != nil {
			return nil, err
		}
	}
	m.mu.Lock()
	m.encs[name] = e
	m.mu.Unlock()
	return e, nil
}

// Get returns a created encyclopedia by name.
func (m *Module) Get(name string) (*Encyclopedia, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.encs[name]
	return e, ok
}

func (m *Module) enc(self txn.OID) (*Encyclopedia, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.encs[self.Name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownEnc, self.Name)
	}
	return e, nil
}

// --- item object methods -----------------------------------------------------

func itemOID(pid storage.PageID) txn.OID {
	return txn.OID{Type: ItemType, Name: "Item" + strconv.FormatUint(uint64(pid), 10)}
}

func itemPage(self txn.OID) txn.OID {
	return txn.OID{Type: core.PageType, Name: "Page" + strings.TrimPrefix(self.Name, "Item")}
}

// itemCreate initializes the item's page with "key|text". params: key, text.
func (m *Module) itemCreate(c *core.Ctx, self txn.OID, params []string) (string, error) {
	if len(params) != 2 {
		return "", fmt.Errorf("enc: item create needs key and text")
	}
	return c.Call(itemPage(self), "write", params[0]+"|"+params[1])
}

// itemRead returns the item's text.
func (m *Module) itemRead(c *core.Ctx, self txn.OID, params []string) (string, error) {
	data, err := c.Call(itemPage(self), "read")
	if err != nil {
		return "", err
	}
	_, text, found := strings.Cut(data, "|")
	if !found {
		return "", fmt.Errorf("enc: corrupt item page %q", data)
	}
	return text, nil
}

// itemUpdate replaces the text and returns the previous text. params: text.
func (m *Module) itemUpdate(c *core.Ctx, self txn.OID, params []string) (string, error) {
	if len(params) != 1 {
		return "", fmt.Errorf("enc: item update needs text")
	}
	data, err := c.Call(itemPage(self), "readx")
	if err != nil {
		return "", err
	}
	key, old, found := strings.Cut(data, "|")
	if !found {
		return "", fmt.Errorf("enc: corrupt item page %q", data)
	}
	if _, err := c.Call(itemPage(self), "write", key+"|"+params[0]); err != nil {
		return "", err
	}
	return old, nil
}

// --- encyclopedia object methods ----------------------------------------------

// encInsert adds or replaces an item: result "new", or "old|<previous text>".
// params: key, text.
func (m *Module) encInsert(c *core.Ctx, self txn.OID, params []string) (string, error) {
	if len(params) != 2 || !valid(params[0]) || !validText(params[1]) {
		return "", ErrBadKey
	}
	key, text := params[0], params[1]
	e, err := m.enc(self)
	if err != nil {
		return "", err
	}
	ref, err := c.Call(e.tree.OID(), "search", key)
	if err != nil {
		return "", err
	}
	if ref != "" {
		pid, err := parseRef(ref)
		if err != nil {
			return "", err
		}
		old, err := c.Call(itemOID(pid), "update", text)
		if err != nil {
			return "", err
		}
		return "old|" + old, nil
	}

	itemPageOID := c.DB().AllocPage()
	pid, err := core.PageID(itemPageOID)
	if err != nil {
		return "", err
	}
	if _, err := c.Call(itemOID(pid), "create", key, text); err != nil {
		return "", err
	}
	refStr := strconv.FormatUint(uint64(pid), 10)
	if _, err := c.Call(e.tree.OID(), "insert", key, refStr); err != nil {
		return "", err
	}
	if _, err := c.Call(e.list.OID(), "append", key, refStr); err != nil {
		return "", err
	}
	return "new", nil
}

// encSearch returns the item text for key, or "" when absent.
func (m *Module) encSearch(c *core.Ctx, self txn.OID, params []string) (string, error) {
	if len(params) != 1 || !valid(params[0]) {
		return "", ErrBadKey
	}
	e, err := m.enc(self)
	if err != nil {
		return "", err
	}
	ref, err := c.Call(e.tree.OID(), "search", params[0])
	if err != nil || ref == "" {
		return "", err
	}
	pid, err := parseRef(ref)
	if err != nil {
		return "", err
	}
	return c.Call(itemOID(pid), "read")
}

// encUpdate changes an existing item's text: "miss" or "old|<previous>".
// params: key, text.
func (m *Module) encUpdate(c *core.Ctx, self txn.OID, params []string) (string, error) {
	if len(params) != 2 || !valid(params[0]) || !validText(params[1]) {
		return "", ErrBadKey
	}
	e, err := m.enc(self)
	if err != nil {
		return "", err
	}
	ref, err := c.Call(e.tree.OID(), "search", params[0])
	if err != nil {
		return "", err
	}
	if ref == "" {
		return "miss", nil
	}
	pid, err := parseRef(ref)
	if err != nil {
		return "", err
	}
	old, err := c.Call(itemOID(pid), "update", params[1])
	if err != nil {
		return "", err
	}
	return "old|" + old, nil
}

// encDelete removes an item: "miss" or "old|<text>". The item page is not
// reclaimed. params: key.
func (m *Module) encDelete(c *core.Ctx, self txn.OID, params []string) (string, error) {
	if len(params) != 1 || !valid(params[0]) {
		return "", ErrBadKey
	}
	key := params[0]
	e, err := m.enc(self)
	if err != nil {
		return "", err
	}
	ref, err := c.Call(e.tree.OID(), "delete", key)
	if err != nil {
		return "", err
	}
	if ref == "" {
		return "miss", nil
	}
	pid, err := parseRef(ref)
	if err != nil {
		return "", err
	}
	text, err := c.Call(itemOID(pid), "read")
	if err != nil {
		return "", err
	}
	if _, err := c.Call(e.list.OID(), "remove", key); err != nil {
		return "", err
	}
	return "old|" + text, nil
}

// encReadSeq reads every item through the linked list, in list order:
// "k1=t1;k2=t2;...".
func (m *Module) encReadSeq(c *core.Ctx, self txn.OID, params []string) (string, error) {
	e, err := m.enc(self)
	if err != nil {
		return "", err
	}
	seq, err := c.Call(e.list.OID(), "readSeq")
	if err != nil {
		return "", err
	}
	if seq == "" {
		return "", nil
	}
	var out []string
	for _, pair := range strings.Split(seq, ";") {
		k, ref, found := strings.Cut(pair, ":")
		if !found {
			return "", fmt.Errorf("enc: corrupt list entry %q", pair)
		}
		pid, err := parseRef(ref)
		if err != nil {
			return "", err
		}
		text, err := c.Call(itemOID(pid), "read")
		if err != nil {
			return "", err
		}
		out = append(out, k+"="+text)
	}
	return strings.Join(out, ";"), nil
}

func parseRef(ref string) (storage.PageID, error) {
	n, err := strconv.ParseUint(ref, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("enc: bad item ref %q: %w", ref, err)
	}
	return storage.PageID(n), nil
}
