package enc

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/list"
	"repro/internal/txn"
)

func newEnc(t testing.TB, p core.ProtocolKind) (*core.DB, *Encyclopedia) {
	t.Helper()
	db := core.Open(core.Options{Protocol: p, LockTimeout: 5 * time.Second})
	trees, err := btree.Install(db)
	if err != nil {
		t.Fatal(err)
	}
	lists, err := list.Install(db)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Install(db, trees, lists)
	if err != nil {
		t.Fatal(err)
	}
	e, err := m.New("Enc", 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	return db, e
}

func runOne(t testing.TB, db *core.DB, obj txn.OID, method string, params ...string) string {
	t.Helper()
	for attempt := 0; ; attempt++ {
		tx := db.Begin()
		res, err := tx.Exec(obj, method, params...)
		if err == nil {
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			return res
		}
		_ = tx.Abort()
		if attempt == 19 {
			t.Fatalf("%s.%s%v failed: %v", obj.Name, method, params, err)
		}
	}
}

func TestFig2Structure(t *testing.T) {
	// The encyclopedia of Figure 2: items indexed by a B+ tree AND chained
	// in a linked list; both access paths return the same contents.
	db, e := newEnc(t, core.ProtocolOpenNested)
	items := map[string]string{
		"DBS":  "database-system",
		"DBMS": "database-management-system",
		"IR":   "information-retrieval",
	}
	for k, v := range items {
		if res := runOne(t, db, e.OID(), "insert", k, v); res != "new" {
			t.Fatalf("insert(%s) = %q", k, res)
		}
	}
	// Index path.
	for k, v := range items {
		if got := runOne(t, db, e.OID(), "search", k); got != v {
			t.Fatalf("search(%s) = %q", k, got)
		}
	}
	// Sequential path sees every item.
	seq := runOne(t, db, e.OID(), "readSeq")
	for k, v := range items {
		if !strings.Contains(seq, k+"="+v) {
			t.Fatalf("readSeq missing %s: %q", k, seq)
		}
	}
	if e.Tree() == nil || e.List() == nil {
		t.Fatal("substructure accessors broken")
	}
}

func TestInsertUpdateDelete(t *testing.T) {
	db, e := newEnc(t, core.ProtocolOpenNested)
	if res := runOne(t, db, e.OID(), "insert", "K", "t1"); res != "new" {
		t.Fatalf("insert = %q", res)
	}
	// Insert on existing key updates in place.
	if res := runOne(t, db, e.OID(), "insert", "K", "t2"); res != "old|t1" {
		t.Fatalf("re-insert = %q", res)
	}
	if res := runOne(t, db, e.OID(), "update", "K", "t3"); res != "old|t2" {
		t.Fatalf("update = %q", res)
	}
	if res := runOne(t, db, e.OID(), "update", "ghost", "x"); res != "miss" {
		t.Fatalf("update miss = %q", res)
	}
	if res := runOne(t, db, e.OID(), "delete", "K"); res != "old|t3" {
		t.Fatalf("delete = %q", res)
	}
	if res := runOne(t, db, e.OID(), "delete", "K"); res != "miss" {
		t.Fatalf("double delete = %q", res)
	}
	if got := runOne(t, db, e.OID(), "search", "K"); got != "" {
		t.Fatalf("search deleted = %q", got)
	}
	if seq := runOne(t, db, e.OID(), "readSeq"); strings.Contains(seq, "K=") {
		t.Fatalf("deleted item in readSeq: %q", seq)
	}
}

func TestCompensatedAbortRestoresBothPaths(t *testing.T) {
	db, e := newEnc(t, core.ProtocolOpenNested)
	runOne(t, db, e.OID(), "insert", "stay", "v0")

	tx := db.Begin()
	if _, err := tx.Exec(e.OID(), "insert", "gone", "v1"); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(e.OID(), "update", "stay", "v1"); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(e.OID(), "delete", "stay"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}

	if got := runOne(t, db, e.OID(), "search", "gone"); got != "" {
		t.Fatalf("aborted insert visible via index: %q", got)
	}
	if got := runOne(t, db, e.OID(), "search", "stay"); got != "v0" {
		t.Fatalf("stay = %q, want v0", got)
	}
	seq := runOne(t, db, e.OID(), "readSeq")
	if strings.Contains(seq, "gone") {
		t.Fatalf("aborted insert visible via list: %q", seq)
	}
	if !strings.Contains(seq, "stay=v0") {
		t.Fatalf("stay not restored in list: %q", seq)
	}
	_, rep, err := db.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.SystemOOSerializable {
		t.Fatalf("expanded history must validate: %+v", rep)
	}
}

func TestBadParams(t *testing.T) {
	db, e := newEnc(t, core.ProtocolOpenNested)
	tx := db.Begin()
	defer tx.Abort()
	for _, c := range [][]string{
		{"insert", "a|b", "t"},
		{"insert", "", "t"},
		{"insert", "k", "t;x"},
		{"search", "a:b"},
		{"update", "k"},
		{"delete", ""},
	} {
		if _, err := tx.Exec(e.OID(), c[0], c[1:]...); !errors.Is(err, ErrBadKey) {
			t.Errorf("%v: err = %v, want ErrBadKey", c, err)
		}
	}
}

// TestExample4Live replays the paper's Example 4 against the real engine:
// T1 inserts DBS, T2 inserts DBMS and updates it, T3 searches DBS, T4 reads
// sequentially. All four must commit and validate oo-serializably.
func TestExample4Live(t *testing.T) {
	db, e := newEnc(t, core.ProtocolOpenNested)
	// Pre-populate the two items the readers touch.
	runOne(t, db, e.OID(), "insert", "IR", "info-retrieval")

	var wg sync.WaitGroup
	ops := [][]string{
		{"insert", "DBS", "database-system"},
		{"insert", "DBMS", "db-mgmt-system"},
		{"search", "DBS"},
		{"readSeq"},
	}
	errs := make([]error, len(ops))
	for i, op := range ops {
		wg.Add(1)
		go func(i int, op []string) {
			defer wg.Done()
			for attempt := 0; attempt < 20; attempt++ {
				tx := db.Begin()
				_, err := tx.Exec(e.OID(), op[0], op[1:]...)
				if err == nil {
					errs[i] = tx.Commit()
					return
				}
				_ = tx.Abort()
				errs[i] = err
			}
		}(i, op)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	// Follow-up: T2's second half — update the previously inserted DBMS.
	if res := runOne(t, db, e.OID(), "update", "DBMS", "changed"); res != "old|db-mgmt-system" {
		t.Fatalf("update = %q", res)
	}

	a, rep, err := db.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.SystemOOSerializable {
		t.Fatalf("live Example 4 must validate: %+v", rep)
	}
	if !rep.GlobalAcyclic {
		t.Fatal("global graph must be acyclic")
	}
	_ = a
}

func TestConcurrentMixedAllProtocols(t *testing.T) {
	for _, p := range []core.ProtocolKind{core.ProtocolOpenNested, core.Protocol2PLPage, core.Protocol2PLObject, core.ProtocolClosedNested} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			db, e := newEnc(t, p)
			// On failure, the flight recorder's tail is the best lead on
			// what the interleaving actually did.
			t.Cleanup(func() {
				if t.Failed() {
					var b strings.Builder
					db.Obs().Recorder().Dump(&b, 64)
					t.Log(b.String())
				}
			})
			for i := 0; i < 10; i++ {
				runOne(t, db, e.OID(), "insert", fmt.Sprintf("base%02d", i), "v")
			}
			var wg sync.WaitGroup
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < 10; i++ {
						switch i % 4 {
						case 0:
							runOne(t, db, e.OID(), "insert", fmt.Sprintf("g%d-%02d", g, i), "v")
						case 1:
							runOne(t, db, e.OID(), "search", fmt.Sprintf("base%02d", i))
						case 2:
							runOne(t, db, e.OID(), "update", fmt.Sprintf("base%02d", (g+i)%10), fmt.Sprintf("w%d", g))
						case 3:
							runOne(t, db, e.OID(), "readSeq")
						}
					}
				}(g)
			}
			wg.Wait()
			_, rep, err := db.Validate()
			if err != nil {
				t.Fatal(err)
			}
			if !rep.SystemOOSerializable {
				t.Fatalf("%s: trace must validate: %+v", p, rep)
			}
		})
	}
}

func BenchmarkEncInsert(b *testing.B) {
	db := core.Open(core.Options{Protocol: core.ProtocolOpenNested, DisableTrace: true})
	trees, _ := btree.Install(db)
	lists, _ := list.Install(db)
	m, _ := Install(db, trees, lists)
	e, _ := m.New("Enc", 64, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := db.Begin()
		if _, err := tx.Exec(e.OID(), "insert", fmt.Sprintf("k%09d", i), "text"); err != nil {
			b.Fatal(err)
		}
		_ = tx.Commit()
	}
}

func BenchmarkEncSearch(b *testing.B) {
	db := core.Open(core.Options{Protocol: core.ProtocolOpenNested, DisableTrace: true})
	trees, _ := btree.Install(db)
	lists, _ := list.Install(db)
	m, _ := Install(db, trees, lists)
	e, _ := m.New("Enc", 64, 64)
	for i := 0; i < 5000; i++ {
		tx := db.Begin()
		_, _ = tx.Exec(e.OID(), "insert", fmt.Sprintf("k%09d", i), "text")
		_ = tx.Commit()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := db.Begin()
		if _, err := tx.Exec(e.OID(), "search", fmt.Sprintf("k%09d", i%5000)); err != nil {
			b.Fatal(err)
		}
		_ = tx.Commit()
	}
}

// TestPhantomPrevention: the paper's §1 lists "occurrences of phantoms"
// among the anomalies serializability must prevent. A sequential reader
// holds the Enc-level readSeq lock until commit; an insert (which would
// create a phantom for a repeated read) blocks behind it — and both orders
// validate.
func TestPhantomPrevention(t *testing.T) {
	db, e := newEnc(t, core.ProtocolOpenNested)
	runOne(t, db, e.OID(), "insert", "base", "v")

	reader := db.Begin()
	seq1, err := reader.Exec(e.OID(), "readSeq")
	if err != nil {
		t.Fatal(err)
	}

	inserted := make(chan error, 1)
	go func() {
		tx := db.Begin()
		_, err := tx.Exec(e.OID(), "insert", "phantom", "boo")
		if err == nil {
			err = tx.Commit()
		} else {
			_ = tx.Abort()
		}
		inserted <- err
	}()
	select {
	case <-inserted:
		t.Fatal("the insert must block while the reader's lock is held")
	case <-time.After(80 * time.Millisecond):
	}

	// The repeated read inside the same transaction sees the SAME set —
	// no phantom.
	seq2, err := reader.Exec(e.OID(), "readSeq")
	if err != nil {
		t.Fatal(err)
	}
	if seq1 != seq2 {
		t.Fatalf("phantom observed: %q vs %q", seq1, seq2)
	}
	if err := reader.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-inserted; err != nil {
		t.Fatal(err)
	}
	if got := runOne(t, db, e.OID(), "search", "phantom"); got != "boo" {
		t.Fatalf("insert lost after reader committed: %q", got)
	}
	_, rep, err := db.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.SystemOOSerializable {
		t.Fatalf("trace must validate: %+v", rep)
	}
}
