// Package fault is the engine-wide fault-injection framework: a registry
// of named failpoints compiled into the I/O and contention hot paths
// (store read/write, pool eviction and write-back, WAL append/fsync/
// rotation, group-commit flushing, lock acquisition). A disarmed failpoint
// costs one atomic pointer load — cheap enough to leave in production
// builds — and an armed one injects an error, a delay, or a panic,
// optionally gated by probability, fire-count, every-N, or after-N
// triggers.
//
// Failpoints are armed programmatically (Registry.Arm), from the command
// line (oodbsim -fault name=spec, see ParseSpec for the grammar), or at
// runtime through the /fault endpoint mounted on the observability HTTP
// server (Registry.Handler). cmd/chaos drives random failpoints through a
// live workload and verifies the engine degrades instead of corrupting.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the sentinel every injected error wraps; test code checks
// errors.Is(err, fault.ErrInjected) to distinguish injected failures from
// organic ones.
var ErrInjected = errors.New("fault: injected failure")

// ActionKind is what an armed failpoint does when it fires.
type ActionKind int

const (
	// ActError makes Inject return an error.
	ActError ActionKind = iota
	// ActDelay makes Inject sleep before returning nil.
	ActDelay
	// ActPanic makes Inject panic.
	ActPanic
)

func (k ActionKind) String() string {
	switch k {
	case ActError:
		return "error"
	case ActDelay:
		return "delay"
	case ActPanic:
		return "panic"
	}
	return fmt.Sprintf("action(%d)", int(k))
}

// Spec describes an armed failpoint: the action taken on a fire and the
// triggers deciding which evaluations fire.
type Spec struct {
	// Kind selects the action (error, delay, panic).
	Kind ActionKind
	// Msg annotates the injected error or panic.
	Msg string
	// Delay is the sleep duration for ActDelay.
	Delay time.Duration

	// Prob fires each eligible evaluation with this probability; 0 (or ≥1)
	// means always.
	Prob float64
	// EveryN fires only every Nth eligible evaluation (≤1 means every one).
	EveryN int64
	// Count disarms the failpoint after this many fires (0 = unlimited).
	Count int64
	// After skips the first N evaluations before any can fire.
	After int64
	// Seed seeds the probability trigger's generator (0 = fixed default),
	// keeping probabilistic chaos runs reproducible.
	Seed int64
}

// String renders the spec in the ParseSpec grammar.
func (s Spec) String() string {
	out := s.Kind.String()
	switch s.Kind {
	case ActDelay:
		out += "(" + s.Delay.String() + ")"
	default:
		if s.Msg != "" {
			out += "(" + s.Msg + ")"
		}
	}
	if s.Prob > 0 && s.Prob < 1 {
		out += fmt.Sprintf(";p=%g", s.Prob)
	}
	if s.EveryN > 1 {
		out += fmt.Sprintf(";every=%d", s.EveryN)
	}
	if s.Count > 0 {
		out += fmt.Sprintf(";count=%d", s.Count)
	}
	if s.After > 0 {
		out += fmt.Sprintf(";after=%d", s.After)
	}
	if s.Seed != 0 {
		out += fmt.Sprintf(";seed=%d", s.Seed)
	}
	return out
}

// armed is the live state behind an armed failpoint. It is reached through
// one atomic pointer, so disarmed evaluation never takes a lock.
type armed struct {
	spec  Spec
	evals atomic.Int64 // evaluations since arming
	fires atomic.Int64 // times the action actually ran

	mu  sync.Mutex // guards rng (only taken when a probability trigger is set)
	rng *rand.Rand
}

// Failpoint is one named injection site. The zero cost claim: Inject on a
// disarmed point is a single atomic pointer load and a predictable branch.
type Failpoint struct {
	name  string
	state atomic.Pointer[armed]
	// fires survives re-arming so /fault reports lifetime totals.
	totalFires atomic.Int64
}

// Name returns the failpoint's registry name.
func (p *Failpoint) Name() string { return p.name }

// Armed reports whether the failpoint is currently armed.
func (p *Failpoint) Armed() bool { return p != nil && p.state.Load() != nil }

// Inject evaluates the failpoint: nil when disarmed or when the armed
// triggers pass this evaluation over; otherwise it sleeps (delay), panics
// (panic), or returns an ErrInjected-wrapped error (error).
func (p *Failpoint) Inject() error {
	if p == nil {
		return nil
	}
	st := p.state.Load()
	if st == nil {
		return nil
	}
	return p.fire(st)
}

// fire is the armed slow path, split out so Inject stays inlinable.
func (p *Failpoint) fire(st *armed) error {
	n := st.evals.Add(1)
	s := st.spec
	if s.After > 0 && n <= s.After {
		return nil
	}
	if s.EveryN > 1 && (n-s.After)%s.EveryN != 0 {
		return nil
	}
	if s.Prob > 0 && s.Prob < 1 {
		st.mu.Lock()
		roll := st.rng.Float64()
		st.mu.Unlock()
		if roll >= s.Prob {
			return nil
		}
	}
	if s.Count > 0 {
		f := st.fires.Add(1)
		if f > s.Count {
			return nil
		}
		if f == s.Count {
			// Last permitted fire: auto-disarm (best effort — a re-arm
			// that raced in wins and stays).
			p.state.CompareAndSwap(st, nil)
		}
	} else {
		st.fires.Add(1)
	}
	p.totalFires.Add(1)
	switch s.Kind {
	case ActDelay:
		time.Sleep(s.Delay)
		return nil
	case ActPanic:
		panic(fmt.Sprintf("fault: failpoint %s: %s", p.name, orDefault(s.Msg, "injected panic")))
	default:
		return fmt.Errorf("%w: %s: %s", ErrInjected, p.name, orDefault(s.Msg, "injected error"))
	}
}

func orDefault(s, d string) string {
	if s == "" {
		return d
	}
	return s
}

// arm installs a spec (replacing any current one) and resets the
// per-arming counters.
func (p *Failpoint) arm(s Spec) {
	st := &armed{spec: s}
	seed := s.Seed
	if seed == 0 {
		seed = 1
	}
	st.rng = rand.New(rand.NewSource(seed))
	p.state.Store(st)
}

// disarm removes the current spec; reports whether one was armed.
func (p *Failpoint) disarm() bool { return p.state.Swap(nil) != nil }

// Status is one failpoint's row in a registry snapshot.
type Status struct {
	Name  string `json:"name"`
	Armed bool   `json:"armed"`
	Spec  string `json:"spec,omitempty"`
	// Evals counts evaluations since the current arming (0 when disarmed).
	Evals int64 `json:"evals"`
	// Fires counts lifetime fires across armings.
	Fires int64 `json:"fires"`
}

// Registry holds named failpoints. Components reserve their points at init
// (Point is get-or-create), so the /fault endpoint can list every site the
// build carries even while all of them are disarmed.
type Registry struct {
	mu     sync.Mutex
	points map[string]*Failpoint
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{points: make(map[string]*Failpoint)}
}

// Default is the process-wide registry the engine's built-in failpoints
// live in; oodbsim's -fault flag and the /fault endpoint arm it.
var Default = NewRegistry()

// Point returns the named failpoint from the Default registry, creating a
// disarmed one on first use. Components call it once at package init and
// keep the handle.
func Point(name string) *Failpoint { return Default.Point(name) }

// Point returns (creating if needed) the named failpoint.
func (r *Registry) Point(name string) *Failpoint {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.points[name]
	if !ok {
		p = &Failpoint{name: name}
		r.points[name] = p
	}
	return p
}

// Lookup returns the named failpoint without creating it.
func (r *Registry) Lookup(name string) (*Failpoint, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.points[name]
	return p, ok
}

// Arm installs spec on the named failpoint (created if unknown).
func (r *Registry) Arm(name string, s Spec) { r.Point(name).arm(s) }

// ArmString parses "name=spec" (the -fault flag format) and arms it.
func (r *Registry) ArmString(kv string) error {
	name, spec, err := ParseArm(kv)
	if err != nil {
		return err
	}
	if spec == nil {
		r.Disarm(name)
		return nil
	}
	r.Arm(name, *spec)
	return nil
}

// Disarm removes the named failpoint's spec; reports whether it was armed.
func (r *Registry) Disarm(name string) bool {
	p, ok := r.Lookup(name)
	return ok && p.disarm()
}

// DisarmAll disarms every failpoint (chaos rounds end with it).
func (r *Registry) DisarmAll() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, p := range r.points {
		p.disarm()
	}
}

// Snapshot returns every known failpoint's status, sorted by name.
func (r *Registry) Snapshot() []Status {
	r.mu.Lock()
	points := make([]*Failpoint, 0, len(r.points))
	for _, p := range r.points {
		points = append(points, p)
	}
	r.mu.Unlock()
	out := make([]Status, 0, len(points))
	for _, p := range points {
		st := Status{Name: p.name, Fires: p.totalFires.Load()}
		if a := p.state.Load(); a != nil {
			st.Armed = true
			st.Spec = a.spec.String()
			st.Evals = a.evals.Load()
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
