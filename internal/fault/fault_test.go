package fault

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestDisarmedInjectIsNil(t *testing.T) {
	r := NewRegistry()
	p := r.Point("x")
	for i := 0; i < 100; i++ {
		if err := p.Inject(); err != nil {
			t.Fatalf("disarmed inject returned %v", err)
		}
	}
	var nilPoint *Failpoint
	if err := nilPoint.Inject(); err != nil {
		t.Fatalf("nil failpoint inject returned %v", err)
	}
}

func TestErrorInjection(t *testing.T) {
	r := NewRegistry()
	r.Arm("io", Spec{Kind: ActError, Msg: "disk gone"})
	err := r.Point("io").Inject()
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if !strings.Contains(err.Error(), "disk gone") || !strings.Contains(err.Error(), "io") {
		t.Fatalf("err = %v, want point name and message", err)
	}
	if !r.Disarm("io") {
		t.Fatal("Disarm reported not armed")
	}
	if err := r.Point("io").Inject(); err != nil {
		t.Fatalf("after disarm: %v", err)
	}
}

func TestCountTriggerAutoDisarms(t *testing.T) {
	r := NewRegistry()
	r.Arm("c", Spec{Kind: ActError, Count: 3})
	p := r.Point("c")
	fired := 0
	for i := 0; i < 10; i++ {
		if p.Inject() != nil {
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("fired %d times, want 3", fired)
	}
	if p.Armed() {
		t.Fatal("failpoint still armed after count exhausted")
	}
}

func TestEveryNAndAfterTriggers(t *testing.T) {
	r := NewRegistry()
	r.Arm("e", Spec{Kind: ActError, EveryN: 3, After: 2})
	p := r.Point("e")
	var pattern []bool
	for i := 0; i < 11; i++ {
		pattern = append(pattern, p.Inject() != nil)
	}
	// Evaluations 1,2 skipped (after=2); then every 3rd of the remainder:
	// eval 5 (n-After=3), 8, 11.
	want := []bool{false, false, false, false, true, false, false, true, false, false, true}
	for i := range want {
		if pattern[i] != want[i] {
			t.Fatalf("eval %d: fired=%v, want %v (pattern %v)", i+1, pattern[i], want[i], pattern)
		}
	}
}

func TestProbabilityTriggerIsSeededAndPartial(t *testing.T) {
	r := NewRegistry()
	run := func(seed int64) int {
		r.Arm("p", Spec{Kind: ActError, Prob: 0.3, Seed: seed})
		p := r.Point("p")
		fired := 0
		for i := 0; i < 1000; i++ {
			if p.Inject() != nil {
				fired++
			}
		}
		return fired
	}
	a, b := run(7), run(7)
	if a != b {
		t.Fatalf("same seed fired %d then %d times", a, b)
	}
	if a < 200 || a > 400 {
		t.Fatalf("p=0.3 fired %d/1000 times", a)
	}
}

func TestDelayInjection(t *testing.T) {
	r := NewRegistry()
	r.Arm("d", Spec{Kind: ActDelay, Delay: 20 * time.Millisecond})
	start := time.Now()
	if err := r.Point("d").Inject(); err != nil {
		t.Fatalf("delay returned error %v", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("delay slept only %v", d)
	}
}

func TestPanicInjection(t *testing.T) {
	r := NewRegistry()
	r.Arm("boom", Spec{Kind: ActPanic, Msg: "kaboom"})
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("no panic")
		}
		if s, ok := v.(string); !ok || !strings.Contains(s, "kaboom") {
			t.Fatalf("panic value %v", v)
		}
	}()
	_ = r.Point("boom").Inject()
}

func TestConcurrentInjectAndArm(t *testing.T) {
	r := NewRegistry()
	p := r.Point("race")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = p.Inject()
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		r.Arm("race", Spec{Kind: ActError, Prob: 0.5, EveryN: 2})
		r.Disarm("race")
	}
	close(stop)
	wg.Wait()
}

func TestSnapshotListsDisarmedPoints(t *testing.T) {
	r := NewRegistry()
	r.Point("b.quiet")
	r.Arm("a.live", Spec{Kind: ActError, Count: 2})
	_ = r.Point("a.live").Inject()
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d entries, want 2", len(snap))
	}
	if snap[0].Name != "a.live" || !snap[0].Armed || snap[0].Fires != 1 || snap[0].Evals != 1 {
		t.Fatalf("a.live status = %+v", snap[0])
	}
	if snap[1].Name != "b.quiet" || snap[1].Armed {
		t.Fatalf("b.quiet status = %+v", snap[1])
	}
	if snap[0].Spec == "" {
		t.Fatal("armed point has empty spec string")
	}
}

func TestSpecRoundTrip(t *testing.T) {
	cases := []string{
		"error",
		"error(disk gone)",
		"delay(2ms)",
		"delay(1.5s);p=0.25;every=4;count=10;after=3;seed=42",
		"panic(kaboom);count=1",
	}
	for _, c := range cases {
		s, err := ParseSpec(c)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", c, err)
		}
		again, err := ParseSpec(s.String())
		if err != nil {
			t.Fatalf("reparse of %q (from %q): %v", s.String(), c, err)
		}
		if again != s {
			t.Fatalf("round trip %q -> %+v -> %q -> %+v", c, s, s.String(), again)
		}
	}
}

func TestSpecParseErrors(t *testing.T) {
	bad := []string{
		"", "frob", "delay", "delay(xyz)", "error(oops", "error;p=2",
		"error;p=0", "error;every=0", "error;count=0", "error;after=-1",
		"error;bogus=1", "error;p",
	}
	for _, c := range bad {
		if _, err := ParseSpec(c); err == nil {
			t.Errorf("ParseSpec(%q) accepted", c)
		}
	}
}

func TestParseArm(t *testing.T) {
	name, spec, err := ParseArm("wal.fsync=error;count=1")
	if err != nil || name != "wal.fsync" || spec == nil || spec.Kind != ActError || spec.Count != 1 {
		t.Fatalf("ParseArm: name=%q spec=%+v err=%v", name, spec, err)
	}
	name, spec, err = ParseArm("wal.fsync=off")
	if err != nil || name != "wal.fsync" || spec != nil {
		t.Fatalf("ParseArm(off): name=%q spec=%+v err=%v", name, spec, err)
	}
	if _, _, err := ParseArm("nameonly"); err == nil {
		t.Fatal("ParseArm without '=' accepted")
	}
}

func BenchmarkDisarmedInject(b *testing.B) {
	r := NewRegistry()
	p := r.Point("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := p.Inject(); err != nil {
			b.Fatal(err)
		}
	}
}
