package fault

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// Handler serves the registry over HTTP, mounted as /fault on the obs
// endpoint:
//
//	GET  /fault                    — JSON list of every failpoint (armed or not)
//	POST /fault?arm=name=spec      — arm a failpoint (spec grammar: ParseSpec)
//	POST /fault?disarm=name        — disarm one failpoint ("all" disarms every one)
//
// GET with arm/disarm query parameters is accepted too (curl convenience —
// this is a debug endpoint, not a public API).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query()
		if kv := q.Get("arm"); kv != "" {
			if err := r.ArmString(kv); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			fmt.Fprintf(w, "armed %s\n", kv)
			return
		}
		if name := q.Get("disarm"); name != "" {
			if name == "all" {
				r.DisarmAll()
				fmt.Fprintln(w, "disarmed all")
				return
			}
			if r.Disarm(name) {
				fmt.Fprintf(w, "disarmed %s\n", name)
			} else {
				fmt.Fprintf(w, "%s was not armed\n", name)
			}
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
}
