package fault

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerListArmDisarm(t *testing.T) {
	r := NewRegistry()
	r.Point("wal.fsync")
	h := r.Handler()

	get := func(url string) (int, string) {
		req := httptest.NewRequest("GET", url, nil)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		return w.Code, w.Body.String()
	}

	code, body := get("/fault?arm=wal.fsync%3Derror%3Bcount%3D1")
	if code != 200 || !strings.Contains(body, "armed") {
		t.Fatalf("arm: %d %q", code, body)
	}
	if !r.Point("wal.fsync").Armed() {
		t.Fatal("failpoint not armed via endpoint")
	}

	code, body = get("/fault")
	if code != 200 {
		t.Fatalf("list: %d", code)
	}
	var snap []Status
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("list is not JSON: %v\n%s", err, body)
	}
	if len(snap) != 1 || snap[0].Name != "wal.fsync" || !snap[0].Armed || snap[0].Spec != "error;count=1" {
		t.Fatalf("snapshot = %+v", snap)
	}

	if code, _ = get("/fault?disarm=wal.fsync"); code != 200 {
		t.Fatalf("disarm: %d", code)
	}
	if r.Point("wal.fsync").Armed() {
		t.Fatal("failpoint still armed after disarm")
	}

	if code, body = get("/fault?arm=wal.fsync%3Dbogus"); code != 400 {
		t.Fatalf("bad spec: %d %q", code, body)
	}

	r.Arm("a", Spec{Kind: ActError})
	r.Arm("b", Spec{Kind: ActError})
	if code, _ = get("/fault?disarm=all"); code != 200 {
		t.Fatalf("disarm all: %d", code)
	}
	for _, st := range r.Snapshot() {
		if st.Armed {
			t.Fatalf("%s still armed after disarm=all", st.Name)
		}
	}
}
