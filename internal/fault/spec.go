package fault

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseArm splits an arming directive "name=spec" and parses the spec.
// A nil returned Spec means the directive disarms the point ("name=off").
func ParseArm(kv string) (name string, spec *Spec, err error) {
	name, rest, ok := strings.Cut(kv, "=")
	name = strings.TrimSpace(name)
	if !ok || name == "" {
		return "", nil, fmt.Errorf("fault: want name=spec, got %q", kv)
	}
	if strings.TrimSpace(rest) == "off" {
		return name, nil, nil
	}
	s, err := ParseSpec(rest)
	if err != nil {
		return "", nil, fmt.Errorf("fault: %s: %w", name, err)
	}
	return name, &s, nil
}

// ParseSpec parses the failpoint spec grammar:
//
//	spec    := action (';' trigger)*
//	action  := "error" ['(' msg ')']     — Inject returns an error
//	         | "delay" '(' duration ')'  — Inject sleeps (Go duration syntax)
//	         | "panic" ['(' msg ')']     — Inject panics
//	trigger := "p=" float   — fire with this probability (0 < p < 1)
//	         | "every=" N   — fire only every Nth evaluation
//	         | "count=" N   — auto-disarm after N fires
//	         | "after=" N   — skip the first N evaluations
//	         | "seed=" N    — seed for the probability roll (reproducible runs)
//
// Examples: "error", "error(disk gone);count=1", "delay(2ms);p=0.3",
// "panic;after=100".
func ParseSpec(s string) (Spec, error) {
	parts := strings.Split(s, ";")
	var spec Spec
	action := strings.TrimSpace(parts[0])
	verb, arg, err := splitAction(action)
	if err != nil {
		return Spec{}, err
	}
	switch verb {
	case "error":
		spec.Kind = ActError
		spec.Msg = arg
	case "panic":
		spec.Kind = ActPanic
		spec.Msg = arg
	case "delay":
		if arg == "" {
			return Spec{}, fmt.Errorf("delay needs a duration, e.g. delay(2ms)")
		}
		d, err := time.ParseDuration(arg)
		if err != nil {
			return Spec{}, fmt.Errorf("bad delay %q: %v", arg, err)
		}
		spec.Kind = ActDelay
		spec.Delay = d
	default:
		return Spec{}, fmt.Errorf("unknown action %q (want error|delay|panic|off)", verb)
	}
	for _, t := range parts[1:] {
		key, val, ok := strings.Cut(strings.TrimSpace(t), "=")
		if !ok {
			return Spec{}, fmt.Errorf("bad trigger %q (want key=value)", t)
		}
		switch key {
		case "p":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p <= 0 || p > 1 {
				return Spec{}, fmt.Errorf("bad probability %q (want 0 < p <= 1)", val)
			}
			spec.Prob = p
		case "every":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 1 {
				return Spec{}, fmt.Errorf("bad every %q", val)
			}
			spec.EveryN = n
		case "count":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 1 {
				return Spec{}, fmt.Errorf("bad count %q", val)
			}
			spec.Count = n
		case "after":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 0 {
				return Spec{}, fmt.Errorf("bad after %q", val)
			}
			spec.After = n
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Spec{}, fmt.Errorf("bad seed %q", val)
			}
			spec.Seed = n
		default:
			return Spec{}, fmt.Errorf("unknown trigger %q", key)
		}
	}
	return spec, nil
}

// splitAction splits "verb(arg)" or "verb" into its parts.
func splitAction(s string) (verb, arg string, err error) {
	open := strings.IndexByte(s, '(')
	if open < 0 {
		return s, "", nil
	}
	if !strings.HasSuffix(s, ")") {
		return "", "", fmt.Errorf("unbalanced parens in %q", s)
	}
	return s[:open], s[open+1 : len(s)-1], nil
}
