// Package graph provides a small directed-graph kernel used throughout the
// reproduction: dependency relations between actions and transactions are
// digraphs, and the serializability criteria of the paper (Definitions 13
// and 16) reduce to acyclicity tests on those digraphs.
//
// Nodes are identified by strings. The zero value of Digraph is not usable;
// construct one with New. Digraph is not safe for concurrent mutation; the
// concurrency-control runtime builds graphs under its own locks.
package graph

import (
	"fmt"
	"sort"
	"strings"
)

// Digraph is a directed graph over string-identified nodes.
type Digraph struct {
	// succ maps a node to the set of its direct successors.
	succ map[string]map[string]bool
	// pred maps a node to the set of its direct predecessors.
	pred map[string]map[string]bool
}

// New returns an empty directed graph.
func New() *Digraph {
	return &Digraph{
		succ: make(map[string]map[string]bool),
		pred: make(map[string]map[string]bool),
	}
}

// Clone returns a deep copy of g.
func (g *Digraph) Clone() *Digraph {
	c := New()
	for n := range g.succ {
		c.ensure(n)
	}
	for from, tos := range g.succ {
		for to := range tos {
			c.AddEdge(from, to)
		}
	}
	return c
}

func (g *Digraph) ensure(n string) {
	if _, ok := g.succ[n]; !ok {
		g.succ[n] = make(map[string]bool)
		g.pred[n] = make(map[string]bool)
	}
}

// AddNode inserts a node without edges. Adding an existing node is a no-op.
func (g *Digraph) AddNode(n string) {
	g.ensure(n)
}

// AddEdge inserts the directed edge from → to, creating nodes as needed.
// Self-loops are recorded (they make the graph cyclic).
func (g *Digraph) AddEdge(from, to string) {
	g.ensure(from)
	g.ensure(to)
	g.succ[from][to] = true
	g.pred[to][from] = true
}

// RemoveEdge deletes the edge from → to if present.
func (g *Digraph) RemoveEdge(from, to string) {
	if tos, ok := g.succ[from]; ok {
		delete(tos, to)
	}
	if froms, ok := g.pred[to]; ok {
		delete(froms, from)
	}
}

// RemoveNode deletes a node and all incident edges.
func (g *Digraph) RemoveNode(n string) {
	for to := range g.succ[n] {
		delete(g.pred[to], n)
	}
	for from := range g.pred[n] {
		delete(g.succ[from], n)
	}
	delete(g.succ, n)
	delete(g.pred, n)
}

// HasNode reports whether n is in the graph.
func (g *Digraph) HasNode(n string) bool {
	_, ok := g.succ[n]
	return ok
}

// HasEdge reports whether the edge from → to exists.
func (g *Digraph) HasEdge(from, to string) bool {
	return g.succ[from][to]
}

// Nodes returns all nodes in lexicographic order.
func (g *Digraph) Nodes() []string {
	out := make([]string, 0, len(g.succ))
	for n := range g.succ {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// NumNodes returns the node count.
func (g *Digraph) NumNodes() int { return len(g.succ) }

// NumEdges returns the edge count.
func (g *Digraph) NumEdges() int {
	n := 0
	for _, tos := range g.succ {
		n += len(tos)
	}
	return n
}

// Successors returns the direct successors of n in lexicographic order.
func (g *Digraph) Successors(n string) []string {
	out := make([]string, 0, len(g.succ[n]))
	for to := range g.succ[n] {
		out = append(out, to)
	}
	sort.Strings(out)
	return out
}

// Predecessors returns the direct predecessors of n in lexicographic order.
func (g *Digraph) Predecessors(n string) []string {
	out := make([]string, 0, len(g.pred[n]))
	for from := range g.pred[n] {
		out = append(out, from)
	}
	sort.Strings(out)
	return out
}

// Edges returns all edges as [from, to] pairs in lexicographic order.
func (g *Digraph) Edges() [][2]string {
	var out [][2]string
	for from, tos := range g.succ {
		for to := range tos {
			out = append(out, [2]string{from, to})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// HasCycle reports whether the graph contains a directed cycle.
func (g *Digraph) HasCycle() bool {
	_, err := g.TopoSort()
	return err != nil
}

// CycleError is returned by TopoSort when the graph is cyclic. It carries
// one witness cycle so serializability violations can be reported usefully.
type CycleError struct {
	// Cycle lists the nodes of one directed cycle in order; the edge from
	// the last node back to the first closes the cycle.
	Cycle []string
}

func (e *CycleError) Error() string {
	return fmt.Sprintf("graph contains a cycle: %s", strings.Join(e.Cycle, " -> "))
}

// FindCycle returns one directed cycle if the graph is cyclic, else nil.
func (g *Digraph) FindCycle() []string {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int, len(g.succ))
	parent := make(map[string]string, len(g.succ))
	var cycle []string

	var visit func(n string) bool
	visit = func(n string) bool {
		color[n] = gray
		// Iterate successors deterministically so the witness is stable.
		for _, m := range g.Successors(n) {
			switch color[m] {
			case white:
				parent[m] = n
				if visit(m) {
					return true
				}
			case gray:
				// Found a back edge n -> m; unwind the gray path m..n.
				cycle = []string{m}
				for x := n; x != m; x = parent[x] {
					cycle = append(cycle, x)
				}
				// The path was collected tail-first; reverse all but the head.
				for i, j := 1, len(cycle)-1; i < j; i, j = i+1, j-1 {
					cycle[i], cycle[j] = cycle[j], cycle[i]
				}
				return true
			}
		}
		color[n] = black
		return false
	}

	for _, n := range g.Nodes() {
		if color[n] == white {
			if visit(n) {
				return cycle
			}
		}
	}
	return nil
}

// TopoSort returns a topological order of the nodes, or a *CycleError if the
// graph is cyclic. Ties are broken lexicographically so the order is
// deterministic (useful for generating serial schedules in tests).
func (g *Digraph) TopoSort() ([]string, error) {
	indeg := make(map[string]int, len(g.succ))
	for n := range g.succ {
		indeg[n] = len(g.pred[n])
	}
	// Min-heap replaced by sorted frontier: graphs here are small enough
	// that re-sorting the frontier is fine and keeps this dependency-free.
	var frontier []string
	for n, d := range indeg {
		if d == 0 {
			frontier = append(frontier, n)
		}
	}
	sort.Strings(frontier)

	order := make([]string, 0, len(g.succ))
	for len(frontier) > 0 {
		n := frontier[0]
		frontier = frontier[1:]
		order = append(order, n)
		var released []string
		for to := range g.succ[n] {
			indeg[to]--
			if indeg[to] == 0 {
				released = append(released, to)
			}
		}
		if len(released) > 0 {
			frontier = append(frontier, released...)
			sort.Strings(frontier)
		}
	}
	if len(order) != len(g.succ) {
		cyc := g.FindCycle()
		return nil, &CycleError{Cycle: cyc}
	}
	return order, nil
}

// Reachable reports whether to is reachable from from by a non-empty path.
func (g *Digraph) Reachable(from, to string) bool {
	seen := make(map[string]bool)
	stack := []string{}
	for succ := range g.succ[from] {
		stack = append(stack, succ)
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == to {
			return true
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		for succ := range g.succ[n] {
			if !seen[succ] {
				stack = append(stack, succ)
			}
		}
	}
	return false
}

// TransitiveClosure returns a new graph with an edge u → v whenever v is
// reachable from u in g by a non-empty path.
func (g *Digraph) TransitiveClosure() *Digraph {
	c := New()
	for n := range g.succ {
		c.ensure(n)
	}
	for _, n := range g.Nodes() {
		seen := make(map[string]bool)
		stack := g.Successors(n)
		for len(stack) > 0 {
			m := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[m] {
				continue
			}
			seen[m] = true
			c.AddEdge(n, m)
			for succ := range g.succ[m] {
				if !seen[succ] {
					stack = append(stack, succ)
				}
			}
		}
	}
	return c
}

// SCCs returns the strongly connected components of g (Tarjan's algorithm),
// each sorted internally, with components ordered by their smallest member.
// Components of size > 1 (or with a self-loop) witness cycles in dependency
// relations, i.e. non-serializable executions.
func (g *Digraph) SCCs() [][]string {
	index := make(map[string]int, len(g.succ))
	low := make(map[string]int, len(g.succ))
	onStack := make(map[string]bool, len(g.succ))
	var stack []string
	var comps [][]string
	next := 0

	// Iterative Tarjan to avoid deep recursion on long chains.
	type frame struct {
		node  string
		succs []string
		i     int
	}
	var visit func(root string)
	visit = func(root string) {
		frames := []frame{{node: root, succs: g.Successors(root)}}
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true

		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.i < len(f.succs) {
				m := f.succs[f.i]
				f.i++
				if _, seen := index[m]; !seen {
					index[m] = next
					low[m] = next
					next++
					stack = append(stack, m)
					onStack[m] = true
					frames = append(frames, frame{node: m, succs: g.Successors(m)})
				} else if onStack[m] {
					if index[m] < low[f.node] {
						low[f.node] = index[m]
					}
				}
				continue
			}
			// Post-visit for f.node.
			n := f.node
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[n] < low[p.node] {
					low[p.node] = low[n]
				}
			}
			if low[n] == index[n] {
				var comp []string
				for {
					m := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[m] = false
					comp = append(comp, m)
					if m == n {
						break
					}
				}
				sort.Strings(comp)
				comps = append(comps, comp)
			}
		}
	}

	for _, n := range g.Nodes() {
		if _, seen := index[n]; !seen {
			visit(n)
		}
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i][0] < comps[j][0] })
	return comps
}

// Union returns a new graph containing the nodes and edges of both g and h.
func (g *Digraph) Union(h *Digraph) *Digraph {
	u := g.Clone()
	for n := range h.succ {
		u.ensure(n)
	}
	for from, tos := range h.succ {
		for to := range tos {
			u.AddEdge(from, to)
		}
	}
	return u
}

// Equal reports whether g and h have identical node and edge sets.
func (g *Digraph) Equal(h *Digraph) bool {
	if len(g.succ) != len(h.succ) || g.NumEdges() != h.NumEdges() {
		return false
	}
	for n, tos := range g.succ {
		htos, ok := h.succ[n]
		if !ok || len(tos) != len(htos) {
			return false
		}
		for to := range tos {
			if !htos[to] {
				return false
			}
		}
	}
	return true
}

// Subgraph returns the induced subgraph on the given node set; nodes not in
// g are ignored.
func (g *Digraph) Subgraph(nodes []string) *Digraph {
	keep := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		if g.HasNode(n) {
			keep[n] = true
		}
	}
	s := New()
	for n := range keep {
		s.ensure(n)
	}
	for from := range keep {
		for to := range g.succ[from] {
			if keep[to] {
				s.AddEdge(from, to)
			}
		}
	}
	return s
}

// String renders the graph as "a -> b, c; d -> ;" lines, sorted, for
// debugging and golden tests.
func (g *Digraph) String() string {
	var b strings.Builder
	for _, n := range g.Nodes() {
		fmt.Fprintf(&b, "%s -> %s\n", n, strings.Join(g.Successors(n), ", "))
	}
	return b.String()
}
