package graph

import (
	"math/rand"
	"reflect"
	"strconv"
	"testing"
	"testing/quick"
)

func TestAddAndQuery(t *testing.T) {
	g := New()
	g.AddEdge("a", "b")
	g.AddEdge("b", "c")
	g.AddNode("d")

	if !g.HasNode("a") || !g.HasNode("d") {
		t.Fatal("expected nodes a and d")
	}
	if g.HasNode("z") {
		t.Fatal("unexpected node z")
	}
	if !g.HasEdge("a", "b") || g.HasEdge("b", "a") {
		t.Fatal("edge direction wrong")
	}
	if got := g.NumNodes(); got != 4 {
		t.Fatalf("NumNodes = %d, want 4", got)
	}
	if got := g.NumEdges(); got != 2 {
		t.Fatalf("NumEdges = %d, want 2", got)
	}
	if got := g.Successors("a"); !reflect.DeepEqual(got, []string{"b"}) {
		t.Fatalf("Successors(a) = %v", got)
	}
	if got := g.Predecessors("c"); !reflect.DeepEqual(got, []string{"b"}) {
		t.Fatalf("Predecessors(c) = %v", got)
	}
}

func TestAddEdgeIdempotent(t *testing.T) {
	g := New()
	g.AddEdge("a", "b")
	g.AddEdge("a", "b")
	if got := g.NumEdges(); got != 1 {
		t.Fatalf("NumEdges = %d, want 1", got)
	}
}

func TestRemoveEdge(t *testing.T) {
	g := New()
	g.AddEdge("a", "b")
	g.RemoveEdge("a", "b")
	if g.HasEdge("a", "b") {
		t.Fatal("edge survived removal")
	}
	if !g.HasNode("a") || !g.HasNode("b") {
		t.Fatal("nodes should survive edge removal")
	}
	// Removing a non-existent edge must not panic.
	g.RemoveEdge("x", "y")
}

func TestRemoveNode(t *testing.T) {
	g := New()
	g.AddEdge("a", "b")
	g.AddEdge("b", "c")
	g.AddEdge("c", "b")
	g.RemoveNode("b")
	if g.HasNode("b") {
		t.Fatal("node b survived removal")
	}
	if g.NumEdges() != 0 {
		t.Fatalf("dangling edges remain: %v", g.Edges())
	}
	if g.HasEdge("a", "b") || g.HasEdge("c", "b") {
		t.Fatal("incident edges survived node removal")
	}
}

func TestTopoSortLinear(t *testing.T) {
	g := New()
	g.AddEdge("a", "b")
	g.AddEdge("b", "c")
	order, err := g.TopoSort()
	if err != nil {
		t.Fatalf("TopoSort: %v", err)
	}
	if !reflect.DeepEqual(order, []string{"a", "b", "c"}) {
		t.Fatalf("order = %v", order)
	}
}

func TestTopoSortDeterministicTieBreak(t *testing.T) {
	g := New()
	g.AddNode("c")
	g.AddNode("a")
	g.AddNode("b")
	order, err := g.TopoSort()
	if err != nil {
		t.Fatalf("TopoSort: %v", err)
	}
	if !reflect.DeepEqual(order, []string{"a", "b", "c"}) {
		t.Fatalf("order = %v, want lexicographic", order)
	}
}

func TestTopoSortCycle(t *testing.T) {
	g := New()
	g.AddEdge("a", "b")
	g.AddEdge("b", "c")
	g.AddEdge("c", "a")
	_, err := g.TopoSort()
	ce, ok := err.(*CycleError)
	if !ok {
		t.Fatalf("err = %v, want *CycleError", err)
	}
	if len(ce.Cycle) != 3 {
		t.Fatalf("cycle = %v, want 3 nodes", ce.Cycle)
	}
	// The witness must actually be a cycle in g.
	for i, n := range ce.Cycle {
		next := ce.Cycle[(i+1)%len(ce.Cycle)]
		if !g.HasEdge(n, next) {
			t.Fatalf("witness edge %s -> %s not in graph", n, next)
		}
	}
	if ce.Error() == "" {
		t.Fatal("empty error message")
	}
}

func TestSelfLoopIsCycle(t *testing.T) {
	g := New()
	g.AddEdge("a", "a")
	if !g.HasCycle() {
		t.Fatal("self-loop should be a cycle")
	}
	cyc := g.FindCycle()
	if len(cyc) != 1 || cyc[0] != "a" {
		t.Fatalf("cycle = %v", cyc)
	}
}

func TestFindCycleNilOnDAG(t *testing.T) {
	g := New()
	g.AddEdge("a", "b")
	g.AddEdge("a", "c")
	g.AddEdge("b", "d")
	g.AddEdge("c", "d")
	if cyc := g.FindCycle(); cyc != nil {
		t.Fatalf("FindCycle on DAG = %v", cyc)
	}
	if g.HasCycle() {
		t.Fatal("DAG reported cyclic")
	}
}

func TestReachable(t *testing.T) {
	g := New()
	g.AddEdge("a", "b")
	g.AddEdge("b", "c")
	g.AddNode("d")
	if !g.Reachable("a", "c") {
		t.Fatal("a should reach c")
	}
	if g.Reachable("c", "a") {
		t.Fatal("c should not reach a")
	}
	if g.Reachable("a", "d") {
		t.Fatal("a should not reach d")
	}
	// Reachability is via non-empty paths: a node does not trivially reach
	// itself without a cycle.
	if g.Reachable("a", "a") {
		t.Fatal("a should not reach itself without a cycle")
	}
	g.AddEdge("c", "a")
	if !g.Reachable("a", "a") {
		t.Fatal("a should reach itself through the cycle")
	}
}

func TestTransitiveClosure(t *testing.T) {
	g := New()
	g.AddEdge("a", "b")
	g.AddEdge("b", "c")
	c := g.TransitiveClosure()
	for _, e := range [][2]string{{"a", "b"}, {"b", "c"}, {"a", "c"}} {
		if !c.HasEdge(e[0], e[1]) {
			t.Fatalf("closure missing %v", e)
		}
	}
	if c.HasEdge("c", "a") {
		t.Fatal("closure has spurious edge")
	}
	if c.NumEdges() != 3 {
		t.Fatalf("closure edges = %d, want 3", c.NumEdges())
	}
}

func TestSCCs(t *testing.T) {
	g := New()
	// Component {a,b,c}, component {d}, component {e,f}.
	g.AddEdge("a", "b")
	g.AddEdge("b", "c")
	g.AddEdge("c", "a")
	g.AddEdge("c", "d")
	g.AddEdge("d", "e")
	g.AddEdge("e", "f")
	g.AddEdge("f", "e")
	comps := g.SCCs()
	want := [][]string{{"a", "b", "c"}, {"d"}, {"e", "f"}}
	if !reflect.DeepEqual(comps, want) {
		t.Fatalf("SCCs = %v, want %v", comps, want)
	}
}

func TestSCCsDeepChain(t *testing.T) {
	// A long chain must not blow the stack (iterative Tarjan).
	g := New()
	const n = 50000
	for i := 0; i < n-1; i++ {
		g.AddEdge(nodeName(i), nodeName(i+1))
	}
	comps := g.SCCs()
	if len(comps) != n {
		t.Fatalf("got %d components, want %d", len(comps), n)
	}
}

func nodeName(i int) string { return "n" + strconv.Itoa(i) }

func TestUnion(t *testing.T) {
	g := New()
	g.AddEdge("a", "b")
	h := New()
	h.AddEdge("b", "c")
	h.AddNode("z")
	u := g.Union(h)
	if !u.HasEdge("a", "b") || !u.HasEdge("b", "c") || !u.HasNode("z") {
		t.Fatal("union incomplete")
	}
	// Union must not mutate its operands.
	if g.HasEdge("b", "c") || h.HasEdge("a", "b") {
		t.Fatal("union mutated operand")
	}
}

func TestEqual(t *testing.T) {
	g := New()
	g.AddEdge("a", "b")
	h := New()
	h.AddEdge("a", "b")
	if !g.Equal(h) {
		t.Fatal("identical graphs not equal")
	}
	h.AddNode("c")
	if g.Equal(h) {
		t.Fatal("graphs with different node sets equal")
	}
	g.AddNode("c")
	g.AddEdge("b", "a")
	if g.Equal(h) {
		t.Fatal("graphs with different edge sets equal")
	}
}

func TestSubgraph(t *testing.T) {
	g := New()
	g.AddEdge("a", "b")
	g.AddEdge("b", "c")
	g.AddEdge("c", "a")
	s := g.Subgraph([]string{"a", "b", "zz"})
	if s.HasNode("c") || s.HasNode("zz") {
		t.Fatal("subgraph node set wrong")
	}
	if !s.HasEdge("a", "b") || s.HasEdge("b", "c") {
		t.Fatal("subgraph edge set wrong")
	}
}

func TestClone(t *testing.T) {
	g := New()
	g.AddEdge("a", "b")
	c := g.Clone()
	c.AddEdge("b", "c")
	if g.HasEdge("b", "c") {
		t.Fatal("clone shares state with original")
	}
	if !c.HasEdge("a", "b") {
		t.Fatal("clone missing original edge")
	}
}

func TestString(t *testing.T) {
	g := New()
	g.AddEdge("b", "a")
	g.AddNode("c")
	want := "a -> \nb -> a\nc -> \n"
	if got := g.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

// randomDAG builds a DAG by only adding edges from lower to higher indices.
func randomDAG(r *rand.Rand, n, m int) *Digraph {
	g := New()
	for i := 0; i < n; i++ {
		g.AddNode(nodeName(i))
	}
	for k := 0; k < m; k++ {
		i := r.Intn(n)
		j := r.Intn(n)
		if i == j {
			continue
		}
		if i > j {
			i, j = j, i
		}
		g.AddEdge(nodeName(i), nodeName(j))
	}
	return g
}

func TestPropertyTopoSortRespectsEdges(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomDAG(r, 2+r.Intn(40), r.Intn(120))
		order, err := g.TopoSort()
		if err != nil {
			return false
		}
		pos := make(map[string]int, len(order))
		for i, n := range order {
			pos[n] = i
		}
		for _, e := range g.Edges() {
			if pos[e[0]] >= pos[e[1]] {
				return false
			}
		}
		return len(order) == g.NumNodes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyClosureMatchesReachable(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(15)
		g := New()
		for i := 0; i < n; i++ {
			g.AddNode(nodeName(i))
		}
		for k := 0; k < r.Intn(40); k++ {
			g.AddEdge(nodeName(r.Intn(n)), nodeName(r.Intn(n)))
		}
		c := g.TransitiveClosure()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if c.HasEdge(nodeName(i), nodeName(j)) != g.Reachable(nodeName(i), nodeName(j)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySCCPartition(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(20)
		g := New()
		for i := 0; i < n; i++ {
			g.AddNode(nodeName(i))
		}
		for k := 0; k < r.Intn(60); k++ {
			g.AddEdge(nodeName(r.Intn(n)), nodeName(r.Intn(n)))
		}
		comps := g.SCCs()
		seen := make(map[string]bool)
		total := 0
		for _, comp := range comps {
			total += len(comp)
			for _, node := range comp {
				if seen[node] {
					return false // node in two components
				}
				seen[node] = true
			}
			// Mutual reachability within a component of size > 1.
			if len(comp) > 1 {
				for _, a := range comp {
					for _, b := range comp {
						if a != b && !g.Reachable(a, b) {
							return false
						}
					}
				}
			}
		}
		return total == g.NumNodes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCycleWitnessValid(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(12)
		g := New()
		for i := 0; i < n; i++ {
			g.AddNode(nodeName(i))
		}
		for k := 0; k < r.Intn(30); k++ {
			g.AddEdge(nodeName(r.Intn(n)), nodeName(r.Intn(n)))
		}
		cyc := g.FindCycle()
		if cyc == nil {
			return !g.HasCycle()
		}
		for i, node := range cyc {
			if !g.HasEdge(node, cyc[(i+1)%len(cyc)]) {
				return false
			}
		}
		return g.HasCycle()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTopoSort(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	g := randomDAG(r, 1000, 5000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.TopoSort(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSCCs(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	g := New()
	for i := 0; i < 1000; i++ {
		g.AddNode(nodeName(i))
	}
	for k := 0; k < 5000; k++ {
		g.AddEdge(nodeName(r.Intn(1000)), nodeName(r.Intn(1000)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.SCCs()
	}
}
