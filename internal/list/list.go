// Package list implements the encyclopedia's second access path (Figure 2):
// a linked list of item references layered over spine pages,
//
//	LinkedList.readSeq() → Page.read ...
//	LinkedList.append(k, ref) → Page.readx / Page.write
//
// The list carries (key, reference) pairs in append order; the encyclopedia
// treats it as a set of items, which is what justifies the commutativity of
// appends with distinct keys (the sequential reader returns items, not
// positions).
package list

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"repro/internal/catalog"
	"repro/internal/commut"
	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/txn"
)

// Type is the object type name of linked lists.
const Type = "linkedlist"

// Errors.
var (
	ErrBadKey      = errors.New("list: key or ref contains a reserved character")
	ErrUnknownList = errors.New("list: unknown list")
	ErrCorrupt     = errors.New("list: corrupt spine page")
)

const reserved = "|=,;:"

func valid(s string) bool { return s != "" && !strings.ContainsAny(s, reserved) }

// Spec is the commutativity specification of the list type: appends and
// removes of distinct keys commute; the sequential reader conflicts with
// every mutator; reads commute.
func Spec() commut.Spec {
	base := commut.NewMatrix().
		SetCommutes("readSeq", "readSeq").
		SetConflicts("readSeq", "append").
		SetConflicts("readSeq", "remove")
	spec := commut.NewParamSpec(base)
	sameKey := func(a, b commut.Invocation) bool { return a.Param(0) != b.Param(0) }
	for _, m1 := range []string{"append", "remove"} {
		for _, m2 := range []string{"append", "remove"} {
			spec.Rule(m1, m2, sameKey)
		}
	}
	return spec
}

// Module owns the list object type of one DB.
type Module struct {
	db  *core.DB
	cat *catalog.Catalog

	mu    sync.Mutex
	lists map[string]*List
}

// SetCatalog makes the module record list metadata in the system catalog.
func (m *Module) SetCatalog(cat *catalog.Catalog) { m.cat = cat }

// AttachFromCatalog re-binds to a list whose metadata lives in the catalog.
func (m *Module) AttachFromCatalog(cat *catalog.Catalog, name string) (*List, error) {
	e, err := cat.Get(catalog.KindList, name)
	if err != nil {
		return nil, err
	}
	capacity, head, err := catalog.ListFields(e)
	if err != nil {
		return nil, err
	}
	return m.Attach(name, capacity, head)
}

// List is one linked list instance.
type List struct {
	name     string
	oid      txn.OID
	capacity int // keys per spine page

	// mu protects head/tail. It is never held across engine calls — a Go
	// mutex held while waiting for a database lock could deadlock with a
	// 2PL transaction holding that lock until commit.
	mu   sync.Mutex
	head storage.PageID
	tail storage.PageID
}

// OID returns the list's object id.
func (l *List) OID() txn.OID { return l.oid }

// Install registers the list object type.
func Install(db *core.DB) (*Module, error) {
	m := &Module{db: db, lists: make(map[string]*List)}
	typ := &core.ObjectType{
		Name: Type,
		Spec: Spec(),
		ReadOnly: map[string]bool{
			"readSeq": true,
		},
		Methods: map[string]core.MethodFunc{
			"append":  m.appendMethod,
			"remove":  m.removeMethod,
			"readSeq": m.readSeqMethod,
		},
		Compensate: map[string]core.CompensateFunc{
			// append(k, ref): undo by removing the key.
			"append": func(params []string, result string) (string, []string, bool) {
				return "remove", []string{params[0]}, true
			},
			// remove(k) returns the removed ref ("" when absent).
			"remove": func(params []string, result string) (string, []string, bool) {
				if result == "" {
					return "", nil, false
				}
				return "append", []string{params[0], result}, true
			},
		},
	}
	if err := db.RegisterType(typ); err != nil {
		return nil, err
	}
	return m, nil
}

// NewList creates a list with the given spine-page capacity.
func (m *Module) NewList(name string, capacity int) (*List, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("list: capacity must be >= 1, got %d", capacity)
	}
	if !valid(name) {
		return nil, ErrBadKey
	}
	m.mu.Lock()
	if _, dup := m.lists[name]; dup {
		m.mu.Unlock()
		return nil, fmt.Errorf("list: list %q already exists", name)
	}
	m.mu.Unlock()

	headOID := m.db.AllocPage()
	headPID, err := core.PageID(headOID)
	if err != nil {
		return nil, err
	}
	tx := m.db.Begin()
	if _, err := tx.Exec(headOID, "write", encodeSpine(spine{})); err != nil {
		_ = tx.Abort()
		return nil, err
	}
	if err := tx.Commit(); err != nil {
		return nil, err
	}

	l := &List{name: name, oid: txn.OID{Type: Type, Name: name}, capacity: capacity, head: headPID, tail: headPID}
	if m.cat != nil {
		if err := m.cat.Put(catalog.ListEntry(name, capacity, headPID)); err != nil {
			return nil, err
		}
	}
	m.mu.Lock()
	m.lists[name] = l
	m.mu.Unlock()
	return l, nil
}

// Attach re-binds to an existing list after a restart: head is the spine
// page NewList allocated (persisted by the application's catalog). The
// tail hint starts at the head and catches up lazily.
func (m *Module) Attach(name string, capacity int, head storage.PageID) (*List, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("list: capacity must be >= 1, got %d", capacity)
	}
	if !valid(name) {
		return nil, ErrBadKey
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.lists[name]; dup {
		return nil, fmt.Errorf("list: list %q already exists", name)
	}
	l := &List{name: name, oid: txn.OID{Type: Type, Name: name}, capacity: capacity, head: head, tail: head}
	m.lists[name] = l
	return l, nil
}

// Get returns a created list by name.
func (m *Module) Get(name string) (*List, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	l, ok := m.lists[name]
	return l, ok
}

func (m *Module) list(self txn.OID) (*List, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	l, ok := m.lists[self.Name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownList, self.Name)
	}
	return l, nil
}

// spine is one spine page: entries plus the next page in the chain.
type spine struct {
	next storage.PageID
	keys []string
	refs []string
}

func encodeSpine(s spine) string {
	var b strings.Builder
	fmt.Fprintf(&b, "next=%d|", s.next)
	for i, k := range s.keys {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(k)
		b.WriteByte(':')
		b.WriteString(s.refs[i])
	}
	return b.String()
}

func decodeSpine(data string) (spine, error) {
	head, body, found := strings.Cut(data, "|")
	if !found || !strings.HasPrefix(head, "next=") {
		return spine{}, fmt.Errorf("%w: %q", ErrCorrupt, data)
	}
	var next uint64
	if _, err := fmt.Sscanf(head, "next=%d", &next); err != nil {
		return spine{}, fmt.Errorf("%w: next in %q", ErrCorrupt, data)
	}
	s := spine{next: storage.PageID(next)}
	if body != "" {
		for _, pair := range strings.Split(body, ";") {
			k, ref, ok := strings.Cut(pair, ":")
			if !ok {
				return spine{}, fmt.Errorf("%w: pair %q", ErrCorrupt, pair)
			}
			s.keys = append(s.keys, k)
			s.refs = append(s.refs, ref)
		}
	}
	return s, nil
}

// appendMethod adds (key, ref) at the tail of the chain and returns "ok".
// Duplicate keys are the caller's concern (the encyclopedia checks its
// index before appending). params: key, ref.
func (m *Module) appendMethod(c *core.Ctx, self txn.OID, params []string) (string, error) {
	if len(params) != 2 || !valid(params[0]) || !valid(params[1]) {
		return "", ErrBadKey
	}
	key, ref := params[0], params[1]
	l, err := m.list(self)
	if err != nil {
		return "", err
	}
	l.mu.Lock()
	pid := l.tail
	l.mu.Unlock()

	for hops := 0; hops < 1<<20; hops++ {
		data, err := c.Call(core.PageOID(pid), "readx")
		if err != nil {
			return "", err
		}
		s, err := decodeSpine(data)
		if err != nil {
			return "", err
		}
		if s.next != storage.InvalidPage {
			// Our tail hint was stale (a concurrent append chained on);
			// follow the chain like a B-link.
			pid = s.next
			continue
		}
		if len(s.keys) < l.capacity {
			s.keys = append(s.keys, key)
			s.refs = append(s.refs, ref)
			if _, err := c.Call(core.PageOID(pid), "write", encodeSpine(s)); err != nil {
				return "", err
			}
			l.advanceTail(pid)
			return "ok", nil
		}
		// Tail page full: chain a fresh page holding the new entry.
		newOID := c.DB().AllocPage()
		newPID, err := core.PageID(newOID)
		if err != nil {
			return "", err
		}
		if _, err := c.Call(newOID, "write", encodeSpine(spine{keys: []string{key}, refs: []string{ref}})); err != nil {
			return "", err
		}
		s.next = newPID
		if _, err := c.Call(core.PageOID(pid), "write", encodeSpine(s)); err != nil {
			return "", err
		}
		l.advanceTail(newPID)
		return "ok", nil
	}
	return "", fmt.Errorf("%w: unbounded chain", ErrCorrupt)
}

// advanceTail moves the tail hint forward. The hint may lag behind the real
// tail (appendMethod follows next pointers), but must never point at a
// reclaimed page — pages are never reclaimed here.
func (l *List) advanceTail(pid storage.PageID) {
	l.mu.Lock()
	l.tail = pid
	l.mu.Unlock()
}

// removeMethod deletes a key from the chain, returning its ref ("" when
// absent). Pages are not reclaimed (documented simplification).
func (m *Module) removeMethod(c *core.Ctx, self txn.OID, params []string) (string, error) {
	if len(params) != 1 || !valid(params[0]) {
		return "", ErrBadKey
	}
	key := params[0]
	l, err := m.list(self)
	if err != nil {
		return "", err
	}
	// Only read the head under the mutex; holding it across page-lock
	// acquisition could deadlock invisibly with an appender blocked in
	// advanceTail.
	l.mu.Lock()
	pid := l.head
	l.mu.Unlock()

	for hops := 0; hops < 1<<20 && pid != storage.InvalidPage; hops++ {
		data, err := c.Call(core.PageOID(pid), "readx")
		if err != nil {
			return "", err
		}
		s, err := decodeSpine(data)
		if err != nil {
			return "", err
		}
		for i, k := range s.keys {
			if k != key {
				continue
			}
			ref := s.refs[i]
			s.keys = append(s.keys[:i], s.keys[i+1:]...)
			s.refs = append(s.refs[:i], s.refs[i+1:]...)
			if _, err := c.Call(core.PageOID(pid), "write", encodeSpine(s)); err != nil {
				return "", err
			}
			return ref, nil
		}
		pid = s.next
	}
	return "", nil
}

// readSeqMethod returns all entries in chain order: "k1:r1;k2:r2;...".
func (m *Module) readSeqMethod(c *core.Ctx, self txn.OID, params []string) (string, error) {
	l, err := m.list(self)
	if err != nil {
		return "", err
	}
	l.mu.Lock()
	pid := l.head
	l.mu.Unlock()

	var out []string
	for hops := 0; hops < 1<<20 && pid != storage.InvalidPage; hops++ {
		data, err := c.Call(core.PageOID(pid), "read")
		if err != nil {
			return "", err
		}
		s, err := decodeSpine(data)
		if err != nil {
			return "", err
		}
		for i, k := range s.keys {
			out = append(out, k+":"+s.refs[i])
		}
		pid = s.next
	}
	return strings.Join(out, ";"), nil
}
