package list

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/txn"
)

func newDB(t testing.TB, p core.ProtocolKind) (*core.DB, *Module) {
	t.Helper()
	db := core.Open(core.Options{Protocol: p, LockTimeout: 5 * time.Second})
	m, err := Install(db)
	if err != nil {
		t.Fatal(err)
	}
	return db, m
}

func runOne(t testing.TB, db *core.DB, obj txn.OID, method string, params ...string) string {
	t.Helper()
	for attempt := 0; ; attempt++ {
		tx := db.Begin()
		res, err := tx.Exec(obj, method, params...)
		if err == nil {
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			return res
		}
		_ = tx.Abort()
		if attempt == 19 {
			t.Fatalf("%s.%s%v failed: %v", obj.Name, method, params, err)
		}
	}
}

func TestNewListValidation(t *testing.T) {
	_, m := newDB(t, core.ProtocolOpenNested)
	if _, err := m.NewList("x", 0); err == nil {
		t.Fatal("capacity 0 must fail")
	}
	if _, err := m.NewList("a|b", 4); !errors.Is(err, ErrBadKey) {
		t.Fatal("reserved name must fail")
	}
	if _, err := m.NewList("L", 4); err != nil {
		t.Fatal(err)
	}
	if _, err := m.NewList("L", 4); err == nil {
		t.Fatal("duplicate must fail")
	}
	if _, ok := m.Get("L"); !ok {
		t.Fatal("Get failed")
	}
}

func TestAppendReadSeq(t *testing.T) {
	db, m := newDB(t, core.ProtocolOpenNested)
	l, _ := m.NewList("L", 3)
	for i := 0; i < 10; i++ {
		if res := runOne(t, db, l.OID(), "append", fmt.Sprintf("k%d", i), fmt.Sprintf("r%d", i)); res != "ok" {
			t.Fatalf("append = %q", res)
		}
	}
	seq := runOne(t, db, l.OID(), "readSeq")
	parts := strings.Split(seq, ";")
	if len(parts) != 10 {
		t.Fatalf("readSeq has %d entries: %q", len(parts), seq)
	}
	// Append order preserved.
	for i, p := range parts {
		if p != fmt.Sprintf("k%d:r%d", i, i) {
			t.Fatalf("entry %d = %q", i, p)
		}
	}
}

func TestRemove(t *testing.T) {
	db, m := newDB(t, core.ProtocolOpenNested)
	l, _ := m.NewList("L", 2)
	for i := 0; i < 6; i++ {
		runOne(t, db, l.OID(), "append", fmt.Sprintf("k%d", i), "r")
	}
	if got := runOne(t, db, l.OID(), "remove", "k3"); got != "r" {
		t.Fatalf("remove = %q", got)
	}
	if got := runOne(t, db, l.OID(), "remove", "k3"); got != "" {
		t.Fatalf("double remove = %q", got)
	}
	seq := runOne(t, db, l.OID(), "readSeq")
	if strings.Contains(seq, "k3") {
		t.Fatalf("k3 survived: %q", seq)
	}
	if got := len(strings.Split(seq, ";")); got != 5 {
		t.Fatalf("entries = %d", got)
	}
}

func TestAppendCompensation(t *testing.T) {
	db, m := newDB(t, core.ProtocolOpenNested)
	l, _ := m.NewList("L", 4)
	runOne(t, db, l.OID(), "append", "keep", "r")

	tx := db.Begin()
	if _, err := tx.Exec(l.OID(), "append", "doomed", "r"); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(l.OID(), "remove", "keep"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	seq := runOne(t, db, l.OID(), "readSeq")
	if strings.Contains(seq, "doomed") {
		t.Fatalf("aborted append visible: %q", seq)
	}
	if !strings.Contains(seq, "keep") {
		t.Fatalf("aborted remove not compensated: %q", seq)
	}
	_, rep, err := db.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.SystemOOSerializable {
		t.Fatalf("trace must validate: %+v", rep)
	}
}

func TestConcurrentAppendsDistinctKeys(t *testing.T) {
	for _, p := range []core.ProtocolKind{core.ProtocolOpenNested, core.Protocol2PLPage} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			db, m := newDB(t, p)
			l, _ := m.NewList("L", 3)
			var wg sync.WaitGroup
			for g := 0; g < 6; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < 15; i++ {
						runOne(t, db, l.OID(), "append", fmt.Sprintf("g%d-%02d", g, i), "r")
					}
				}(g)
			}
			wg.Wait()
			seq := runOne(t, db, l.OID(), "readSeq")
			entries := strings.Split(seq, ";")
			if len(entries) != 90 {
				t.Fatalf("entries = %d, want 90", len(entries))
			}
			keys := make([]string, len(entries))
			for i, e := range entries {
				keys[i], _, _ = strings.Cut(e, ":")
			}
			sort.Strings(keys)
			for i := 1; i < len(keys); i++ {
				if keys[i] == keys[i-1] {
					t.Fatalf("duplicate key %q", keys[i])
				}
			}
			_, rep, err := db.Validate()
			if err != nil {
				t.Fatal(err)
			}
			if !rep.SystemOOSerializable {
				t.Fatalf("trace must validate: %+v", rep)
			}
		})
	}
}

func TestBadParams(t *testing.T) {
	db, m := newDB(t, core.ProtocolOpenNested)
	l, _ := m.NewList("L", 4)
	tx := db.Begin()
	defer tx.Abort()
	if _, err := tx.Exec(l.OID(), "append", "a;b", "r"); !errors.Is(err, ErrBadKey) {
		t.Fatalf("err = %v", err)
	}
	if _, err := tx.Exec(l.OID(), "append", "k"); !errors.Is(err, ErrBadKey) {
		t.Fatalf("missing ref: %v", err)
	}
	if _, err := tx.Exec(l.OID(), "remove", ""); !errors.Is(err, ErrBadKey) {
		t.Fatalf("empty key: %v", err)
	}
}

func TestSpineEncoding(t *testing.T) {
	s := spine{next: 9, keys: []string{"a", "b"}, refs: []string{"1", "2"}}
	got, err := decodeSpine(encodeSpine(s))
	if err != nil {
		t.Fatal(err)
	}
	if got.next != 9 || len(got.keys) != 2 || got.refs[1] != "2" {
		t.Fatalf("round trip: %+v", got)
	}
	for _, bad := range []string{"", "nope", "next=x|", "next=0|brokenpair"} {
		if _, err := decodeSpine(bad); err == nil {
			t.Errorf("decodeSpine(%q) should fail", bad)
		}
	}
}

func BenchmarkAppend(b *testing.B) {
	db := core.Open(core.Options{Protocol: core.ProtocolOpenNested, DisableTrace: true})
	m, _ := Install(db)
	l, _ := m.NewList("L", 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := db.Begin()
		if _, err := tx.Exec(l.OID(), "append", fmt.Sprintf("k%09d", i), "r"); err != nil {
			b.Fatal(err)
		}
		_ = tx.Commit()
	}
}
