package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket histogram with atomic per-bucket counters.
// Bucket i counts observations v with v <= bounds[i] (and, for i > 0,
// v > bounds[i-1]); one implicit overflow bucket counts everything above
// the last bound. Observe is lock-free: one atomic add into the bucket
// plus sum and count, so it is safe on hot paths and under -race.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1; last is overflow
	sum    atomic.Int64
	count  atomic.Int64
}

// NewHistogram builds a histogram over the given strictly increasing
// upper bounds. The bounds slice is copied.
func NewHistogram(bounds []int64) *Histogram {
	b := append([]int64{}, bounds...)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			panic("obs: histogram bounds must be strictly increasing")
		}
	}
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// LatencyBounds returns exponential duration buckets in nanoseconds, from
// 1µs doubling to ~17s — wide enough for lock waits, fsyncs, and commits.
func LatencyBounds() []int64 {
	out := make([]int64, 25)
	v := int64(1000) // 1µs
	for i := range out {
		out[i] = v
		v *= 2
	}
	return out
}

// SizeBounds returns power-of-two count buckets from 1 to 65536 — suited
// to batch sizes and queue depths.
func SizeBounds() []int64 {
	out := make([]int64, 17)
	v := int64(1)
	for i := range out {
		out[i] = v
		v *= 2
	}
	return out
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Bucket is one non-empty histogram bucket in a snapshot. LE is the
// bucket's inclusive upper bound; the overflow bucket reports
// math.MaxInt64.
type Bucket struct {
	LE int64 `json:"le"`
	N  int64 `json:"n"`
}

// HistogramValue is the JSON snapshot of a histogram.
type HistogramValue struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Value implements Var. Empty buckets are elided; concurrent Observe calls
// make the snapshot approximate (sum/count/buckets may differ by in-flight
// observations), never torn per field.
func (h *Histogram) Value() any {
	if h == nil {
		return HistogramValue{}
	}
	out := HistogramValue{Count: h.count.Load(), Sum: h.sum.Load()}
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		le := int64(math.MaxInt64)
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		out.Buckets = append(out.Buckets, Bucket{LE: le, N: n})
	}
	return out
}

// Quantile returns an upper-bound estimate of the q-quantile (q in [0,1]):
// the bound of the bucket where the q·count-th observation falls. Returns
// 0 on an empty histogram and the last bound for the overflow bucket.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 || len(h.bounds) == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	seen := int64(0)
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.bounds[len(h.bounds)-1]
		}
	}
	return h.bounds[len(h.bounds)-1]
}
