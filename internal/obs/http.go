package obs

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strconv"
	"time"
)

// /events?n= clamp: a negative, zero, or absurd n must not turn the debug
// endpoint into an allocation amplifier.
const (
	defaultEventCount = 200
	maxEventCount     = 100_000
)

// Timeouts for the debug HTTP server: slow-header clients must not pin
// goroutines, and shutdown drains in-flight scrapes instead of cutting them.
const (
	readHeaderTimeout = 5 * time.Second
	shutdownTimeout   = 5 * time.Second
)

// Handle mounts an additional handler (e.g. the span tracer's /trace
// endpoints) under the given path prefix on subsequently built Handlers.
func (r *Registry) Handle(prefix string, h http.Handler) {
	if r == nil || h == nil {
		return
	}
	r.mu.Lock()
	if r.extra == nil {
		r.extra = make(map[string]http.Handler)
	}
	r.extra[prefix] = h
	r.mu.Unlock()
}

// Handler returns the registry's HTTP handler:
//
//	/metrics       — expvar-compatible JSON snapshot of every registered var
//	/debug/vars    — alias for expvar tooling
//	/metrics/prom  — Prometheus text exposition of the same vars (unless an
//	                 extra mount claims the path, as oodbd's cluster-wide
//	                 exposition does)
//	/events?n=K    — the flight recorder's last K events as text (default 200)
//
// plus any endpoints mounted via Handle. Extra mounts are wired (and
// listed on the index line) in sorted prefix order, so consecutive scrapes
// of / diff stably.
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	metrics := func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.WriteJSON(w)
	}
	mux.HandleFunc("/metrics", metrics)
	mux.HandleFunc("/debug/vars", metrics)
	mux.HandleFunc("/events", func(w http.ResponseWriter, req *http.Request) {
		n := defaultEventCount
		if s := req.URL.Query().Get("n"); s != "" {
			if v, err := strconv.Atoi(s); err == nil {
				n = v
			}
		}
		if n < 1 {
			n = 1
		}
		if n > maxEventCount {
			n = maxEventCount
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		r.Recorder().Dump(w, n)
	})
	extraHelp := ""
	promClaimed := false
	if r != nil {
		r.mu.RLock()
		prefixes := make([]string, 0, len(r.extra))
		for prefix := range r.extra {
			prefixes = append(prefixes, prefix)
		}
		sort.Strings(prefixes)
		for _, prefix := range prefixes {
			h := r.extra[prefix]
			mux.Handle(prefix, h)
			mux.Handle(prefix+"/", h)
			extraHelp += fmt.Sprintf(", %s", prefix)
			if prefix == "/metrics/prom" {
				promClaimed = true
			}
		}
		r.mu.RUnlock()
	}
	if !promClaimed {
		mux.Handle("/metrics/prom", PromHandler([]PromSource{{Reg: r}}))
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprintf(w, "oodb observability: /metrics (JSON), /debug/vars (alias), /metrics/prom (Prometheus), /events?n=K (flight recorder)%s\n", extraHelp)
	})
	return mux
}

// Serve starts an HTTP server for the registry on addr (host:port; port 0
// picks a free port). It returns the bound address and a shutdown func that
// drains in-flight requests (bounded by shutdownTimeout) before closing.
func (r *Registry) Serve(addr string) (bound string, shutdown func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	bound, shutdown = r.ServeListener(ln)
	return bound, shutdown, nil
}

// ServeListener serves the registry's handler on an existing listener (the
// injectable core of Serve). The accept loop's failure is NOT swallowed: a
// metrics endpoint that dies mid-run would otherwise just stop answering
// scrapes with nothing on the timeline, so any error other than the
// shutdown-path ErrServerClosed increments the obs.http_errors counter and
// lands as an EvFailure on the flight recorder — observable through the
// very snapshot surfaces (Snapshot, WriteJSON, event dumps) that outlive
// the dead listener.
func (r *Registry) ServeListener(ln net.Listener) (bound string, shutdown func() error) {
	srv := &http.Server{
		Handler:           r.Handler(),
		ReadHeaderTimeout: readHeaderTimeout,
	}
	httpErrs := r.Counter("obs.http_errors")
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			httpErrs.Inc()
			r.Recorder().Record(Event{Kind: EvFailure, Actor: "obs.http",
				Object: ln.Addr().String(), Note: "accept loop: " + err.Error()})
		}
	}()
	return ln.Addr().String(), func() error {
		ctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			// A handler still running at the deadline: fall back to a hard
			// close so the caller always gets its port back.
			_ = srv.Close()
			return err
		}
		return nil
	}
}
