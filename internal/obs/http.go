package obs

import (
	"fmt"
	"net"
	"net/http"
	"strconv"
)

// Handler returns the registry's HTTP handler:
//
//	/metrics     — expvar-compatible JSON snapshot of every registered var
//	/debug/vars  — alias for expvar tooling
//	/events?n=K  — the flight recorder's last K events as text (default 200)
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	metrics := func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.WriteJSON(w)
	}
	mux.HandleFunc("/metrics", metrics)
	mux.HandleFunc("/debug/vars", metrics)
	mux.HandleFunc("/events", func(w http.ResponseWriter, req *http.Request) {
		n := 200
		if s := req.URL.Query().Get("n"); s != "" {
			if v, err := strconv.Atoi(s); err == nil {
				n = v
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		r.Recorder().Dump(w, n)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprintln(w, "oodb observability: /metrics (JSON), /debug/vars (alias), /events?n=K (flight recorder)")
	})
	return mux
}

// Serve starts an HTTP server for the registry on addr (host:port; port 0
// picks a free port). It returns the bound address and a shutdown func.
func (r *Registry) Serve(addr string) (bound string, shutdown func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: r.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}
