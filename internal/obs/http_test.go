package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestEventsCountClamp: n is clamped to [1, maxEventCount] so the debug
// endpoint cannot be turned into an allocation amplifier.
func TestEventsCountClamp(t *testing.T) {
	r := New()
	for i := 0; i < 5; i++ {
		r.Recorder().Record(Event{Kind: EvTxnAbort, Actor: fmt.Sprintf("T%d", i)})
	}
	h := r.Handler()
	for _, q := range []string{"n=-5", "n=0", "n=99999999999", "n=bogus", ""} {
		req := httptest.NewRequest("GET", "/events?"+q, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("/events?%s -> %d", q, rec.Code)
		}
		if !strings.Contains(rec.Body.String(), EvTxnAbort) {
			t.Fatalf("/events?%s dropped events:\n%s", q, rec.Body.String())
		}
	}
}

// TestHandleMountsExtra: a handler mounted via Handle is reachable at its
// prefix, under it, and advertised on the index line.
func TestHandleMountsExtra(t *testing.T) {
	r := New()
	extra := http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		fmt.Fprintf(w, "extra:%s", req.URL.Path)
	})
	r.Handle("/trace", extra)
	h := r.Handler()

	for _, path := range []string{"/trace", "/trace/slowest"} {
		req := httptest.NewRequest("GET", path, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK || !strings.HasPrefix(rec.Body.String(), "extra:") {
			t.Fatalf("GET %s -> %d %q", path, rec.Code, rec.Body.String())
		}
	}
	req := httptest.NewRequest("GET", "/", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if !strings.Contains(rec.Body.String(), "/trace") {
		t.Fatalf("index does not advertise mounted prefix:\n%s", rec.Body.String())
	}
	// Unknown paths still 404 rather than falling through to the index.
	req = httptest.NewRequest("GET", "/nosuch", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("GET /nosuch -> %d, want 404", rec.Code)
	}
}

// TestHandleNilSafe: nil registries and nil handlers must be ignored.
func TestHandleNilSafe(t *testing.T) {
	var nilReg *Registry
	nilReg.Handle("/x", http.NotFoundHandler()) // must not panic
	r := New()
	r.Handle("/y", nil)
	req := httptest.NewRequest("GET", "/y", nil)
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("nil handler was mounted: %d", rec.Code)
	}
}

// TestServeShutdown: the shutdown func returned by Serve completes and
// releases the port for immediate rebinding.
func TestServeShutdown(t *testing.T) {
	r := New()
	addr, shutdown, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Fatal("server still serving after shutdown")
	}
	// The port must be immediately rebindable.
	addr2, shutdown2, err := r.Serve(addr)
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	_ = addr2
	_ = shutdown2()
}

// TestServeListenerSurfacesAcceptErrors: a dead accept loop must not die
// silently — a pre-closed listener makes Serve fail immediately, and the
// failure has to land on the obs.http_errors counter and the flight
// recorder as an EvFailure.
func TestServeListenerSurfacesAcceptErrors(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln.Close() // accept loop fails on first Accept

	r := New()
	bound, shutdown := r.ServeListener(ln)
	defer func() { _ = shutdown() }()
	if bound == "" {
		t.Fatal("ServeListener returned empty bound address")
	}

	deadline := time.Now().Add(5 * time.Second)
	for r.Counter("obs.http_errors").Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("obs.http_errors never incremented for a dead accept loop")
		}
		time.Sleep(time.Millisecond)
	}
	found := false
	for _, ev := range r.Recorder().Tail(0) {
		if ev.Kind == EvFailure && ev.Actor == "obs.http" {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no EvFailure event recorded for the dead accept loop")
	}
}

// TestServeShutdownNoFailureEvent: a clean shutdown's ErrServerClosed must
// NOT count as an accept-loop failure.
func TestServeShutdownNoFailureEvent(t *testing.T) {
	r := New()
	_, shutdown, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := shutdown(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let the serve goroutine observe the close
	if n := r.Counter("obs.http_errors").Load(); n != 0 {
		t.Fatalf("clean shutdown counted as %d http error(s)", n)
	}
}
