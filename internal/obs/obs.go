// Package obs is the engine-wide observability layer: a lock-free metrics
// registry (atomic counters, gauges, and fixed-bucket histograms) plus an
// always-on bounded flight recorder (recorder.go) — a ring buffer of recent
// structured events every runtime subsystem publishes into (lock waits,
// group-commit batches, buffer-pool evictions, transaction outcomes,
// recovery phases). The paper's headline claim — "a lower rate of
// conflicting accesses" — is an observability claim, so the measurement
// layer is first-class: counters are trustworthy under -race, cheap enough
// to stay on in hot paths, and a crash or a failing torture round arrives
// with a timeline attached.
//
// Design rules:
//
//   - The hot path never takes a lock: Counter/Gauge are single atomics,
//     Histogram.Observe is one atomic add per bucket + sum + count, and
//     FlightRecorder.Record is an atomic sequence claim plus an atomic
//     pointer store. The registry's mutex guards only name registration
//     and snapshotting.
//   - Every method is nil-receiver safe, so instrumented code paths need
//     no "metrics enabled?" branches: a disabled subsystem simply holds
//     nil handles.
//   - Snapshots render as expvar-compatible JSON (one flat object, one
//     member per registered var), served by Handler/Serve (http.go).
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
)

// Var is a registered metric: Value returns a JSON-marshalable snapshot.
type Var interface {
	Value() any
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current count (0 on a nil counter).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Value implements Var.
func (c *Counter) Value() any { return c.Load() }

// Gauge is an atomic instantaneous value (e.g. current waiters).
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the gauge by delta (negative to decrement).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Load returns the current value (0 on a nil gauge).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Value implements Var.
func (g *Gauge) Value() any { return g.Load() }

// funcVar publishes the result of a function at snapshot time — used to
// expose pre-existing subsystem counters (cc.Stats, core.Stats) without
// duplicating them.
type funcVar func() any

func (f funcVar) Value() any { return f() }

// Registry is a named collection of metrics plus the engine's flight
// recorder. Registration is get-or-create by name; the returned handles
// are the lock-free hot-path objects, the registry itself is only touched
// at registration and snapshot time.
type Registry struct {
	mu    sync.RWMutex
	vars  map[string]Var
	rec   *FlightRecorder
	extra map[string]http.Handler // additional endpoints, mounted by Handler()
}

// DefaultRecorderCap is the flight recorder's default capacity in events.
const DefaultRecorderCap = 4096

// New returns a registry with a DefaultRecorderCap-sized flight recorder.
func New() *Registry { return NewWithRecorder(DefaultRecorderCap) }

// NewWithRecorder returns a registry whose flight recorder holds up to
// capacity events (rounded up to a power of two, minimum 64).
func NewWithRecorder(capacity int) *Registry {
	return &Registry{
		vars: make(map[string]Var),
		rec:  NewFlightRecorder(capacity),
	}
}

// Recorder returns the registry's flight recorder (nil on a nil registry,
// which every recorder method tolerates).
func (r *Registry) Recorder() *FlightRecorder {
	if r == nil {
		return nil
	}
	return r.rec
}

// Counter returns the named counter, creating it on first use. A name
// already registered as a different kind panics: metric names are a
// program-level schema, not runtime input.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	v := r.getOrCreate(name, func() Var { return &Counter{} })
	c, ok := v.(*Counter)
	if !ok {
		panic(fmt.Sprintf("obs: %q already registered as %T, not Counter", name, v))
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	v := r.getOrCreate(name, func() Var { return &Gauge{} })
	g, ok := v.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("obs: %q already registered as %T, not Gauge", name, v))
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use (see NewHistogram for the bounds contract).
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	v := r.getOrCreate(name, func() Var { return NewHistogram(bounds) })
	h, ok := v.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("obs: %q already registered as %T, not Histogram", name, v))
	}
	return h
}

// PublishFunc registers (or replaces) a function evaluated at snapshot
// time. Replacement is deliberate: sequential engines in one process (a
// protocol sweep) re-publish their snapshot functions under the same
// names, and the endpoint follows the live engine.
func (r *Registry) PublishFunc(name string, fn func() any) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.vars[name] = funcVar(fn)
	r.mu.Unlock()
}

func (r *Registry) getOrCreate(name string, mk func() Var) Var {
	r.mu.RLock()
	v, ok := r.vars[name]
	r.mu.RUnlock()
	if ok {
		return v
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := r.vars[name]; ok {
		return v
	}
	v = mk()
	r.vars[name] = v
	return v
}

// Names returns the registered metric names, sorted.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	names := make([]string, 0, len(r.vars))
	for n := range r.vars {
		names = append(names, n)
	}
	r.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Snapshot returns a point-in-time copy of every registered var's value.
func (r *Registry) Snapshot() map[string]any {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	vars := make(map[string]Var, len(r.vars))
	for n, v := range r.vars {
		vars[n] = v
	}
	r.mu.RUnlock()
	// Values are read outside the registry lock: funcVars may grab their
	// subsystem's own locks (e.g. a pool mutex) and must not nest inside
	// ours.
	out := make(map[string]any, len(vars))
	for n, v := range vars {
		out[n] = v.Value()
	}
	return out
}

// WriteJSON renders the snapshot as one expvar-shaped JSON object with
// members in sorted name order.
func (r *Registry) WriteJSON(w io.Writer) error {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	if _, err := io.WriteString(w, "{\n"); err != nil {
		return err
	}
	for i, n := range names {
		val, err := json.Marshal(snap[n])
		if err != nil {
			// A snapshot value that cannot marshal (NaN from an unguarded
			// division, say) must not take the whole endpoint down.
			val = []byte(fmt.Sprintf("%q", fmt.Sprintf("unmarshalable: %v", err)))
		}
		sep := ",\n"
		if i == len(names)-1 {
			sep = "\n"
		}
		if _, err := fmt.Fprintf(w, "%q: %s%s", n, val, sep); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "}\n")
	return err
}
