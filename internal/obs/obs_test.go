package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-3)
	if got := g.Load(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	if c2 := r.Counter("c"); c2 != c {
		t.Fatal("Counter must be get-or-create, got a fresh instance")
	}
}

func TestNilReceiversAreSafe(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(1)
	r.Histogram("z", SizeBounds()).Observe(3)
	r.PublishFunc("f", func() any { return 1 })
	r.Recorder().Record(Event{Kind: "k"})
	if got := r.Recorder().Tail(5); got != nil {
		t.Fatalf("nil recorder Tail = %v, want nil", got)
	}
	if r.Snapshot() != nil || r.Names() != nil {
		t.Fatal("nil registry snapshot must be nil")
	}
	var h *Histogram
	h.Observe(1)
	if h.Quantile(0.5) != 0 || h.Count() != 0 {
		t.Fatal("nil histogram must report zeros")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := New()
	r.Counter("dual")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a name under two kinds must panic")
		}
	}()
	r.Gauge("dual")
}

// TestHistogramBucketBoundaries pins the inclusive-upper-bound contract:
// a value equal to a bound lands IN that bucket, one above lands in the
// next, and values beyond the last bound land in the overflow bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]int64{10, 100, 1000})
	for _, v := range []int64{0, 1, 10} { // all <= 10
		h.Observe(v)
	}
	h.Observe(11)   // (10, 100]
	h.Observe(100)  // (10, 100]
	h.Observe(101)  // (100, 1000]
	h.Observe(1000) // (100, 1000]
	h.Observe(1001) // overflow
	h.Observe(1 << 40)

	val := h.Value().(HistogramValue)
	if val.Count != 9 {
		t.Fatalf("count = %d, want 9", val.Count)
	}
	want := map[int64]int64{10: 3, 100: 2, 1000: 2, math.MaxInt64: 2}
	if len(val.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want bounds %v", val.Buckets, want)
	}
	for _, b := range val.Buckets {
		if want[b.LE] != b.N {
			t.Fatalf("bucket le=%d has n=%d, want %d", b.LE, b.N, want[b.LE])
		}
	}
	sum := int64(0 + 1 + 10 + 11 + 100 + 101 + 1000 + 1001 + 1<<40)
	if val.Sum != sum {
		t.Fatalf("sum = %d, want %d", val.Sum, sum)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]int64{1, 2, 4, 8})
	for i := 0; i < 90; i++ {
		h.Observe(1)
	}
	for i := 0; i < 10; i++ {
		h.Observe(8)
	}
	if q := h.Quantile(0.5); q != 1 {
		t.Fatalf("p50 = %d, want 1", q)
	}
	if q := h.Quantile(0.99); q != 8 {
		t.Fatalf("p99 = %d, want 8", q)
	}
	var empty = NewHistogram([]int64{1})
	if q := empty.Quantile(0.5); q != 0 {
		t.Fatalf("empty p50 = %d, want 0", q)
	}
}

func TestLatencyAndSizeBoundsShape(t *testing.T) {
	lb := LatencyBounds()
	if lb[0] != int64(time.Microsecond) {
		t.Fatalf("first latency bound = %d, want 1µs", lb[0])
	}
	for i := 1; i < len(lb); i++ {
		if lb[i] != 2*lb[i-1] {
			t.Fatalf("latency bounds must double: %d after %d", lb[i], lb[i-1])
		}
	}
	sb := SizeBounds()
	if sb[0] != 1 || sb[len(sb)-1] != 65536 {
		t.Fatalf("size bounds = [%d..%d], want [1..65536]", sb[0], sb[len(sb)-1])
	}
}

// TestRecorderWraparound fills the ring far past capacity and checks that
// Tail returns exactly the newest events in order.
func TestRecorderWraparound(t *testing.T) {
	fr := NewFlightRecorder(64)
	if fr.Cap() != 64 {
		t.Fatalf("cap = %d, want 64", fr.Cap())
	}
	const total = 1000
	for i := 1; i <= total; i++ {
		fr.Record(Event{Kind: "k", N: int64(i)})
	}
	tail := fr.Tail(0)
	if len(tail) != 64 {
		t.Fatalf("tail length = %d, want full ring 64", len(tail))
	}
	for i, e := range tail {
		wantSeq := uint64(total - 64 + 1 + i)
		if e.Seq != wantSeq || e.N != int64(wantSeq) {
			t.Fatalf("tail[%d] = seq %d n %d, want seq %d", i, e.Seq, e.N, wantSeq)
		}
	}
	last := fr.Tail(5)
	if len(last) != 5 || last[4].Seq != total {
		t.Fatalf("Tail(5) = %+v, want newest 5 ending at %d", last, total)
	}
}

// TestRecorderConcurrentAppend hammers Record from many goroutines while
// readers Tail concurrently; under -race this is the lock-freedom proof.
// Afterwards the tail must be strictly ordered and hold plausible events.
func TestRecorderConcurrentAppend(t *testing.T) {
	fr := NewFlightRecorder(256)
	const writers, perWriter = 8, 500
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent reader
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				fr.Tail(64)
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				fr.Record(Event{Kind: "stress", Actor: fmt.Sprintf("w%d", w), N: int64(i)})
			}
		}(w)
	}
	for fr.Seq() < writers*perWriter {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if fr.Seq() != writers*perWriter {
		t.Fatalf("seq = %d, want %d", fr.Seq(), writers*perWriter)
	}
	tail := fr.Tail(0)
	if len(tail) == 0 {
		t.Fatal("empty tail after stress")
	}
	for i := 1; i < len(tail); i++ {
		if tail[i].Seq <= tail[i-1].Seq {
			t.Fatalf("tail not strictly ordered at %d: %d after %d", i, tail[i].Seq, tail[i-1].Seq)
		}
	}
}

// TestRegistrySnapshotUnderRace snapshots and serializes the registry
// while counters, histograms, and the recorder are being written.
func TestRegistrySnapshotUnderRace(t *testing.T) {
	r := New()
	c := r.Counter("hits")
	h := r.Histogram("lat", LatencyBounds())
	r.PublishFunc("fn", func() any { return map[string]int64{"x": c.Load()} })
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					c.Inc()
					h.Observe(1500)
					r.Recorder().Record(Event{Kind: "tick"})
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		var b strings.Builder
		if err := r.WriteJSON(&b); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		var decoded map[string]any
		if err := json.Unmarshal([]byte(b.String()), &decoded); err != nil {
			t.Fatalf("snapshot is not valid JSON: %v\n%s", err, b.String())
		}
		for _, k := range []string{"hits", "lat", "fn"} {
			if _, ok := decoded[k]; !ok {
				t.Fatalf("snapshot missing %q: %v", k, decoded)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestDumpFiresOnInjectedFailure mirrors the crashtorture wiring: a
// failure path records an EvFailure event and dumps the tail; the dump
// must carry both the failure and the events leading up to it.
func TestDumpFiresOnInjectedFailure(t *testing.T) {
	r := New()
	rec := r.Recorder()
	rec.Record(Event{Kind: EvTxnBegin, Actor: "T1"})
	rec.Record(Event{Kind: EvLockBlock, Actor: "T2", Object: "Page3", Note: "X"})
	injected := fmt.Errorf("round 3: recovered total 977, want 8000 or 0")

	var dump strings.Builder
	// The tool-side contract: on failure, record the failure itself, then
	// dump the tail so the timeline arrives with the error.
	rec.Record(Event{Kind: EvFailure, Note: injected.Error()})
	rec.Dump(&dump, 50)

	out := dump.String()
	for _, want := range []string{EvTxnBegin, EvLockBlock, EvFailure, "recovered total 977"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "last 3 events") {
		t.Fatalf("dump header wrong:\n%s", out)
	}
}

func TestEmptyDump(t *testing.T) {
	var b strings.Builder
	NewFlightRecorder(64).Dump(&b, 10)
	if !strings.Contains(b.String(), "no events") {
		t.Fatalf("empty dump = %q", b.String())
	}
}

// TestHTTPEndpoint boots the server on a free port and samples /metrics,
// /debug/vars, and /events.
func TestHTTPEndpoint(t *testing.T) {
	r := New()
	r.Counter("served").Add(3)
	r.Recorder().Record(Event{Kind: EvWALBatch, N: 17})
	addr, shutdown, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer shutdown()

	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return string(body)
	}

	for _, path := range []string{"/metrics", "/debug/vars"} {
		var decoded map[string]any
		if err := json.Unmarshal([]byte(get(path)), &decoded); err != nil {
			t.Fatalf("%s not JSON: %v", path, err)
		}
		if v, ok := decoded["served"].(float64); !ok || v != 3 {
			t.Fatalf("%s served = %v, want 3", path, decoded["served"])
		}
	}
	if events := get("/events?n=10"); !strings.Contains(events, EvWALBatch) {
		t.Fatalf("/events missing %s:\n%s", EvWALBatch, events)
	}
}
