package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (text/plain; version=0.0.4) over one or more
// registries. The JSON surfaces (/metrics, /debug/vars) stay the debugging
// view; this is the scrape format: counters and gauges one sample each,
// histograms as cumulative le-bucketed series with _sum and _count, and
// snapshot funcVars contributing their numeric values as untyped samples
// (structured funcVars — whole-subsystem JSON snapshots — have no scalar
// reading and are omitted). Metric names are sanitized into the
// oodb_<name> namespace; each source's label set (e.g. partition="p0") is
// stamped on every sample it contributes, which is how one endpoint
// exposes N partition registries without name collisions.

// PromSource names one registry's contribution to the exposition. Label
// is a rendered label pair list without braces (`partition="p0"`), empty
// for none.
type PromSource struct {
	Label string
	Reg   *Registry
}

// PromHandler serves the merged exposition of the given sources.
func PromHandler(sources []PromSource) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WriteProm(w, sources)
	})
}

// WriteProm renders the exposition: families in sorted name order, one
// TYPE line each, samples in source order within a family.
func WriteProm(w io.Writer, sources []PromSource) error {
	type family struct {
		typ   string
		lines []string
	}
	families := make(map[string]*family)
	var order []string
	add := func(name, typ string, lines ...string) {
		f := families[name]
		if f == nil {
			f = &family{typ: typ}
			families[name] = f
			order = append(order, name)
		}
		f.lines = append(f.lines, lines...)
	}
	for _, src := range sources {
		r := src.Reg
		if r == nil {
			continue
		}
		r.mu.RLock()
		vars := make(map[string]Var, len(r.vars))
		for n, v := range r.vars {
			vars[n] = v
		}
		r.mu.RUnlock()
		names := make([]string, 0, len(vars))
		for n := range vars {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			pn := PromName(n)
			switch v := vars[n].(type) {
			case *Counter:
				add(pn, "counter", promSample(pn, src.Label, v.Load()))
			case *Gauge:
				add(pn, "gauge", promSample(pn, src.Label, v.Load()))
			case *Histogram:
				add(pn, "histogram", promHistogram(pn, src.Label, v)...)
			default:
				// funcVar (or any future Var): publish scalar readings only.
				if f, ok := promScalar(v.Value()); ok {
					add(pn, "untyped", promSampleF(pn, src.Label, f))
				}
			}
		}
	}
	sort.Strings(order)
	for _, name := range order {
		f := families[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, f.typ); err != nil {
			return err
		}
		for _, line := range f.lines {
			if _, err := io.WriteString(w, line+"\n"); err != nil {
				return err
			}
		}
	}
	return nil
}

// PromName sanitizes a registry metric name ("p0.engine.commits") into the
// Prometheus namespace ("oodb_p0_engine_commits").
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 5)
	b.WriteString("oodb_")
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == ':':
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func promSample(name, labels string, v int64) string {
	if labels != "" {
		return fmt.Sprintf("%s{%s} %d", name, labels, v)
	}
	return fmt.Sprintf("%s %d", name, v)
}

func promSampleF(name, labels string, v float64) string {
	s := strconv.FormatFloat(v, 'g', -1, 64)
	if labels != "" {
		return fmt.Sprintf("%s{%s} %s", name, labels, s)
	}
	return fmt.Sprintf("%s %s", name, s)
}

// promHistogram renders one histogram as cumulative buckets + sum + count.
// The +Inf bucket and _count both report the bucket total read in one
// pass, so the exposition is self-consistent even while Observe races the
// scrape (h.count could differ by in-flight observations).
func promHistogram(name, labels string, h *Histogram) []string {
	out := make([]string, 0, len(h.counts)+2)
	cum := int64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = strconv.FormatInt(h.bounds[i], 10)
		}
		ls := fmt.Sprintf("le=%q", le)
		if labels != "" {
			ls = labels + "," + ls
		}
		out = append(out, fmt.Sprintf("%s_bucket{%s} %d", name, ls, cum))
	}
	out = append(out,
		promSample(name+"_sum", labels, h.Sum()),
		promSample(name+"_count", labels, cum))
	return out
}

// promScalar reports a snapshot value's float reading, when it has one.
func promScalar(v any) (float64, bool) {
	switch x := v.(type) {
	case int64:
		return float64(x), true
	case int:
		return float64(x), true
	case uint64:
		return float64(x), true
	case float64:
		return x, true
	case bool:
		if x {
			return 1, true
		}
		return 0, true
	}
	return 0, false
}
