package obs

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"
)

func readAll(t *testing.T, r io.Reader) string {
	t.Helper()
	b, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// parseProm is a strict Prometheus text-format (version 0.0.4) parser for
// the subset the exposition emits: `# TYPE` comments and
// `name[{labels}] value` samples. It enforces the format rules a real
// scraper would: every sample's family has a preceding TYPE line, names
// match the metric-name charset, label values are quoted, values parse as
// floats, histogram buckets are cumulative and end at +Inf with a
// matching _count, and no family appears twice.
func parseProm(t *testing.T, text string) map[string][]promParsedSample {
	t.Helper()
	types := make(map[string]string)
	samples := make(map[string][]promParsedSample)
	var lastType string
	for lineNo, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "TYPE" {
				t.Fatalf("line %d: malformed comment %q", lineNo+1, line)
			}
			name, typ := fields[2], fields[3]
			if !promNameOK(name) {
				t.Fatalf("line %d: bad family name %q", lineNo+1, name)
			}
			switch typ {
			case "counter", "gauge", "histogram", "untyped", "summary":
			default:
				t.Fatalf("line %d: unknown type %q", lineNo+1, typ)
			}
			if _, dup := types[name]; dup {
				t.Fatalf("line %d: family %q declared twice", lineNo+1, name)
			}
			types[name] = typ
			lastType = name
			continue
		}
		s := parsePromSample(t, lineNo+1, line)
		fam := s.name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(s.name, suffix); base != s.name && types[base] == "histogram" {
				fam = base
			}
		}
		if _, ok := types[fam]; !ok {
			t.Fatalf("line %d: sample %q has no TYPE line", lineNo+1, s.name)
		}
		if fam != lastType {
			t.Fatalf("line %d: sample %q outside its family block (last TYPE %s)", lineNo+1, s.name, lastType)
		}
		samples[fam] = append(samples[fam], s)
	}
	// Histogram invariants, per label set: cumulative buckets ending at
	// +Inf, with _count equal to the +Inf reading.
	for fam, typ := range types {
		if typ != "histogram" {
			continue
		}
		byLabels := make(map[string][]promParsedSample)
		for _, s := range samples[fam] {
			key := s.labelsKey("le")
			byLabels[key] = append(byLabels[key], s)
		}
		for key, group := range byLabels {
			var last float64
			var sawInf, sawCount bool
			var inf, count float64
			for _, s := range group {
				switch s.name {
				case fam + "_bucket":
					if s.value < last {
						t.Fatalf("family %s{%s}: bucket counts not cumulative", fam, key)
					}
					last = s.value
					if s.labels["le"] == "+Inf" {
						sawInf, inf = true, s.value
					}
				case fam + "_count":
					sawCount, count = true, s.value
				}
			}
			if !sawInf {
				t.Fatalf("family %s{%s}: no +Inf bucket", fam, key)
			}
			if !sawCount || count != inf {
				t.Fatalf("family %s{%s}: _count %v != +Inf bucket %v", fam, key, count, inf)
			}
		}
	}
	return samples
}

type promParsedSample struct {
	name   string
	labels map[string]string
	value  float64
}

// labelsKey renders the sample's labels minus the given ones — the
// per-series identity used to group histogram buckets.
func (s promParsedSample) labelsKey(drop ...string) string {
	var parts []string
	for k, v := range s.labels {
		skip := false
		for _, d := range drop {
			if k == d {
				skip = true
			}
		}
		if !skip {
			parts = append(parts, k+"="+v)
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

func parsePromSample(t *testing.T, lineNo int, line string) promParsedSample {
	t.Helper()
	s := promParsedSample{labels: map[string]string{}}
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		s.name = rest[:i]
		end := strings.IndexByte(rest, '}')
		if end < i {
			t.Fatalf("line %d: unterminated label set: %q", lineNo, line)
		}
		for _, pair := range strings.Split(rest[i+1:end], ",") {
			k, v, ok := strings.Cut(pair, "=")
			if !ok || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				t.Fatalf("line %d: malformed label %q", lineNo, pair)
			}
			if !promNameOK(k) {
				t.Fatalf("line %d: bad label name %q", lineNo, k)
			}
			s.labels[k] = v[1 : len(v)-1]
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		fields := strings.SplitN(rest, " ", 2)
		if len(fields) != 2 {
			t.Fatalf("line %d: malformed sample %q", lineNo, line)
		}
		s.name, rest = fields[0], strings.TrimSpace(fields[1])
	}
	if !promNameOK(s.name) {
		t.Fatalf("line %d: bad metric name %q", lineNo, s.name)
	}
	v, err := parsePromValue(rest)
	if err != nil {
		t.Fatalf("line %d: bad value %q: %v", lineNo, rest, err)
	}
	s.value = v
	return s
}

func parsePromValue(s string) (float64, error) {
	if s == "+Inf" || s == "-Inf" || s == "NaN" {
		return 0, fmt.Errorf("non-finite sample value")
	}
	return strconv.ParseFloat(s, 64)
}

func promNameOK(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// TestPromExposition: every var kind renders, histograms uphold the
// cumulative contract, and multi-source label stamping keeps partitions
// apart in one exposition.
func TestPromExposition(t *testing.T) {
	r0, r1 := New(), New()
	r0.Counter("engine.commits").Add(7)
	r0.Gauge("engine.inflight").Set(3)
	h := r0.Histogram("server.latency_ns", LatencyBounds())
	h.ObserveDuration(5 * time.Microsecond)
	h.ObserveDuration(40 * time.Millisecond)
	r0.PublishFunc("cluster.partitions", func() any { return 2 })
	r0.PublishFunc("engine.stats", func() any { return map[string]any{"json": "only"} })
	r1.Counter("engine.commits").Add(9)

	var b strings.Builder
	err := WriteProm(&b, []PromSource{
		{Label: `partition="p0"`, Reg: r0},
		{Label: `partition="p1"`, Reg: r1},
	})
	if err != nil {
		t.Fatal(err)
	}
	text := b.String()
	samples := parseProm(t, text)

	commits := samples["oodb_engine_commits"]
	if len(commits) != 2 {
		t.Fatalf("want one commits sample per partition, got %v", commits)
	}
	got := map[string]float64{}
	for _, s := range commits {
		got[s.labels["partition"]] = s.value
	}
	if got["p0"] != 7 || got["p1"] != 9 {
		t.Fatalf("per-partition commits wrong: %v", got)
	}
	if n := len(samples["oodb_server_latency_ns"]); n == 0 {
		t.Fatal("histogram family missing")
	}
	var found bool
	for _, s := range samples["oodb_cluster_partitions"] {
		if s.value == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("numeric funcVar not exposed")
	}
	if strings.Contains(text, "engine_stats") {
		t.Fatal("structured funcVar leaked into the exposition")
	}
}

// TestPromDefaultMount: a plain registry Handler serves /metrics/prom with
// no labels, and the exposition parses.
func TestPromDefaultMount(t *testing.T) {
	r := New()
	r.Counter("server.requests").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	res, err := srv.Client().Get(srv.URL + "/metrics/prom")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("status %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	samples := parseProm(t, readAll(t, res.Body))
	if len(samples["oodb_server_requests"]) != 1 {
		t.Fatalf("missing requests sample: %v", samples)
	}
}

// TestHandlerIndexStable: the / index line lists extra mounts in sorted
// order on every build (satellite: stable scrape diffs).
func TestHandlerIndexStable(t *testing.T) {
	r := New()
	for _, p := range []string{"/zzz", "/aaa", "/mmm"} {
		r.Handle(p, httpNoop{})
	}
	var first string
	for i := 0; i < 8; i++ {
		srv := httptest.NewServer(r.Handler())
		res, err := srv.Client().Get(srv.URL + "/")
		if err != nil {
			t.Fatal(err)
		}
		body := readAll(t, res.Body)
		res.Body.Close()
		srv.Close()
		if i == 0 {
			first = body
			if !strings.Contains(body, "/aaa, /mmm, /zzz") {
				t.Fatalf("index not sorted: %q", body)
			}
		} else if body != first {
			t.Fatalf("index line unstable across builds:\n%q\n%q", first, body)
		}
	}
}

type httpNoop struct{}

func (httpNoop) ServeHTTP(w http.ResponseWriter, req *http.Request) {}
