package obs

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"
)

// Event kinds published by the engine's subsystems. Kinds are plain
// strings so applications and tests can add their own without touching
// this package.
const (
	EvLockBlock    = "lock.block"    // Actor waits on Object (Note: mode, blockers)
	EvLockGrant    = "lock.grant"    // a previously blocked acquire succeeded (Dur: wait)
	EvLockTimeout  = "lock.timeout"  // a wait exceeded the bound (Dur: wait)
	EvLockDeadlock = "lock.deadlock" // Actor chosen as deadlock victim
	EvTxnBegin     = "txn.begin"
	EvTxnCommit    = "txn.commit" // Dur: begin→durable-commit; N: max nesting depth
	EvTxnAbort     = "txn.abort"  // N: max nesting depth
	EvTxnSlow      = "txn.slow"   // lifetime crossed Options.SlowTxnThreshold (Dur: lifetime; Note: outcome)
	EvPoolEvict    = "pool.evict" // Object: page; Note "dirty" when written back (Dur: write-back)
	EvPoolWriteErr = "pool.write_error"
	EvWALBatch     = "wal.batch" // N: records flushed; Dur: write+fsync
	EvRecovery     = "recovery.phase"
	EvFailure      = "failure"           // injected/unexpected failure a tool wants on the timeline
	EvDegraded     = "engine.degraded"   // the engine entered read-only degraded mode (Note: cause)
	EvOverload     = "engine.overload"   // an admission wait timed out (ErrOverloaded)
	EvCheckpoint   = "engine.checkpoint" // a fuzzy checkpoint completed (Object: file; N: segments truncated)
	EvReplRole     = "repl.role"         // a replica changed role (Actor: node; Note: new role; N: term)
)

// Event is one flight-recorder entry.
type Event struct {
	Seq    uint64        `json:"seq"`
	At     time.Time     `json:"at"`
	Kind   string        `json:"kind"`
	Actor  string        `json:"actor,omitempty"`  // transaction / owner / subsystem id
	Object string        `json:"object,omitempty"` // resource, page, segment...
	Dur    time.Duration `json:"dur,omitempty"`
	N      int64         `json:"n,omitempty"`
	Note   string        `json:"note,omitempty"`
}

// FlightRecorder is a bounded, always-on ring buffer of recent events —
// the engine's black box. Record is lock-free (an atomic sequence claim
// plus an atomic pointer store into the claimed slot), so it is cheap
// enough for hot paths and safe under -race with any number of concurrent
// writers and readers. Tail reconstructs the most recent events; under
// concurrent appends the result is approximate at the wrap boundary
// (slots being overwritten show their new content), which is exactly the
// semantics a black box wants.
type FlightRecorder struct {
	slots []atomic.Pointer[Event]
	mask  uint64
	seq   atomic.Uint64
}

// NewFlightRecorder returns a recorder holding up to capacity events,
// rounded up to a power of two (minimum 64).
func NewFlightRecorder(capacity int) *FlightRecorder {
	n := 64
	for n < capacity {
		n <<= 1
	}
	return &FlightRecorder{slots: make([]atomic.Pointer[Event], n), mask: uint64(n - 1)}
}

// Cap returns the ring capacity in events.
func (fr *FlightRecorder) Cap() int {
	if fr == nil {
		return 0
	}
	return len(fr.slots)
}

// Seq returns the total number of events ever recorded.
func (fr *FlightRecorder) Seq() uint64 {
	if fr == nil {
		return 0
	}
	return fr.seq.Load()
}

// Record appends an event, stamping Seq and (when zero) At. Nil-safe.
func (fr *FlightRecorder) Record(e Event) {
	if fr == nil {
		return
	}
	if e.At.IsZero() {
		e.At = time.Now()
	}
	s := fr.seq.Add(1)
	e.Seq = s
	fr.slots[(s-1)&fr.mask].Store(&e)
}

// Tail returns the last n events (all buffered events when n <= 0 or
// larger than the buffer), oldest first.
func (fr *FlightRecorder) Tail(n int) []Event {
	if fr == nil {
		return nil
	}
	if n <= 0 || n > len(fr.slots) {
		n = len(fr.slots)
	}
	hi := fr.seq.Load()
	lo := uint64(1)
	if hi > uint64(len(fr.slots)) {
		lo = hi - uint64(len(fr.slots)) + 1
	}
	out := make([]Event, 0, n)
	for s := lo; s <= hi; s++ {
		// A slot lagging its claimed sequence (writer between claim and
		// store) or already overwritten by a newer event is skipped/kept by
		// the Seq check; ordering is restored by the sort below.
		if p := fr.slots[(s-1)&fr.mask].Load(); p != nil && p.Seq >= lo {
			out = append(out, *p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	// Concurrent writers can leave duplicates of a re-read slot; drop them.
	dedup := out[:0]
	for i, e := range out {
		if i == 0 || e.Seq != out[i-1].Seq {
			dedup = append(dedup, e)
		}
	}
	out = dedup
	if len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// Dump writes the last n events to w, one line per event, oldest first —
// the format crashtorture and failing stress tests print.
func (fr *FlightRecorder) Dump(w io.Writer, n int) {
	events := fr.Tail(n)
	if len(events) == 0 {
		fmt.Fprintln(w, "flight recorder: no events")
		return
	}
	fmt.Fprintf(w, "flight recorder: last %d events (of %d recorded)\n", len(events), fr.Seq())
	for _, e := range events {
		fmt.Fprintln(w, formatEvent(e))
	}
}

func formatEvent(e Event) string {
	line := fmt.Sprintf("%8d %s %-14s", e.Seq, e.At.Format("15:04:05.000000"), e.Kind)
	if e.Actor != "" {
		line += " actor=" + e.Actor
	}
	if e.Object != "" {
		line += " obj=" + e.Object
	}
	if e.Dur != 0 {
		line += " dur=" + e.Dur.String()
	}
	if e.N != 0 {
		line += fmt.Sprintf(" n=%d", e.N)
	}
	if e.Note != "" {
		line += fmt.Sprintf(" note=%q", e.Note)
	}
	return line
}
