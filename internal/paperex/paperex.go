// Package paperex builds the paper's running examples — the encyclopedia of
// Figure 2 with the transactions of Examples 1 and 4 (Figures 4, 7, 8) —
// as formal transaction systems, so that the serializability theory in
// internal/sched can be exercised against the exact scenarios the paper
// draws.
//
// The ICDE 1990 scan is partly garbled around the example subscripts; the
// reconstruction here follows the prose: T1 and T2 insert the different
// keys DBS and DBMS (conflicting on the shared Page4712, commuting on
// Leaf11), T3 searches DBS (conflicting with T1 all the way up), T2
// additionally changes the previously inserted item (Item8), and T4 reads
// the items sequentially through the linked list. EXPERIMENTS.md records
// the reconstruction decisions.
package paperex

import (
	"repro/internal/commut"
	"repro/internal/txn"
)

// Object type names used by the encyclopedia model.
const (
	TypePage  = "page"
	TypeLeaf  = "btreenode"
	TypeTree  = "btree"
	TypeList  = "linkedlist"
	TypeItem  = "item"
	TypeEnc   = "encyclopedia"
	TypeDoc   = "document"
	TypeSect  = "section"
	TypeAcct  = "account"
	TypeTable = "table"
)

// The objects of Figure 2 that the examples touch.
var (
	Enc        = txn.OID{Type: TypeEnc, Name: "Enc"}
	BpTree     = txn.OID{Type: TypeTree, Name: "BpTree"}
	Leaf11     = txn.OID{Type: TypeLeaf, Name: "Leaf11"}
	LinkedList = txn.OID{Type: TypeList, Name: "LinkedList"}
	Item7      = txn.OID{Type: TypeItem, Name: "Item7"}
	Item8      = txn.OID{Type: TypeItem, Name: "Item8"}
	Page4712   = txn.OID{Type: TypePage, Name: "Page4712"}
	Page0610   = txn.OID{Type: TypePage, Name: "Page0610"} // linked-list spine page
	Page0815   = txn.OID{Type: TypePage, Name: "Page0815"} // Item8's page
	Page0816   = txn.OID{Type: TypePage, Name: "Page0816"} // Item7's page
)

// Registry returns the commutativity registry for the encyclopedia model:
//
//   - pages: classical read/write conflicts (the zero layer, Axiom 1);
//   - B+ tree nodes and the tree: key-based — operations on distinct keys
//     commute, search/search commutes, anything else on the same key
//     conflicts (Example 1's leaf semantics);
//   - linked list: appends conflict with readSeq (a sequential read
//     observes membership), appends of distinct keys commute;
//   - items: read/update semantics;
//   - encyclopedia: key-based for insert/search/update, readSeq conflicts
//     with every mutator.
func Registry() *commut.Registry {
	reg := commut.NewRegistry()
	reg.Register(TypePage, commut.ReadWriteMatrix())
	reg.Register(TypeLeaf, commut.KeyedSpec([]string{"search"}, []string{"insert", "delete"}))
	reg.Register(TypeTree, commut.KeyedSpec([]string{"search"}, []string{"insert", "delete"}))
	reg.Register(TypeItem, commut.NewMatrix().
		SetCommutes("read", "read").
		SetConflicts("read", "update").
		SetConflicts("update", "update"))

	list := commut.NewParamSpec(commut.NewMatrix().
		SetCommutes("readSeq", "readSeq").
		SetConflicts("readSeq", "append"))
	list.Rule("append", "append", commut.DistinctFirstParam)
	reg.Register(TypeList, list)

	enc := commut.NewParamSpec(commut.NewMatrix().
		SetCommutes("readSeq", "readSeq").
		SetConflicts("readSeq", "insert").
		SetConflicts("readSeq", "update").
		SetCommutes("readSeq", "search"))
	sameKeyConflicts := func(a, b commut.Invocation) bool { return a.Param(0) != b.Param(0) }
	for _, m1 := range []string{"insert", "update"} {
		for _, m2 := range []string{"insert", "update", "search"} {
			enc.Rule(m1, m2, sameKeyConflicts)
		}
	}
	enc.Rule("search", "search", func(a, b commut.Invocation) bool { return true })
	reg.Register(TypeEnc, enc)
	return reg
}

// Example1 builds the three transactions of Example 1 / Figure 4 plus the
// interleaved primitive execution order the example assumes:
//
//	T1 = Enc.insert(DBS)  → BpTree.insert(DBS) → Leaf11.insert(DBS) → Page4712.read, Page4712.write
//	T2 = Enc.insert(DBMS) → BpTree.insert(DBMS) → Leaf11.insert(DBMS) → Page4712.read, Page4712.write
//	T3 = Enc.search(DBS)  → BpTree.search(DBS)  → Leaf11.search(DBS)  → Page4712.read
//
// executed T1's page accesses, then T2's, then T3's read — so at the page
// every conflicting pair is ordered T1 before T2 before T3.
func Example1() (*txn.System, []string) {
	t1 := txn.NewTransaction("T1")
	e1 := t1.Call(nil, Enc, "insert", "DBS")
	b1 := t1.Call(e1, BpTree, "insert", "DBS")
	l1 := t1.Call(b1, Leaf11, "insert", "DBS")
	r1 := t1.Call(l1, Page4712, "read")
	w1 := t1.Call(l1, Page4712, "write")

	t2 := txn.NewTransaction("T2")
	e2 := t2.Call(nil, Enc, "insert", "DBMS")
	b2 := t2.Call(e2, BpTree, "insert", "DBMS")
	l2 := t2.Call(b2, Leaf11, "insert", "DBMS")
	r2 := t2.Call(l2, Page4712, "read")
	w2 := t2.Call(l2, Page4712, "write")

	t3 := txn.NewTransaction("T3")
	e3 := t3.Call(nil, Enc, "search", "DBS")
	b3 := t3.Call(e3, BpTree, "search", "DBS")
	l3 := t3.Call(b3, Leaf11, "search", "DBS")
	r3 := t3.Call(l3, Page4712, "read")

	sys := txn.NewSystem(t1.Build(), t2.Build(), t3.Build())
	order := []string{r1.ID, w1.ID, r2.ID, w2.ID, r3.ID}
	return sys, order
}

// Example4 builds the four transactions of Example 4 / Figures 7-8 plus the
// interleaved primitive execution order:
//
//	T1 = Enc.insert(DBS)   (as in Example 1)
//	T2 = Enc.insert(DBMS); Enc.update(DBMS)
//	       insert: BpTree path onto Page4712, and LinkedList.append(DBMS)
//	       onto the spine Page0610
//	       update: Item8.update onto Page0815
//	T3 = Enc.search(DBS)   (BpTree path; also reads Item7 via Page0816)
//	T4 = Enc.readSeq()     (LinkedList.readSeq reading the spine, Item7 and Item8)
//
// The order interleaves T1/T2/T3 on Page4712 as in Example 1 and runs T4's
// sequential read after T2's update, so every dependency points forward:
// the schedule is oo-serializable with witness T1, T2, T3, T4.
func Example4() (*txn.System, []string) {
	t1 := txn.NewTransaction("T1")
	e1 := t1.Call(nil, Enc, "insert", "DBS")
	b1 := t1.Call(e1, BpTree, "insert", "DBS")
	l1 := t1.Call(b1, Leaf11, "insert", "DBS")
	r1 := t1.Call(l1, Page4712, "read")
	w1 := t1.Call(l1, Page4712, "write")

	t2 := txn.NewTransaction("T2")
	e2 := t2.Call(nil, Enc, "insert", "DBMS")
	b2 := t2.Call(e2, BpTree, "insert", "DBMS")
	l2 := t2.Call(b2, Leaf11, "insert", "DBMS")
	r2 := t2.Call(l2, Page4712, "read")
	w2 := t2.Call(l2, Page4712, "write")
	ap2 := t2.Call(e2, LinkedList, "append", "DBMS")
	aw2 := t2.Call(ap2, Page0610, "write")
	u2 := t2.Call(nil, Enc, "update", "DBMS")
	iu2 := t2.Call(u2, Item8, "update")
	ir2 := t2.Call(iu2, Page0815, "read")
	iw2 := t2.Call(iu2, Page0815, "write")

	t3 := txn.NewTransaction("T3")
	e3 := t3.Call(nil, Enc, "search", "DBS")
	b3 := t3.Call(e3, BpTree, "search", "DBS")
	l3 := t3.Call(b3, Leaf11, "search", "DBS")
	r3 := t3.Call(l3, Page4712, "read")
	i3 := t3.Call(e3, Item7, "read")
	ir3 := t3.Call(i3, Page0816, "read")

	t4 := txn.NewTransaction("T4")
	e4 := t4.Call(nil, Enc, "readSeq")
	ls4 := t4.Call(e4, LinkedList, "readSeq")
	sp4 := t4.Call(ls4, Page0610, "read")
	i7 := t4.Call(ls4, Item7, "read")
	i7r := t4.Call(i7, Page0816, "read")
	i8 := t4.Call(ls4, Item8, "read")
	i8r := t4.Call(i8, Page0815, "read")

	sys := txn.NewSystem(t1.Build(), t2.Build(), t3.Build(), t4.Build())
	order := []string{
		r1.ID, w1.ID, // T1 on Page4712
		r2.ID, w2.ID, // T2 on Page4712
		r3.ID,          // T3 reads Page4712 after both inserts
		aw2.ID,         // T2 appends to the list spine
		ir2.ID, iw2.ID, // T2 updates Item8
		sp4.ID, // T4 reads the spine after the append
		i7r.ID, // T4 reads Item7
		i8r.ID, // T4 reads Item8 after T2's update
		ir3.ID, // T3 reads Item7
	}
	return sys, order
}

// BLink builds the Section 2 B-link scenario: a leaf split whose rearrange
// subtransaction re-enters the ancestor node, requiring the Definition 5
// extension; a concurrent search on the node supplies the conflicting
// reader. It returns the system (unextended) and the primitive order in
// which the split's node write precedes the search's node read.
func BLink() (*txn.System, []string) {
	node6 := txn.OID{Type: TypeLeaf, Name: "Node6"}
	leaf11 := txn.OID{Type: TypeLeaf, Name: "Leaf11b"}
	pageL := txn.OID{Type: TypePage, Name: "PageLeaf"}
	pageN := txn.OID{Type: TypePage, Name: "PageNode"}

	t1 := txn.NewTransaction("T1")
	n1 := t1.Call(nil, node6, "insert", "K")
	l1 := t1.Call(n1, leaf11, "insert", "K")
	lw := t1.Call(l1, pageL, "write")
	re := t1.Call(l1, node6, "rearrange", "K")
	nw := t1.Call(re, pageN, "write")

	t2 := txn.NewTransaction("T2")
	s2 := t2.Call(nil, node6, "search", "K")
	nr := t2.Call(s2, pageN, "read")

	sys := txn.NewSystem(t1.Build(), t2.Build())
	order := []string{lw.ID, nw.ID, nr.ID}
	return sys, order
}
