// Package partition shards the keyspace into N independent engine
// partitions behind a deterministic router — the scale-out half of the
// durability work (ROADMAP item 2). The paper's protocols serialize per
// object, so objects that hash to different partitions never conflict and
// a cluster of self-contained engines scales writes near-linearly
// ("tuple-based abstract data types: full parallelism").
//
// Each partition is a complete core.DB: its own buffer pool, lock shards,
// WAL segment directory (<root>/p<i>/wal-*.seg), checkpointer, and
// admission controller. Nothing is shared between partitions — no lock
// table, no log, no pool — which is exactly what makes per-partition crash
// recovery independent: recovering partition i reads only p<i>'s files
// (property-tested in partition_test.go).
//
// Routing is a pure function of the object name and the partition count
// (RouteName), so the assignment is stable across restarts and computable
// on both sides of the wire: the session layer (internal/server) pins a
// transaction to the partition of its first-touched object, and any later
// access routed elsewhere is refused with the typed ErrWrongPartition —
// cross-partition transactions are out of scope until a distributed commit
// exists.
package partition

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/recovery"
	"repro/internal/span"
	"repro/internal/storage"
)

// ErrWrongPartition is returned when a transaction pinned to one partition
// touches an object that routes to another. It is terminal for the
// client-side retry loop: re-running the same accesses would route the
// same way.
var ErrWrongPartition = errors.New("partition: object routes to a different partition than the transaction is pinned to")

// RouteName maps an object name to a partition in [0, n). It is a pure
// function — FNV-1a over the name, mod n — so the assignment is stable
// across restarts and identical on every node that knows n. n <= 1 always
// routes to 0.
func RouteName(name string, n int) int {
	if n <= 1 {
		return 0
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	return int(h % uint64(n))
}

// NameFor returns a deterministic object name with the given prefix that
// routes to partition p of n: the first prefix<k> (k = 0, 1, ...) whose
// RouteName is p. Installers and load drivers use it to agree, without
// coordination, on one well-known object per partition (e.g. the
// per-partition encyclopedia). With n <= 1 the prefix itself is returned,
// so single-partition deployments keep their historical names.
func NameFor(prefix string, p, n int) string {
	if n <= 1 {
		return prefix
	}
	for k := 0; ; k++ {
		name := prefix + strconv.Itoa(k)
		if RouteName(name, n) == p {
			return name
		}
	}
}

// DirName is the WAL subdirectory name of partition i ("p<i>").
func DirName(i int) string { return "p" + strconv.Itoa(i) }

// Dir is the WAL segment directory of partition i under root.
func Dir(root string, i int) string { return filepath.Join(root, DirName(i)) }

// Options configure Open and Recover.
type Options struct {
	// N is the partition count (default 1).
	N int
	// Engine is the per-partition engine template. Obs and WALDir are
	// managed by the cluster: each partition gets its own registry (or
	// none, with DisableObs) and its own WAL directory under WALRoot.
	Engine core.Options
	// WALRoot is the root directory holding one p<i> segment directory per
	// partition. Required when Engine.Durability is not storage.MemOnly.
	WALRoot string
	// Obs, when non-nil, is the cluster-level registry: per-partition
	// metrics are published into it as p<i>.engine.* (inflight, stats,
	// health) next to the cluster.* aggregates. With N == 1 the single
	// engine publishes into it directly under the historical flat names.
	Obs *obs.Registry
	// Register installs the application's object types (and, for Open,
	// seed data) on partition i. For Recover it runs as the recovery
	// registerTypes hook and therefore must be write-free on a recovered
	// partition: logical undo needs the method implementations, not a
	// fresh funding transaction.
	Register func(i int, db *core.DB) error
}

// Cluster is N independent engine partitions behind the router.
type Cluster struct {
	parts   []*core.DB
	reports []recovery.Report
	reg     *obs.Registry
}

// Single wraps one caller-owned engine as a 1-partition cluster — the
// compatibility path for everything that serves a lone core.DB through the
// session layer.
func Single(db *core.DB) *Cluster {
	return &Cluster{parts: []*core.DB{db}, reg: db.Obs()}
}

// Open creates a fresh cluster: every partition is opened empty (durable
// partitions refuse directories that already hold log records, exactly
// like core.OpenDurable — restarting over existing segments is Recover's
// job) and Register runs on each.
func Open(opts Options) (*Cluster, error) {
	return build(opts, false)
}

// Recover opens a cluster over existing per-partition WAL directories —
// the restart path. Each partition recovers independently from its own
// p<i> directory (empty or missing directories open fresh); Register must
// be write-free (see Options.Register). The returned reports hold one
// recovery.Report per partition (zero-valued for partitions that opened
// fresh).
func Recover(opts Options) (*Cluster, []recovery.Report, error) {
	c, err := build(opts, true)
	if err != nil {
		return nil, nil, err
	}
	return c, c.reports, nil
}

func build(opts Options, allowRestart bool) (*Cluster, error) {
	n := opts.N
	if n <= 0 {
		n = 1
	}
	durable := opts.Engine.Durability != storage.MemOnly
	if durable && opts.WALRoot == "" {
		return nil, fmt.Errorf("partition: durable cluster needs a WALRoot")
	}
	if !durable && allowRestart {
		return nil, fmt.Errorf("partition: Recover needs a durable Engine.Durability")
	}
	c := &Cluster{
		parts:   make([]*core.DB, 0, n),
		reports: make([]recovery.Report, n),
		reg:     opts.Obs,
	}
	fail := func(err error) (*Cluster, error) {
		_ = c.Close()
		return nil, err
	}
	for i := 0; i < n; i++ {
		eopts := opts.Engine
		switch {
		case n == 1:
			eopts.Obs = opts.Obs
		case opts.Obs != nil && !eopts.DisableObs:
			// Partitions cannot share a registry: every engine registers the
			// same flat names (engine.inflight, ...), so a shared one would
			// alias their gauges. Each partition gets its own; the cluster
			// registry carries the p<i>.* projections below.
			eopts.Obs = obs.New()
		default:
			eopts.Obs = nil
		}
		var db *core.DB
		var err error
		if durable {
			// A 1-partition cluster keeps its segments directly in WALRoot —
			// the historical single-engine layout — so existing directories
			// stay recoverable without a reshard.
			if n == 1 {
				eopts.WALDir = opts.WALRoot
			} else {
				eopts.WALDir = Dir(opts.WALRoot, i)
			}
			restart := false
			if allowRestart {
				if restart, err = hasHistory(eopts.WALDir); err != nil {
					return fail(err)
				}
			}
			if restart {
				part := i
				var rep recovery.Report
				db, rep, err = recovery.RecoverDir(eopts.WALDir, eopts, func(d *core.DB) error {
					if opts.Register == nil {
						return nil
					}
					return opts.Register(part, d)
				})
				if err != nil {
					return fail(fmt.Errorf("partition: recover p%d: %w", i, err))
				}
				c.reports[i] = rep
				c.parts = append(c.parts, db)
				continue
			}
			db, err = core.OpenDurable(eopts)
			if err != nil {
				return fail(fmt.Errorf("partition: open p%d: %w", i, err))
			}
		} else {
			db = core.Open(eopts)
		}
		c.parts = append(c.parts, db)
		if opts.Register != nil {
			if err := opts.Register(i, db); err != nil {
				return fail(fmt.Errorf("partition: register p%d: %w", i, err))
			}
		}
	}
	c.publish()
	return c, nil
}

// hasHistory reports whether a partition directory holds WAL segments or
// checkpoint files — anything that makes opening it a restart.
func hasHistory(dir string) (bool, error) {
	if _, err := os.Stat(dir); os.IsNotExist(err) {
		return false, nil
	}
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil {
		return false, err
	}
	if len(segs) > 0 {
		return true, nil
	}
	infos, err := checkpoint.Scan(dir)
	if err != nil {
		return false, err
	}
	return len(infos) > 0, nil
}

// publish projects per-partition and aggregate metrics into the cluster
// registry. Single-partition clusters skip it: the engine already
// publishes the flat names directly.
func (c *Cluster) publish() {
	if c.reg == nil || len(c.parts) <= 1 {
		return
	}
	for i, db := range c.parts {
		part := db
		c.reg.PublishFunc(fmt.Sprintf("p%d.engine", i), func() any { return part.Stats() })
		c.reg.PublishFunc(fmt.Sprintf("p%d.engine.inflight", i), func() any { return part.Health().Inflight })
		c.reg.PublishFunc(fmt.Sprintf("p%d.health", i), func() any { return part.Health() })
	}
	c.reg.PublishFunc("cluster.partitions", func() any { return len(c.parts) })
	c.reg.PublishFunc("cluster.engine", func() any { return c.Stats() })
	c.reg.PublishFunc("cluster.engine.inflight", func() any { return c.Health().Inflight })
	c.reg.PublishFunc("cluster.health", func() any { return c.Health() })
	// Cluster-wide observability surfaces: one /trace merging every
	// partition tracer under p<i>/-qualified ids, and one Prometheus
	// exposition stamping each partition registry with its label. (With
	// N == 1 the engine's own registry serves both directly.)
	if srcs := c.TraceSources(); len(srcs) > 0 {
		c.reg.Handle("/trace", span.ClusterHandler(srcs))
	}
	if srcs := c.PromSources(); len(srcs) > 0 {
		c.reg.Handle("/metrics/prom", obs.PromHandler(srcs))
	}
}

// TraceSources returns one named span source per partition that traces
// ("p<i>"), the input for span.ClusterHandler. Empty when spans are
// disabled engine-wide.
func (c *Cluster) TraceSources() []span.Source {
	var srcs []span.Source
	for i, db := range c.parts {
		if tr := db.Spans(); tr != nil {
			srcs = append(srcs, span.Source{Name: DirName(i), Tracer: tr})
		}
	}
	return srcs
}

// PromSources returns one labeled Prometheus source per partition registry
// (partition="p<i>"), the input for obs.PromHandler. Empty when obs is
// disabled engine-wide.
func (c *Cluster) PromSources() []obs.PromSource {
	var srcs []obs.PromSource
	for i, db := range c.parts {
		if reg := db.Obs(); reg != nil {
			srcs = append(srcs, obs.PromSource{
				Label: fmt.Sprintf("partition=%q", DirName(i)),
				Reg:   reg,
			})
		}
	}
	return srcs
}

// N returns the partition count.
func (c *Cluster) N() int { return len(c.parts) }

// Route maps an object name to its partition index.
func (c *Cluster) Route(name string) int { return RouteName(name, len(c.parts)) }

// Part returns partition i's engine.
func (c *Cluster) Part(i int) *core.DB { return c.parts[i] }

// For returns the engine the named object routes to.
func (c *Cluster) For(name string) *core.DB { return c.parts[c.Route(name)] }

// Obs returns the cluster-level registry (nil when none was configured).
func (c *Cluster) Obs() *obs.Registry { return c.reg }

// Reports returns the per-partition recovery reports of a Recover-opened
// cluster (zero-valued entries for fresh partitions; nil after Open).
func (c *Cluster) Reports() []recovery.Report { return c.reports }

// Protocol returns the partitions' shared protocol.
func (c *Cluster) Protocol() core.ProtocolKind { return c.parts[0].Protocol() }

// Stats returns the field-wise sum of every partition's engine counters.
func (c *Cluster) Stats() core.Stats {
	var s core.Stats
	for _, db := range c.parts {
		s = s.Plus(db.Stats())
	}
	return s
}

// Health returns the merged cluster health: admission figures summed,
// degradation sticky across partitions.
func (c *Cluster) Health() core.Health {
	var h core.Health
	for _, db := range c.parts {
		h = h.Merge(db.Health())
	}
	return h
}

// NumPages returns the total allocated pages across partitions.
func (c *Cluster) NumPages() int {
	total := 0
	for _, db := range c.parts {
		total += db.NumPages()
	}
	return total
}

// Close shuts every partition down (each drains its own admitted
// transactions and closes its own WAL) and joins the errors.
func (c *Cluster) Close() error {
	var errs []error
	for i, db := range c.parts {
		if db == nil {
			continue
		}
		if err := db.Close(); err != nil {
			errs = append(errs, fmt.Errorf("partition: close p%d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}
