package partition

import (
	"encoding/json"
	"hash/fnv"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/commut"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/txn"
)

// --- Router properties (satellite: purity, stability, distribution) ---

// TestRouteNameMatchesFNV1a pins the routing hash to the published FNV-1a
// 64-bit spec (via the standard library's implementation). This is the
// stability guarantee: the assignment is a pure function of (name, n) that
// no refactor can silently change without this test failing — the property
// that makes partition layouts survive restarts and binary upgrades.
func TestRouteNameMatchesFNV1a(t *testing.T) {
	names := []string{"", "Acct0", "Acct17", "Enc", "Enc3", "a", "ab", "ba", "object/with/path"}
	for _, n := range []int{2, 3, 4, 8, 16} {
		for _, name := range names {
			h := fnv.New64a()
			_, _ = h.Write([]byte(name))
			want := int(h.Sum64() % uint64(n))
			if got := RouteName(name, n); got != want {
				t.Fatalf("RouteName(%q, %d) = %d, want FNV-1a %d", name, n, got, want)
			}
		}
	}
}

func TestRouteNamePureAndInRange(t *testing.T) {
	for _, n := range []int{0, 1, 2, 5, 8} {
		for i := 0; i < 1000; i++ {
			name := "obj" + strconv.Itoa(i)
			a := RouteName(name, n)
			b := RouteName(name, n)
			if a != b {
				t.Fatalf("RouteName(%q, %d) not pure: %d vs %d", name, n, a, b)
			}
			if n <= 1 {
				if a != 0 {
					t.Fatalf("RouteName(%q, %d) = %d, want 0", name, n, a)
				}
			} else if a < 0 || a >= n {
				t.Fatalf("RouteName(%q, %d) = %d out of range", name, n, a)
			}
		}
	}
}

func TestRouteNameDistribution(t *testing.T) {
	const n, names = 8, 16000
	counts := make([]int, n)
	for i := 0; i < names; i++ {
		counts[RouteName("Acct"+strconv.Itoa(i), n)]++
	}
	// A fair hash gives each of 8 partitions ~12.5%; insist on at least 6%
	// so a degenerate hash (everything on one partition) cannot sneak in.
	for p, c := range counts {
		if c < names*6/100 {
			t.Fatalf("partition %d got %d/%d names — distribution collapsed: %v", p, c, names, counts)
		}
	}
}

func TestNameFor(t *testing.T) {
	if got := NameFor("Enc", 0, 1); got != "Enc" {
		t.Fatalf("NameFor with n=1 = %q, want the bare prefix", got)
	}
	for _, n := range []int{2, 4, 8} {
		seen := map[string]bool{}
		for p := 0; p < n; p++ {
			name := NameFor("Enc", p, n)
			if RouteName(name, n) != p {
				t.Fatalf("NameFor(Enc, %d, %d) = %q routes to %d", p, n, name, RouteName(name, n))
			}
			if seen[name] {
				t.Fatalf("NameFor(Enc, %d, %d) = %q already used", p, n, name)
			}
			seen[name] = true
		}
	}
}

// --- Cluster plumbing ---

// kvOID is the one object per partition the tests talk to; registerKV maps
// every name to page 1 of whichever partition it reached, so the value is
// per-partition state.
func kvOID(name string) txn.OID { return txn.OID{Type: "kv", Name: name} }

// registerKV is a write-free register hook (type registration + page
// allocation only) — the contract Recover demands.
func registerKV(_ int, db *core.DB) error {
	for db.NumPages() < 1 {
		db.AllocPage()
	}
	pg := core.PageOID(storage.PageID(1))
	return db.RegisterType(&core.ObjectType{
		Name:     "kv",
		Spec:     commut.KeyedSpec([]string{"get"}, []string{"set"}),
		ReadOnly: map[string]bool{"get": true},
		Methods: map[string]core.MethodFunc{
			"set": func(c *core.Ctx, self txn.OID, params []string) (string, error) {
				old, err := c.Call(pg, "readx")
				if err != nil {
					return "", err
				}
				if _, err := c.Call(pg, "write", params[0]); err != nil {
					return "", err
				}
				return old, nil
			},
			"get": func(c *core.Ctx, self txn.OID, params []string) (string, error) {
				return c.Call(pg, "read")
			},
		},
		Compensate: map[string]core.CompensateFunc{
			"set": func(params []string, result string) (string, []string, bool) {
				return "set", []string{result}, true
			},
		},
	})
}

func put(t *testing.T, c *Cluster, name, val string) {
	t.Helper()
	db := c.For(name)
	release, err := db.AdmitCtx(t.Context())
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	defer release()
	tx := db.Begin()
	if _, err := tx.Exec(kvOID(name), "set", val); err != nil {
		_ = tx.Abort()
		t.Fatalf("set %q: %v", name, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit %q: %v", name, err)
	}
}

func get(t *testing.T, c *Cluster, name string) string {
	t.Helper()
	db := c.For(name)
	tx := db.Begin()
	v, err := tx.Exec(kvOID(name), "get")
	if err != nil {
		_ = tx.Abort()
		t.Fatalf("get %q: %v", name, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit get %q: %v", name, err)
	}
	return v
}

func TestClusterMemOnlyAggregation(t *testing.T) {
	reg := obs.New()
	c, err := Open(Options{N: 4, Obs: reg, Register: registerKV})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer c.Close()
	if c.N() != 4 {
		t.Fatalf("N = %d, want 4", c.N())
	}
	for p := 0; p < 4; p++ {
		name := NameFor("obj", p, 4)
		put(t, c, name, "v"+strconv.Itoa(p))
		if got := get(t, c, name); got != "v"+strconv.Itoa(p) {
			t.Fatalf("partition %d: got %q", p, got)
		}
		// Per-partition engines really are independent: the commit landed on
		// exactly the routed partition.
		if n := c.Part(p).Stats().TxnsCommitted; n < 2 {
			t.Fatalf("partition %d: %d commits, want >= 2", p, n)
		}
	}
	// Aggregates sum the partitions.
	var want int64
	for p := 0; p < 4; p++ {
		want += c.Part(p).Stats().TxnsCommitted
	}
	if got := c.Stats().TxnsCommitted; got != want {
		t.Fatalf("cluster commits = %d, want %d", got, want)
	}
	if h := c.Health(); h.Inflight != 0 {
		t.Fatalf("cluster inflight = %d after quiesce, want 0", h.Inflight)
	}
	// The cluster registry carries per-partition p<i>.* projections plus
	// the cluster.* aggregates.
	var buf jsonBuf
	reg.WriteJSON(&buf)
	var m map[string]json.RawMessage
	if err := json.Unmarshal(buf.b, &m); err != nil {
		t.Fatalf("metrics json: %v\n%s", err, buf.b)
	}
	for _, key := range []string{"p0.engine.inflight", "p3.engine.inflight", "p1.engine", "cluster.partitions", "cluster.engine", "cluster.engine.inflight"} {
		if _, ok := m[key]; !ok {
			t.Fatalf("metrics missing %q:\n%s", key, buf.b)
		}
	}
}

type jsonBuf struct{ b []byte }

func (j *jsonBuf) Write(p []byte) (int, error) { j.b = append(j.b, p...); return len(p), nil }

func TestSingleWrapsEngine(t *testing.T) {
	db := core.Open(core.Options{})
	defer db.Close()
	c := Single(db)
	if c.N() != 1 {
		t.Fatalf("N = %d", c.N())
	}
	if c.Part(0) != db || c.For("anything") != db {
		t.Fatal("Single does not route to the wrapped engine")
	}
	if c.Route("anything") != 0 {
		t.Fatal("single-partition route must be 0")
	}
}

// --- Durability: per-partition layout, recovery isolation ---

// TestRecoveryIsolation proves partitions recover independently: commit
// distinct values on all four partitions, close, then destroy partition
// 2's entire WAL directory. Recover must bring back partitions 0, 1, 3
// intact from their own p<i> dirs (partition 2 opens fresh) — recovery of
// partition i never reads partition j's directory.
func TestRecoveryIsolation(t *testing.T) {
	root := t.TempDir()
	opts := Options{
		N:        4,
		Engine:   core.Options{Durability: storage.GroupCommit},
		WALRoot:  root,
		Register: func(i int, db *core.DB) error { return registerKV(i, db) },
	}
	c, err := Open(opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	names := make([]string, 4)
	for p := 0; p < 4; p++ {
		names[p] = NameFor("obj", p, 4)
		put(t, c, names[p], "durable"+strconv.Itoa(p))
	}
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Layout: each partition's segments live under its own p<i> dir and
	// nowhere else.
	for p := 0; p < 4; p++ {
		segs, err := filepath.Glob(filepath.Join(Dir(root, p), "wal-*.seg"))
		if err != nil || len(segs) == 0 {
			t.Fatalf("partition %d: no segments under %s (err %v)", p, Dir(root, p), err)
		}
	}
	if stray, _ := filepath.Glob(filepath.Join(root, "wal-*.seg")); len(stray) != 0 {
		t.Fatalf("segments leaked to the cluster root: %v", stray)
	}

	// Destroy partition 2's log entirely.
	if err := os.RemoveAll(Dir(root, 2)); err != nil {
		t.Fatalf("remove p2: %v", err)
	}

	c2, reports, err := Recover(opts)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer c2.Close()
	if len(reports) != 4 {
		t.Fatalf("got %d reports", len(reports))
	}
	for p := 0; p < 4; p++ {
		got := get(t, c2, names[p])
		if p == 2 {
			if got != "" {
				t.Fatalf("partition 2 opened fresh but holds %q", got)
			}
			if len(reports[2].Winners) != 0 || reports[2].Redone != 0 {
				t.Fatalf("partition 2 report not zero: %+v", reports[2])
			}
			continue
		}
		if want := "durable" + strconv.Itoa(p); got != want {
			t.Fatalf("partition %d recovered %q, want %q", p, got, want)
		}
		if len(reports[p].Winners) == 0 {
			t.Fatalf("partition %d report shows no winners: %+v", p, reports[p])
		}
	}
}

// TestOpenRefusesRestart: Open is the fresh path; a root whose partition
// dirs already hold log records must be rejected (restarting is Recover's
// job), exactly mirroring core.OpenDurable's contract.
func TestOpenRefusesRestart(t *testing.T) {
	root := t.TempDir()
	opts := Options{
		N:        2,
		Engine:   core.Options{Durability: storage.GroupCommit},
		WALRoot:  root,
		Register: registerKV,
	}
	c, err := Open(opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	put(t, c, NameFor("obj", 0, 2), "x")
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := Open(opts); err == nil {
		t.Fatal("Open over existing history must fail")
	}
}

func TestDurableClusterNeedsRoot(t *testing.T) {
	if _, err := Open(Options{N: 2, Engine: core.Options{Durability: storage.GroupCommit}}); err == nil {
		t.Fatal("durable cluster without WALRoot must fail")
	}
	if _, _, err := Recover(Options{N: 2}); err == nil {
		t.Fatal("mem-only Recover must fail")
	}
}
