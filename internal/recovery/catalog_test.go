package recovery

import (
	"strings"
	"testing"

	"repro/internal/btree"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/enc"
	"repro/internal/list"
)

// buildCatalogued assembles a full database with a system catalog: the
// well-known first page holds the catalog, everything else is reachable
// from it — which is what makes recovery self-contained.
func buildCatalogued(t *testing.T, opts core.Options) (*core.DB, *catalog.Catalog, *enc.Encyclopedia) {
	t.Helper()
	db := core.Open(opts)
	cat, err := catalog.Install(db)
	if err != nil {
		t.Fatal(err)
	}
	trees, err := btree.Install(db)
	if err != nil {
		t.Fatal(err)
	}
	lists, err := list.Install(db)
	if err != nil {
		t.Fatal(err)
	}
	encs, err := enc.Install(db, trees, lists)
	if err != nil {
		t.Fatal(err)
	}
	encs.SetCatalog(cat)
	e, err := encs.New("Enc", 2, 4) // fanout 2: splits (and root moves) early
	if err != nil {
		t.Fatal(err)
	}
	return db, cat, e
}

// TestCatalogDrivenRecovery crashes a database whose B+ tree root has
// split several times, then recovers using only the catalog page — no
// out-of-band page ids.
func TestCatalogDrivenRecovery(t *testing.T) {
	db, cat, e := buildCatalogued(t, core.Options{Protocol: core.ProtocolOpenNested})

	keys := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}
	for _, k := range keys {
		tx := db.Begin()
		if _, err := tx.Exec(e.OID(), "insert", k, "text-"+k); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if e.Tree().Height() < 3 {
		t.Fatalf("want root splits before the crash, height = %d", e.Tree().Height())
	}
	// Catalog must have followed the root.
	entry, err := cat.Get(catalog.KindTree, "EncIndex")
	if err != nil {
		t.Fatal(err)
	}
	if _, root, _ := catalog.TreeFields(entry); root == 2 {
		t.Fatal("catalog still points at the original root")
	}

	// One in-flight loser.
	loser := db.Begin()
	if _, err := loser.Exec(e.OID(), "insert", "LOSER", "x"); err != nil {
		t.Fatal(err)
	}

	disk, wal := db.CrashImage()
	catPage := cat.PageID() // the only well-known location

	var e2 *enc.Encyclopedia
	db2, rep, err := Recover(disk, wal, core.Options{Protocol: core.ProtocolOpenNested}, func(d *core.DB) error {
		trees, err := btree.Install(d)
		if err != nil {
			return err
		}
		lists, err := list.Install(d)
		if err != nil {
			return err
		}
		encs, err := enc.Install(d, trees, lists)
		if err != nil {
			return err
		}
		cat2 := catalog.Attach(d, catPage)
		encs.SetCatalog(cat2)
		e2, err = encs.AttachFromCatalog(cat2, "Enc")
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Losers) != 1 {
		t.Fatalf("losers = %v", rep.Losers)
	}

	check := db2.Begin()
	for _, k := range keys {
		got, err := check.Exec(e2.OID(), "search", k)
		if err != nil {
			t.Fatal(err)
		}
		if got != "text-"+k {
			t.Fatalf("search(%s) = %q after recovery", k, got)
		}
	}
	if got, _ := check.Exec(e2.OID(), "search", "LOSER"); got != "" {
		t.Fatalf("loser survived: %q", got)
	}
	seq, err := check.Exec(e2.OID(), "readSeq")
	if err != nil {
		t.Fatal(err)
	}
	_ = check.Commit()
	if strings.Contains(seq, "LOSER") {
		t.Fatalf("loser in list: %q", seq)
	}
	for _, k := range keys {
		if !strings.Contains(seq, k+"=text-"+k) {
			t.Fatalf("readSeq missing %s: %q", k, seq)
		}
	}

	// The recovered database keeps working: more inserts including splits.
	tx := db2.Begin()
	if _, err := tx.Exec(e2.OID(), "insert", "iota", "post-crash"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2 := db2.Begin()
	got, _ := tx2.Exec(e2.OID(), "search", "iota")
	_ = tx2.Commit()
	if got != "post-crash" {
		t.Fatalf("post-recovery insert lost: %q", got)
	}
}
