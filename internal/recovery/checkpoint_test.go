package recovery

import (
	"errors"
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/storage"
)

// TestRecoverFromCheckpointReplaysOnlySuffix: after a checkpoint, recovery
// starts from the image and redoes ONLY the records above the barrier —
// the Report.Redone accounting the checkpoint exists to shrink — and dead
// segments below the barrier are actually gone from disk.
func TestRecoverFromCheckpointReplaysOnlySuffix(t *testing.T) {
	dir := t.TempDir()
	opts := core.Options{Durability: storage.GroupCommit, WALDir: dir, WALSegmentSize: 512}
	rp := &regPages{}
	db, err := core.OpenDurable(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := registerKV(db, rp); err != nil {
		t.Fatal(err)
	}
	// Phase 1: enough traffic to span several 512-byte segments.
	for i := 0; i < 25; i++ {
		put(t, db, "a", fmt.Sprintf("pre-%d", i))
	}
	put(t, db, "b", "pre-b")

	res, err := db.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped || res.LSN == 0 {
		t.Fatalf("checkpoint did not run: %+v", res)
	}
	if res.TruncatedSegments == 0 {
		t.Fatalf("no segments truncated despite %d-byte segments: %+v", 512, res)
	}

	// Phase 2: the suffix recovery must replay.
	put(t, db, "a", "post-a")
	put(t, db, "c", "post-c")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	records, err := storage.ReadWALDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) == 0 || records[0].LSN == 1 {
		t.Fatalf("log not truncated: first surviving LSN %d", records[0].LSN)
	}
	var suffixUpdates, totalUpdates int
	for _, r := range records {
		if r.Kind != storage.RecUpdate {
			continue
		}
		totalUpdates++
		if r.LSN > res.LSN {
			suffixUpdates++
		}
	}
	if suffixUpdates == 0 || suffixUpdates >= totalUpdates+26 {
		t.Fatalf("test not meaningful: %d suffix of %d surviving updates", suffixUpdates, totalUpdates)
	}

	db2, rep, err := RecoverDir(dir, opts, func(d *core.DB) error { return registerKV(d, rp) })
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if rep.CheckpointLSN != res.LSN {
		t.Fatalf("Report.CheckpointLSN = %d, want %d", rep.CheckpointLSN, res.LSN)
	}
	if rep.Redone != suffixUpdates {
		t.Fatalf("Report.Redone = %d, want exactly the %d post-checkpoint updates", rep.Redone, suffixUpdates)
	}
	// The image + suffix reconstruct the full state, pre- and post-barrier.
	if v := get(t, db2, "a"); v != "post-a" {
		t.Fatalf("a = %q, want post-a", v)
	}
	if v := get(t, db2, "b"); v != "pre-b" {
		t.Fatalf("b = %q, want pre-b (checkpoint image only)", v)
	}
	if v := get(t, db2, "c"); v != "post-c" {
		t.Fatalf("c = %q, want post-c", v)
	}
	// The recovered engine checkpoints too (the seeded checkpointer).
	res2, err := db2.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Skipped && res2.LSN <= res.LSN {
		t.Fatalf("post-recovery checkpoint went backwards: %+v", res2)
	}
}

// TestRecoverTornCheckpointFallsBackToFullReplay: a corrupt checkpoint is
// ignored and recovery replays the whole log — valid because the log was
// not truncated under that checkpoint (large segments, nothing deletable).
func TestRecoverTornCheckpointFallsBackToFullReplay(t *testing.T) {
	dir := t.TempDir()
	// Default (large) segments: one segment, truncation never removes it.
	opts := core.Options{Durability: storage.GroupCommit, WALDir: dir}
	rp := &regPages{}
	db, err := core.OpenDurable(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := registerKV(db, rp); err != nil {
		t.Fatal(err)
	}
	put(t, db, "a", "v1")
	res, err := db.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	put(t, db, "a", "v2")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the checkpoint the way a crash mid-write would.
	raw, err := os.ReadFile(res.Path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(res.Path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	db2, rep, err := RecoverDir(dir, opts, func(d *core.DB) error { return registerKV(d, rp) })
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if rep.CheckpointLSN != 0 {
		t.Fatalf("torn checkpoint trusted: CheckpointLSN = %d", rep.CheckpointLSN)
	}
	if v := get(t, db2, "a"); v != "v2" {
		t.Fatalf("a = %q after full-replay fallback, want v2", v)
	}
}

// TestRecoverDirLogTruncatedGuard: a truncated log with no valid checkpoint
// to cover the missing prefix must refuse to recover — replaying only a
// suffix silently loses committed state.
func TestRecoverDirLogTruncatedGuard(t *testing.T) {
	dir := t.TempDir()
	opts := core.Options{Durability: storage.GroupCommit, WALDir: dir, WALSegmentSize: 512}
	rp := &regPages{}
	db, err := core.OpenDurable(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := registerKV(db, rp); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		put(t, db, "a", fmt.Sprintf("v-%d", i))
	}
	res, err := db.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if res.TruncatedSegments == 0 {
		t.Fatalf("expected truncation: %+v", res)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the only checkpoint: now the truncated prefix is covered by
	// nothing, and recovery must say so instead of guessing.
	raw, err := os.ReadFile(res.Path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(res.Path, raw[:len(raw)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = RecoverDir(dir, opts, func(d *core.DB) error { return registerKV(d, rp) })
	if !errors.Is(err, ErrLogTruncated) {
		t.Fatalf("err = %v, want ErrLogTruncated", err)
	}
}

// TestOpenDurableRefusesCheckpointDir: OpenDurable is for empty
// directories; one holding a checkpoint file needs RecoverDir even if no
// segment survived.
func TestOpenDurableRefusesCheckpointDir(t *testing.T) {
	dir := t.TempDir()
	if _, err := checkpoint.Write(dir, &checkpoint.Snapshot{LSN: 7, PageSize: 64, Pages: map[storage.PageID]string{}}); err != nil {
		t.Fatal(err)
	}
	_, err := core.OpenDurable(core.Options{Durability: storage.GroupCommit, WALDir: dir})
	if err == nil {
		t.Fatal("OpenDurable over a checkpoint-bearing dir must fail")
	}
}

// TestPeriodicCheckpointTriggers: the background loop fires on its own —
// by interval and by WAL-bytes growth — and the periodically-checkpointed
// directory recovers with a bounded redo pass.
func TestPeriodicCheckpointTriggers(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts core.Options
	}{
		{"interval", core.Options{CheckpointInterval: 20 * time.Millisecond}},
		{"bytes", core.Options{CheckpointBytes: 1024}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			opts := tc.opts
			opts.Durability = storage.GroupCommit
			opts.WALDir = dir
			opts.WALSegmentSize = 512
			rp := &regPages{}
			db, err := core.OpenDurable(opts)
			if err != nil {
				t.Fatal(err)
			}
			if err := registerKV(db, rp); err != nil {
				t.Fatal(err)
			}
			deadline := time.Now().Add(10 * time.Second)
			i := 0
			for {
				put(t, db, "a", fmt.Sprintf("v-%d", i))
				i++
				if _, _, err := checkpoint.Latest(dir); err == nil {
					break
				}
				if time.Now().After(deadline) {
					t.Fatal("background checkpointer never fired")
				}
				time.Sleep(2 * time.Millisecond)
			}
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
			db2, rep, err := RecoverDir(dir, opts, func(d *core.DB) error { return registerKV(d, rp) })
			if err != nil {
				t.Fatal(err)
			}
			defer db2.Close()
			if rep.CheckpointLSN == 0 {
				t.Fatal("recovery ignored the background checkpoint")
			}
			if v := get(t, db2, "a"); v != fmt.Sprintf("v-%d", i-1) {
				t.Fatalf("a = %q, want v-%d", v, i-1)
			}
		})
	}
}
