package recovery

import (
	"errors"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/storage"
)

// TestRecoveryAfterPoisonReplaysOnlyAckedCommits is the no-silent-loss
// acceptance check for the degraded-mode policy: an increment-only
// workload runs until an injected fsync failure poisons the WAL. Every
// commit acknowledged before the poison must survive the restart; every
// commit attempted after it must have been rejected with ErrWALPoisoned
// (never silently dropped).
//
// A rejected commit is allowed to REAPPEAR after restart: a commit whose
// fsync errored is in doubt — its frames may have reached the platter
// before the failure — and recovery trusts the log. What is forbidden is
// the converse: an acknowledged commit that recovery loses. Only commits
// that reached the durability wait before the engine flipped degraded can
// be in doubt; gate-rejected ones never logged a commit record.
func TestRecoveryAfterPoisonReplaysOnlyAckedCommits(t *testing.T) {
	dir := t.TempDir()
	opts := core.Options{Durability: storage.GroupCommit, WALDir: dir, DisableTrace: true}
	ap := &acctPages{}
	db, err := core.OpenDurable(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := registerAcct(db, ap, 1); err != nil {
		t.Fatal(err)
	}

	// Healthy phase: each committed transaction adds exactly 1.
	acked := 0
	for i := 0; i < 20; i++ {
		tx := db.Begin()
		if _, err := tx.Exec(acctOID, "add", "0", "1"); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("healthy commit %d: %v", i, err)
		}
		acked++
	}

	// Fault phase: the WAL's fsync fails from here on. No transaction may
	// be acknowledged; each must surface the poison.
	name, spec, err := fault.ParseArm("wal.fsync=error(injected fsync failure)")
	if err != nil {
		t.Fatal(err)
	}
	fault.Default.Arm(name, *spec)
	defer fault.Default.Disarm(name)
	inDoubt := 0
	for i := 0; i < 10; i++ {
		tx := db.Begin()
		if _, err := tx.Exec(acctOID, "add", "0", "1"); err != nil {
			// Degraded-mode aborts of earlier rejected commits can conflict
			// transiently; the attempt simply doesn't count as acked.
			_ = tx.Abort()
			continue
		}
		err := tx.Commit()
		if err == nil {
			t.Fatalf("commit %d acknowledged on a poisoned WAL", i)
		}
		if !errors.Is(err, storage.ErrWALPoisoned) {
			t.Fatalf("commit %d: err = %v, want ErrWALPoisoned", i, err)
		}
		if db.Degraded() == nil {
			// Rejected by the durability wait itself, before the engine
			// flipped: this commit record may have hit the disk.
			inDoubt++
		} else if i == 0 {
			// The first rejection both logged a commit record and flipped
			// the engine; it is the canonical in-doubt case.
			inDoubt++
		}
	}
	if db.Degraded() == nil {
		t.Fatal("engine not degraded after poisoned commits")
	}
	_ = db.Close() // returns the sticky poison; the "crash"
	fault.Default.Disarm(name)

	// Restart: recovery replays exactly the acked prefix.
	db2, rep, err := RecoverDir(dir, opts, func(d *core.DB) error {
		return registerAcct(d, ap, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	got := sumBalances(t, db2, 1)
	if got < acked {
		t.Fatalf("SILENT LOSS: recovered balance = %d < %d acked increments (winners %d, losers %d)",
			got, acked, len(rep.Winners), len(rep.Losers))
	}
	if got > acked+inDoubt {
		t.Fatalf("recovered balance = %d, want at most %d acked + %d in-doubt (winners %d, losers %d)",
			got, acked, inDoubt, len(rep.Winners), len(rep.Losers))
	}
	acked = got // the recovered state is the new baseline
	if db2.Degraded() != nil {
		t.Fatal("recovered engine must start healthy")
	}

	// The recovered engine acknowledges commits again.
	tx := db2.Begin()
	if _, err := tx.Exec(acctOID, "add", "0", strconv.Itoa(1)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit after recovery: %v", err)
	}
	if got := sumBalances(t, db2, 1); got != acked+1 {
		t.Fatalf("post-recovery balance = %d, want %d", got, acked+1)
	}
}
