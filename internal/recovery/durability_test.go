package recovery

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/commut"
	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/txn"
)

// acctPages binds account indices to pages, the durability tests' catalog.
// Like regPages, the SAME bindings must be used before and after a crash.
type acctPages struct {
	pages []txn.OID
}

var acctOID = txn.OID{Type: "acct", Name: "ACCT"}

// registerAcct installs a bank-account type: "add" applies a signed delta
// to one account (keyed, so different accounts commute), compensated by
// the opposite delta; "bal" reads a balance. An empty page is balance 0.
func registerAcct(db *core.DB, ap *acctPages, n int) error {
	if ap.pages == nil {
		for i := 0; i < n; i++ {
			ap.pages = append(ap.pages, db.AllocPage())
		}
	}
	page := func(params []string) (txn.OID, error) {
		i, err := strconv.Atoi(params[0])
		if err != nil || i < 0 || i >= len(ap.pages) {
			return txn.OID{}, fmt.Errorf("acct: bad account %q", params[0])
		}
		return ap.pages[i], nil
	}
	typ := &core.ObjectType{
		Name:     "acct",
		Spec:     commut.KeyedSpec([]string{"bal"}, []string{"add"}),
		ReadOnly: map[string]bool{"bal": true},
		Methods: map[string]core.MethodFunc{
			"add": func(c *core.Ctx, self txn.OID, params []string) (string, error) {
				pg, err := page(params)
				if err != nil {
					return "", err
				}
				delta, err := strconv.Atoi(params[1])
				if err != nil {
					return "", err
				}
				old, err := c.Call(pg, "readx")
				if err != nil {
					return "", err
				}
				bal := 0
				if old != "" {
					if bal, err = strconv.Atoi(old); err != nil {
						return "", err
					}
				}
				if _, err := c.Call(pg, "write", strconv.Itoa(bal+delta)); err != nil {
					return "", err
				}
				return old, nil
			},
			"bal": func(c *core.Ctx, self txn.OID, params []string) (string, error) {
				pg, err := page(params)
				if err != nil {
					return "", err
				}
				v, err := c.Call(pg, "read")
				if err != nil {
					return "", err
				}
				if v == "" {
					v = "0"
				}
				return v, nil
			},
		},
		Compensate: map[string]core.CompensateFunc{
			"add": func(params []string, result string) (string, []string, bool) {
				delta, err := strconv.Atoi(params[1])
				if err != nil {
					return "", nil, false
				}
				return "add", []string{params[0], strconv.Itoa(-delta)}, true
			},
		},
	}
	return db.RegisterType(typ)
}

// fund credits every account in one committed transaction.
func fund(t *testing.T, db *core.DB, n, amount int) {
	t.Helper()
	tx := db.Begin()
	for i := 0; i < n; i++ {
		if _, err := tx.Exec(acctOID, "add", strconv.Itoa(i), strconv.Itoa(amount)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

// transferRetry moves amt between two random accounts, retrying on
// deadlock/timeout aborts.
func transferRetry(db *core.DB, rr *rand.Rand, n int) error {
	from, to := rr.Intn(n), rr.Intn(n)
	for to == from {
		to = rr.Intn(n)
	}
	amt := rr.Intn(20) + 1
	// Touch accounts in index order: "add" is keyed-commutative, so the
	// order is semantically free, and ordered acquisition avoids deadlock
	// livelock between opposite-direction transfers.
	d1, d2 := -amt, amt
	if to < from {
		from, to, d1, d2 = to, from, d2, d1
	}
	var err error
	for attempt := 0; attempt < 50; attempt++ {
		if attempt > 0 {
			time.Sleep(time.Duration(rr.Intn(1000)) * time.Microsecond)
		}
		tx := db.Begin()
		if _, err = tx.Exec(acctOID, "add", strconv.Itoa(from), strconv.Itoa(d1)); err != nil {
			_ = tx.Abort()
			continue
		}
		if _, err = tx.Exec(acctOID, "add", strconv.Itoa(to), strconv.Itoa(d2)); err != nil {
			_ = tx.Abort()
			continue
		}
		if err = tx.Commit(); err == nil {
			return nil
		}
	}
	return fmt.Errorf("transfer gave up: %w", err)
}

func sumBalances(t *testing.T, db *core.DB, n int) int {
	t.Helper()
	tx := db.Begin()
	total := 0
	for i := 0; i < n; i++ {
		v, err := tx.Exec(acctOID, "bal", strconv.Itoa(i))
		if err != nil {
			t.Fatal(err)
		}
		b, err := strconv.Atoi(v)
		if err != nil {
			t.Fatal(err)
		}
		total += b
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return total
}

// pageState flushes the pool and serializes every disk page — the
// byte-level identity the idempotence tests compare.
func pageState(t *testing.T, db *core.DB) string {
	t.Helper()
	if err := db.FlushAll(); err != nil {
		t.Fatal(err)
	}
	disk, _ := db.CrashImage()
	var sb strings.Builder
	for pid := storage.PageID(1); int(pid) <= disk.NumPages(); pid++ {
		v, err := disk.Read(pid)
		if err != nil {
			t.Fatalf("page %d: %v", pid, err)
		}
		fmt.Fprintf(&sb, "%d=%q\n", pid, v)
	}
	return sb.String()
}

// TestCrashImageAtomicity is the satellite regression test for the
// CrashImage race: snapshots are hammered while transfers run under a
// 2-frame pool (every access evicts), and every snapshot must recover to a
// money-conserving state. Before the snapshot barrier — and before
// LogUpdate moved inside the frame latch — an eviction could flush a page
// between the page write and its log append, yielding images whose disk
// showed effects the log never heard of.
func TestCrashImageAtomicity(t *testing.T) {
	const accounts, workers, funding = 6, 4, 1000
	ap := &acctPages{}
	db := core.Open(core.Options{
		PoolCapacity: 2,
		LockTimeout:  2 * time.Second,
		DisableTrace: true,
	})
	if err := registerAcct(db, ap, accounts); err != nil {
		t.Fatal(err)
	}
	fund(t, db, accounts, funding)

	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rr := rand.New(rand.NewSource(int64(100 + g)))
			for !stop.Load() {
				if err := transferRetry(db, rr, accounts); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}

	type image struct {
		disk *storage.MemStore
		wal  *storage.WAL
	}
	var images []image
	for i := 0; i < 15; i++ {
		disk, wal := db.CrashImage()
		images = append(images, image{disk, wal})
		time.Sleep(2 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}

	for i, img := range images {
		db2, _, err := Recover(img.disk, img.wal, core.Options{DisableTrace: true}, func(d *core.DB) error {
			return registerAcct(d, ap, accounts)
		})
		if err != nil {
			t.Fatalf("image %d: %v", i, err)
		}
		if got := sumBalances(t, db2, accounts); got != accounts*funding {
			t.Fatalf("image %d: total %d, want %d", i, got, accounts*funding)
		}
	}
}

// TestRecoveryIdempotenceRandomized: on randomized workloads with in-flight
// losers, (a) two recoveries from clones of the same crash image agree on
// the report and the byte-level page state, and (b) crashing immediately
// after a recovery and recovering again changes nothing — the
// crash-during-recovery contract behind CompensateEntry's
// consume-the-intent discards.
func TestRecoveryIdempotenceRandomized(t *testing.T) {
	keys := []string{"a", "b", "c"}
	for _, p := range []core.ProtocolKind{core.ProtocolOpenNested, core.Protocol2PLPage} {
		for seed := int64(0); seed < 4; seed++ {
			t.Run(fmt.Sprintf("%s/seed=%d", p, seed), func(t *testing.T) {
				rr := rand.New(rand.NewSource(seed))
				rp := &regPages{}
				db := core.Open(core.Options{Protocol: p, LockTimeout: 500 * time.Millisecond})
				if err := registerKV(db, rp); err != nil {
					t.Fatal(err)
				}
				for i, n := 0, rr.Intn(15)+5; i < n; i++ {
					put(t, db, keys[rr.Intn(3)], fmt.Sprintf("v%d-%d", seed, i))
				}
				// Leave in-flight transactions behind; a put that loses a lock
				// race is aborted instead (a completed abort is also a valid
				// pre-crash state).
				for l, n := 0, rr.Intn(3)+1; l < n; l++ {
					tx := db.Begin()
					live := false
					for i, n := 0, rr.Intn(3)+1; i < n; i++ {
						if _, err := tx.Exec(kvOID, "put", keys[rr.Intn(3)], fmt.Sprintf("loser%d-%d", l, i)); err != nil {
							break
						}
						live = true
					}
					if !live {
						_ = tx.Abort()
					}
				}
				disk, wal := db.CrashImage()

				reg := func(d *core.DB) error { return registerKV(d, rp) }
				db1, rep1, err := Recover(disk.Clone(), wal.Clone(), core.Options{Protocol: p}, reg)
				if err != nil {
					t.Fatal(err)
				}
				db2, rep2, err := Recover(disk.Clone(), wal.Clone(), core.Options{Protocol: p}, reg)
				if err != nil {
					t.Fatal(err)
				}
				if fmt.Sprint(rep1.Winners) != fmt.Sprint(rep2.Winners) || fmt.Sprint(rep1.Losers) != fmt.Sprint(rep2.Losers) {
					t.Fatalf("reports diverge:\n%+v\n%+v", rep1, rep2)
				}
				s1, s2 := pageState(t, db1), pageState(t, db2)
				if s1 != s2 {
					t.Fatalf("page state diverges:\n%s\nvs\n%s", s1, s2)
				}

				// (b) Crash right after recovery, without flushing: the second
				// pass must find no work and leave the pages untouched.
				disk3, wal3 := db1.CrashImage()
				db3, rep3, err := Recover(disk3, wal3, core.Options{Protocol: p}, reg)
				if err != nil {
					t.Fatal(err)
				}
				if len(rep3.Losers) != 0 {
					t.Fatalf("second recovery found losers: %+v", rep3)
				}
				if s3 := pageState(t, db3); s3 != s1 {
					t.Fatalf("re-recovery changed pages:\n%s\nvs\n%s", s3, s1)
				}
			})
		}
	}
}

func copyWALDir(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestOpenDurableRecoverDir: the basic durable round trip — commit through
// segment files, close, restart from the directory alone.
func TestOpenDurableRecoverDir(t *testing.T) {
	for _, mode := range []storage.Durability{storage.SyncOnCommit, storage.GroupCommit} {
		t.Run(mode.String(), func(t *testing.T) {
			dir := t.TempDir()
			opts := core.Options{Durability: mode, WALDir: dir, WALSegmentSize: 512}
			rp := &regPages{}
			db, err := core.OpenDurable(opts)
			if err != nil {
				t.Fatal(err)
			}
			if err := registerKV(db, rp); err != nil {
				t.Fatal(err)
			}
			put(t, db, "a", "persisted")
			put(t, db, "b", "also")
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}

			// OpenDurable must refuse to clobber the existing log.
			if _, err := core.OpenDurable(opts); err == nil {
				t.Fatal("OpenDurable over a non-empty dir must fail")
			}

			db2, rep, err := RecoverDir(dir, opts, func(d *core.DB) error {
				return registerKV(d, rp)
			})
			if err != nil {
				t.Fatal(err)
			}
			defer db2.Close()
			if len(rep.Winners) != 2 {
				t.Fatalf("winners = %v", rep.Winners)
			}
			if got := get(t, db2, "a"); got != "persisted" {
				t.Fatalf("a = %q", got)
			}
			if got := get(t, db2, "b"); got != "also" {
				t.Fatalf("b = %q", got)
			}
			// The recovered engine keeps appending durably to the same files.
			put(t, db2, "a", "again")
			if err := db2.Close(); err != nil {
				t.Fatal(err)
			}
			db3, _, err := RecoverDir(dir, opts, func(d *core.DB) error {
				return registerKV(d, rp)
			})
			if err != nil {
				t.Fatal(err)
			}
			defer db3.Close()
			if got := get(t, db3, "a"); got != "again" {
				t.Fatalf("after second restart a = %q", got)
			}
		})
	}
}

// TestDifferentialCrashMatrix is the acceptance check: recovery from the
// segment files must agree with recovery from an atomic in-memory
// CrashImage. Part one snapshots the directory mid-run at random moments
// (a simulated SIGKILL) and requires a money-conserving recovery; part two
// quiesces commits, leaves in-flight losers, and requires the two recovery
// paths to agree on winners and committed balances.
func TestDifferentialCrashMatrix(t *testing.T) {
	const accounts, workers, funding, transfers = 8, 4, 1000, 20
	for round := int64(0); round < 3; round++ {
		t.Run(fmt.Sprintf("round=%d", round), func(t *testing.T) {
			dir := t.TempDir()
			opts := core.Options{
				Durability:     storage.GroupCommit,
				WALDir:         dir,
				WALSegmentSize: 1024,
				LockTimeout:    2 * time.Second,
				DisableTrace:   true,
			}
			ap := &acctPages{}
			db, err := core.OpenDurable(opts)
			if err != nil {
				t.Fatal(err)
			}
			if err := registerAcct(db, ap, accounts); err != nil {
				t.Fatal(err)
			}
			fund(t, db, accounts, funding)

			var wg sync.WaitGroup
			errs := make(chan error, workers)
			for g := 0; g < workers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					rr := rand.New(rand.NewSource(round*100 + int64(g)))
					for i := 0; i < transfers; i++ {
						if err := transferRetry(db, rr, accounts); err != nil {
							errs <- err
							return
						}
					}
				}(g)
			}

			// Part one: copy the live directory mid-run — the moment is as
			// random as scheduling makes it — and recover the copy.
			rr := rand.New(rand.NewSource(round))
			time.Sleep(time.Duration(rr.Intn(20)+1) * time.Millisecond)
			midDir := filepath.Join(t.TempDir(), "mid")
			copyWALDir(t, dir, midDir)
			dbMid, _, err := RecoverDir(midDir, core.Options{Durability: storage.GroupCommit, WALDir: midDir, DisableTrace: true},
				func(d *core.DB) error { return registerAcct(d, ap, accounts) })
			if err != nil {
				t.Fatalf("mid-run recovery: %v", err)
			}
			if got := sumBalances(t, dbMid, accounts); got != accounts*funding && got != 0 {
				t.Fatalf("mid-run recovery total %d, want %d or 0", got, accounts*funding)
			}
			dbMid.Close()

			wg.Wait()
			close(errs)
			if err := <-errs; err != nil {
				t.Fatal(err)
			}

			// Leave in-flight losers: their records may or may not have hit
			// the files, so the two paths may disagree on the loser LIST —
			// but never on winners or committed state.
			for l := 0; l < 2; l++ {
				tx := db.Begin()
				if _, err := tx.Exec(acctOID, "add", strconv.Itoa(l), "7"); err != nil {
					_ = tx.Abort()
				}
			}

			copy2 := filepath.Join(t.TempDir(), "crash")
			copyWALDir(t, dir, copy2)
			disk, wal := db.CrashImage()

			reg := func(d *core.DB) error { return registerAcct(d, ap, accounts) }
			dbMem, repMem, err := Recover(disk, wal, core.Options{DisableTrace: true}, reg)
			if err != nil {
				t.Fatal(err)
			}
			dbFile, repFile, err := RecoverDir(copy2, core.Options{Durability: storage.GroupCommit, WALDir: copy2, DisableTrace: true}, reg)
			if err != nil {
				t.Fatal(err)
			}
			defer dbFile.Close()
			if fmt.Sprint(repMem.Winners) != fmt.Sprint(repFile.Winners) {
				t.Fatalf("winners diverge:\nmem:  %v\nfile: %v", repMem.Winners, repFile.Winners)
			}
			for i := 0; i < accounts; i++ {
				tx1, tx2 := dbMem.Begin(), dbFile.Begin()
				v1, err1 := tx1.Exec(acctOID, "bal", strconv.Itoa(i))
				v2, err2 := tx2.Exec(acctOID, "bal", strconv.Itoa(i))
				_ = tx1.Commit()
				_ = tx2.Commit()
				if err1 != nil || err2 != nil {
					t.Fatal(err1, err2)
				}
				if v1 != v2 {
					t.Fatalf("account %d: mem=%s file=%s", i, v1, v2)
				}
			}
			if got := sumBalances(t, dbFile, accounts); got != accounts*funding {
				t.Fatalf("file recovery total %d, want %d", got, accounts*funding)
			}
			db.Close()
		})
	}
}
