package recovery

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/btree"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/enc"
	"repro/internal/list"
)

// TestCrashDuringConcurrencyIntegrity pulls the plug WHILE concurrent
// transactions are running (a prefix-consistent disk+log snapshot, disk
// cloned before the log so the WAL rule "log ahead of data" holds), then
// recovers and verifies the database's structural integrity:
//
//   - the index and the sequential path agree on the key set
//     (Figure 2's two access paths name the same items);
//   - every indexed key resolves to a well-formed item;
//   - the recovered database accepts new work.
//
// The committed-set is timing-dependent (that is the point of a random
// crash instant), so the assertions are invariants, not exact contents.
func TestCrashDuringConcurrencyIntegrity(t *testing.T) {
	for round := 0; round < 6; round++ {
		round := round
		t.Run(fmt.Sprintf("round=%d", round), func(t *testing.T) {
			db, cat, e := buildCatalogued(t, core.Options{
				Protocol:    core.ProtocolOpenNested,
				LockTimeout: 2 * time.Second,
			})
			catPage := cat.PageID()

			stop := make(chan struct{})
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					r := rand.New(rand.NewSource(int64(round*31 + w)))
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						k := fmt.Sprintf("w%dk%d", w, r.Intn(6))
						tx := db.Begin()
						var err error
						if r.Intn(4) == 0 {
							_, err = tx.Exec(e.OID(), "delete", k)
						} else {
							_, err = tx.Exec(e.OID(), "insert", k, fmt.Sprintf("v%d", i))
						}
						if err == nil {
							_ = tx.Commit()
						} else {
							_ = tx.Abort()
						}
					}
				}(w)
			}
			// Let the workers race, then pull the plug mid-flight.
			time.Sleep(time.Duration(20+round*15) * time.Millisecond)
			disk, wal := db.CrashImage()
			close(stop)
			wg.Wait()

			var e2 *enc.Encyclopedia
			db2, _, err := Recover(disk, wal, core.Options{Protocol: core.ProtocolOpenNested},
				func(d *core.DB) error {
					trees, err := btree.Install(d)
					if err != nil {
						return err
					}
					lists, err := list.Install(d)
					if err != nil {
						return err
					}
					encs, err := enc.Install(d, trees, lists)
					if err != nil {
						return err
					}
					c2 := catalog.Attach(d, catPage)
					encs.SetCatalog(c2)
					e2, err = encs.AttachFromCatalog(c2, "Enc")
					return err
				})
			if err != nil {
				t.Fatal(err)
			}

			// Invariant: both access paths agree.
			tx := db2.Begin()
			scan, err := tx.Exec(e2.Tree().OID(), "scan")
			if err != nil {
				t.Fatal(err)
			}
			seq, err := tx.Exec(e2.OID(), "readSeq")
			if err != nil {
				t.Fatal(err)
			}
			indexKeys := map[string]bool{}
			if scan != "" {
				for _, pair := range strings.Split(scan, ";") {
					k, _, _ := strings.Cut(pair, ":")
					indexKeys[k] = true
				}
			}
			listKeys := map[string]bool{}
			if seq != "" {
				for _, pair := range strings.Split(seq, ";") {
					k, _, _ := strings.Cut(pair, "=")
					listKeys[k] = true
				}
			}
			for k := range indexKeys {
				if !listKeys[k] {
					t.Errorf("key %s indexed but missing from the list (scan=%q seq=%q)", k, scan, seq)
				}
			}
			for k := range listKeys {
				if !indexKeys[k] {
					t.Errorf("key %s listed but missing from the index", k)
				}
			}
			// Every indexed key resolves to a well-formed item.
			for k := range indexKeys {
				v, err := tx.Exec(e2.OID(), "search", k)
				if err != nil {
					t.Fatalf("search(%s) after recovery: %v", k, err)
				}
				if v == "" {
					t.Errorf("indexed key %s resolves to nothing", k)
				}
			}
			_ = tx.Commit()

			// The recovered database accepts new work.
			tx2 := db2.Begin()
			if _, err := tx2.Exec(e2.OID(), "insert", "postcrash", "alive"); err != nil {
				t.Fatal(err)
			}
			if err := tx2.Commit(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
