// Package recovery implements restart recovery for the engine — the
// "reliably, as if there were no failures" half of the paper's §1
// transaction contract — in the ARIES style, adapted to open nested
// transactions:
//
//  1. Analysis scans the log for transaction outcomes: roots with a commit
//     record are winners, roots with a completed abort are already undone,
//     everything else in flight at the crash is a loser.
//  2. Redo repeats history: every page update (including rollback CLRs) is
//     reapplied in log order, reconstructing the exact pre-crash page
//     state regardless of which buffered frames had been flushed.
//  3. Undo rolls the losers back, newest first. Each loser's surviving
//     undo entries — physical before-images (RecUpdate, non-CLR) and
//     logical compensation intents (RecIntent), minus everything a
//     RecDiscard or an intent's supersede-list invalidated — are executed
//     in reverse LSN order: physical entries restore before-images (logged
//     as CLRs), logical entries re-run the compensating operation through
//     a fresh engine, which requires the application's object types to be
//     registered again (code cannot be logged).
//
// Granularity caveat (documented in DESIGN.md §4b): a crash inside a
// single compensating operation recovers to that compensation's boundary —
// its completed sub-operations are permanent (nested top actions), and the
// re-run relies on the compensation's miss-tolerance. All built-in
// compensations (btree, list, enc, banking) are miss-tolerant.
package recovery

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/cc"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/span"
	"repro/internal/storage"
)

// Recovery errors.
var (
	// ErrRedoPageGap means redo could not materialize a logged page id
	// within the allocation bound — the log references a page the store
	// can never reach, which is corruption, not a recoverable state.
	ErrRedoPageGap = errors.New("recovery: redo page unreachable within allocation bound")
	// ErrLogTruncated means the surviving log starts above LSN 1 but no
	// complete checkpoint covers the missing prefix. Recovering anyway
	// would silently drop history, so this is a hard stop.
	ErrLogTruncated = errors.New("recovery: log is truncated but no valid checkpoint covers it")
)

// Report summarizes a recovery pass.
type Report struct {
	// Winners are committed transactions whose effects were redone.
	Winners []string
	// Losers are in-flight transactions that were rolled back.
	Losers []string
	// CheckpointLSN is the barrier of the checkpoint recovery started
	// from (0 = full replay from LSN 1).
	CheckpointLSN uint64
	// Redone counts reapplied page updates.
	Redone int
	// PhysicalUndos and LogicalUndos count executed undo entries.
	PhysicalUndos int
	LogicalUndos  int
	// Phase durations: outcome analysis, history redo, and loser undo
	// (including recovery-time compensations). Also published as
	// recovery.phase events on the recovered engine's flight recorder.
	AnalysisTime time.Duration
	RedoTime     time.Duration
	UndoTime     time.Duration
}

// RegisterTypes re-registers the application's object types on the
// recovered engine; logical undo needs the method implementations.
type RegisterTypes func(db *core.DB) error

// Recover brings a crashed database back: disk and wal come from
// core.(*DB).CrashImage (or a real restart), opts configure the new engine
// (Protocol etc. — Store/WAL are set by Recover), and registerTypes
// reinstalls the application's object model. It returns the recovered,
// ready-to-use engine.
func Recover(disk *storage.MemStore, wal *storage.WAL, opts core.Options, registerTypes RegisterTypes) (*core.DB, Report, error) {
	records := wal.Records()
	return recoverWith(disk, records, storage.NewWALFromRecords(records), nil, opts, registerTypes)
}

// RecoverDir brings a database back from its WAL segment directory — the
// real-restart path. When the directory holds a complete checkpoint
// (newest valid wins; torn ones from a crash mid-checkpoint are skipped by
// checksum), the store is seeded from its page image and redo replays only
// the log suffix above its barrier LSN; otherwise the segments are opened
// with the torn-tail rule (the last segment is truncated at the first bad
// checksum) and history is redone in full into a fresh store (every page
// update carries its full after-image, so the log alone reconstructs the
// pre-crash pages). Losers are undone, and the returned engine keeps
// appending to the same segment files, with a checkpointer attached per
// opts.CheckpointInterval/CheckpointBytes. A MemOnly durability in opts is
// promoted to GroupCommit: an engine opened over segment files stays
// durable.
func RecoverDir(dir string, opts core.Options, registerTypes RegisterTypes) (*core.DB, Report, error) {
	fw, records, err := storage.OpenFileWAL(dir, storage.FileWALOptions{
		SegmentSize: opts.WALSegmentSize,
		Durability:  opts.Durability,
	})
	if err != nil {
		return nil, Report{}, err
	}
	ckpt, _, cerr := checkpoint.Latest(dir)
	if cerr != nil && !errors.Is(cerr, checkpoint.ErrNoCheckpoint) {
		_ = fw.Close()
		return nil, Report{}, cerr
	}
	// A log whose first surviving record is above LSN 1 was truncated by a
	// checkpoint; recovering without one (or with one that leaves a gap to
	// the first record) would silently drop history.
	if len(records) > 0 {
		first := records[0].LSN
		if ckpt == nil && first > 1 {
			_ = fw.Close()
			return nil, Report{}, fmt.Errorf("%w: first surviving record is LSN %d", ErrLogTruncated, first)
		}
		if ckpt != nil && first > ckpt.LSN+1 {
			_ = fw.Close()
			return nil, Report{}, fmt.Errorf("%w: checkpoint covers through LSN %d but the log resumes at %d", ErrLogTruncated, ckpt.LSN, first)
		}
	}
	// Create the registry up front (unless disabled) so the file WAL
	// publishes into the same one the recovered engine will use.
	if opts.Obs == nil && !opts.DisableObs {
		opts.Obs = obs.New()
	}
	fw.SetObs(opts.Obs)
	disk := storage.NewMemStore(opts.PageSize)
	if ckpt != nil {
		disk = storage.NewMemStoreFromSnapshot(ckpt.Pages, ckpt.NextPage, ckpt.PageSize)
	}
	wal := storage.NewWALFromRecords(records)
	wal.SetSink(fw) // existing records are already in the files; only new appends flow
	db, rep, rerr := recoverWith(disk, records, wal, ckpt, opts, registerTypes)
	if rerr != nil {
		_ = fw.Close()
		return nil, rep, rerr
	}
	ck := db.EnableCheckpoints(fw, opts.CheckpointInterval, opts.CheckpointBytes)
	if ckpt != nil {
		ck.SeedLSN(ckpt.LSN)
	}
	return db, rep, nil
}

// recoverWith is the shared analysis/redo/undo pass. engineWAL must hold
// exactly records (plus whatever sink continues them); the recovered
// engine appends its CLRs, discards, and abort markers to it. When ckpt is
// non-nil, disk was seeded from its page image: redo skips records at or
// below its barrier LSN (already reflected), and analysis unions its
// in-flight set (a belt-and-braces measure — truncation keeps every
// barrier-active transaction's records, so the records themselves normally
// re-derive the same set).
func recoverWith(disk *storage.MemStore, records []storage.Record, engineWAL *storage.WAL, ckpt *checkpoint.Snapshot, opts core.Options, registerTypes RegisterTypes) (*core.DB, Report, error) {
	var rep Report
	var ckptLSN uint64
	if ckpt != nil {
		ckptLSN = ckpt.LSN
		rep.CheckpointLSN = ckpt.LSN
	}

	// --- Analysis ---------------------------------------------------------
	analysisStart := time.Now()
	committed := map[string]bool{}
	aborted := map[string]bool{}
	active := map[string]bool{}
	for _, r := range records {
		root := rootOf(r.Owner)
		switch r.Kind {
		case storage.RecCommit:
			committed[root] = true
			delete(active, root)
		case storage.RecAbort:
			if !strings.Contains(r.Owner, ":") { // skip diagnostic abort notes
				aborted[root] = true
				delete(active, root)
			}
		case storage.RecUpdate, storage.RecIntent:
			if !committed[root] && !aborted[root] {
				active[root] = true
			}
		}
	}
	if ckpt != nil {
		for _, root := range ckpt.Active {
			if !committed[root] && !aborted[root] {
				active[root] = true
			}
		}
	}

	rep.AnalysisTime = time.Since(analysisStart)

	// --- Redo: repeat history --------------------------------------------
	redoStart := time.Now()
	for _, r := range records {
		if r.Kind != storage.RecUpdate || r.LSN <= ckptLSN {
			continue
		}
		if err := writeThrough(disk, r.Page, r.After); err != nil {
			return nil, rep, fmt.Errorf("recovery: redo lsn %d: %w", r.LSN, err)
		}
		rep.Redone++
	}
	rep.RedoTime = time.Since(redoStart)

	// --- Open the engine on the recovered image ----------------------------
	opts.Store = disk
	opts.WAL = engineWAL
	db := core.Open(opts)
	// Transaction ids restart at 1 in every engine incarnation, but the log
	// spans all of them: push the sequence past every id it mentions, so
	// the recovery transactions below — and everything the recovered engine
	// runs afterwards — can never collide with a logged id. (Analysis keys
	// winners and losers by root id; a collision would let a committed
	// T<n> from an earlier epoch mask the crashed epoch's in-flight T<n>.)
	maxID := int64(0)
	for _, r := range records {
		root := rootOf(r.Owner)
		if n, perr := strconv.ParseInt(strings.TrimPrefix(root, "T"), 10, 64); perr == nil && n > maxID {
			maxID = n
		}
	}
	// Truncated records can no longer vouch for the ids they carried; the
	// checkpoint recorded the sequence high-water mark at its barrier.
	if ckpt != nil && int64(ckpt.MaxTxn) > maxID {
		maxID = int64(ckpt.MaxTxn)
	}
	db.BumpTxnSeq(maxID)
	if registerTypes != nil {
		if err := registerTypes(db); err != nil {
			return nil, rep, fmt.Errorf("recovery: re-registering types: %w", err)
		}
	}

	// --- Undo the losers ----------------------------------------------------
	undoStart := time.Now()
	discarded := map[uint64]bool{}
	for _, r := range records {
		switch r.Kind {
		case storage.RecDiscard:
			for _, l := range r.Refs {
				discarded[l] = true
			}
		case storage.RecIntent:
			for _, l := range r.Refs {
				discarded[l] = true
			}
		}
	}

	type pending struct {
		lsn     uint64
		root    string
		rec     storage.Record
		logical bool
	}
	var entries []pending
	for _, r := range records {
		root := rootOf(r.Owner)
		if !active[root] || discarded[r.LSN] {
			continue
		}
		switch r.Kind {
		case storage.RecUpdate:
			if !r.CLR {
				entries = append(entries, pending{lsn: r.LSN, root: root, rec: r})
			}
		case storage.RecIntent:
			entries = append(entries, pending{lsn: r.LSN, root: root, rec: r, logical: true})
		}
	}

	losers := make([]string, 0, len(active))
	for root := range active {
		losers = append(losers, root)
	}
	sort.Strings(losers)
	rep.Losers = losers

	// One GLOBAL backward sweep over every loser's surviving entries, in
	// strict reverse LSN order — NOT loser by loser. Per-loser undo is
	// unsound when losers interleave on an object: loser L's incomplete
	// page write is always newer than any other loser M's intent touching
	// that page (M's subtransaction released the page lock before L's
	// acquired it), so M's compensation must run only AFTER L's restore —
	// otherwise the physical restore clobbers the compensation's write and
	// M's forward effect silently survives the rollback. The same sweep
	// also orders non-commuting compensations of different losers newest
	// first, as logical undo requires.
	sort.Slice(entries, func(i, j int) bool { return entries[i].lsn > entries[j].lsn })
	for _, e := range entries {
		if !e.logical {
			// The restore's CLR consumes the update entry via a discard,
			// so a recovery that crashes and reruns skips it.
			if err := db.RestorePage(e.rec.Page, e.rec.Before, e.root, e.lsn); err != nil {
				return nil, rep, fmt.Errorf("recovery: physical undo of %s lsn %d: %w", e.root, e.lsn, err)
			}
			rep.PhysicalUndos++
			continue
		}
		obj, method, params, err := core.DecodeCompensationNote(e.rec.Note)
		if err != nil {
			return nil, rep, fmt.Errorf("recovery: %s lsn %d: %w", e.root, e.lsn, err)
		}
		// Each compensation is its own committed transaction (a nested top
		// action): interleaved losers' compensations may conflict, so they
		// cannot share transactions without deadlocking the single-threaded
		// sweep. CompensateEntry (not Exec) runs it in rollback mode and
		// consumes the intent in the compensation's own completion discard —
		// the crash-during-recovery idempotence contract. A plain Exec would
		// leave the intent live, and a recovery that crashed after the
		// compensation committed would replay it a second time.
		tx := db.Begin()
		if err := tx.CompensateEntry(obj, method, params, e.lsn); err != nil {
			_ = tx.Abort()
			return nil, rep, fmt.Errorf("recovery: compensation %s.%s for %s: %w", obj.Name, method, e.root, err)
		}
		if err := tx.Commit(); err != nil {
			return nil, rep, err
		}
		rep.LogicalUndos++
	}
	for i := len(losers) - 1; i >= 0; i-- {
		db.WAL().LogAbort(losers[i]) // the losers' aborts are now complete
	}
	rep.UndoTime = time.Since(undoStart)

	// The phases ran before (analysis, redo) or around (undo) the engine's
	// construction; stamp them onto its flight recorder retroactively so a
	// post-recovery timeline starts with the recovery story.
	startNote := ""
	if ckptLSN > 0 {
		startNote = fmt.Sprintf("from checkpoint @ LSN %d", ckptLSN)
	}
	if rec := db.Obs().Recorder(); rec != nil {
		rec.Record(obs.Event{Kind: obs.EvRecovery, Object: "analysis",
			Dur: rep.AnalysisTime, N: int64(len(records)), Note: startNote})
		rec.Record(obs.Event{Kind: obs.EvRecovery, Object: "redo",
			Dur: rep.RedoTime, N: int64(rep.Redone)})
		rec.Record(obs.Event{Kind: obs.EvRecovery, Object: "undo",
			Dur: rep.UndoTime, N: int64(rep.PhysicalUndos + rep.LogicalUndos),
			Note: fmt.Sprintf("%d losers", len(losers))})
	}
	// The same three phases as engine-track spans, so a Chrome export of a
	// post-recovery run opens with the recovery timeline.
	tr := db.Spans()
	tr.RecordEngine(span.Span{ID: "recovery/analysis", Kind: span.KRecovery,
		Name: "recovery: analysis", Start: analysisStart,
		End: analysisStart.Add(rep.AnalysisTime), N: int64(len(records)), Note: startNote})
	tr.RecordEngine(span.Span{ID: "recovery/redo", Kind: span.KRecovery,
		Name: "recovery: redo", Start: redoStart,
		End: redoStart.Add(rep.RedoTime), N: int64(rep.Redone)})
	tr.RecordEngine(span.Span{ID: "recovery/undo", Kind: span.KRecovery,
		Name: "recovery: undo", Start: undoStart,
		End:  undoStart.Add(rep.UndoTime),
		N:    int64(rep.PhysicalUndos + rep.LogicalUndos),
		Note: fmt.Sprintf("%d losers", len(losers))})

	for root := range committed {
		rep.Winners = append(rep.Winners, root)
	}
	sort.Strings(rep.Winners)
	// Make the recovery pass itself durable (abort markers, CLRs, discards)
	// before declaring the engine open; a no-op without a durable sink.
	if err := db.WAL().WaitDurable(db.WAL().LastLSN()); err != nil {
		return nil, rep, fmt.Errorf("recovery: flushing recovery records: %w", err)
	}
	return db, rep, nil
}

// RedoPage applies one update record's after-image to a store, allocating
// forward as needed — the redo step recovery replays crash suffixes with,
// exported so a replication follower's warm standby applies committed
// entries through the identical path.
func RedoPage(disk *storage.MemStore, pid storage.PageID, data string) error {
	return writeThrough(disk, pid, data)
}

// writeThrough writes a page image, allocating ids the snapshot may not
// have materialized yet (allocation is not logged; ids are monotone, so
// allocating forward until pid exists is faithful).
func writeThrough(disk *storage.MemStore, pid storage.PageID, data string) error {
	err := disk.Write(pid, data)
	if err == nil {
		return nil
	}
	if !errors.Is(err, storage.ErrPageNotFound) {
		return err
	}
	const allocBound = 1 << 20
	for i := 0; i < allocBound; i++ {
		id := disk.Allocate()
		if id >= pid {
			return disk.Write(pid, data)
		}
	}
	return fmt.Errorf("%w: page %d not reached after %d allocations", ErrRedoPageGap, pid, allocBound)
}

func rootOf(owner string) string {
	// Strip diagnostic suffixes like "T3.1:undo" before taking the root.
	if i := strings.IndexByte(owner, ':'); i >= 0 {
		owner = owner[:i]
	}
	return cc.RootOf(owner)
}
