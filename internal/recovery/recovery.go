// Package recovery implements restart recovery for the engine — the
// "reliably, as if there were no failures" half of the paper's §1
// transaction contract — in the ARIES style, adapted to open nested
// transactions:
//
//  1. Analysis scans the log for transaction outcomes: roots with a commit
//     record are winners, roots with a completed abort are already undone,
//     everything else in flight at the crash is a loser.
//  2. Redo repeats history: every page update (including rollback CLRs) is
//     reapplied in log order, reconstructing the exact pre-crash page
//     state regardless of which buffered frames had been flushed.
//  3. Undo rolls the losers back, newest first. Each loser's surviving
//     undo entries — physical before-images (RecUpdate, non-CLR) and
//     logical compensation intents (RecIntent), minus everything a
//     RecDiscard or an intent's supersede-list invalidated — are executed
//     in reverse LSN order: physical entries restore before-images (logged
//     as CLRs), logical entries re-run the compensating operation through
//     a fresh engine, which requires the application's object types to be
//     registered again (code cannot be logged).
//
// Granularity caveat (documented in DESIGN.md §4b): a crash inside a
// single compensating operation recovers to that compensation's boundary —
// its completed sub-operations are permanent (nested top actions), and the
// re-run relies on the compensation's miss-tolerance. All built-in
// compensations (btree, list, enc, banking) are miss-tolerant.
package recovery

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/storage"
)

// Report summarizes a recovery pass.
type Report struct {
	// Winners are committed transactions whose effects were redone.
	Winners []string
	// Losers are in-flight transactions that were rolled back.
	Losers []string
	// Redone counts reapplied page updates.
	Redone int
	// PhysicalUndos and LogicalUndos count executed undo entries.
	PhysicalUndos int
	LogicalUndos  int
}

// RegisterTypes re-registers the application's object types on the
// recovered engine; logical undo needs the method implementations.
type RegisterTypes func(db *core.DB) error

// Recover brings a crashed database back: disk and wal come from
// core.(*DB).CrashImage (or a real restart), opts configure the new engine
// (Protocol etc. — Store/WAL are set by Recover), and registerTypes
// reinstalls the application's object model. It returns the recovered,
// ready-to-use engine.
func Recover(disk *storage.MemStore, wal *storage.WAL, opts core.Options, registerTypes RegisterTypes) (*core.DB, Report, error) {
	var rep Report
	records := wal.Records()

	// --- Analysis ---------------------------------------------------------
	committed := map[string]bool{}
	aborted := map[string]bool{}
	active := map[string]bool{}
	for _, r := range records {
		root := rootOf(r.Owner)
		switch r.Kind {
		case storage.RecCommit:
			committed[root] = true
			delete(active, root)
		case storage.RecAbort:
			if !strings.Contains(r.Owner, ":") { // skip diagnostic abort notes
				aborted[root] = true
				delete(active, root)
			}
		case storage.RecUpdate, storage.RecIntent:
			if !committed[root] && !aborted[root] {
				active[root] = true
			}
		}
	}

	// --- Redo: repeat history --------------------------------------------
	for _, r := range records {
		if r.Kind != storage.RecUpdate {
			continue
		}
		if err := writeThrough(disk, r.Page, r.After); err != nil {
			return nil, rep, fmt.Errorf("recovery: redo lsn %d: %w", r.LSN, err)
		}
		rep.Redone++
	}

	// --- Open the engine on the recovered image ----------------------------
	opts.Store = disk
	opts.WAL = storage.NewWALFromRecords(records)
	db := core.Open(opts)
	if registerTypes != nil {
		if err := registerTypes(db); err != nil {
			return nil, rep, fmt.Errorf("recovery: re-registering types: %w", err)
		}
	}

	// --- Undo the losers ----------------------------------------------------
	discarded := map[uint64]bool{}
	for _, r := range records {
		switch r.Kind {
		case storage.RecDiscard:
			for _, l := range r.Refs {
				discarded[l] = true
			}
		case storage.RecIntent:
			for _, l := range r.Refs {
				discarded[l] = true
			}
		}
	}

	type pending struct {
		lsn     uint64
		rec     storage.Record
		logical bool
	}
	pendingByRoot := map[string][]pending{}
	for _, r := range records {
		root := rootOf(r.Owner)
		if !active[root] || discarded[r.LSN] {
			continue
		}
		switch r.Kind {
		case storage.RecUpdate:
			if !r.CLR {
				pendingByRoot[root] = append(pendingByRoot[root], pending{lsn: r.LSN, rec: r})
			}
		case storage.RecIntent:
			pendingByRoot[root] = append(pendingByRoot[root], pending{lsn: r.LSN, rec: r, logical: true})
		}
	}

	losers := make([]string, 0, len(active))
	for root := range active {
		losers = append(losers, root)
	}
	// Newest first, matching the usual undo order across transactions.
	sort.Sort(sort.Reverse(sort.StringSlice(losers)))
	rep.Losers = losers

	for _, root := range losers {
		entries := pendingByRoot[root]
		sort.Slice(entries, func(i, j int) bool { return entries[i].lsn > entries[j].lsn })

		tx := db.Begin() // the recovery transaction executing the undo
		for _, e := range entries {
			if !e.logical {
				if err := db.RestorePage(e.rec.Page, e.rec.Before, root); err != nil {
					_ = tx.Abort()
					return nil, rep, fmt.Errorf("recovery: physical undo of %s lsn %d: %w", root, e.lsn, err)
				}
				rep.PhysicalUndos++
				continue
			}
			obj, method, params, err := core.DecodeCompensationNote(e.rec.Note)
			if err != nil {
				_ = tx.Abort()
				return nil, rep, fmt.Errorf("recovery: %s lsn %d: %w", root, e.lsn, err)
			}
			if _, err := tx.Exec(obj, method, params...); err != nil {
				_ = tx.Abort()
				return nil, rep, fmt.Errorf("recovery: compensation %s.%s for %s: %w", obj.Name, method, root, err)
			}
			rep.LogicalUndos++
		}
		if err := tx.Commit(); err != nil {
			return nil, rep, err
		}
		db.WAL().LogAbort(root) // the loser's abort is now complete
	}

	for root := range committed {
		rep.Winners = append(rep.Winners, root)
	}
	sort.Strings(rep.Winners)
	return db, rep, nil
}

// writeThrough writes a page image, allocating ids the snapshot may not
// have materialized yet (allocation is not logged; ids are monotone, so
// allocating forward until pid exists is faithful).
func writeThrough(disk *storage.MemStore, pid storage.PageID, data string) error {
	err := disk.Write(pid, data)
	if err == nil {
		return nil
	}
	for i := 0; i < 1<<20; i++ {
		id := disk.Allocate()
		if id >= pid {
			return disk.Write(pid, data)
		}
	}
	return err
}

func rootOf(owner string) string {
	// Strip diagnostic suffixes like "T3.1:undo" before taking the root.
	if i := strings.IndexByte(owner, ':'); i >= 0 {
		owner = owner[:i]
	}
	return cc.RootOf(owner)
}
