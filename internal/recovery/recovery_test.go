package recovery

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/btree"
	"repro/internal/commut"
	"repro/internal/core"
	"repro/internal/enc"
	"repro/internal/list"
	"repro/internal/txn"
)

// regPages carries the page bindings a register type closure needs; the
// SAME bindings must be used before and after the crash (in a real system
// they would live in a catalog page — here the test passes them along).
type regPages struct {
	pages map[string]txn.OID
}

func registerKV(db *core.DB, rp *regPages) error {
	if rp.pages == nil {
		rp.pages = map[string]txn.OID{}
		for _, k := range []string{"a", "b", "c"} {
			rp.pages[k] = db.AllocPage()
		}
	}
	typ := &core.ObjectType{
		Name:     "kv",
		Spec:     commut.KeyedSpec([]string{"get"}, []string{"put"}),
		ReadOnly: map[string]bool{"get": true},
		Methods: map[string]core.MethodFunc{
			"put": func(c *core.Ctx, self txn.OID, params []string) (string, error) {
				pg := rp.pages[params[0]]
				old, err := c.Call(pg, "readx")
				if err != nil {
					return "", err
				}
				if _, err := c.Call(pg, "write", params[1]); err != nil {
					return "", err
				}
				return old, nil
			},
			"get": func(c *core.Ctx, self txn.OID, params []string) (string, error) {
				return c.Call(rp.pages[params[0]], "read")
			},
		},
		Compensate: map[string]core.CompensateFunc{
			"put": func(params []string, result string) (string, []string, bool) {
				return "put", []string{params[0], result}, true
			},
		},
	}
	return db.RegisterType(typ)
}

var kvOID = txn.OID{Type: "kv", Name: "KV"}

func get(t *testing.T, db *core.DB, key string) string {
	t.Helper()
	tx := db.Begin()
	v, err := tx.Exec(kvOID, "get", key)
	if err != nil {
		t.Fatal(err)
	}
	_ = tx.Commit()
	return v
}

func put(t *testing.T, db *core.DB, key, val string) {
	t.Helper()
	tx := db.Begin()
	if _, err := tx.Exec(kvOID, "put", key, val); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestCommittedSurvivesCrash(t *testing.T) {
	for _, p := range []core.ProtocolKind{core.ProtocolOpenNested, core.Protocol2PLPage} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			rp := &regPages{}
			db := core.Open(core.Options{Protocol: p})
			if err := registerKV(db, rp); err != nil {
				t.Fatal(err)
			}
			put(t, db, "a", "durable")
			// Crash WITHOUT flushing the buffer pool: the disk image is
			// stale, redo must reconstruct the committed write.
			disk, wal := db.CrashImage()

			db2, rep, err := Recover(disk, wal, core.Options{Protocol: p}, func(d *core.DB) error {
				return registerKV(d, rp)
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Winners) == 0 || rep.Redone == 0 {
				t.Fatalf("report = %+v", rep)
			}
			if got := get(t, db2, "a"); got != "durable" {
				t.Fatalf("after recovery a=%q, want durable", got)
			}
		})
	}
}

func TestInFlightRolledBackPhysical(t *testing.T) {
	// Under 2PL the loser's undo is purely physical.
	rp := &regPages{}
	db := core.Open(core.Options{Protocol: core.Protocol2PLPage})
	if err := registerKV(db, rp); err != nil {
		t.Fatal(err)
	}
	put(t, db, "a", "committed")

	// An in-flight transaction writes but never commits.
	tx := db.Begin()
	if _, err := tx.Exec(kvOID, "put", "a", "uncommitted"); err != nil {
		t.Fatal(err)
	}
	disk, wal := db.CrashImage()

	db2, rep, err := Recover(disk, wal, core.Options{Protocol: core.Protocol2PLPage}, func(d *core.DB) error {
		return registerKV(d, rp)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Losers) != 1 || rep.PhysicalUndos == 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.AnalysisTime <= 0 || rep.RedoTime <= 0 || rep.UndoTime <= 0 {
		t.Fatalf("report lacks phase timings: %+v", rep)
	}
	phases := map[string]bool{}
	for _, e := range db2.Obs().Recorder().Tail(0) {
		if e.Kind == "recovery.phase" {
			phases[e.Object] = true
		}
	}
	for _, p := range []string{"analysis", "redo", "undo"} {
		if !phases[p] {
			t.Fatalf("flight recorder missing recovery phase %q: %v", p, phases)
		}
	}
	if got := get(t, db2, "a"); got != "committed" {
		t.Fatalf("after recovery a=%q, want committed", got)
	}
}

func TestInFlightRolledBackLogically(t *testing.T) {
	// Under open nesting the loser's completed subtransactions are undone
	// by replaying the logged compensation intents.
	rp := &regPages{}
	db := core.Open(core.Options{Protocol: core.ProtocolOpenNested})
	if err := registerKV(db, rp); err != nil {
		t.Fatal(err)
	}
	put(t, db, "a", "a0")
	put(t, db, "b", "b0")

	tx := db.Begin()
	if _, err := tx.Exec(kvOID, "put", "a", "a1"); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(kvOID, "put", "b", "b1"); err != nil {
		t.Fatal(err)
	}
	// Crash before commit: both puts completed as subtransactions whose
	// page locks are long released — physical undo alone would be unsound,
	// the logged intents carry the logical undo.
	disk, wal := db.CrashImage()

	db2, rep, err := Recover(disk, wal, core.Options{Protocol: core.ProtocolOpenNested}, func(d *core.DB) error {
		return registerKV(d, rp)
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.LogicalUndos != 2 {
		t.Fatalf("logical undos = %d, want 2 (report %+v)", rep.LogicalUndos, rep)
	}
	if got := get(t, db2, "a"); got != "a0" {
		t.Fatalf("a=%q, want a0", got)
	}
	if got := get(t, db2, "b"); got != "b0" {
		t.Fatalf("b=%q, want b0", got)
	}
}

func TestCompletedAbortNotReundone(t *testing.T) {
	// A transaction that aborted (and compensated) BEFORE the crash is not
	// a loser: re-running its compensations would corrupt state.
	rp := &regPages{}
	db := core.Open(core.Options{Protocol: core.ProtocolOpenNested})
	if err := registerKV(db, rp); err != nil {
		t.Fatal(err)
	}
	put(t, db, "a", "a0")
	tx := db.Begin()
	if _, err := tx.Exec(kvOID, "put", "a", "aborted"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	put(t, db, "a", "final") // a later committed write

	disk, wal := db.CrashImage()
	db2, rep, err := Recover(disk, wal, core.Options{Protocol: core.ProtocolOpenNested}, func(d *core.DB) error {
		return registerKV(d, rp)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Losers) != 0 {
		t.Fatalf("losers = %v, want none", rep.Losers)
	}
	if got := get(t, db2, "a"); got != "final" {
		t.Fatalf("a=%q, want final", got)
	}
}

func TestRecoveryIdempotent(t *testing.T) {
	// Crashing again right after recovery and recovering again must land
	// in the same state (recovery's own actions are logged).
	rp := &regPages{}
	db := core.Open(core.Options{Protocol: core.ProtocolOpenNested})
	if err := registerKV(db, rp); err != nil {
		t.Fatal(err)
	}
	put(t, db, "a", "a0")
	tx := db.Begin()
	_, _ = tx.Exec(kvOID, "put", "a", "loser")
	disk, wal := db.CrashImage()

	db2, _, err := Recover(disk, wal, core.Options{Protocol: core.ProtocolOpenNested}, func(d *core.DB) error {
		return registerKV(d, rp)
	})
	if err != nil {
		t.Fatal(err)
	}
	disk2, wal2 := db2.CrashImage()
	db3, rep3, err := Recover(disk2, wal2, core.Options{Protocol: core.ProtocolOpenNested}, func(d *core.DB) error {
		return registerKV(d, rp)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep3.Losers) != 0 {
		t.Fatalf("second recovery found losers: %v", rep3.Losers)
	}
	if got := get(t, db3, "a"); got != "a0" {
		t.Fatalf("a=%q, want a0", got)
	}
}

// TestEncyclopediaCrashRecovery runs the full application stack: committed
// encyclopedia inserts survive, an in-flight multi-object insert (index +
// list + item) is fully undone on BOTH access paths.
func TestEncyclopediaCrashRecovery(t *testing.T) {
	build := func(opts core.Options) (*core.DB, *enc.Encyclopedia, error) {
		db := core.Open(opts)
		trees, err := btree.Install(db)
		if err != nil {
			return nil, nil, err
		}
		lists, err := list.Install(db)
		if err != nil {
			return nil, nil, err
		}
		encs, err := enc.Install(db, trees, lists)
		if err != nil {
			return nil, nil, err
		}
		e, err := encs.New("Enc", 4, 4)
		if err != nil {
			return nil, nil, err
		}
		return db, e, nil
	}

	db, e, err := build(core.Options{Protocol: core.ProtocolOpenNested})
	if err != nil {
		t.Fatal(err)
	}
	// Committed content.
	tx := db.Begin()
	if _, err := tx.Exec(e.OID(), "insert", "KEEP", "survives"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// In-flight insert at crash time.
	tx2 := db.Begin()
	if _, err := tx2.Exec(e.OID(), "insert", "GONE", "vanishes"); err != nil {
		t.Fatal(err)
	}
	disk, wal := db.CrashImage()

	// Recovery must rebuild with the SAME structural metadata. The module
	// instances (root pids, list head) are runtime state; the application
	// re-creates them from its catalog — here by re-running the same
	// installation sequence against the recovered store, which yields the
	// same page ids because allocation is deterministic.
	var e2 *enc.Encyclopedia
	db2, rep, err := Recover(disk, wal, core.Options{Protocol: core.ProtocolOpenNested}, func(d *core.DB) error {
		trees, err := btree.Install(d)
		if err != nil {
			return err
		}
		lists, err := list.Install(d)
		if err != nil {
			return err
		}
		encs, err := enc.Install(d, trees, lists)
		if err != nil {
			return err
		}
		e2, err = encs.Attach("Enc", 4, 4, 1, 2)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Losers) != 1 || rep.LogicalUndos == 0 {
		t.Fatalf("report = %+v", rep)
	}

	check := db2.Begin()
	keep, err := check.Exec(e2.OID(), "search", "KEEP")
	if err != nil {
		t.Fatal(err)
	}
	gone, err := check.Exec(e2.OID(), "search", "GONE")
	if err != nil {
		t.Fatal(err)
	}
	seq, err := check.Exec(e2.OID(), "readSeq")
	if err != nil {
		t.Fatal(err)
	}
	_ = check.Commit()

	if keep != "survives" {
		t.Fatalf("KEEP = %q", keep)
	}
	if gone != "" {
		t.Fatalf("GONE survived the crash: %q", gone)
	}
	if strings.Contains(seq, "GONE") {
		t.Fatalf("GONE still in the list: %q", seq)
	}
	if !strings.Contains(seq, "KEEP=survives") {
		t.Fatalf("KEEP missing from the list: %q", seq)
	}
}

// Property: random committed/in-flight mixes recover to exactly the
// committed prefix.
func TestPropertyCrashRecoveryMatchesCommitted(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rp := &regPages{}
		db := core.Open(core.Options{Protocol: core.ProtocolOpenNested, LockTimeout: 2 * time.Second})
		if err := registerKV(db, rp); err != nil {
			return false
		}
		model := map[string]string{"a": "", "b": "", "c": ""}
		keys := []string{"a", "b", "c"}
		// Committed transactions.
		for i := 0; i < 3+r.Intn(5); i++ {
			tx := db.Begin()
			ok := true
			staged := map[string]string{}
			for j := 0; j < 1+r.Intn(3); j++ {
				k := keys[r.Intn(3)]
				v := fmt.Sprintf("v%d-%d", i, j)
				if _, err := tx.Exec(kvOID, "put", k, v); err != nil {
					ok = false
					break
				}
				staged[k] = v
			}
			if !ok {
				_ = tx.Abort()
				continue
			}
			if r.Intn(4) == 0 {
				_ = tx.Abort() // aborted pre-crash: no effect
			} else {
				if tx.Commit() != nil {
					return false
				}
				for k, v := range staged {
					model[k] = v
				}
			}
		}
		// One in-flight loser.
		loser := db.Begin()
		for j := 0; j < 1+r.Intn(3); j++ {
			_, _ = loser.Exec(kvOID, "put", keys[r.Intn(3)], "loser")
		}
		disk, wal := db.CrashImage()
		db2, _, err := Recover(disk, wal, core.Options{Protocol: core.ProtocolOpenNested}, func(d *core.DB) error {
			return registerKV(d, rp)
		})
		if err != nil {
			return false
		}
		for _, k := range keys {
			tx := db2.Begin()
			got, err := tx.Exec(kvOID, "get", k)
			_ = tx.Commit()
			if err != nil || got != model[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
