package recovery

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/storage"
)

// TestWriteThroughAllocatesForward: redo may reference a page id the
// checkpoint image never materialized (allocation is not logged); the
// write-through path allocates forward until the id exists.
func TestWriteThroughAllocatesForward(t *testing.T) {
	disk := storage.NewMemStore(64)
	if err := writeThrough(disk, 5, "v5"); err != nil {
		t.Fatalf("writeThrough(5): %v", err)
	}
	got, err := disk.Read(5)
	if err != nil || got != "v5" {
		t.Fatalf("Read(5) = %q, %v", got, err)
	}
	// Earlier ids were allocated along the way and are writable in place.
	if err := disk.Write(3, "v3"); err != nil {
		t.Fatalf("gap page not allocated: %v", err)
	}
}

// TestWriteThroughPropagatesRealErrors: only ErrPageNotFound triggers the
// allocate-forward loop. Any other write failure must surface as itself —
// the regression where a stale `err` from the pre-allocation attempt was
// returned (reporting not-found) after the post-allocation write failed
// for a different reason.
func TestWriteThroughPropagatesRealErrors(t *testing.T) {
	disk := storage.NewMemStore(8)
	big := strings.Repeat("x", 64)
	err := writeThrough(disk, 2, big)
	if !errors.Is(err, storage.ErrPageTooLarge) {
		t.Fatalf("oversized redo payload: err = %v, want ErrPageTooLarge", err)
	}
	if errors.Is(err, ErrRedoPageGap) || errors.Is(err, storage.ErrPageNotFound) {
		t.Fatalf("real write error misclassified: %v", err)
	}
}

// TestWriteThroughCapTyped: an unreachable page id (corrupt record) stops
// after the allocation bound with the typed ErrRedoPageGap instead of
// looping forever or reporting a stale not-found.
func TestWriteThroughCapTyped(t *testing.T) {
	disk := storage.NewMemStore(64)
	const unreachable = storage.PageID(1<<20 + 1)
	err := writeThrough(disk, unreachable, "v")
	if !errors.Is(err, ErrRedoPageGap) {
		t.Fatalf("err = %v, want ErrRedoPageGap", err)
	}
}
