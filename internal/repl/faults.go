package repl

import "repro/internal/fault"

// Replication failpoints. Arm via fault.Default.ArmString, e.g.
// "repl.send=error(drop);p=0.3;seed=7" to make a lossy network, or
// "repl.append=error(refuse)" to make a follower reject appends.
var (
	// fpReplSend fires in transport.call before anything is written — an
	// injected error looks exactly like an unreachable peer.
	fpReplSend = fault.Point("repl.send")
	// fpReplAppend fires at the top of a follower's AppendEntries handler —
	// an injected error produces an unexplained rejection the leader must
	// absorb and retry.
	fpReplAppend = fault.Point("repl.append")
)
