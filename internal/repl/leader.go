package repl

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/partition"
	"repro/internal/span"
	"repro/internal/storage"
	"repro/internal/wire"
)

// maxAppendBatch caps the records carried by one AppendEntries message —
// catch-up proceeds in bounded frames instead of one giant message.
const maxAppendBatch = 128

// errDeposed is what a deposed (or majority-partitioned) leader's parked
// committers receive: it wraps storage.ErrWALPoisoned so the engine
// enters its established degraded mode locally, AND wire.ErrNotLeader so
// the server maps it to CodeNotLeader and the client redirects instead of
// declaring the commit in doubt.
var errDeposed = fmt.Errorf("repl: leadership lost while awaiting quorum: %w (%w)",
	storage.ErrWALPoisoned, wire.ErrNotLeader)

// becomeLeaderLocked switches to the leader role: fence the new term,
// start the per-peer replication loops (heartbeats flow immediately, so
// rivals stand down while the engine opens), and kick the promotion
// goroutine that opens/recovers the engine over the durable log.
func (n *Node) becomeLeaderLocked() {
	n.setRoleLocked(RoleLeader)
	n.leaderID = n.cfg.ID
	n.leaderAddr = n.cfg.Advertise
	if n.timer != nil {
		n.timer.Stop()
	}
	// Persist this term's fence before any entry can be appended under it:
	// a crash mid-promotion must not leave new-term entries claiming an
	// old term after restart.
	if n.termOfLocked(n.lastLSN+1) != n.term {
		n.addFenceLocked(n.term, n.lastLSN+1)
		n.persistLocked()
	}
	n.match = make(map[string]uint64, len(n.cfg.Peers))
	n.next = make(map[string]uint64, len(n.cfg.Peers))
	n.wake = make(map[string]chan struct{}, len(n.cfg.Peers))
	epoch := n.epoch
	for _, p := range n.cfg.Peers {
		n.match[p.ID] = 0
		n.next[p.ID] = n.lastLSN + 1
		ch := make(chan struct{}, 1)
		n.wake[p.ID] = ch
		n.wg.Add(1)
		go n.peerLoop(epoch, p, ch)
	}
	n.wg.Add(1)
	go n.promote(epoch, n.term)
}

// promote is the heavy half of taking leadership, run off the node mutex:
// close the follower's log handle, open (or recover) the engine over the
// same directory, interpose the quorum sink on its FileWAL, and append
// the no-op fence entry that lets prior-term entries commit (Raft's
// current-term commit rule). Promotion IS recovery — the replayed suffix
// is exactly the node's durable log, so "recovered ≥ acked" holds across
// the failover by construction.
func (n *Node) promote(epoch, term uint64) {
	defer n.wg.Done()
	start := time.Now()
	n.mu.Lock()
	if n.epoch != epoch || n.closed {
		n.mu.Unlock()
		return
	}
	fw := n.fw
	n.fw = nil
	n.standby = nil
	fresh := n.lastLSN == 0 && n.snapLSN == 0
	n.mu.Unlock()

	if fw != nil {
		_ = fw.Close() // release the directory for the engine's own FileWAL
	}
	db, err := n.cfg.OpenEngine(n.cfg.Dir, fresh)
	if err != nil {
		n.logf("repl: %s: promotion failed: %v", n.cfg.ID, err)
		n.mu.Lock()
		if n.epoch == epoch && !n.closed {
			// Fall back to follower; if the disk state is unreadable the
			// reload latches the failure.
			n.stepToFollowerLocked()
			if !n.rebuilding && n.fw == nil {
				if lerr := n.loadDiskStateLocked(); lerr != nil {
					n.failLocked(lerr)
				}
			}
		}
		n.mu.Unlock()
		return
	}

	// Recovery may have appended its own records (loser aborts, CLRs);
	// the engine's in-memory WAL holds the complete log, so reseed the
	// entry cache from it before replication resumes.
	recs := db.WAL().Records()
	sink := &quorumSink{n: n, epoch: epoch}
	db.WAL().WrapSink(func(inner storage.DurableSink) storage.DurableSink {
		sink.inner = inner
		if f, ok := inner.(*storage.FileWAL); ok {
			sink.fw = f
		}
		return sink
	})

	n.mu.Lock()
	if n.epoch != epoch || n.closed {
		n.mu.Unlock()
		_ = db.Close() // leadership lost while opening; nothing references db yet
		return
	}
	for _, rec := range recs {
		if _, ok := n.entries[rec.LSN]; !ok {
			n.entries[rec.LSN] = entry{term: n.termOfLocked(rec.LSN), rec: rec}
		}
		if rec.LSN > n.lastLSN {
			n.lastLSN = rec.LSN
		}
		if n.firstLSN == 0 || rec.LSN < n.firstLSN {
			n.firstLSN = rec.LSN
		}
	}
	n.db = db
	n.sink = sink
	n.cluster = partition.Single(db)
	n.mu.Unlock()

	// The no-op fence entry: replicating one current-term entry is what
	// allows commitIndex to advance over the recovered prior-term suffix.
	db.WAL().LogAbort("repl:fence")
	db.Spans().RecordEngine(span.Span{
		ID: fmt.Sprintf("repl/promote-t%d", term), Kind: span.KRepl,
		Name: "repl: promote to leader", Start: start, End: time.Now(),
		N: int64(term), Note: n.cfg.ID,
	})
	n.logf("repl: %s: leading term %d from lsn %d", n.cfg.ID, term, n.lastLSN)
	n.mu.Lock()
	n.advanceCommitLocked()
	n.mu.Unlock()
}

// quorumSink wraps the engine's FileWAL behind the DurableSink seam:
// Append additionally feeds the replicator's entry cache; WaitDurable
// returns only once the record is BOTH locally fsync'd and quorum-acked.
// On a single-node cluster the quorum is the local fsync, so the hook
// adds one mutex round per commit — the disarmed-overhead budget.
type quorumSink struct {
	n     *Node
	epoch uint64
	inner storage.DurableSink
	fw    *storage.FileWAL
}

// Append runs under the engine WAL's mutex: buffer into the local FileWAL
// and the replicated entry cache, then nudge the peer loops.
func (s *quorumSink) Append(rec storage.Record) {
	if s.inner != nil {
		s.inner.Append(rec)
	}
	s.n.appendLocal(s.epoch, rec)
}

// WaitDurable blocks for local durability, then for quorum.
func (s *quorumSink) WaitDurable(lsn uint64) error {
	if s.inner != nil {
		if err := s.inner.WaitDurable(lsn); err != nil {
			return err
		}
	}
	return s.n.waitQuorum(s.epoch, lsn)
}

func (s *quorumSink) Close() error {
	if s.inner != nil {
		return s.inner.Close()
	}
	return nil
}

// BatchInfo forwards the group-commit span's flush attribution.
func (s *quorumSink) BatchInfo(lsn uint64) (storage.BatchInfo, bool) {
	if bi, ok := s.inner.(interface {
		BatchInfo(lsn uint64) (storage.BatchInfo, bool)
	}); ok {
		return bi.BatchInfo(lsn)
	}
	return storage.BatchInfo{}, false
}

// Poisoned surfaces deposal as the sticky degraded state the engine
// already understands, alongside any real FileWAL poison.
func (s *quorumSink) Poisoned() error {
	s.n.mu.Lock()
	stale := s.n.epoch != s.epoch
	s.n.mu.Unlock()
	if stale {
		return errDeposed
	}
	if ps, ok := s.inner.(interface{ Poisoned() error }); ok {
		return ps.Poisoned()
	}
	return nil
}

// appendLocal caches a leader-appended record in the replicated log.
// Called under the engine WAL's mutex (lock order: WAL.mu then n.mu —
// nothing in the node calls engine WAL methods while holding n.mu).
func (n *Node) appendLocal(epoch uint64, rec storage.Record) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.epoch != epoch || n.closed {
		return
	}
	n.entries[rec.LSN] = entry{term: n.term, rec: rec}
	if n.firstLSN == 0 {
		n.firstLSN = rec.LSN
	}
	if rec.LSN > n.lastLSN {
		n.lastLSN = rec.LSN
	}
	n.wakePeersLocked()
}

func (n *Node) wakePeersLocked() {
	for _, ch := range n.wake {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// waitQuorum parks a committer until the commit index covers lsn. If the
// quorum stays unreachable past AckTimeout the node abdicates — a leader
// partitioned from the majority must stop acking and let the majority
// elect; its parked committers fail with the typed deposed error.
func (n *Node) waitQuorum(epoch, lsn uint64) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.advanceCommitLocked()
	if n.epoch == epoch && n.commitIndex >= lsn {
		return nil
	}
	var timedOut bool
	t := time.AfterFunc(n.cfg.AckTimeout, func() {
		n.mu.Lock()
		timedOut = true
		n.cond.Broadcast()
		n.mu.Unlock()
	})
	defer t.Stop()
	for {
		if n.closed {
			return storage.ErrWALClosed
		}
		if n.epoch != epoch {
			return errDeposed
		}
		if n.commitIndex >= lsn {
			return nil
		}
		if timedOut {
			n.logf("repl: %s: no quorum for lsn %d within %v; abdicating term %d",
				n.cfg.ID, lsn, n.cfg.AckTimeout, n.term)
			n.stepToFollowerLocked()
			return errDeposed
		}
		n.cond.Wait()
	}
}

// advanceCommitLocked recomputes the commit index: the quorum'th-highest
// durable position across the leader (its FileWAL's durable LSN) and each
// peer's match index — advanced only onto current-term entries (a
// prior-term entry commits implicitly once a current-term one does;
// committing it directly is the Raft figure-8 unsoundness).
func (n *Node) advanceCommitLocked() {
	if n.role != RoleLeader {
		return
	}
	local := n.lastLSN
	if n.sink != nil && n.sink.fw != nil {
		local = n.sink.fw.DurableLSN()
	}
	ms := make([]uint64, 0, len(n.match)+1)
	ms = append(ms, local)
	for _, m := range n.match {
		ms = append(ms, m)
	}
	q := sortedDesc(ms)[n.quorum-1]
	if q > n.commitIndex && n.termOfLocked(q) == n.term {
		n.commitIndex = q
		n.cond.Broadcast()
		n.wakePeersLocked() // piggyback the new commit index promptly
	}
}

// peerLoop replicates to one follower for one leadership incarnation:
// batches from nextIndex, heartbeats when idle, snapshot install when the
// follower trails the entry cache floor.
func (n *Node) peerLoop(epoch uint64, p Peer, wakeCh chan struct{}) {
	defer n.wg.Done()
	hb := time.NewTimer(0) // send an immediate heartbeat on taking office
	defer hb.Stop()
	for {
		select {
		case <-wakeCh:
		case <-hb.C:
		}
		hb.Reset(n.cfg.Heartbeat)
		for {
			n.mu.Lock()
			if n.epoch != epoch || n.closed {
				n.mu.Unlock()
				return
			}
			req, needSnap := n.buildAppendLocked(p)
			prevNext := n.next[p.ID]
			commit := n.commitIndex
			n.mu.Unlock()
			if needSnap {
				req2, ok := n.buildSnapshot(commit)
				if !ok {
					break // no installable snapshot yet; retry next tick
				}
				req = req2
			}
			resp, err := n.tr.call(p, req)
			if err != nil || resp.Repl == nil {
				break
			}
			re := resp.Repl
			n.mu.Lock()
			if n.epoch != epoch || n.closed {
				n.mu.Unlock()
				return
			}
			if re.Term > n.term {
				n.bumpTermLocked(re.Term)
				n.mu.Unlock()
				return
			}
			if re.OK() {
				if re.Match > n.match[p.ID] {
					n.match[p.ID] = re.Match
				}
				n.next[p.ID] = n.match[p.ID] + 1
				n.advanceCommitLocked()
				more := n.lastLSN >= n.next[p.ID]
				n.mu.Unlock()
				if !more {
					break
				}
				continue
			}
			// Rejected: back up along the follower's hint. No forward
			// progress (the follower is rebuilding, or the hint equals the
			// position just tried) waits for the next tick.
			hint := re.Hint
			if hint == 0 || hint > prevNext {
				hint = prevNext
				if hint > 1 {
					hint--
				}
			}
			n.next[p.ID] = hint
			n.mu.Unlock()
			if hint >= prevNext {
				break
			}
		}
	}
}

// buildAppendLocked assembles the next AppendEntries for p: a batch of
// entries from nextIndex (never spanning a term boundary), or a pure
// heartbeat when the follower is caught up. needSnap reports that the
// follower trails the entry cache floor and must be seeded by snapshot.
func (n *Node) buildAppendLocked(p Peer) (wire.Msg, bool) {
	next := n.next[p.ID]
	if next < n.firstLSN || next <= n.snapLSN {
		return wire.Msg{}, true
	}
	re := &wire.ReplExt{
		Term:   n.term,
		From:   n.cfg.ID,
		Commit: n.commitIndex,
		Addr:   n.cfg.Advertise,
	}
	re.PrevLSN = next - 1
	re.PrevTerm = n.termOfLocked(re.PrevLSN)
	m := wire.Msg{Type: wire.MsgReplAppend, Repl: re}
	if next > n.lastLSN {
		return m, false // heartbeat
	}
	re.EntryTerm = n.termOfLocked(next)
	for lsn := next; lsn <= n.lastLSN && len(m.Params) < maxAppendBatch; lsn++ {
		e, ok := n.entries[lsn]
		if !ok || e.term != re.EntryTerm {
			break
		}
		m.Params = append(m.Params, string(storage.EncodeRecordFrame(nil, e.rec)))
	}
	return m, false
}

// buildSnapshot reads the newest checkpoint at or below the commit index
// and packages it as an InstallSnapshot. Only committed state ships — a
// checkpoint beyond the commit index could cover entries a future leader
// is still entitled to truncate.
func (n *Node) buildSnapshot(commit uint64) (wire.Msg, bool) {
	infos, err := checkpoint.Scan(n.cfg.Dir)
	if err != nil {
		return wire.Msg{}, false
	}
	for i := len(infos) - 1; i >= 0; i-- {
		if infos[i].LSN > commit {
			continue
		}
		path := filepath.Join(n.cfg.Dir, infos[i].Name)
		if _, lerr := checkpoint.Load(path); lerr != nil {
			continue // torn file; try an older one
		}
		raw, rerr := os.ReadFile(path)
		if rerr != nil {
			continue
		}
		n.mu.Lock()
		re := &wire.ReplExt{
			Term:     n.term,
			From:     n.cfg.ID,
			PrevLSN:  infos[i].LSN,
			PrevTerm: n.termOfLocked(infos[i].LSN),
			Commit:   n.commitIndex,
			Addr:     n.cfg.Advertise,
		}
		n.mu.Unlock()
		return wire.Msg{Type: wire.MsgReplSnapshot, Repl: re, Params: []string{string(raw)}}, true
	}
	return wire.Msg{}, false
}

// errIsolated marks traffic suppressed by SetIsolated (in-process
// partition simulation).
var errIsolated = errors.New("repl: node isolated (simulated partition)")
