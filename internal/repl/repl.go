// Package repl replicates the engine's write-ahead log across a small
// cluster: a minimal Raft-style consensus log whose entries are the
// engine's own WAL records. The leader's FileWAL keeps its role as the
// local durable sink; a quorumSink wraps it so WaitDurable — the single
// seam every commit already funnels through — returns only after a
// majority of replicas has appended AND fsync'd the record. That turns the
// engine's one-node "recovered ≥ acked" invariant into a cluster-wide one:
// any commit acked to a client survives the death of any minority of
// nodes, including the leader.
//
// The adaptation to the engine's log is deliberately thin:
//
//   - Log index = WAL LSN. The engine already assigns dense, contiguous
//     LSNs under the WAL mutex, so the replicated log needs no second
//     numbering scheme, and replicas' segment files are byte-identical
//     (entries travel as encoded record frames, storage.EncodeRecordFrame).
//   - Per-entry terms are not stored in the records (the WAL codec stays
//     untouched); instead a node persists term *fences* — (term, firstLSN)
//     pairs in repl-state.json — and an entry's term is the newest fence at
//     or below its LSN. Append batches never span a term boundary, so one
//     EntryTerm per message suffices.
//   - A follower owns a plain FileWAL on its directory plus a warm standby
//     MemStore: committed update records are applied through the recovery
//     redo path (recovery.RedoPage), so follower reads serve the same
//     images a post-crash recovery would reconstruct.
//   - Promotion IS recovery: a follower that wins an election opens the
//     engine over its durable log via the configured OpenEngine hook
//     (recovery.RecoverDir underneath), replays its suffix, appends a
//     no-op fence entry to commit prior-term entries (Raft's figure-8
//     rule), and starts replicating to the others.
//
// Election safety is standard Raft: randomized timeouts, votes persisted
// before they are granted, and a candidate wins only if its (lastTerm,
// lastLSN) is at least as up-to-date as the voter's — which is exactly
// what makes "quorum-acked implies present on any electable node" a
// machine-checkable invariant (cmd/chaos' leader-kill round checks it).
package repl

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	mrand "math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/recovery"
	"repro/internal/storage"
	"repro/internal/wire"
)

// Role is a node's position in the cluster.
type Role int32

const (
	RoleFollower Role = iota
	RoleCandidate
	RoleLeader
)

func (r Role) String() string {
	switch r {
	case RoleFollower:
		return "follower"
	case RoleCandidate:
		return "candidate"
	case RoleLeader:
		return "leader"
	}
	return fmt.Sprintf("role(%d)", int32(r))
}

// Peer identifies one other cluster member.
type Peer struct {
	ID   string
	Addr string // replication transport address (not the client address)
}

// Config configures one replica.
type Config struct {
	// ID is this node's stable identity (e.g. "n0").
	ID string
	// Addr is the replication transport listen address. Empty binds an
	// ephemeral loopback port (tests); the bound address is Node.Addr().
	Addr string
	// Advertise is this node's CLIENT address — what redirect hints and
	// healthz report as the place to send writes when this node leads.
	Advertise string
	// Peers lists the other members (excluding this node). Empty means a
	// single-node cluster: quorum 1, self-electing, no replication traffic.
	Peers []Peer
	// Dir is the WAL segment directory this replica persists to. The
	// engine opens the same directory when this node is promoted.
	Dir string
	// OpenEngine opens (fresh=true) or recovers (fresh=false) the engine
	// over Dir at promotion. Nil uses a plain durable engine with no
	// registered types — real deployments (cmd/oodbd) install their schema
	// here.
	OpenEngine func(dir string, fresh bool) (*core.DB, error)

	// ElectionTimeout is the base election timeout; each reset draws
	// uniformly from [timeout, 2*timeout). Default 150ms.
	ElectionTimeout time.Duration
	// Heartbeat is the leader's idle append interval. Default 40ms.
	Heartbeat time.Duration
	// AckTimeout bounds how long a leader's commit waits for quorum before
	// the node concludes it is partitioned from the majority and abdicates.
	// Default 2s.
	AckTimeout time.Duration
	// Durability is the follower FileWAL's mode (MemOnly is promoted to
	// GroupCommit, mirroring OpenFileWAL).
	Durability storage.Durability
	// SegmentSize caps follower segment files (0 = FileWAL default).
	SegmentSize int64
	// PageSize sizes the standby store when no checkpoint seeds it
	// (default storage.DefaultPageSize).
	PageSize int

	// Obs, when set, publishes repl.role / repl.term / repl.commit_index /
	// repl.lag_entries and records an EvReplRole flight-recorder event on
	// every role transition.
	Obs *obs.Registry
	// OnRole, when set, is called (under the node mutex — it must not call
	// back into the Node) on every role transition. cmd/chaos children use
	// it to report transitions on stdout.
	OnRole func(role Role, term uint64)
	// Logf receives diagnostic output (nil = silent).
	Logf func(format string, args ...any)
	// Seed fixes the election-timeout jitter source (0 = random seed).
	Seed int64
}

// fence marks "entries from First onward carry Term (until a later
// fence)". The fence list is persisted, so per-entry terms survive
// restarts without widening the WAL record codec.
type fence struct {
	Term  uint64 `json:"term"`
	First uint64 `json:"first"`
}

// hardState is the Raft-persistent part of a node, stored as
// repl-state.json next to the segments (temp+rename+fsync, like
// checkpoints).
type hardState struct {
	Term     uint64  `json:"term"`
	VotedFor string  `json:"voted_for"`
	SnapLSN  uint64  `json:"snap_lsn"`
	SnapTerm uint64  `json:"snap_term"`
	Fences   []fence `json:"fences"`
}

const hardStateFile = "repl-state.json"

// entry is one in-memory log entry. The record's frame encoding is
// deterministic, so frames are re-encoded on demand for the wire rather
// than cached.
type entry struct {
	term uint64
	rec  storage.Record
}

// Node is one replica: follower, candidate, or leader.
type Node struct {
	cfg    Config
	quorum int

	mu   sync.Mutex
	cond *sync.Cond

	role     Role
	term     uint64
	votedFor string
	fences   []fence
	leaderID string
	// leaderAddr is the last known leader's CLIENT address (what
	// NotLeader redirects carry).
	leaderAddr string

	// Log state. entries holds every record from firstLSN..lastLSN;
	// records at or below snapLSN live only in the snapshot.
	entries     map[uint64]entry
	firstLSN    uint64
	lastLSN     uint64
	snapLSN     uint64
	snapTerm    uint64
	commitIndex uint64

	// Follower state: the owned durable log, the warm standby image, and
	// the apply cursor into it.
	fw      *storage.FileWAL
	standby *storage.MemStore
	applied uint64
	// rebuilding is set while a deposed leader is closing its engine and
	// re-reading the directory; append/snapshot RPCs are refused (retry)
	// and elections are suppressed until the disk state is back.
	rebuilding bool

	// Leader state.
	db      *core.DB
	cluster *partition.Cluster
	sink    *quorumSink
	match   map[string]uint64
	next    map[string]uint64
	wake    map[string]chan struct{}

	// epoch increments on every role transition; goroutines spawned for
	// one incarnation (promotion, peer loops, vote fan-out) check it and
	// stand down when stale.
	epoch  uint64
	closed bool
	failed error

	timer    *time.Timer
	rnd      *mrand.Rand
	tr       *transport
	isolated atomic.Bool
	wg       sync.WaitGroup

	rec         *obs.FlightRecorder
	transitions *obs.Counter
}

// Open starts a replica: loads persisted state, opens the follower log,
// binds the replication listener, and begins running elections. A
// single-node cluster self-elects within one election timeout.
func Open(cfg Config) (*Node, error) {
	if cfg.ID == "" {
		return nil, errors.New("repl: Config.ID required")
	}
	if cfg.Dir == "" {
		return nil, errors.New("repl: Config.Dir required")
	}
	if cfg.ElectionTimeout <= 0 {
		cfg.ElectionTimeout = 150 * time.Millisecond
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 40 * time.Millisecond
	}
	if cfg.AckTimeout <= 0 {
		cfg.AckTimeout = 2 * time.Second
	}
	if cfg.PageSize <= 0 {
		cfg.PageSize = storage.DefaultPageSize
	}
	if cfg.OpenEngine == nil {
		cfg.OpenEngine = defaultOpenEngine
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("repl: %w", err)
	}
	seed := cfg.Seed
	if seed == 0 {
		var b [8]byte
		if _, err := rand.Read(b[:]); err == nil {
			seed = int64(binary.LittleEndian.Uint64(b[:]))
		} else {
			seed = time.Now().UnixNano()
		}
	}
	n := &Node{
		cfg:    cfg,
		quorum: (len(cfg.Peers)+1)/2 + 1,
		rnd:    mrand.New(mrand.NewSource(seed)),
	}
	n.cond = sync.NewCond(&n.mu)
	if err := n.loadHardState(); err != nil {
		return nil, err
	}
	n.mu.Lock()
	err := n.loadDiskStateLocked()
	n.mu.Unlock()
	if err != nil {
		return nil, err
	}
	tr, err := newTransport(n, cfg.Addr)
	if err != nil {
		n.fw.Close()
		return nil, err
	}
	n.tr = tr
	n.publishObs()
	n.mu.Lock()
	n.timer = time.AfterFunc(n.electionDelayLocked(), n.electionTick)
	n.mu.Unlock()
	return n, nil
}

// defaultOpenEngine is the promotion hook when none is configured: a
// durable engine over dir with no registered object types.
func defaultOpenEngine(dir string, fresh bool) (*core.DB, error) {
	opts := core.Options{Durability: storage.GroupCommit, WALDir: dir}
	if fresh {
		return core.OpenDurable(opts)
	}
	db, _, err := recovery.RecoverDir(dir, opts, nil)
	return db, err
}

// Addr returns the bound replication transport address.
func (n *Node) Addr() string { return n.tr.addr }

// SetIsolated simulates a network partition in-process: while isolated
// the node neither sends nor answers replication traffic. cmd/chaos'
// repl-partition round drives this.
func (n *Node) SetIsolated(v bool) { n.isolated.Store(v) }

// Close shuts the replica down: stops timers and loops, closes the
// transport, and releases whichever of engine/follower log this node
// holds.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	n.epoch++
	if n.timer != nil {
		n.timer.Stop()
	}
	n.cond.Broadcast()
	db, fw := n.db, n.fw
	n.db, n.fw = nil, nil
	n.cluster = nil
	n.mu.Unlock()

	n.tr.close()
	n.wg.Wait()
	var err error
	if db != nil {
		err = db.Close()
	}
	if fw != nil {
		if cerr := fw.Close(); err == nil && !errors.Is(cerr, storage.ErrWALPoisoned) {
			err = cerr
		}
	}
	return err
}

// fwOptions is the follower log's FileWAL configuration.
func (n *Node) fwOptions() storage.FileWALOptions {
	return storage.FileWALOptions{SegmentSize: n.cfg.SegmentSize, Durability: n.cfg.Durability}
}

// loadHardState reads repl-state.json (absent = zero state).
func (n *Node) loadHardState() error {
	raw, err := os.ReadFile(filepath.Join(n.cfg.Dir, hardStateFile))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("repl: %w", err)
	}
	var hs hardState
	if err := json.Unmarshal(raw, &hs); err != nil {
		return fmt.Errorf("repl: %s corrupt: %w", hardStateFile, err)
	}
	n.term, n.votedFor = hs.Term, hs.VotedFor
	n.snapLSN, n.snapTerm = hs.SnapLSN, hs.SnapTerm
	n.fences = hs.Fences
	return nil
}

// persistLocked writes the hard state with temp+rename+fsync — a vote or
// term bump must never outrun its durability (a node that re-votes after
// a crash can elect two leaders in one term).
func (n *Node) persistLocked() {
	hs := hardState{Term: n.term, VotedFor: n.votedFor,
		SnapLSN: n.snapLSN, SnapTerm: n.snapTerm, Fences: n.fences}
	raw, err := json.MarshalIndent(&hs, "", "  ")
	if err != nil {
		n.failLocked(fmt.Errorf("repl: encoding hard state: %w", err))
		return
	}
	path := filepath.Join(n.cfg.Dir, hardStateFile)
	tmp := path + ".tmp"
	if err := writeFileSync(tmp, raw); err != nil {
		n.failLocked(fmt.Errorf("repl: persisting hard state: %w", err))
		return
	}
	if err := os.Rename(tmp, path); err != nil {
		n.failLocked(fmt.Errorf("repl: persisting hard state: %w", err))
		return
	}
	if err := syncDir(n.cfg.Dir); err != nil {
		n.failLocked(fmt.Errorf("repl: persisting hard state: %w", err))
	}
}

func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// loadDiskStateLocked (re)builds follower state from the directory: the
// owned FileWAL, the entry cache, and the standby image seeded from the
// newest checkpoint. Called at Open and after a deposed leader's engine
// is closed.
func (n *Node) loadDiskStateLocked() error {
	fw, records, err := storage.OpenFileWAL(n.cfg.Dir, n.fwOptions())
	if err != nil {
		return fmt.Errorf("repl: opening follower log: %w", err)
	}
	snap, _, err := checkpoint.Latest(n.cfg.Dir)
	if err != nil && !errors.Is(err, checkpoint.ErrNoCheckpoint) {
		fw.Close()
		return fmt.Errorf("repl: scanning checkpoints: %w", err)
	}
	n.fw = fw
	n.entries = make(map[uint64]entry, len(records))
	if snap != nil && snap.LSN > n.snapLSN {
		// The engine checkpointed beyond the last installed snapshot while
		// this node led; adopt the newer barrier.
		n.snapLSN = snap.LSN
		n.snapTerm = n.termOfLocked(snap.LSN)
	}
	if snap != nil {
		n.standby = storage.NewMemStoreFromSnapshot(snap.Pages, snap.NextPage, snap.PageSize)
		n.applied = snap.LSN
	} else {
		n.standby = storage.NewMemStore(n.cfg.PageSize)
		n.applied = 0
	}
	n.lastLSN = n.snapLSN
	n.firstLSN = n.snapLSN + 1
	for _, rec := range records {
		n.entries[rec.LSN] = entry{term: n.termOfLocked(rec.LSN), rec: rec}
		if rec.LSN > n.lastLSN {
			n.lastLSN = rec.LSN
		}
	}
	if len(records) > 0 && records[0].LSN < n.firstLSN {
		n.firstLSN = records[0].LSN
	}
	if n.commitIndex < n.snapLSN {
		n.commitIndex = n.snapLSN
	}
	// Entries at or below an engine checkpoint barrier were applied into
	// the snapshot image already; anything between applied and commitIndex
	// replays through redo now (a restart forgets commitIndex, so this is
	// usually a no-op until the leader's first heartbeat).
	n.applyCommittedLocked()
	return nil
}

// termOfLocked maps an LSN to its term via the fence list. LSN 0 and
// entries predating replication (below every fence) are term 0.
func (n *Node) termOfLocked(lsn uint64) uint64 {
	if lsn == 0 {
		return 0
	}
	for i := len(n.fences) - 1; i >= 0; i-- {
		if n.fences[i].First <= lsn {
			return n.fences[i].Term
		}
	}
	return 0
}

// addFenceLocked registers "entries from first on carry term", replacing
// any fences at or above first (a conflict truncation rewrites history
// from that point). Caller persists.
func (n *Node) addFenceLocked(term, first uint64) {
	for len(n.fences) > 0 && n.fences[len(n.fences)-1].First >= first {
		n.fences = n.fences[:len(n.fences)-1]
	}
	if len(n.fences) > 0 && n.fences[len(n.fences)-1].Term == term {
		return
	}
	n.fences = append(n.fences, fence{Term: term, First: first})
}

func (n *Node) lastTermLocked() uint64 { return n.termOfLocked(n.lastLSN) }

// failLocked latches a node-fatal error (disk failures persisting state).
// The node stops participating: it refuses RPCs and elections.
func (n *Node) failLocked(err error) {
	if n.failed == nil {
		n.failed = err
		n.logf("repl: %s: failed: %v", n.cfg.ID, err)
	}
	n.cond.Broadcast()
}

// Err reports the latched node-fatal error, if any.
func (n *Node) Err() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.failed
}

func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf(format, args...)
	}
}

// setRoleLocked flips the role, bumps the epoch (standing down any
// goroutines of the old incarnation), and emits the transition to the
// flight recorder and the OnRole hook.
func (n *Node) setRoleLocked(r Role) {
	if n.role == r {
		return
	}
	n.role = r
	n.epoch++
	if n.rec != nil {
		n.rec.Record(obs.Event{Kind: obs.EvReplRole, Actor: n.cfg.ID, Note: r.String(), N: int64(n.term)})
	}
	if n.transitions != nil {
		n.transitions.Add(1)
	}
	if n.cfg.OnRole != nil {
		n.cfg.OnRole(r, n.term)
	}
	n.cond.Broadcast()
}

// electionDelayLocked draws the next randomized election timeout.
func (n *Node) electionDelayLocked() time.Duration {
	base := n.cfg.ElectionTimeout
	return base + time.Duration(n.rnd.Int63n(int64(base)))
}

func (n *Node) resetElectionTimerLocked() {
	if n.timer != nil {
		n.timer.Stop()
		n.timer.Reset(n.electionDelayLocked())
	}
}

// electionTick fires when no leader has been heard from for a full
// randomized timeout: become a candidate and solicit votes.
func (n *Node) electionTick() {
	n.mu.Lock()
	if n.closed || n.failed != nil || n.role == RoleLeader || n.rebuilding || n.isolated.Load() {
		// A leader's liveness is judged by its own quorum acks, not this
		// timer; a rebuilding or isolated node would elect itself on state
		// it cannot defend. Re-arm and wait.
		if !n.closed {
			n.resetElectionTimerLocked()
		}
		n.mu.Unlock()
		return
	}
	n.term++
	n.votedFor = n.cfg.ID
	n.persistLocked()
	n.setRoleLocked(RoleCandidate)
	term := n.term
	lastLSN, lastTerm := n.lastLSN, n.lastTermLocked()
	n.resetElectionTimerLocked()
	n.mu.Unlock()

	n.logf("repl: %s: election for term %d (last %d/t%d)", n.cfg.ID, term, lastLSN, lastTerm)
	if n.quorum == 1 {
		n.maybeLead(term)
		return
	}
	var votes atomic.Int64
	votes.Store(1)
	for _, p := range n.cfg.Peers {
		p := p
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			req := wire.Msg{Type: wire.MsgReplVote, Repl: &wire.ReplExt{
				Term: term, From: n.cfg.ID, PrevLSN: lastLSN, PrevTerm: lastTerm}}
			resp, err := n.tr.call(p, req)
			if err != nil || resp.Repl == nil {
				return
			}
			n.mu.Lock()
			if resp.Repl.Term > n.term {
				n.bumpTermLocked(resp.Repl.Term)
				n.mu.Unlock()
				return
			}
			n.mu.Unlock()
			if resp.Repl.OK() && resp.Repl.Term == term && votes.Add(1) == int64(n.quorum) {
				n.maybeLead(term)
			}
		}()
	}
}

// maybeLead promotes to leader if the election that gathered the quorum
// is still the live one.
func (n *Node) maybeLead(term uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed || n.failed != nil || n.term != term || n.role != RoleCandidate {
		return
	}
	n.becomeLeaderLocked()
}

// bumpTermLocked adopts a higher term seen on any RPC: persist it and
// step down to follower (demoting through the engine teardown if this
// node was leading).
func (n *Node) bumpTermLocked(term uint64) {
	if term <= n.term {
		return
	}
	n.term = term
	n.votedFor = ""
	n.persistLocked()
	n.stepToFollowerLocked()
}

// stepToFollowerLocked moves to the follower role. A deposed leader
// additionally tears down its engine in the background and re-reads the
// directory as a plain follower log (rebuilding gates RPCs meanwhile).
func (n *Node) stepToFollowerLocked() {
	wasLeader := n.role == RoleLeader
	n.setRoleLocked(RoleFollower)
	n.resetElectionTimerLocked()
	if !wasLeader {
		return
	}
	n.leaderID, n.leaderAddr = "", ""
	db := n.db
	n.db, n.cluster, n.sink = nil, nil, nil
	n.match, n.next, n.wake = nil, nil, nil
	n.rebuilding = true
	n.cond.Broadcast() // parked quorum waiters see the epoch change and fail typed
	epoch := n.epoch
	n.wg.Add(1)
	go n.rebuildFollower(epoch, db)
}

// rebuildFollower closes a deposed leader's engine (flushing its local
// WAL) and restores follower disk state. Runs outside the node mutex —
// engine Close flushes through the quorum sink's inner FileWAL.
func (n *Node) rebuildFollower(epoch uint64, db *core.DB) {
	defer n.wg.Done()
	if db != nil {
		_ = db.Close()
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.rebuilding = false
	if n.closed || n.epoch != epoch {
		return
	}
	if err := n.loadDiskStateLocked(); err != nil {
		n.failLocked(err)
		return
	}
	n.logf("repl: %s: rejoined as follower at %d/t%d", n.cfg.ID, n.lastLSN, n.lastTermLocked())
}

// applyCommittedLocked advances the standby image to the commit index by
// replaying committed update records through the recovery redo path.
func (n *Node) applyCommittedLocked() {
	if n.standby == nil {
		return
	}
	for lsn := n.applied + 1; lsn <= n.commitIndex; lsn++ {
		e, ok := n.entries[lsn]
		if ok && e.rec.Kind == storage.RecUpdate {
			if err := recovery.RedoPage(n.standby, e.rec.Page, e.rec.After); err != nil {
				n.logf("repl: %s: standby redo of lsn %d: %v", n.cfg.ID, lsn, err)
			}
		}
		n.applied = lsn
	}
}

// Status is the replication snapshot surfaced on /healthz and by tools.
type Status struct {
	Node        string `json:"node"`
	Role        string `json:"role"`
	Term        uint64 `json:"term"`
	CommitIndex uint64 `json:"commit_index"`
	LastLSN     uint64 `json:"last_lsn"`
	Applied     uint64 `json:"applied"`
	// Leader is the current leader's client address ("" when unknown).
	Leader string `json:"leader,omitempty"`
	// LagEntries is how far this node trails: a follower's unapplied
	// committed suffix, a leader's unacked quorum window.
	LagEntries uint64 `json:"lag_entries"`
}

// Status reports the node's replication state.
func (n *Node) Status() Status {
	n.mu.Lock()
	defer n.mu.Unlock()
	s := Status{
		Node:        n.cfg.ID,
		Role:        n.role.String(),
		Term:        n.term,
		CommitIndex: n.commitIndex,
		LastLSN:     n.lastLSN,
		Applied:     n.applied,
		Leader:      n.leaderAddr,
	}
	if n.role == RoleLeader {
		if n.lastLSN > n.commitIndex {
			s.LagEntries = n.lastLSN - n.commitIndex
		}
	} else if n.commitIndex > n.applied {
		s.LagEntries = n.commitIndex - n.applied
	}
	return s
}

// Role returns the node's current role.
func (n *Node) Role() Role {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role
}

// Term returns the node's current term.
func (n *Node) Term() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.term
}

// LeaderCluster returns the single-partition cluster over the engine this
// node leads — the server's write path. False until a promotion has fully
// completed (engine open, sink wrapped).
func (n *Node) LeaderCluster() (*partition.Cluster, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.role == RoleLeader && n.cluster != nil {
		return n.cluster, true
	}
	return nil, false
}

// DB returns the engine this node leads (nil otherwise).
func (n *Node) DB() *core.DB {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.role == RoleLeader {
		return n.db
	}
	return nil
}

// LeaderHint returns the best-known leader client address ("" when no
// leader is known — mid-election).
func (n *Node) LeaderHint() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.leaderAddr
}

// StandbyRead serves a page from the follower's warm standby image —
// committed state only, the replication analogue of degraded-mode reads.
func (n *Node) StandbyRead(page uint64) (string, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.standby == nil {
		return "", false
	}
	data, err := n.standby.Read(storage.PageID(page))
	if err != nil {
		return "", false
	}
	return data, true
}

// publishObs wires the replication gauges and the role-transition
// recorder into the registry.
func (n *Node) publishObs() {
	reg := n.cfg.Obs
	if reg == nil {
		return
	}
	n.rec = reg.Recorder()
	n.transitions = reg.Counter("repl.transitions")
	reg.PublishFunc("repl.role", func() any {
		return int64(n.Role())
	})
	reg.PublishFunc("repl.term", func() any {
		return int64(n.Term())
	})
	reg.PublishFunc("repl.commit_index", func() any {
		n.mu.Lock()
		defer n.mu.Unlock()
		return int64(n.commitIndex)
	})
	reg.PublishFunc("repl.lag_entries", func() any {
		return int64(n.Status().LagEntries)
	})
}

// sortedDesc sorts a small slice of LSNs descending (quorum math).
func sortedDesc(ms []uint64) []uint64 {
	sort.Slice(ms, func(i, j int) bool { return ms[i] > ms[j] })
	return ms
}
