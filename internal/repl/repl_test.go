package repl

import (
	"errors"
	"fmt"
	"net"
	"os"
	"strconv"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/recovery"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/wire"
	"repro/internal/workload"
)

const testAccounts = 4

// bankEngine is the promotion hook the tests (and cmd/oodbd) use: fresh
// directories get a funded banking schema, restarts recover it.
func bankEngine(dir string, fresh bool) (*core.DB, error) {
	opts := core.Options{Durability: storage.GroupCommit, WALDir: dir}
	if fresh {
		db, err := core.OpenDurable(opts)
		if err != nil {
			return nil, err
		}
		if _, err := workload.InstallBanking(db, testAccounts, 0); err != nil {
			db.Close()
			return nil, err
		}
		return db, nil
	}
	db, _, err := recovery.RecoverDir(dir, opts, func(db *core.DB) error {
		_, rerr := workload.RegisterBanking(db, testAccounts)
		return rerr
	})
	return db, err
}

func acct(i int) txn.OID {
	return txn.OID{Type: workload.AccountType, Name: fmt.Sprintf("Acct%d", i)}
}

// freeAddrs reserves k distinct loopback addresses. The listeners are
// closed before returning, so a parallel process could steal a port —
// acceptable in tests.
func freeAddrs(t *testing.T, k int) []string {
	t.Helper()
	addrs := make([]string, k)
	lns := make([]net.Listener, k)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("reserve port: %v", err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

func testConfig(t *testing.T, id, dir string) Config {
	return Config{
		ID:              id,
		Dir:             dir,
		Advertise:       "client-" + id,
		OpenEngine:      bankEngine,
		ElectionTimeout: 60 * time.Millisecond,
		Heartbeat:       15 * time.Millisecond,
		AckTimeout:      500 * time.Millisecond,
		Durability:      storage.GroupCommit,
		Logf:            t.Logf,
	}
}

// startCluster boots k nodes wired to each other and registers cleanup.
func startCluster(t *testing.T, k int) []*Node {
	t.Helper()
	addrs := freeAddrs(t, k)
	nodes := make([]*Node, k)
	for i := 0; i < k; i++ {
		cfg := testConfig(t, fmt.Sprintf("n%d", i), t.TempDir())
		cfg.Addr = addrs[i]
		for j := 0; j < k; j++ {
			if j != i {
				cfg.Peers = append(cfg.Peers, Peer{ID: fmt.Sprintf("n%d", j), Addr: addrs[j]})
			}
		}
		n, err := Open(cfg)
		if err != nil {
			t.Fatalf("open node %d: %v", i, err)
		}
		nodes[i] = n
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			if n != nil {
				n.Close()
			}
		}
	})
	return nodes
}

// waitLeader blocks until some node is a fully promoted leader (engine
// open, cluster available).
func waitLeader(t *testing.T, nodes []*Node) *Node {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		for _, n := range nodes {
			if n == nil {
				continue
			}
			if _, ok := n.LeaderCluster(); ok {
				return n
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, n := range nodes {
		if n != nil {
			t.Logf("status: %+v err=%v", n.Status(), n.Err())
		}
	}
	t.Fatal("no leader elected")
	return nil
}

func credit(t *testing.T, n *Node, account int, amount int64) error {
	t.Helper()
	db := n.DB()
	if db == nil {
		return errors.New("not leader")
	}
	tx := db.Begin()
	if _, err := tx.Exec(acct(account), "credit", strconv.FormatInt(amount, 10)); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

func balance(t *testing.T, n *Node, account int) int64 {
	t.Helper()
	db := n.DB()
	if db == nil {
		t.Fatal("balance: not leader")
	}
	tx := db.Begin()
	defer tx.Abort()
	s, err := tx.Exec(acct(account), "balance")
	if err != nil {
		t.Fatalf("balance: %v", err)
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		t.Fatalf("balance %q: %v", s, err)
	}
	return v
}

func TestSingleNodeSelfElectsAndCommitsDurably(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(t, "solo", dir)
	n, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ld := waitLeader(t, []*Node{n})
	for i := 0; i < 5; i++ {
		if err := credit(t, ld, 0, 1); err != nil {
			t.Fatalf("credit %d: %v", i, err)
		}
	}
	if got := balance(t, ld, 0); got != 5 {
		t.Fatalf("balance = %d, want 5", got)
	}
	term1 := n.Term()
	if err := n.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Restart over the same directory: promotion recovers the log.
	n2, err := Open(testConfig(t, "solo", dir))
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()
	ld = waitLeader(t, []*Node{n2})
	if got := balance(t, ld, 0); got != 5 {
		t.Fatalf("post-restart balance = %d, want 5", got)
	}
	if n2.Term() <= term1 {
		t.Fatalf("restart term %d did not advance past %d", n2.Term(), term1)
	}
}

func TestThreeNodeReplicationAndFailover(t *testing.T) {
	nodes := startCluster(t, 3)
	ld := waitLeader(t, nodes)
	const acked = 10
	for i := 0; i < acked; i++ {
		if err := credit(t, ld, 1, 1); err != nil {
			t.Fatalf("credit %d: %v", i, err)
		}
	}
	oldTerm := ld.Term()

	// Kill the leader; the survivors must elect and keep every acked commit.
	for i, n := range nodes {
		if n == ld {
			n.Close()
			nodes[i] = nil
		}
	}
	ld2 := waitLeader(t, nodes)
	if ld2.Term() <= oldTerm {
		t.Fatalf("new term %d not past old %d", ld2.Term(), oldTerm)
	}
	if got := balance(t, ld2, 1); got != acked {
		t.Fatalf("post-failover balance = %d, want %d (acked commits lost)", got, acked)
	}
	// And the new leader still replicates: another commit must succeed.
	if err := credit(t, ld2, 1, 1); err != nil {
		t.Fatalf("post-failover credit: %v", err)
	}
}

func TestFollowerCatchesUpAndServesStandbyReads(t *testing.T) {
	nodes := startCluster(t, 3)
	ld := waitLeader(t, nodes)
	for i := 0; i < 6; i++ {
		if err := credit(t, ld, 2, 1); err != nil {
			t.Fatalf("credit: %v", err)
		}
	}
	st := ld.Status()
	deadline := time.Now().Add(5 * time.Second)
	for _, n := range nodes {
		if n == ld {
			continue
		}
		for {
			fs := n.Status()
			if fs.Applied >= st.CommitIndex && fs.LagEntries == 0 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("follower %s stuck at %+v (leader %+v)", fs.Node, fs, st)
			}
			time.Sleep(5 * time.Millisecond)
		}
		// The standby image must hold committed data: some page carries the
		// final balance of account 2.
		found := false
		for pg := uint64(1); pg < 64 && !found; pg++ {
			if data, ok := n.StandbyRead(pg); ok && data == "6" {
				found = true
			}
		}
		if !found {
			t.Fatalf("follower %s standby holds no page with balance 6", n.cfg.ID)
		}
	}
}

// frameParams encodes records as wire-ready frames.
func frameParams(recs ...storage.Record) []string {
	out := make([]string, len(recs))
	for i, rec := range recs {
		out[i] = string(storage.EncodeRecordFrame(nil, rec))
	}
	return out
}

func upd(lsn uint64, page storage.PageID, after string) storage.Record {
	return storage.Record{LSN: lsn, Kind: storage.RecUpdate, Owner: "T1", Page: page, After: after}
}

// passiveFollower opens a node that will never start an election.
func passiveFollower(t *testing.T, dir string) *Node {
	t.Helper()
	cfg := testConfig(t, "passive", dir)
	cfg.ElectionTimeout = 10 * time.Minute
	n, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

func TestFollowerAppendCommitStandby(t *testing.T) {
	n := passiveFollower(t, t.TempDir())
	req := wire.Msg{Type: wire.MsgReplAppend, Repl: &wire.ReplExt{
		Term: 1, From: "ldr", Addr: "ldr-client", EntryTerm: 1,
	}, Params: frameParams(upd(1, 1, "hello"), upd(2, 2, "world"))}
	resp := n.handleRPC(req)
	if !resp.Repl.OK() || resp.Repl.Match != 2 {
		t.Fatalf("append ack = %+v", resp.Repl)
	}
	if got := n.Status(); got.Role != "follower" || got.LastLSN != 2 || got.Leader != "ldr-client" {
		t.Fatalf("status = %+v", got)
	}
	if _, ok := n.StandbyRead(1); ok {
		t.Fatal("uncommitted entry visible on standby")
	}

	// A heartbeat carrying the commit index applies into the standby.
	hb := wire.Msg{Type: wire.MsgReplAppend, Repl: &wire.ReplExt{
		Term: 1, From: "ldr", PrevLSN: 2, PrevTerm: 1, Commit: 2,
	}}
	resp = n.handleRPC(hb)
	if !resp.Repl.OK() || resp.Repl.Match != 2 {
		t.Fatalf("heartbeat ack = %+v", resp.Repl)
	}
	if data, ok := n.StandbyRead(1); !ok || data != "hello" {
		t.Fatalf("standby page 1 = %q/%v, want hello", data, ok)
	}
	if data, ok := n.StandbyRead(2); !ok || data != "world" {
		t.Fatalf("standby page 2 = %q/%v, want world", data, ok)
	}

	// Stale-term traffic is refused.
	resp = n.handleRPC(wire.Msg{Type: wire.MsgReplAppend, Repl: &wire.ReplExt{Term: 0, From: "old"}})
	if resp.Repl.OK() {
		t.Fatal("stale-term append accepted")
	}
}

func TestFollowerConflictTruncationSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	n := passiveFollower(t, dir)
	// Term-1 history: three entries, the first committed.
	resp := n.handleRPC(wire.Msg{Type: wire.MsgReplAppend, Repl: &wire.ReplExt{
		Term: 1, From: "a", EntryTerm: 1, Commit: 1,
	}, Params: frameParams(upd(1, 1, "keep"), upd(2, 1, "stale-2"), upd(3, 1, "stale-3"))})
	if !resp.Repl.OK() || resp.Repl.Match != 3 {
		t.Fatalf("seed ack = %+v", resp.Repl)
	}
	// A term-2 leader overwrites LSN 2.. with its own history.
	resp = n.handleRPC(wire.Msg{Type: wire.MsgReplAppend, Repl: &wire.ReplExt{
		Term: 2, From: "b", PrevLSN: 1, PrevTerm: 1, EntryTerm: 2, Commit: 4,
	}, Params: frameParams(upd(2, 1, "new-2"), upd(3, 1, "new-3"), upd(4, 1, "new-4"))})
	if !resp.Repl.OK() || resp.Repl.Match != 4 {
		t.Fatalf("overwrite ack = %+v", resp.Repl)
	}
	n.mu.Lock()
	gotTerm := n.termOfLocked(2)
	gotAfter := n.entries[2].rec.After
	n.mu.Unlock()
	if gotTerm != 2 || gotAfter != "new-2" {
		t.Fatalf("entry 2 = term %d after %q, want term 2 after new-2", gotTerm, gotAfter)
	}
	if data, ok := n.StandbyRead(1); !ok || data != "new-4" {
		t.Fatalf("standby = %q/%v, want new-4", data, ok)
	}
	n.Close()

	// The truncation and the term fences must be durable.
	n2 := passiveFollower(t, dir)
	n2.mu.Lock()
	defer n2.mu.Unlock()
	if n2.lastLSN != 4 || n2.termOfLocked(4) != 2 || n2.termOfLocked(1) != 1 {
		t.Fatalf("restart state: last=%d t4=%d t1=%d", n2.lastLSN, n2.termOfLocked(4), n2.termOfLocked(1))
	}
	if n2.entries[3].rec.After != "new-3" {
		t.Fatalf("restart entry 3 = %q", n2.entries[3].rec.After)
	}
}

func TestSnapshotInstallSeedsFreshFollower(t *testing.T) {
	// Build a real checkpoint by running an engine elsewhere.
	src := t.TempDir()
	db, err := bankEngine(src, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		tx := db.Begin()
		if _, err := tx.Exec(acct(3), "credit", "1"); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	db.Close()
	snap, path, err := checkpoint.Latest(src)
	if err != nil {
		t.Fatalf("latest: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	n := passiveFollower(t, t.TempDir())
	resp := n.handleRPC(wire.Msg{Type: wire.MsgReplSnapshot, Repl: &wire.ReplExt{
		Term: 3, From: "ldr", PrevLSN: snap.LSN, PrevTerm: 3,
	}, Params: []string{string(raw)}})
	if !resp.Repl.OK() || resp.Repl.Match != snap.LSN {
		t.Fatalf("install ack = %+v (snap lsn %d)", resp.Repl, snap.LSN)
	}
	st := n.Status()
	if st.LastLSN != snap.LSN || st.Applied != snap.LSN {
		t.Fatalf("post-install status = %+v", st)
	}
	// The log restarts just past the barrier.
	resp = n.handleRPC(wire.Msg{Type: wire.MsgReplAppend, Repl: &wire.ReplExt{
		Term: 3, From: "ldr", PrevLSN: snap.LSN, PrevTerm: 3, EntryTerm: 3,
	}, Params: frameParams(upd(snap.LSN+1, 1, "past-barrier"))})
	if !resp.Repl.OK() || resp.Repl.Match != snap.LSN+1 {
		t.Fatalf("post-install append ack = %+v", resp.Repl)
	}
	// A stale re-send of the same snapshot is acknowledged, not reinstalled.
	resp = n.handleRPC(wire.Msg{Type: wire.MsgReplSnapshot, Repl: &wire.ReplExt{
		Term: 3, From: "ldr", PrevLSN: snap.LSN, PrevTerm: 3,
	}, Params: []string{string(raw)}})
	if !resp.Repl.OK() {
		t.Fatalf("stale install ack = %+v", resp.Repl)
	}
}

func TestVoteRestriction(t *testing.T) {
	n := passiveFollower(t, t.TempDir())
	resp := n.handleRPC(wire.Msg{Type: wire.MsgReplAppend, Repl: &wire.ReplExt{
		Term: 2, From: "a", EntryTerm: 2,
	}, Params: frameParams(upd(1, 1, "x"), upd(2, 1, "y"))})
	if !resp.Repl.OK() {
		t.Fatalf("seed: %+v", resp.Repl)
	}
	// A candidate whose log ends before ours is refused...
	resp = n.handleRPC(wire.Msg{Type: wire.MsgReplVote, Repl: &wire.ReplExt{
		Term: 3, From: "short", PrevLSN: 1, PrevTerm: 2,
	}})
	if resp.Repl.OK() {
		t.Fatal("granted vote to a shorter log")
	}
	// ...even though the term bumped; an equal log is granted (same term,
	// and the earlier refusal recorded no vote).
	resp = n.handleRPC(wire.Msg{Type: wire.MsgReplVote, Repl: &wire.ReplExt{
		Term: 3, From: "equal", PrevLSN: 2, PrevTerm: 2,
	}})
	if !resp.Repl.OK() {
		t.Fatalf("refused vote for an up-to-date log: %+v", resp.Repl)
	}
	// One vote per term: a second candidate in the same term is refused.
	resp = n.handleRPC(wire.Msg{Type: wire.MsgReplVote, Repl: &wire.ReplExt{
		Term: 3, From: "rival", PrevLSN: 9, PrevTerm: 3,
	}})
	if resp.Repl.OK() {
		t.Fatal("double vote in one term")
	}
}

func TestIsolatedLeaderAbdicatesAndRejoins(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second partition test")
	}
	nodes := startCluster(t, 3)
	ld := waitLeader(t, nodes)
	if err := credit(t, ld, 0, 1); err != nil {
		t.Fatal(err)
	}

	// Partition the leader: its next commit must fail typed (NotLeader, so
	// clients redirect) and the majority must elect a replacement.
	ld.SetIsolated(true)
	err := credit(t, ld, 0, 1)
	if err == nil {
		t.Fatal("commit succeeded on an isolated leader")
	}
	if !errors.Is(err, wire.ErrNotLeader) && !errors.Is(err, storage.ErrWALPoisoned) {
		t.Fatalf("isolated commit error = %v, want NotLeader/Poisoned", err)
	}
	var ld2 *Node
	rest := make([]*Node, 0, 2)
	for _, n := range nodes {
		if n != ld {
			rest = append(rest, n)
		}
	}
	ld2 = waitLeader(t, rest)
	if err := credit(t, ld2, 0, 1); err != nil {
		t.Fatalf("majority-side credit: %v", err)
	}

	// Heal: the deposed leader must rejoin as a follower and catch up.
	ld.SetIsolated(false)
	deadline := time.Now().Add(10 * time.Second)
	want := ld2.Status().CommitIndex
	for {
		st := ld.Status()
		if st.Role == "follower" && st.Term >= ld2.Term() && st.Applied >= want {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("deposed leader stuck: %+v (want term %d applied %d)", st, ld2.Term(), want)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := balance(t, ld2, 0); got != 2 {
		t.Fatalf("balance = %d, want 2 (isolated-side ack must not surface)", got)
	}
}
