package repl

import (
	"errors"
	"os"
	"path/filepath"

	"repro/internal/checkpoint"
	"repro/internal/storage"
	"repro/internal/wire"
)

// ack builds a MsgReplAck carrying this node's term and the given
// success/match/hint fields.
func (n *Node) ackLocked(ok bool, match, hint uint64) wire.Msg {
	re := &wire.ReplExt{Term: n.term, From: n.cfg.ID, Match: match, Hint: hint}
	if ok {
		re.Flags |= wire.ReplFlagOK
	}
	return wire.Msg{Type: wire.MsgReplAck, Repl: re}
}

// handleRPC dispatches one replication request to its handler.
func (n *Node) handleRPC(m wire.Msg) wire.Msg {
	switch m.Type {
	case wire.MsgReplVote:
		return n.handleVote(m)
	case wire.MsgReplAppend:
		return n.handleAppend(m)
	case wire.MsgReplSnapshot:
		return n.handleSnapshot(m)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ackLocked(false, 0, 0)
}

// handleVote implements RequestVote: one vote per term, persisted before
// it is granted, and only for candidates whose log is at least as
// up-to-date — the restriction that makes a quorum-acked entry present on
// every electable node.
func (n *Node) handleVote(m wire.Msg) wire.Msg {
	re := m.Repl
	n.mu.Lock()
	defer n.mu.Unlock()
	if re == nil || n.closed || n.failed != nil {
		return n.ackLocked(false, 0, 0)
	}
	if re.Term < n.term {
		return n.ackLocked(false, 0, 0)
	}
	if re.Term > n.term {
		n.term = re.Term
		n.votedFor = ""
		n.persistLocked()
		n.stepToFollowerLocked()
	}
	lastTerm := n.lastTermLocked()
	upToDate := re.PrevTerm > lastTerm || (re.PrevTerm == lastTerm && re.PrevLSN >= n.lastLSN)
	if (n.votedFor == "" || n.votedFor == re.From) && upToDate {
		n.votedFor = re.From
		n.persistLocked()
		n.resetElectionTimerLocked()
		n.logf("repl: %s: vote for %s in term %d", n.cfg.ID, re.From, n.term)
		return n.ackLocked(true, 0, 0)
	}
	return n.ackLocked(false, 0, 0)
}

// handleAppend implements AppendEntries: term and log-consistency checks,
// conflict truncation of a divergent suffix, durable append (fsync before
// ack — Match is a durability promise, not a buffer position), and commit
// advance into the warm standby.
func (n *Node) handleAppend(m wire.Msg) wire.Msg {
	re := m.Repl
	n.mu.Lock()
	defer n.mu.Unlock()
	if re == nil || n.closed || n.failed != nil {
		return n.ackLocked(false, 0, 0)
	}
	if err := fpReplAppend.Inject(); err != nil {
		return n.ackLocked(false, 0, 0)
	}
	if re.Term < n.term {
		return n.ackLocked(false, 0, 0)
	}
	if re.Term > n.term {
		n.term = re.Term
		n.votedFor = ""
		n.persistLocked()
	}
	if n.role != RoleFollower {
		// A candidate (or a stale leader that somehow shares the term)
		// concedes to the live leader.
		n.stepToFollowerLocked()
	}
	n.leaderID = re.From
	n.leaderAddr = re.Addr
	n.resetElectionTimerLocked()
	if n.rebuilding || n.fw == nil {
		// Mid-demotion: the log is being re-read; ask the leader to retry
		// the same position later.
		return n.ackLocked(false, 0, re.PrevLSN+1)
	}

	// Log consistency.
	switch {
	case re.PrevLSN > n.lastLSN:
		return n.ackLocked(false, 0, n.lastLSN+1)
	case re.PrevLSN < n.snapLSN:
		// Everything at or below the snapshot barrier is committed and
		// immutable, so it agrees with the leader by construction; report
		// that position and let the leader realign. (Not lastLSN — the
		// suffix beyond the barrier is unverified against this leader.)
		return n.ackLocked(true, n.snapLSN, 0)
	case re.PrevLSN > 0 && n.termOfLocked(re.PrevLSN) != re.PrevTerm:
		hint := re.PrevLSN
		if hint <= n.snapLSN {
			hint = n.snapLSN + 1
		}
		return n.ackLocked(false, 0, hint)
	}

	// Decode and sanity-check the batch: contiguous from PrevLSN+1.
	recs := make([]storage.Record, 0, len(m.Params))
	for i, p := range m.Params {
		rec, _, err := storage.DecodeRecordFrame([]byte(p))
		if err != nil || rec.LSN != re.PrevLSN+1+uint64(i) {
			return n.ackLocked(false, 0, 0)
		}
		recs = append(recs, rec)
	}

	// Skip duplicates; truncate on the first term conflict (never past the
	// commit index — a committed entry conflicting is a protocol violation
	// we latch as node failure rather than corrupt the log).
	appendFrom := len(recs)
	for i, rec := range recs {
		if rec.LSN > n.lastLSN {
			appendFrom = i
			break
		}
		if n.termOfLocked(rec.LSN) != re.EntryTerm {
			if err := n.truncateSuffixLocked(rec.LSN - 1); err != nil {
				n.failLocked(err)
				return n.ackLocked(false, 0, 0)
			}
			appendFrom = i
			break
		}
	}
	if newRecs := recs[appendFrom:]; len(newRecs) > 0 {
		first := newRecs[0].LSN
		if n.termOfLocked(first) != re.EntryTerm {
			n.addFenceLocked(re.EntryTerm, first)
			n.persistLocked()
		}
		for _, rec := range newRecs {
			n.fw.Append(rec)
			n.entries[rec.LSN] = entry{term: re.EntryTerm, rec: rec}
		}
		n.lastLSN = newRecs[len(newRecs)-1].LSN
		// Fsync before acking: Match is the durability promise quorum
		// commits are built on.
		if err := n.fw.WaitDurable(n.lastLSN); err != nil {
			n.logf("repl: %s: follower fsync failed: %v", n.cfg.ID, err)
			return n.ackLocked(false, 0, 0)
		}
	}

	// Match covers exactly the verified prefix: PrevLSN plus this batch.
	// Never lastLSN — an untruncated suffix beyond the batch may still
	// diverge from this leader and must not count toward its quorum.
	match := re.PrevLSN + uint64(len(recs))
	if c := min(re.Commit, match); c > n.commitIndex {
		n.commitIndex = c
		n.applyCommittedLocked()
		n.cond.Broadcast()
	}
	return n.ackLocked(true, match, 0)
}

// truncateSuffixLocked discards every log record above keep — the
// follower's conflict resolution when its unreplicated suffix diverges
// from the new leader's history.
func (n *Node) truncateSuffixLocked(keep uint64) error {
	if keep < n.commitIndex {
		return errors.New("repl: leader demands truncation below the commit index")
	}
	_ = n.fw.Close()
	n.fw = nil
	if err := storage.TruncateWALAbove(n.cfg.Dir, keep); err != nil {
		return err
	}
	for len(n.fences) > 0 && n.fences[len(n.fences)-1].First > keep {
		n.fences = n.fences[:len(n.fences)-1]
	}
	n.persistLocked()
	for lsn := keep + 1; lsn <= n.lastLSN; lsn++ {
		delete(n.entries, lsn)
	}
	n.lastLSN = keep
	fw, _, err := storage.OpenFileWAL(n.cfg.Dir, n.fwOptions())
	if err != nil {
		return err
	}
	n.fw = fw
	n.logf("repl: %s: truncated divergent suffix above %d", n.cfg.ID, keep)
	return nil
}

// handleSnapshot implements InstallSnapshot: replace the whole local log
// with the leader's checkpoint file — the catch-up path for a follower
// whose log trails the leader's entry cache floor.
func (n *Node) handleSnapshot(m wire.Msg) wire.Msg {
	re := m.Repl
	n.mu.Lock()
	defer n.mu.Unlock()
	if re == nil || n.closed || n.failed != nil || len(m.Params) != 1 {
		return n.ackLocked(false, 0, 0)
	}
	if re.Term < n.term {
		return n.ackLocked(false, 0, 0)
	}
	if re.Term > n.term {
		n.term = re.Term
		n.votedFor = ""
		n.persistLocked()
	}
	if n.role != RoleFollower {
		n.stepToFollowerLocked()
	}
	n.leaderID = re.From
	n.leaderAddr = re.Addr
	n.resetElectionTimerLocked()
	if n.rebuilding || n.fw == nil {
		return n.ackLocked(false, 0, 0)
	}
	if re.PrevLSN <= n.lastLSN {
		// Already covered; report the committed prefix (the only part of
		// the local log known to agree with any leader).
		return n.ackLocked(true, n.commitIndex, 0)
	}

	// Validate before destroying anything: write to a temp name and prove
	// it loads as a checkpoint.
	raw := []byte(m.Params[0])
	tmp := filepath.Join(n.cfg.Dir, "repl-snapshot.tmp")
	if err := writeFileSync(tmp, raw); err != nil {
		n.failLocked(err)
		return n.ackLocked(false, 0, 0)
	}
	snap, err := checkpoint.Load(tmp)
	if err != nil || snap.LSN != re.PrevLSN {
		os.Remove(tmp)
		n.logf("repl: %s: rejected snapshot install: %v", n.cfg.ID, err)
		return n.ackLocked(false, 0, 0)
	}

	// Install: drop the old log wholesale, land the checkpoint under its
	// real name, and restart the log just past the barrier.
	_ = n.fw.Close()
	n.fw = nil
	segs, err := storage.WALSegments(n.cfg.Dir)
	if err != nil {
		n.failLocked(err)
		return n.ackLocked(false, 0, 0)
	}
	for _, seg := range segs {
		if err := os.Remove(filepath.Join(n.cfg.Dir, seg.Name)); err != nil {
			n.failLocked(err)
			return n.ackLocked(false, 0, 0)
		}
	}
	final := filepath.Join(n.cfg.Dir, checkpoint.FileName(snap.LSN))
	if err := os.Rename(tmp, final); err != nil {
		n.failLocked(err)
		return n.ackLocked(false, 0, 0)
	}
	if err := syncDir(n.cfg.Dir); err != nil {
		n.failLocked(err)
		return n.ackLocked(false, 0, 0)
	}
	n.snapLSN, n.snapTerm = snap.LSN, re.PrevTerm
	if re.PrevTerm == 0 {
		n.fences = nil
	} else {
		n.fences = []fence{{Term: re.PrevTerm, First: snap.LSN}}
	}
	n.persistLocked()
	n.entries = make(map[uint64]entry)
	n.firstLSN = snap.LSN + 1
	n.lastLSN = snap.LSN
	if n.commitIndex < snap.LSN {
		n.commitIndex = snap.LSN
	}
	n.standby = storage.NewMemStoreFromSnapshot(snap.Pages, snap.NextPage, snap.PageSize)
	n.applied = snap.LSN
	fw, _, err := storage.OpenFileWAL(n.cfg.Dir, n.fwOptions())
	if err != nil {
		n.failLocked(err)
		return n.ackLocked(false, 0, 0)
	}
	n.fw = fw
	n.logf("repl: %s: installed snapshot at %d/t%d", n.cfg.ID, n.snapLSN, n.snapTerm)
	return n.ackLocked(true, n.lastLSN, 0)
}
