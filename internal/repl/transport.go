package repl

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/wire"
)

const (
	dialTimeout = time.Second
	callTimeout = time.Second
)

// transport carries replication RPCs between nodes on a dedicated TCP
// listener (separate from the client protocol port), reusing the wire
// frame codec. Calls are synchronous request/response with one cached
// connection per peer; any error tears the connection down and the next
// call redials — replication RPCs are idempotent, so the retry lives in
// the peer loop, not here.
type transport struct {
	n    *Node
	ln   net.Listener
	addr string

	mu      sync.Mutex
	conns   map[string]*peerConn
	inbound map[net.Conn]struct{}
	closed  bool
}

// peerConn is one cached outbound connection. Its mutex serializes the
// write/read exchange; peer loops never issue concurrent calls to the
// same peer, but vote fan-out can race a heartbeat.
type peerConn struct {
	mu   sync.Mutex
	c    net.Conn
	seq  uint64
	dead bool
}

func newTransport(n *Node, addr string) (*transport, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("repl: listen %s: %w", addr, err)
	}
	tr := &transport{n: n, ln: ln, addr: ln.Addr().String(),
		conns: make(map[string]*peerConn), inbound: make(map[net.Conn]struct{})}
	n.wg.Add(1)
	go tr.acceptLoop()
	return tr, nil
}

func (tr *transport) acceptLoop() {
	defer tr.n.wg.Done()
	for {
		c, err := tr.ln.Accept()
		if err != nil {
			return // listener closed
		}
		tr.mu.Lock()
		if tr.closed {
			tr.mu.Unlock()
			c.Close()
			return
		}
		tr.inbound[c] = struct{}{}
		tr.mu.Unlock()
		tr.n.wg.Add(1)
		go tr.handleConn(c)
	}
}

// handleConn serves inbound RPCs: read a request, dispatch, echo its Seq
// on the reply. An isolated node drops the connection without answering —
// from the peer's side that is indistinguishable from a network partition.
func (tr *transport) handleConn(c net.Conn) {
	defer tr.n.wg.Done()
	defer func() {
		c.Close()
		tr.mu.Lock()
		delete(tr.inbound, c)
		tr.mu.Unlock()
	}()
	for {
		_ = c.SetReadDeadline(time.Time{})
		m, err := wire.ReadMsg(c)
		if err != nil {
			return
		}
		if tr.n.isolated.Load() {
			return
		}
		resp := tr.n.handleRPC(m)
		resp.Seq = m.Seq
		_ = c.SetWriteDeadline(time.Now().Add(callTimeout))
		if err := wire.WriteMsg(c, resp); err != nil {
			return
		}
	}
}

// call sends one RPC to p and waits for its reply.
func (tr *transport) call(p Peer, m wire.Msg) (wire.Msg, error) {
	if tr.n.isolated.Load() {
		return wire.Msg{}, errIsolated
	}
	if err := fpReplSend.Inject(); err != nil {
		return wire.Msg{}, err
	}
	pc, err := tr.peer(p)
	if err != nil {
		return wire.Msg{}, err
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.c == nil {
		c, err := net.DialTimeout("tcp", p.Addr, dialTimeout)
		if err != nil {
			tr.drop(p.ID, pc)
			return wire.Msg{}, err
		}
		pc.c = c
	}
	pc.seq++
	m.Seq = pc.seq
	deadline := time.Now().Add(callTimeout)
	_ = pc.c.SetDeadline(deadline)
	if err := wire.WriteMsg(pc.c, m); err != nil {
		tr.drop(p.ID, pc)
		return wire.Msg{}, err
	}
	resp, err := wire.ReadMsg(pc.c)
	if err != nil {
		tr.drop(p.ID, pc)
		return wire.Msg{}, err
	}
	if resp.Seq != m.Seq {
		tr.drop(p.ID, pc)
		return wire.Msg{}, fmt.Errorf("repl: response seq %d for request %d", resp.Seq, m.Seq)
	}
	return resp, nil
}

// peer returns (creating if needed) the cached connection slot for id.
func (tr *transport) peer(p Peer) (*peerConn, error) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.closed {
		return nil, fmt.Errorf("repl: transport closed")
	}
	pc := tr.conns[p.ID]
	if pc == nil {
		pc = &peerConn{}
		tr.conns[p.ID] = pc
	}
	return pc, nil
}

// drop closes pc's socket and forgets the slot (caller holds pc.mu).
func (tr *transport) drop(id string, pc *peerConn) {
	if pc.c != nil {
		_ = pc.c.Close()
		pc.c = nil
	}
	pc.dead = true
	tr.mu.Lock()
	if tr.conns[id] == pc {
		delete(tr.conns, id)
	}
	tr.mu.Unlock()
}

// close shuts the listener and every cached connection. Inbound handler
// goroutines exit on their next read; tr.n.wg joins them.
func (tr *transport) close() {
	tr.mu.Lock()
	tr.closed = true
	conns := tr.conns
	tr.conns = make(map[string]*peerConn)
	for c := range tr.inbound {
		_ = c.Close() // unblocks the handler's pending read
	}
	tr.mu.Unlock()
	_ = tr.ln.Close()
	for _, pc := range conns {
		pc.mu.Lock()
		if pc.c != nil {
			_ = pc.c.Close()
			pc.c = nil
		}
		pc.mu.Unlock()
	}
}
