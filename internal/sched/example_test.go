package sched_test

import (
	"fmt"

	"repro/internal/paperex"
	"repro/internal/sched"
	"repro/internal/txn"
)

// Analyzing the paper's Example 1: the page-level T1/T2 conflict is
// absorbed by commuting leaf inserts, while the same-key T1/T3 conflict is
// inherited to the top level.
func ExampleAnalyze() {
	sys, order := paperex.Example1()
	a, err := sched.Analyze(sys, paperex.Registry(), order)
	if err != nil {
		panic(err)
	}
	rep := a.Check()
	fmt.Println("oo-serializable:", rep.SystemOOSerializable)
	fmt.Println("top-level deps: ", a.TranDep[txn.SystemObject].Edges())
	// Output:
	// oo-serializable: true
	// top-level deps:  [[T1 T3]]
}
