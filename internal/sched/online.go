package sched

import (
	"fmt"

	"repro/internal/commut"
	"repro/internal/graph"
	"repro/internal/txn"
)

// StreamEvent is one dispatch in a live stream — the same shape as
// trace.Event, duplicated here so the trace package's tests can depend on
// sched without an import cycle.
type StreamEvent struct {
	ID       string
	Parent   string
	ObjType  string
	ObjName  string
	Method   string
	Params   []string
	Parallel bool
	Aborted  bool
}

// Online is the incremental counterpart of Analyze: it consumes trace
// events one at a time (a certifier tailing a live system) and maintains
// the same dependency relations, reporting the first oo-serializability
// violation as soon as the closing edge arrives instead of after the fact.
//
// Scope: Online expects engine-style traces where the primitive actions
// are the operations on the configured primitive object types (by default
// just "page", the engine's zero layer) and where no action calls into an
// object an ancestor already accessed — the Definition 5 extension cannot
// be applied retroactively to a stream. Add returns an error if it sees
// such a cycle. The batch Analyze remains the reference; Online is
// validated differentially against it.
type Online struct {
	reg       *commut.Registry
	primitive map[string]bool

	actions map[string]*txn.Action
	// aborted records the ids of aborted events AND of events under an
	// aborted ancestor, so a whole rolled-back subtree is skipped silently
	// instead of tripping the unknown-parent check. This relies on the
	// dispatch-order stream contract (see Add); entries live until the
	// caller prunes them with PruneAborted.
	aborted map[string]bool
	onObj   map[txn.OID][]*txn.Action
	primSeq int

	actDep  map[txn.OID]*graph.Digraph
	tranDep map[txn.OID]*graph.Digraph
	added   map[txn.OID]*graph.Digraph
	cross   *graph.Digraph
	global  *graph.Digraph

	primPos map[string]int

	violation []string
}

// NewOnline returns an empty certifier. primitiveTypes lists the object
// types whose actions are primitives (nil means {"page"}).
func NewOnline(reg *commut.Registry, primitiveTypes ...string) *Online {
	if len(primitiveTypes) == 0 {
		primitiveTypes = []string{"page"}
	}
	prim := make(map[string]bool, len(primitiveTypes))
	for _, t := range primitiveTypes {
		prim[t] = true
	}
	return &Online{
		reg:       reg,
		primitive: prim,
		actions:   make(map[string]*txn.Action),
		aborted:   make(map[string]bool),
		onObj:     make(map[txn.OID][]*txn.Action),
		actDep:    make(map[txn.OID]*graph.Digraph),
		tranDep:   make(map[txn.OID]*graph.Digraph),
		added:     make(map[txn.OID]*graph.Digraph),
		cross:     graph.New(),
		global:    graph.New(),
		primPos:   make(map[string]int),
	}
}

func (o *Online) graphFor(m map[txn.OID]*graph.Digraph, obj txn.OID) *graph.Digraph {
	g, ok := m[obj]
	if !ok {
		g = graph.New()
		m[obj] = g
	}
	return g
}

// Violation returns a witness cycle once the stream stopped being
// oo-serializable, or nil.
func (o *Online) Violation() []string { return o.violation }

// OK reports whether the stream so far is oo-serializable.
func (o *Online) OK() bool { return o.violation == nil }

// Add ingests one event. It returns an error for malformed streams
// (unknown parents, duplicate ids, call cycles); a serializability
// violation is NOT an error — check OK/Violation.
//
// Stream contract: events arrive in dispatch order, so an action's event
// precedes every descendant's. Aborts are carried on the dispatch records
// themselves (trace.Recorder's MarkAborted flags the whole recorded
// subtree), which means an aborted parent's record — flag already set —
// precedes its children's; a child whose parent is neither known nor
// aborted is therefore a malformed stream, not a reordering, and Add
// reports it as the unknown-parent error.
func (o *Online) Add(ev StreamEvent) error {
	if ev.Aborted {
		o.aborted[ev.ID] = true
		return nil
	}
	if ev.Parent != "" && o.aborted[ev.Parent] {
		// A child of an aborted action is part of the rolled-back subtree;
		// remember its id so ITS children are skipped too.
		o.aborted[ev.ID] = true
		return nil
	}
	if _, dup := o.actions[ev.ID]; dup {
		return fmt.Errorf("sched: online: duplicate action id %q", ev.ID)
	}
	a := &txn.Action{
		ID: ev.ID,
		Msg: txn.Message{
			Object: txn.OID{Type: ev.ObjType, Name: ev.ObjName},
			Inv:    commut.Invocation{Method: ev.Method, Params: ev.Params},
		},
	}
	if ev.Parent == "" {
		a.Process = ev.ID
	} else {
		p, ok := o.actions[ev.Parent]
		if !ok {
			return fmt.Errorf("sched: online: action %q before its parent %q", ev.ID, ev.Parent)
		}
		a.Parent = p
		if ev.Parallel {
			a.Process = ev.ID
		} else {
			a.Process = p.Process
		}
		p.Children = append(p.Children, a)
		for q := p; q != nil; q = q.Parent {
			if q.Msg.Object == a.Msg.Object && a.Msg.Object != txn.SystemObject {
				return fmt.Errorf("sched: online: call cycle on %s (action %s under %s); use the batch checker with Extend",
					a.Msg.Object.Name, a.ID, q.ID)
			}
		}
	}
	o.actions[ev.ID] = a

	obj := a.Msg.Object
	if !o.primitive[obj.Type] {
		o.onObj[obj] = append(o.onObj[obj], a)
		return nil
	}

	// A primitive arrived: Axiom 1 orders it against every earlier
	// conflicting primitive on the object; each new edge propagates.
	o.primPos[a.ID] = o.primSeq
	o.primSeq++
	peers := o.onObj[obj]
	o.onObj[obj] = append(peers, a)
	for _, b := range peers {
		if o.conflict(obj, b, a) {
			o.addActDep(obj, b, a)
		}
	}
	return nil
}

func (o *Online) conflict(obj txn.OID, x, y *txn.Action) bool {
	if x == y || x.Process == y.Process {
		return false
	}
	return !o.reg.Lookup(obj.Type).Commutes(x.Msg.Inv, y.Msg.Inv)
}

// addActDep inserts x ⊲ y at obj and propagates (Definition 10).
func (o *Online) addActDep(obj txn.OID, x, y *txn.Action) {
	g := o.graphFor(o.actDep, obj)
	if g.HasEdge(x.ID, y.ID) {
		return
	}
	g.AddEdge(x.ID, y.ID)
	o.addGlobal(x.ID, y.ID)
	if g.HasEdge(y.ID, x.ID) && o.violation == nil {
		o.violation = []string{x.ID, y.ID}
	}
	if !o.conflict(obj, x, y) {
		return // commuting callers absorb the dependency
	}
	t, u := txn.CallerOn(x), txn.CallerOn(y)
	if t == u {
		return
	}
	o.addTranDep(obj, t, u)
}

// addTranDep inserts t → u in obj's transaction dependencies and injects
// it per Definitions 11/15.
func (o *Online) addTranDep(obj txn.OID, t, u *txn.Action) {
	g := o.graphFor(o.tranDep, obj)
	if g.HasEdge(t.ID, u.ID) {
		return
	}
	g.AddEdge(t.ID, u.ID)
	o.addGlobal(t.ID, u.ID)
	if t.Msg.Object == u.Msg.Object {
		o.addActDep(t.Msg.Object, t, u)
		return
	}
	o.graphFor(o.added, t.Msg.Object).AddEdge(t.ID, u.ID)
	o.graphFor(o.added, u.Msg.Object).AddEdge(t.ID, u.ID)
	o.addCross(t, u)
}

// addCross lifts a cross-object pair along the caller chain (the
// conservative strengthening of Definition 15, matching Analyze).
func (o *Online) addCross(t, u *txn.Action) {
	if o.cross.HasEdge(t.ID, u.ID) {
		return
	}
	o.cross.AddEdge(t.ID, u.ID)
	o.addGlobal(t.ID, u.ID)
	tc, uc := txn.CallerOn(t), txn.CallerOn(u)
	if tc == uc {
		return
	}
	if tc.Msg.Object == uc.Msg.Object {
		o.addActDep(tc.Msg.Object, tc, uc)
		return
	}
	o.graphFor(o.added, tc.Msg.Object).AddEdge(tc.ID, uc.ID)
	o.graphFor(o.added, uc.Msg.Object).AddEdge(tc.ID, uc.ID)
	o.addCross(tc, uc)
}

// addGlobal tracks every dependency in one graph and detects the first
// cycle as it closes.
func (o *Online) addGlobal(from, to string) {
	if o.global.HasEdge(from, to) {
		return
	}
	// Reachability test BEFORE inserting: a to→from path means this edge
	// closes a cycle.
	if o.violation == nil && (to == from || o.global.Reachable(to, from)) {
		o.global.AddEdge(from, to)
		cyc := o.global.FindCycle()
		o.violation = cyc
		return
	}
	o.global.AddEdge(from, to)
}

// PruneAborted forgets the given aborted ids. The aborted set otherwise
// grows for the lifetime of the stream (there is no end-of-subtree marker
// in the event shape), so a long-lived certifier should prune a subtree's
// ids once it knows no more of its events can arrive — e.g. after the
// transaction's rollback completed. Pruning too early re-exposes late
// descendants to the unknown-parent error.
func (o *Online) PruneAborted(ids ...string) {
	for _, id := range ids {
		delete(o.aborted, id)
	}
}

// TranDeps exposes an object's transaction dependency relation (nil if the
// object has none yet).
func (o *Online) TranDeps(obj txn.OID) *graph.Digraph { return o.tranDep[obj] }

// ActDeps exposes an object's action dependency relation.
func (o *Online) ActDeps(obj txn.OID) *graph.Digraph { return o.actDep[obj] }
