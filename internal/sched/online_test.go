package sched

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/paperex"
	"repro/internal/txn"
)

// feed converts a formal system + primitive order into the event stream an
// engine would emit: tree actions in pre-order per transaction, primitives
// at their execution positions.
func feed(sys *txn.System, order []string) []StreamEvent {
	pos := map[string]int{}
	for i, id := range order {
		pos[id] = i
	}
	var evs []StreamEvent
	var walk func(a *txn.Action)
	walk = func(a *txn.Action) {
		parent := ""
		if a.Parent != nil {
			parent = a.Parent.ID
		}
		if !a.Primitive() || a.Msg.Object == txn.SystemObject {
			evs = append(evs, StreamEvent{
				ID: a.ID, Parent: parent,
				ObjType: a.Msg.Object.Type, ObjName: a.Msg.Object.Name,
				Method: a.Msg.Inv.Method, Params: a.Msg.Inv.Params,
				Parallel: a.Parent != nil && a.Process == a.ID,
			})
		}
		for _, c := range a.Children {
			walk(c)
		}
	}
	for _, t := range sys.Top {
		walk(t)
	}
	// Primitives arrive in execution order, interleaved after their
	// ancestors (which the pre-order pass already emitted).
	for _, id := range order {
		a := findAction(sys, id)
		evs = append(evs, StreamEvent{
			ID: a.ID, Parent: a.Parent.ID,
			ObjType: a.Msg.Object.Type, ObjName: a.Msg.Object.Name,
			Method: a.Msg.Inv.Method, Params: a.Msg.Inv.Params,
		})
	}
	_ = pos
	return evs
}

func findAction(sys *txn.System, id string) *txn.Action {
	a := sys.Find(id)
	if a == nil {
		panic("unknown action " + id)
	}
	return a
}

func TestOnlineMatchesBatchOnExamples(t *testing.T) {
	for name, build := range map[string]func() (*txn.System, []string){
		"example1": paperex.Example1,
		"example4": paperex.Example4,
	} {
		t.Run(name, func(t *testing.T) {
			sys, order := build()
			batch := mustAnalyze(t, sys, paperex.Registry(), order)
			batchOK := batch.Check().SystemOOSerializable

			sys2, order2 := build()
			on := NewOnline(paperex.Registry())
			for _, ev := range feed(sys2, order2) {
				if err := on.Add(ev); err != nil {
					t.Fatal(err)
				}
			}
			if on.OK() != batchOK {
				t.Fatalf("online=%v batch=%v", on.OK(), batchOK)
			}
			// The per-object transaction dependencies agree.
			for _, o := range batch.Objects() {
				og := on.TranDeps(o)
				for _, e := range batch.TranDep[o].Edges() {
					if og == nil || !og.HasEdge(e[0], e[1]) {
						t.Errorf("%s: online missing tranDep %v", o.Name, e)
					}
				}
				if og != nil {
					for _, e := range og.Edges() {
						if !batch.TranDep[o].HasEdge(e[0], e[1]) {
							t.Errorf("%s: online has extra tranDep %v", o.Name, e)
						}
					}
				}
			}
		})
	}
}

func TestOnlineDetectsViolationEarly(t *testing.T) {
	leafA := txn.OID{Type: paperex.TypeLeaf, Name: "LeafA"}
	leafB := txn.OID{Type: paperex.TypeLeaf, Name: "LeafB"}
	pageA := txn.OID{Type: paperex.TypePage, Name: "PageA"}
	pageB := txn.OID{Type: paperex.TypePage, Name: "PageB"}

	t1 := txn.NewTransaction("T1")
	ia1 := t1.Call(nil, leafA, "insert", "kA")
	wa1 := t1.Call(ia1, pageA, "write")
	sb1 := t1.Call(nil, leafB, "search", "kB")
	rb1 := t1.Call(sb1, pageB, "read")

	t2 := txn.NewTransaction("T2")
	ib2 := t2.Call(nil, leafB, "insert", "kB")
	wb2 := t2.Call(ib2, pageB, "write")
	sa2 := t2.Call(nil, leafA, "search", "kA")
	ra2 := t2.Call(sa2, pageA, "read")

	sys := txn.NewSystem(t1.Build(), t2.Build())
	order := []string{wa1.ID, wb2.ID, rb1.ID, ra2.ID}

	on := NewOnline(paperex.Registry())
	evs := feed(sys, order)
	var violatedAt int = -1
	for i, ev := range evs {
		if err := on.Add(ev); err != nil {
			t.Fatal(err)
		}
		if !on.OK() && violatedAt < 0 {
			violatedAt = i
		}
	}
	if violatedAt < 0 {
		t.Fatal("online certifier missed the same-key cycle")
	}
	// The violation fires at the closing primitive, not at the end.
	if violatedAt != len(evs)-1 {
		t.Logf("violation detected at event %d of %d", violatedAt, len(evs))
	}
	if len(on.Violation()) == 0 {
		t.Fatal("no witness")
	}
}

func TestOnlineStreamValidation(t *testing.T) {
	on := NewOnline(paperex.Registry())
	if err := on.Add(StreamEvent{ID: "T1.1", Parent: "T1", ObjType: "page", ObjName: "P", Method: "read"}); err == nil {
		t.Fatal("orphan must fail")
	}
	if err := on.Add(StreamEvent{ID: "T1", ObjType: "system", ObjName: "S", Method: "T1"}); err != nil {
		t.Fatal(err)
	}
	if err := on.Add(StreamEvent{ID: "T1", ObjType: "system", ObjName: "S", Method: "T1"}); err == nil {
		t.Fatal("duplicate must fail")
	}
	// Call cycle (ancestor object revisited) is rejected with a pointer to
	// the batch checker.
	if err := on.Add(StreamEvent{ID: "T1.1", Parent: "T1", ObjType: "node", ObjName: "N", Method: "insert"}); err != nil {
		t.Fatal(err)
	}
	if err := on.Add(StreamEvent{ID: "T1.1.1", Parent: "T1.1", ObjType: "node", ObjName: "N", Method: "rearrange"}); err == nil {
		t.Fatal("call cycle must be rejected")
	}
	// Aborted events are skipped silently.
	if err := on.Add(StreamEvent{ID: "T9", ObjType: "system", ObjName: "S", Method: "T9", Aborted: true}); err != nil {
		t.Fatal(err)
	}
	if on.ActDeps(txn.OID{Type: "page", Name: "P"}) != nil {
		t.Fatal("no deps expected yet")
	}
}

// TestOnlineAbortedSubtreeSkipped: descendants of an aborted action are
// part of the rolled-back subtree and must be skipped silently, not fail
// the "action before its parent" stream check.
func TestOnlineAbortedSubtreeSkipped(t *testing.T) {
	on := NewOnline(paperex.Registry())
	if err := on.Add(StreamEvent{ID: "T9", ObjType: "system", ObjName: "S", Method: "T9", Aborted: true}); err != nil {
		t.Fatal(err)
	}
	// Child and grandchild of the aborted root arrive without the Aborted
	// flag (e.g. the recorder marked only the subtree root): both skipped.
	if err := on.Add(StreamEvent{ID: "T9.1", Parent: "T9", ObjType: "node", ObjName: "N", Method: "insert"}); err != nil {
		t.Fatalf("child of aborted parent: %v", err)
	}
	if err := on.Add(StreamEvent{ID: "T9.1.1", Parent: "T9.1", ObjType: "page", ObjName: "P", Method: "write"}); err != nil {
		t.Fatalf("grandchild of aborted parent: %v", err)
	}
	if !on.OK() {
		t.Fatal("aborted subtree must not affect the verdict")
	}
	// The skipped subtree left no dependency state behind.
	if on.ActDeps(txn.OID{Type: "page", Name: "P"}) != nil {
		t.Fatal("aborted writes must not create dependencies")
	}
	// A live transaction on the same objects still certifies normally.
	if err := on.Add(StreamEvent{ID: "T10", ObjType: "system", ObjName: "S", Method: "T10"}); err != nil {
		t.Fatal(err)
	}
	if err := on.Add(StreamEvent{ID: "T10.1", Parent: "T10", ObjType: "page", ObjName: "P", Method: "write"}); err != nil {
		t.Fatal(err)
	}
	if !on.OK() {
		t.Fatal("live traffic after an aborted subtree must validate")
	}
	// An orphan whose parent never appeared still fails.
	if err := on.Add(StreamEvent{ID: "T11.1", Parent: "T11", ObjType: "page", ObjName: "P", Method: "read"}); err == nil {
		t.Fatal("orphan with unknown (non-aborted) parent must fail")
	}
}

// Property: on random extension-free systems, the online verdict matches
// the batch verdict.
func TestPropertyOnlineMatchesBatch(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var tops []*txn.Action
		var prim []*txn.Action
		n := 2 + r.Intn(4)
		for i := 0; i < n; i++ {
			b := txn.NewTransaction(fmt.Sprintf("T%d", i+1))
			for j := 0; j < 1+r.Intn(3); j++ {
				k := fmt.Sprintf("k%d", r.Intn(3))
				method := []string{"insert", "search"}[r.Intn(2)]
				e := b.Call(nil, paperex.Enc, method, k)
				l := b.Call(e, paperex.Leaf11, method, k)
				pg := txn.OID{Type: paperex.TypePage, Name: fmt.Sprintf("P%d", r.Intn(2))}
				how := "write"
				if method == "search" {
					how = "read"
				}
				prim = append(prim, b.Call(l, pg, how))
			}
			tops = append(tops, b.Build())
		}
		// Random interleaving of the primitives.
		r.Shuffle(len(prim), func(i, j int) { prim[i], prim[j] = prim[j], prim[i] })
		order := make([]string, len(prim))
		for i, p := range prim {
			order[i] = p.ID
		}
		sys := txn.NewSystem(tops...)

		batch, err := Analyze(sys, paperex.Registry(), order)
		if err != nil {
			return false
		}
		batchOK := batch.Check().SystemOOSerializable

		on := NewOnline(paperex.Registry())
		for _, ev := range feed(sys, order) {
			if err := on.Add(ev); err != nil {
				return false
			}
		}
		return on.OK() == batchOK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkOnlineAdd(b *testing.B) {
	reg := paperex.Registry()
	sys, order := paperex.Example4()
	evs := feed(sys, order)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		on := NewOnline(reg)
		for _, ev := range evs {
			if err := on.Add(ev); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// TestOnlinePruneAborted: the aborted set has no automatic expiry (the
// stream carries no end-of-subtree marker), so callers bound it with
// PruneAborted once a subtree's events can no longer arrive; a pruned
// subtree's late descendants revert to the unknown-parent error.
func TestOnlinePruneAborted(t *testing.T) {
	on := NewOnline(paperex.Registry())
	if err := on.Add(StreamEvent{ID: "T9", ObjType: "system", ObjName: "S", Method: "T9", Aborted: true}); err != nil {
		t.Fatal(err)
	}
	if err := on.Add(StreamEvent{ID: "T9.1", Parent: "T9", ObjType: "node", ObjName: "N", Method: "insert"}); err != nil {
		t.Fatal(err)
	}
	if len(on.aborted) != 2 {
		t.Fatalf("aborted set = %v, want the root and its child", on.aborted)
	}
	on.PruneAborted("T9", "T9.1")
	if len(on.aborted) != 0 {
		t.Fatalf("aborted set = %v after pruning, want empty", on.aborted)
	}
	if err := on.Add(StreamEvent{ID: "T9.2", Parent: "T9", ObjType: "page", ObjName: "P", Method: "read"}); err == nil {
		t.Fatal("descendant arriving after its subtree was pruned must fail the stream check")
	}
}
