// Package sched implements the paper's serializability theory (Definitions
// 6-16): object schedules, the mutually recursive action- and
// transaction-dependency relations, conformance, seriality, equivalence,
// object-oriented serializability of an object schedule (Definition 13) and
// of a whole system schedule (Definition 16), plus a conventional
// conflict-serializability checker used as the baseline the paper compares
// against.
//
// The analysis is offline: given an (extended) transaction system, the
// commutativity registry, and the execution order of the primitive actions
// (the knowledge Axiom 1 postulates), Analyze computes the least fixpoint
// of the paper's inheritance rules:
//
//   - Axiom 1 seeds the action dependency relation of each object with the
//     execution order of its conflicting primitive actions.
//   - Definition 10 lifts conflicting action dependencies at O to
//     transaction dependencies between the calling actions.
//   - Definition 11 injects a transaction dependency computed at P into the
//     action dependency relation of O when both transactions are actions on
//     O; commuting callers absorb the dependency and inheritance stops —
//     the source of the extra concurrency the paper claims.
//   - Definition 15 records transaction dependencies whose endpoints live
//     on different objects redundantly at both objects (the "added" action
//     dependency relation).
//
// The rules are monotone over finite relations, so the fixpoint exists and
// is unique; iteration to stability computes it.
package sched

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/commut"
	"repro/internal/graph"
	"repro/internal/txn"
)

// Analysis holds the fixpoint of the dependency relations for one executed
// schedule of a transaction system.
type Analysis struct {
	Sys *txn.System
	Reg *commut.Registry

	// PrimPos maps primitive action IDs to their execution position.
	PrimPos map[string]int

	// ActDep maps each object to its action dependency relation ⊲ over
	// ACT_O (Definition 11), nodes are action IDs.
	ActDep map[txn.OID]*graph.Digraph
	// TranDep maps each object to its transaction dependency relation over
	// TRA_O (Definition 10).
	TranDep map[txn.OID]*graph.Digraph
	// Added maps each object to its added action dependency relation
	// (Definition 15): transaction dependencies recorded elsewhere with
	// exactly one endpoint on this object.
	Added map[txn.OID]*graph.Digraph
	// cross is the global set of cross-object dependency pairs awaiting
	// upward lifting (see the package comment on the conservative
	// strengthening of Definition 15).
	cross *graph.Digraph

	actions map[string]*txn.Action
	// onObj caches ACT_O per object.
	onObj map[txn.OID][]*txn.Action
}

// Analyze runs the fixpoint. primOrder is the execution order of ALL
// primitive actions of the system (Axiom 1's underlying knowledge); it must
// list every primitive action exactly once. The system should already be
// extended (txn.System.Extend) — Analyze calls Extend itself to be safe,
// which is a no-op on extended systems.
func Analyze(sys *txn.System, reg *commut.Registry, primOrder []string) (*Analysis, error) {
	sys.Extend()

	a := &Analysis{
		Sys:     sys,
		Reg:     reg,
		PrimPos: make(map[string]int),
		ActDep:  make(map[txn.OID]*graph.Digraph),
		TranDep: make(map[txn.OID]*graph.Digraph),
		Added:   make(map[txn.OID]*graph.Digraph),
		cross:   graph.New(),
		actions: make(map[string]*txn.Action),
		onObj:   make(map[txn.OID][]*txn.Action),
	}
	for _, act := range sys.AllActions() {
		a.actions[act.ID] = act
		a.onObj[act.Msg.Object] = append(a.onObj[act.Msg.Object], act)
	}

	// Validate and index the primitive order. Virtual duplicates introduced
	// by the Definition 5 extension are bookkeeping actions, not executed
	// ones: they must not appear and are not required.
	for i, id := range primOrder {
		act, ok := a.actions[id]
		if !ok {
			return nil, fmt.Errorf("sched: primitive order references unknown action %q", id)
		}
		if !act.Primitive() {
			return nil, fmt.Errorf("sched: action %q in primitive order is not primitive", id)
		}
		if act.IsVirtual {
			return nil, fmt.Errorf("sched: virtual action %q must not appear in execution order", id)
		}
		if _, dup := a.PrimPos[id]; dup {
			return nil, fmt.Errorf("sched: action %q appears twice in primitive order", id)
		}
		a.PrimPos[id] = i
	}
	for _, act := range sys.AllActions() {
		if act.Primitive() && !act.IsVirtual && act.Msg.Object != txn.SystemObject {
			if _, ok := a.PrimPos[act.ID]; !ok {
				return nil, fmt.Errorf("sched: primitive action %q missing from execution order", act.ID)
			}
		}
	}

	objs := a.objects()
	for _, o := range objs {
		a.ActDep[o] = graph.New()
		a.TranDep[o] = graph.New()
		a.Added[o] = graph.New()
		for _, act := range a.onObj[o] {
			a.ActDep[o].AddNode(act.ID)
		}
	}

	// Axiom 1: conflicting primitive actions are ordered by execution.
	// On virtual objects (Definition 5) the conflicting pairs involve the
	// moved action and/or virtual duplicates, which are not executed
	// primitives; there the order is derived from the execution spans of
	// the underlying real primitives (a duplicate stands for its original).
	// Overlapping spans of conflicting actions yield dependencies in both
	// directions — a contradiction that Definition 13(ii) then rejects,
	// which is the conservative reading of "actions have accessed an
	// inconsistent state".
	for _, o := range objs {
		acts := a.onObj[o]
		virtual := o.Virtual()
		for i := 0; i < len(acts); i++ {
			for j := i + 1; j < len(acts); j++ {
				x, y := acts[i], acts[j]
				if !a.conflict(o, x, y) {
					continue
				}
				if x.Primitive() && y.Primitive() && !x.IsVirtual && !y.IsVirtual {
					if a.PrimPos[x.ID] < a.PrimPos[y.ID] {
						a.ActDep[o].AddEdge(x.ID, y.ID)
					} else {
						a.ActDep[o].AddEdge(y.ID, x.ID)
					}
					continue
				}
				if !virtual {
					continue // non-primitive pairs on real objects get their deps by inheritance only
				}
				xLo, xHi, okX := a.span(x)
				yLo, yHi, okY := a.span(y)
				if !okX || !okY {
					continue
				}
				switch {
				case xHi < yLo:
					a.ActDep[o].AddEdge(x.ID, y.ID)
				case yHi < xLo:
					a.ActDep[o].AddEdge(y.ID, x.ID)
				default:
					a.ActDep[o].AddEdge(x.ID, y.ID)
					a.ActDep[o].AddEdge(y.ID, x.ID)
				}
			}
		}
	}

	// Fixpoint of Definitions 10/11/15.
	for changed := true; changed; {
		changed = false
		// Definition 10: lift conflicting action dependencies to the callers.
		for _, o := range objs {
			for _, e := range a.ActDep[o].Edges() {
				x, y := a.actions[e[0]], a.actions[e[1]]
				if !a.conflict(o, x, y) {
					continue // commuting callers absorb the dependency
				}
				t, u := txn.CallerOn(x), txn.CallerOn(y)
				if t == u {
					continue
				}
				if !a.TranDep[o].HasEdge(t.ID, u.ID) {
					a.TranDep[o].AddEdge(t.ID, u.ID)
					changed = true
				}
			}
		}
		// Definitions 11 and 15: inject transaction dependencies into the
		// action (or added) dependency relations of the callers' objects.
		for _, p := range objs {
			for _, e := range a.TranDep[p].Edges() {
				t, u := a.actions[e[0]], a.actions[e[1]]
				to, uo := t.Msg.Object, u.Msg.Object
				if to == uo {
					// Definition 11: both callers are actions on the same
					// object — the dependency becomes an action dependency
					// there.
					if !a.ActDep[to].HasEdge(t.ID, u.ID) {
						a.ActDep[to].AddEdge(t.ID, u.ID)
						changed = true
					}
					continue
				}
				// Endpoints on different objects: record redundantly at both
				// (Definition 15) and queue the pair for upward lifting.
				if !a.Added[to].HasEdge(t.ID, u.ID) {
					a.Added[to].AddEdge(t.ID, u.ID)
					changed = true
				}
				if !a.Added[uo].HasEdge(t.ID, u.ID) {
					a.Added[uo].AddEdge(t.ID, u.ID)
					changed = true
				}
				if !a.cross.HasEdge(t.ID, u.ID) {
					a.cross.AddEdge(t.ID, u.ID)
					changed = true
				}
			}
		}
		// Conservative strengthening of Definition 15: a cross-object
		// dependency constrains the serial order of the CALLERS too, but no
		// commutativity specification spans two objects, so the pair is
		// lifted (conflicting, conservatively) along the call hierarchy
		// until both sides live on a common object — in the limit the
		// system object. Without this lift, contradictions whose endpoints
		// are distinct actions on distinct objects would escape every
		// acyclicity check (see TestAddedRelationViolation).
		for _, e := range a.cross.Edges() {
			t, u := a.actions[e[0]], a.actions[e[1]]
			tc, uc := txn.CallerOn(t), txn.CallerOn(u)
			if tc == uc {
				continue // same caller: intra-transaction, ordered by precedence
			}
			if tc.Msg.Object == uc.Msg.Object {
				if !a.ActDep[tc.Msg.Object].HasEdge(tc.ID, uc.ID) {
					a.ActDep[tc.Msg.Object].AddEdge(tc.ID, uc.ID)
					changed = true
				}
				continue
			}
			if !a.Added[tc.Msg.Object].HasEdge(tc.ID, uc.ID) {
				a.Added[tc.Msg.Object].AddEdge(tc.ID, uc.ID)
				changed = true
			}
			if !a.Added[uc.Msg.Object].HasEdge(tc.ID, uc.ID) {
				a.Added[uc.Msg.Object].AddEdge(tc.ID, uc.ID)
				changed = true
			}
			if !a.cross.HasEdge(tc.ID, uc.ID) {
				a.cross.AddEdge(tc.ID, uc.ID)
				changed = true
			}
		}
	}
	return a, nil
}

// objects returns every object with at least one action, system object
// included (its schedule is the top-level serialization), sorted by name.
func (a *Analysis) objects() []txn.OID {
	out := make([]txn.OID, 0, len(a.onObj))
	for o := range a.onObj {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Objects returns the analyzed objects sorted by name.
func (a *Analysis) Objects() []txn.OID { return a.objects() }

// Action returns the action with the given ID, or nil.
func (a *Analysis) Action(id string) *txn.Action { return a.actions[id] }

// span returns the [min,max] execution positions of the real primitive
// descendants of act; a virtual duplicate stands for its original. ok is
// false when there are no executed primitives underneath.
func (a *Analysis) span(act *txn.Action) (lo, hi int, ok bool) {
	src := act
	if act.IsVirtual && act.VirtualOf != nil {
		src = act.VirtualOf
	}
	lo, hi = -1, -1
	for _, d := range src.Subtree() {
		if !d.Primitive() || d.IsVirtual {
			continue
		}
		p, present := a.PrimPos[d.ID]
		if !present {
			continue
		}
		if lo == -1 || p < lo {
			lo = p
		}
		if p > hi {
			hi = p
		}
	}
	return lo, hi, lo != -1
}

// conflict implements Definition 9 for two actions on object o: actions of
// the same process never conflict; otherwise the object's commutativity
// specification decides. Virtual objects use their original's type, which
// OID already preserves.
func (a *Analysis) conflict(o txn.OID, x, y *txn.Action) bool {
	if x == y || x.Process == y.Process {
		return false
	}
	spec := a.Reg.Lookup(o.Type)
	return !spec.Commutes(x.Msg.Inv, y.Msg.Inv)
}

// Conflict reports whether the two actions (by ID) conflict on object o.
func (a *Analysis) Conflict(o txn.OID, xID, yID string) bool {
	x, y := a.actions[xID], a.actions[yID]
	if x == nil || y == nil {
		return false
	}
	return a.conflict(o, x, y)
}

// Verdict is the per-object serializability result.
type Verdict struct {
	Object txn.OID
	// TranDepAcyclic is Definition 13(i): an equivalent serial object
	// schedule exists iff the transaction dependency relation is acyclic.
	TranDepAcyclic bool
	// ActDepAcyclic is Definition 13(ii): no contradicting action
	// dependencies.
	ActDepAcyclic bool
	// AddedAcyclic is Definition 16(ii): the action dependency relation
	// united with the added action dependency relation is acyclic.
	AddedAcyclic bool
	// OOSerializable is Definition 13: TranDepAcyclic && ActDepAcyclic.
	OOSerializable bool
	// Cycle is a witness when one of the graphs is cyclic.
	Cycle []string
	// SerialOrder is a topological order of TRA_O witnessing the
	// equivalent serial schedule, when one exists.
	SerialOrder []string
}

// ObjectVerdict evaluates Definitions 13 and 16(ii) for one object.
func (a *Analysis) ObjectVerdict(o txn.OID) Verdict {
	v := Verdict{Object: o}
	order, terr := a.TranDep[o].TopoSort()
	v.TranDepAcyclic = terr == nil
	if terr == nil {
		// Only transactions (TRA_O) belong in the witness; TopoSort returns
		// exactly the TranDep nodes, which are TRA_O members by construction.
		v.SerialOrder = order
	} else {
		v.Cycle = terr.(*graph.CycleError).Cycle
	}
	aerr := a.ActDep[o].FindCycle()
	v.ActDepAcyclic = aerr == nil
	if v.Cycle == nil && aerr != nil {
		v.Cycle = aerr
	}
	union := a.ActDep[o].Union(a.Added[o])
	uc := union.FindCycle()
	v.AddedAcyclic = uc == nil
	if v.Cycle == nil && uc != nil {
		v.Cycle = uc
	}
	v.OOSerializable = v.TranDepAcyclic && v.ActDepAcyclic
	return v
}

// Report is the outcome of the full system-schedule analysis.
type Report struct {
	PerObject []Verdict
	// SystemOOSerializable is Definition 16: every object schedule is
	// oo-serializable and every added relation is acyclic.
	SystemOOSerializable bool
	// GlobalAcyclic strengthens Definition 16: the union of ALL dependency
	// relations is acyclic. Definition 16's per-object check can miss
	// cycles spanning three or more objects with no common object; the
	// global check cannot. Both are reported; see EXPERIMENTS.md.
	GlobalAcyclic bool
	GlobalCycle   []string
}

// Check evaluates Definition 16 plus the global strengthening.
func (a *Analysis) Check() Report {
	var r Report
	r.SystemOOSerializable = true
	for _, o := range a.objects() {
		v := a.ObjectVerdict(o)
		r.PerObject = append(r.PerObject, v)
		if !v.OOSerializable || !v.AddedAcyclic {
			r.SystemOOSerializable = false
		}
	}
	g := graph.New()
	for _, o := range a.objects() {
		g = g.Union(a.ActDep[o]).Union(a.TranDep[o]).Union(a.Added[o])
	}
	cyc := g.FindCycle()
	r.GlobalAcyclic = cyc == nil
	r.GlobalCycle = cyc
	return r
}

// Equivalent implements Definition 12 for the schedules of one object under
// two analyses (e.g. an interleaved execution vs. a serial re-execution):
// they are equivalent iff their transaction dependency relations coincide.
func Equivalent(a, b *Analysis, o txn.OID) bool {
	ga, gb := a.TranDep[o], b.TranDep[o]
	if ga == nil || gb == nil {
		return ga == gb
	}
	// Compare edge sets only: isolated nodes differ when one execution
	// touches an object the other does not conflict on.
	ea, eb := ga.Edges(), gb.Edges()
	if len(ea) != len(eb) {
		return false
	}
	for i := range ea {
		if ea[i] != eb[i] {
			return false
		}
	}
	return true
}

// IsSerial implements Definition 8 for object o given the full primitive
// execution order: the object schedule is serial iff for every pair of
// distinct transactions on o, all primitive descendants of one precede all
// primitive descendants of the other.
func (a *Analysis) IsSerial(o txn.OID) bool {
	tras := a.Sys.TransactionsOn(o)
	spans := make([][2]int, len(tras))
	for i, t := range tras {
		lo, hi := -1, -1
		for _, d := range t.Subtree() {
			if !d.Primitive() {
				continue
			}
			p, ok := a.PrimPos[d.ID]
			if !ok {
				continue
			}
			if lo == -1 || p < lo {
				lo = p
			}
			if p > hi {
				hi = p
			}
		}
		spans[i] = [2]int{lo, hi}
	}
	for i := range spans {
		for j := i + 1; j < len(spans); j++ {
			si, sj := spans[i], spans[j]
			if si[0] == -1 || sj[0] == -1 {
				continue
			}
			if si[1] < sj[0] || sj[1] < si[0] {
				continue // disjoint spans: serial
			}
			return false
		}
	}
	return true
}

// ConformViolations checks Definition 7 for object o: the object precedence
// relation (inherited intra-transaction precedence) must be contained in
// the action dependency order — a recorded dependency opposing a precedence
// is a violation. It returns the offending pairs as [mustFirst, butDependsOn]
// action-ID pairs.
func (a *Analysis) ConformViolations(o txn.OID) [][2]string {
	var out [][2]string
	acts := a.onObj[o]
	dep := a.ActDep[o].TransitiveClosure()
	for _, x := range acts {
		for _, y := range acts {
			if x == y {
				continue
			}
			if txn.Precedes(x, y) && dep.HasEdge(y.ID, x.ID) {
				out = append(out, [2]string{x.ID, y.ID})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// ConventionalReport is the baseline verdict: classical conflict-order
// preserving serializability over top-level transactions, with read/write
// conflicts at the primitive (page) level and no semantic knowledge.
type ConventionalReport struct {
	Serializable bool
	// Graph is the classical serialization graph over top-level
	// transaction IDs.
	Graph *graph.Digraph
	Cycle []string
	// Conflicts counts the conflicting primitive pairs (the paper's "rate
	// of conflicting accesses" under the conventional definition).
	Conflicts int
}

// Conventional runs the baseline check on the same execution. Two primitive
// actions conflict conventionally iff they access the same object, stem
// from different top-level transactions, and at least one is not a read.
func (a *Analysis) Conventional() ConventionalReport {
	g := graph.New()
	conflicts := 0
	for _, t := range a.Sys.Top {
		g.AddNode(t.ID)
	}
	for _, o := range a.objects() {
		acts := a.onObj[o]
		for i := 0; i < len(acts); i++ {
			for j := i + 1; j < len(acts); j++ {
				x, y := acts[i], acts[j]
				if !x.Primitive() || !y.Primitive() {
					continue
				}
				rx, ry := x.Root(), y.Root()
				if rx == ry {
					continue
				}
				if x.Msg.Inv.Method == "read" && y.Msg.Inv.Method == "read" {
					continue
				}
				conflicts++
				if a.PrimPos[x.ID] < a.PrimPos[y.ID] {
					g.AddEdge(rx.ID, ry.ID)
				} else {
					g.AddEdge(ry.ID, rx.ID)
				}
			}
		}
	}
	cyc := g.FindCycle()
	return ConventionalReport{
		Serializable: cyc == nil,
		Graph:        g,
		Cycle:        cyc,
		Conflicts:    conflicts,
	}
}

// SemanticConflicts counts conflicting action pairs under the paper's
// semantic definition, summed over all objects and restricted to pairs
// whose dependency actually had to be recorded (i.e. pairs related by the
// action dependency relation and in conflict). Comparing this to
// ConventionalReport.Conflicts quantifies the abstract's claim of "a lower
// rate of conflicting accesses".
func (a *Analysis) SemanticConflicts() int {
	n := 0
	for _, o := range a.objects() {
		for _, e := range a.ActDep[o].Edges() {
			if a.Conflict(o, e[0], e[1]) {
				n++
			}
		}
	}
	return n
}

// DependencyTable renders the Figure 8 style table: one row per object with
// its transaction dependencies, sorted by object name.
func (a *Analysis) DependencyTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s | %s\n", "Object", "Schedule dependencies")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 72))
	for _, o := range a.objects() {
		deps := a.TranDep[o].Edges()
		if len(deps) == 0 {
			fmt.Fprintf(&b, "%-12s | (none)\n", o.Name)
			continue
		}
		parts := make([]string, len(deps))
		for i, e := range deps {
			parts[i] = fmt.Sprintf("%s <- %s", a.describe(e[1]), a.describe(e[0]))
		}
		fmt.Fprintf(&b, "%-12s | %s\n", o.Name, strings.Join(parts, "; "))
	}
	return b.String()
}

// describe renders an action as the paper does in Figure 8: top-level
// transactions by their ID, inner actions as Object.method(params).
func (a *Analysis) describe(id string) string {
	act := a.actions[id]
	if act == nil {
		return id
	}
	if act.Parent == nil {
		return act.ID
	}
	return act.Msg.String()
}
