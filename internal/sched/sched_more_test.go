package sched

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/commut"
	"repro/internal/paperex"
	"repro/internal/txn"
)

// TestFourLevelInheritanceChain verifies dependency inheritance through a
// deeper hierarchy than the paper draws: Enc → BpTree → Node → Leaf →
// Page, with same-key conflicts at every level, must order the top-level
// transactions; with the keys differing at the node level, inheritance
// stops exactly there.
func TestFourLevelInheritanceChain(t *testing.T) {
	nodeA := txn.OID{Type: paperex.TypeLeaf, Name: "NodeA"}
	leaf := txn.OID{Type: paperex.TypeLeaf, Name: "LeafX"}
	page := txn.OID{Type: paperex.TypePage, Name: "PageX"}

	build := func(k1, k2 string) (*txn.System, []string) {
		t1 := txn.NewTransaction("T1")
		e1 := t1.Call(nil, paperex.Enc, "insert", k1)
		b1 := t1.Call(e1, paperex.BpTree, "insert", k1)
		n1 := t1.Call(b1, nodeA, "insert", k1)
		l1 := t1.Call(n1, leaf, "insert", k1)
		w1 := t1.Call(l1, page, "write")

		t2 := txn.NewTransaction("T2")
		e2 := t2.Call(nil, paperex.Enc, "search", k2)
		b2 := t2.Call(e2, paperex.BpTree, "search", k2)
		n2 := t2.Call(b2, nodeA, "search", k2)
		l2 := t2.Call(n2, leaf, "search", k2)
		r2 := t2.Call(l2, page, "read")

		sys := txn.NewSystem(t1.Build(), t2.Build())
		return sys, []string{w1.ID, r2.ID}
	}

	// Same key: the dependency climbs all four levels.
	sys, order := build("K", "K")
	a := mustAnalyze(t, sys, paperex.Registry(), order)
	if !a.TranDep[txn.SystemObject].HasEdge("T1", "T2") {
		t.Fatal("same-key conflict must inherit to the top through four levels")
	}
	for _, o := range []txn.OID{page, leaf, nodeA, paperex.BpTree, paperex.Enc} {
		if a.TranDep[o].NumEdges() == 0 {
			t.Fatalf("level %s must carry a transaction dependency", o.Name)
		}
	}

	// Different keys: the page conflict is absorbed at the leaf.
	sys2, order2 := build("K1", "K2")
	b := mustAnalyze(t, sys2, paperex.Registry(), order2)
	if b.TranDep[txn.SystemObject].NumEdges() != 0 {
		t.Fatalf("distinct keys must not order the top level:\n%s",
			b.TranDep[txn.SystemObject].String())
	}
	if b.TranDep[page].NumEdges() == 0 {
		t.Fatal("the page-level dependency must still exist")
	}
	if b.TranDep[leaf].NumEdges() != 0 {
		t.Fatal("the leaf absorbs the dependency (commuting keys)")
	}
}

// TestAddedRelationViolation builds the Definition 16(ii) failure case the
// paper's "divide et impera" bookkeeping exists for: two items are each
// reachable through TWO objects, and the cross-object transaction
// dependencies contradict — every object schedule alone is fine, but the
// added relations expose the cycle.
func TestAddedRelationViolation(t *testing.T) {
	itemA := txn.OID{Type: paperex.TypeItem, Name: "ItemA"}
	itemB := txn.OID{Type: paperex.TypeItem, Name: "ItemB"}
	pageA := txn.OID{Type: paperex.TypePage, Name: "PageA"}
	pageB := txn.OID{Type: paperex.TypePage, Name: "PageB"}
	encO := txn.OID{Type: paperex.TypeEnc, Name: "EncX"}
	listO := txn.OID{Type: paperex.TypeList, Name: "ListX"}

	// T1 updates ItemA via EncX and reads ItemB via ListX.
	t1 := txn.NewTransaction("T1")
	e1 := t1.Call(nil, encO, "update", "a")
	u1 := t1.Call(e1, itemA, "update")
	wa1 := t1.Call(u1, pageA, "write")
	l1 := t1.Call(nil, listO, "readSeq")
	r1b := t1.Call(l1, itemB, "read")
	rb1 := t1.Call(r1b, pageB, "read")

	// T2 updates ItemB via EncX and reads ItemA via ListX.
	t2 := txn.NewTransaction("T2")
	e2 := t2.Call(nil, encO, "update", "b")
	u2 := t2.Call(e2, itemB, "update")
	wb2 := t2.Call(u2, pageB, "write")
	l2 := t2.Call(nil, listO, "readSeq")
	r2a := t2.Call(l2, itemA, "read")
	ra2 := t2.Call(r2a, pageA, "read")

	sys := txn.NewSystem(t1.Build(), t2.Build())
	// ItemA: T1's write before T2's read (T1 -> T2).
	// ItemB: T2's write before T1's read (T2 -> T1).
	order := []string{wa1.ID, wb2.ID, ra2.ID, rb1.ID}
	a := mustAnalyze(t, sys, paperex.Registry(), order)

	// The transaction dependencies at the items relate an Enc action and a
	// List action — different objects, so they land in the ADDED relations.
	if a.TranDep[itemA].NumEdges() == 0 || a.TranDep[itemB].NumEdges() == 0 {
		t.Fatal("item-level transaction dependencies missing")
	}
	if a.Added[encO].NumEdges() == 0 || a.Added[listO].NumEdges() == 0 {
		t.Fatal("added relations must record the cross-object dependencies")
	}

	rep := a.Check()
	// The per-object Definition 16 check must reject: at EncX (and ListX)
	// the added relation contains both directions between the two
	// transactions' actions.
	if rep.SystemOOSerializable {
		t.Fatalf("contradicting cross-object dependencies must be rejected: %+v", rep)
	}
	if rep.GlobalAcyclic {
		t.Fatal("the global graph must be cyclic")
	}
	// And conventionally the schedule is equally non-serializable.
	if a.Conventional().Serializable {
		t.Fatal("baseline must reject too")
	}
}

// TestDependencyAbsorptionIsNotLoss: a dependency absorbed by commuting
// callers (no transaction dependency) still constrains the action
// dependency relation — reversing the SAME pair at another page makes the
// action relation cyclic even though the callers commute.
func TestDependencyAbsorptionIsNotLoss(t *testing.T) {
	leaf := txn.OID{Type: paperex.TypeLeaf, Name: "L"}
	pageA := txn.OID{Type: paperex.TypePage, Name: "PA"}
	pageB := txn.OID{Type: paperex.TypePage, Name: "PB"}

	t1 := txn.NewTransaction("T1")
	l1 := t1.Call(nil, leaf, "insert", "k1")
	a1 := t1.Call(l1, pageA, "write")
	b1 := t1.Call(l1, pageB, "write")

	t2 := txn.NewTransaction("T2")
	l2 := t2.Call(nil, leaf, "insert", "k2")
	a2 := t2.Call(l2, pageA, "write")
	b2 := t2.Call(l2, pageB, "write")

	// Consistent order: T1 before T2 on both pages — fine.
	sys := txn.NewSystem(t1.Build(), t2.Build())
	a := mustAnalyze(t, sys, paperex.Registry(), []string{a1.ID, b1.ID, a2.ID, b2.ID})
	if !a.Check().SystemOOSerializable {
		t.Fatal("consistent orders must validate")
	}
	if a.TranDep[leaf].NumEdges() != 0 {
		t.Fatal("commuting inserts: no leaf transaction dependency")
	}
	if a.ActDep[leaf].NumEdges() == 0 {
		t.Fatal("the absorbed dependency must still be recorded as an action dependency")
	}
}

// TestSerialScheduleAlwaysValidates: any serial execution of any random
// encyclopedia-shaped system is oo-serializable (a sanity property of the
// whole pipeline).
func TestPropertySerialSchedulesValidate(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var tops []*txn.Action
		var order []string
		n := 2 + r.Intn(5)
		for i := 0; i < n; i++ {
			b := txn.NewTransaction(fmt.Sprintf("T%d", i+1))
			ops := 1 + r.Intn(3)
			for j := 0; j < ops; j++ {
				k := fmt.Sprintf("k%d", r.Intn(4))
				method := []string{"insert", "search", "update"}[r.Intn(3)]
				e := b.Call(nil, paperex.Enc, method, k)
				l := b.Call(e, paperex.Leaf11, method, k)
				pg := txn.OID{Type: paperex.TypePage, Name: fmt.Sprintf("P%d", r.Intn(3))}
				var prim *txn.Action
				if method == "search" {
					prim = b.Call(l, pg, "read")
				} else {
					prim = b.Call(l, pg, "write")
				}
				order = append(order, prim.ID) // serial: transaction order
			}
			tops = append(tops, b.Build())
		}
		sys := txn.NewSystem(tops...)
		a, err := Analyze(sys, paperex.Registry(), order)
		if err != nil {
			return false
		}
		rep := a.Check()
		return rep.SystemOOSerializable && rep.GlobalAcyclic
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestCommutRegistryFallback: an object type missing from the registry
// conflicts conservatively, degrading to conventional behaviour (paper §6).
func TestCommutRegistryFallback(t *testing.T) {
	mystery := txn.OID{Type: "mystery", Name: "M"}
	page := txn.OID{Type: paperex.TypePage, Name: "P"}

	t1 := txn.NewTransaction("T1")
	m1 := t1.Call(nil, mystery, "frobnicate", "x")
	w1 := t1.Call(m1, page, "write")
	t2 := txn.NewTransaction("T2")
	m2 := t2.Call(nil, mystery, "frobnicate", "y")
	w2 := t2.Call(m2, page, "write")

	sys := txn.NewSystem(t1.Build(), t2.Build())
	a := mustAnalyze(t, sys, paperex.Registry(), []string{w1.ID, w2.ID})
	// Even though the parameters differ, the conservative spec conflicts:
	// the dependency reaches the top level.
	if !a.TranDep[txn.SystemObject].HasEdge("T1", "T2") {
		t.Fatal("unregistered types must serialize conservatively")
	}
}

// TestEquivalentDifferentObjects: Equivalent on an object absent from one
// analysis compares nil graphs safely.
func TestEquivalentDifferentObjects(t *testing.T) {
	sysA, orderA := paperex.Example1()
	a := mustAnalyze(t, sysA, paperex.Registry(), orderA)
	ghost := txn.OID{Type: "ghost", Name: "G"}
	if Equivalent(a, a, ghost) != true {
		t.Fatal("nil == nil must be equivalent")
	}
	if Equivalent(a, a, paperex.Page4712) != true {
		t.Fatal("an analysis must be equivalent to itself")
	}
}

func TestCommutSpecSanity(t *testing.T) {
	// Guard against accidental registry edits breaking Example 1's
	// semantics: the fixtures rely on these exact verdicts.
	reg := paperex.Registry()
	leafSpec := reg.Lookup(paperex.TypeLeaf)
	if !leafSpec.Commutes(
		commut.Invocation{Method: "insert", Params: []string{"DBS"}},
		commut.Invocation{Method: "insert", Params: []string{"DBMS"}}) {
		t.Fatal("distinct-key leaf inserts must commute")
	}
	if leafSpec.Commutes(
		commut.Invocation{Method: "insert", Params: []string{"DBS"}},
		commut.Invocation{Method: "search", Params: []string{"DBS"}}) {
		t.Fatal("same-key insert/search must conflict")
	}
}
