package sched

import (
	"strings"
	"testing"

	"repro/internal/commut"
	"repro/internal/paperex"
	"repro/internal/txn"
)

func mustAnalyze(t *testing.T, sys *txn.System, reg *commut.Registry, order []string) *Analysis {
	t.Helper()
	a, err := Analyze(sys, reg, order)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return a
}

// TestExample1DependencyInheritance reproduces Example 1 / Figure 4:
// the page-level T1/T2 conflict is inherited to the leaf-insert
// subtransactions, absorbed there because inserts of distinct keys commute,
// and never reaches BpTree or the top level; the T1/T3 same-key conflict is
// inherited all the way up.
func TestExample1DependencyInheritance(t *testing.T) {
	sys, order := paperex.Example1()
	a := mustAnalyze(t, sys, paperex.Registry(), order)

	// Page4712 action dependencies: every conflicting page pair ordered by
	// execution (reads/writes of T1 before T2 before T3's read).
	pg := a.ActDep[paperex.Page4712]
	wantPageEdges := [][2]string{
		{"T1.1.1.1.1", "T2.1.1.1.2"}, // T1.read -> T2.write
		{"T1.1.1.1.2", "T2.1.1.1.1"}, // T1.write -> T2.read
		{"T1.1.1.1.2", "T2.1.1.1.2"}, // T1.write -> T2.write
		{"T1.1.1.1.2", "T3.1.1.1.1"}, // T1.write -> T3.read
		{"T2.1.1.1.2", "T3.1.1.1.1"}, // T2.write -> T3.read
	}
	for _, e := range wantPageEdges {
		if !pg.HasEdge(e[0], e[1]) {
			t.Errorf("Page4712 missing action dep %v", e)
		}
	}
	if got := pg.NumEdges(); got != len(wantPageEdges) {
		t.Errorf("Page4712 has %d action deps, want %d:\n%s", got, len(wantPageEdges), pg.String())
	}

	// Transaction dependencies at the page: the three leaf-insert/search
	// subtransactions, ordered T1 -> T2 -> T3.
	pgT := a.TranDep[paperex.Page4712]
	for _, e := range [][2]string{
		{"T1.1.1.1", "T2.1.1.1"},
		{"T1.1.1.1", "T3.1.1.1"},
		{"T2.1.1.1", "T3.1.1.1"},
	} {
		if !pgT.HasEdge(e[0], e[1]) {
			t.Errorf("Page4712 missing transaction dep %v", e)
		}
	}

	// At Leaf11 the T1/T2 dependency is present as an ACTION dependency
	// (lost updates on the page are prevented)...
	lf := a.ActDep[paperex.Leaf11]
	if !lf.HasEdge("T1.1.1.1", "T2.1.1.1") {
		t.Error("Leaf11 must record the inherited T1/T2 action dependency")
	}
	// ...but NOT as a transaction dependency: insert(DBS) and insert(DBMS)
	// commute, so inheritance stops (the paper's core point).
	lfT := a.TranDep[paperex.Leaf11]
	if lfT.HasEdge("T1.1.1", "T2.1.1") || lfT.HasEdge("T2.1.1", "T1.1.1") {
		t.Error("commuting leaf inserts must absorb the T1/T2 dependency")
	}
	// The T1/T3 same-key conflict is inherited: Leaf11 -> BpTree -> Enc -> S.
	if !lfT.HasEdge("T1.1.1", "T3.1.1") {
		t.Error("Leaf11 must inherit the T1/T3 dependency to the BpTree actions")
	}
	if !a.TranDep[paperex.BpTree].HasEdge("T1.1", "T3.1") {
		t.Error("BpTree must inherit the T1/T3 dependency to the Enc actions")
	}
	if !a.TranDep[paperex.Enc].HasEdge("T1", "T3") {
		t.Error("Enc must inherit the T1/T3 dependency to the top level")
	}
	// T2 is unrelated to T1 and T3 at the top level.
	encT := a.TranDep[paperex.Enc]
	for _, pair := range [][2]string{{"T1", "T2"}, {"T2", "T1"}, {"T2", "T3"}, {"T3", "T2"}} {
		if encT.HasEdge(pair[0], pair[1]) {
			t.Errorf("unexpected top-level dependency %v", pair)
		}
	}

	rep := a.Check()
	if !rep.SystemOOSerializable {
		t.Fatal("Example 1 schedule must be oo-serializable")
	}
	if !rep.GlobalAcyclic {
		t.Fatal("Example 1 global graph must be acyclic")
	}
	conv := a.Conventional()
	if !conv.Serializable {
		t.Fatal("this particular Example 1 interleaving is also conventionally serializable")
	}
	// The quantitative separation: conventional counts every page-level
	// conflicting pair across transactions; the semantic relation is
	// strictly smaller at the levels that matter.
	if conv.Conflicts <= a.SemanticConflicts()-3 {
		t.Logf("conventional=%d semantic=%d", conv.Conflicts, a.SemanticConflicts())
	}
}

// TestExample1SerialWitness: the equivalent serial schedule at the system
// object orders T1 before T3 and leaves T2 free.
func TestExample1SerialWitness(t *testing.T) {
	sys, order := paperex.Example1()
	a := mustAnalyze(t, sys, paperex.Registry(), order)
	v := a.ObjectVerdict(txn.SystemObject)
	if !v.OOSerializable {
		t.Fatalf("system object verdict: %+v", v)
	}
	pos := map[string]int{}
	for i, id := range v.SerialOrder {
		pos[id] = i
	}
	if pos["T1"] >= pos["T3"] {
		t.Fatalf("serial witness must order T1 before T3, got %v", v.SerialOrder)
	}
}

// TestExample4Dependencies reproduces Example 4 / Figures 7-8 edge-for-edge.
func TestExample4Dependencies(t *testing.T) {
	sys, order := paperex.Example4()
	a := mustAnalyze(t, sys, paperex.Registry(), order)

	// Figure 8, row Leaf11: only the commuting-insert action dependency.
	if !a.ActDep[paperex.Leaf11].HasEdge("T1.1.1.1", "T2.1.1.1") {
		t.Error("Leaf11 row: insert(DBS) / insert(DBMS) dependency missing")
	}
	if a.TranDep[paperex.Leaf11].HasEdge("T1.1.1", "T2.1.1") {
		t.Error("Leaf11 row: commuting inserts must not create a transaction dependency")
	}
	// Figure 8, row BpTree: insert(DBS) -> search(DBS).
	if !a.TranDep[paperex.BpTree].HasEdge("T1.1", "T3.1") {
		t.Error("BpTree row: insert(DBS) -> search(DBS) missing")
	}
	// Figure 8, row LinkedList: T2's append -> T4's readSeq.
	if !a.TranDep[paperex.LinkedList].HasEdge("T2.1", "T4.1") {
		t.Error("LinkedList row: append -> readSeq dependency missing")
	}
	// Figure 8, row Item8 (the "short dashed arcs"): T2's update precedes
	// T4's read; the callers live on DIFFERENT objects (Enc and
	// LinkedList), which exercises the Definition 15 added relation.
	if !a.TranDep[paperex.Item8].HasEdge("T2.2", "T4.1.1") {
		t.Error("Item8 row: update -> read dependency missing")
	}
	if !a.Added[paperex.Enc].HasEdge("T2.2", "T4.1.1") {
		t.Error("added relation at Enc must record the Item8 dependency")
	}
	if !a.Added[paperex.LinkedList].HasEdge("T2.2", "T4.1.1") {
		t.Error("added relation at LinkedList must record the Item8 dependency")
	}
	// Figure 8, row Enc: T1 -> T3 (insert/search DBS) and T2 -> T4
	// (insert+update vs readSeq).
	if !a.TranDep[paperex.Enc].HasEdge("T1", "T3") {
		t.Error("Enc row: T1 -> T3 missing")
	}
	if !a.TranDep[paperex.Enc].HasEdge("T2", "T4") {
		t.Error("Enc row: T2 -> T4 missing")
	}

	rep := a.Check()
	if !rep.SystemOOSerializable || !rep.GlobalAcyclic {
		t.Fatalf("Example 4 must be oo-serializable: %+v", rep)
	}
	// Serial witness consistent with T1,T2,T3,T4.
	v := a.ObjectVerdict(txn.SystemObject)
	pos := map[string]int{}
	for i, id := range v.SerialOrder {
		pos[id] = i
	}
	if pos["T1"] >= pos["T3"] || pos["T2"] >= pos["T4"] {
		t.Fatalf("serial witness %v violates dependencies", v.SerialOrder)
	}
}

func TestFig8DependencyTable(t *testing.T) {
	sys, order := paperex.Example4()
	a := mustAnalyze(t, sys, paperex.Registry(), order)
	tab := a.DependencyTable()
	for _, want := range []string{
		"Leaf11",
		"BpTree",
		"Item8",
		"LinkedList",
		"Enc",
		"Page4712",
		"readSeq()",                          // T4's Enc action appears as dependency target
		"Enc.search(DBS) <- Enc.insert(DBS)", // BpTree row in paper notation
	} {
		if !strings.Contains(tab, want) {
			t.Errorf("dependency table missing %q:\n%s", want, tab)
		}
	}
}

// TestOOBeatsConventional is the headline claim as a formal separation: a
// schedule that conventional serializability rejects (page-level cycle) but
// oo-serializability accepts, because the only conflicting accesses sit on
// pages whose calling leaf inserts commute.
func TestOOBeatsConventional(t *testing.T) {
	leafA := txn.OID{Type: paperex.TypeLeaf, Name: "LeafA"}
	leafB := txn.OID{Type: paperex.TypeLeaf, Name: "LeafB"}
	pageA := txn.OID{Type: paperex.TypePage, Name: "PageA"}
	pageB := txn.OID{Type: paperex.TypePage, Name: "PageB"}

	// T1 inserts k1 into LeafA and k3 into LeafB; T2 inserts k2 into LeafA
	// and k4 into LeafB. All four keys are distinct, so every leaf-level
	// pair commutes; but on PageA T1 writes first while on PageB T2 writes
	// first — a conventional wr/ww cycle.
	t1 := txn.NewTransaction("T1")
	la1 := t1.Call(nil, leafA, "insert", "k1")
	wa1 := t1.Call(la1, pageA, "write")
	lb1 := t1.Call(nil, leafB, "insert", "k3")
	wb1 := t1.Call(lb1, pageB, "write")

	t2 := txn.NewTransaction("T2")
	la2 := t2.Call(nil, leafA, "insert", "k2")
	wa2 := t2.Call(la2, pageA, "write")
	lb2 := t2.Call(nil, leafB, "insert", "k4")
	wb2 := t2.Call(lb2, pageB, "write")

	sys := txn.NewSystem(t1.Build(), t2.Build())
	order := []string{wa1.ID, wb2.ID, wa2.ID, wb1.ID} // PageA: T1<T2, PageB: T2<T1

	a := mustAnalyze(t, sys, paperex.Registry(), order)
	conv := a.Conventional()
	if conv.Serializable {
		t.Fatal("the schedule must NOT be conventionally serializable")
	}
	if conv.Cycle == nil {
		t.Fatal("conventional check must produce a cycle witness")
	}
	rep := a.Check()
	if !rep.SystemOOSerializable {
		t.Fatalf("the schedule must be oo-serializable: %+v", rep)
	}
	if !rep.GlobalAcyclic {
		t.Fatal("global graph must be acyclic — the leaf inserts commute")
	}
}

// TestOORejectsSameKeyCycle: when the conflicts are semantic (same keys),
// oo-serializability must reject the cycle exactly like the conventional
// criterion does.
func TestOORejectsSameKeyCycle(t *testing.T) {
	leafA := txn.OID{Type: paperex.TypeLeaf, Name: "LeafA"}
	leafB := txn.OID{Type: paperex.TypeLeaf, Name: "LeafB"}
	pageA := txn.OID{Type: paperex.TypePage, Name: "PageA"}
	pageB := txn.OID{Type: paperex.TypePage, Name: "PageB"}

	// T1 inserts kA into LeafA then searches kB in LeafB; T2 inserts kB
	// into LeafB then searches kA in LeafA. Executed so each search sees
	// the other's insert: T1 -> T2 via kA, T2 -> T1 via kB.
	t1 := txn.NewTransaction("T1")
	ia1 := t1.Call(nil, leafA, "insert", "kA")
	wa1 := t1.Call(ia1, pageA, "write")
	sb1 := t1.Call(nil, leafB, "search", "kB")
	rb1 := t1.Call(sb1, pageB, "read")

	t2 := txn.NewTransaction("T2")
	ib2 := t2.Call(nil, leafB, "insert", "kB")
	wb2 := t2.Call(ib2, pageB, "write")
	sa2 := t2.Call(nil, leafA, "search", "kA")
	ra2 := t2.Call(sa2, pageA, "read")

	sys := txn.NewSystem(t1.Build(), t2.Build())
	order := []string{wa1.ID, wb2.ID, rb1.ID, ra2.ID}

	a := mustAnalyze(t, sys, paperex.Registry(), order)
	rep := a.Check()
	if rep.SystemOOSerializable {
		t.Fatal("same-key cycle must not be oo-serializable")
	}
	if rep.GlobalAcyclic {
		t.Fatal("global graph must be cyclic")
	}
	if a.Conventional().Serializable {
		t.Fatal("baseline must also reject")
	}
	// The cycle shows up at the system object: T1 <-> T2.
	v := a.ObjectVerdict(txn.SystemObject)
	if v.TranDepAcyclic {
		t.Fatal("top-level transaction dependencies must be cyclic")
	}
	if len(v.Cycle) == 0 {
		t.Fatal("verdict must carry a cycle witness")
	}
}

// TestContradictingActionDeps exercises Definition 13(ii): two commuting
// leaf inserts whose page-level dependencies point in opposite directions
// on two different pages have "accessed an inconsistent state" — the object
// schedule of the leaf is not oo-serializable even though its transaction
// dependency relation is empty.
func TestContradictingActionDeps(t *testing.T) {
	leaf := txn.OID{Type: paperex.TypeLeaf, Name: "Leaf"}
	pageA := txn.OID{Type: paperex.TypePage, Name: "PageA"}
	pageB := txn.OID{Type: paperex.TypePage, Name: "PageB"}

	// Each insert touches both pages (e.g. an overflow chain).
	t1 := txn.NewTransaction("T1")
	l1 := t1.Call(nil, leaf, "insert", "k1")
	wa1 := t1.Call(l1, pageA, "write")
	wb1 := t1.Call(l1, pageB, "write")

	t2 := txn.NewTransaction("T2")
	l2 := t2.Call(nil, leaf, "insert", "k2")
	wa2 := t2.Call(l2, pageA, "write")
	wb2 := t2.Call(l2, pageB, "write")

	sys := txn.NewSystem(t1.Build(), t2.Build())
	order := []string{wa1.ID, wb2.ID, wa2.ID, wb1.ID} // PageA: T1<T2, PageB: T2<T1

	a := mustAnalyze(t, sys, paperex.Registry(), order)
	v := a.ObjectVerdict(leaf)
	if v.ActDepAcyclic {
		t.Fatal("leaf action dependencies must contradict (cycle)")
	}
	if !v.TranDepAcyclic {
		t.Fatal("leaf transaction dependencies must stay empty (inserts commute)")
	}
	if v.OOSerializable {
		t.Fatal("Definition 13(ii) must reject the leaf schedule")
	}
	rep := a.Check()
	if rep.SystemOOSerializable {
		t.Fatal("system schedule must be rejected")
	}
}

// TestBLinkVirtualObjects runs the Section 2 B-link scenario through the
// Definition 5 extension and the analysis.
func TestBLinkVirtualObjects(t *testing.T) {
	sys, order := paperex.BLink()
	created := sys.Extend()
	if len(created) != 1 || created[0].Name != "Node6'" {
		t.Fatalf("extension created %v, want [Node6']", created)
	}
	a := mustAnalyze(t, sys, paperex.Registry(), order)

	node6 := txn.OID{Type: paperex.TypeLeaf, Name: "Node6"}
	node6v := txn.OID{Type: paperex.TypeLeaf, Name: "Node6'"}

	// On the virtual object the rearrange conflicts with the duplicated
	// search; span order puts the rearrange first.
	ad := a.ActDep[node6v]
	if ad.NumEdges() == 0 {
		t.Fatalf("virtual object must carry action dependencies:\n%s", ad.String())
	}
	if !ad.HasEdge("T1.1.1.2", "T2.1'") {
		t.Errorf("want rearrange -> search' on Node6', have:\n%s", ad.String())
	}
	// The dependency is inherited along the duplicate's call edge: it lands
	// in the added relation of Node6 (the callers live on Leaf11b / Node6).
	if a.Added[node6].NumEdges() == 0 {
		t.Error("Node6 must receive added dependencies from the virtual object")
	}
	rep := a.Check()
	if !rep.SystemOOSerializable || !rep.GlobalAcyclic {
		t.Fatalf("B-link schedule must be oo-serializable: %+v", rep)
	}
}

// TestBLinkOverlappingSpans: when the conflicting accesses interleave so
// that neither action's span precedes the other, the analysis records both
// directions and rejects.
func TestBLinkOverlappingSpans(t *testing.T) {
	sys, order := paperex.BLink()
	pageN := txn.OID{Type: paperex.TypePage, Name: "PageNode"}
	// Give the search a second node-page read so its execution span can
	// straddle the rearrange's write (single-primitive spans can never
	// overlap).
	s2 := sys.Find("T2.1")
	if s2 == nil {
		t.Fatal("fixture changed")
	}
	extra := &txn.Action{
		ID:      "T2.1.2",
		Msg:     txn.Message{Object: pageN, Inv: commut.Invocation{Method: "read"}},
		Process: s2.Process,
		Parent:  s2,
	}
	s2.Children = append(s2.Children, extra)

	// Order: search.read1, rearrange.write, search.read2 — spans overlap.
	order = []string{sys.Find("T1.1.1.1").ID, order[2], order[1], extra.ID}
	a := mustAnalyze(t, sys, paperex.Registry(), order)
	v := a.ObjectVerdict(txn.OID{Type: paperex.TypeLeaf, Name: "Node6'"})
	if v.ActDepAcyclic {
		t.Fatal("overlapping conflicting spans must contradict")
	}
	rep := a.Check()
	if rep.SystemOOSerializable {
		t.Fatal("overlapping schedule must be rejected")
	}
}

func TestIsSerial(t *testing.T) {
	sys, _ := paperex.Example1()
	// Serial order: all of T1, then T2, then T3.
	serial := []string{"T1.1.1.1.1", "T1.1.1.1.2", "T2.1.1.1.1", "T2.1.1.1.2", "T3.1.1.1.1"}
	a := mustAnalyze(t, sys, paperex.Registry(), serial)
	if !a.IsSerial(paperex.Page4712) {
		t.Fatal("serial execution must be detected as serial")
	}

	sys2, order := paperex.Example1()
	interleaved := []string{order[0], order[2], order[1], order[3], order[4]}
	b := mustAnalyze(t, sys2, paperex.Registry(), interleaved)
	if b.IsSerial(paperex.Page4712) {
		t.Fatal("interleaved execution must not be serial")
	}
}

// TestEquivalence (Definition 12): the interleaved Example 1 execution is
// equivalent to its serial witness execution — same transaction
// dependencies at every object.
func TestEquivalence(t *testing.T) {
	sysI, orderI := paperex.Example1()
	ai := mustAnalyze(t, sysI, paperex.Registry(), orderI)

	sysS, _ := paperex.Example1()
	serial := []string{"T1.1.1.1.1", "T1.1.1.1.2", "T2.1.1.1.1", "T2.1.1.1.2", "T3.1.1.1.1"}
	as := mustAnalyze(t, sysS, paperex.Registry(), serial)

	for _, o := range []txn.OID{paperex.Page4712, paperex.Leaf11, paperex.BpTree, paperex.Enc, txn.SystemObject} {
		if !Equivalent(ai, as, o) {
			t.Errorf("schedules not equivalent at %s:\ninterleaved:\n%s\nserial:\n%s",
				o.Name, ai.TranDep[o].String(), as.TranDep[o].String())
		}
	}
	if !ai.IsSerial(paperex.Leaf11) == as.IsSerial(paperex.Leaf11) {
		t.Log("seriality differs, as expected for distinct executions")
	}
}

// TestConformViolations: two parallel sibling processes with an explicit
// precedence executed in reverse order.
func TestConformViolations(t *testing.T) {
	objA := txn.OID{Type: paperex.TypeItem, Name: "A"}
	objB := txn.OID{Type: paperex.TypeItem, Name: "B"}
	page := txn.OID{Type: paperex.TypePage, Name: "P"}

	b := txn.NewTransaction("T1")
	x := b.CallPar(nil, objA, "update")
	y := b.CallPar(nil, objB, "update")
	b.Precede(x, y) // x must run before y
	wx := b.Call(x, page, "write")
	wy := b.Call(y, page, "write")

	sys := txn.NewSystem(b.Build())
	// Executed in REVERSE: y's write first.
	a := mustAnalyze(t, sys, paperex.Registry(), []string{wy.ID, wx.ID})
	viol := a.ConformViolations(page)
	if len(viol) != 1 {
		t.Fatalf("violations = %v, want exactly one", viol)
	}
	if viol[0] != [2]string{wx.ID, wy.ID} {
		t.Fatalf("violation = %v", viol[0])
	}

	// Executed in the right order: conform.
	sys2 := txn.NewSystem(rebuildConform().Build())
	a2 := mustAnalyze(t, sys2, paperex.Registry(), []string{"T1.1.1", "T1.2.1"})
	if v := a2.ConformViolations(page); len(v) != 0 {
		t.Fatalf("unexpected violations %v", v)
	}
}

func rebuildConform() *txn.Builder {
	objA := txn.OID{Type: paperex.TypeItem, Name: "A"}
	objB := txn.OID{Type: paperex.TypeItem, Name: "B"}
	page := txn.OID{Type: paperex.TypePage, Name: "P"}
	b := txn.NewTransaction("T1")
	x := b.CallPar(nil, objA, "update")
	y := b.CallPar(nil, objB, "update")
	b.Precede(x, y)
	b.Call(x, page, "write")
	b.Call(y, page, "write")
	return b
}

func TestAnalyzeValidation(t *testing.T) {
	sys, order := paperex.Example1()
	reg := paperex.Registry()

	if _, err := Analyze(sys, reg, append(order, "nope")); err == nil {
		t.Error("unknown action must fail")
	}
	if _, err := Analyze(sys, reg, append(order, "T1.1")); err == nil {
		t.Error("non-primitive action must fail")
	}
	if _, err := Analyze(sys, reg, append(order, order[0])); err == nil {
		t.Error("duplicate action must fail")
	}
	if _, err := Analyze(sys, reg, order[:len(order)-1]); err == nil {
		t.Error("missing primitive must fail")
	}
	if _, err := Analyze(sys, reg, order); err != nil {
		t.Errorf("valid order must pass: %v", err)
	}
}

func TestAnalyzeRejectsVirtualInOrder(t *testing.T) {
	sys, order := paperex.BLink()
	sys.Extend()
	var dupID string
	for _, a := range sys.AllActions() {
		if a.IsVirtual {
			dupID = a.ID
		}
	}
	if dupID == "" {
		t.Fatal("no virtual action found")
	}
	if _, err := Analyze(sys, paperex.Registry(), append(order, dupID)); err == nil {
		t.Error("virtual action in order must fail")
	}
}

// TestSameProcessNeverConflicts (Definition 9): a transaction's own
// sequential read and write on one page produce no dependency.
func TestSameProcessNeverConflicts(t *testing.T) {
	page := txn.OID{Type: paperex.TypePage, Name: "P"}
	b := txn.NewTransaction("T1")
	l := b.Call(nil, txn.OID{Type: paperex.TypeLeaf, Name: "L"}, "insert", "k")
	r := b.Call(l, page, "read")
	w := b.Call(l, page, "write")
	sys := txn.NewSystem(b.Build())
	a := mustAnalyze(t, sys, paperex.Registry(), []string{r.ID, w.ID})
	if a.ActDep[page].NumEdges() != 0 {
		t.Fatalf("same-process accesses must not depend: %s", a.ActDep[page].String())
	}
}

// TestParallelProcessesWithinOneTransaction: intra-transaction parallelism
// does create dependencies between different processes.
func TestParallelProcessesWithinOneTransaction(t *testing.T) {
	page := txn.OID{Type: paperex.TypePage, Name: "P"}
	leaf := txn.OID{Type: paperex.TypeLeaf, Name: "L"}
	b := txn.NewTransaction("T1")
	x := b.CallPar(nil, leaf, "insert", "k1")
	y := b.CallPar(nil, leaf, "insert", "k2")
	wx := b.Call(x, page, "write")
	wy := b.Call(y, page, "write")
	sys := txn.NewSystem(b.Build())
	a := mustAnalyze(t, sys, paperex.Registry(), []string{wx.ID, wy.ID})
	if !a.ActDep[page].HasEdge(wx.ID, wy.ID) {
		t.Fatal("parallel processes of one transaction must be ordered at the page")
	}
	// The callers commute (distinct keys): no dependency above.
	if a.TranDep[leaf].NumEdges() != 0 {
		t.Fatalf("commuting parallel siblings must absorb the dependency: %s", a.TranDep[leaf].String())
	}
}

func TestConventionalConflictCount(t *testing.T) {
	sys, order := paperex.Example1()
	a := mustAnalyze(t, sys, paperex.Registry(), order)
	conv := a.Conventional()
	// Pairs across roots with at least one write on Page4712:
	// (r1,w2),(w1,r2),(w1,w2),(w1,r3),(w2,r3) = 5.
	if conv.Conflicts != 5 {
		t.Fatalf("conventional conflicts = %d, want 5", conv.Conflicts)
	}
}

func TestSemanticConflicts(t *testing.T) {
	sys, order := paperex.Example1()
	a := mustAnalyze(t, sys, paperex.Registry(), order)
	// Semantic conflicting pairs that had to be recorded: the 5 page pairs
	// plus the same-key pairs climbing the T1/T3 path (leaf, tree, enc, S).
	got := a.SemanticConflicts()
	if got < 5 {
		t.Fatalf("semantic conflicts = %d, want >= 5", got)
	}
	// Crucially, the T1/T2 dependency contributes NO conflicting pair above
	// the page: the count at Leaf11 for T1/T2 is zero.
	for _, e := range a.ActDep[paperex.Leaf11].Edges() {
		if a.Conflict(paperex.Leaf11, e[0], e[1]) {
			x, y := a.Action(e[0]), a.Action(e[1])
			if (x.Root().ID == "T1" && y.Root().ID == "T2") || (x.Root().ID == "T2" && y.Root().ID == "T1") {
				t.Fatalf("T1/T2 must not conflict at Leaf11: %v", e)
			}
		}
	}
}

func BenchmarkAnalyzeExample4(b *testing.B) {
	reg := paperex.Registry()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sys, order := paperex.Example4()
		if _, err := Analyze(sys, reg, order); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheckExample4(b *testing.B) {
	sys, order := paperex.Example4()
	a, err := Analyze(sys, paperex.Registry(), order)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Check()
	}
}
