package server

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/wire"
	"repro/internal/workload"
)

// testClusterServer starts a server over a fresh N-partition mem-only
// cluster with the banking type installed on every partition (accounts
// Acct0..7, 1000 each — the router decides which partition's copy a name
// actually reaches).
func testClusterServer(t *testing.T, n int, eopts core.Options, sopts Options) (*Server, string) {
	t.Helper()
	c, err := partition.Open(partition.Options{
		N:      n,
		Engine: eopts,
		Obs:    obs.New(),
		Register: func(i int, db *core.DB) error {
			_, err := workload.InstallBanking(db, 8, 1000)
			return err
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewCluster(c, sopts)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return srv, addr
}

// acctOn returns an account name (from the installed Acct0..7) routed to
// the given partition, and one routed anywhere else.
func acctOn(t *testing.T, n, p int) (same, other string) {
	t.Helper()
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("Acct%d", i)
		if partition.RouteName(name, n) == p {
			if same == "" {
				same = name
			}
		} else if other == "" {
			other = name
		}
	}
	if same == "" || other == "" {
		t.Skipf("Acct0..7 do not cover partition %d of %d and a neighbor", p, n)
	}
	return same, other
}

// TestClusterPinAndWrongPartition: on a multi-partition server the first
// object access pins the transaction; a later access routed elsewhere is
// refused with the typed wrong-partition code and the transaction stays
// usable on its own partition.
func TestClusterPinAndWrongPartition(t *testing.T) {
	const n = 4
	srv, addr := testClusterServer(t, n, core.Options{MaxInflight: 4}, Options{})
	conn := dial(t, addr)

	mustOK(t, conn, wire.Msg{Type: wire.MsgBegin})
	pin := "Acct0"
	p := partition.RouteName(pin, n)
	_, other := acctOn(t, n, p)

	mustOK(t, conn, wire.Msg{Type: wire.MsgInvoke, ObjType: workload.AccountType,
		ObjName: pin, Method: "credit", Params: []string{"5"}})
	// The pin consumed exactly one slot, on the pinned partition.
	if got := srv.Cluster().Part(p).Health().Inflight; got != 1 {
		t.Fatalf("pinned partition inflight = %d, want 1", got)
	}
	if got := srv.Cluster().Health().Inflight; got != 1 {
		t.Fatalf("cluster inflight = %d, want 1", got)
	}

	mustFail(t, conn, wire.Msg{Type: wire.MsgInvoke, ObjType: workload.AccountType,
		ObjName: other, Method: "credit", Params: []string{"5"}}, wire.CodeWrongPartition)

	// The refusal did not kill the transaction: same-partition work and
	// commit still succeed.
	mustOK(t, conn, wire.Msg{Type: wire.MsgInvoke, ObjType: workload.AccountType,
		ObjName: pin, Method: "balance"})
	mustOK(t, conn, wire.Msg{Type: wire.MsgCommit})

	// And the committed credit landed on the routed partition only.
	mustOK(t, conn, wire.Msg{Type: wire.MsgBegin})
	if bal := mustOK(t, conn, wire.Msg{Type: wire.MsgInvoke, ObjType: workload.AccountType,
		ObjName: pin, Method: "balance"}); bal != "1005" {
		t.Fatalf("balance = %s, want 1005", bal)
	}
	mustOK(t, conn, wire.Msg{Type: wire.MsgAbort})
	if got := srv.Cluster().Health().Inflight; got != 0 {
		t.Fatalf("cluster inflight after quiesce = %d, want 0", got)
	}
}

// TestClusterEmptyTxnConsumesNoSlot: BEGIN on a multi-partition cluster is
// pending until the first object access; committing (or aborting) without
// one must admit nowhere.
func TestClusterEmptyTxnConsumesNoSlot(t *testing.T) {
	srv, addr := testClusterServer(t, 2, core.Options{MaxInflight: 1}, Options{})
	conn := dial(t, addr)

	mustOK(t, conn, wire.Msg{Type: wire.MsgBegin})
	mustFail(t, conn, wire.Msg{Type: wire.MsgBegin}, wire.CodeTxnOpen)
	if got := srv.Cluster().Health().Inflight; got != 0 {
		t.Fatalf("pending BEGIN consumed a slot: inflight = %d", got)
	}
	mustOK(t, conn, wire.Msg{Type: wire.MsgCommit})
	mustOK(t, conn, wire.Msg{Type: wire.MsgBegin})
	mustOK(t, conn, wire.Msg{Type: wire.MsgAbort})
	if got := srv.Cluster().Health().Inflight; got != 0 {
		t.Fatalf("empty txns leaked slots: inflight = %d", got)
	}
}

// TestClusterDisconnectReleasesPinnedSlot: the no-slot-leak invariant per
// partition — a client dying mid-transaction returns the slot to the
// partition it was pinned to.
func TestClusterDisconnectReleasesPinnedSlot(t *testing.T) {
	const n = 4
	srv, addr := testClusterServer(t, n, core.Options{MaxInflight: 1}, Options{})
	conn := dial(t, addr)

	mustOK(t, conn, wire.Msg{Type: wire.MsgBegin})
	mustOK(t, conn, wire.Msg{Type: wire.MsgInvoke, ObjType: workload.AccountType,
		ObjName: "Acct0", Method: "debit", Params: []string{"10"}})
	p := partition.RouteName("Acct0", n)
	if got := srv.Cluster().Part(p).Health().Inflight; got != 1 {
		t.Fatalf("pinned partition inflight = %d, want 1", got)
	}
	conn.Close()

	deadline := time.Now().Add(5 * time.Second)
	for srv.Cluster().Health().Inflight != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("pinned slot leaked after disconnect: inflight = %d",
				srv.Cluster().Health().Inflight)
		}
		time.Sleep(time.Millisecond)
	}

	// The rolled-back debit is invisible and the slot reusable (MaxInflight
	// is 1 per partition).
	conn2 := dial(t, addr)
	mustOK(t, conn2, wire.Msg{Type: wire.MsgBegin})
	if bal := mustOK(t, conn2, wire.Msg{Type: wire.MsgInvoke, ObjType: workload.AccountType,
		ObjName: "Acct0", Method: "balance"}); bal != "1000" {
		t.Fatalf("balance after disconnected debit = %s, want 1000", bal)
	}
	mustOK(t, conn2, wire.Msg{Type: wire.MsgCommit})
}

// TestClusterStatsAggregate: STATS on a multi-partition server reports
// cluster-wide sums and the partition count.
func TestClusterStatsAggregate(t *testing.T) {
	const n = 4
	srv, addr := testClusterServer(t, n, core.Options{}, Options{})
	conn := dial(t, addr)

	// Touch at least two different partitions.
	for _, name := range []string{"Acct0", "Acct1", "Acct2", "Acct3"} {
		mustOK(t, conn, wire.Msg{Type: wire.MsgBegin})
		mustOK(t, conn, wire.Msg{Type: wire.MsgInvoke, ObjType: workload.AccountType,
			ObjName: name, Method: "credit", Params: []string{"1"}})
		mustOK(t, conn, wire.Msg{Type: wire.MsgCommit})
	}
	var stats StatsReply
	if err := json.Unmarshal([]byte(mustOK(t, conn, wire.Msg{Type: wire.MsgStats})), &stats); err != nil {
		t.Fatalf("STATS payload: %v", err)
	}
	if stats.Partitions != n {
		t.Fatalf("STATS partitions = %d, want %d", stats.Partitions, n)
	}
	var want int64
	for i := 0; i < n; i++ {
		want += srv.Cluster().Part(i).Stats().TxnsCommitted
	}
	if stats.Engine.TxnsCommitted != want {
		t.Fatalf("STATS committed = %d, want partition sum %d", stats.Engine.TxnsCommitted, want)
	}
}

// TestQueuedFrameBehindCommitGetsNoTxn is the deterministic half of the
// finish()-vs-queue ordering regression: frames pipelined behind a COMMIT
// run after finish() has cleared the session, so they must be refused with
// CodeNoTxn — never executed against the released slot's transaction.
func TestQueuedFrameBehindCommitGetsNoTxn(t *testing.T) {
	_, addr := testServer(t, core.Options{MaxInflight: 1}, Options{})
	conn := dial(t, addr)

	// Pipeline the whole batch without reading responses: the reader
	// goroutine queues INVOKE (seq 4, 5) behind COMMIT (seq 3).
	batch := []wire.Msg{
		{Seq: 1, Type: wire.MsgBegin},
		{Seq: 2, Type: wire.MsgInvoke, ObjType: workload.AccountType,
			ObjName: "Acct0", Method: "credit", Params: []string{"7"}},
		{Seq: 3, Type: wire.MsgCommit},
		{Seq: 4, Type: wire.MsgInvoke, ObjType: workload.AccountType,
			ObjName: "Acct0", Method: "credit", Params: []string{"9999"}},
		{Seq: 5, Type: wire.MsgPageWrite, Page: 1, Params: []string{"junk"}},
	}
	for _, m := range batch {
		if err := wire.WriteMsg(conn, m); err != nil {
			t.Fatal(err)
		}
	}
	for i, wantCode := range []wire.ErrCode{wire.CodeOK, wire.CodeOK, wire.CodeOK,
		wire.CodeNoTxn, wire.CodeNoTxn} {
		resp, err := wire.ReadMsg(conn)
		if err != nil {
			t.Fatalf("response %d: %v", i+1, err)
		}
		if resp.Seq != uint64(i+1) {
			t.Fatalf("response %d has Seq %d — pipeline order broken", i+1, resp.Seq)
		}
		if wantCode == wire.CodeOK {
			if resp.Type != wire.MsgResult {
				t.Fatalf("seq %d: error %v: %s", resp.Seq, resp.Code, resp.Result)
			}
		} else if resp.Type != wire.MsgError || resp.Code != wantCode {
			t.Fatalf("seq %d: got type=%v code=%v, want %v", resp.Seq, resp.Type, resp.Code, wantCode)
		}
	}
	// Only the pre-commit credit is visible.
	mustOK(t, conn, wire.Msg{Type: wire.MsgBegin})
	if bal := mustOK(t, conn, wire.Msg{Type: wire.MsgInvoke, ObjType: workload.AccountType,
		ObjName: "Acct0", Method: "balance"}); bal != "1007" {
		t.Fatalf("balance = %s, want 1007 (queued frames must not execute)", bal)
	}
	mustOK(t, conn, wire.Msg{Type: wire.MsgAbort})
}

// TestQueuedFramesBehindCommitThenDisconnect is the racing half: a session
// that pipelines work behind a COMMIT and disconnects immediately must
// never let the queued frames (or the cleanup path) touch the admission
// slot COMMIT released — the slot count returns to zero every round, with
// the race detector watching finish() vs. the queued-request handler.
func TestQueuedFramesBehindCommitThenDisconnect(t *testing.T) {
	srv, addr := testServer(t, core.Options{MaxInflight: 1}, Options{})
	db := srv.DB()
	for round := 0; round < 40; round++ {
		conn := dial(t, addr)
		batch := []wire.Msg{
			{Seq: 1, Type: wire.MsgBegin},
			{Seq: 2, Type: wire.MsgInvoke, ObjType: workload.AccountType,
				ObjName: "Acct3", Method: "credit", Params: []string{"1"}},
			{Seq: 3, Type: wire.MsgCommit},
			{Seq: 4, Type: wire.MsgInvoke, ObjType: workload.AccountType,
				ObjName: "Acct3", Method: "credit", Params: []string{"1"}},
			{Seq: 5, Type: wire.MsgCommit},
		}
		for _, m := range batch {
			if err := wire.WriteMsg(conn, m); err != nil {
				t.Fatal(err)
			}
		}
		conn.Close() // disconnect with frames still queued, any time

		deadline := time.Now().Add(5 * time.Second)
		for db.Health().Inflight != 0 {
			if time.Now().After(deadline) {
				t.Fatalf("round %d: slot not released: inflight = %d", round, db.Health().Inflight)
			}
			time.Sleep(time.Millisecond)
		}
	}
	// The engine is still fully usable on the single slot.
	conn := dial(t, addr)
	mustOK(t, conn, wire.Msg{Type: wire.MsgBegin})
	mustOK(t, conn, wire.Msg{Type: wire.MsgInvoke, ObjType: workload.AccountType,
		ObjName: "Acct3", Method: "balance"})
	mustOK(t, conn, wire.Msg{Type: wire.MsgCommit})
}
