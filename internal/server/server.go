// Package server is oodbd's session layer: it serves the core engine over
// TCP with the internal/wire frame protocol. One connection is one
// session — a goroutine pair (frame reader + request handler) owning at
// most one open transaction at a time, with that transaction mapped onto
// one core.Options.MaxInflight admission slot for its whole lifetime:
// granted on BEGIN via AdmitCtx (so a disconnect cancels a parked
// admission instead of holding a queue position), released on COMMIT,
// ABORT, or disconnect. A client that dies mid-transaction gets its
// transaction aborted and its slot released — sessions cannot leak
// admission capacity.
//
// The backend is a partition.Cluster. With one partition the session layer
// behaves exactly as above. With N > 1 the router lives here: BEGIN defers
// admission until the transaction's first object access, which pins it to
// that object's partition (each partition runs its own admission
// controller, so the slot comes from the pinned partition); any later
// access that routes elsewhere is refused with the typed
// wire.CodeWrongPartition and the transaction stays open on its partition.
// A transaction that commits or aborts without touching any object never
// consumed a slot anywhere.
//
// Shutdown is drain-then-close: stop accepting, cut the in-flight
// sessions (their open transactions abort, their slots release), wait for
// every session goroutine, then close the engine — core.DB.Close itself
// drains admitted transactions before the WAL goes away, so a commit that
// won the race completes durably and one that lost it is refused with the
// typed ErrClosed, never half-logged.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/wire"
)

// Options configure a Server.
type Options struct {
	// IdleTimeout reaps sessions with no traffic for this long (default
	// 5m; <0 disables). A reaped session behaves exactly like a
	// disconnected one: open transaction aborted, admission slot released.
	IdleTimeout time.Duration
	// QueueDepth is the per-session request pipeline depth (default 16):
	// how many decoded frames may wait behind the one being executed.
	QueueDepth int
}

func (o Options) withDefaults() Options {
	if o.IdleTimeout == 0 {
		o.IdleTimeout = 5 * time.Minute
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 16
	}
	return o
}

// Server serves a partitioned cluster (possibly of one) over TCP.
type Server struct {
	cluster *partition.Cluster
	opts    Options

	baseCtx context.Context
	cancel  context.CancelFunc

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	shutErr  error
	shutDone chan struct{}
	shutOnce sync.Once

	wg sync.WaitGroup // accept loop + session goroutines

	sessions  *obs.Gauge   // server.sessions: live sessions
	accepted  *obs.Counter // server.sessions_total
	requests  *obs.Counter // server.requests
	reaped    *obs.Counter // server.sessions_reaped (idle timeouts)
	frameErrs *obs.Counter // server.frame_errors (torn/corrupt frames)
	rec       *obs.FlightRecorder
}

// New builds a server for a single caller-owned engine — the historical
// entry point, equivalent to NewCluster(partition.Single(db), opts).
func New(db *core.DB, opts Options) *Server {
	return NewCluster(partition.Single(db), opts)
}

// NewCluster builds a server routing sessions across a partitioned
// cluster. The cluster's observability registry (if any) gets the server's
// counters; nil registries degrade to no-ops.
func NewCluster(c *partition.Cluster, opts Options) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	reg := c.Obs()
	return &Server{
		cluster:   c,
		opts:      opts.withDefaults(),
		baseCtx:   ctx,
		cancel:    cancel,
		conns:     make(map[net.Conn]struct{}),
		shutDone:  make(chan struct{}),
		sessions:  reg.Gauge("server.sessions"),
		accepted:  reg.Counter("server.sessions_total"),
		requests:  reg.Counter("server.requests"),
		reaped:    reg.Counter("server.sessions_reaped"),
		frameErrs: reg.Counter("server.frame_errors"),
		rec:       reg.Recorder(),
	}
}

// Start listens on addr (host:port; port 0 picks a free port) and begins
// accepting sessions. It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return "", fmt.Errorf("server: already shut down")
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

// Addr returns the bound address ("" before Start).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// DB returns the served engine's first partition — the whole engine for a
// single-partition server.
func (s *Server) DB() *core.DB { return s.cluster.Part(0) }

// Cluster returns the served partition cluster.
func (s *Server) Cluster() *partition.Cluster { return s.cluster }

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if !closed {
				// An accept loop dying outside shutdown is a served-engine
				// outage; make it observable (same rule as obs.ServeListener).
				s.rec.Record(obs.Event{Kind: obs.EvFailure, Actor: "server.accept",
					Note: err.Error()})
			}
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.accepted.Inc()
		s.sessions.Add(1)
		go s.session(conn)
	}
}

// Shutdown is the drain-then-close path: stop accepting, cut in-flight
// sessions (open transactions abort and release their admission slots),
// wait for every session goroutine — bounded by ctx — then close the
// engine. Idempotent; every caller gets the first shutdown's result.
func (s *Server) Shutdown(ctx context.Context) error {
	s.shutOnce.Do(func() {
		s.mu.Lock()
		s.closed = true
		ln := s.ln
		conns := make([]net.Conn, 0, len(s.conns))
		for c := range s.conns {
			conns = append(conns, c)
		}
		s.mu.Unlock()

		if ln != nil {
			_ = ln.Close() // stop accepting
		}
		s.cancel() // unpark AdmitCtx waiters, signal handlers
		for _, c := range conns {
			_ = c.Close() // unblock session readers; cleanup aborts their txns
		}
		done := make(chan struct{})
		go func() { s.wg.Wait(); close(done) }()
		select {
		case <-done:
			s.shutErr = s.cluster.Close()
		case <-ctx.Done():
			// Sessions still running at the deadline: close the engine
			// anyway (Close drains admitted transactions itself) and report
			// the bounded wait's failure.
			closeErr := s.cluster.Close()
			s.shutErr = errors.Join(fmt.Errorf("server: shutdown wait: %w", ctx.Err()), closeErr)
		}
		close(s.shutDone)
	})
	<-s.shutDone
	return s.shutErr
}

// session is one connection's state: at most one open transaction, pinned
// to one admission slot on one partition.
type session struct {
	peer    string
	txn     *core.Txn
	release func()
	// pending marks a BEGIN received on a multi-partition cluster whose
	// admission and engine Begin are deferred to the first object access —
	// that access decides the partition. part is the pinned partition index
	// once txn is non-nil.
	pending bool
	part    int
}

// open reports whether the session has a transaction open from the
// client's point of view (started, or pending a partition pin).
func (ss *session) open() bool { return ss.txn != nil || ss.pending }

// finish clears the open transaction and releases its admission slot.
func (ss *session) finish() {
	ss.txn = nil
	ss.pending = false
	if ss.release != nil {
		ss.release()
		ss.release = nil
	}
}

func (s *Server) session(conn net.Conn) {
	defer s.wg.Done()
	defer s.sessions.Add(-1)
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()

	ss := &session{peer: conn.RemoteAddr().String()}
	// Disconnect, reap, or shutdown — however the session ends, an open
	// transaction is aborted and its admission slot released. This is the
	// no-slot-leak invariant the smoke test asserts via /metrics.
	defer func() {
		if ss.txn != nil {
			_ = ss.txn.Abort()
			s.rec.Record(obs.Event{Kind: obs.EvTxnAbort, Actor: ss.txn.ID(),
				Note: "session " + ss.peer + " disconnected mid-txn"})
		}
		ss.finish()
	}()

	// Reader: decodes frames and feeds the handler. It owns the idle
	// deadline; on any read failure it cancels the session so a handler
	// parked in AdmitCtx (or mid-pipeline) unblocks immediately.
	reqs := make(chan wire.Msg, s.opts.QueueDepth)
	go func() {
		defer cancel()
		defer close(reqs)
		for {
			if s.opts.IdleTimeout > 0 {
				_ = conn.SetReadDeadline(time.Now().Add(s.opts.IdleTimeout))
			}
			m, err := wire.ReadMsg(conn)
			if err != nil {
				var ne net.Error
				switch {
				case errors.As(err, &ne) && ne.Timeout():
					s.reaped.Inc()
					s.rec.Record(obs.Event{Kind: obs.EvFailure, Actor: "server.session",
						Object: ss.peer, Note: "idle session reaped"})
				case errors.Is(err, wire.ErrFrameTorn), errors.Is(err, wire.ErrFrameCorrupt):
					s.frameErrs.Inc()
				}
				return
			}
			select {
			case reqs <- m:
			case <-ctx.Done():
				return
			}
		}
	}()

	for {
		var m wire.Msg
		var ok bool
		select {
		case m, ok = <-reqs:
		case <-ctx.Done():
			return
		}
		if !ok {
			return
		}
		s.requests.Inc()
		resp := s.handle(ctx, ss, m)
		resp.Seq = m.Seq
		if err := wire.WriteMsg(conn, resp); err != nil {
			return
		}
	}
}

func errResp(err error) wire.Msg {
	return wire.Msg{Type: wire.MsgError, Code: wire.CodeFor(err), Result: err.Error()}
}

func errRespCode(code wire.ErrCode, detail string) wire.Msg {
	return wire.Msg{Type: wire.MsgError, Code: code, Result: detail}
}

func okResp(result string) wire.Msg {
	return wire.Msg{Type: wire.MsgResult, Result: result}
}

// StatsReply is the STATS response payload (JSON in Msg.Result). On a
// multi-partition server Engine and Health are the cluster aggregates
// (counters summed, degradation sticky).
type StatsReply struct {
	Protocol   string      `json:"protocol"`
	Engine     core.Stats  `json:"engine"`
	Health     core.Health `json:"health"`
	Pages      int         `json:"pages"`
	Partitions int         `json:"partitions"`
}

// txnFor returns the session's transaction for an access to the named
// object. A pending session is pinned here: the first-touched object's
// partition admits the transaction (its own controller, its own slot) and
// begins it. A pinned session's access is checked against the router —
// an object on another partition gets ErrWrongPartition and the
// transaction is left untouched on its partition.
func (s *Server) txnFor(ctx context.Context, ss *session, name string) (*core.Txn, error) {
	if ss.txn != nil {
		if p := s.cluster.Route(name); p != ss.part {
			return nil, fmt.Errorf("%w: %q is on p%d, transaction pinned to p%d",
				partition.ErrWrongPartition, name, p, ss.part)
		}
		return ss.txn, nil
	}
	p := s.cluster.Route(name)
	db := s.cluster.Part(p)
	release, err := db.AdmitCtx(ctx)
	if err != nil {
		return nil, err
	}
	ss.txn = db.Begin()
	ss.release = release
	ss.part = p
	ss.pending = false
	return ss.txn, nil
}

// handle executes one request against the session. Responses carry the
// typed taxonomy: every engine failure maps through wire.CodeFor so the
// client can decide retry vs give-up without string matching.
func (s *Server) handle(ctx context.Context, ss *session, m wire.Msg) wire.Msg {
	switch m.Type {
	case wire.MsgPing:
		return okResp(m.Result)

	case wire.MsgStats:
		reply := StatsReply{
			Protocol:   s.cluster.Protocol().String(),
			Engine:     s.cluster.Stats(),
			Health:     s.cluster.Health(),
			Pages:      s.cluster.NumPages(),
			Partitions: s.cluster.N(),
		}
		data, err := json.Marshal(reply)
		if err != nil {
			return errRespCode(wire.CodeInternal, err.Error())
		}
		return okResp(string(data))

	case wire.MsgBegin:
		if ss.open() {
			detail := "transaction pending partition pin"
			if ss.txn != nil {
				detail = ss.txn.ID() + " still open"
			}
			return errRespCode(wire.CodeTxnOpen, detail)
		}
		if s.cluster.N() > 1 {
			// Multi-partition: the first object access decides the partition
			// (and takes that partition's admission slot). Deferring keeps a
			// never-used transaction from pinning an arbitrary partition.
			ss.pending = true
			return okResp("pending")
		}
		release, err := s.cluster.Part(0).AdmitCtx(ctx)
		if err != nil {
			return errResp(err)
		}
		ss.txn = s.cluster.Part(0).Begin()
		ss.release = release
		return okResp(ss.txn.ID())

	case wire.MsgInvoke:
		if !ss.open() {
			return errRespCode(wire.CodeNoTxn, m.Type.String()+" outside a transaction")
		}
		if m.ObjType == "" || m.Method == "" {
			return errRespCode(wire.CodeBadRequest, "INVOKE needs object type and method")
		}
		tx, err := s.txnFor(ctx, ss, m.ObjName)
		if err != nil {
			return errResp(err)
		}
		res, err := tx.Exec(txn.OID{Type: m.ObjType, Name: m.ObjName}, m.Method, m.Params...)
		if err != nil {
			return errResp(err)
		}
		return okResp(res)

	case wire.MsgPageRead:
		if !ss.open() {
			return errRespCode(wire.CodeNoTxn, m.Type.String()+" outside a transaction")
		}
		oid := core.PageOID(storage.PageID(m.Page))
		tx, err := s.txnFor(ctx, ss, oid.Name)
		if err != nil {
			return errResp(err)
		}
		res, err := tx.Exec(oid, "read")
		if err != nil {
			return errResp(err)
		}
		return okResp(res)

	case wire.MsgPageWrite:
		if !ss.open() {
			return errRespCode(wire.CodeNoTxn, m.Type.String()+" outside a transaction")
		}
		if len(m.Params) != 1 {
			return errRespCode(wire.CodeBadRequest, "PAGE_WRITE needs exactly one data parameter")
		}
		oid := core.PageOID(storage.PageID(m.Page))
		tx, err := s.txnFor(ctx, ss, oid.Name)
		if err != nil {
			return errResp(err)
		}
		if _, err := tx.Exec(oid, "write", m.Params[0]); err != nil {
			return errResp(err)
		}
		return okResp("")

	case wire.MsgCommit:
		if !ss.open() {
			return errRespCode(wire.CodeNoTxn, "COMMIT outside a transaction")
		}
		if ss.txn == nil {
			// Pending transaction that never touched an object: nothing was
			// admitted or begun anywhere — an empty commit.
			ss.finish()
			return okResp("")
		}
		err := ss.txn.Commit()
		ss.finish()
		if err != nil {
			return errResp(err)
		}
		return okResp("")

	case wire.MsgAbort:
		if !ss.open() {
			return errRespCode(wire.CodeNoTxn, "ABORT outside a transaction")
		}
		if ss.txn == nil {
			ss.finish()
			return okResp("")
		}
		err := ss.txn.Abort()
		ss.finish()
		if err != nil && !errors.Is(err, core.ErrTxnFinished) {
			return errResp(err)
		}
		return okResp("")
	}
	return errRespCode(wire.CodeBadRequest, "unknown request "+m.Type.String())
}
